// Command shiftex-party runs one federated party as a TCP server: it
// generates a private local dataset, streams it through windows, and serves
// training, evaluation, label-histogram, window-advance, and Algorithm-1
// shift-statistics requests from the aggregator. Raw data never leaves the
// process.
//
// Two data modes:
//
//   - Legacy single-regime mode (default): one window drawn from a fixed
//     corruption regime.
//
//     shiftex-party -addr 127.0.0.1:7001 -party 0 -corruption fog -severity 3
//
//   - Scenario mode (-windows > 1): the party regenerates the shared
//     multi-window shift scenario from (-nparties, -windows, -scenario-seed)
//     and serves its own slice of it, advancing window by window on request.
//     Every participant that derives the scenario from the same flags agrees
//     on the data without any of it crossing the wire.
//
//     shiftex-party -addr 127.0.0.1:7001 -party 0 -nparties 2 -windows 3 -scenario-seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/service"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shiftex-party:", err)
		os.Exit(1)
	}
}

func parseCorruption(name string, severity int) (dataset.Corruption, error) {
	if name == "" || name == "none" {
		return dataset.Corruption{}, nil
	}
	kinds := map[string]dataset.CorruptionKind{
		"fog": dataset.CorruptFog, "rain": dataset.CorruptRain,
		"snow": dataset.CorruptSnow, "frost": dataset.CorruptFrost,
		"blur": dataset.CorruptBlur, "noise": dataset.CorruptNoise,
		"rotate": dataset.CorruptRotate, "scale": dataset.CorruptScale,
		"jitter": dataset.CorruptJitter,
	}
	k, ok := kinds[name]
	if !ok {
		return dataset.Corruption{}, fmt.Errorf("unknown corruption %q", name)
	}
	return dataset.Corruption{Kind: k, Severity: severity}, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("shiftex-party", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	partyID := fs.Int("party", 0, "party id (0-based)")
	corrName := fs.String("corruption", "none", "legacy mode: covariate regime (fog, rain, snow, frost, blur, noise, rotate, scale, jitter)")
	severity := fs.Int("severity", 3, "legacy mode: corruption severity 1-5")
	samples := fs.Int("samples", 120, "training samples per window")
	testN := fs.Int("test", 60, "test samples per window")
	seed := fs.Uint64("seed", 0, "legacy mode: data seed (0 = derive from party id)")
	windows := fs.Int("windows", 1, "scenario mode: number of stream windows (>1 enables scenario mode)")
	nparties := fs.Int("nparties", 0, "scenario mode: total parties in the shared scenario")
	scenarioSeed := fs.Uint64("scenario-seed", 1, "scenario mode: shared scenario seed")
	debugAddr := fs.String("debug-addr", "", "serve /v1/debug/pprof/ and /v1/debug/traces on this extra address (empty = off)")
	traceBuffer := fs.Int("trace-buffer", telemetry.DefaultRingSize, "span ring-buffer capacity for /v1/debug/traces")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var srv *fl.PartyServer
	var err error
	if *windows > 1 {
		srv, err = scenarioServer(*addr, *partyID, *nparties, *windows, *samples, *testN, *scenarioSeed)
	} else {
		srv, err = legacyServer(*addr, *partyID, *corrName, *severity, *samples, *testN, *seed)
	}
	if err != nil {
		return err
	}
	logger := telemetry.NewLogger(os.Stderr, "party")
	tracer := telemetry.NewTracer("party", *traceBuffer)
	srv.SetTracer(tracer)
	if *debugAddr != "" {
		telemetry.ServeDebug(*debugAddr, tracer, func(err error) {
			logger.Error("debug listener failed", "error", err)
		})
	}
	logger.Info("listening", "addr", srv.Addr(), "party", *partyID,
		"windows", *windows, "debugAddr", *debugAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	err = srv.Close()
	logger.Info("drained", "requests", srv.Requests(), "spans", tracer.SpanCount())
	return err
}

// scenarioServer serves one party's slice of the shared multi-window shift
// scenario.
func scenarioServer(addr string, partyID, nparties, windows, samples, testN int, seed uint64) (*fl.PartyServer, error) {
	if nparties <= 0 {
		return nil, fmt.Errorf("scenario mode needs -nparties (total parties, > %d)", partyID)
	}
	if partyID < 0 || partyID >= nparties {
		return nil, fmt.Errorf("party %d out of range [0,%d)", partyID, nparties)
	}
	spec := service.ScenarioSpec(nparties, samples, testN, windows)
	sc, err := dataset.BuildScenario(spec, dataset.DefaultShiftConfig(), seed)
	if err != nil {
		return nil, err
	}
	provider, err := service.PartyWindows(sc, partyID)
	if err != nil {
		return nil, err
	}
	train, test, err := provider.PartyWindow(0)
	if err != nil {
		return nil, err
	}
	party := &fl.Party{ID: partyID, Train: train, Test: test}
	srv, err := fl.NewPartyServer(addr, party, spec.NumClasses, tensor.NewRNG(seed+uint64(partyID)))
	if err != nil {
		return nil, err
	}
	srv.SetWindowProvider(provider)
	fmt.Printf("party %d/%d serving on %s (scenario seed %d, %d windows, %d train / %d test per window)\n",
		partyID, nparties, srv.Addr(), seed, windows, len(train), len(test))
	return srv, nil
}

// legacyServer is the original fixed-regime single-window party.
func legacyServer(addr string, partyID int, corrName string, severity, samples, testN int, seed uint64) (*fl.PartyServer, error) {
	if seed == 0 {
		seed = uint64(partyID) + 1000
	}
	corr, err := parseCorruption(corrName, severity)
	if err != nil {
		return nil, err
	}

	// Generate the private local stream: a tumbling window over examples
	// drawn from this party's regime.
	spec := dataset.FMoWSpec()
	gen, err := dataset.NewGenerator(spec, 1) // shared world model across parties
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed)
	labelDist := rng.Dirichlet(spec.NumClasses, 5)
	raw, err := gen.SampleSet(samples, labelDist, corr, rng)
	if err != nil {
		return nil, err
	}
	windower, err := stream.NewTumbling(time.Minute)
	if err != nil {
		return nil, err
	}
	windows, err := stream.Replay([][]dataset.Example{raw}, time.Minute, windower)
	if err != nil {
		return nil, err
	}
	test, err := gen.SampleSet(testN, labelDist, corr, rng)
	if err != nil {
		return nil, err
	}
	party := &fl.Party{ID: partyID, Train: windows[0].Examples(), Test: test}

	srv, err := fl.NewPartyServer(addr, party, spec.NumClasses, rng.Split())
	if err != nil {
		return nil, err
	}
	fmt.Printf("party %d serving on %s (regime %s, %d train / %d test)\n",
		partyID, srv.Addr(), corr, len(party.Train), len(party.Test))
	return srv, nil
}
