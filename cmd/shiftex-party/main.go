// Command shiftex-party runs one federated party as a TCP server: it
// generates a private local dataset (optionally under a covariate
// corruption regime), streams it through a tumbling window, and serves
// training, evaluation, and Algorithm-1 shift-statistics requests from the
// aggregator. Raw data never leaves the process.
//
//	shiftex-party -addr 127.0.0.1:7001 -party 0 -corruption fog -severity 3
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/stream"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shiftex-party:", err)
		os.Exit(1)
	}
}

func parseCorruption(name string, severity int) (dataset.Corruption, error) {
	if name == "" || name == "none" {
		return dataset.Corruption{}, nil
	}
	kinds := map[string]dataset.CorruptionKind{
		"fog": dataset.CorruptFog, "rain": dataset.CorruptRain,
		"snow": dataset.CorruptSnow, "frost": dataset.CorruptFrost,
		"blur": dataset.CorruptBlur, "noise": dataset.CorruptNoise,
		"rotate": dataset.CorruptRotate, "scale": dataset.CorruptScale,
		"jitter": dataset.CorruptJitter,
	}
	k, ok := kinds[name]
	if !ok {
		return dataset.Corruption{}, fmt.Errorf("unknown corruption %q", name)
	}
	return dataset.Corruption{Kind: k, Severity: severity}, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("shiftex-party", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	partyID := fs.Int("party", 0, "party id")
	corrName := fs.String("corruption", "none", "covariate regime (fog, rain, snow, frost, blur, noise, rotate, scale, jitter)")
	severity := fs.Int("severity", 3, "corruption severity 1-5")
	samples := fs.Int("samples", 120, "training samples per window")
	testN := fs.Int("test", 60, "test samples")
	seed := fs.Uint64("seed", 0, "data seed (0 = derive from party id)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seed == 0 {
		*seed = uint64(*partyID) + 1000
	}
	corr, err := parseCorruption(*corrName, *severity)
	if err != nil {
		return err
	}

	// Generate the private local stream: a tumbling window over examples
	// drawn from this party's regime.
	spec := dataset.FMoWSpec()
	gen, err := dataset.NewGenerator(spec, 1) // shared world model across parties
	if err != nil {
		return err
	}
	rng := tensor.NewRNG(*seed)
	labelDist := rng.Dirichlet(spec.NumClasses, 5)
	raw, err := gen.SampleSet(*samples, labelDist, corr, rng)
	if err != nil {
		return err
	}
	windower, err := stream.NewTumbling(time.Minute)
	if err != nil {
		return err
	}
	windows, err := stream.Replay([][]dataset.Example{raw}, time.Minute, windower)
	if err != nil {
		return err
	}
	test, err := gen.SampleSet(*testN, labelDist, corr, rng)
	if err != nil {
		return err
	}
	party := &fl.Party{ID: *partyID, Train: windows[0].Examples(), Test: test}

	srv, err := fl.NewPartyServer(*addr, party, spec.NumClasses, rng.Split())
	if err != nil {
		return err
	}
	fmt.Printf("party %d serving on %s (regime %s, %d train / %d test)\n",
		*partyID, srv.Addr(), corr, len(party.Train), len(party.Test))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return srv.Close()
}
