// Command shiftex-serve is the ShiftEx inference-serving daemon: it loads a
// trained aggregator checkpoint (written by cmd/shiftex-aggregator) into an
// immutable serving snapshot and answers prediction requests over HTTP,
// routing each request to the expert whose latent memory matches the
// request's embedding signature and micro-batching per expert onto a
// zero-allocation worker pool.
//
//	shiftex-aggregator -load 8 -windows 3 -seed 42 -checkpoint ckpt.json
//	shiftex-serve -checkpoint ckpt.json -http 127.0.0.1:8090
//	curl -s -X POST -d '{"x":[0.1, ...]}' http://127.0.0.1:8090/predict
//
// A running server picks up retrained checkpoints without dropping a
// request: POST /snapshot {"path":"ckpt.json"} hot-swaps atomically, and
// SIGHUP re-reads the -checkpoint path in place. SIGINT/SIGTERM drain every
// in-flight batch before exit and write a final serving-metrics snapshot
// (-metrics-out).
//
// -loadgen switches to load-generation mode: the server runs in-process,
// the checkpoint run's scenario stream is replayed against it at -qps
// (0 = open loop), and the run is recorded as a versioned BENCH_serving.json
// artifact (throughput, latency quantiles, per-regime routing accuracy
// under the scenario's injected shift).
//
// The daemon runs a live drift monitor by default (-monitor=false disables
// it): the batched routing path tees every routed embedding off-path into
// bounded sketches scored against the checkpoint's latent memories, surfaced
// on /v1/debug/drift and as shiftex_monitor_* metrics. -loadgen -shift-at F
// injects a covariate regime change (-shift-kind/-shift-severity) after
// fraction F of the run and reports whether the monitor caught it;
// -driftbench measures detection latency and monitoring overhead against an
// unmonitored baseline and writes BENCH_drift.json, gated by
// -max-drift-overhead.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/continual"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/monitor"
	"repro/internal/serve"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shiftex-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shiftex-serve", flag.ContinueOnError)
	checkpoint := fs.String("checkpoint", "", "aggregator checkpoint to serve (required; written by shiftex-aggregator -checkpoint)")
	httpAddr := fs.String("http", "127.0.0.1:8090", "serve the /v1 API (plus deprecated unversioned aliases) on this address")
	model := fs.String("model", "", "model name this replica serves under (default \"default\"; must match the gateway registry entry)")
	gatewayURL := fs.String("gateway", "", "self-register with this shiftex-gateway base URL at startup (POST /v1/replicas)")
	advertise := fs.String("advertise", "", "address to register at the gateway (default: the -http address)")
	workers := fs.Int("workers", 0, "prediction workers (0 = one per core)")
	maxBatch := fs.Int("max-batch", 32, "flush an expert's queue at this many requests")
	maxDelay := fs.Duration("max-delay", 2*time.Millisecond, "flush an expert's queue when its oldest request has waited this long")
	queueDepth := fs.Int("queue", 4096, "admission bound; requests beyond it are rejected with 503")
	cacheSize := fs.Int("cache", 4096, "LRU route-cache entries (negative = disable)")
	epsScale := fs.Float64("route-eps-scale", 4, "set the EFFECTIVE match radius to calibrated ε × this scale (single-request embeddings are noisier than the window means ε was calibrated on; negative = use ε unscaled; the resulting radius is visible as routeEpsilon on /v1/snapshot and as shiftex_serve_route_epsilon / shiftex_serve_expert_route_epsilon on /v1/metrics)")
	metricsOut := fs.String("metrics-out", "", "write the final serving-metrics snapshot to this JSON file on shutdown")
	debugAddr := fs.String("debug-addr", "", "serve /v1/debug/pprof/ and /v1/debug/traces on this extra address (empty = off)")
	traceBuffer := fs.Int("trace-buffer", telemetry.DefaultRingSize, "span ring-buffer capacity for /v1/debug/traces")

	loadgen := fs.Bool("loadgen", false, "load-generation mode: replay the checkpoint's scenario against an in-process server and write BENCH_serving.json")
	cold := fs.Bool("cold", false, "loadgen: disable the route cache so every request pays the full batched routing + inference path; the artifact is written as BENCH_serving-cold.json")
	qps := fs.Float64("qps", 0, "loadgen target aggregate QPS (0 = open loop, as fast as possible)")
	concurrency := fs.Int("concurrency", 0, "loadgen client goroutines (0 = two per core)")
	repeat := fs.Int("repeat", 3, "loadgen passes over the scenario's request stream (later passes exercise the route cache)")
	duration := fs.Duration("duration", 0, "loadgen time budget (0 = run the full stream)")
	samples := fs.Int("samples", 120, "scenario training samples per party per window (must match the checkpointed run)")
	testN := fs.Int("test", 60, "scenario test samples per party per window (must match the checkpointed run)")
	swapMid := fs.Bool("swap-mid-load", false, "loadgen: hot-swap a fresh snapshot of the same checkpoint halfway through")
	jsonDir := fs.String("json", "", "loadgen: write BENCH_serving.json into this directory (empty = don't write)")
	check := fs.String("check", "", "validate a BENCH_serving.json / BENCH_serving-cold.json artifact, print its headline numbers, and exit")
	minThroughput := fs.Float64("min-throughput", 0, "with -check: fail unless the artifact reports at least this many predictions/sec")
	minMeanBatch := fs.Float64("min-mean-batch", 0, "with -check: fail unless the artifact's mean micro-batch size is at least this (proves batching engaged under load)")
	against := fs.String("against", "", "with -check: compare throughput against this baseline artifact and warn when it regressed by more than 20%")

	tracebench := fs.Bool("tracebench", false, "tracing-overhead benchmark: replay the loadgen workload as interleaved untraced/traced trial pairs against in-process servers and write BENCH_tracing.json")
	trials := fs.Int("trials", serve.DefaultTracingTrials, "with -tracebench or -driftbench: interleaved baseline/treated trial pairs; each side reports its best trial")
	checkTracing := fs.String("check-tracing", "", "validate a BENCH_tracing.json artifact, print its headline numbers, and exit")
	maxOverhead := fs.Float64("max-overhead", 5, "with -tracebench or -check-tracing: fail when tracing costs more than this percent of baseline throughput")

	monitorOn := fs.Bool("monitor", true, "enable the live drift monitor (off-path tee of routed embeddings; surfaced on /v1/debug/drift and as shiftex_monitor_* metrics)")
	monEvalEvery := fs.Int("monitor-eval-every", 0, "drift monitor: run a drift evaluation every this many folded samples (0 = package default)")
	monBaseline := fs.Int("monitor-baseline", 0, "drift monitor: baseline reservoir size frozen as the no-shift reference (0 = package default)")
	monWindow := fs.Int("monitor-window", 0, "drift monitor: sliding recent-embedding window scored against the baseline (0 = package default)")
	monThreshold := fs.Float64("monitor-threshold", 0, "drift monitor: normalized-score crossing level (0 = package default)")
	monSample := fs.Int("monitor-sample", 0, "drift monitor: fold only every Nth teed block — the monitor's CPU governor on saturated hosts (0 = package default, every block)")
	monResamples := fs.Int("monitor-resamples", 0, "drift monitor: bootstrap resamples calibrating the null threshold δ (0 = package default; each resample costs one detector pass over the baseline)")
	shiftAt := fs.Float64("shift-at", 0, "loadgen/driftbench: inject a covariate regime change after this fraction of the run (0 = no shift)")
	shiftKind := fs.String("shift-kind", "frost", "with -shift-at: corruption family to inject (fog, rain, snow, frost, blur, noise, rotate, scale, jitter)")
	shiftSeverity := fs.Int("shift-severity", 5, "with -shift-at: corruption severity, 1 (mild) to 5 (harsh)")
	driftbench := fs.Bool("driftbench", false, "drift-detection benchmark: interleaved unmonitored/monitored cold trials with an injected shift; writes BENCH_drift.json")
	checkDrift := fs.String("check-drift", "", "validate a BENCH_drift.json artifact, print its headline numbers, and exit")
	maxDriftOverhead := fs.Float64("max-drift-overhead", 3, "with -driftbench or -check-drift: fail when monitoring costs more than this percent of baseline throughput, the shift went undetected, or any pre-shift false positive crossed")

	continualOn := fs.Bool("continual", false, "arm the continual adaptation controller: on a confirmed drift crossing, run a live adaptation window against the monitor's sketches and hot-swap the adapted snapshot (requires -monitor; state on /v1/debug/adapt and as shiftex_continual_* metrics)")
	adaptHysteresis := fs.Int("adapt-hysteresis", 0, "continual: consecutive crossed drift evaluations required to arm a trigger (0 = package default, 2)")
	adaptCooldown := fs.Duration("adapt-cooldown", 0, "continual: refractory period after an adaptation window during which triggers are suppressed (0 = package default, 30s)")
	adaptValidation := fs.Bool("adapt-validation", true, "continual: gate promotion on the candidate snapshot not regressing held-back live routing quality")
	adaptValSamples := fs.Int("adapt-validation-samples", 0, "continual: minimum held-back live embeddings the validation gate needs to judge a candidate (0 = package default, 32)")
	adaptbench := fs.Bool("adaptbench", false, "closed-loop adaptation benchmark: frozen baseline on a shifted stream, then a live detect→adapt→swap pass, then post-swap recovery; writes BENCH_adapt-live.json")
	adaptTimeout := fs.Duration("adapt-timeout", 0, "with -adaptbench: budget for the loop to close after the injected shift (0 = package default, 120s)")
	checkAdapt := fs.String("check-adapt", "", "validate a BENCH_adapt-live.json artifact, apply the closed-loop gate, print its headline numbers, and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check != "" {
		return checkArtifact(*check, *minThroughput, *minMeanBatch, *against)
	}
	if *checkTracing != "" {
		return checkTracingArtifact(*checkTracing, *maxOverhead)
	}
	if *checkDrift != "" {
		return checkDriftArtifact(*checkDrift, *maxDriftOverhead)
	}
	if *checkAdapt != "" {
		return checkAdaptArtifact(*checkAdapt)
	}
	if *checkpoint == "" {
		return errors.New("-checkpoint PATH is required\n  produce one with: shiftex-aggregator -load 8 -windows 3 -seed 42 -checkpoint ckpt.json")
	}

	cp, err := service.LoadCheckpoint(*checkpoint)
	if err != nil {
		return err
	}
	snap, err := serve.SnapshotFromCheckpoint(cp)
	if err != nil {
		return err
	}
	if *cold {
		// Cold-traffic mode: a disabled cache is what makes the benchmark
		// honest about compute throughput, so -cold overrides -cache.
		*cacheSize = -1
	}
	cfg := serve.Config{
		Workers:    *workers,
		MaxBatch:   *maxBatch,
		MaxDelay:   *maxDelay,
		QueueDepth: *queueDepth,
		CacheSize:  *cacheSize,
		Model:      *model,

		RouteEpsilonScale: *epsScale,
	}
	lcfg := serve.LoadConfig{
		TargetQPS:       *qps,
		Concurrency:     *concurrency,
		Repeat:          *repeat,
		MaxDuration:     *duration,
		SamplesPerParty: *samples,
		TestPerParty:    *testN,
		SwapMidLoad:     *swapMid,
	}
	if *shiftAt > 0 {
		kind, err := parseCorruptionKind(*shiftKind)
		if err != nil {
			return err
		}
		lcfg.ShiftAt = *shiftAt
		lcfg.ShiftCorruption = dataset.Corruption{Kind: kind, Severity: *shiftSeverity}
	}
	monCfg := monitor.Config{
		EvalEvery:    *monEvalEvery,
		SampleEvery:  *monSample,
		BaselineSize: *monBaseline,
		WindowSize:   *monWindow,
		Threshold:    *monThreshold,
		Calibrate:    stats.CalibrateConfig{Resamples: *monResamples},
	}
	ccfg := continual.Config{
		Hysteresis: *adaptHysteresis,
		Cooldown:   *adaptCooldown,
		Validation: continual.ValidationConfig{
			Disabled:   !*adaptValidation,
			MinSamples: *adaptValSamples,
		},
	}
	if *adaptbench {
		// The closed-loop bench always injects the shift (after calibration,
		// not at a stream fraction), so the corruption comes straight from
		// -shift-kind/-shift-severity without requiring -shift-at.
		kind, err := parseCorruptionKind(*shiftKind)
		if err != nil {
			return err
		}
		bcfg := continual.BenchConfig{
			SamplesPerParty: *samples,
			TestPerParty:    *testN,
			Concurrency:     *concurrency,
			Corruption:      dataset.Corruption{Kind: kind, Severity: *shiftSeverity},
			Monitor:         monCfg,
			Controller:      ccfg,
			Serve:           cfg,
			AdaptTimeout:    *adaptTimeout,
		}
		return runAdaptbench(cp, bcfg, *jsonDir)
	}
	if *driftbench {
		return runDriftbench(cp, lcfg, cfg, monCfg, *trials, *maxDriftOverhead, *jsonDir)
	}
	if *tracebench {
		return runTracebench(cp, lcfg, cfg, *traceBuffer, *trials, *maxOverhead, *jsonDir)
	}
	// The daemon monitors by default; loadgen attaches the monitor only on
	// shift-injection runs, so plain benchmark replays stay untouched.
	var mon *monitor.Monitor
	if *monitorOn && (!*loadgen || *shiftAt > 0) {
		mon = monitor.New(monCfg)
		cfg.Monitor = mon
	}
	logger := telemetry.NewLogger(os.Stderr, "serve")
	tracer := telemetry.NewTracer("serve", *traceBuffer)
	cfg.Tracer = tracer
	if *debugAddr != "" {
		telemetry.ServeDebug(*debugAddr, tracer, func(err error) {
			logger.Error("debug listener failed", "error", err)
		})
	}
	srv, err := serve.NewServer(snap, cfg)
	if err != nil {
		return err
	}
	// Both radii are printed: ε is what training calibrated, the effective
	// radius is what routing actually compares against. The old line only
	// showed ε, which made -route-eps-scale invisible at startup.
	fmt.Printf("serving model %q: %d experts (snapshot v%d, %d windows trained, ε=%.4g, effective route ε=%.4g) from %s\n",
		srv.Model(), snap.NumExperts(), snap.Version, cp.WindowsDone,
		snap.Epsilon, srv.Snapshot().RouteEpsilon(), *checkpoint)

	if *loadgen {
		return runLoadgen(srv, cp, cfg, lcfg, mon, *jsonDir)
	}
	if mon != nil {
		fmt.Printf("drift monitor enabled: /v1/debug/drift, shiftex_monitor_* on /v1/metrics\n")
	}
	var ctrl *continual.Controller
	if *continualOn {
		if mon == nil {
			return errors.New("-continual requires the drift monitor (drop -monitor=false)")
		}
		trainer, err := continual.NewLocalTrainer(cp, continual.TrainerConfig{
			SamplesPerParty: *samples,
			TestPerParty:    *testN,
		})
		if err != nil {
			return err
		}
		if ctrl, err = continual.New(mon, srv, trainer, ccfg); err != nil {
			return err
		}
		srv.AttachAdaptation(ctrl)
		ctrl.Start()
		st := ctrl.ContinualState()
		fmt.Printf("continual adaptation armed: hysteresis=%d cooldown=%.0fs validation=%t (/v1/debug/adapt, shiftex_continual_* on /v1/metrics)\n",
			st.Hysteresis, st.CooldownSeconds, *adaptValidation)
	}

	httpSrv := &http.Server{Addr: *httpAddr, Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	fmt.Printf("listening on http://%s (/v1/predict /v1/snapshot /v1/models/{name} /v1/state /v1/healthz /v1/metrics + deprecated unversioned aliases)\n", *httpAddr)
	logger.Info("listening", "addr", *httpAddr, "model", srv.Model(),
		"snapshot", int64(srv.Snapshot().Version), "experts", snap.NumExperts(),
		"debugAddr", *debugAddr)

	if *gatewayURL != "" {
		regAddr := *advertise
		if regAddr == "" {
			regAddr = *httpAddr
		}
		// Registration is best-effort in the background: the gateway may
		// still be starting, and its health prober re-admits us anyway.
		go registerWithGateway(*gatewayURL, srv.Model(), regAddr)
	}

	// SIGHUP reloads the checkpoint in place; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for {
		select {
		case err := <-httpErr:
			if ctrl != nil {
				ctrl.Close()
			}
			_ = srv.Close()
			return fmt.Errorf("http: %w", err)
		case <-hup:
			if err := srv.SwapFromCheckpoint(*checkpoint); err != nil {
				fmt.Fprintln(os.Stderr, "shiftex-serve: reload:", err)
				continue
			}
			fmt.Printf("reloaded %s as snapshot v%d\n", *checkpoint, srv.Snapshot().Version)
		case <-ctx.Done():
			// Stop accepting HTTP traffic, stand the adaptation controller
			// down (a window in flight completes first), then drain the
			// batching pipeline so every admitted request is answered.
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := httpSrv.Shutdown(shutCtx)
			cancel()
			if ctrl != nil {
				ctrl.Close()
			}
			if closeErr := srv.Close(); err == nil {
				err = closeErr
			}
			m := srv.Metrics().Snapshot()
			fmt.Printf("drained: %d requests served (p50=%.3gms p99=%.3gms), %d matched / %d fallback, %d swaps\n",
				m.Requests, m.P50Seconds*1e3, m.P99Seconds*1e3, m.Matched, m.Fallbacks, m.Swaps)
			if mon != nil {
				mon.Flush()
				sum := mon.Summary()
				fmt.Printf("drift monitor: %d samples folded (%d teed, %d dropped), %d evals, score=%.3f, crossings=%d\n",
					sum.Samples, sum.Teed, sum.Dropped, sum.Evals, sum.Score, sum.Crossings)
				mon.Close()
			}
			logger.Info("drained", "requests", m.Requests,
				"matched", m.Matched, "fallbacks", m.Fallbacks, "swaps", m.Swaps,
				"spans", tracer.SpanCount())
			if *metricsOut != "" {
				if werr := writeMetrics(*metricsOut, m); werr != nil && err == nil {
					err = werr
				}
			}
			return err
		}
	}
}

// registerWithGateway announces this replica to a shiftex-gateway,
// retrying briefly so "start everything at once" deployments converge.
func registerWithGateway(gatewayURL, model, addr string) {
	body, _ := json.Marshal(map[string]string{"model": model, "addr": addr})
	client := &http.Client{Timeout: 2 * time.Second}
	for attempt := 0; attempt < 10; attempt++ {
		res, err := client.Post(strings.TrimRight(gatewayURL, "/")+"/v1/replicas",
			"application/json", bytes.NewReader(body))
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK || res.StatusCode == http.StatusAccepted {
				fmt.Printf("registered with gateway %s as model %q replica %s\n", gatewayURL, model, addr)
				return
			}
		}
		time.Sleep(500 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "shiftex-serve: could not register with gateway %s (gave up after 10 attempts)\n", gatewayURL)
}

// checkArtifact validates a serving artifact and prints its headline
// numbers — the smoke tests' machine-checkable gate on the benchmark.
// minMeanBatch gates the mean micro-batch size (batching actually engaged);
// against, when set, compares throughput to a committed baseline artifact
// and emits a GitHub-annotation warning on a >20% regression — a warning,
// not a failure, because absolute throughput is machine-dependent.
func checkArtifact(path string, minThroughput, minMeanBatch float64, against string) error {
	a, err := experiments.ReadServingArtifactFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("serving artifact ok: name=%s requests=%d errors=%d throughputPerSec=%.0f p99Ms=%.3g accuracy=%.3f routing=%.3f meanBatch=%.2f regimes=%d swaps=%d\n",
		a.Name, a.Requests, a.Errors, a.ThroughputPerSec, a.LatencyMsP99, a.Accuracy, a.RoutedToAssigned, a.MeanBatch, len(a.Regimes), a.Swaps)
	if a.Errors > 0 {
		return fmt.Errorf("artifact records %d errored requests", a.Errors)
	}
	if minThroughput > 0 && a.ThroughputPerSec < minThroughput {
		return fmt.Errorf("throughput %.0f/s below required %.0f/s", a.ThroughputPerSec, minThroughput)
	}
	if minMeanBatch > 0 && a.MeanBatch < minMeanBatch {
		return fmt.Errorf("mean batch size %.2f below required %.2f (micro-batching did not engage)", a.MeanBatch, minMeanBatch)
	}
	if against != "" {
		base, err := experiments.ReadServingArtifactFile(against)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if base.Name != a.Name {
			return fmt.Errorf("baseline %s is a %q artifact, cannot compare against %q", against, base.Name, a.Name)
		}
		ratio := a.ThroughputPerSec / base.ThroughputPerSec
		fmt.Printf("vs baseline %s: %.0f/s -> %.0f/s (%+.1f%%)\n",
			against, base.ThroughputPerSec, a.ThroughputPerSec, (ratio-1)*100)
		if ratio < 0.8 {
			fmt.Printf("::warning file=%s::serving throughput regressed %.1f%% vs committed baseline (%.0f/s -> %.0f/s)\n",
				against, (1-ratio)*100, base.ThroughputPerSec, a.ThroughputPerSec)
		}
	}
	return nil
}

// runTracebench measures tracing overhead against in-process servers,
// prints the headline numbers, optionally records the artifact, and
// applies the overhead gate.
func runTracebench(cp *service.Checkpoint, lcfg serve.LoadConfig, cfg serve.Config, ringSize, trials int, maxOverhead float64, jsonDir string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	a, err := serve.RunTracingBench(ctx, cp, lcfg, cfg, ringSize, trials)
	if err != nil {
		return err
	}
	printTracing(a)
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
		path, err := experiments.WriteTracingArtifactFile(jsonDir, a)
		if err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	if maxOverhead > 0 {
		return a.CheckOverhead(maxOverhead)
	}
	return nil
}

// checkTracingArtifact validates a tracing artifact and applies the
// overhead gate — the smoke tests' machine-checkable gate on the
// "tracing is near-free" claim.
func checkTracingArtifact(path string, maxOverhead float64) error {
	a, err := experiments.ReadTracingArtifactFile(path)
	if err != nil {
		return err
	}
	printTracing(a)
	if maxOverhead > 0 {
		return a.CheckOverhead(maxOverhead)
	}
	return nil
}

func printTracing(a *experiments.TracingArtifact) {
	fmt.Printf("tracing artifact ok: baseline=%.0f/s traced=%.0f/s overhead=%.2f%% spans=%d (baseline p99=%.3gms traced p99=%.3gms)\n",
		a.BaselineThroughputPerSec, a.TracedThroughputPerSec, a.OverheadPercent,
		a.SpansRecorded, a.BaselineLatencyMsP99, a.TracedLatencyMsP99)
}

// parseCorruptionKind resolves a corruption family by its String() name.
func parseCorruptionKind(name string) (dataset.CorruptionKind, error) {
	kinds := []dataset.CorruptionKind{
		dataset.CorruptFog, dataset.CorruptRain, dataset.CorruptSnow,
		dataset.CorruptFrost, dataset.CorruptBlur, dataset.CorruptNoise,
		dataset.CorruptRotate, dataset.CorruptScale, dataset.CorruptJitter,
	}
	valid := make([]string, 0, len(kinds))
	for _, k := range kinds {
		if k.String() == name {
			return k, nil
		}
		valid = append(valid, k.String())
	}
	return dataset.CorruptNone, fmt.Errorf("unknown -shift-kind %q (valid: %s)", name, strings.Join(valid, ", "))
}

// runDriftbench measures drift-detection latency and monitoring overhead
// against in-process servers, prints the headline numbers, optionally
// records the artifact, and applies the detection + overhead gate.
func runDriftbench(cp *service.Checkpoint, lcfg serve.LoadConfig, cfg serve.Config, monCfg monitor.Config, trials int, maxOverhead float64, jsonDir string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	a, err := serve.RunDriftBench(ctx, cp, lcfg, cfg, monCfg, trials)
	if err != nil {
		return err
	}
	printDrift(a)
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
		path, err := experiments.WriteDriftArtifactFile(jsonDir, a)
		if err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	if maxOverhead > 0 {
		return a.CheckDrift(maxOverhead)
	}
	return nil
}

// checkDriftArtifact validates a drift artifact and applies the detection +
// overhead gate — the smoke tests' machine-checkable gate on the "the
// monitor catches shifts and is near-free" claim.
func checkDriftArtifact(path string, maxOverhead float64) error {
	a, err := experiments.ReadDriftArtifactFile(path)
	if err != nil {
		return err
	}
	printDrift(a)
	if maxOverhead > 0 {
		return a.CheckDrift(maxOverhead)
	}
	return nil
}

func printDrift(a *experiments.DriftArtifact) {
	verdict := "shift NOT detected"
	if a.Detected {
		verdict = fmt.Sprintf("detected at sample %d (latency %d samples, score %.2f)",
			a.DetectedAtSample, a.DetectionLatencySamples, a.ScoreAtDetection)
	}
	fmt.Printf("drift artifact ok: baseline=%.0f/s monitored=%.0f/s overhead=%.2f%% samples=%d dropped=%d evals=%d shiftAtSample=%d falsePositives=%d maxScore=%.2f — %s\n",
		a.BaselineThroughputPerSec, a.MonitoredThroughputPerSec, a.OverheadPercent,
		a.SamplesSeen, a.SamplesDropped, a.Evals, a.ShiftAtSample, a.FalsePositives, a.MaxScore, verdict)
}

// runAdaptbench drives the closed-loop continual adaptation benchmark,
// prints the headline numbers, optionally records the artifact, and applies
// the closed-loop gate.
func runAdaptbench(cp *service.Checkpoint, bcfg continual.BenchConfig, jsonDir string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	a, err := continual.RunAdaptLiveBench(ctx, cp, bcfg)
	if err != nil {
		return err
	}
	printAdapt(a)
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
		path, err := experiments.WriteAdaptLiveArtifactFile(jsonDir, a)
		if err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return a.CheckAdaptLive()
}

// checkAdaptArtifact validates an adapt-live artifact and applies the
// closed-loop gate — the smoke tests' machine-checkable gate on the "the
// serving tier adapts to live drift end to end" claim.
func checkAdaptArtifact(path string) error {
	a, err := experiments.ReadAdaptLiveArtifactFile(path)
	if err != nil {
		return err
	}
	printAdapt(a)
	return a.CheckAdaptLive()
}

func printAdapt(a *experiments.AdaptLiveArtifact) {
	verdict := "shift NOT detected"
	if a.Detected {
		verdict = fmt.Sprintf("detected at sample %d (latency %d samples, score %.2f)",
			a.DetectedAtSample, a.DetectionLatencySamples, a.ScoreAtDetection)
	}
	fmt.Printf("adapt-live artifact ok: requests=%d errors=%d rejected=%d shiftAtSample=%d — %s\n",
		a.Requests, a.Errors, a.Rejected, a.ShiftAtSample, verdict)
	fmt.Printf("  loop: windows completed=%d rolledBack=%d rejected=%d, snapshot v%d→v%d, window=%.0fms, shift→swap=%.0fms, experts %d→%d (+%d new, %d merged)\n",
		a.WindowsCompleted, a.WindowsRolledBack, a.WindowsRejected,
		a.SwappedFromVersion, a.SwappedToVersion, a.WindowDurationMs, a.AdaptLatencyMs,
		a.ExpertsBefore, a.ExpertsAfter, a.NewExperts, a.Merged)
	fmt.Printf("  recovery: shifted routing %.3f → %.3f, shifted accuracy %.3f → %.3f (validation matched %.3f → %.3f over %d held-back samples)\n",
		a.FrozenShiftedRouted, a.PostSwapShiftedRouted,
		a.FrozenShiftedAccuracy, a.PostSwapShiftedAccuracy,
		a.ValidationBaselineMatched, a.ValidationCandidateMatched, a.ValidationSamples)
}

// writeMetrics records the final serving counters as indented JSON.
func writeMetrics(path string, m serve.MetricsSnapshot) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runLoadgen drives the in-process load-generation mode. When a monitor is
// attached (shift-injection runs), the run additionally reports whether the
// injected regime change was detected, in the monitor's tee clock.
func runLoadgen(srv *serve.Server, cp *service.Checkpoint, cfg serve.Config, lcfg serve.LoadConfig, mon *monitor.Monitor, jsonDir string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := serve.RunLoad(ctx, srv, cp, lcfg)
	if err != nil {
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if mon != nil {
		mon.Flush()
		sum := mon.Summary()
		fmt.Printf("drift monitor: %d samples folded (%d teed, %d dropped), %d evals, calibrated=%t, score=%.3f/%.3g\n",
			sum.Samples, sum.Teed, sum.Dropped, sum.Evals, sum.Calibrated, sum.Score, sum.Threshold)
		if res.ShiftInjected {
			detectedAt := uint64(0)
			for _, ev := range mon.Evaluations(0, -1) {
				if ev.Err == "" && ev.Crossed && ev.TeedAt > res.ShiftTeedSamples {
					detectedAt = ev.TeedAt
					break
				}
			}
			if detectedAt != 0 {
				fmt.Printf("drift detected: shift at sample %d, crossed at sample %d (latency %d samples)\n",
					res.ShiftTeedSamples, detectedAt, detectedAt-res.ShiftTeedSamples)
			} else {
				fmt.Printf("drift NOT detected: shift at sample %d, max score %.3f\n", res.ShiftTeedSamples, sum.Score)
			}
		}
		mon.Close()
	}
	fmt.Printf("loadgen: %d predictions in %.2fs (%.0f/s), p50=%s p90=%s p99=%s, accuracy=%.3f routing=%.3f meanBatch=%.2f\n",
		res.Requests, res.Duration.Seconds(), res.Throughput(),
		res.LatencyP50, res.LatencyP90, res.LatencyP99, res.Accuracy(), res.RoutingAccuracy(), res.Server.MeanBatch)
	for _, g := range res.Regimes {
		fmt.Printf("  regime %-10s %6d requests  accuracy=%.3f  routed-to-assigned=%.3f  matched=%.3f\n",
			g.Regime, g.Requests,
			float64(g.Correct)/float64(g.Requests),
			float64(g.RoutedToAssigned)/float64(g.Requests),
			float64(g.Matched)/float64(g.Requests))
	}
	if res.Errors > 0 {
		return fmt.Errorf("loadgen: %d requests errored", res.Errors)
	}
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
		path, err := experiments.WriteServingArtifactFile(jsonDir, res.Artifact(cp, lcfg, cfg))
		if err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}
