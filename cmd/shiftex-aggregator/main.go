// Command shiftex-aggregator is the ShiftEx service daemon: it drives the
// full shift-aware mixture-of-experts algorithm (detection → latent-memory
// lookup → expert spawn/consolidation) over parties reached through TCP —
// the deployable, cross-process counterpart of the in-process experiments,
// making the same decisions for the same seed.
//
// Start scenario-mode parties first, then point the aggregator at them:
//
//	shiftex-party -addr 127.0.0.1:7001 -party 0 -nparties 2 -windows 3 -scenario-seed 42 &
//	shiftex-party -addr 127.0.0.1:7002 -party 1 -nparties 2 -windows 3 -scenario-seed 42 &
//	shiftex-aggregator -parties 127.0.0.1:7001,127.0.0.1:7002 -windows 3 -seed 42 \
//	    -http 127.0.0.1:8080 -checkpoint shiftex.ckpt.json -quorum 0.5
//
// The i-th -parties address must serve party ID i.
//
// Alternatively, -load N spins N in-process parties (still over loopback
// TCP) to exercise the daemon at scale without managing processes:
//
//	shiftex-aggregator -load 16 -windows 4 -seed 7
//
// A killed daemon restarted with -resume continues from its last completed
// window and converges to the same final state as an uninterrupted run;
// party processes keep their stream position and detector state on their
// own. -http serves /healthz, /state, and Prometheus /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/adapt"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/service"
	"repro/internal/shiftex"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shiftex-aggregator:", err)
		os.Exit(1)
	}
}

// parseArch parses the -arch hidden-width list ("32,16").
func parseArch(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	hidden := make([]int, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -arch %q: widths must be positive integers (e.g. -arch 32,16)", s)
		}
		hidden = append(hidden, w)
	}
	return hidden, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("shiftex-aggregator", flag.ContinueOnError)
	partyList := fs.String("parties", "", "comma-separated party addresses (i-th address serves party i)")
	load := fs.Int("load", 0, "load-generator mode: spin N in-process parties over loopback TCP instead of -parties")
	var windows int
	fs.IntVar(&windows, "windows", 3, "stream windows including the W0 bootstrap")
	fs.IntVar(&windows, "window", 3, "alias for -windows")
	rounds := fs.Int("rounds", 6, "federated rounds per adaptive window")
	bootstrap := fs.Int("bootstrap", 0, "bootstrap rounds in window 0 (0 = same as -rounds)")
	participants := fs.Int("participants", 10, "per-expert cohort sample size per round")
	epochs := fs.Int("epochs", 2, "local epochs per round")
	lr := fs.Float64("lr", 0.02, "local learning rate")
	seed := fs.Uint64("seed", 1, "run seed: roots the aggregator RNG, every per-party stream, and (with -load) the scenario")
	archFlag := fs.String("arch", "32,16", "hidden layer widths, comma-separated")
	samples := fs.Int("samples", 120, "scenario training samples per party per window (must match the parties'; with -load -resume, must match the original run — the checkpoint pins seed and windows but not data shape)")
	testN := fs.Int("test", 60, "scenario test samples per party per window (same consistency rule as -samples)")
	quorum := fs.Float64("quorum", 0.5, "fraction of selected parties that must report for a round to complete, in (0,1] (1 = all; use a small fraction to tolerate most dropouts)")
	timeout := fs.Duration("timeout", time.Minute, "per-party call timeout (0 = transport default)")
	retries := fs.Int("retries", 1, "extra attempts per failed party call")
	workers := fs.Int("workers", 4, "concurrent party calls per fan-out")
	checkpoint := fs.String("checkpoint", "", "checkpoint file written after every completed window")
	resume := fs.Bool("resume", false, "resume from -checkpoint instead of starting at window 0")
	policyName := fs.String("policy", "", "adaptation policy the aggregator runs (empty = default); on -resume the checkpoint's policy is pinned and a conflicting flag is an error")
	httpAddr := fs.String("http", "", "serve /healthz, /state, /metrics on this address (empty = off)")
	debugAddr := fs.String("debug-addr", "", "serve /v1/debug/pprof/ and /v1/debug/traces on this extra address (empty = off)")
	traceBuffer := fs.Int("trace-buffer", telemetry.DefaultRingSize, "span ring-buffer capacity for /v1/debug/traces")
	if err := fs.Parse(args); err != nil {
		return err
	}

	hidden, err := parseArch(*archFlag)
	if err != nil {
		return err
	}
	if *resume && *checkpoint == "" {
		return errors.New("-resume requires -checkpoint PATH")
	}
	// Resolve the policy up front so a typo fails with the live registry
	// listing before any party is contacted.
	if _, err := adapt.NewPolicy(*policyName); err != nil {
		return err
	}
	if *quorum <= 0 || *quorum > 1 {
		return fmt.Errorf("-quorum must be in (0,1], got %g (1 = all parties; a round always needs at least one update, so there is no 'no quorum' setting)", *quorum)
	}
	if (*partyList == "") == (*load == 0) {
		return errors.New("exactly one of -parties or -load is required\n  usage: -parties host:port,host:port  |  -load N")
	}

	// On resume the checkpoint pins the run's protocol. Peek it up front
	// so everything built before service.Resume — the -load scenario, the
	// usage hints — derives from the checkpointed seed and stream length
	// rather than flag defaults that may not match the original run. An
	// explicit -windows/-window flag still extends a finished stream.
	windowsSet := false
	fs.Visit(func(fg *flag.Flag) {
		if fg.Name == "windows" || fg.Name == "window" {
			windowsSet = true
		}
	})
	var cp *service.Checkpoint
	if *resume {
		cp, err = service.LoadCheckpoint(*checkpoint)
		if err != nil {
			return err
		}
		*seed = cp.Seed
		if !windowsSet {
			windows = cp.NumWindows
		}
	}

	logger := telemetry.NewLogger(os.Stderr, "aggregator")
	tracer := telemetry.NewTracer("aggregator", *traceBuffer)
	if *debugAddr != "" {
		telemetry.ServeDebug(*debugAddr, tracer, func(err error) {
			logger.Error("debug listener failed", "error", err)
		})
	}

	// Assemble the party fleet.
	var transport service.Transport
	var nparties int
	if *load > 0 {
		nparties = *load
		tr, closeFn, err := loadFleet(*load, windows, *samples, *testN, *seed, tracer)
		if err != nil {
			return err
		}
		defer closeFn()
		tr.SetTracer(tracer)
		transport = tr
	} else {
		addrs := strings.Split(*partyList, ",")
		nparties = len(addrs)
		m := make(map[int]string, len(addrs))
		for i, a := range addrs {
			m[i] = strings.TrimSpace(a)
		}
		tr, err := service.NewTCPTransport(m, 5*time.Second, *timeout)
		if err != nil {
			return err
		}
		// Fail fast with an actionable message before any training.
		if err := tr.Ping(5 * time.Second); err != nil {
			return fmt.Errorf("%w\n  start it with: shiftex-party -addr HOST:PORT -party ID -nparties %d -windows %d -scenario-seed %d",
				err, nparties, windows, *seed)
		}
		tr.SetTracer(tracer)
		transport = tr
	}

	spec := service.ScenarioSpec(nparties, *samples, *testN, windows)
	cfg := shiftex.DefaultConfig()
	cfg.RoundsPerWindow = *rounds
	cfg.BootstrapRounds = *bootstrap
	if cfg.BootstrapRounds <= 0 {
		cfg.BootstrapRounds = *rounds
	}
	cfg.ParticipantsPerRound = *participants
	cfg.Train.Epochs = *epochs
	cfg.Train.LR = *lr

	opts := service.Options{
		Shiftex:    cfg,
		Policy:     *policyName,
		Arch:       service.DefaultArch(spec, hidden),
		NumClasses: spec.NumClasses,
		Windows:    windows,
		Seed:       *seed,
		Fanout: service.FanoutConfig{
			Workers: *workers,
			Timeout: *timeout,
			Retries: *retries,
			Quorum:  *quorum,
		},
		CheckpointPath: *checkpoint,
		Tracer:         tracer,
	}

	var rt *service.Runtime
	if *resume {
		rt, err = service.ResumeFrom(transport, cp, opts)
		if err != nil {
			return err
		}
		fmt.Printf("resumed from %s at window %d/%d (policy %s)\n", *checkpoint, rt.NextWindow(), rt.Windows(), rt.Aggregator().PolicyName())
	} else {
		rt, err = service.NewRuntime(transport, opts)
		if err != nil {
			return err
		}
		fmt.Printf("adaptation policy: %s\n", rt.Aggregator().PolicyName())
	}

	if *httpAddr != "" {
		srv := &http.Server{Addr: *httpAddr, Handler: rt.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "shiftex-aggregator: http:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("observability on http://%s (/v1/healthz /v1/state /v1/metrics; unversioned aliases deprecated)\n", *httpAddr)
	}
	logger.Info("listening", "addr", *httpAddr, "parties", nparties,
		"windows", windows, "policy", rt.Aggregator().PolicyName(),
		"nextWindow", rt.NextWindow(), "debugAddr", *debugAddr)

	// SIGTERM (the signal process managers send) drains like SIGINT: the
	// current window completes and checkpoints before the loop observes
	// cancellation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for w := rt.NextWindow(); w < rt.Windows(); w++ {
		select {
		case <-ctx.Done():
			if *checkpoint != "" {
				fmt.Println("interrupted; state is checkpointed through the last completed window")
			} else {
				fmt.Println("interrupted; no -checkpoint was set, progress is lost")
			}
			mi := rt.Metrics().Snapshot()
			logger.Info("drained", "windowsDone", mi.WindowsDone,
				"rounds", mi.RoundsTotal, "partyFailures", mi.PartyFailures,
				"spans", tracer.SpanCount())
			return nil
		default:
		}
		rep, err := rt.RunWindow(w)
		if err != nil {
			return err
		}
		fmt.Printf("window %d done: acc=%.3f shifted(cov=%d label=%d) experts=%d (new=%d merged=%d)\n",
			w, last(rep.Trace), rep.ShiftedCov, rep.ShiftedLabel,
			rep.ExpertsAfter, rep.NewExperts, rep.Merged)
	}

	m := rt.Metrics().Snapshot()
	fmt.Printf("run complete: %d windows, %d rounds (mean %.2fs), %d experts, %d party failures tolerated\n",
		m.WindowsDone, m.RoundsTotal, m.RoundLatencyMeanS, rt.Aggregator().Registry().Len(), m.PartyFailures)
	logger.Info("drained", "windowsDone", m.WindowsDone, "rounds", m.RoundsTotal,
		"partyFailures", m.PartyFailures, "spans", tracer.SpanCount())
	return nil
}

func last(trace []float64) float64 {
	if len(trace) == 0 {
		return 0
	}
	return trace[len(trace)-1]
}

// loadFleet starts n in-process scenario parties on loopback TCP — the
// load-generator mode that exercises the full wire path in one process.
func loadFleet(n, windows, samples, testN int, seed uint64, tracer *telemetry.Tracer) (*service.TCPTransport, func(), error) {
	spec := service.ScenarioSpec(n, samples, testN, windows)
	sc, err := dataset.BuildScenario(spec, dataset.DefaultShiftConfig(), seed)
	if err != nil {
		return nil, nil, err
	}
	var servers []*fl.PartyServer
	closeAll := func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}
	addrs := make(map[int]string, n)
	for p := 0; p < n; p++ {
		provider, err := service.PartyWindows(sc, p)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		train, test, err := provider.PartyWindow(0)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		srv, err := fl.NewPartyServer("127.0.0.1:0", &fl.Party{ID: p, Train: train, Test: test}, spec.NumClasses, tensor.NewRNG(seed+uint64(p)))
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		srv.SetWindowProvider(provider)
		// In-process parties share the daemon's ring: their party.<kind>
		// spans land next to the fl.<kind> client spans they answer.
		srv.SetTracer(tracer)
		servers = append(servers, srv)
		addrs[p] = srv.Addr()
	}
	tr, err := service.NewTCPTransport(addrs, 0, 0)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	fmt.Printf("load mode: %d in-process parties on loopback TCP\n", n)
	return tr, closeAll, nil
}
