// Command shiftex-aggregator runs a minimal multi-process federation demo:
// it dials a set of shiftex-party servers over TCP, trains a global model
// with FedAvg for a number of rounds, collects Algorithm-1 shift statistics
// from every party each "window", and prints per-party accuracy — the
// cross-process counterpart of the in-process experiments.
//
// Start parties first (each prints its address), then:
//
//	shiftex-aggregator -parties 127.0.0.1:7001,127.0.0.1:7002 -rounds 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shiftex-aggregator:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shiftex-aggregator", flag.ContinueOnError)
	partyList := fs.String("parties", "", "comma-separated party addresses")
	rounds := fs.Int("rounds", 10, "federated rounds")
	epochs := fs.Int("epochs", 2, "local epochs per round")
	lr := fs.Float64("lr", 0.02, "local learning rate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := strings.Split(*partyList, ",")
	if *partyList == "" || len(addrs) == 0 {
		return fmt.Errorf("no parties given (use -parties host:port,host:port)")
	}

	spec := dataset.FMoWSpec()
	arch := []int{spec.InputDim, 32, 16, spec.NumClasses}
	model, err := nn.NewMLP(arch, tensor.NewRNG(1))
	if err != nil {
		return err
	}
	global := model.Params()

	trainer := fl.NewTCPTrainer(nil)
	selected := make([]int, 0, len(addrs))
	for i, addr := range addrs {
		trainer.Register(i, strings.TrimSpace(addr))
		selected = append(selected, i)
	}
	engine := &fl.Engine{Arch: arch, Trainer: trainer, Workers: 4}

	cfg := fl.TrainConfig{Epochs: *epochs, BatchSize: 16, LR: *lr, Momentum: 0.9}
	for r := 0; r < *rounds; r++ {
		cfg.Seed = uint64(r + 1)
		next, updates, err := engine.Round(global, selected, cfg)
		if err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
		global = next
		var loss float64
		for _, u := range updates {
			loss += u.TrainLoss
		}
		fmt.Printf("round %2d: %d updates, mean local loss %.4f\n", r, len(updates), loss/float64(len(updates)))
	}

	fmt.Println("collecting shift statistics and per-party accuracy:")
	for _, id := range selected {
		st, err := trainer.FetchStats(id, arch, global, spec.NumClasses)
		if err != nil {
			return fmt.Errorf("stats from party %d: %w", id, err)
		}
		acc, err := trainer.EvalParty(id, arch, global)
		if err != nil {
			return fmt.Errorf("eval party %d: %w", id, err)
		}
		fmt.Printf("party %d: acc=%.3f  mmd=%.4f  jsd=%.4f  samples=%d\n",
			id, acc, st.MMD, st.JSD, st.NumSamples)
	}
	return nil
}
