// Command shiftex-gateway is the front tier of the ShiftEx serving stack:
// it owns a registry of named models, each backed by a fleet of
// shiftex-serve replicas, and routes /v1 traffic to them with
// consistent-hash affinity, health-checked failover, and a config-selected
// middleware chain (auth, rate limit, admission control, logging).
//
//	shiftex-aggregator -load 8 -windows 3 -seed 42 -checkpoint ckpt.json
//	shiftex-serve -checkpoint ckpt.json -http 127.0.0.1:9001 &
//	shiftex-serve -checkpoint ckpt.json -http 127.0.0.1:9002 &
//	shiftex-gateway -http 127.0.0.1:8080 -backends 127.0.0.1:9001,127.0.0.1:9002
//	curl -s -X POST -d '{"x":[0.1, ...]}' http://127.0.0.1:8080/v1/predict
//
// Multi-model deployments and middleware chains are described in a JSON
// config (-config); middlewares are selected BY NAME per route group from
// the registered set, and an unknown name fails startup with the live
// listing — the same convention the adaptation-policy registry uses.
//
// -loadgen switches to load-generation mode: the checkpoint run's scenario
// stream is replayed over HTTP against a RUNNING gateway (-url), optionally
// SIGKILLing a replica process mid-load (-kill-pid), and the run is
// recorded as a versioned BENCH_gateway.json artifact. -check validates an
// artifact and gates on zero errors and minimum consistent-hash affinity.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/gateway"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shiftex-gateway:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shiftex-gateway", flag.ContinueOnError)
	configPath := fs.String("config", "", "gateway JSON config (models, middleware chains, auth tokens, limits)")
	httpAddr := fs.String("http", "", "bind address (overrides config listen; default 127.0.0.1:8080)")
	backends := fs.String("backends", "", "comma-separated serve replica addresses for the default model (config-free single-model mode)")
	verbose := fs.Bool("v", false, "log each request and replica eviction/re-admission")
	debugAddr := fs.String("debug-addr", "", "serve /v1/debug/pprof/ and /v1/debug/traces on this extra address (empty = off)")
	traceBuffer := fs.Int("trace-buffer", telemetry.DefaultRingSize, "span ring-buffer capacity for /v1/debug/traces")

	loadgen := fs.Bool("loadgen", false, "load-generation mode: replay the checkpoint's scenario over HTTP against -url and write BENCH_gateway.json")
	checkpoint := fs.String("checkpoint", "", "loadgen: aggregator checkpoint the replicas serve (ground-truth source)")
	url := fs.String("url", "http://127.0.0.1:8080", "loadgen: base URL of the running gateway")
	models := fs.String("models", "", "loadgen: comma-separated model names to spread requests across (empty = default)")
	token := fs.String("token", "", "loadgen: bearer token (required when the predict chain includes auth)")
	qps := fs.Float64("qps", 0, "loadgen: target aggregate QPS (0 = open loop)")
	concurrency := fs.Int("concurrency", 0, "loadgen: client goroutines (0 = two per core)")
	repeat := fs.Int("repeat", 1, "loadgen: passes over the scenario's request stream")
	duration := fs.Duration("duration", 0, "loadgen: time budget (0 = run the full stream)")
	retries := fs.Int("retries", 2, "loadgen: client-side retries per failed request")
	killPid := fs.Int("kill-pid", 0, "loadgen: SIGKILL this replica PID mid-load (0 = no kill)")
	killAt := fs.Float64("kill-at", 0.5, "loadgen: stream fraction at which the kill fires")
	samples := fs.Int("samples", 120, "loadgen: scenario training samples per party per window (must match the checkpointed run)")
	testN := fs.Int("test", 60, "loadgen: scenario test samples per party per window (must match the checkpointed run)")
	jsonDir := fs.String("json", "", "loadgen: write BENCH_gateway.json into this directory (empty = don't write)")

	check := fs.String("check", "", "validate a BENCH_gateway.json artifact, print its headline numbers, and exit")
	minAffinity := fs.Float64("min-affinity", 0, "with -check: fail unless every shrink retained at least this fraction of surviving-owner keys")
	minThroughput := fs.Float64("min-throughput", 0, "with -check: fail unless the artifact reports at least this many predictions/sec")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check != "" {
		return checkArtifact(*check, *minAffinity, *minThroughput)
	}
	if *loadgen {
		if *checkpoint == "" {
			return errors.New("-loadgen requires -checkpoint PATH (the checkpoint the replicas serve)")
		}
		cp, err := service.LoadCheckpoint(*checkpoint)
		if err != nil {
			return err
		}
		var names []string
		if *models != "" {
			names = strings.Split(*models, ",")
		}
		return runLoadgen(cp, gateway.LoadConfig{
			URL:             strings.TrimRight(*url, "/"),
			Models:          names,
			Token:           *token,
			TargetQPS:       *qps,
			Concurrency:     *concurrency,
			Repeat:          *repeat,
			MaxDuration:     *duration,
			Retries:         *retries,
			KillPid:         *killPid,
			KillAtFraction:  *killAt,
			SamplesPerParty: *samples,
			TestPerParty:    *testN,
		}, *jsonDir)
	}

	cfg := gateway.Config{}
	if *configPath != "" {
		var err error
		cfg, err = gateway.LoadConfigFile(*configPath)
		if err != nil {
			return err
		}
	}
	if *backends != "" {
		if cfg.Models == nil {
			cfg.Models = map[string][]string{}
		}
		cfg.Models["default"] = append(cfg.Models["default"], strings.Split(*backends, ",")...)
	}
	if len(cfg.Models) == 0 {
		return errors.New("no replicas configured: pass -backends addr,addr or a -config with a models table\n  (replicas may also self-register via POST /v1/replicas once the gateway is up)")
	}
	addr := cfg.Listen
	if *httpAddr != "" {
		addr = *httpAddr
	}
	if addr == "" {
		addr = "127.0.0.1:8080"
	}
	logger := telemetry.NewLogger(os.Stderr, "gateway")
	var gwLogger *slog.Logger
	if *verbose {
		gwLogger = logger
	}
	g, err := gateway.New(cfg, gwLogger)
	if err != nil {
		return err
	}
	tracer := telemetry.NewTracer("gateway", *traceBuffer)
	g.SetTracer(tracer)
	if *debugAddr != "" {
		telemetry.ServeDebug(*debugAddr, tracer, func(err error) {
			logger.Error("debug listener failed", "error", err)
		})
	}
	g.Start()
	defer g.Close()

	httpSrv := &http.Server{Addr: addr, Handler: g.Handler()}
	httpErr := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	st := g.State()
	fmt.Printf("gateway listening on http://%s: %d model(s), middlewares %v (available: %s)\n",
		addr, len(st.Models), st.Middlewares, strings.Join(gateway.AvailableMiddlewares(), ", "))
	logger.Info("listening", "addr", addr, "models", len(st.Models),
		"middlewares", fmt.Sprint(st.Middlewares), "debugAddr", *debugAddr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-httpErr:
		return fmt.Errorf("http: %w", err)
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(shutCtx)
		st := g.State()
		fmt.Printf("gateway drained: %d requests (%d errors, %d rejected), %d failovers, %d evictions, %d re-admissions, session cache %d/%d hits\n",
			st.Requests, st.Errors, st.Rejected, st.Failovers, st.Evictions, st.Readmissions,
			st.SessionHits, st.SessionHits+st.SessionMisses)
		logger.Info("drained", "requests", st.Requests, "errors", st.Errors,
			"rejected", st.Rejected, "failovers", st.Failovers,
			"spans", tracer.SpanCount())
		return err
	}
}

// runLoadgen drives the HTTP load-generation mode against a running
// gateway and optionally records the artifact.
func runLoadgen(cp *service.Checkpoint, lcfg gateway.LoadConfig, jsonDir string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := gateway.RunLoad(ctx, cp, lcfg)
	if err != nil {
		return err
	}
	fmt.Printf("loadgen: %d predictions in %.2fs (%.0f/s), p50=%s p90=%s p99=%s, accuracy=%.3f\n",
		res.Requests, res.Duration.Seconds(), res.Throughput(),
		res.LatencyP50, res.LatencyP90, res.LatencyP99, res.Accuracy())
	fmt.Printf("  errors=%d retried=%d rejected=%d gateway-cached=%d failovers=%d evictions=%d readmissions=%d\n",
		res.Errors, res.Retried, res.Rejected, res.GatewayCached,
		res.Gateway.Failovers, res.Gateway.Evictions, res.Gateway.Readmissions)
	for _, m := range res.Gateway.Models {
		line := fmt.Sprintf("  model %-10s replicas=%d healthy=%d", m.Name, len(m.Replicas), m.HealthyReplicas)
		if m.LastShrink != nil {
			line += fmt.Sprintf("  shrink: lost %s, %d keys tracked, moved %.3f, retained-of-survivors %.3f",
				m.LastShrink.Removed, m.LastShrink.KeysTracked, m.LastShrink.MovedFraction, m.LastShrink.RetainedOfSurvivors)
		}
		fmt.Println(line)
	}
	if res.Errors > 0 {
		return fmt.Errorf("loadgen: %d requests failed after retries", res.Errors)
	}
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return err
		}
		path, err := experiments.WriteGatewayArtifactFile(jsonDir, res.Artifact(cp, lcfg))
		if err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

// checkArtifact validates a gateway artifact and applies the acceptance
// gates: zero errors, and (when asked) minimum affinity retention and
// throughput.
func checkArtifact(path string, minAffinity, minThroughput float64) error {
	a, err := experiments.ReadGatewayArtifactFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("gateway artifact ok: requests=%d errors=%d retried=%d throughputPerSec=%.0f p99Ms=%.3g accuracy=%.3f failovers=%d evictions=%d minAffinity=%.3f models=%d\n",
		a.Requests, a.Errors, a.Retried, a.ThroughputPerSec, a.LatencyMsP99,
		a.Accuracy, a.Failovers, a.Evictions, a.MinAffinityRetained(), len(a.Models))
	if a.Errors > 0 {
		return fmt.Errorf("artifact records %d requests failed after retries", a.Errors)
	}
	if minAffinity > 0 {
		if !a.Options.KillReplica {
			return errors.New("-min-affinity set but the artifact records no replica kill")
		}
		if got := a.MinAffinityRetained(); got < minAffinity {
			return fmt.Errorf("affinity retention %.3f below required %.3f", got, minAffinity)
		}
	}
	if minThroughput > 0 && a.ThroughputPerSec < minThroughput {
		return fmt.Errorf("throughput %.0f/s below required %.0f/s", a.ThroughputPerSec, minThroughput)
	}
	return nil
}
