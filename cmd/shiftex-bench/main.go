// Command shiftex-bench regenerates the paper's tables and figures from the
// Go reproduction. Each experiment id maps to one artifact of the paper's
// evaluation (§7):
//
//	table1-fmow, table1-cifar           Table 1 (Drop/Time/Max per window)
//	table2-tinyimagenet, table2-femnist,
//	table2-fashion                      Table 2
//	fig3, fig4                          convergence curves
//	fig5, fig6                          max accuracy per window
//	fig7, fig8                          expert distributions
//	overheads                           §7 ShiftEx overhead measurements
//	all                                 everything above
//
// Scale and seeds are configurable; -paper approximates the full protocol.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/facility"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shiftex-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shiftex-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (see package doc)")
	paper := fs.Bool("paper", false, "use paper-scale protocol (slow)")
	scale := fs.Float64("scale", 0, "override party/sample scale (0 = preset)")
	seeds := fs.Int("seeds", 0, "override number of seeds (0 = preset)")
	rounds := fs.Int("rounds", 0, "override rounds per window (0 = preset)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.QuickOptions()
	if *paper {
		opts = experiments.PaperOptions()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *seeds > 0 {
		opts.Seeds = opts.Seeds[:0]
		for s := 1; s <= *seeds; s++ {
			opts.Seeds = append(opts.Seeds, uint64(s))
		}
	}
	if *rounds > 0 {
		opts.RoundsPerWindow = *rounds
		opts.BootstrapRounds = *rounds
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{
			"table1-fmow", "table1-cifar", "table2-tinyimagenet",
			"table2-femnist", "table2-fashion",
			"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "overheads",
		}
	}
	cache := map[string]*experiments.Comparison{}
	for _, id := range ids {
		start := time.Now()
		if err := runExperiment(strings.TrimSpace(id), opts, cache); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// compareCached runs (or reuses) the five-technique comparison for a
// benchmark; figure experiments share table runs.
func compareCached(name string, opts experiments.Options, cache map[string]*experiments.Comparison) (*experiments.Comparison, error) {
	if c, ok := cache[name]; ok {
		return c, nil
	}
	b, err := experiments.BenchmarkByName(name)
	if err != nil {
		return nil, err
	}
	c, err := experiments.Compare(b, opts)
	if err != nil {
		return nil, err
	}
	cache[name] = c
	return c, nil
}

func runExperiment(id string, opts experiments.Options, cache map[string]*experiments.Comparison) error {
	table := func(name string) error {
		c, err := compareCached(name, opts, cache)
		if err != nil {
			return err
		}
		if err := experiments.WriteTable(os.Stdout, c); err != nil {
			return err
		}
		return experiments.WriteSummary(os.Stdout, c)
	}
	figure := func(names []string, write func(*experiments.Comparison) error) error {
		for _, name := range names {
			c, err := compareCached(name, opts, cache)
			if err != nil {
				return err
			}
			if err := write(c); err != nil {
				return err
			}
		}
		return nil
	}
	switch id {
	case "table1-fmow":
		return table("fmow")
	case "table1-cifar":
		return table("cifar10c")
	case "table2-tinyimagenet":
		return table("tinyimagenetc")
	case "table2-femnist":
		return table("femnist")
	case "table2-fashion":
		return table("fashionmnist")
	case "fig3":
		return figure([]string{"fmow", "tinyimagenetc", "cifar10c"}, func(c *experiments.Comparison) error {
			return experiments.WriteConvergence(os.Stdout, c)
		})
	case "fig4":
		return figure([]string{"femnist", "fashionmnist"}, func(c *experiments.Comparison) error {
			return experiments.WriteConvergence(os.Stdout, c)
		})
	case "fig5":
		return figure([]string{"fmow", "tinyimagenetc", "cifar10c"}, func(c *experiments.Comparison) error {
			return experiments.WriteMaxAccuracy(os.Stdout, c)
		})
	case "fig6":
		return figure([]string{"femnist", "fashionmnist"}, func(c *experiments.Comparison) error {
			return experiments.WriteMaxAccuracy(os.Stdout, c)
		})
	case "fig7":
		return figure([]string{"fmow", "tinyimagenetc", "cifar10c"}, func(c *experiments.Comparison) error {
			return experiments.WriteExpertDistribution(os.Stdout, c, "shiftex")
		})
	case "fig8":
		return figure([]string{"femnist", "fashionmnist"}, func(c *experiments.Comparison) error {
			return experiments.WriteExpertDistribution(os.Stdout, c, "shiftex")
		})
	case "overheads":
		return overheads(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
}

// overheads measures the §7 aggregator-side costs on ResNet-50-scale
// statistics: 200 parties, 2048-d embeddings.
func overheads(w interface{ Write([]byte) (int, error) }) error {
	const (
		parties = 200
		dim     = 2048
		sample  = 64
	)
	rng := tensor.NewRNG(1)
	fmt.Fprintf(w, "overheads (parties=%d, embedding dim=%d)\n", parties, dim)

	// MMD drift detection per party (sample×sample kernel).
	xs := make([]tensor.Vector, sample)
	ys := make([]tensor.Vector, sample)
	for i := range xs {
		xs[i] = rng.NormVec(dim, 0, 1)
		ys[i] = rng.NormVec(dim, 0.5, 1)
	}
	start := time.Now()
	if _, err := stats.MMD(xs, ys, stats.RBFKernel{Gamma: 0.001}); err != nil {
		return err
	}
	fmt.Fprintf(w, "  MMD drift detection (%dx%d, %d-d): %v\n", sample, sample, dim, time.Since(start))

	// Clustering 200 parties' latent representations.
	points := make([]tensor.Vector, parties)
	for i := range points {
		points[i] = rng.NormVec(dim, float64(i%4), 1)
	}
	start = time.Now()
	if _, err := cluster.SelectK(points, 6, cluster.Config{}, rng); err != nil {
		return err
	}
	fmt.Fprintf(w, "  clustering %d parties (%d-d): %v\n", parties, dim, time.Since(start))

	// Expert assignment for 6 clusters over 5 experts.
	clients := make([]facility.Client, 6)
	for i := range clients {
		clients[i] = facility.Client{ID: i, Embedding: rng.NormVec(dim, 0, 1), LabelHist: stats.Uniform(10), Weight: 30}
	}
	existing := make([]facility.Facility, 5)
	for i := range existing {
		existing[i] = facility.Facility{ID: i, Signature: rng.NormVec(dim, 0, 1)}
	}
	start = time.Now()
	if _, err := facility.SolveGreedy(&facility.Instance{
		Clients: clients, Existing: existing, NewCost: 1, LabelWeight: 0.3,
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "  expert assignment (6 clusters x 5 experts): %v\n", time.Since(start))

	// Memory footprint estimates (the paper's §7 accounting).
	fmt.Fprintf(w, "  memory: expert centroids 5x%d floats = %d KB; party map %d ints = %.1f KB\n",
		dim, 5*dim*8/1024, parties, float64(parties*8)/1024)
	return nil
}
