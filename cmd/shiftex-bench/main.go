// Command shiftex-bench regenerates the paper's tables and figures from the
// Go reproduction. Each experiment id maps to one artifact of the paper's
// evaluation (§7):
//
//	table1-fmow, table1-cifar           Table 1 (Drop/Time/Max per window)
//	table2-tinyimagenet, table2-femnist,
//	table2-fashion                      Table 2
//	fig3, fig4                          convergence curves
//	fig5, fig6                          max accuracy per window
//	fig7, fig8                          expert distributions
//	overheads                           §7 ShiftEx overhead measurements
//	all                                 everything above
//
// Every experiment runs on the parallel grid engine: the benchmark ×
// technique × seed cross product is scheduled on -workers goroutines with
// results bit-identical to serial execution. -json DIR additionally writes
// one versioned BENCH_<benchmark>.json artifact per benchmark (add
// -deterministic to strip wall-clock fields so the bytes are reproducible).
// -cell benchmark/technique/seed (with * wildcards, comma-separated) runs
// just the matching grid cells; -replay FILE re-prints tables from a
// previously written artifact without re-training.
//
// -policy a,b,... sweeps adaptation policies (internal/adapt registry):
// the technique set becomes every policied technique (shiftex) under each
// named policy — cell keys read benchmark/shiftex@policy/seed — and
// artifacts gain a "-policies" name suffix so they never overwrite the
// standard per-benchmark files. Unknown policy or technique names exit
// non-zero with the live registry listing.
//
// -headline runs the standing perf-baseline grid (every benchmark ×
// technique × quick-protocol seed) and writes BENCH_headline.json with
// per-cell wall-clock data; -against FILE compares the run's total wall
// time to a recorded baseline and prints a warning (exit stays 0) when it
// regressed more than 20%. -cpuprofile/-memprofile attach pprof evidence to
// any run.
//
// Scale and seeds are configurable; -paper approximates the full protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/facility"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shiftex-bench:", err)
		os.Exit(1)
	}
}

// experimentIDs is the full -exp vocabulary, also used for usage hints.
var experimentIDs = []string{
	"table1-fmow", "table1-cifar", "table2-tinyimagenet",
	"table2-femnist", "table2-fashion",
	"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "overheads",
}

// nameHint lists the valid grid vocabulary for error messages, read live
// from the benchmark presets and the adapt registries.
func nameHint() string {
	return fmt.Sprintf("\n  benchmarks: %s\n  techniques: %s\n  policies: %s",
		strings.Join(experiments.BenchmarkNames(), ", "),
		strings.Join(experiments.TechniqueNames(), ", "),
		strings.Join(experiments.PolicyNames(), ", "))
}

func run(args []string) error {
	fs := flag.NewFlagSet("shiftex-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (see package doc)")
	paper := fs.Bool("paper", false, "use paper-scale protocol (slow)")
	scale := fs.Float64("scale", 0, "override party/sample scale (0 = preset)")
	seeds := fs.Int("seeds", 0, "override number of seeds (0 = preset)")
	seedBase := fs.Uint64("seedbase", 0, "derive the -seeds seeds from this base via RNG splitting (0 = seeds 1..N)")
	rounds := fs.Int("rounds", 0, "override rounds per window (0 = preset)")
	workers := fs.Int("workers", 0, "concurrent grid cells (0 = all cores)")
	jsonDir := fs.String("json", "", "directory to write BENCH_<benchmark>.json artifacts (empty = off)")
	deterministic := fs.Bool("deterministic", false, "strip wall-clock timing from JSON artifacts so output bytes are reproducible")
	cell := fs.String("cell", "", "run only matching grid cells: benchmark/technique/seed patterns (* wildcards, comma-separated)")
	policy := fs.String("policy", "", "comma-separated adaptation policies: sweep every policied technique (shiftex) under each, replacing the standard technique set; artifacts gain a -policies name suffix")
	replay := fs.String("replay", "", "re-print tables from a BENCH_*.json artifact instead of running")
	headline := fs.Bool("headline", false, "run the perf-baseline grid (all benchmarks x techniques x seeds) and write BENCH_headline.json")
	against := fs.String("against", "", "compare total wall time against a recorded BENCH_headline.json; warn (exit 0) on >20% regression")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Flag-combination validation happens before any mode dispatch so that
	// e.g. -replay cannot silently swallow a requested -against comparison.
	if *headline && *cell != "" {
		return errors.New("cannot combine -headline with -cell: -headline runs the fixed perf-baseline grid")
	}
	if *against != "" && !*headline {
		return errors.New("-against requires -headline (it compares headline wall time)")
	}
	if *replay != "" && *headline {
		return errors.New("cannot combine -replay with -headline: -replay re-prints a recorded artifact without running")
	}
	if *policy != "" && *headline {
		return errors.New("cannot combine -policy with -headline: -headline runs the fixed perf-baseline grid")
	}
	if *policy != "" && *replay != "" {
		return errors.New("cannot combine -policy with -replay: -replay re-prints a recorded artifact without running")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := writeHeapProfile(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, "shiftex-bench:", err)
			}
		}()
	}

	if *replay != "" {
		return replayArtifact(os.Stdout, *replay)
	}

	opts := experiments.QuickOptions()
	if *paper {
		opts = experiments.PaperOptions()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *seeds > 0 {
		if *seedBase != 0 {
			opts.Seeds = experiments.SplitSeeds(*seedBase, *seeds)
		} else {
			opts.Seeds = opts.Seeds[:0]
			for s := 1; s <= *seeds; s++ {
				opts.Seeds = append(opts.Seeds, uint64(s))
			}
		}
	} else if *seedBase != 0 {
		return fmt.Errorf("-seedbase requires -seeds N")
	}
	if *rounds > 0 {
		opts.RoundsPerWindow = *rounds
		opts.BootstrapRounds = *rounds
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", *workers)
	}
	opts.Workers = *workers

	// A -policy sweep replaces the technique set: every policied technique
	// (shiftex) under each named policy, so one grid run compares policies
	// on identical scenarios. Sweep artifacts get a "-policies" name suffix
	// so they never overwrite the standard per-benchmark artifacts.
	var techniques []experiments.TechniqueFactory
	artifactSuffix := ""
	if *policy != "" {
		names := strings.Split(*policy, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		swept, err := experiments.PolicyTechniques(opts, names)
		if err != nil {
			return fmt.Errorf("%w%s", err, nameHint())
		}
		techniques = swept
		artifactSuffix = "-policies"
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *headline {
		return runHeadline(ctx, opts, *jsonDir, *deterministic, *against)
	}

	if *cell != "" {
		expSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "exp" {
				expSet = true
			}
		})
		if expSet {
			return fmt.Errorf("cannot combine -exp with -cell: -cell runs raw grid cells, -exp runs table/figure experiments")
		}
		return runGridMode(ctx, *cell, opts, techniques, artifactSuffix, *jsonDir, *deterministic)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = experimentIDs
	}
	cache := map[string]*comparisonRun{}
	run := runConfig{
		opts:          opts,
		techniques:    techniques,
		suffix:        artifactSuffix,
		jsonDir:       *jsonDir,
		deterministic: *deterministic,
	}
	for _, id := range ids {
		start := time.Now()
		if err := runExperiment(ctx, strings.TrimSpace(id), run, cache); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runConfig carries the shared execution settings of table/figure
// experiments: the protocol options, the (possibly policy-swept) technique
// set, and artifact output configuration.
type runConfig struct {
	opts          experiments.Options
	techniques    []experiments.TechniqueFactory // nil = standard set
	suffix        string                         // artifact name suffix ("-policies" for sweeps)
	jsonDir       string
	deterministic bool
}

// distributionTechnique names the technique whose expert distributions the
// figure experiments print: plain "shiftex" on the standard set, the first
// swept variant under -policy.
func (rc runConfig) distributionTechnique() string {
	if len(rc.techniques) > 0 {
		return rc.techniques[0].Name
	}
	return "shiftex"
}

// replayArtifact prints the table and summary for a recorded grid run.
func replayArtifact(w io.Writer, path string) error {
	a, err := experiments.ReadArtifactFile(path)
	if err != nil {
		return err
	}
	cmp, err := experiments.ComparisonFromArtifact(a)
	if err != nil {
		return err
	}
	if err := experiments.WriteTable(w, cmp); err != nil {
		return err
	}
	return experiments.WriteSummary(w, cmp)
}

// runGridMode runs just the cells matching the -cell patterns (over the
// standard or policy-swept technique set), streaming a result line per
// cell and optionally writing artifacts.
func runGridMode(ctx context.Context, spec string, opts experiments.Options, techniques []experiments.TechniqueFactory, suffix, jsonDir string, deterministic bool) error {
	filter, err := parseCellFilter(spec, opts)
	if err != nil {
		return err
	}
	g := experiments.Grid{Benchmarks: experiments.Benchmarks(), Techniques: techniques, Options: opts, Filter: filter}
	if len(g.Cells()) == 0 {
		// The technique key depends on the mode: -policy sweeps key cells
		// as technique@policy, standard runs as the plain name.
		keyHint := "this run's cells are keyed by plain technique names (add -policy to run technique@policy cells)"
		if len(techniques) > 0 {
			keyHint = "this -policy sweep keys cells as technique@policy, e.g. " + techniques[0].Name
		}
		return fmt.Errorf("no grid cells match -cell %q (note: %s, and the seed must be among the run's seeds; use -seeds to widen)%s", spec, keyHint, nameHint())
	}
	cells, err := experiments.RunGrid(ctx, g, experiments.Pool{
		Workers: opts.Workers,
		OnCell: func(cr experiments.CellResult) {
			_ = experiments.WriteCellResult(os.Stdout, cr)
		},
	})
	// The grid keeps running healthy cells after a failure or cancellation,
	// so write whatever completed before propagating the error.
	return errors.Join(err, writeArtifacts(jsonDir, deterministic, opts, cells, suffix))
}

// runHeadline executes the perf-baseline grid and writes BENCH_headline.json
// (with wall-clock data unless -deterministic) into jsonDir. When against
// names a recorded baseline, the total wall time is compared and a warning
// is printed on >20% regression — the exit code stays 0, making the CI
// bench job soft-fail by construction.
func runHeadline(ctx context.Context, opts experiments.Options, jsonDir string, deterministic bool, against string) error {
	if jsonDir == "" {
		jsonDir = "."
	}
	start := time.Now()
	cells, err := experiments.RunGrid(ctx, experiments.HeadlineGrid(opts), experiments.Pool{
		Workers: opts.Workers,
		OnCell: func(cr experiments.CellResult) {
			_ = experiments.WriteCellResult(os.Stderr, cr)
		},
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	a := experiments.HeadlineArtifact(opts, cells)
	var totalMS float64
	for _, cr := range cells {
		totalMS += float64(cr.Elapsed.Microseconds()) / 1e3
	}
	fmt.Printf("headline grid: %d cells, %.0fms training wall clock (%v elapsed)\n", len(a.Cells), totalMS, elapsed.Round(time.Millisecond))

	// Compare before any stripping so -deterministic and -against compose.
	if against != "" {
		baseline, err := experiments.ReadArtifactFile(against)
		if err != nil {
			return fmt.Errorf("baseline %s: %w", against, err)
		}
		_, regressed, summary, err := experiments.CompareWallClock(baseline, a, 0.20)
		if err != nil {
			return fmt.Errorf("baseline %s: %w", against, err)
		}
		fmt.Println(summary)
		if regressed {
			// GitHub Actions renders ::warning:: lines as annotations; the
			// job itself stays green (soft fail).
			fmt.Printf("::warning title=headline bench regression::%s exceeds the +20%% budget vs %s\n", summary, against)
		}
	}

	if deterministic {
		a.StripTiming()
	}
	if err := os.MkdirAll(jsonDir, 0o755); err != nil {
		return err
	}
	path, err := experiments.WriteArtifactFile(jsonDir, a)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// writeHeapProfile captures an end-of-run heap profile after a final GC so
// live-object numbers are stable.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// parseCellFilter validates and compiles comma-separated
// benchmark/technique/seed patterns (each component may be *).
func parseCellFilter(spec string, opts experiments.Options) (func(experiments.Cell) bool, error) {
	type pattern struct {
		bench, tech string
		seed        uint64
		anySeed     bool
	}
	var pats []pattern
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		fields := strings.Split(part, "/")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad -cell pattern %q: want benchmark/technique/seed (use * as wildcard)%s", part, nameHint())
		}
		p := pattern{bench: fields[0], tech: fields[1]}
		if p.bench != "*" {
			if _, err := experiments.BenchmarkByName(p.bench); err != nil {
				return nil, fmt.Errorf("%w%s", err, nameHint())
			}
		}
		if p.tech != "*" {
			tf, err := experiments.TechniqueByName(opts, p.tech)
			if err != nil {
				return nil, fmt.Errorf("%w%s", err, nameHint())
			}
			// Match on the resolved display name so normalized forms
			// (e.g. "fedprox@default" → "fedprox") still hit their cells.
			p.tech = tf.Name
		}
		if fields[2] == "*" {
			p.anySeed = true
		} else {
			seed, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed in -cell pattern %q: %w", part, err)
			}
			p.seed = seed
		}
		pats = append(pats, p)
	}
	return func(c experiments.Cell) bool {
		for _, p := range pats {
			if p.bench != "*" && p.bench != c.Benchmark.Name {
				continue
			}
			if p.tech != "*" && p.tech != c.Technique.Name {
				continue
			}
			if !p.anySeed && p.seed != c.Seed {
				continue
			}
			return true
		}
		return false
	}, nil
}

// writeArtifacts serializes finished cells as one BENCH_<benchmark>.json
// per benchmark under dir (no-op when dir is empty). suffix is appended to
// every artifact name (policy sweeps write BENCH_<benchmark>-policies.json
// so they never clobber the standard artifacts).
func writeArtifacts(dir string, deterministic bool, opts experiments.Options, cells []experiments.CellResult, suffix string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, a := range experiments.ArtifactsFromCells(opts, cells) {
		a.Name += suffix
		if deterministic {
			a.StripTiming()
		}
		path, err := experiments.WriteArtifactFile(dir, a)
		if err != nil {
			return err
		}
		// Stderr, like per-cell progress: stdout stays pure table output.
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

// comparisonRun caches one benchmark's comparison together with its raw
// grid cells (the cells carry per-cell timing for artifacts).
type comparisonRun struct {
	cmp   *experiments.Comparison
	cells []experiments.CellResult
}

// compareCached runs (or reuses) the technique comparison for a benchmark
// on the grid engine (the standard five methods, or the policy-swept set
// under -policy); figure experiments share table runs and the artifact for
// each benchmark is written at most once.
func compareCached(ctx context.Context, name string, rc runConfig, cache map[string]*comparisonRun) (*experiments.Comparison, error) {
	if c, ok := cache[name]; ok {
		return c.cmp, nil
	}
	b, err := experiments.BenchmarkByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w%s", err, nameHint())
	}
	pool := experiments.Pool{
		Workers: rc.opts.Workers,
		OnCell: func(cr experiments.CellResult) {
			// Progress goes to stderr so stdout stays pure table output.
			_ = experiments.WriteCellResult(os.Stderr, cr)
		},
	}
	cmp, cells, err := experiments.CompareGrid(ctx, b, rc.opts, pool, rc.techniques...)
	// Even a failed comparison writes the cells that did complete: long
	// -paper runs must not lose finished training to one bad cell.
	if werr := writeArtifacts(rc.jsonDir, rc.deterministic, rc.opts, cells, rc.suffix); werr != nil {
		return nil, errors.Join(err, werr)
	}
	if err != nil {
		return nil, err
	}
	cache[name] = &comparisonRun{cmp: cmp, cells: cells}
	return cmp, nil
}

func runExperiment(ctx context.Context, id string, rc runConfig, cache map[string]*comparisonRun) error {
	table := func(name string) error {
		c, err := compareCached(ctx, name, rc, cache)
		if err != nil {
			return err
		}
		if err := experiments.WriteTable(os.Stdout, c); err != nil {
			return err
		}
		return experiments.WriteSummary(os.Stdout, c)
	}
	figure := func(names []string, write func(*experiments.Comparison) error) error {
		for _, name := range names {
			c, err := compareCached(ctx, name, rc, cache)
			if err != nil {
				return err
			}
			if err := write(c); err != nil {
				return err
			}
		}
		return nil
	}
	switch id {
	case "table1-fmow":
		return table("fmow")
	case "table1-cifar":
		return table("cifar10c")
	case "table2-tinyimagenet":
		return table("tinyimagenetc")
	case "table2-femnist":
		return table("femnist")
	case "table2-fashion":
		return table("fashionmnist")
	case "fig3":
		return figure([]string{"fmow", "tinyimagenetc", "cifar10c"}, func(c *experiments.Comparison) error {
			return experiments.WriteConvergence(os.Stdout, c)
		})
	case "fig4":
		return figure([]string{"femnist", "fashionmnist"}, func(c *experiments.Comparison) error {
			return experiments.WriteConvergence(os.Stdout, c)
		})
	case "fig5":
		return figure([]string{"fmow", "tinyimagenetc", "cifar10c"}, func(c *experiments.Comparison) error {
			return experiments.WriteMaxAccuracy(os.Stdout, c)
		})
	case "fig6":
		return figure([]string{"femnist", "fashionmnist"}, func(c *experiments.Comparison) error {
			return experiments.WriteMaxAccuracy(os.Stdout, c)
		})
	case "fig7":
		return figure([]string{"fmow", "tinyimagenetc", "cifar10c"}, func(c *experiments.Comparison) error {
			return experiments.WriteExpertDistribution(os.Stdout, c, rc.distributionTechnique())
		})
	case "fig8":
		return figure([]string{"femnist", "fashionmnist"}, func(c *experiments.Comparison) error {
			return experiments.WriteExpertDistribution(os.Stdout, c, rc.distributionTechnique())
		})
	case "overheads":
		return overheads(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment %q; valid ids: %s, all", id, strings.Join(experimentIDs, ", "))
	}
}

// overheads measures the §7 aggregator-side costs on ResNet-50-scale
// statistics: 200 parties, 2048-d embeddings.
func overheads(w io.Writer) error {
	const (
		parties = 200
		dim     = 2048
		sample  = 64
	)
	rng := tensor.NewRNG(1)
	fmt.Fprintf(w, "overheads (parties=%d, embedding dim=%d)\n", parties, dim)

	// MMD drift detection per party (sample×sample kernel).
	xs := make([]tensor.Vector, sample)
	ys := make([]tensor.Vector, sample)
	for i := range xs {
		xs[i] = rng.NormVec(dim, 0, 1)
		ys[i] = rng.NormVec(dim, 0.5, 1)
	}
	start := time.Now()
	if _, err := stats.MMD(xs, ys, stats.RBFKernel{Gamma: 0.001}); err != nil {
		return err
	}
	fmt.Fprintf(w, "  MMD drift detection (%dx%d, %d-d): %v\n", sample, sample, dim, time.Since(start))

	// Clustering 200 parties' latent representations.
	points := make([]tensor.Vector, parties)
	for i := range points {
		points[i] = rng.NormVec(dim, float64(i%4), 1)
	}
	start = time.Now()
	if _, err := cluster.SelectK(points, 6, cluster.Config{}, rng); err != nil {
		return err
	}
	fmt.Fprintf(w, "  clustering %d parties (%d-d): %v\n", parties, dim, time.Since(start))

	// Expert assignment for 6 clusters over 5 experts.
	clients := make([]facility.Client, 6)
	for i := range clients {
		clients[i] = facility.Client{ID: i, Embedding: rng.NormVec(dim, 0, 1), LabelHist: stats.Uniform(10), Weight: 30}
	}
	existing := make([]facility.Facility, 5)
	for i := range existing {
		existing[i] = facility.Facility{ID: i, Signature: rng.NormVec(dim, 0, 1)}
	}
	start = time.Now()
	if _, err := facility.SolveGreedy(&facility.Instance{
		Clients: clients, Existing: existing, NewCost: 1, LabelWeight: 0.3,
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "  expert assignment (6 clusters x 5 experts): %v\n", time.Since(start))

	// Memory footprint estimates (the paper's §7 accounting).
	fmt.Fprintf(w, "  memory: expert centroids 5x%d floats = %d KB; party map %d ints = %.1f KB\n",
		dim, 5*dim*8/1024, parties, float64(parties*8)/1024)
	return nil
}
