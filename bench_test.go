package repro

// One benchmark per table and figure of the paper's evaluation (§7), plus
// the overhead measurements and the ablations called out in DESIGN.md.
// Table/figure benchmarks execute the full five-technique comparison at
// reduced scale and report domain metrics (accuracy in percent, expert
// counts) via b.ReportMetric; cmd/shiftex-bench regenerates the same
// artifacts at any scale.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/enclave"
	"repro/internal/experiments"
	"repro/internal/facility"
	"repro/internal/federation"
	"repro/internal/metrics"
	"repro/internal/shiftex"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// benchOptions is the reduced-scale protocol used by all table/figure
// benchmarks: one seed, 15-60 parties depending on the preset, 10 rounds
// per window. Small enough for the benchmark harness, large enough that
// shift detection and expert assignment behave as at full scale.
func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:           0.3,
		Seeds:           []uint64{1},
		BootstrapRounds: 10,
		RoundsPerWindow: 10,
		Participants:    8,
		Epochs:          2,
	}
}

// runComparison executes the full comparison once and reports the headline
// metrics: ShiftEx mean max-accuracy and its margin over the best baseline.
func runComparison(b *testing.B, name string) *experiments.Comparison {
	b.Helper()
	bm, err := experiments.BenchmarkByName(name)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOptions()
	var cmp *experiments.Comparison
	for i := 0; i < b.N; i++ {
		cmp, err = experiments.Compare(bm, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportHeadline(b, cmp)
	return cmp
}

func meanMax(b *testing.B, cmp *experiments.Comparison, tech string) float64 {
	b.Helper()
	runs := cmp.Results[tech]
	var total float64
	n := 0
	for w := 1; w < cmp.NumWindows(); w++ {
		agg, err := metrics.AggregateWindows(runs, w)
		if err != nil {
			b.Fatal(err)
		}
		total += agg.Max.Mean
		n++
	}
	return total / float64(n)
}

func reportHeadline(b *testing.B, cmp *experiments.Comparison) {
	b.Helper()
	sx := meanMax(b, cmp, "shiftex")
	bestBase := 0.0
	for _, name := range cmp.Order {
		if name == "shiftex" {
			continue
		}
		if m := meanMax(b, cmp, name); m > bestBase {
			bestBase = m
		}
	}
	b.ReportMetric(100*sx, "shiftex-max-%")
	b.ReportMetric(100*bestBase, "best-baseline-max-%")
	b.ReportMetric(100*(sx-bestBase), "margin-pp")
}

// Table 1 (top): FMoW.
func BenchmarkTable1FMoW(b *testing.B) { runComparison(b, "fmow") }

// Table 1 (bottom): CIFAR-10-C.
func BenchmarkTable1CIFAR10C(b *testing.B) { runComparison(b, "cifar10c") }

// Table 2 (top): Tiny-ImageNet-C.
func BenchmarkTable2TinyImageNetC(b *testing.B) { runComparison(b, "tinyimagenetc") }

// Table 2 (middle): FEMNIST.
func BenchmarkTable2FEMNIST(b *testing.B) { runComparison(b, "femnist") }

// Table 2 (bottom): Fashion-MNIST.
func BenchmarkTable2FashionMNIST(b *testing.B) { runComparison(b, "fashionmnist") }

// Figure 3: convergence curves for FMoW / Tiny-ImageNet-C / CIFAR-10-C.
// The benchmark regenerates the seed-averaged accuracy-vs-round series and
// reports the final ShiftEx accuracy.
func BenchmarkFig3Convergence(b *testing.B) {
	cmp := runComparison(b, "fmow")
	series, err := metrics.MeanTrace(cmp.Results["shiftex"], cmp.NumWindows()-1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*series[len(series)-1], "final-acc-%")
}

// Figure 4: convergence curves for FEMNIST / Fashion-MNIST.
func BenchmarkFig4Convergence(b *testing.B) {
	cmp := runComparison(b, "femnist")
	series, err := metrics.MeanTrace(cmp.Results["shiftex"], cmp.NumWindows()-1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*series[len(series)-1], "final-acc-%")
}

// Figure 5: per-window max accuracy (large benchmarks).
func BenchmarkFig5MaxAccuracy(b *testing.B) {
	cmp := runComparison(b, "cifar10c")
	agg, err := metrics.AggregateWindows(cmp.Results["shiftex"], cmp.NumWindows()-1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*agg.Max.Mean, "lastwindow-max-%")
}

// Figure 6: per-window max accuracy (FEMNIST / Fashion-MNIST).
func BenchmarkFig6MaxAccuracy(b *testing.B) {
	cmp := runComparison(b, "fashionmnist")
	agg, err := metrics.AggregateWindows(cmp.Results["shiftex"], cmp.NumWindows()-1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*agg.Max.Mean, "lastwindow-max-%")
}

// Figure 7: expert distribution across windows (large benchmarks). Reports
// the final expert-pool size.
func BenchmarkFig7ExpertDistribution(b *testing.B) {
	cmp := runComparison(b, "tinyimagenetc")
	run := cmp.Results["shiftex"][0]
	last := run.Distributions[len(run.Distributions)-1]
	b.ReportMetric(float64(len(last)), "experts")
}

// Figure 8: expert distribution (FEMNIST / Fashion-MNIST).
func BenchmarkFig8ExpertDistribution(b *testing.B) {
	cmp := runComparison(b, "femnist")
	run := cmp.Results["shiftex"][0]
	last := run.Distributions[len(run.Distributions)-1]
	b.ReportMetric(float64(len(last)), "experts")
}

// §7 overheads: MMD drift detection on ResNet-50-scale embeddings.
func BenchmarkOverheadMMD(b *testing.B) {
	rng := tensor.NewRNG(1)
	const dim, n = 2048, 64
	xs := make([]tensor.Vector, n)
	ys := make([]tensor.Vector, n)
	for i := range xs {
		xs[i] = rng.NormVec(dim, 0, 1)
		ys[i] = rng.NormVec(dim, 0.5, 1)
	}
	k := stats.RBFKernel{Gamma: 1.0 / dim}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.MMD(xs, ys, k); err != nil {
			b.Fatal(err)
		}
	}
}

// §7 overheads: clustering 200 parties' 2048-d latent representations.
func BenchmarkOverheadClustering(b *testing.B) {
	rng := tensor.NewRNG(2)
	const dim, parties = 2048, 200
	points := make([]tensor.Vector, parties)
	for i := range points {
		points[i] = rng.NormVec(dim, float64(i%4)*2, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.SelectK(points, 6, cluster.Config{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// §7 overheads: facility-location expert assignment.
func BenchmarkOverheadAssignment(b *testing.B) {
	rng := tensor.NewRNG(3)
	const dim = 2048
	clients := make([]facility.Client, 6)
	for i := range clients {
		clients[i] = facility.Client{ID: i, Embedding: rng.NormVec(dim, 0, 1), LabelHist: stats.Uniform(10), Weight: 30}
	}
	existing := make([]facility.Facility, 5)
	for i := range existing {
		existing[i] = facility.Facility{ID: i, Signature: rng.NormVec(dim, 0, 1)}
	}
	inst := &facility.Instance{Clients: clients, Existing: existing, NewCost: 1, LabelWeight: 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := facility.SolveGreedy(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// §5.3: TEE sealing overhead — seal+open of one statistics bundle through
// the simulated enclave vs the size of the plaintext path.
func BenchmarkEnclaveOverhead(b *testing.B) {
	e, err := enclave.New(nil)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := enclave.NewSession(e.Attest(), e.Key())
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(4)
	sample := make([]tensor.Vector, 64)
	for i := range sample {
		sample[i] = rng.NormVec(64, 0, 1)
	}
	st := detect.PartyStats{
		PartyID:         1,
		MeanEmbedding:   rng.NormVec(64, 0, 1),
		EmbeddingSample: sample,
		LabelHist:       stats.Uniform(10),
		NumSamples:      64,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed, err := sess.SealStats(st)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.OpenStats(sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// ablationScenario runs ShiftEx with the given config over a small shifted
// workload and returns final accuracy and expert count.
func ablationScenario(b *testing.B, mutate func(*shiftex.Config)) (acc float64, experts int) {
	b.Helper()
	spec := dataset.FMoWSpec()
	spec.NumParties = 16
	spec.Windows = 4
	// Two recurring regimes at a fixed severity: the workload where latent
	// memory (reuse) and consolidation (dedup) matter most.
	shiftCfg := dataset.DefaultShiftConfig()
	shiftCfg.CovariateKinds = []dataset.CorruptionKind{dataset.CorruptFog, dataset.CorruptRain}
	shiftCfg.RegimesPerWindow = 1
	shiftCfg.LabelShift = false
	shiftCfg.SeverityMin, shiftCfg.SeverityMax = 4, 4
	sc, err := dataset.BuildScenario(spec, shiftCfg, 99)
	if err != nil {
		b.Fatal(err)
	}
	fed, err := federation.New(sc, []int{spec.InputDim, 32, 16, spec.NumClasses}, 100)
	if err != nil {
		b.Fatal(err)
	}
	cfg := shiftex.DefaultConfig()
	cfg.BootstrapRounds = 8
	cfg.RoundsPerWindow = 8
	cfg.ParticipantsPerRound = 6
	mutate(&cfg)
	agg, err := shiftex.New(cfg, 101)
	if err != nil {
		b.Fatal(err)
	}
	var last []float64
	for w := 0; w < fed.NumWindows(); w++ {
		last, err = agg.RunWindow(fed, w)
		if err != nil {
			b.Fatal(err)
		}
	}
	return last[len(last)-1], agg.Registry().Len()
}

// Ablation A1: latent memory disabled — every shifted cluster spawns a new
// expert instead of reusing matching ones.
func BenchmarkAblationNoMemory(b *testing.B) {
	var acc float64
	var experts int
	for i := 0; i < b.N; i++ {
		acc, experts = ablationScenario(b, func(c *shiftex.Config) { c.DisableMemory = true })
	}
	b.ReportMetric(100*acc, "final-acc-%")
	b.ReportMetric(float64(experts), "experts")
}

// Ablation A2: consolidation disabled — the expert pool only grows.
func BenchmarkAblationNoConsolidation(b *testing.B) {
	var acc float64
	var experts int
	for i := 0; i < b.N; i++ {
		acc, experts = ablationScenario(b, func(c *shiftex.Config) { c.DisableConsolidation = true })
	}
	b.ReportMetric(100*acc, "final-acc-%")
	b.ReportMetric(float64(experts), "experts")
}

// Ablation A3: FLIPS disabled — uniform random participant selection.
func BenchmarkAblationNoFLIPS(b *testing.B) {
	var acc float64
	var experts int
	for i := 0; i < b.N; i++ {
		acc, experts = ablationScenario(b, func(c *shiftex.Config) { c.DisableFLIPS = true })
	}
	b.ReportMetric(100*acc, "final-acc-%")
	b.ReportMetric(float64(experts), "experts")
}

// Baseline reference: the full system on the same ablation workload.
func BenchmarkAblationFullSystem(b *testing.B) {
	var acc float64
	var experts int
	for i := 0; i < b.N; i++ {
		acc, experts = ablationScenario(b, func(c *shiftex.Config) {})
	}
	b.ReportMetric(100*acc, "final-acc-%")
	b.ReportMetric(float64(experts), "experts")
}
