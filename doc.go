// Package repro is a from-scratch Go reproduction of "Shift Happens:
// Mixture of Experts based Continual Adaptation in Federated Learning"
// (MIDDLEWARE 2025): the ShiftEx shift-aware mixture-of-experts middleware
// for streaming federated learning, together with every substrate it needs
// — a neural-network training stack, kernel two-sample statistics, k-means
// clustering, facility-location assignment, a windowed stream engine, a
// federated round engine with in-process and TCP transports, FLIPS
// participant selection, the four baseline techniques the paper compares
// against, and the full experiment harness that regenerates the paper's
// tables and figures.
//
// The adaptation logic itself is policy-driven: internal/adapt decomposes
// Algorithm 2 into typed pipeline stages (shift detection, calibration,
// expert assignment, training planning, consolidation) bundled into named,
// registered policies, and a technique registry through which shiftex and
// every baseline are constructed — one code path for construction, flag
// parsing, and error listings across the CLIs and the experiment grid. New
// detectors, solvers, or lifecycle rules compose into new policies without
// touching the aggregator, and the grid sweeps them side by side
// (shiftex-bench -policy).
//
// Beyond the reproduction, internal/service makes the middleware claim
// literal: a long-running ShiftEx runtime that drives the same aggregator
// over pluggable in-process or TCP transports with bounded-parallel
// fan-out, per-call timeouts, retries, and a round quorum; versioned
// checkpoint/restore of the full aggregator state; and an HTTP
// observability endpoint. cmd/shiftex-aggregator and cmd/shiftex-party are
// its daemons; for the same seed the cross-process deployment makes
// bit-identical decisions to the in-process run.
//
// internal/serve closes the loop with the request path: cmd/shiftex-serve
// loads an aggregator checkpoint into an immutable, atomically hot-swappable
// snapshot and serves predictions over HTTP, routing each request to the
// expert whose latent memory matches the request's embedding signature
// (with the global model as fallback) through a micro-batching pool of
// zero-allocation workspaces. Its load generator replays the training
// scenario against the server and records throughput, latency quantiles,
// and per-regime routing accuracy as the committed BENCH_serving.json.
//
// internal/gateway scales that to a fleet: cmd/shiftex-gateway fronts many
// named models, each served by multiple shiftex-serve replicas, routing
// requests with consistent-hash affinity, health-probed failover, and a
// middleware chain (auth, per-tenant rate limiting, admission control,
// logging) selected by name from config per route group. Every daemon
// speaks the same versioned /v1 HTTP surface defined in internal/httpapi
// — one predict/state/metrics schema across aggregator, serve, and
// gateway, with deprecated unversioned aliases. The gateway's
// multi-process load generator SIGKILLs a replica mid-load and records
// the run as the committed BENCH_gateway.json (zero dropped requests,
// full affinity retention for surviving replicas).
//
// internal/monitor watches that serving traffic drift: the batched routing
// path tees each routed embedding off-path into bounded sketches scored
// against the snapshot's training-time latent memories (self-calibrated
// MMD), surfaced as /v1/debug/drift, shiftex_monitor_* metrics, and a
// gateway fleet view (max/mean drift across replicas, snapshot version
// skew). The committed BENCH_drift.json pins the plane's contract: an
// injected covariate shift is detected with zero pre-shift false positives
// at under 3% throughput overhead.
//
// internal/continual acts on that signal — the paper's loop, closed live:
// a controller goroutine subscribes to the monitor's evaluations and, on a
// hysteresis-confirmed threshold crossing, harvests the live embedding
// sketches, runs the real adapt.Policy pipeline in-process (detect,
// calibrate, assign, train, consolidate), validates the candidate snapshot
// against held-back traffic, and hot-swaps it through the serving tier's
// atomic-pointer path — production-guarded by cooldown, trigger
// coalescing, validation-gated promotion, and rollback on any failure,
// with the monitor re-baselined against each new snapshot. New experts
// carry a live-calibrated per-expert acceptance radius so single-request
// traffic actually routes to them. The committed BENCH_adapt-live.json
// pins the closed-loop contract: an injected shift is detected, adapted,
// and swapped with zero dropped requests, and the shifted regime's routing
// strictly improves over the frozen baseline.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record, the cross-process parity contract, and the
// checkpoint schema. The benchmarks in bench_test.go regenerate each
// table and figure at reduced scale; cmd/shiftex-bench produces them at any
// scale.
package repro
