#!/usr/bin/env bash
# Regenerates BENCH_gateway.json at the repo root: a multi-process gateway
# benchmark with two named models, two shiftex-serve replicas each, and a
# mid-load SIGKILL of one replica. The gateway session cache is disabled
# so every request exercises real consistent-hash routing — after the
# kill, traffic owned by the dead replica must fail over to ring
# successors, which is exactly the machinery the artifact gates on (zero
# dropped requests, >=90% of surviving-owner keys retained).
# Usage: ./scripts/bench_gateway.sh
set -euo pipefail

cd "$(dirname "$0")/.."
WORKDIR=$(mktemp -d)
BIN="$WORKDIR/bin"
LOG="$WORKDIR/log"
mkdir -p "$BIN" "$LOG"
GW_ADDR="127.0.0.1:18660"
A1_ADDR="127.0.0.1:18661"
A2_ADDR="127.0.0.1:18662"
B1_ADDR="127.0.0.1:18663"
B2_ADDR="127.0.0.1:18664"
CKPT=internal/serve/testdata/checkpoint_tiny.json
# Scenario shape of the committed checkpoint (EXPERIMENTS.md).
SAMPLES=40
TEST=20
TOKEN=bench-token
PIDS=""

cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "BENCH FAIL: $1" >&2
    for f in "$LOG"/*.log; do
        echo "--- $f ---" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

echo "== building shiftex-serve and shiftex-gateway"
go build -o "$BIN" ./cmd/shiftex-serve ./cmd/shiftex-gateway

echo "== starting 2 models x 2 replicas from $CKPT"
start_replica() { # model addr logname -> pid
    "$BIN/shiftex-serve" -checkpoint "$CKPT" -model "$1" -http "$2" \
        >"$LOG/$3.log" 2>&1 &
    echo $!
}
A1_PID=$(start_replica fmow-a "$A1_ADDR" replica-a1)
A2_PID=$(start_replica fmow-a "$A2_ADDR" replica-a2)
B1_PID=$(start_replica fmow-b "$B1_ADDR" replica-b1)
B2_PID=$(start_replica fmow-b "$B2_ADDR" replica-b2)
PIDS="$A1_PID $A2_PID $B1_PID $B2_PID"
for addr in "$A1_ADDR" "$A2_ADDR" "$B1_ADDR" "$B2_ADDR"; do
    up=0
    for i in $(seq 1 50); do
        curl -sf "http://$addr/v1/healthz" >/dev/null 2>&1 && { up=1; break; }
        sleep 0.1
    done
    [ "$up" = 1 ] || fail "replica $addr never became healthy"
done

echo "== starting the gateway (session cache off, full middleware chain)"
cat >"$WORKDIR/gateway.json" <<EOF
{
  "models": {
    "fmow-a": ["$A1_ADDR", "$A2_ADDR"],
    "fmow-b": ["$B1_ADDR", "$B2_ADDR"]
  },
  "middlewares": {
    "predict": ["logging", "auth", "ratelimit", "admission"],
    "admin": ["logging"]
  },
  "authTokens": ["$TOKEN"],
  "ratePerSecond": 1000000,
  "maxInflight": 512,
  "probeEveryMs": 200,
  "evictAfter": 2,
  "sessionCache": -1
}
EOF
"$BIN/shiftex-gateway" -config "$WORKDIR/gateway.json" -http "$GW_ADDR" >"$LOG/gateway.log" 2>&1 &
GW_PID=$!
PIDS="$PIDS $GW_PID"
for i in $(seq 1 50); do
    curl -sf "http://$GW_ADDR/v1/healthz" >/dev/null 2>&1 && break
    kill -0 "$GW_PID" 2>/dev/null || fail "gateway exited during startup"
    sleep 0.1
done

echo "== load generation: both models, SIGKILL replica $A2_ADDR at 50%"
"$BIN/shiftex-gateway" -loadgen -checkpoint "$CKPT" -url "http://$GW_ADDR" \
    -samples "$SAMPLES" -test "$TEST" -models fmow-a,fmow-b \
    -repeat 200 -concurrency 8 -token "$TOKEN" \
    -kill-pid "$A2_PID" -kill-at 0.5 \
    -json . || fail "load generation failed"

echo "== artifact gate (zero dropped requests, affinity >= 0.9)"
"$BIN/shiftex-gateway" -check BENCH_gateway.json -min-affinity 0.9 \
    || fail "gateway artifact did not validate"

echo "BENCH OK: wrote BENCH_gateway.json"
