#!/usr/bin/env bash
# Serving-tier smoke: start shiftex-serve from the committed tiny
# checkpoint, assert /predict and /healthz answer 200, hot-swap the
# snapshot over HTTP, verify graceful SIGTERM drain, then run the load
# generator for ~2 seconds and assert the BENCH_serving.json artifact
# parses and clears the 10k predictions/sec floor. A second, cold-traffic
# loadgen pass (route cache disabled) regenerates BENCH_serving-cold.json
# and additionally gates on the mean micro-batch size — proof that the
# batched GEMM pipeline engages when every request pays the full routing
# path. A final closed-loop pass runs -adaptbench: the continual
# controller must detect an injected shift, train new experts from the
# live sketches, and hot-swap with zero dropped requests, gated with
# -check-adapt. CI runs this on every commit; it is also runnable
# locally: ./scripts/smoke_serve.sh
set -euo pipefail

cd "$(dirname "$0")/.."
WORKDIR=$(mktemp -d)
BIN="$WORKDIR/bin"
LOG="$WORKDIR/log"
mkdir -p "$BIN" "$LOG"
HTTP_ADDR="127.0.0.1:18641"
CKPT=internal/serve/testdata/checkpoint_tiny.json
# The committed checkpoint was trained with -samples 40 -test 20 (see
# EXPERIMENTS.md "Serving benchmark"); the loadgen must regenerate the
# same scenario shape.
SAMPLES=40
TEST=20
SERVE_PID=""

cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "SMOKE FAIL: $1" >&2
    echo "--- serve log ---" >&2; cat "$LOG/serve.log" >&2 || true
    exit 1
}

echo "== building shiftex-serve"
go build -o "$BIN" ./cmd/shiftex-serve

echo "== starting the serving daemon from $CKPT"
"$BIN/shiftex-serve" -checkpoint "$CKPT" -http "$HTTP_ADDR" \
    -metrics-out "$WORKDIR/final_metrics.json" >"$LOG/serve.log" 2>&1 &
SERVE_PID=$!

for i in $(seq 1 50); do
    curl -sf "http://$HTTP_ADDR/healthz" >/dev/null 2>&1 && break
    kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done

echo "== /healthz"
code=$(curl -s -o "$WORKDIR/health.json" -w '%{http_code}' "http://$HTTP_ADDR/healthz")
[ "$code" = 200 ] || fail "/healthz returned $code"
grep -q '"status": "ok"' "$WORKDIR/health.json" || fail "/healthz body unexpected: $(cat "$WORKDIR/health.json")"

echo "== /predict"
# The committed checkpoint serves 32-dimensional inputs (FMoW spec).
X=$(seq 1 32 | awk '{printf "%s%.2f", (NR==1 ? "" : ","), $1/32}')
code=$(curl -s -o "$WORKDIR/predict.json" -w '%{http_code}' \
    -X POST -d "{\"x\":[$X]}" "http://$HTTP_ADDR/predict")
[ "$code" = 200 ] || fail "/predict returned $code: $(cat "$WORKDIR/predict.json")"
grep -q '"class"' "$WORKDIR/predict.json" || fail "/predict body unexpected: $(cat "$WORKDIR/predict.json")"

echo "== /v1/debug/drift (monitor on by default in daemon mode)"
code=$(curl -s -o "$WORKDIR/drift.json" -w '%{http_code}' "http://$HTTP_ADDR/v1/debug/drift")
[ "$code" = 200 ] || fail "/v1/debug/drift returned $code: $(cat "$WORKDIR/drift.json")"
grep -q '"enabled": true' "$WORKDIR/drift.json" || fail "/v1/debug/drift reports the monitor disabled: $(cat "$WORKDIR/drift.json")"
grep -q '"schemaVersion"' "$WORKDIR/drift.json" || fail "/v1/debug/drift body unexpected: $(cat "$WORKDIR/drift.json")"

echo "== hot swap over HTTP"
code=$(curl -s -o "$WORKDIR/swap.json" -w '%{http_code}' \
    -X POST -d "{\"path\":\"$CKPT\"}" "http://$HTTP_ADDR/snapshot")
[ "$code" = 200 ] || fail "POST /snapshot returned $code: $(cat "$WORKDIR/swap.json")"
grep -q '"version": 2' "$WORKDIR/swap.json" || fail "swap did not bump the snapshot version"

echo "== graceful SIGTERM drain"
kill -TERM "$SERVE_PID"
drain_ok=0
for i in $(seq 1 100); do
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then drain_ok=1; break; fi
    sleep 0.1
done
[ "$drain_ok" = 1 ] || fail "daemon did not exit on SIGTERM"
SERVE_PID=""
grep -q "drained:" "$LOG/serve.log" || fail "daemon exited without draining"
[ -s "$WORKDIR/final_metrics.json" ] || fail "final metrics snapshot missing"

echo "== load generation (~2s, mid-load hot swap)"
"$BIN/shiftex-serve" -checkpoint "$CKPT" -loadgen \
    -samples "$SAMPLES" -test "$TEST" -repeat 1000000 -duration 2s \
    -concurrency 8 -swap-mid-load -json "$WORKDIR" >"$LOG/serve.log" 2>&1 \
    || fail "load generation failed"

echo "== artifact gate (parses, zero errors, >=10k predictions/sec)"
"$BIN/shiftex-serve" -check "$WORKDIR/BENCH_serving.json" -min-throughput 10000 \
    || fail "serving artifact did not validate"

echo "== cold-traffic load generation (~2s, route cache disabled)"
"$BIN/shiftex-serve" -checkpoint "$CKPT" -loadgen -cold \
    -samples "$SAMPLES" -test "$TEST" -repeat 1000000 -duration 2s \
    -concurrency 32 -json "$WORKDIR" >"$LOG/serve.log" 2>&1 \
    || fail "cold load generation failed"

echo "== cold artifact gate (>=10k predictions/sec, mean batch >= 2, vs committed baseline)"
"$BIN/shiftex-serve" -check "$WORKDIR/BENCH_serving-cold.json" \
    -min-throughput 10000 -min-mean-batch 2 -against BENCH_serving-cold.json \
    || fail "cold serving artifact did not validate"

echo "== drift detection under an injected shift (~2s, cold, frost/5 at 50%)"
# Cold traffic because route-cache hits skip embedding and are invisible to
# the monitor; baseline/window of 160 cover the scenario's 8×20-item replay
# cycle (a shorter window reads clean traffic as drift).
"$BIN/shiftex-serve" -checkpoint "$CKPT" -loadgen -cold \
    -samples "$SAMPLES" -test "$TEST" -repeat 1000000 -duration 2s \
    -concurrency 8 -shift-at 0.5 \
    -monitor-baseline 160 -monitor-window 160 -monitor-eval-every 1024 \
    -monitor-sample 64 -monitor-resamples 20 >"$LOG/serve.log" 2>&1 \
    || fail "shift-injection load generation failed"
grep -q "drift detected:" "$LOG/serve.log" \
    || fail "injected shift was not detected: $(grep drift "$LOG/serve.log" || true)"

echo "== committed drift artifact gate (detected, no false positives, overhead <= 3%)"
"$BIN/shiftex-serve" -check-drift BENCH_drift.json \
    || fail "committed drift artifact did not validate"

echo "== closed-loop adaptation (detect -> train from live sketches -> hot swap)"
# The continual controller must close the loop on the injected shift:
# window completes, snapshot hot-swaps with zero dropped requests, and
# the shifted regime's routing strictly improves over the frozen
# baseline. Cooldown 60s keeps the post-swap recovery pass clean.
"$BIN/shiftex-serve" -checkpoint "$CKPT" -adaptbench \
    -samples "$SAMPLES" -test "$TEST" -concurrency 8 \
    -monitor-baseline 160 -monitor-window 160 -monitor-eval-every 512 \
    -monitor-resamples 20 -adapt-cooldown 60s -json "$WORKDIR" >"$LOG/serve.log" 2>&1 \
    || fail "closed-loop adaptation benchmark failed"
grep -q "windows completed=1" "$LOG/serve.log" \
    || fail "adaptation window did not complete: $(cat "$LOG/serve.log")"

echo "== adapt artifact gate (detected, swapped, zero drops, recovery strictly better)"
"$BIN/shiftex-serve" -check-adapt "$WORKDIR/BENCH_adapt-live.json" \
    || fail "adapt-live artifact did not validate"

echo "== committed adapt artifact gate"
"$BIN/shiftex-serve" -check-adapt BENCH_adapt-live.json \
    || fail "committed adapt-live artifact did not validate"

echo "SMOKE OK"
