#!/usr/bin/env bash
# Multi-process ShiftEx smoke: two shiftex-party processes + one
# shiftex-aggregator with observability, then a party kill to prove the
# quorum path keeps the run alive. CI runs this on every commit; it is also
# runnable locally: ./scripts/smoke_multiprocess.sh
set -euo pipefail

WORKDIR=$(mktemp -d)
BIN="$WORKDIR/bin"
LOG="$WORKDIR/log"
mkdir -p "$BIN" "$LOG"
HTTP_ADDR="127.0.0.1:18431"
SEED=42
WINDOWS=4
NPARTIES=2
# The adaptation policy is threaded through the aggregator flags so the
# smoke exercises the policy registry end to end (POLICY=cov-detect etc.
# work too; default keeps the quorum timings this script was tuned on).
POLICY="${POLICY:-default}"
# Sized so each window takes a few seconds: the party kill below must land
# while windows are still running for the quorum assertion to mean anything.
SAMPLES=240
ROUNDS=8
EPOCHS=3
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "SMOKE FAIL: $1" >&2
    echo "--- aggregator log ---" >&2; cat "$LOG/agg.log" >&2 || true
    echo "--- party logs ---" >&2; cat "$LOG"/party*.log >&2 || true
    exit 1
}

echo "== building binaries"
go build -o "$BIN" ./cmd/shiftex-party ./cmd/shiftex-aggregator

echo "== starting $NPARTIES parties"
for p in $(seq 0 $((NPARTIES - 1))); do
    "$BIN/shiftex-party" -addr "127.0.0.1:$((18501 + p))" -party "$p" \
        -nparties "$NPARTIES" -windows "$WINDOWS" -scenario-seed "$SEED" \
        -samples "$SAMPLES" -test 40 >"$LOG/party$p.log" 2>&1 &
    PIDS+=($!)
done
sleep 1

echo "== starting aggregator"
"$BIN/shiftex-aggregator" \
    -parties "127.0.0.1:18501,127.0.0.1:18502" \
    -windows "$WINDOWS" -rounds "$ROUNDS" -epochs "$EPOCHS" -participants 4 \
    -samples "$SAMPLES" -test 40 \
    -seed "$SEED" -quorum 0.5 -retries 0 -timeout 30s \
    -policy "$POLICY" \
    -http "$HTTP_ADDR" -checkpoint "$WORKDIR/shiftex.ckpt.json" \
    >"$LOG/agg.log" 2>&1 &
AGG_PID=$!
PIDS+=("$AGG_PID")

echo "== waiting for /healthz"
healthy=""
for _ in $(seq 1 50); do
    if curl -fsS "http://$HTTP_ADDR/healthz" >"$WORKDIR/healthz.json" 2>/dev/null; then
        healthy=yes
        break
    fi
    kill -0 "$AGG_PID" 2>/dev/null || fail "aggregator exited before serving /healthz"
    sleep 0.2
done
[ -n "$healthy" ] || fail "/healthz never returned 200"
grep -q '"status": "ok"' "$WORKDIR/healthz.json" || fail "/healthz payload unexpected: $(cat "$WORKDIR/healthz.json")"
echo "   healthz OK: $(tr -d '\n ' <"$WORKDIR/healthz.json")"

echo "== waiting for window 1 to complete"
for _ in $(seq 1 600); do
    grep -q "window 1 done" "$LOG/agg.log" && break
    kill -0 "$AGG_PID" 2>/dev/null || fail "aggregator died before window 1"
    sleep 0.1
done
grep -q "window 1 done" "$LOG/agg.log" || fail "window 1 never completed"

# The -policy flag must have reached the aggregator's policy registry.
grep -q "adaptation policy: $POLICY" "$LOG/agg.log" || fail "aggregator did not report policy $POLICY"
grep -q "\"policy\": \"$POLICY\"" <(curl -fsS "http://$HTTP_ADDR/state") || fail "/state does not report policy $POLICY"

# Rounds are observable over HTTP while the run is live.
curl -fsS "http://$HTTP_ADDR/metrics" >"$WORKDIR/metrics.txt" || fail "/metrics unreachable mid-run"
grep -Eq "shiftex_rounds_total [1-9]" "$WORKDIR/metrics.txt" || fail "no rounds counted in /metrics"

echo "== killing party 1 mid-stream"
kill -9 "${PIDS[1]}"

echo "== waiting for aggregator to finish on the quorum path"
if ! wait "$AGG_PID"; then
    fail "aggregator exited non-zero after party kill"
fi
grep -q "window $((WINDOWS - 1)) done" "$LOG/agg.log" || fail "final window never completed"
grep -q "run complete" "$LOG/agg.log" || fail "run summary missing"

# The kill must actually have been absorbed as tolerated failures — if the
# run finished before the kill landed, this smoke proved nothing.
if ! grep -Eq "run complete: .* [1-9][0-9]* party failures tolerated" "$LOG/agg.log"; then
    fail "no party failures tolerated: the kill did not exercise the quorum path"
fi

echo "== smoke OK"
sed -n 's/^/   /p' "$LOG/agg.log"
