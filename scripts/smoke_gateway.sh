#!/usr/bin/env bash
# Gateway-tier smoke: start two shiftex-serve replicas from the committed
# tiny checkpoint and a shiftex-gateway in front of them with a
# config-selected middleware chain (logging, auth, ratelimit, admission)
# on the predict route. Assert the chain is live (tokenless predict is
# 401, bearer-token predict is 200 end-to-end), the deprecated unversioned
# alias still answers with a Deprecation header, and a misspelled
# middleware name fails startup listing the available set. Then SIGKILL
# one replica mid-loadgen and gate the BENCH_gateway.json artifact on
# zero dropped requests and >=90% consistent-hash affinity retention.
# Finally assert distributed tracing end to end: a request carrying a
# known traceparent must surface spans under that trace ID on BOTH tiers
# (/v1/debug/traces on the gateway and the surviving replica), and the
# gateway's -debug-addr listener must answer /v1/debug/pprof/cmdline.
# CI runs this on every commit; also runnable locally:
# ./scripts/smoke_gateway.sh
set -euo pipefail

cd "$(dirname "$0")/.."
WORKDIR=$(mktemp -d)
BIN="$WORKDIR/bin"
LOG="$WORKDIR/log"
mkdir -p "$BIN" "$LOG"
GW_ADDR="127.0.0.1:18650"
REP1_ADDR="127.0.0.1:18651"
REP2_ADDR="127.0.0.1:18652"
GW_DEBUG_ADDR="127.0.0.1:18654"
CKPT=internal/serve/testdata/checkpoint_tiny.json
# The committed checkpoint was trained with -samples 40 -test 20 (see
# EXPERIMENTS.md "Serving benchmark"); the loadgen must regenerate the
# same scenario shape.
SAMPLES=40
TEST=20
TOKEN=smoke-token
PIDS=""

cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "SMOKE FAIL: $1" >&2
    for f in "$LOG"/*.log; do
        echo "--- $f ---" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

echo "== building shiftex-serve and shiftex-gateway"
go build -o "$BIN" ./cmd/shiftex-serve ./cmd/shiftex-gateway

echo "== starting two serve replicas from $CKPT"
"$BIN/shiftex-serve" -checkpoint "$CKPT" -http "$REP1_ADDR" >"$LOG/replica1.log" 2>&1 &
REP1_PID=$!
PIDS="$PIDS $REP1_PID"
"$BIN/shiftex-serve" -checkpoint "$CKPT" -http "$REP2_ADDR" >"$LOG/replica2.log" 2>&1 &
REP2_PID=$!
PIDS="$PIDS $REP2_PID"
for addr in "$REP1_ADDR" "$REP2_ADDR"; do
    up=0
    for i in $(seq 1 50); do
        curl -sf "http://$addr/v1/healthz" >/dev/null 2>&1 && { up=1; break; }
        sleep 0.1
    done
    [ "$up" = 1 ] || fail "replica $addr never became healthy"
done

echo "== starting the gateway with an auth+ratelimit+admission chain"
cat >"$WORKDIR/gateway.json" <<EOF
{
  "models": {"default": ["$REP1_ADDR", "$REP2_ADDR"]},
  "middlewares": {
    "predict": ["logging", "auth", "ratelimit", "admission"],
    "admin": ["logging"]
  },
  "authTokens": ["$TOKEN"],
  "ratePerSecond": 1000000,
  "maxInflight": 512,
  "probeEveryMs": 100,
  "evictAfter": 1
}
EOF
"$BIN/shiftex-gateway" -config "$WORKDIR/gateway.json" -http "$GW_ADDR" \
    -debug-addr "$GW_DEBUG_ADDR" >"$LOG/gateway.log" 2>&1 &
GW_PID=$!
PIDS="$PIDS $GW_PID"
for i in $(seq 1 50); do
    curl -sf "http://$GW_ADDR/v1/healthz" >/dev/null 2>&1 && break
    kill -0 "$GW_PID" 2>/dev/null || fail "gateway exited during startup"
    sleep 0.1
done

# The committed checkpoint serves 32-dimensional inputs (FMoW spec).
X=$(seq 1 32 | awk '{printf "%s%.2f", (NR==1 ? "" : ","), $1/32}')

echo "== middleware chain short-circuit: tokenless /v1/predict is 401"
code=$(curl -s -o "$WORKDIR/unauth.json" -w '%{http_code}' \
    -X POST -d "{\"x\":[$X]}" "http://$GW_ADDR/v1/predict")
[ "$code" = 401 ] || fail "tokenless /v1/predict returned $code, want 401"

echo "== /v1/predict with bearer token, end to end through a replica"
code=$(curl -s -o "$WORKDIR/predict.json" -w '%{http_code}' \
    -H "Authorization: Bearer $TOKEN" \
    -X POST -d "{\"x\":[$X]}" "http://$GW_ADDR/v1/predict")
[ "$code" = 200 ] || fail "/v1/predict returned $code: $(cat "$WORKDIR/predict.json")"
grep -q '"class"' "$WORKDIR/predict.json" || fail "/v1/predict body unexpected: $(cat "$WORKDIR/predict.json")"
grep -q '"replica"' "$WORKDIR/predict.json" || fail "/v1/predict did not report the serving replica"

echo "== deprecated unversioned alias answers and is flagged"
curl -s -D "$WORKDIR/alias.hdr" -o "$WORKDIR/alias.json" \
    -H "Authorization: Bearer $TOKEN" \
    -X POST -d "{\"x\":[$X]}" "http://$GW_ADDR/predict"
grep -qi '^Deprecation: true' "$WORKDIR/alias.hdr" || fail "/predict alias missing Deprecation header"
grep -q '"class"' "$WORKDIR/alias.json" || fail "/predict alias body unexpected: $(cat "$WORKDIR/alias.json")"

echo "== misspelled middleware fails startup, naming the available set"
cat >"$WORKDIR/bad.json" <<EOF
{
  "models": {"default": ["$REP1_ADDR"]},
  "middlewares": {"predict": ["authz"]}
}
EOF
if "$BIN/shiftex-gateway" -config "$WORKDIR/bad.json" -http 127.0.0.1:18653 \
    >"$WORKDIR/bad.out" 2>&1; then
    fail "gateway started with an unknown middleware name"
fi
grep -q 'unknown middleware "authz"' "$WORKDIR/bad.out" || fail "startup error does not name the offender: $(cat "$WORKDIR/bad.out")"
grep -q 'available:' "$WORKDIR/bad.out" || fail "startup error does not list the available middlewares: $(cat "$WORKDIR/bad.out")"

echo "== load generation with a mid-load replica SIGKILL"
"$BIN/shiftex-gateway" -loadgen -checkpoint "$CKPT" -url "http://$GW_ADDR" \
    -samples "$SAMPLES" -test "$TEST" -repeat 40 -concurrency 8 \
    -token "$TOKEN" -kill-pid "$REP2_PID" -kill-at 0.5 \
    -json "$WORKDIR" >"$LOG/loadgen.log" 2>&1 \
    || fail "load generation failed"
cat "$LOG/loadgen.log"

echo "== artifact gate (zero dropped requests, affinity >= 0.9)"
"$BIN/shiftex-gateway" -check "$WORKDIR/BENCH_gateway.json" -min-affinity 0.9 \
    || fail "gateway artifact did not validate"

echo "== distributed trace crosses both tiers"
# A fresh input vector (different from $X) so the gateway's session cache
# cannot short-circuit the hop to the replica; replica2 is dead by now,
# so the trace must land on replica1.
X2=$(seq 1 32 | awk '{printf "%s%.2f", (NR==1 ? "" : ","), $1/16}')
TRACE_ID=deadbeefdeadbeefdeadbeefdeadbeef
code=$(curl -s -o "$WORKDIR/traced.json" -w '%{http_code}' \
    -H "Authorization: Bearer $TOKEN" \
    -H "traceparent: 00-$TRACE_ID-00f067aa0ba902b7-01" \
    -X POST -d "{\"x\":[$X2]}" "http://$GW_ADDR/v1/predict")
[ "$code" = 200 ] || fail "traced /v1/predict returned $code: $(cat "$WORKDIR/traced.json")"
curl -s "http://$GW_ADDR/v1/debug/traces?trace=$TRACE_ID" >"$WORKDIR/gw_traces.json"
grep -q "$TRACE_ID" "$WORKDIR/gw_traces.json" \
    || fail "gateway /v1/debug/traces has no spans for $TRACE_ID: $(cat "$WORKDIR/gw_traces.json")"
grep -q '"gateway.route"' "$WORKDIR/gw_traces.json" \
    || fail "gateway trace is missing the routing span: $(cat "$WORKDIR/gw_traces.json")"
curl -s "http://$REP1_ADDR/v1/debug/traces?trace=$TRACE_ID" >"$WORKDIR/rep_traces.json"
grep -q "$TRACE_ID" "$WORKDIR/rep_traces.json" \
    || fail "replica /v1/debug/traces has no spans for $TRACE_ID: $(cat "$WORKDIR/rep_traces.json")"
grep -q '"serve.batch"' "$WORKDIR/rep_traces.json" \
    || fail "replica trace is missing the batch span: $(cat "$WORKDIR/rep_traces.json")"

echo "== pprof answers on the gateway debug port"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$GW_DEBUG_ADDR/v1/debug/pprof/cmdline")
[ "$code" = 200 ] || fail "/v1/debug/pprof/cmdline on $GW_DEBUG_ADDR returned $code, want 200"

echo "SMOKE OK"
