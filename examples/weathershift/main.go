// Weathershift reproduces the paper's Figure 1 motivation on the CIFAR-10-C
// style benchmark: it trains a clear-weather model, shows how badly it
// degrades on each weather regime, then shows that weather-specific experts
// recover the lost accuracy — the gap that justifies a mixture of experts.
//
//	go run ./examples/weathershift
package main

import (
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "weathershift:", err)
		os.Exit(1)
	}
}

func trainModel(spec dataset.Spec, exs []dataset.Example, seed uint64) (*nn.MLP, error) {
	m, err := nn.NewMLP([]int{spec.InputDim, 32, 16, spec.NumClasses}, tensor.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	opt := nn.NewSGD(0.02)
	opt.Momentum = 0.9
	if _, err := nn.TrainEpochs(m, dataset.Inputs(exs), dataset.Labels(exs), opt, 30, 16, tensor.NewRNG(seed+1)); err != nil {
		return nil, err
	}
	return m, nil
}

func run() error {
	spec := dataset.CIFAR10CSpec()
	gen, err := dataset.NewGenerator(spec, 1)
	if err != nil {
		return err
	}
	rng := tensor.NewRNG(2)
	uniform := tensor.Vector(stats.Uniform(spec.NumClasses))

	weather := []dataset.Corruption{
		{}, // clear
		{Kind: dataset.CorruptFog, Severity: 4},
		{Kind: dataset.CorruptRain, Severity: 4},
		{Kind: dataset.CorruptSnow, Severity: 4},
		{Kind: dataset.CorruptFrost, Severity: 4},
	}

	train := make([][]dataset.Example, len(weather))
	test := make([][]dataset.Example, len(weather))
	for i, w := range weather {
		if train[i], err = gen.SampleSet(300, uniform, w, rng); err != nil {
			return err
		}
		if test[i], err = gen.SampleSet(200, uniform, w, rng); err != nil {
			return err
		}
	}

	clear, err := trainModel(spec, train[0], 7)
	if err != nil {
		return err
	}

	fmt.Println("accuracy of clear-trained model vs weather-specific experts")
	fmt.Printf("%-8s %18s %18s\n", "regime", "clear model", "specific expert")
	for i, w := range weather {
		clearAcc, err := clear.Accuracy(dataset.Inputs(test[i]), dataset.Labels(test[i]))
		if err != nil {
			return err
		}
		expert, err := trainModel(spec, train[i], 7)
		if err != nil {
			return err
		}
		expAcc, err := expert.Accuracy(dataset.Inputs(test[i]), dataset.Labels(test[i]))
		if err != nil {
			return err
		}
		name := "clear"
		if !w.IsIdentity() {
			name = w.String()
		}
		fmt.Printf("%-8s %17.2f%% %17.2f%%\n", name, 100*clearAcc, 100*expAcc)
	}
	return nil
}
