// Labelshift demonstrates the label-shift half of ShiftEx: parties whose
// class prevalences drift (Dirichlet re-sampling, as in a healthcare
// federation where disease prevalence moves by season) are detected through
// Jensen-Shannon divergence and re-balanced with FLIPS participant
// selection, keeping expert training label-balanced.
//
//	go run ./examples/labelshift
package main

import (
	"fmt"
	"os"

	"repro/internal/flips"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "labelshift:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		parties = 30
		classes = 10
		samples = 80
	)
	rng := tensor.NewRNG(3)

	// Window t-1: every party draws labels from its own Dirichlet mix.
	prev := make([]stats.Histogram, parties)
	for p := range prev {
		prev[p] = stats.Histogram(rng.Dirichlet(classes, 2))
	}
	// Window t: a third of the parties experience label shift.
	curr := make([]stats.Histogram, parties)
	shifted := map[int]bool{}
	for p := range curr {
		if p%3 == 0 {
			curr[p] = stats.Histogram(rng.Dirichlet(classes, 0.2)) // sharp skew
			shifted[p] = true
		} else {
			curr[p] = prev[p]
		}
	}

	// Detection: JSD between observed label histograms across windows.
	// The threshold comes from a bootstrap null at the window sample size.
	nulls := make([]float64, 0, 200)
	for i := 0; i < 200; i++ {
		h := prev[rng.Intn(parties)]
		a := resample(h, samples, rng)
		b := resample(h, samples, rng)
		j, err := stats.JSD(a, b)
		if err != nil {
			return err
		}
		nulls = append(nulls, j)
	}
	delta := stats.Quantile(nulls, 0.95)

	fmt.Printf("δ_label (95%% null quantile at n=%d): %.4f\n", samples, delta)
	var truePos, falsePos int
	ids := make([]int, 0, parties)
	hists := make([]stats.Histogram, 0, parties)
	for p := 0; p < parties; p++ {
		obsPrev := resample(prev[p], samples, rng)
		obsCurr := resample(curr[p], samples, rng)
		j, err := stats.JSD(obsPrev, obsCurr)
		if err != nil {
			return err
		}
		flagged := j > delta
		if flagged && shifted[p] {
			truePos++
		}
		if flagged && !shifted[p] {
			falsePos++
		}
		ids = append(ids, p)
		hists = append(hists, obsCurr)
	}
	fmt.Printf("detected %d/%d shifted parties, %d false positives\n", truePos, len(shifted), falsePos)

	// Rebalancing: FLIPS clusters the new histograms and draws an
	// equitable cohort; compare its label balance with naive sampling.
	sel, err := flips.New(ids, hists, 5, rng)
	if err != nil {
		return err
	}
	cohort, err := sel.Select(10, rng)
	if err != nil {
		return err
	}
	flipsScore, err := sel.BalanceScore(cohort)
	if err != nil {
		return err
	}
	// Naive selection: a homogeneous cohort drawn from a single label
	// cluster — the unlucky draw utility- or availability-driven selection
	// can produce. Use the most skewed cluster to show the failure mode.
	var naive []int
	naiveScore := -1.0
	for _, c := range sel.Clusters() {
		cohortC := c
		if len(cohortC) > 10 {
			cohortC = cohortC[:10]
		}
		score, err := sel.BalanceScore(cohortC)
		if err != nil {
			return err
		}
		if score > naiveScore {
			naive, naiveScore = cohortC, score
		}
	}
	fmt.Printf("FLIPS clusters: %d\n", sel.NumClusters())
	fmt.Printf("cohort label imbalance (JSD to uniform): flips=%.4f naive(%d parties)=%.4f\n",
		flipsScore, len(naive), naiveScore)
	if flipsScore < naiveScore {
		fmt.Println("FLIPS cohort is better balanced — experts train without class collapse")
	}
	return nil
}

func resample(h stats.Histogram, n int, rng *tensor.RNG) stats.Histogram {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Categorical(tensor.Vector(h))
	}
	return stats.NewHistogram(labels, len(h))
}
