// Quickstart: build a streaming federated scenario, run the ShiftEx
// aggregator over all windows, and print how the expert pool adapts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/shiftex"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A workload: 20 parties, 4 windows; half the parties change
	// covariate regime at every window boundary.
	spec := dataset.FMoWSpec()
	spec.NumParties = 20
	spec.Windows = 4
	scenario, err := dataset.BuildScenario(spec, dataset.DefaultShiftConfig(), 42)
	if err != nil {
		return err
	}

	// 2. A federation simulating those parties with a small MLP.
	arch := []int{spec.InputDim, 32, 16, spec.NumClasses}
	fed, err := federation.New(scenario, arch, 7)
	if err != nil {
		return err
	}

	// 3. The ShiftEx aggregator with default knobs.
	cfg := shiftex.DefaultConfig()
	cfg.BootstrapRounds = 12
	cfg.RoundsPerWindow = 12
	agg, err := shiftex.New(cfg, 11)
	if err != nil {
		return err
	}

	// 4. Stream the windows through it.
	for w := 0; w < fed.NumWindows(); w++ {
		trace, err := agg.RunWindow(fed, w)
		if err != nil {
			return fmt.Errorf("window %d: %w", w, err)
		}
		dist := shiftex.Snapshot(agg.Assignments())
		fmt.Printf("window %d: start=%.1f%% end=%.1f%% experts=%d assignment=%v\n",
			w, 100*trace[0], 100*trace[len(trace)-1], agg.Registry().Len(), dist)
	}
	fmt.Printf("calibrated thresholds: δ_cov=%.4f δ_label=%.4f ε=%.3f\n",
		agg.Thresholds().DeltaCov, agg.Thresholds().DeltaLabel, agg.Epsilon())
	return nil
}
