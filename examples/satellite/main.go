// Satellite runs the FMoW-style land-use scenario end to end and compares
// ShiftEx against FedProx on the same stream: seasonal covariate shifts and
// changing land-use prevalence (label shift) arrive window by window, and
// the example prints each method's recovery behaviour.
//
//	go run ./examples/satellite
package main

import (
	"fmt"
	"os"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/shiftex"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "satellite:", err)
		os.Exit(1)
	}
}

func run() error {
	spec := dataset.FMoWSpec()
	spec.NumParties = 24
	spec.Windows = 4

	shift := dataset.DefaultShiftConfig()
	shift.CovariateKinds = dataset.WeatherKinds()
	shift.LabelShift = true // land-use prevalence changes by season
	shift.SeverityMin, shift.SeverityMax = 3, 5

	scenario, err := dataset.BuildScenario(spec, shift, 2024)
	if err != nil {
		return err
	}
	arch := []int{spec.InputDim, 32, 16, spec.NumClasses}

	shiftexCfg := shiftex.DefaultConfig()
	shiftexCfg.BootstrapRounds = 12
	shiftexCfg.RoundsPerWindow = 12
	shiftexCfg.ParticipantsPerRound = 8

	proxCfg := baselines.DefaultConfig()
	proxCfg.BootstrapRounds = 12
	proxCfg.RoundsPerWindow = 12
	proxCfg.ParticipantsPerRound = 8

	type entry struct {
		name string
		tech federation.Technique
	}
	agg, err := shiftex.New(shiftexCfg, 5)
	if err != nil {
		return err
	}
	prox, err := baselines.NewFedProx(proxCfg, 0.1, 5)
	if err != nil {
		return err
	}
	methods := []entry{{"shiftex", agg}, {"fedprox", prox}}

	for _, m := range methods {
		// A fresh federation per technique: same scenario, same seeds.
		fed, err := federation.New(scenario, arch, 9)
		if err != nil {
			return err
		}
		fmt.Printf("== %s ==\n", m.name)
		var preShift float64
		for w := 0; w < fed.NumWindows(); w++ {
			trace, err := m.tech.RunWindow(fed, w)
			if err != nil {
				return fmt.Errorf("%s window %d: %w", m.name, w, err)
			}
			final := trace[len(trace)-1]
			if w == 0 {
				fmt.Printf("  W0 bootstrap: %.1f%%\n", 100*final)
			} else {
				drop := preShift - trace[0]
				recovered := "not recovered"
				for i, acc := range trace {
					if acc >= 0.95*preShift {
						recovered = fmt.Sprintf("recovered in %d rounds", i+1)
						break
					}
				}
				fmt.Printf("  W%d: drop %.1fpp, %s, final %.1f%%\n", w, 100*drop, recovered, 100*final)
			}
			preShift = final
		}
	}
	fmt.Printf("shiftex expert pool: %d experts for %d parties\n",
		agg.Registry().Len(), spec.NumParties)
	return nil
}
