package fl

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func testSpec() dataset.Spec {
	s := dataset.FMoWSpec().Scale(0.2) // 10 parties
	return s
}

func buildParties(t *testing.T, spec dataset.Spec, seed uint64) []*Party {
	t.Helper()
	sc, err := dataset.BuildScenario(spec, dataset.DefaultShiftConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	parties := make([]*Party, spec.NumParties)
	for p := 0; p < spec.NumParties; p++ {
		parties[p] = &Party{
			ID:    p,
			Train: sc.Windows[0][p].Train,
			Test:  sc.Windows[0][p].Test,
		}
	}
	return parties
}

func arch(spec dataset.Spec) []int {
	return []int{spec.InputDim, 24, 12, spec.NumClasses}
}

func initParams(t *testing.T, a []int) tensor.Vector {
	t.Helper()
	m, err := nn.NewMLP(a, tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	return m.Params()
}

func validCfg() TrainConfig {
	return TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1}
}

func TestTrainConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*TrainConfig)
		wantErr bool
	}{
		{name: "valid", mutate: func(c *TrainConfig) {}},
		{name: "zero epochs", mutate: func(c *TrainConfig) { c.Epochs = 0 }, wantErr: true},
		{name: "zero lr", mutate: func(c *TrainConfig) { c.LR = 0 }, wantErr: true},
		{name: "momentum 1", mutate: func(c *TrainConfig) { c.Momentum = 1 }, wantErr: true},
		{name: "negative decay", mutate: func(c *TrainConfig) { c.WeightDecay = -1 }, wantErr: true},
		{name: "negative prox", mutate: func(c *TrainConfig) { c.ProxMu = -1 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := validCfg()
			tt.mutate(&c)
			if err := c.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestLocalTrainImproves(t *testing.T) {
	spec := testSpec()
	parties := buildParties(t, spec, 1)
	a := arch(spec)
	global := initParams(t, a)
	p := parties[0]

	before, err := Evaluate(a, global, p.Train)
	if err != nil {
		t.Fatal(err)
	}
	cfg := validCfg()
	cfg.Epochs = 5
	u, err := LocalTrain(p, a, global, cfg, tensor.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	after, err := Evaluate(a, u.Params, p.Train)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("local training should improve train accuracy: %g -> %g", before, after)
	}
	if u.NumSamples != len(p.Train) || u.PartyID != p.ID {
		t.Fatalf("update metadata: %+v", u)
	}
}

func TestLocalTrainErrors(t *testing.T) {
	spec := testSpec()
	parties := buildParties(t, spec, 1)
	a := arch(spec)
	global := initParams(t, a)
	empty := &Party{ID: 99}
	if _, err := LocalTrain(empty, a, global, validCfg(), tensor.NewRNG(1)); err == nil {
		t.Fatal("empty party should error")
	}
	bad := validCfg()
	bad.LR = 0
	if _, err := LocalTrain(parties[0], a, global, bad, tensor.NewRNG(1)); err == nil {
		t.Fatal("invalid config should error")
	}
	if _, err := LocalTrain(parties[0], a, tensor.Vector{1, 2}, validCfg(), tensor.NewRNG(1)); err == nil {
		t.Fatal("wrong param size should error")
	}
}

func TestFedAvgWeighting(t *testing.T) {
	updates := []Update{
		{PartyID: 0, Params: tensor.Vector{1, 1}, NumSamples: 3},
		{PartyID: 1, Params: tensor.Vector{5, 5}, NumSamples: 1},
	}
	agg, err := FedAvg(updates)
	if err != nil {
		t.Fatal(err)
	}
	if agg[0] != 2 { // (3*1 + 1*5)/4
		t.Fatalf("agg = %v", agg)
	}
	if _, err := FedAvg(nil); err == nil {
		t.Fatal("empty updates should error")
	}
	if _, err := FedAvg([]Update{{Params: tensor.Vector{1}, NumSamples: 0}}); err == nil {
		t.Fatal("zero samples should error")
	}
}

func TestFedAvgConvexHull(t *testing.T) {
	// Aggregate must lie within the coordinate-wise min/max of inputs.
	rng := tensor.NewRNG(3)
	updates := make([]Update, 5)
	for i := range updates {
		updates[i] = Update{PartyID: i, Params: rng.NormVec(10, 0, 2), NumSamples: 1 + rng.Intn(10)}
	}
	agg, err := FedAvg(updates)
	if err != nil {
		t.Fatal(err)
	}
	for j := range agg {
		lo, hi := updates[0].Params[j], updates[0].Params[j]
		for _, u := range updates {
			if u.Params[j] < lo {
				lo = u.Params[j]
			}
			if u.Params[j] > hi {
				hi = u.Params[j]
			}
		}
		if agg[j] < lo-1e-12 || agg[j] > hi+1e-12 {
			t.Fatalf("agg[%d]=%g outside hull [%g,%g]", j, agg[j], lo, hi)
		}
	}
}

func TestEngineRoundConverges(t *testing.T) {
	spec := testSpec()
	parties := buildParties(t, spec, 2)
	a := arch(spec)
	runner := NewLocalRunner(parties, tensor.NewRNG(5))
	eng := &Engine{Arch: a, Trainer: runner, Workers: 2}

	global := initParams(t, a)
	selected := make([]int, len(parties))
	for i := range selected {
		selected[i] = i
	}
	var test []dataset.Example
	for _, p := range parties {
		test = append(test, p.Test...)
	}
	before, err := Evaluate(a, global, test)
	if err != nil {
		t.Fatal(err)
	}
	cfg := validCfg()
	cfg.Epochs = 3
	cfg.LR = 0.02
	for round := 0; round < 20; round++ {
		cfg.Seed = uint64(round)
		next, updates, err := eng.Round(global, selected, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(updates) != len(selected) {
			t.Fatalf("round %d: %d updates", round, len(updates))
		}
		global = next
	}
	after, err := Evaluate(a, global, test)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before+0.1 {
		t.Fatalf("federated training did not converge: %g -> %g", before, after)
	}
}

func TestEngineRoundPartialFailure(t *testing.T) {
	spec := testSpec()
	parties := buildParties(t, spec, 3)
	parties[2].Train = nil // this party will fail
	a := arch(spec)
	runner := NewLocalRunner(parties, tensor.NewRNG(5))
	eng := &Engine{Arch: a, Trainer: runner}
	global := initParams(t, a)

	next, updates, err := eng.Round(global, []int{0, 1, 2}, validCfg())
	if err != nil {
		t.Fatalf("partial failure should not abort the round: %v", err)
	}
	if len(updates) != 2 {
		t.Fatalf("updates = %d, want 2", len(updates))
	}
	if len(next) != len(global) {
		t.Fatal("aggregate has wrong shape")
	}
}

func TestEngineRoundAllFail(t *testing.T) {
	spec := testSpec()
	a := arch(spec)
	runner := NewLocalRunner(nil, tensor.NewRNG(1))
	eng := &Engine{Arch: a, Trainer: runner}
	_, _, err := eng.Round(initParams(t, a), []int{0, 1}, validCfg())
	if err == nil {
		t.Fatal("all-fail round should error")
	}
	if !strings.Contains(err.Error(), "all parties failed") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, _, err := eng.Round(initParams(t, a), nil, validCfg()); err == nil {
		t.Fatal("empty selection should error")
	}
}

func TestLocalRunnerSetPartyData(t *testing.T) {
	spec := testSpec()
	parties := buildParties(t, spec, 4)
	runner := NewLocalRunner(parties, tensor.NewRNG(1))
	newData := parties[1].Train
	if err := runner.SetPartyData(0, newData, nil); err != nil {
		t.Fatal(err)
	}
	p, ok := runner.Party(0)
	if !ok {
		t.Fatal("party 0 missing")
	}
	if len(p.Train) != len(newData) {
		t.Fatal("data not replaced")
	}
	if err := runner.SetPartyData(999, nil, nil); err == nil {
		t.Fatal("unknown party should error")
	}
	if _, ok := runner.Party(999); ok {
		t.Fatal("unknown party lookup should fail")
	}
}

func TestEvaluateErrors(t *testing.T) {
	spec := testSpec()
	a := arch(spec)
	if _, err := Evaluate(a, initParams(t, a), nil); err == nil {
		t.Fatal("empty test set should error")
	}
	if _, err := Evaluate(a, tensor.Vector{1}, []dataset.Example{{X: tensor.NewVector(spec.InputDim)}}); err == nil {
		t.Fatal("wrong params should error")
	}
}

func TestLocalRunnerDeterministicPerSeed(t *testing.T) {
	spec := testSpec()
	parties := buildParties(t, spec, 6)
	a := arch(spec)
	global := initParams(t, a)
	runner := NewLocalRunner(parties, tensor.NewRNG(9))
	cfg := validCfg()
	cfg.Seed = 42
	u1, err := runner.TrainParty(0, a, global, cfg)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := runner.TrainParty(0, a, global, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u1.Params {
		if u1.Params[i] != u2.Params[i] {
			t.Fatal("same seed must give identical local training")
		}
	}
}
