package fl

import (
	"strings"
	"testing"
	"time"

	"repro/internal/tensor"
)

func TestTCPFederationEndToEnd(t *testing.T) {
	spec := testSpec()
	parties := buildParties(t, spec, 10)[:4]
	a := arch(spec)

	trainer := NewTCPTrainer(nil)
	var servers []*PartyServer
	for _, p := range parties {
		srv, err := NewPartyServer("127.0.0.1:0", p, spec.NumClasses, tensor.NewRNG(uint64(p.ID)+100))
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		trainer.Register(p.ID, srv.Addr())
	}
	defer func() {
		for _, s := range servers {
			if err := s.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}
	}()

	eng := &Engine{Arch: a, Trainer: trainer, Workers: 2}
	global := initParams(t, a)
	selected := []int{0, 1, 2, 3}
	cfg := validCfg()
	cfg.Epochs = 2

	var before float64
	for _, p := range parties {
		acc, err := trainer.EvalParty(p.ID, a, global)
		if err != nil {
			t.Fatal(err)
		}
		before += acc
	}
	for round := 0; round < 4; round++ {
		cfg.Seed = uint64(round)
		next, updates, err := eng.Round(global, selected, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(updates) != 4 {
			t.Fatalf("round %d updates = %d", round, len(updates))
		}
		global = next
	}
	var after float64
	for _, p := range parties {
		acc, err := trainer.EvalParty(p.ID, a, global)
		if err != nil {
			t.Fatal(err)
		}
		after += acc
	}
	if after <= before {
		t.Fatalf("TCP federation did not improve: %g -> %g", before/4, after/4)
	}
}

func TestTCPStats(t *testing.T) {
	spec := testSpec()
	p := buildParties(t, spec, 11)[0]
	a := arch(spec)
	srv, err := NewPartyServer("127.0.0.1:0", p, spec.NumClasses, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	trainer := NewTCPTrainer(map[int]string{p.ID: srv.Addr()})
	global := initParams(t, a)
	st, err := trainer.FetchStats(p.ID, a, global, spec.NumClasses, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.PartyID != p.ID || st.NumSamples != len(p.Train) {
		t.Fatalf("stats = %+v", st)
	}
	if st.MMD != 0 {
		t.Fatalf("first-window MMD = %g, want 0", st.MMD)
	}
	// Second fetch compares against the first window's state.
	st2, err := trainer.FetchStats(p.ID, a, global, spec.NumClasses, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Window != 1 {
		t.Fatalf("window = %d, want 1", st2.Window)
	}
}

func TestTCPUnknownParty(t *testing.T) {
	trainer := NewTCPTrainer(nil)
	_, err := trainer.TrainParty(7, []int{2, 3, 2}, tensor.Vector{1}, validCfg())
	if err == nil || !strings.Contains(err.Error(), "no address registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	trainer := NewTCPTrainer(map[int]string{0: "127.0.0.1:1"}) // nothing listening
	trainer.DialTimeout = 200 * time.Millisecond
	if _, err := trainer.TrainParty(0, []int{2, 3, 2}, tensor.Vector{1}, validCfg()); err == nil {
		t.Fatal("dial to dead address should error")
	}
}

func TestTCPRemoteErrorPropagates(t *testing.T) {
	spec := testSpec()
	p := buildParties(t, spec, 12)[0]
	p.Train = nil // remote training will fail
	srv, err := NewPartyServer("127.0.0.1:0", p, spec.NumClasses, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	trainer := NewTCPTrainer(map[int]string{p.ID: srv.Addr()})
	_, err = trainer.TrainParty(p.ID, arch(spec), initParams(t, arch(spec)), validCfg())
	if err == nil || !strings.Contains(err.Error(), "no training data") {
		t.Fatalf("err = %v", err)
	}
}

func TestPartyServerNilParty(t *testing.T) {
	if _, err := NewPartyServer("127.0.0.1:0", nil, 3, tensor.NewRNG(1)); err == nil {
		t.Fatal("nil party should error")
	}
}
