package fl

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Wire protocol: a single gob-encoded request/response pair per connection.
// Each party runs a PartyServer; the aggregator dials it per assignment.
// The protocol carries model parameters and aggregate statistics only —
// raw examples never cross the wire, preserving the FL privacy contract.

// reqKind discriminates request types on the wire.
type reqKind int

const (
	reqTrain reqKind = iota + 1
	reqStats
	reqEval
	reqHist
	reqAdvance
)

func (k reqKind) String() string {
	switch k {
	case reqTrain:
		return "train"
	case reqStats:
		return "stats"
	case reqEval:
		return "eval"
	case reqHist:
		return "hist"
	case reqAdvance:
		return "advance"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// request is the wire envelope sent by the aggregator.
type request struct {
	Kind   reqKind
	Arch   []int
	Global tensor.Vector
	Cfg    TrainConfig
	// NumClasses is used by stats and histogram requests.
	NumClasses int
	// Seed makes party-side randomness (detector subsampling) a pure
	// function of the request, so a remote party and an in-process one
	// produce identical statistics. 0 falls back to the server's own
	// stream (legacy behavior).
	Seed uint64
	// Window is the target stream window for advance requests.
	Window int
	// Traceparent carries the aggregator-side trace context (W3C
	// traceparent format) so a party-side span joins the same trace.
	// Empty when the aggregator runs untraced; gob tolerates the field
	// being absent on older peers.
	Traceparent string
}

// response is the wire envelope returned by a party.
type response struct {
	Update Update
	Stats  detect.PartyStats
	Acc    float64
	Hist   stats.Histogram
	Err    string
}

// WindowProvider supplies a streaming party's per-window data. A party
// server with a provider answers window-advance requests by swapping its
// train/test splits; its detector state rolls forward across windows just
// like the in-process federation's.
type WindowProvider interface {
	NumWindows() int
	PartyWindow(w int) (train, test []dataset.Example, err error)
}

// PartyServer serves one party's training and shift-statistics endpoints
// over TCP. It owns a background accept loop; stop it with Close.
type PartyServer struct {
	detector   *detect.Detector
	numClasses int

	ln   net.Listener
	wg   sync.WaitGroup
	stop chan struct{}

	tracer   atomic.Pointer[telemetry.Tracer]
	requests atomic.Int64

	mu      sync.Mutex
	party   *Party
	windows WindowProvider
	rng     *tensor.RNG
}

// SetTracer attaches a tracer; each wire request then records a
// party.<kind> span, continuing the aggregator's trace when the request
// carries a valid traceparent.
func (s *PartyServer) SetTracer(t *telemetry.Tracer) { s.tracer.Store(t) }

// Requests reports how many wire requests the server has handled.
func (s *PartyServer) Requests() int64 { return s.requests.Load() }

// NewPartyServer starts serving the party on addr (e.g. "127.0.0.1:0").
// The returned server is already accepting connections.
func NewPartyServer(addr string, party *Party, numClasses int, rng *tensor.RNG) (*PartyServer, error) {
	if party == nil {
		return nil, errors.New("fl: nil party")
	}
	det, err := detect.NewDetector(party.ID, numClasses, 64)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fl: listen %s: %w", addr, err)
	}
	s := &PartyServer{
		party:      party,
		detector:   det,
		numClasses: numClasses,
		ln:         ln,
		stop:       make(chan struct{}),
		rng:        rng,
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetWindowProvider attaches a stream of per-window data; the server then
// honors window-advance requests from the aggregator.
func (s *PartyServer) SetWindowProvider(p WindowProvider) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.windows = p
}

// Addr returns the server's bound address.
func (s *PartyServer) Addr() string { return s.ln.Addr().String() }

// snapshot returns a consistent copy of the party under the lock so
// handlers can run unlocked while an advance swaps the window data.
func (s *PartyServer) snapshot() *Party {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Party{ID: s.party.ID, Train: s.party.Train, Test: s.party.Test}
}

// Close stops the accept loop and waits for in-flight handlers.
func (s *PartyServer) Close() error {
	close(s.stop)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *PartyServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return
			default:
				// Transient accept error; keep serving.
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *PartyServer) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Minute))
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var req request
	if err := dec.Decode(&req); err != nil {
		return
	}
	s.requests.Add(1)
	var span *telemetry.Span
	if tr := s.tracer.Load(); tr != nil {
		// A malformed traceparent is replaced with a fresh root, never
		// propagated (same policy as the HTTP tiers).
		parent, _ := telemetry.ParseTraceparent(req.Traceparent)
		span = tr.StartSpan("party."+req.Kind.String(), parent)
		s.mu.Lock()
		span.SetAttrInt("party", int64(s.party.ID))
		s.mu.Unlock()
	}
	var resp response
	switch req.Kind {
	case reqTrain:
		u, err := s.train(req)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Update = u
		}
	case reqStats:
		st, err := s.computeStats(req)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Stats = st
		}
	case reqEval:
		acc, err := s.eval(req)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Acc = acc
		}
	case reqHist:
		h, err := s.hist(req)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Hist = h
		}
	case reqAdvance:
		if err := s.advance(req.Window); err != nil {
			resp.Err = err.Error()
		}
	default:
		resp.Err = fmt.Sprintf("fl: unknown request kind %d", req.Kind)
	}
	if span != nil {
		if resp.Err != "" {
			span.SetError(errors.New(resp.Err))
		}
		span.End()
	}
	_ = enc.Encode(&resp)
}

func (s *PartyServer) train(req request) (Update, error) {
	p := s.snapshot()
	// The same (seed, partyID) derivation the in-process runner uses, so
	// updates are bit-identical across transports.
	return LocalTrain(p, req.Arch, req.Global, req.Cfg, DeriveRNG(req.Cfg.Seed, p.ID))
}

func (s *PartyServer) computeStats(req request) (detect.PartyStats, error) {
	model, err := nn.NewMLP(req.Arch, tensor.NewRNG(0))
	if err != nil {
		return detect.PartyStats{}, err
	}
	if err := model.SetParams(req.Global); err != nil {
		return detect.PartyStats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rng := s.rng
	if req.Seed != 0 {
		rng = DeriveRNG(req.Seed, s.party.ID)
	}
	return s.detector.Observe(model, s.party.Train, rng)
}

func (s *PartyServer) eval(req request) (float64, error) {
	return Evaluate(req.Arch, req.Global, s.snapshot().Test)
}

func (s *PartyServer) hist(req request) (stats.Histogram, error) {
	n := req.NumClasses
	if n <= 0 {
		n = s.numClasses
	}
	return dataset.LabelHistogram(s.snapshot().Train, n), nil
}

func (s *PartyServer) advance(w int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.windows == nil {
		// A single-window (legacy) party already serves window 0, so
		// advancing to it is a no-op — this keeps legacy parties drivable
		// by the service aggregator, which always advances at window
		// start.
		if w == 0 {
			return nil
		}
		return fmt.Errorf("fl: party %d has no window stream", s.party.ID)
	}
	if w < 0 || w >= s.windows.NumWindows() {
		return fmt.Errorf("fl: party %d window %d out of range [0,%d)", s.party.ID, w, s.windows.NumWindows())
	}
	train, test, err := s.windows.PartyWindow(w)
	if err != nil {
		return fmt.Errorf("fl: party %d window %d: %w", s.party.ID, w, err)
	}
	s.party.Train = train
	s.party.Test = test
	return nil
}

// TCPTrainer is a Trainer that reaches parties over TCP.
type TCPTrainer struct {
	mu    sync.Mutex
	addrs map[int]string
	// DialTimeout bounds connection establishment; 0 means 5s.
	DialTimeout time.Duration
	// CallTimeout bounds one full request/response exchange (the
	// connection deadline); 0 means 2m.
	CallTimeout time.Duration

	tracer atomic.Pointer[telemetry.Tracer]
}

// SetTracer attaches a tracer; each wire call then records an fl.<kind>
// span parented under the tracer's active context (the Trainer interface
// carries no ctx, so the aggregator publishes its current stage span via
// Tracer.SetActive) and stamps its traceparent onto the wire request.
func (t *TCPTrainer) SetTracer(tr *telemetry.Tracer) { t.tracer.Store(tr) }

var _ Trainer = (*TCPTrainer)(nil)

// NewTCPTrainer builds a trainer from a party-ID → address map.
func NewTCPTrainer(addrs map[int]string) *TCPTrainer {
	m := make(map[int]string, len(addrs))
	for k, v := range addrs {
		m[k] = v
	}
	return &TCPTrainer{addrs: m}
}

// Register adds or replaces a party address.
func (t *TCPTrainer) Register(partyID int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[partyID] = addr
}

func (t *TCPTrainer) addr(partyID int) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.addrs[partyID]
	if !ok {
		return "", fmt.Errorf("fl: no address registered for party %d", partyID)
	}
	return a, nil
}

func (t *TCPTrainer) roundTrip(partyID int, req request) (response, error) {
	if tr := t.tracer.Load(); tr != nil {
		span := tr.StartSpan("fl."+req.Kind.String(), tr.Active())
		span.SetAttrInt("party", int64(partyID))
		req.Traceparent = telemetry.Traceparent(span.Context())
		resp, err := t.doRoundTrip(partyID, req)
		span.EndErr(err)
		return resp, err
	}
	return t.doRoundTrip(partyID, req)
}

func (t *TCPTrainer) doRoundTrip(partyID int, req request) (response, error) {
	addr, err := t.addr(partyID)
	if err != nil {
		return response{}, err
	}
	timeout := t.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return response{}, fmt.Errorf("fl: dial party %d at %s: %w", partyID, addr, err)
	}
	defer conn.Close()
	callTimeout := t.CallTimeout
	if callTimeout <= 0 {
		callTimeout = 2 * time.Minute
	}
	_ = conn.SetDeadline(time.Now().Add(callTimeout))
	if err := gob.NewEncoder(conn).Encode(&req); err != nil {
		return response{}, fmt.Errorf("fl: encode to party %d: %w", partyID, err)
	}
	var resp response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return response{}, fmt.Errorf("fl: decode from party %d: %w", partyID, err)
	}
	if resp.Err != "" {
		return response{}, fmt.Errorf("fl: party %d: %s", partyID, resp.Err)
	}
	return resp, nil
}

// TrainParty implements Trainer.
func (t *TCPTrainer) TrainParty(partyID int, arch []int, global tensor.Vector, cfg TrainConfig) (Update, error) {
	resp, err := t.roundTrip(partyID, request{Kind: reqTrain, Arch: arch, Global: global, Cfg: cfg})
	if err != nil {
		return Update{}, err
	}
	return resp.Update, nil
}

// FetchStats asks a remote party for its Algorithm-1 shift statistics
// computed against the given encoder parameters. A non-zero seed pins the
// party-side subsampling RNG (see request.Seed).
func (t *TCPTrainer) FetchStats(partyID int, arch []int, global tensor.Vector, numClasses int, seed uint64) (detect.PartyStats, error) {
	resp, err := t.roundTrip(partyID, request{Kind: reqStats, Arch: arch, Global: global, NumClasses: numClasses, Seed: seed})
	if err != nil {
		return detect.PartyStats{}, err
	}
	return resp.Stats, nil
}

// HistParty asks a remote party for its current-window label histogram.
func (t *TCPTrainer) HistParty(partyID, numClasses int) (stats.Histogram, error) {
	resp, err := t.roundTrip(partyID, request{Kind: reqHist, NumClasses: numClasses})
	if err != nil {
		return nil, err
	}
	return resp.Hist, nil
}

// AdvanceParty rolls a remote streaming party forward to window w.
func (t *TCPTrainer) AdvanceParty(partyID, w int) error {
	_, err := t.roundTrip(partyID, request{Kind: reqAdvance, Window: w})
	return err
}

// EvalParty asks a remote party to evaluate parameters on its private test
// split and return only the accuracy.
func (t *TCPTrainer) EvalParty(partyID int, arch []int, global tensor.Vector) (float64, error) {
	resp, err := t.roundTrip(partyID, request{Kind: reqEval, Arch: arch, Global: global})
	if err != nil {
		return 0, err
	}
	return resp.Acc, nil
}
