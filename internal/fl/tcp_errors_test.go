package fl

import (
	"encoding/gob"
	"errors"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// rawServer starts a TCP listener driven by a raw connection handler — used
// to fault-inject protocol violations a well-behaved PartyServer never
// produces.
func rawServer(t *testing.T, handler func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handler(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestTCPPartyKilledMidRound covers a party process dying after accepting
// the request but before responding: the connection drops mid-exchange and
// the engine completes the round on the surviving parties.
func TestTCPPartyKilledMidRound(t *testing.T) {
	spec := testSpec()
	parties := buildParties(t, spec, 21)[:2]
	a := arch(spec)

	srv, err := NewPartyServer("127.0.0.1:0", parties[0], spec.NumClasses, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Party 1 "dies" mid-round: reads the request, then the process is
	// gone — the connection closes with no response bytes.
	killed := rawServer(t, func(conn net.Conn) {
		var req request
		_ = gob.NewDecoder(conn).Decode(&req)
		conn.Close()
	})

	trainer := NewTCPTrainer(map[int]string{0: srv.Addr(), 1: killed})
	eng := &Engine{Arch: a, Trainer: trainer, Workers: 2}
	global := initParams(t, a)

	next, updates, err := eng.Round(global, []int{0, 1}, validCfg())
	if err != nil {
		t.Fatalf("round should survive a killed party: %v", err)
	}
	if len(updates) != 1 || updates[0].PartyID != 0 {
		t.Fatalf("expected only party 0's update, got %+v", updates)
	}
	if next == nil {
		t.Fatal("no aggregate returned")
	}

	// The killed party's error itself names the decode failure.
	_, err = trainer.TrainParty(1, a, global, validCfg())
	if err == nil || !strings.Contains(err.Error(), "decode from party 1") {
		t.Fatalf("err = %v, want decode failure naming party 1", err)
	}
}

// TestTCPConnectionRefused covers dialing a party that is not listening.
func TestTCPConnectionRefused(t *testing.T) {
	// Bind a port, then close it so nothing is listening there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	trainer := NewTCPTrainer(map[int]string{3: addr})
	trainer.DialTimeout = 500 * time.Millisecond
	_, err = trainer.TrainParty(3, []int{2, 3, 2}, tensor.Vector{1, 2, 3}, validCfg())
	if err == nil {
		t.Fatal("connection refused should error")
	}
	if !strings.Contains(err.Error(), "dial party 3") || !strings.Contains(err.Error(), addr) {
		t.Fatalf("err should name the party and address, got: %v", err)
	}
}

// TestTCPMalformedResponse covers a party answering with bytes that are not
// a gob response, and one whose valid gob stream is truncated.
func TestTCPMalformedResponse(t *testing.T) {
	garbage := rawServer(t, func(conn net.Conn) {
		var req request
		_ = gob.NewDecoder(conn).Decode(&req)
		_, _ = conn.Write([]byte("HTTP/1.1 200 OK\r\n\r\nnot gob"))
		conn.Close()
	})
	short := rawServer(t, func(conn net.Conn) {
		var req request
		_ = gob.NewDecoder(conn).Decode(&req)
		// Encode a full response, then send only the first few bytes.
		pr, pw := net.Pipe()
		go func() {
			_ = gob.NewEncoder(pw).Encode(&response{Acc: 0.5})
			pw.Close()
		}()
		buf := make([]byte, 5)
		n, _ := pr.Read(buf)
		pr.Close()
		_, _ = conn.Write(buf[:n])
		conn.Close()
	})

	for name, addr := range map[string]string{"garbage": garbage, "short": short} {
		t.Run(name, func(t *testing.T) {
			trainer := NewTCPTrainer(map[int]string{0: addr})
			_, err := trainer.EvalParty(0, []int{2, 3, 2}, tensor.Vector{1, 2, 3})
			if err == nil || !strings.Contains(err.Error(), "decode from party 0") {
				t.Fatalf("err = %v, want decode failure", err)
			}
		})
	}
}

// TestTCPRequestTimeout covers a party that accepts and never answers: the
// trainer's call deadline must cut the exchange instead of hanging.
func TestTCPRequestTimeout(t *testing.T) {
	stall := make(chan struct{})
	t.Cleanup(func() { close(stall) })
	addr := rawServer(t, func(conn net.Conn) {
		<-stall // hold the connection open, never respond
		conn.Close()
	})

	trainer := NewTCPTrainer(map[int]string{0: addr})
	trainer.CallTimeout = 300 * time.Millisecond
	start := time.Now()
	_, err := trainer.TrainParty(0, []int{2, 3, 2}, tensor.Vector{1, 2, 3}, validCfg())
	if err == nil {
		t.Fatal("stalled party should time the request out")
	}
	var netErr net.Error
	if !errors.As(err, &netErr) || !netErr.Timeout() {
		t.Fatalf("err = %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %s, deadline not applied", elapsed)
	}
}

// sliceWindows is a minimal WindowProvider over in-memory windows.
type sliceWindows struct {
	train [][]dataset.Example
	test  [][]dataset.Example
}

func (s sliceWindows) NumWindows() int { return len(s.train) }
func (s sliceWindows) PartyWindow(w int) ([]dataset.Example, []dataset.Example, error) {
	return s.train[w], s.test[w], nil
}

// TestTCPWindowAdvance covers the streaming protocol: histogram before and
// after an advance, plus the advance error paths.
func TestTCPWindowAdvance(t *testing.T) {
	spec := testSpec()
	sc, err := dataset.BuildScenario(spec, dataset.DefaultShiftConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	p := &Party{ID: 0, Train: sc.Windows[0][0].Train, Test: sc.Windows[0][0].Test}
	srv, err := NewPartyServer("127.0.0.1:0", p, spec.NumClasses, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	trainer := NewTCPTrainer(map[int]string{0: srv.Addr()})

	// No provider yet: advancing past window 0 must fail, but advance to
	// window 0 is a no-op (a legacy party already serves it).
	if err := trainer.AdvanceParty(0, 1); err == nil || !strings.Contains(err.Error(), "no window stream") {
		t.Fatalf("advance without provider: err = %v", err)
	}
	if err := trainer.AdvanceParty(0, 0); err != nil {
		t.Fatalf("advance to window 0 without provider should be a no-op: %v", err)
	}
	h0, err := trainer.HistParty(0, spec.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	want0 := dataset.LabelHistogram(sc.Windows[0][0].Train, spec.NumClasses)
	if !reflect.DeepEqual(h0, want0) {
		t.Fatalf("window-0 histogram mismatch: %v vs %v", h0, want0)
	}

	provider := sliceWindows{
		train: [][]dataset.Example{sc.Windows[0][0].Train, sc.Windows[1][0].Train},
		test:  [][]dataset.Example{sc.Windows[0][0].Test, sc.Windows[1][0].Test},
	}
	srv.SetWindowProvider(provider)

	if err := trainer.AdvanceParty(0, 1); err != nil {
		t.Fatal(err)
	}
	h1, err := trainer.HistParty(0, spec.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	want1 := dataset.LabelHistogram(sc.Windows[1][0].Train, spec.NumClasses)
	if !reflect.DeepEqual(h1, want1) {
		t.Fatalf("window-1 histogram mismatch: %v vs %v", h1, want1)
	}

	if err := trainer.AdvanceParty(0, 9); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range advance: err = %v", err)
	}
}

// TestTCPStatsSeedDeterminism: with a pinned seed, two fresh servers over
// the same data return identical statistics even when the window exceeds
// the detector's subsampling cap (the RNG is derived from the request, not
// from server state).
func TestTCPStatsSeedDeterminism(t *testing.T) {
	spec := testSpec()
	spec.SamplesPerParty = 90 // above the 64-sample detector cap
	parties1 := buildParties(t, spec, 41)
	parties2 := buildParties(t, spec, 41)
	a := arch(spec)
	global := initParams(t, a)

	run := func(p *Party, serverSeed uint64) []tensor.Vector {
		srv, err := NewPartyServer("127.0.0.1:0", p, spec.NumClasses, tensor.NewRNG(serverSeed))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		trainer := NewTCPTrainer(map[int]string{p.ID: srv.Addr()})
		st, err := trainer.FetchStats(p.ID, a, global, spec.NumClasses, 1234)
		if err != nil {
			t.Fatal(err)
		}
		return st.EmbeddingSample
	}

	// Different server-local RNGs, same request seed → same subsample.
	s1 := run(parties1[0], 7)
	s2 := run(parties2[0], 1000007)
	if len(s1) != 64 {
		t.Fatalf("subsample len = %d, want cap 64", len(s1))
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("pinned-seed stats diverge across servers")
	}
}
