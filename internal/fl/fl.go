// Package fl implements the federated-learning substrate ShiftEx runs on:
// parties with private local data, FedAvg aggregation, a transport-agnostic
// synchronous round engine with bounded parallelism, and wire formats for
// running federations across processes. The paper layers ShiftEx over
// PySyft/Flower; this package is the equivalent substrate built from
// scratch.
package fl

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Party is one federation participant: private train/test data and the ID
// by which the aggregator addresses it. Raw examples never leave the party;
// only model updates and aggregate statistics do.
type Party struct {
	ID    int
	Train []dataset.Example
	Test  []dataset.Example
}

// NumSamples returns the party's training-set size.
func (p *Party) NumSamples() int { return len(p.Train) }

// TrainConfig describes one local-training assignment.
type TrainConfig struct {
	Epochs      int     `json:"epochs"`
	BatchSize   int     `json:"batchSize"`
	LR          float64 `json:"lr"`
	Momentum    float64 `json:"momentum"`
	WeightDecay float64 `json:"weightDecay"`
	// ProxMu > 0 enables the FedProx proximal term anchored at the
	// distributed global parameters.
	ProxMu float64 `json:"proxMu"`
	// Seed lets the aggregator make party-side shuffling deterministic.
	Seed uint64 `json:"seed"`
}

// Validate reports whether the config is usable.
func (c TrainConfig) Validate() error {
	switch {
	case c.Epochs <= 0:
		return fmt.Errorf("fl: epochs must be positive, got %d", c.Epochs)
	case c.LR <= 0:
		return fmt.Errorf("fl: lr must be positive, got %g", c.LR)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("fl: momentum must be in [0,1), got %g", c.Momentum)
	case c.WeightDecay < 0:
		return fmt.Errorf("fl: weight decay must be non-negative, got %g", c.WeightDecay)
	case c.ProxMu < 0:
		return fmt.Errorf("fl: prox mu must be non-negative, got %g", c.ProxMu)
	}
	return nil
}

// Update is a party's contribution to one aggregation round.
type Update struct {
	PartyID    int           `json:"partyId"`
	Params     tensor.Vector `json:"params"`
	NumSamples int           `json:"numSamples"`
	TrainLoss  float64       `json:"trainLoss"`
}

// DeriveRNG derives the deterministic per-party RNG for one assignment:
// a pure function of (seed, partyID), independent of call order, scheduling,
// and transport. Both the in-process runner and the TCP party server draw
// through this, which is what makes an in-process federation and a
// cross-process one produce bit-identical updates for the same seed.
func DeriveRNG(seed uint64, partyID int) *tensor.RNG {
	return tensor.NewRNG(seed ^ (uint64(partyID)+1)*0x9e3779b97f4a7c15)
}

// LocalTrain trains a fresh model initialized at the global parameters on
// the party's data and returns the resulting update.
func LocalTrain(p *Party, arch []int, global tensor.Vector, cfg TrainConfig, rng *tensor.RNG) (Update, error) {
	return LocalTrainWS(p, arch, global, cfg, rng, nil)
}

// LocalTrainWS is LocalTrain with a caller-provided training workspace
// (nil, or one that does not fit arch, allocates a fresh one). Worker pools
// pass one workspace per worker so every epoch of every assignment reuses
// the same buffers. The model itself is still freshly initialized from rng:
// the He-init draws are part of the party's deterministic RNG stream, so
// they must happen whether or not the values are immediately overwritten.
func LocalTrainWS(p *Party, arch []int, global tensor.Vector, cfg TrainConfig, rng *tensor.RNG, ws *nn.Workspace) (Update, error) {
	if err := cfg.Validate(); err != nil {
		return Update{}, err
	}
	if len(p.Train) == 0 {
		return Update{}, fmt.Errorf("fl: party %d has no training data", p.ID)
	}
	model, err := nn.NewMLP(arch, rng)
	if err != nil {
		return Update{}, fmt.Errorf("party %d: %w", p.ID, err)
	}
	if err := model.SetParams(global); err != nil {
		return Update{}, fmt.Errorf("party %d: %w", p.ID, err)
	}
	if ws == nil || !ws.Fits(model) {
		ws = nn.NewWorkspace(model)
	}
	opt := nn.NewSGD(cfg.LR)
	opt.Momentum = cfg.Momentum
	opt.WeightDecay = cfg.WeightDecay
	if cfg.ProxMu > 0 {
		opt.ProxMu = cfg.ProxMu
		opt.ProxRef = global.Clone()
	}
	loss, err := nn.TrainEpochsWS(ws, model, dataset.Inputs(p.Train), dataset.Labels(p.Train), opt, cfg.Epochs, cfg.BatchSize, rng)
	if err != nil {
		return Update{}, fmt.Errorf("party %d: %w", p.ID, err)
	}
	return Update{PartyID: p.ID, Params: model.Params(), NumSamples: len(p.Train), TrainLoss: loss}, nil
}

// FedAvg aggregates updates into new global parameters, weighting each by
// its sample count (McMahan et al.).
func FedAvg(updates []Update) (tensor.Vector, error) {
	if len(updates) == 0 {
		return nil, errors.New("fl: no updates to aggregate")
	}
	vs := make([]tensor.Vector, len(updates))
	ws := make([]float64, len(updates))
	for i, u := range updates {
		if u.NumSamples <= 0 {
			return nil, fmt.Errorf("fl: update from party %d has non-positive sample count %d", u.PartyID, u.NumSamples)
		}
		vs[i] = u.Params
		ws[i] = float64(u.NumSamples)
	}
	agg, err := tensor.WeightedMean(vs, ws)
	if err != nil {
		return nil, fmt.Errorf("fedavg: %w", err)
	}
	return agg, nil
}

// Trainer obtains an update from one party; implementations may be
// in-process or remote.
type Trainer interface {
	TrainParty(partyID int, arch []int, global tensor.Vector, cfg TrainConfig) (Update, error)
}

// LocalRunner is the in-process Trainer over a set of parties.
type LocalRunner struct {
	mu      sync.Mutex
	parties map[int]*Party
	rng     *tensor.RNG
	// wsPool recycles training workspaces across TrainParty calls so a
	// round's worker goroutines each reuse one workspace instead of
	// allocating per assignment. Workspaces are architecture-specific;
	// entries that do not fit the requested arch are dropped.
	wsPool sync.Pool
}

var _ Trainer = (*LocalRunner)(nil)

// NewLocalRunner builds a runner over the given parties.
func NewLocalRunner(parties []*Party, rng *tensor.RNG) *LocalRunner {
	m := make(map[int]*Party, len(parties))
	for _, p := range parties {
		m[p.ID] = p
	}
	return &LocalRunner{parties: m, rng: rng}
}

// SetPartyData replaces a party's data (stream window rollover).
func (r *LocalRunner) SetPartyData(id int, train, test []dataset.Example) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.parties[id]
	if !ok {
		return fmt.Errorf("fl: unknown party %d", id)
	}
	p.Train = train
	p.Test = test
	return nil
}

// Party returns the party with the given ID.
func (r *LocalRunner) Party(id int) (*Party, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.parties[id]
	return p, ok
}

// TrainParty implements Trainer.
func (r *LocalRunner) TrainParty(partyID int, arch []int, global tensor.Vector, cfg TrainConfig) (Update, error) {
	r.mu.Lock()
	p, ok := r.parties[partyID]
	var rng *tensor.RNG
	if ok {
		// Derive a per-call RNG under the lock; training itself runs
		// unlocked so parties can train concurrently.
		rng = DeriveRNG(cfg.Seed, partyID)
	}
	r.mu.Unlock()
	if !ok {
		return Update{}, fmt.Errorf("fl: unknown party %d", partyID)
	}
	ws, _ := r.wsPool.Get().(*nn.Workspace)
	if ws == nil || !ws.FitsDims(arch) {
		ws = nn.NewWorkspaceDims(arch)
	}
	u, err := LocalTrainWS(p, arch, global, cfg, rng, ws)
	r.wsPool.Put(ws)
	return u, err
}

// Engine runs synchronous federated rounds over a Trainer.
type Engine struct {
	Arch    []int
	Trainer Trainer
	// Workers bounds concurrent party training; 0 means one per core
	// (runtime.GOMAXPROCS(0)). Results are bit-identical for any value:
	// per-party RNGs derive from (seed, partyID) alone and updates are
	// merged in selection order.
	Workers int
}

// Round trains the selected parties from the given global parameters and
// returns the FedAvg aggregate together with the individual updates.
// Parties that fail are skipped (their error is joined into err only when
// every party fails); partial participation is the norm in FL.
func (e *Engine) Round(global tensor.Vector, selected []int, cfg TrainConfig) (tensor.Vector, []Update, error) {
	if len(selected) == 0 {
		return nil, nil, errors.New("fl: no parties selected")
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selected) {
		workers = len(selected)
	}

	type result struct {
		update Update
		err    error
	}
	results := make([]result, len(selected))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, id := range selected {
		wg.Add(1)
		go func(slot, partyID int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			u, err := e.Trainer.TrainParty(partyID, e.Arch, global, cfg)
			results[slot] = result{update: u, err: err}
		}(i, id)
	}
	wg.Wait()

	updates := make([]Update, 0, len(selected))
	var errs []error
	for _, r := range results {
		if r.err != nil {
			errs = append(errs, r.err)
			continue
		}
		updates = append(updates, r.update)
	}
	if len(updates) == 0 {
		return nil, nil, fmt.Errorf("fl: all parties failed: %w", errors.Join(errs...))
	}
	agg, err := FedAvg(updates)
	if err != nil {
		return nil, nil, err
	}
	return agg, updates, nil
}

// Evaluator measures parameter vectors against datasets through one cached
// model and workspace, so repeated evaluations (per round, per party) stop
// allocating model-sized buffers. Not safe for concurrent use.
type Evaluator struct {
	model *nn.MLP
	ws    *nn.Workspace
}

// NewEvaluator builds an evaluator for one architecture.
func NewEvaluator(arch []int) (*Evaluator, error) {
	model, err := nn.NewMLP(arch, tensor.NewRNG(0))
	if err != nil {
		return nil, err
	}
	return &Evaluator{model: model, ws: nn.NewWorkspace(model)}, nil
}

// Accuracy measures the accuracy of the given parameters on a test set.
// Examples are consumed in place — no input/label slices are materialized.
func (e *Evaluator) Accuracy(params tensor.Vector, test []dataset.Example) (float64, error) {
	if len(test) == 0 {
		return 0, errors.New("fl: empty test set")
	}
	if err := e.model.SetParams(params); err != nil {
		return 0, err
	}
	correct := 0
	for _, ex := range test {
		pred, err := e.model.PredictWS(e.ws, ex.X)
		if err != nil {
			return 0, err
		}
		if pred == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(test)), nil
}

// Loss measures the mean cross-entropy loss of the given parameters on a
// set of examples.
func (e *Evaluator) Loss(params tensor.Vector, examples []dataset.Example) (float64, error) {
	if len(examples) == 0 {
		return 0, errors.New("nn: empty batch")
	}
	if err := e.model.SetParams(params); err != nil {
		return 0, err
	}
	var total float64
	for _, ex := range examples {
		loss, err := e.model.LossExampleWS(e.ws, ex.X, ex.Y)
		if err != nil {
			return 0, err
		}
		total += loss
	}
	return total / float64(len(examples)), nil
}

// Model loads params into the evaluator's cached model and returns it. The
// model is shared scratch state: it is valid until the next Evaluator call.
func (e *Evaluator) Model(params tensor.Vector) (*nn.MLP, error) {
	if err := e.model.SetParams(params); err != nil {
		return nil, err
	}
	return e.model, nil
}

// Evaluate measures the accuracy of the given parameters on a test set.
// Loops should hold an Evaluator instead.
func Evaluate(arch []int, params tensor.Vector, test []dataset.Example) (float64, error) {
	e, err := NewEvaluator(arch)
	if err != nil {
		return 0, err
	}
	return e.Accuracy(params, test)
}
