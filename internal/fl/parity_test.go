package fl

import (
	"testing"

	"repro/internal/tensor"
)

// TestRoundWorkerCountParity is the golden-trace guarantee of the parallel
// simulation round: a round scheduled across many workers produces
// bit-identical aggregates and per-party updates to the serial (one-worker)
// path, because every party RNG derives from (seed, partyID) alone and
// updates merge in selection order. CI runs this under -race, so it also
// proves the worker pool shares no training state.
func TestRoundWorkerCountParity(t *testing.T) {
	spec := testSpec()
	a := arch(spec)
	global := initParams(t, a)
	selected := []int{3, 0, 7, 5, 1, 9, 2}

	run := func(workers int) ([]float64, []Update) {
		parties := buildParties(t, spec, 42)
		runner := NewLocalRunner(parties, tensor.NewRNG(11))
		engine := &Engine{Arch: a, Trainer: runner, Workers: workers}
		agg, updates, err := engine.Round(global, selected, validCfg())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return agg, updates
	}

	serialAgg, serialUpdates := run(1)
	for _, workers := range []int{2, 8, 0} {
		agg, updates := run(workers)
		if len(agg) != len(serialAgg) {
			t.Fatalf("workers=%d: aggregate length %d vs %d", workers, len(agg), len(serialAgg))
		}
		for i := range agg {
			if agg[i] != serialAgg[i] {
				t.Fatalf("workers=%d: aggregate[%d] = %g, serial %g", workers, i, agg[i], serialAgg[i])
			}
		}
		if len(updates) != len(serialUpdates) {
			t.Fatalf("workers=%d: %d updates vs %d", workers, len(updates), len(serialUpdates))
		}
		for u := range updates {
			if updates[u].PartyID != serialUpdates[u].PartyID {
				t.Fatalf("workers=%d: update %d from party %d, serial from %d (selection order broken)",
					workers, u, updates[u].PartyID, serialUpdates[u].PartyID)
			}
			if updates[u].TrainLoss != serialUpdates[u].TrainLoss {
				t.Fatalf("workers=%d: update %d loss %g vs %g", workers, u, updates[u].TrainLoss, serialUpdates[u].TrainLoss)
			}
			for i := range updates[u].Params {
				if updates[u].Params[i] != serialUpdates[u].Params[i] {
					t.Fatalf("workers=%d: party %d param[%d] = %g, serial %g",
						workers, updates[u].PartyID, i, updates[u].Params[i], serialUpdates[u].Params[i])
				}
			}
		}
	}
}
