// Package metrics computes the evaluation quantities the paper reports
// (§6 "Metrics Captured"): Accuracy Drop (the immediate decline after a
// shift), Recovery Time (rounds needed to regain 95 % of pre-shift
// accuracy), and Max Accuracy per window, plus multi-seed mean/stddev
// aggregation and convergence traces for the figures.
package metrics

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// NotRecovered is the RecoveryRounds value reported when a technique never
// regains the recovery threshold within the window — the paper prints these
// entries as ">R".
const NotRecovered = -1

// WindowMetrics summarizes one window of one run.
type WindowMetrics struct {
	// Drop is the accuracy decline from pre-shift accuracy to the first
	// post-shift round, in accuracy points (0..1 scale).
	Drop float64
	// RecoveryRounds is the 1-based round at which accuracy first reaches
	// RecoverFrac × pre-shift accuracy, or NotRecovered.
	RecoveryRounds int
	// Max is the best accuracy achieved in the window.
	Max float64
}

// AnalyzeWindow derives the paper's three window metrics from a per-round
// accuracy trace. preShift is the accuracy achieved at the end of the
// previous window; recoverFrac is the recovery criterion (the paper uses
// 0.95).
func AnalyzeWindow(preShift float64, trace []float64, recoverFrac float64) (WindowMetrics, error) {
	if len(trace) == 0 {
		return WindowMetrics{}, errors.New("metrics: empty trace")
	}
	if recoverFrac <= 0 || recoverFrac > 1 {
		return WindowMetrics{}, fmt.Errorf("metrics: recover fraction must be in (0,1], got %g", recoverFrac)
	}
	m := WindowMetrics{
		Drop:           preShift - trace[0],
		RecoveryRounds: NotRecovered,
		Max:            trace[0],
	}
	target := recoverFrac * preShift
	for i, acc := range trace {
		if acc > m.Max {
			m.Max = acc
		}
		if m.RecoveryRounds == NotRecovered && acc >= target {
			m.RecoveryRounds = i + 1
		}
	}
	return m, nil
}

// RunResult is one technique's full multi-window result for one seed.
type RunResult struct {
	Technique string
	Seed      uint64
	// Traces[w] is the per-round accuracy trace of window w.
	Traces [][]float64
	// Windows[w] holds the derived metrics for windows w >= 1 (index 0 is
	// zero-valued: W0 is burn-in).
	Windows []WindowMetrics
	// Distributions[w] maps expert/model ID to assigned-party count at
	// the end of window w (Figures 7-8).
	Distributions []map[int]int
}

// Analyze fills Windows from Traces using the paper's protocol: the
// pre-shift accuracy for window w is the final accuracy of window w-1.
func (r *RunResult) Analyze(recoverFrac float64) error {
	if len(r.Traces) == 0 {
		return errors.New("metrics: no traces")
	}
	r.Windows = make([]WindowMetrics, len(r.Traces))
	for w := 1; w < len(r.Traces); w++ {
		prev := r.Traces[w-1]
		if len(prev) == 0 {
			return fmt.Errorf("metrics: window %d has empty predecessor trace", w)
		}
		preShift := prev[len(prev)-1]
		m, err := AnalyzeWindow(preShift, r.Traces[w], recoverFrac)
		if err != nil {
			return fmt.Errorf("window %d: %w", w, err)
		}
		r.Windows[w] = m
	}
	return nil
}

// FinalAccuracy returns the last round's accuracy of the last window.
func (r *RunResult) FinalAccuracy() float64 {
	if len(r.Traces) == 0 {
		return math.NaN()
	}
	last := r.Traces[len(r.Traces)-1]
	if len(last) == 0 {
		return math.NaN()
	}
	return last[len(last)-1]
}

// Aggregate is the multi-seed mean ± stddev for one cell of a results
// table.
type Aggregate struct {
	Mean, Std float64
	N         int
}

// String formats as "mean±std" in percent, the paper's table style.
func (a Aggregate) String() string {
	return fmt.Sprintf("%.2f±%.2f", 100*a.Mean, 100*a.Std)
}

// WindowAggregate is one technique's multi-seed summary for one window.
type WindowAggregate struct {
	Drop Aggregate
	Max  Aggregate
	// MedianRecovery is the median recovery round (recovery-time variance
	// is negligible per the paper, so no stddev is reported); it is
	// NotRecovered when most seeds never recover.
	MedianRecovery int
	// RecoveredFrac is the fraction of seeds that recovered.
	RecoveredFrac float64
}

// AggregateWindows combines the same window across seeds.
func AggregateWindows(runs []RunResult, w int) (WindowAggregate, error) {
	if len(runs) == 0 {
		return WindowAggregate{}, errors.New("metrics: no runs")
	}
	var drop, max stats.Welford
	var recoveries []int
	for _, r := range runs {
		if w < 1 || w >= len(r.Windows) {
			return WindowAggregate{}, fmt.Errorf("metrics: window %d out of range", w)
		}
		m := r.Windows[w]
		drop.Add(m.Drop)
		max.Add(m.Max)
		recoveries = append(recoveries, m.RecoveryRounds)
	}
	return WindowAggregate{
		Drop:           Aggregate{Mean: drop.Mean(), Std: drop.StdDev(), N: drop.N()},
		Max:            Aggregate{Mean: max.Mean(), Std: max.StdDev(), N: max.N()},
		MedianRecovery: medianRecovery(recoveries),
		RecoveredFrac:  recoveredFrac(recoveries),
	}, nil
}

func medianRecovery(rs []int) int {
	recovered := make([]int, 0, len(rs))
	for _, r := range rs {
		if r != NotRecovered {
			recovered = append(recovered, r)
		}
	}
	if len(recovered)*2 < len(rs) || len(recovered) == 0 {
		return NotRecovered
	}
	// Insertion sort: tiny slices.
	for i := 1; i < len(recovered); i++ {
		for j := i; j > 0 && recovered[j] < recovered[j-1]; j-- {
			recovered[j], recovered[j-1] = recovered[j-1], recovered[j]
		}
	}
	return recovered[len(recovered)/2]
}

func recoveredFrac(rs []int) float64 {
	if len(rs) == 0 {
		return 0
	}
	n := 0
	for _, r := range rs {
		if r != NotRecovered {
			n++
		}
	}
	return float64(n) / float64(len(rs))
}

// MeanTrace averages per-round traces across seeds (truncating to the
// shortest trace), producing the convergence-figure series.
func MeanTrace(runs []RunResult, w int) ([]float64, error) {
	if len(runs) == 0 {
		return nil, errors.New("metrics: no runs")
	}
	shortest := math.MaxInt
	for _, r := range runs {
		if w < 0 || w >= len(r.Traces) {
			return nil, fmt.Errorf("metrics: window %d out of range", w)
		}
		if len(r.Traces[w]) < shortest {
			shortest = len(r.Traces[w])
		}
	}
	out := make([]float64, shortest)
	for _, r := range runs {
		for i := 0; i < shortest; i++ {
			out[i] += r.Traces[w][i]
		}
	}
	for i := range out {
		out[i] /= float64(len(runs))
	}
	return out, nil
}

// FlattenTraces concatenates all windows' traces into the single
// accuracy-vs-round series used by the convergence plots (Figures 3-4).
func FlattenTraces(r *RunResult) []float64 {
	var out []float64
	for _, t := range r.Traces {
		out = append(out, t...)
	}
	return out
}
