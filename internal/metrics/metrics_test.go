package metrics

import (
	"math"
	"testing"
)

func TestAnalyzeWindow(t *testing.T) {
	tests := []struct {
		name     string
		preShift float64
		trace    []float64
		wantDrop float64
		wantRec  int
		wantMax  float64
	}{
		{
			name:     "recovers mid window",
			preShift: 0.8,
			trace:    []float64{0.5, 0.7, 0.77, 0.82},
			wantDrop: 0.3, wantRec: 3, wantMax: 0.82,
		},
		{
			name:     "never recovers",
			preShift: 0.9,
			trace:    []float64{0.4, 0.5, 0.55},
			wantDrop: 0.5, wantRec: NotRecovered, wantMax: 0.55,
		},
		{
			name:     "instant recovery",
			preShift: 0.5,
			trace:    []float64{0.6, 0.7},
			wantDrop: -0.1, wantRec: 1, wantMax: 0.7,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := AnalyzeWindow(tt.preShift, tt.trace, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(m.Drop-tt.wantDrop) > 1e-12 {
				t.Fatalf("drop = %g, want %g", m.Drop, tt.wantDrop)
			}
			if m.RecoveryRounds != tt.wantRec {
				t.Fatalf("recovery = %d, want %d", m.RecoveryRounds, tt.wantRec)
			}
			if math.Abs(m.Max-tt.wantMax) > 1e-12 {
				t.Fatalf("max = %g, want %g", m.Max, tt.wantMax)
			}
		})
	}
}

func TestAnalyzeWindowErrors(t *testing.T) {
	if _, err := AnalyzeWindow(0.5, nil, 0.95); err == nil {
		t.Fatal("empty trace should error")
	}
	if _, err := AnalyzeWindow(0.5, []float64{0.1}, 0); err == nil {
		t.Fatal("recoverFrac=0 should error")
	}
	if _, err := AnalyzeWindow(0.5, []float64{0.1}, 1.1); err == nil {
		t.Fatal("recoverFrac>1 should error")
	}
}

func TestRunResultAnalyze(t *testing.T) {
	r := RunResult{
		Technique: "x",
		Traces: [][]float64{
			{0.3, 0.6, 0.8},  // W0 ends at 0.8
			{0.5, 0.75, 0.9}, // W1: drop 0.3, recovers at round 2 (0.75 < 0.76? no)
		},
	}
	if err := r.Analyze(0.95); err != nil {
		t.Fatal(err)
	}
	w1 := r.Windows[1]
	if math.Abs(w1.Drop-0.3) > 1e-12 {
		t.Fatalf("drop = %g", w1.Drop)
	}
	// target = 0.95*0.8 = 0.76 → round 3 (0.9) is the first >= target.
	if w1.RecoveryRounds != 3 {
		t.Fatalf("recovery = %d", w1.RecoveryRounds)
	}
	if w1.Max != 0.9 {
		t.Fatalf("max = %g", w1.Max)
	}
	if got := r.FinalAccuracy(); got != 0.9 {
		t.Fatalf("final = %g", got)
	}
	bad := RunResult{}
	if err := bad.Analyze(0.95); err == nil {
		t.Fatal("no traces should error")
	}
	if !math.IsNaN(bad.FinalAccuracy()) {
		t.Fatal("final of empty should be NaN")
	}
}

func TestAggregateWindows(t *testing.T) {
	mk := func(drop, max float64, rec int) RunResult {
		return RunResult{Windows: []WindowMetrics{{}, {Drop: drop, Max: max, RecoveryRounds: rec}}}
	}
	runs := []RunResult{mk(0.2, 0.8, 5), mk(0.4, 0.9, 7), mk(0.3, 0.85, NotRecovered)}
	agg, err := AggregateWindows(runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(agg.Drop.Mean-0.3) > 1e-12 {
		t.Fatalf("drop mean = %g", agg.Drop.Mean)
	}
	if agg.Drop.N != 3 {
		t.Fatalf("n = %d", agg.Drop.N)
	}
	// 2/3 recovered → median of {5,7} = 7 (upper median).
	if agg.MedianRecovery != 7 {
		t.Fatalf("median recovery = %d", agg.MedianRecovery)
	}
	if math.Abs(agg.RecoveredFrac-2.0/3.0) > 1e-12 {
		t.Fatalf("recovered frac = %g", agg.RecoveredFrac)
	}
	if _, err := AggregateWindows(nil, 1); err == nil {
		t.Fatal("no runs should error")
	}
	if _, err := AggregateWindows(runs, 5); err == nil {
		t.Fatal("out-of-range window should error")
	}
}

func TestAggregateWindowsMajorityNotRecovered(t *testing.T) {
	mk := func(rec int) RunResult {
		return RunResult{Windows: []WindowMetrics{{}, {RecoveryRounds: rec}}}
	}
	runs := []RunResult{mk(3), mk(NotRecovered), mk(NotRecovered)}
	agg, err := AggregateWindows(runs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if agg.MedianRecovery != NotRecovered {
		t.Fatalf("majority-unrecovered median = %d", agg.MedianRecovery)
	}
}

func TestAggregateString(t *testing.T) {
	a := Aggregate{Mean: 0.6668, Std: 0.0059}
	if got := a.String(); got != "66.68±0.59" {
		t.Fatalf("string = %q", got)
	}
}

func TestMeanTrace(t *testing.T) {
	runs := []RunResult{
		{Traces: [][]float64{{0.1, 0.2, 0.3}}},
		{Traces: [][]float64{{0.3, 0.4}}}, // shorter
	}
	mt, err := MeanTrace(runs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mt) != 2 {
		t.Fatalf("len = %d", len(mt))
	}
	if math.Abs(mt[0]-0.2) > 1e-12 || math.Abs(mt[1]-0.3) > 1e-12 {
		t.Fatalf("mean trace = %v", mt)
	}
	if _, err := MeanTrace(nil, 0); err == nil {
		t.Fatal("no runs should error")
	}
	if _, err := MeanTrace(runs, 3); err == nil {
		t.Fatal("bad window should error")
	}
}

func TestFlattenTraces(t *testing.T) {
	r := RunResult{Traces: [][]float64{{0.1}, {0.2, 0.3}}}
	flat := FlattenTraces(&r)
	if len(flat) != 3 || flat[2] != 0.3 {
		t.Fatalf("flat = %v", flat)
	}
}
