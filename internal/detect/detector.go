// Package detect implements the party-side shift-detection pipeline of
// ShiftEx (Algorithm 1 of the paper): each window, a party embeds its local
// data through its current model's penultimate layer, summarizes the
// embedding distribution and label histogram, and computes MMD/JSD against
// the previous window. Only these aggregate statistics — never raw data —
// are transmitted to the aggregator.
package detect

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// PartyStats is the per-window statistics bundle a party transmits to the
// aggregator: {P_t(X), y_t, Δcov, Δlabel} in the paper's notation.
type PartyStats struct {
	PartyID int `json:"partyId"`
	Window  int `json:"window"`
	// MeanEmbedding is the aggregate latent representation P_t(X).
	MeanEmbedding tensor.Vector `json:"meanEmbedding"`
	// EmbeddingSample is a capped subsample of latent vectors used for
	// kernel MMD at the aggregator; it reveals no raw inputs.
	EmbeddingSample []tensor.Vector `json:"embeddingSample"`
	// LabelHist is the normalized label histogram y_t.
	LabelHist stats.Histogram `json:"labelHist"`
	// MMD is Δcov: the covariate discrepancy vs the previous window.
	MMD float64 `json:"mmd"`
	// JSD is Δlabel: the label discrepancy vs the previous window.
	JSD float64 `json:"jsd"`
	// NumSamples is the window's sample count (aggregation weight).
	NumSamples int `json:"numSamples"`
}

// Detector holds one party's rolling detection state across windows.
type Detector struct {
	partyID    int
	numClasses int
	sampleCap  int

	window     int
	prevSample []tensor.Vector
	prevHist   stats.Histogram
	// ws is the cached forward-pass workspace for the embedding loop,
	// rebuilt only when the encoder architecture changes.
	ws *nn.Workspace
}

// NewDetector builds a detector for one party. sampleCap bounds the number
// of embeddings retained and transmitted per window (the paper's fixed-size
// reference set); 0 means 64.
func NewDetector(partyID, numClasses, sampleCap int) (*Detector, error) {
	if numClasses < 2 {
		return nil, fmt.Errorf("detect: need >=2 classes, got %d", numClasses)
	}
	if sampleCap < 0 {
		return nil, fmt.Errorf("detect: negative sample cap %d", sampleCap)
	}
	if sampleCap == 0 {
		sampleCap = 64
	}
	return &Detector{partyID: partyID, numClasses: numClasses, sampleCap: sampleCap}, nil
}

// Window returns the number of windows observed so far.
func (d *Detector) Window() int { return d.window }

// Observe runs Algorithm 1 on the current window's data using the party's
// current model as the encoder, returning the statistics to transmit and
// advancing the detector's previous-window state.
func (d *Detector) Observe(model *nn.MLP, window []dataset.Example, rng *tensor.RNG) (PartyStats, error) {
	if len(window) == 0 {
		return PartyStats{}, errors.New("detect: empty window")
	}
	if model == nil {
		return PartyStats{}, errors.New("detect: nil model")
	}

	// Step 1-2: embed the window, subsample to the cap.
	idx := make([]int, len(window))
	for i := range idx {
		idx[i] = i
	}
	if len(idx) > d.sampleCap {
		idx = rng.Sample(len(window), d.sampleCap)
	}
	if d.ws == nil || !d.ws.Fits(model) {
		d.ws = nn.NewWorkspace(model)
	}
	sample := make([]tensor.Vector, 0, len(idx))
	for _, i := range idx {
		e, err := model.EmbedWS(d.ws, window[i].X)
		if err != nil {
			return PartyStats{}, fmt.Errorf("party %d embed: %w", d.partyID, err)
		}
		// EmbedWS aliases workspace storage; the sample is retained and
		// transmitted, so it owns a copy.
		sample = append(sample, e.Clone())
	}
	mean, err := tensor.Mean(sample)
	if err != nil {
		return PartyStats{}, fmt.Errorf("party %d: %w", d.partyID, err)
	}

	// Step 3: normalized label histogram.
	hist := dataset.LabelHistogram(window, d.numClasses)

	// Steps 4-9: discrepancies vs the previous window (0 on the first).
	var mmd, jsd float64
	if d.prevSample != nil {
		mmd, err = stats.MMDAuto(sample, d.prevSample)
		if err != nil {
			return PartyStats{}, fmt.Errorf("party %d mmd: %w", d.partyID, err)
		}
		jsd, err = stats.JSD(hist, d.prevHist)
		if err != nil {
			return PartyStats{}, fmt.Errorf("party %d jsd: %w", d.partyID, err)
		}
	}

	out := PartyStats{
		PartyID:         d.partyID,
		Window:          d.window,
		MeanEmbedding:   mean,
		EmbeddingSample: sample,
		LabelHist:       hist,
		MMD:             mmd,
		JSD:             jsd,
		NumSamples:      len(window),
	}
	d.prevSample = sample
	d.prevHist = hist
	d.window++
	return out, nil
}

// Reset clears the previous-window state (used when a party is reassigned
// to a different expert whose embedding space is not comparable).
func (d *Detector) Reset() {
	d.prevSample = nil
	d.prevHist = nil
}
