package detect

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func buildModel(t *testing.T, spec dataset.Spec) *nn.MLP {
	t.Helper()
	m, err := nn.NewMLP([]int{spec.InputDim, 16, 8, spec.NumClasses}, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sampleWindow(t *testing.T, g *dataset.Generator, n int, corr dataset.Corruption, dist tensor.Vector, rng *tensor.RNG) []dataset.Example {
	t.Helper()
	exs, err := g.SampleSet(n, dist, corr, rng)
	if err != nil {
		t.Fatal(err)
	}
	return exs
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector(0, 1, 10); err == nil {
		t.Fatal("1 class should error")
	}
	if _, err := NewDetector(0, 5, -1); err == nil {
		t.Fatal("negative cap should error")
	}
	d, err := NewDetector(0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.sampleCap != 64 {
		t.Fatalf("default cap = %d", d.sampleCap)
	}
}

func TestObserveFirstWindowZeroDeltas(t *testing.T) {
	spec := dataset.FMoWSpec()
	g, err := dataset.NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	model := buildModel(t, spec)
	d, err := NewDetector(3, spec.NumClasses, 32)
	if err != nil {
		t.Fatal(err)
	}
	uniform := tensor.NewVector(spec.NumClasses)
	uniform.Fill(1 / float64(spec.NumClasses))
	w := sampleWindow(t, g, 50, dataset.Corruption{}, uniform, rng)

	st, err := d.Observe(model, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if st.MMD != 0 || st.JSD != 0 {
		t.Fatalf("first window deltas should be 0: mmd=%g jsd=%g", st.MMD, st.JSD)
	}
	if st.PartyID != 3 || st.Window != 0 || st.NumSamples != 50 {
		t.Fatalf("stats metadata wrong: %+v", st)
	}
	if len(st.EmbeddingSample) != 32 {
		t.Fatalf("sample size = %d, want cap 32", len(st.EmbeddingSample))
	}
	if len(st.MeanEmbedding) != model.EmbeddingDim() {
		t.Fatalf("mean embedding dim = %d", len(st.MeanEmbedding))
	}
	if d.Window() != 1 {
		t.Fatalf("window counter = %d", d.Window())
	}
}

func TestObserveDetectsCovariateShift(t *testing.T) {
	spec := dataset.FMoWSpec()
	g, err := dataset.NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	model := buildModel(t, spec)
	d, err := NewDetector(0, spec.NumClasses, 48)
	if err != nil {
		t.Fatal(err)
	}
	uniform := tensor.NewVector(spec.NumClasses)
	uniform.Fill(1 / float64(spec.NumClasses))

	// Two clean windows: small MMD. Then a corrupted window: larger MMD.
	w0 := sampleWindow(t, g, 60, dataset.Corruption{}, uniform, rng)
	w1 := sampleWindow(t, g, 60, dataset.Corruption{}, uniform, rng)
	w2 := sampleWindow(t, g, 60, dataset.Corruption{Kind: dataset.CorruptFog, Severity: 5}, uniform, rng)

	if _, err := d.Observe(model, w0, rng); err != nil {
		t.Fatal(err)
	}
	stable, err := d.Observe(model, w1, rng)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := d.Observe(model, w2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.MMD <= stable.MMD {
		t.Fatalf("corrupted-window MMD %g should exceed stable %g", shifted.MMD, stable.MMD)
	}
	if shifted.MMD < 0.05 {
		t.Fatalf("corrupted-window MMD %g suspiciously small", shifted.MMD)
	}
}

func TestObserveDetectsLabelShift(t *testing.T) {
	spec := dataset.FMoWSpec()
	g, err := dataset.NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(4)
	model := buildModel(t, spec)
	d, err := NewDetector(0, spec.NumClasses, 48)
	if err != nil {
		t.Fatal(err)
	}
	uniform := tensor.NewVector(spec.NumClasses)
	uniform.Fill(1 / float64(spec.NumClasses))
	skewed := tensor.NewVector(spec.NumClasses)
	skewed[0] = 0.9
	skewed[1] = 0.1

	w0 := sampleWindow(t, g, 60, dataset.Corruption{}, uniform, rng)
	w1 := sampleWindow(t, g, 60, dataset.Corruption{}, skewed, rng)

	if _, err := d.Observe(model, w0, rng); err != nil {
		t.Fatal(err)
	}
	st, err := d.Observe(model, w1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if st.JSD < 0.1 {
		t.Fatalf("label shift JSD %g too small", st.JSD)
	}
}

func TestObserveErrors(t *testing.T) {
	spec := dataset.FMoWSpec()
	model := buildModel(t, spec)
	d, err := NewDetector(0, spec.NumClasses, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(1)
	if _, err := d.Observe(model, nil, rng); err == nil {
		t.Fatal("empty window should error")
	}
	if _, err := d.Observe(nil, []dataset.Example{{X: tensor.Vector{1}, Y: 0}}, rng); err == nil {
		t.Fatal("nil model should error")
	}
	// Wrong input dimension surfaces the embed error.
	bad := []dataset.Example{{X: tensor.Vector{1, 2}, Y: 0}}
	if _, err := d.Observe(model, bad, rng); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestReset(t *testing.T) {
	spec := dataset.FMoWSpec()
	g, err := dataset.NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	model := buildModel(t, spec)
	d, err := NewDetector(0, spec.NumClasses, 16)
	if err != nil {
		t.Fatal(err)
	}
	uniform := tensor.NewVector(spec.NumClasses)
	uniform.Fill(1 / float64(spec.NumClasses))
	w := sampleWindow(t, g, 30, dataset.Corruption{}, uniform, rng)
	if _, err := d.Observe(model, w, rng); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	st, err := d.Observe(model, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if st.MMD != 0 || st.JSD != 0 {
		t.Fatalf("post-reset deltas should be 0: %+v", st)
	}
}

func TestObserveSmallWindowBelowCap(t *testing.T) {
	spec := dataset.FMoWSpec()
	g, err := dataset.NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(6)
	model := buildModel(t, spec)
	d, err := NewDetector(0, spec.NumClasses, 100)
	if err != nil {
		t.Fatal(err)
	}
	uniform := tensor.NewVector(spec.NumClasses)
	uniform.Fill(1 / float64(spec.NumClasses))
	w := sampleWindow(t, g, 10, dataset.Corruption{}, uniform, rng)
	st, err := d.Observe(model, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.EmbeddingSample) != 10 {
		t.Fatalf("sample = %d, want all 10", len(st.EmbeddingSample))
	}
}
