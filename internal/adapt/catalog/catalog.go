// Package catalog wires the standard technique set into the adapt
// registry: the ShiftEx mixture-of-experts aggregator (policied — it runs
// whichever adaptation policy it is constructed with) and the paper's four
// baselines (policy-free single pipelines). Importing this package for its
// side effects is what populates adapt.TechniqueNames(); it is a separate
// package so adapt itself stays importable from internal/shiftex without a
// cycle.
package catalog

import (
	"repro/internal/adapt"
	"repro/internal/baselines"
	"repro/internal/federation"
	"repro/internal/shiftex"
)

// baseConfig maps the shared budget onto the baselines' config.
func baseConfig(b adapt.Budget) baselines.Config {
	return baselines.Config{
		BootstrapRounds:      b.BootstrapRounds,
		RoundsPerWindow:      b.RoundsPerWindow,
		ParticipantsPerRound: b.ParticipantsPerRound,
		Train:                b.Train,
	}
}

func init() {
	// Registration order is the paper's comparison order (Tables 1-2):
	// it defines the default technique ordering of the experiment grid
	// and therefore the cell order of BENCH artifacts.
	adapt.RegisterTechnique(adapt.TechniqueFactory{
		Name:        "shiftex",
		Description: "shift-aware mixture of experts (Algorithm 2) running the constructed adaptation policy",
		Policied:    true,
		New: func(b adapt.Budget, policy *adapt.Policy, seed uint64) (federation.Technique, error) {
			cfg := shiftex.DefaultConfig()
			cfg.BootstrapRounds = b.BootstrapRounds
			cfg.RoundsPerWindow = b.RoundsPerWindow
			cfg.ParticipantsPerRound = b.ParticipantsPerRound
			cfg.Train = b.Train
			return shiftex.NewWithPolicy(cfg, policy, seed)
		},
	})
	adapt.RegisterTechnique(adapt.TechniqueFactory{
		Name:        "fedprox",
		Description: "single global model with a proximal term",
		New: func(b adapt.Budget, _ *adapt.Policy, seed uint64) (federation.Technique, error) {
			return baselines.NewFedProx(baseConfig(b), 0.1, seed)
		},
	})
	adapt.RegisterTechnique(adapt.TechniqueFactory{
		Name:        "oort",
		Description: "utility-guided participant selection over a single global model",
		New: func(b adapt.Budget, _ *adapt.Policy, seed uint64) (federation.Technique, error) {
			return baselines.NewOORT(baseConfig(b), 0.2, seed)
		},
	})
	adapt.RegisterTechnique(adapt.TechniqueFactory{
		Name:        "fielding",
		Description: "label-distribution re-clustering into experts",
		New: func(b adapt.Budget, _ *adapt.Policy, seed uint64) (federation.Technique, error) {
			return baselines.NewFielding(baseConfig(b), 5, seed)
		},
	})
	adapt.RegisterTechnique(adapt.TechniqueFactory{
		Name:        "feddrift",
		Description: "loss-pattern expert clustering",
		New: func(b adapt.Budget, _ *adapt.Policy, seed uint64) (federation.Technique, error) {
			return baselines.NewFedDrift(baseConfig(b), 1.5, 6, seed)
		},
	})
}
