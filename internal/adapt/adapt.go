// Package adapt defines the adaptation-policy API of the ShiftEx
// middleware: the per-window adaptation loop (Algorithm 2) decomposed into
// typed pipeline stages — shift detection, bootstrap calibration, expert
// assignment, training planning, and expert consolidation — plus a Policy
// that bundles one implementation of each stage, and name→factory
// registries through which every policy and every federation technique is
// constructed.
//
// The stage interfaces are the contract between the aggregator (the
// pipeline driver, internal/shiftex) and the adaptation logic: new
// detectors, solvers, or lifecycle rules compose into new policies without
// touching the aggregator. Two ownership rules keep that safe:
//
//   - Stages are stateless between calls (any per-window state, like the
//     FLIPS selectors a TrainingPlanner builds, lives in the value the
//     stage returns). A Policy value may therefore be shared by concurrent
//     aggregators.
//   - All randomness is drawn from the *tensor.RNG the driver passes in,
//     never from stage-private sources, so a (policy, seed) pair is fully
//     deterministic and the experiment grid's bit-reproducibility contract
//     extends to every policy.
//
// Package catalog (internal/adapt/catalog) registers the standard
// technique set (shiftex plus the four baselines); importing it wires the
// full registry.
package adapt

import (
	"repro/internal/detect"
	"repro/internal/facility"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// ShiftDetector decides, from one party's transmitted statistics and the
// calibrated thresholds, whether the party is covariate- and/or
// label-shifted this window (Algorithm 2, lines 4-7). Implementations must
// be pure functions of their arguments.
type ShiftDetector interface {
	Detect(st detect.PartyStats, th stats.Thresholds) (cov, label bool)
}

// Calibrator derives the detection thresholds δ_cov/δ_label and the
// latent-memory reuse threshold ε from the bootstrap window's anchor
// statistics (§5). epsilon is the configured reuse threshold; 0 asks the
// calibrator to auto-derive one, and the returned value is the effective
// threshold either way. Randomness (resampling) must come from rng only.
type Calibrator interface {
	Calibrate(anchor []detect.PartyStats, cfg stats.CalibrateConfig, epsilon float64, rng *tensor.RNG) (stats.Thresholds, float64, error)
}

// AssignmentSolver solves one facility-location instance (Eq. 2): which
// shifted cluster reuses which existing expert, and which opens a new one.
// The returned assignment must be feasible for the instance (the driver
// materializes it directly into expert creations and reassignments).
type AssignmentSolver interface {
	Solve(in *facility.Instance) (*facility.Assignment, error)
}

// TrainingPlanner builds the participant-selection plan for one window's
// federated rounds. cohorts maps expert ID to its member parties; hists is
// indexed by party ID. Any randomness drawn while planning (e.g. FLIPS
// cluster seeding) must come from rng, in a deterministic cohort order.
type TrainingPlanner interface {
	Plan(cohorts map[int][]int, hists []stats.Histogram, rng *tensor.RNG) (ParticipantSelector, error)
}

// ParticipantSelector draws one round's cohort sample for one expert.
// k is the configured per-round sample size; implementations cap it at
// len(members) and return party IDs (not indices).
type ParticipantSelector interface {
	Select(expertID int, members []int, k int, rng *tensor.RNG) ([]int, error)
}

// ExpertPool is the minimal mutable view of an expert registry a
// Consolidator operates on. It is implemented by *shiftex.Registry. The
// pool owns the experts: a consolidator mutates it only through Merge and
// must treat vectors returned by Params/Signature as read-only shared
// storage.
type ExpertPool interface {
	// IDs returns the live expert IDs in insertion order.
	IDs() []int
	// Params returns an expert's parameter vector (shared storage).
	Params(id int) (tensor.Vector, bool)
	// Signature returns an expert's latent-memory signature, nil when the
	// expert has none.
	Signature(id int) tensor.Vector
	// Merge folds expert drop into expert keep, weighting by the given
	// cohort sizes, and removes drop from the pool.
	Merge(arch []int, keep, drop int, cohortSize map[int]int) error
}

// Consolidator runs the end-of-window expert-lifecycle rule (§5.2.5):
// merging redundant experts. It returns a remap from every removed expert
// ID to its surviving expert ID (transitively collapsed), which the driver
// applies to party assignments. tau is the parameter-similarity threshold
// and epsilon the latent-memory agreement threshold from the run's config;
// implementations may ignore either.
type Consolidator interface {
	Consolidate(pool ExpertPool, arch []int, tau, epsilon float64, cohortSize map[int]int) (map[int]int, error)
}
