package adapt

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/detect"
	"repro/internal/facility"
	"repro/internal/flips"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// ThresholdDetector is the default ShiftDetector: a party is
// covariate-shifted when its MMD exceeds δ_cov and label-shifted when its
// JSD exceeds δ_label — the paper's Algorithm 2 detection rule.
type ThresholdDetector struct{}

// Detect implements ShiftDetector.
func (ThresholdDetector) Detect(st detect.PartyStats, th stats.Thresholds) (bool, bool) {
	return st.MMD > th.DeltaCov, st.JSD > th.DeltaLabel
}

// CovariateThresholdDetector flags covariate shift only: the JSD statistic
// is ignored, so label-only shifts never trigger reassignment. It is the
// cheap variant for deployments whose label mixture is stable (or whose
// parties cannot afford label-histogram reporting): clustering and
// assignment then run strictly less often.
type CovariateThresholdDetector struct{}

// Detect implements ShiftDetector.
func (CovariateThresholdDetector) Detect(st detect.PartyStats, th stats.Thresholds) (bool, bool) {
	return st.MMD > th.DeltaCov, false
}

// BootstrapCalibrator is the default Calibrator: δ_cov from same-party
// split-half MMD resamples, δ_label from label-histogram resamples, and —
// when epsilon is 0 — ε from the window-0 dispersion of party mean
// embeddings around their common centroid (3× the median distance).
type BootstrapCalibrator struct{}

// Calibrate implements Calibrator. The resampling order is part of the
// bit-reproducibility contract: δ_cov resamples first, then δ_label, then
// the ε derivation (which draws no randomness).
func (BootstrapCalibrator) Calibrate(anchor []detect.PartyStats, cfg stats.CalibrateConfig, epsilon float64, rng *tensor.RNG) (stats.Thresholds, float64, error) {
	resamples := cfg.Resamples
	if resamples <= 0 {
		resamples = 100
	}
	// Covariate threshold: the null statistic must match the per-party
	// detector — MMD between same-party samples at window sample size —
	// so resample each party's own embeddings into two halves. Half-size
	// splits are slightly conservative (smaller samples inflate the
	// biased MMD), which suppresses false positives.
	covNulls := make([]float64, 0, resamples)
	var xs, ys []tensor.Vector // split buffers reused across resamples
	for i := 0; i < resamples; i++ {
		st := anchor[rng.Intn(len(anchor))]
		n := len(st.EmbeddingSample)
		if n < 4 {
			continue
		}
		perm := rng.Perm(n)
		half := n / 2
		xs, ys = xs[:0], ys[:0]
		for j := 0; j < half; j++ {
			xs = append(xs, st.EmbeddingSample[perm[j]])
			ys = append(ys, st.EmbeddingSample[perm[half+j]])
		}
		v, err := stats.MMDAuto(xs, ys)
		if err != nil {
			return stats.Thresholds{}, 0, err
		}
		covNulls = append(covNulls, v)
	}
	if len(covNulls) == 0 {
		return stats.Thresholds{}, 0, errors.New("adapt: not enough embeddings to calibrate δ_cov")
	}
	pv := cfg.PValue
	if pv <= 0 {
		pv = 0.05
	}
	deltaCov := stats.Quantile(covNulls, 1-pv)
	nulls := make([]float64, 0, resamples)
	for i := 0; i < resamples; i++ {
		st := anchor[rng.Intn(len(anchor))]
		n := st.NumSamples
		if n < 4 {
			n = 4
		}
		h1 := resampleHistogram(st.LabelHist, n, rng)
		h2 := resampleHistogram(st.LabelHist, n, rng)
		j, err := stats.JSD(h1, h2)
		if err != nil {
			return stats.Thresholds{}, 0, err
		}
		nulls = append(nulls, j)
	}
	th := stats.Thresholds{
		DeltaCov:   deltaCov,
		DeltaLabel: stats.Quantile(nulls, 1-pv),
	}

	if epsilon == 0 {
		// Auto ε: the within-regime dispersion of party mean embeddings
		// around their common centroid at window 0 (all parties share one
		// clean regime), scaled so recurring regimes match their expert's
		// memory while genuinely new regimes fall outside.
		if len(anchor) < 2 {
			return stats.Thresholds{}, 0, errors.New("adapt: cannot auto-calibrate epsilon with one party")
		}
		means := make([]tensor.Vector, len(anchor))
		for i, st := range anchor {
			means[i] = st.MeanEmbedding
		}
		centroid, err := tensor.Mean(means)
		if err != nil {
			return stats.Thresholds{}, 0, err
		}
		dists := make([]float64, len(means))
		for i, m := range means {
			dists[i] = stats.MeanEmbeddingMMD(m, centroid)
		}
		// 3× the median distance: robust to the label-mix outliers that
		// dominate the upper tail with few parties.
		epsilon = 3 * stats.Quantile(dists, 0.5)
	}
	return th, epsilon, nil
}

// resampleHistogram draws n labels from h and re-normalizes.
func resampleHistogram(h stats.Histogram, n int, rng *tensor.RNG) stats.Histogram {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Categorical(tensor.Vector(h))
	}
	return stats.NewHistogram(labels, len(h))
}

// GreedyAssignment is the default AssignmentSolver: the paper's modular
// greedy approximation with bounded local search (facility.SolveGreedy).
type GreedyAssignment struct{}

// Solve implements AssignmentSolver.
func (GreedyAssignment) Solve(in *facility.Instance) (*facility.Assignment, error) {
	return facility.SolveGreedy(in)
}

// ExactAssignment solves Eq. 2 by exact enumeration when the instance is
// small enough (at most facility.MaxExactClients clusters — shifted-party
// clustering is bounded by MaxClusters, so typical instances qualify) and
// otherwise falls back to the greedy approximation, unless NoFallback is
// set, in which case oversized instances are an error. The exact optimum
// can only lower the Eq. 2 objective relative to greedy.
type ExactAssignment struct {
	// NoFallback makes oversized instances an error instead of silently
	// degrading to the greedy solution.
	NoFallback bool
}

// Solve implements AssignmentSolver.
func (e ExactAssignment) Solve(in *facility.Instance) (*facility.Assignment, error) {
	if len(in.Clients) <= facility.MaxExactClients {
		return facility.SolveExact(in)
	}
	if e.NoFallback {
		return nil, fmt.Errorf("adapt: exact assignment limited to %d clusters, got %d (enable fallback or raise gamma)",
			facility.MaxExactClients, len(in.Clients))
	}
	return facility.SolveGreedy(in)
}

// FLIPSPlanner is the default TrainingPlanner: per-cohort FLIPS selectors
// (label-clustered stratified participant selection, §4.1) for cohorts of
// at least two parties, uniform sampling below that.
type FLIPSPlanner struct{}

// Plan implements TrainingPlanner. Cohorts are visited in ascending expert
// ID because flips.New draws from rng: map order would consume the stream
// differently on every run and break bit-reproducibility.
func (FLIPSPlanner) Plan(cohorts map[int][]int, hists []stats.Histogram, rng *tensor.RNG) (ParticipantSelector, error) {
	selectors := make(map[int]*flips.Selector)
	for _, id := range sortedCohortIDs(cohorts) {
		members := cohorts[id]
		if len(members) < 2 {
			continue
		}
		hs := make([]stats.Histogram, len(members))
		for i, p := range members {
			hs[i] = hists[p]
		}
		sel, err := flips.New(members, hs, 0, rng)
		if err != nil {
			return nil, fmt.Errorf("flips for expert %d: %w", id, err)
		}
		selectors[id] = sel
	}
	return flipsSelector{selectors: selectors}, nil
}

type flipsSelector struct {
	selectors map[int]*flips.Selector
}

// Select implements ParticipantSelector.
func (s flipsSelector) Select(expertID int, members []int, k int, rng *tensor.RNG) ([]int, error) {
	if sel, ok := s.selectors[expertID]; ok {
		return sel.Select(min(k, len(members)), rng)
	}
	return uniformSelect(members, k, rng)
}

// UniformPlanner selects participants uniformly at random without any
// label stratification — the DisableFLIPS ablation as a first-class stage.
type UniformPlanner struct{}

// Plan implements TrainingPlanner (draws nothing from rng at plan time).
func (UniformPlanner) Plan(map[int][]int, []stats.Histogram, *tensor.RNG) (ParticipantSelector, error) {
	return uniformSelector{}, nil
}

type uniformSelector struct{}

// Select implements ParticipantSelector.
func (uniformSelector) Select(_ int, members []int, k int, rng *tensor.RNG) ([]int, error) {
	return uniformSelect(members, k, rng)
}

func uniformSelect(members []int, k int, rng *tensor.RNG) ([]int, error) {
	idx := rng.Sample(len(members), min(k, len(members)))
	selected := make([]int, len(idx))
	for i, j := range idx {
		selected[i] = members[j]
	}
	return selected, nil
}

func sortedCohortIDs(cohorts map[int][]int) []int {
	out := make([]int, 0, len(cohorts))
	for id := range cohorts {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// SimilarityConsolidator is the default Consolidator: it merges every pair
// of experts whose parameter cosine similarity exceeds tau AND whose
// latent-memory signatures agree within epsilon (§5.2.5 — parameter
// similarity alone is not sufficient, because an expert freshly
// warm-started from another remains parameter-similar even while serving a
// different regime). epsilon <= 0 disables the memory guard.
type SimilarityConsolidator struct{}

// Consolidate implements Consolidator. Merges are weighted by cohortSize,
// and the returned remap is transitively collapsed (c→b→a becomes c→a).
func (SimilarityConsolidator) Consolidate(pool ExpertPool, arch []int, tau, epsilon float64, cohortSize map[int]int) (map[int]int, error) {
	if tau <= 0 || tau > 1 {
		return nil, fmt.Errorf("adapt: tau must be in (0,1], got %g", tau)
	}
	sameRegime := func(a, b int) bool {
		ma, mb := pool.Signature(a), pool.Signature(b)
		if epsilon <= 0 || ma == nil || mb == nil {
			return true
		}
		return stats.MeanEmbeddingMMD(ma, mb) <= epsilon
	}
	remap := make(map[int]int)
	for {
		ids := pool.IDs()
		merged := false
		for i := 0; i < len(ids) && !merged; i++ {
			for j := i + 1; j < len(ids) && !merged; j++ {
				pa, aok := pool.Params(ids[i])
				pb, bok := pool.Params(ids[j])
				if !aok || !bok {
					continue
				}
				sim := tensor.CosineSimilarity(pa, pb)
				if sim <= tau || !sameRegime(ids[i], ids[j]) {
					continue
				}
				if err := pool.Merge(arch, ids[i], ids[j], cohortSize); err != nil {
					return nil, err
				}
				remap[ids[j]] = ids[i]
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	// Collapse transitive remaps (c→b→a becomes c→a).
	for from, to := range remap {
		for {
			next, ok := remap[to]
			if !ok {
				break
			}
			to = next
		}
		remap[from] = to
	}
	return remap, nil
}

// NoConsolidator never merges experts — the DisableConsolidation ablation
// as a first-class stage; the pool only grows (or stays fixed) over the
// stream.
type NoConsolidator struct{}

// Consolidate implements Consolidator.
func (NoConsolidator) Consolidate(ExpertPool, []int, float64, float64, map[int]int) (map[int]int, error) {
	return nil, nil
}
