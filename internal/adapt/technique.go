package adapt

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/federation"
	"repro/internal/fl"
)

// Budget is the shared training budget every technique is constructed
// with, so cross-technique comparisons stay matched (§6).
type Budget struct {
	// BootstrapRounds is the number of FL rounds in window 0.
	BootstrapRounds int
	// RoundsPerWindow is the number of FL rounds in each later window.
	RoundsPerWindow int
	// ParticipantsPerRound is the per-cohort sample size per round.
	ParticipantsPerRound int
	// Train is the local-training configuration sent to parties.
	Train fl.TrainConfig
}

// Validate reports whether the budget is usable.
func (b Budget) Validate() error {
	switch {
	case b.BootstrapRounds <= 0 || b.RoundsPerWindow <= 0:
		return fmt.Errorf("adapt: rounds must be positive (bootstrap=%d window=%d)", b.BootstrapRounds, b.RoundsPerWindow)
	case b.ParticipantsPerRound <= 0:
		return fmt.Errorf("adapt: participants per round must be positive, got %d", b.ParticipantsPerRound)
	}
	return b.Train.Validate()
}

// TechniqueFactory constructs one continual-FL technique. Policied
// techniques receive the adaptation policy to run (nil resolves to the
// default); policy-free techniques (the single-pipeline baselines) ignore
// the policy argument, and NewTechnique rejects a non-default policy name
// for them up front.
type TechniqueFactory struct {
	Name        string
	Description string
	// Policied reports whether the technique runs an adaptation policy
	// (and therefore participates in -policy sweeps).
	Policied bool
	New      func(b Budget, policy *Policy, seed uint64) (federation.Technique, error)
}

var (
	techniqueMu    sync.RWMutex
	techniques     = make(map[string]TechniqueFactory)
	techniqueOrder []string
)

// RegisterTechnique adds a technique factory to the registry (normally
// from internal/adapt/catalog's init). Empty or duplicate names panic:
// registration is init-time wiring and a collision is a programmer error.
func RegisterTechnique(f TechniqueFactory) {
	techniqueMu.Lock()
	defer techniqueMu.Unlock()
	if f.Name == "" || f.New == nil {
		panic("adapt: RegisterTechnique needs a name and a constructor")
	}
	if _, dup := techniques[f.Name]; dup {
		panic(fmt.Sprintf("adapt: technique %q registered twice", f.Name))
	}
	techniques[f.Name] = f
	techniqueOrder = append(techniqueOrder, f.Name)
}

// TechniqueNames lists the registered techniques in registration order
// (the catalog registers the paper's comparison order: shiftex first, then
// the baselines).
func TechniqueNames() []string {
	techniqueMu.RLock()
	defer techniqueMu.RUnlock()
	return append([]string(nil), techniqueOrder...)
}

// Technique resolves a registered factory by name. Unknown names error
// with the live registry listing — the one "unknown technique" message
// every CLI and the experiment grid share.
func Technique(name string) (TechniqueFactory, error) {
	techniqueMu.RLock()
	f, ok := techniques[name]
	techniqueMu.RUnlock()
	if !ok {
		return TechniqueFactory{}, fmt.Errorf("adapt: unknown technique %q (registered: %s)", name, strings.Join(TechniqueNames(), ", "))
	}
	return f, nil
}

// NewTechnique constructs a registered technique under the given budget,
// policy name ("" = default for policied techniques), and seed.
func NewTechnique(name string, b Budget, policyName string, seed uint64) (federation.Technique, error) {
	f, err := Technique(name)
	if err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	var pol *Policy
	if f.Policied {
		if pol, err = NewPolicy(policyName); err != nil {
			return nil, err
		}
	} else if policyName != "" && policyName != DefaultPolicyName {
		return nil, fmt.Errorf("adapt: technique %q is policy-free (cannot run policy %q); policied techniques: %s",
			name, policyName, strings.Join(PoliciedTechniqueNames(), ", "))
	}
	return f.New(b, pol, seed)
}

// PoliciedTechniqueNames lists the registered techniques that run an
// adaptation policy.
func PoliciedTechniqueNames() []string {
	techniqueMu.RLock()
	defer techniqueMu.RUnlock()
	var out []string
	for _, name := range techniqueOrder {
		if techniques[name].Policied {
			out = append(out, name)
		}
	}
	return out
}
