package adapt

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// PolicyVersion is the version of the stage contracts a Policy bundles.
// It is bumped whenever a stage interface changes incompatibly, and is
// recorded on every constructed Policy so long-lived state (checkpoints)
// can name the contract it was produced under.
const PolicyVersion = 1

// DefaultPolicyName is the policy every pre-policy call site resolves to;
// it reproduces the paper's Algorithm 2 exactly.
const DefaultPolicyName = "default"

// Policy bundles one implementation of every pipeline stage. A Policy is
// immutable after construction and safe to share across aggregators.
type Policy struct {
	// Name is the registry name the policy was constructed under.
	Name string
	// Version is the stage-contract version (PolicyVersion at build).
	Version int

	Detector     ShiftDetector
	Calibrator   Calibrator
	Solver       AssignmentSolver
	Planner      TrainingPlanner
	Consolidator Consolidator
}

// Validate reports whether the policy is complete: every stage present and
// the name non-empty. A policy from NewPolicy always validates; hand-built
// stage sets go through this before driving a pipeline.
func (p *Policy) Validate() error {
	switch {
	case p == nil:
		return errors.New("adapt: nil policy")
	case p.Name == "":
		return errors.New("adapt: policy has no name")
	case p.Detector == nil:
		return fmt.Errorf("adapt: policy %q has no ShiftDetector", p.Name)
	case p.Calibrator == nil:
		return fmt.Errorf("adapt: policy %q has no Calibrator", p.Name)
	case p.Solver == nil:
		return fmt.Errorf("adapt: policy %q has no AssignmentSolver", p.Name)
	case p.Planner == nil:
		return fmt.Errorf("adapt: policy %q has no TrainingPlanner", p.Name)
	case p.Consolidator == nil:
		return fmt.Errorf("adapt: policy %q has no Consolidator", p.Name)
	}
	return nil
}

// PolicyFactory constructs one named policy.
type PolicyFactory struct {
	Name        string
	Description string
	New         func() (*Policy, error)
}

var (
	policyMu    sync.RWMutex
	policies    = make(map[string]PolicyFactory)
	policyOrder []string
)

// RegisterPolicy adds a policy factory to the registry. Registering an
// empty or duplicate name panics: registration happens at init time and a
// collision is a programmer error.
func RegisterPolicy(f PolicyFactory) {
	policyMu.Lock()
	defer policyMu.Unlock()
	if f.Name == "" || f.New == nil {
		panic("adapt: RegisterPolicy needs a name and a constructor")
	}
	if _, dup := policies[f.Name]; dup {
		panic(fmt.Sprintf("adapt: policy %q registered twice", f.Name))
	}
	policies[f.Name] = f
	policyOrder = append(policyOrder, f.Name)
}

// PolicyNames lists the registered policies in registration order.
func PolicyNames() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	return append([]string(nil), policyOrder...)
}

// PolicyDescriptions returns "name — description" lines in registration
// order, for CLI help text.
func PolicyDescriptions() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	out := make([]string, 0, len(policyOrder))
	for _, name := range policyOrder {
		out = append(out, fmt.Sprintf("%s — %s", name, policies[name].Description))
	}
	return out
}

// NewPolicy constructs a registered policy by name ("" resolves to
// DefaultPolicyName). Unknown names error with the live registry listing,
// so every CLI and config surface reports the same vocabulary.
func NewPolicy(name string) (*Policy, error) {
	if name == "" {
		name = DefaultPolicyName
	}
	policyMu.RLock()
	f, ok := policies[name]
	policyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("adapt: unknown policy %q (registered: %s)", name, strings.Join(PolicyNames(), ", "))
	}
	built, err := f.New()
	if err != nil {
		return nil, fmt.Errorf("adapt: build policy %q: %w", name, err)
	}
	if built == nil {
		return nil, fmt.Errorf("adapt: policy factory %q returned nil", name)
	}
	// Stamp name and version on a copy: a factory may legitimately return
	// a shared value (policies are documented immutable), so the registry
	// never writes into factory-owned storage.
	p := *built
	p.Name = f.Name
	if p.Version == 0 {
		p.Version = PolicyVersion
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// DefaultPolicy returns the default policy (never fails: the default is
// registered by this package).
func DefaultPolicy() *Policy {
	p, err := NewPolicy(DefaultPolicyName)
	if err != nil {
		panic(err) // unreachable: registered below
	}
	return p
}

// defaultStages is the Algorithm-2 stage set shared by the built-in
// policies; each variant swaps exactly one stage.
func defaultStages() *Policy {
	return &Policy{
		Detector:     ThresholdDetector{},
		Calibrator:   BootstrapCalibrator{},
		Solver:       GreedyAssignment{},
		Planner:      FLIPSPlanner{},
		Consolidator: SimilarityConsolidator{},
	}
}

func init() {
	RegisterPolicy(PolicyFactory{
		Name:        DefaultPolicyName,
		Description: "the paper's Algorithm 2: threshold detection, greedy Eq. 2 assignment, FLIPS selection, similarity consolidation",
		New:         func() (*Policy, error) { return defaultStages(), nil },
	})
	RegisterPolicy(PolicyFactory{
		Name:        "exact-assign",
		Description: "default pipeline with the exact facility-location solver (optimal Eq. 2 on instances of <=7 clusters, greedy fallback above)",
		New: func() (*Policy, error) {
			p := defaultStages()
			p.Solver = ExactAssignment{}
			return p, nil
		},
	})
	RegisterPolicy(PolicyFactory{
		Name:        "cov-detect",
		Description: "default pipeline with covariate-threshold-only detection (label shifts never trigger reassignment)",
		New: func() (*Policy, error) {
			p := defaultStages()
			p.Detector = CovariateThresholdDetector{}
			return p, nil
		},
	})
	RegisterPolicy(PolicyFactory{
		Name:        "uniform-select",
		Description: "default pipeline with uniform participant selection instead of FLIPS label clustering",
		New: func() (*Policy, error) {
			p := defaultStages()
			p.Planner = UniformPlanner{}
			return p, nil
		},
	})
	RegisterPolicy(PolicyFactory{
		Name:        "no-consolidate",
		Description: "default pipeline that never merges experts (the pool only grows)",
		New: func() (*Policy, error) {
			p := defaultStages()
			p.Consolidator = NoConsolidator{}
			return p, nil
		},
	})
}
