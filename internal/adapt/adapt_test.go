package adapt_test

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/detect"
	"repro/internal/facility"
	"repro/internal/fl"
	"repro/internal/stats"
	"repro/internal/tensor"

	// Populate the technique registry with the standard set.
	_ "repro/internal/adapt/catalog"
)

func flTrainConfig() fl.TrainConfig {
	return fl.TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.02, Momentum: 0.9}
}

func TestPolicyRegistry(t *testing.T) {
	names := adapt.PolicyNames()
	if len(names) < 2 {
		t.Fatalf("need >=2 registered policies, got %v", names)
	}
	if names[0] != adapt.DefaultPolicyName {
		t.Fatalf("default policy must register first, got %v", names)
	}
	for _, name := range names {
		p, err := adapt.NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("policy %q built with name %q", name, p.Name)
		}
		if p.Version != adapt.PolicyVersion {
			t.Fatalf("policy %q version %d, want %d", name, p.Version, adapt.PolicyVersion)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("policy %q invalid: %v", name, err)
		}
	}

	// "" resolves to the default.
	p, err := adapt.NewPolicy("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != adapt.DefaultPolicyName {
		t.Fatalf("empty name resolved to %q", p.Name)
	}

	// Unknown names carry the live registry listing.
	_, err = adapt.NewPolicy("nope")
	if err == nil {
		t.Fatal("unknown policy should error")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered policy %q", err, name)
		}
	}

	if len(adapt.PolicyDescriptions()) != len(names) {
		t.Fatal("descriptions out of sync with names")
	}
}

func TestPolicyValidateRejectsMissingStage(t *testing.T) {
	p, err := adapt.NewPolicy("")
	if err != nil {
		t.Fatal(err)
	}
	p.Solver = nil
	if err := p.Validate(); err == nil {
		t.Fatal("policy without a solver should not validate")
	}
	var nilPolicy *adapt.Policy
	if err := nilPolicy.Validate(); err == nil {
		t.Fatal("nil policy should not validate")
	}
}

func TestDetectorVariants(t *testing.T) {
	th := stats.Thresholds{DeltaCov: 0.5, DeltaLabel: 0.5}
	both := detect.PartyStats{MMD: 0.9, JSD: 0.9}
	labelOnly := detect.PartyStats{MMD: 0.1, JSD: 0.9}

	cov, lab := adapt.ThresholdDetector{}.Detect(both, th)
	if !cov || !lab {
		t.Fatalf("default detector: cov=%v lab=%v, want both", cov, lab)
	}
	cov, lab = adapt.ThresholdDetector{}.Detect(labelOnly, th)
	if cov || !lab {
		t.Fatalf("default detector on label-only shift: cov=%v lab=%v", cov, lab)
	}

	cov, lab = adapt.CovariateThresholdDetector{}.Detect(both, th)
	if !cov || lab {
		t.Fatalf("cov-only detector: cov=%v lab=%v, want cov only", cov, lab)
	}
	cov, lab = adapt.CovariateThresholdDetector{}.Detect(labelOnly, th)
	if cov || lab {
		t.Fatalf("cov-only detector must ignore label shift, got cov=%v lab=%v", cov, lab)
	}
}

// randomInstance builds a small facility instance with well-separated
// client groups so both solvers face non-trivial reuse-vs-create choices.
func randomInstance(rng *tensor.RNG, clients, existing int) *facility.Instance {
	in := &facility.Instance{
		NewCost:     0.4,
		LabelWeight: 0.3,
		Epsilon:     2.0,
	}
	for i := 0; i < clients; i++ {
		center := float64(i % 3)
		in.Clients = append(in.Clients, facility.Client{
			ID:        i,
			Embedding: rng.NormVec(6, center, 0.2),
			LabelHist: stats.Uniform(4),
			Weight:    1 + float64(i%2),
		})
	}
	for j := 0; j < existing; j++ {
		in.Existing = append(in.Existing, facility.Facility{
			ID:        j,
			Signature: rng.NormVec(6, float64(j%3), 0.2),
		})
	}
	return in
}

// TestExactAssignmentParityOnSmallInstances is the solver-level half of
// the exact-solver parity check: on every instance the exact stage can
// enumerate, its objective must match facility.SolveExact and never exceed
// the greedy stage's.
func TestExactAssignmentParityOnSmallInstances(t *testing.T) {
	rng := tensor.NewRNG(400)
	for trial := 0; trial < 30; trial++ {
		clients := 2 + rng.Intn(4)
		existing := rng.Intn(3)
		in := randomInstance(rng, clients, existing)

		exactStage, err := adapt.ExactAssignment{}.Solve(in)
		if err != nil {
			t.Fatalf("trial %d: exact stage: %v", trial, err)
		}
		ref, err := facility.SolveExact(in)
		if err != nil {
			t.Fatalf("trial %d: reference exact: %v", trial, err)
		}
		if !reflect.DeepEqual(exactStage.Slots, ref.Slots) || exactStage.Cost != ref.Cost {
			t.Fatalf("trial %d: exact stage diverges from SolveExact: %+v vs %+v", trial, exactStage, ref)
		}

		greedy, err := adapt.GreedyAssignment{}.Solve(in)
		if err != nil {
			t.Fatalf("trial %d: greedy stage: %v", trial, err)
		}
		if exactStage.Cost > greedy.Cost+1e-12 {
			t.Fatalf("trial %d: exact cost %g exceeds greedy cost %g", trial, exactStage.Cost, greedy.Cost)
		}
		if math.IsInf(exactStage.Cost, 1) || math.IsInf(greedy.Cost, 1) {
			t.Fatalf("trial %d: infeasible solution returned", trial)
		}
	}
}

func TestExactAssignmentOversizedInstances(t *testing.T) {
	rng := tensor.NewRNG(401)
	in := randomInstance(rng, facility.MaxExactClients+2, 1)

	// Default: fall back to greedy, bit-identical to the greedy stage.
	fb, err := adapt.ExactAssignment{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := adapt.GreedyAssignment{}.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fb.Slots, greedy.Slots) {
		t.Fatalf("oversized fallback diverges from greedy: %v vs %v", fb.Slots, greedy.Slots)
	}

	// NoFallback: explicit error.
	if _, err := (adapt.ExactAssignment{NoFallback: true}).Solve(in); err == nil {
		t.Fatal("oversized instance with NoFallback should error")
	}
}

func TestPlannersDrawDeterministically(t *testing.T) {
	cohorts := map[int][]int{0: {0, 1, 2, 3}, 1: {4, 5}}
	hists := make([]stats.Histogram, 6)
	for i := range hists {
		h := make(stats.Histogram, 4)
		h[i%4] = 1
		hists[i] = h
	}

	pick := func(planner adapt.TrainingPlanner, seed uint64) [][]int {
		rng := tensor.NewRNG(seed)
		sel, err := planner.Plan(cohorts, hists, rng)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]int
		for round := 0; round < 3; round++ {
			for _, id := range []int{0, 1} {
				members := cohorts[id]
				s, err := sel.Select(id, members, 3, rng)
				if err != nil {
					t.Fatal(err)
				}
				if len(s) == 0 || len(s) > len(members) {
					t.Fatalf("selection size %d for cohort %v", len(s), members)
				}
				for _, p := range s {
					found := false
					for _, m := range members {
						if m == p {
							found = true
						}
					}
					if !found {
						t.Fatalf("selected %d outside cohort %v", p, members)
					}
				}
				out = append(out, s)
			}
		}
		return out
	}

	for _, planner := range []adapt.TrainingPlanner{adapt.FLIPSPlanner{}, adapt.UniformPlanner{}} {
		a := pick(planner, 77)
		b := pick(planner, 77)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%T: same seed produced different selections:\n%v\n%v", planner, a, b)
		}
	}
}

func TestBudgetValidate(t *testing.T) {
	good := adapt.Budget{BootstrapRounds: 5, RoundsPerWindow: 5, ParticipantsPerRound: 4,
		Train: flTrainConfig()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.RoundsPerWindow = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero rounds should fail")
	}
	bad = good
	bad.ParticipantsPerRound = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero participants should fail")
	}
}

func TestTechniqueRegistry(t *testing.T) {
	want := []string{"shiftex", "fedprox", "oort", "fielding", "feddrift"}
	if got := adapt.TechniqueNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("technique registration order %v, want %v", got, want)
	}
	if got := adapt.PoliciedTechniqueNames(); !reflect.DeepEqual(got, []string{"shiftex"}) {
		t.Fatalf("policied techniques %v, want [shiftex]", got)
	}

	_, err := adapt.Technique("nope")
	if err == nil {
		t.Fatal("unknown technique should error")
	}
	for _, name := range want {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered technique %q", err, name)
		}
	}

	b := adapt.Budget{BootstrapRounds: 2, RoundsPerWindow: 2, ParticipantsPerRound: 2, Train: flTrainConfig()}

	// Every registered technique constructs under its default policy.
	for _, name := range want {
		tech, err := adapt.NewTechnique(name, b, "", 1)
		if err != nil {
			t.Fatalf("NewTechnique(%q): %v", name, err)
		}
		if tech.Name() != name {
			t.Fatalf("technique %q reports name %q", name, tech.Name())
		}
	}

	// Policied techniques accept registered policies, reject unknown ones.
	if _, err := adapt.NewTechnique("shiftex", b, "exact-assign", 1); err != nil {
		t.Fatalf("shiftex under exact-assign: %v", err)
	}
	if _, err := adapt.NewTechnique("shiftex", b, "nope", 1); err == nil {
		t.Fatal("unknown policy should error")
	}

	// Policy-free techniques reject a non-default policy up front.
	if _, err := adapt.NewTechnique("fedprox", b, "exact-assign", 1); err == nil {
		t.Fatal("policy on a policy-free technique should error")
	}
	if _, err := adapt.NewTechnique("fedprox", b, "default", 1); err != nil {
		t.Fatalf("default policy name on a policy-free technique should pass: %v", err)
	}
}
