package httpapi

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// API assembles a daemon's versioned HTTP surface. Handlers register under
// /v1 with Handle; pre-versioning paths stay reachable through Deprecated,
// which answers with a Deprecation header and a successor-version Link so
// clients can migrate. Handler() serves the result, answering unknown paths
// with a 404 that lists the live /v1 surface.
type API struct {
	mux       *http.ServeMux
	routes    []string // live v1 surface, "METHOD /v1/path" or "/v1/path"
	finalized bool
}

// NewAPI returns an empty route table.
func NewAPI() *API { return &API{mux: http.NewServeMux()} }

// Handle registers a live /v1 route. pattern is a net/http ServeMux pattern
// whose path begins with /v1 (e.g. "POST /v1/predict", "GET /v1/models/{name}",
// or "/v1/metrics" for any method); it panics otherwise — a route outside
// /v1 belongs in Deprecated.
func (a *API) Handle(pattern string, h http.HandlerFunc) {
	if !strings.Contains(pattern, V1Prefix+"/") && !strings.HasSuffix(pattern, V1Prefix) {
		panic(fmt.Sprintf("httpapi: route %q is not under %s", pattern, V1Prefix))
	}
	a.mux.HandleFunc(pattern, h)
	a.routes = append(a.routes, pattern)
}

// Deprecated keeps a pre-versioning path alive as an alias for a /v1 route.
// Responses carry `Deprecation: true` and a Link header naming the successor
// so operators notice before the alias is retired.
func (a *API) Deprecated(oldPattern, successorPath string, h http.HandlerFunc) {
	a.mux.HandleFunc(oldPattern, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successorPath))
		h(w, r)
	})
}

// Routes returns the live /v1 surface, sorted by path for stable output.
func (a *API) Routes() []string {
	out := append([]string(nil), a.routes...)
	sort.Strings(out)
	return out
}

// Handler returns the assembled surface. Paths matched by no registered
// route answer 404 with the live /v1 listing, so a client probing a removed
// or misspelled endpoint learns the current vocabulary.
func (a *API) Handler() http.Handler {
	if !a.finalized {
		a.finalized = true
		routes := a.Routes()
		a.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			WriteJSON(w, http.StatusNotFound, ErrorBody{
				Error:  fmt.Sprintf("unknown route %s %s; live surface is versioned under %s", r.Method, r.URL.Path, V1Prefix),
				Routes: routes,
			})
		})
	}
	return a.mux
}
