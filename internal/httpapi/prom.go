package httpapi

import (
	"fmt"
	"net/http"
	"runtime"
	"time"
)

// Version identifies the build in shiftex_build_info. There is no
// release pipeline stamping ldflags yet, so it tracks the PR sequence
// by hand.
const Version = "0.7.0"

// Metric is one exposition family: a name, HELP/TYPE metadata, and its
// samples in insertion order.
type Metric struct {
	Name    string   `json:"name"` // full name, prefix included
	Help    string   `json:"help"`
	Type    string   `json:"type"` // "counter" | "gauge"
	Samples []Sample `json:"samples"`
}

// Sample is one labeled value. Labels is the literal Prometheus label set,
// e.g. `outcome="ok"`, empty for the unlabeled sample. Suffix, when set, is
// appended to the family name in the exposition — how histogram families
// render their _bucket/_sum/_count series under one TYPE header.
type Sample struct {
	Suffix   string    `json:"suffix,omitempty"`
	Labels   string    `json:"labels,omitempty"`
	Value    float64   `json:"value"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Exemplar ties a sample to one concrete trace — OpenMetrics-style,
// rendered as a `# {trace_id="..."} value` suffix in the text
// exposition. The serving tier attaches the slowest observed request
// to its latency quantiles so "p99 regressed" comes with a trace ID
// to pull from /v1/debug/traces.
type Exemplar struct {
	TraceID string  `json:"traceId"`
	Value   float64 `json:"value"`
}

// MetricsPayload is the ?format=json rendering of one daemon's /v1/metrics:
// the same families and samples as the Prometheus text, in the same order,
// under the shared schema envelope.
type MetricsPayload struct {
	SchemaVersion int      `json:"schemaVersion"`
	Daemon        string   `json:"daemon"`
	Metrics       []Metric `json:"metrics"`
}

// MetricsBuilder accumulates one daemon's metric families and renders them
// as either Prometheus text exposition or the shared JSON schema — the one
// encoder every daemon's /metrics goes through.
type MetricsBuilder struct {
	daemon   string
	families []Metric
}

// NewMetricsBuilder starts an exposition for the named daemon.
func NewMetricsBuilder(daemon string) *MetricsBuilder {
	return &MetricsBuilder{daemon: daemon}
}

// Counter adds a counter family with one unlabeled sample.
func (b *MetricsBuilder) Counter(name, help string, value float64) *MetricsBuilder {
	return b.add(name, help, "counter", Sample{Value: value})
}

// Gauge adds a gauge family with one unlabeled sample.
func (b *MetricsBuilder) Gauge(name, help string, value float64) *MetricsBuilder {
	return b.add(name, help, "gauge", Sample{Value: value})
}

// CounterVec adds a counter family with labeled samples.
func (b *MetricsBuilder) CounterVec(name, help string, samples ...Sample) *MetricsBuilder {
	return b.add(name, help, "counter", samples...)
}

// GaugeVec adds a gauge family with labeled samples.
func (b *MetricsBuilder) GaugeVec(name, help string, samples ...Sample) *MetricsBuilder {
	return b.add(name, help, "gauge", samples...)
}

// Histogram adds a Prometheus histogram family. counts are per-bucket
// observation counts with one entry per bound plus a trailing +Inf bucket
// (len(counts) == len(bounds)+1); the method accumulates them into the
// cumulative le-labeled _bucket series and appends the _sum and _count
// series, so callers keep plain per-bucket counters.
func (b *MetricsBuilder) Histogram(name, help string, bounds []float64, counts []uint64, sum float64) *MetricsBuilder {
	samples := make([]Sample, 0, len(counts)+2)
	var cum uint64
	for i, c := range counts {
		cum += c
		label := `le="+Inf"`
		if i < len(bounds) {
			label = fmt.Sprintf(`le="%g"`, bounds[i])
		}
		samples = append(samples, Sample{Suffix: "_bucket", Labels: label, Value: float64(cum)})
	}
	samples = append(samples,
		Sample{Suffix: "_sum", Value: sum},
		Sample{Suffix: "_count", Value: float64(cum)})
	return b.add(name, help, "histogram", samples...)
}

func (b *MetricsBuilder) add(name, help, typ string, samples ...Sample) *MetricsBuilder {
	b.families = append(b.families, Metric{Name: name, Help: help, Type: typ, Samples: samples})
	return b
}

// Runtime appends the process-level families every daemon exposes
// uniformly: shiftex_build_info (value always 1, metadata in labels),
// uptime, live goroutine count, and cumulative GC pause time. One
// helper, four daemons — the families stay structurally identical.
func (b *MetricsBuilder) Runtime(start time.Time) *MetricsBuilder {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return b.
		GaugeVec("shiftex_build_info",
			"Build metadata for this daemon; the value is always 1.",
			Sample{
				Labels: fmt.Sprintf("version=%q,goversion=%q", Version, runtime.Version()),
				Value:  1,
			}).
		Gauge("shiftex_process_uptime_seconds", "Seconds since the daemon started.",
			time.Since(start).Seconds()).
		Gauge("shiftex_goroutines", "Live goroutines in this process.",
			float64(runtime.NumGoroutine())).
		Counter("shiftex_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.",
			float64(ms.PauseTotalNs)/1e9)
}

// Prom renders the Prometheus text exposition (version 0.0.4).
func (b *MetricsBuilder) Prom() []byte {
	var out []byte
	for _, f := range b.families {
		out = fmt.Appendf(out, "# HELP %s %s\n# TYPE %s %s\n", f.Name, f.Help, f.Name, f.Type)
		for _, s := range f.Samples {
			if s.Labels == "" {
				out = fmt.Appendf(out, "%s%s %g", f.Name, s.Suffix, s.Value)
			} else {
				out = fmt.Appendf(out, "%s%s{%s} %g", f.Name, s.Suffix, s.Labels, s.Value)
			}
			if s.Exemplar != nil {
				out = fmt.Appendf(out, " # {trace_id=%q} %g", s.Exemplar.TraceID, s.Exemplar.Value)
			}
			out = append(out, '\n')
		}
	}
	return out
}

// Payload renders the shared JSON form.
func (b *MetricsBuilder) Payload() MetricsPayload {
	return MetricsPayload{SchemaVersion: SchemaVersion, Daemon: b.daemon, Metrics: b.families}
}

// ServeMetrics answers one /metrics request from the builder: Prometheus
// text by default, the shared JSON schema when ?format=json is asked for.
// Every daemon's metrics handler ends here, which is what keeps the three
// expositions structurally identical.
func (b *MetricsBuilder) ServeMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		WriteJSON(w, http.StatusOK, b.Payload())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write(b.Prom())
}
