// Package httpapi is the versioned HTTP surface shared by every ShiftEx
// daemon (shiftex-aggregator, shiftex-serve, shiftex-gateway). It owns three
// things so the daemons cannot drift apart:
//
//   - the wire schema: one struct per endpoint payload (PredictRequest,
//     PredictResponse, SnapshotSummary, ModelInfo, the State envelope), each
//     stamped with SchemaVersion, so operators scrape all daemons
//     identically and a gateway can proxy a replica's response verbatim;
//   - the /v1 route table: API registers handlers under /v1, keeps the
//     pre-versioning routes alive as deprecated aliases (Deprecation +
//     successor Link headers), and answers unknown paths with a 404 that
//     lists the live /v1 surface;
//   - the metrics encoder: MetricsBuilder renders one metric set as both
//     Prometheus text exposition and the JSON schema (?format=json).
//
// The package depends only on the tensor wire types — service, serve, and
// gateway all import it, never the other way around.
package httpapi

import (
	"encoding/json"
	"net/http"

	"repro/internal/tensor"
)

// SchemaVersion is the version of the shared daemon HTTP schema: the /v1
// route shapes and the JSON payload layouts below. It is bumped whenever
// either changes incompatibly, and every envelope payload carries it.
const SchemaVersion = 1

// V1Prefix is the path prefix of the current API version.
const V1Prefix = "/v1"

// DefaultModel is the model name a single-model daemon serves under when
// none is configured, and the name model-less predict requests resolve to.
const DefaultModel = "default"

// WriteJSON writes v as indented JSON with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ErrorBody is the uniform error payload. Models/Routes carry the live
// vocabulary when the error is "unknown name" — the same convention the
// adaptation-policy registry uses on the CLI.
type ErrorBody struct {
	Error  string   `json:"error"`
	Models []string `json:"models,omitempty"` // live model names on unknown-model errors
	Routes []string `json:"routes,omitempty"` // live /v1 surface on unknown-route errors
}

// WriteError writes the uniform error payload.
func WriteError(w http.ResponseWriter, code int, msg string) {
	WriteJSON(w, code, ErrorBody{Error: msg})
}

// PredictRequest is the POST /v1/predict wire format. Model is optional: a
// single-model daemon rejects a mismatching name with 404, the gateway uses
// it to pick the target model ("" resolves to DefaultModel on both).
type PredictRequest struct {
	X     tensor.Vector `json:"x"`
	Model string        `json:"model,omitempty"`
}

// PredictResponse is the POST /v1/predict reply. Serve replicas leave
// Replica and GatewayCached zero; the gateway fills Replica with the serving
// replica's address and sets GatewayCached when the fleet-wide session cache
// answered without touching any replica. Cached reports the replica-local
// route cache.
type PredictResponse struct {
	Class    int    `json:"class"`
	Expert   int    `json:"expert"`
	Matched  bool   `json:"matched"`
	Cached   bool   `json:"cached"`
	Snapshot int    `json:"snapshot"`
	Model    string `json:"model"`
	// Gateway-only fields.
	Replica       string `json:"replica,omitempty"`
	GatewayCached bool   `json:"gatewayCached,omitempty"`
}

// SwapRequest is the POST /v1/snapshot wire format: hot-swap the serving
// snapshot to the given checkpoint path. Model is optional, as in
// PredictRequest; on the gateway the swap fans out to the model's replicas.
type SwapRequest struct {
	Path  string `json:"path"`
	Model string `json:"model,omitempty"`
}

// SnapshotSummary is the GET /v1/snapshot payload (and the POST reply): the
// serving snapshot's identity and routing parameters. The gateway proxies a
// healthy replica's summary, so single-model deployments see identical
// bodies from both tiers.
type SnapshotSummary struct {
	SchemaVersion int    `json:"schemaVersion"`
	Model         string `json:"model"`
	Version       int    `json:"version"`
	Experts       int    `json:"experts"`
	ExpertIDs     []int  `json:"expertIds"`
	Fallback      int    `json:"fallback"`
	// Epsilon is the calibrated reuse threshold from training;
	// RouteEpsilon is the effective match radius serving actually compares
	// against (Epsilon × route-eps-scale) — keeping both visible is what
	// makes routing numbers debuggable.
	Epsilon      float64 `json:"epsilon"`
	RouteEpsilon float64 `json:"routeEpsilon"`
	WindowsDone  int     `json:"windowsDone"`
	InputDim     int     `json:"inputDim"`
	Policy       string  `json:"policy,omitempty"`
}

// ReplicaInfo is one serve replica's standing inside a gateway model entry.
type ReplicaInfo struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Snapshot int    `json:"snapshot"` // last snapshot version observed by probing
	Failures int    `json:"failures"` // consecutive call/probe failures
	// DriftScore is the replica's latest calibrated drift score scraped
	// from /v1/debug/drift (score ≥ threshold means the replica's live
	// traffic has left its training distribution). DriftSeen distinguishes
	// a genuine 0 score from a replica with no monitor or no scrape yet.
	DriftScore float64 `json:"driftScore,omitempty"`
	DriftSeen  bool    `json:"driftSeen,omitempty"`
	// AdaptPhase is the replica's continual-adaptation phase scraped from
	// /v1/debug/adapt ("" when no controller is attached or no scrape has
	// landed yet — AdaptSeen distinguishes the two); AdaptWindows is its
	// completed-window count.
	AdaptPhase   string `json:"adaptPhase,omitempty"`
	AdaptWindows uint64 `json:"adaptWindows,omitempty"`
	AdaptSeen    bool   `json:"adaptSeen,omitempty"`
}

// ModelInfo is the GET /v1/models/{name} payload. A serve replica reports
// itself (Replicas empty); the gateway adds the replica fleet view.
type ModelInfo struct {
	SchemaVersion int     `json:"schemaVersion"`
	Name          string  `json:"name"`
	Snapshot      int     `json:"snapshot"`
	Experts       int     `json:"experts"`
	Epsilon       float64 `json:"epsilon"`
	RouteEpsilon  float64 `json:"routeEpsilon"`
	WindowsDone   int     `json:"windowsDone"`
	InputDim      int     `json:"inputDim"`
	Policy        string  `json:"policy,omitempty"`
	// Gateway-only fields.
	Replicas []ReplicaInfo `json:"replicas,omitempty"`
}

// State is the shared /v1/state envelope: one struct scraped identically
// from every daemon, with exactly one daemon-specific section populated.
type State struct {
	SchemaVersion int     `json:"schemaVersion"`
	Daemon        string  `json:"daemon"` // "aggregator" | "serve" | "gateway"
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`

	Aggregator *AggregatorState `json:"aggregator,omitempty"`
	Serve      *ServeState      `json:"serve,omitempty"`
	Gateway    *GatewayState    `json:"gateway,omitempty"`
}

// AggregatorState is the aggregator runtime's /v1/state section.
type AggregatorState struct {
	Phase        string      `json:"phase"`
	Window       int         `json:"window"`
	WindowsDone  int         `json:"windowsDone"`
	WindowsTotal int         `json:"windowsTotal"`
	Parties      int         `json:"parties"`
	Policy       string      `json:"policy"`
	Experts      []int       `json:"experts"`
	Distribution map[int]int `json:"distribution"`
	Assignments  map[int]int `json:"assignments"`
	Epsilon      float64     `json:"epsilon"`
	Thresholds   any         `json:"thresholds,omitempty"`
	LastTrace    []float64   `json:"lastTrace,omitempty"`
}

// ServeState is the serving replica's /v1/state section.
type ServeState struct {
	Model        string  `json:"model"`
	Snapshot     int     `json:"snapshot"`
	Experts      int     `json:"experts"`
	Epsilon      float64 `json:"epsilon"`
	RouteEpsilon float64 `json:"routeEpsilon"`
	WindowsDone  int     `json:"windowsDone"`
	Requests     uint64  `json:"requests"`
	Inflight     int64   `json:"inflight"`
	// Continual is the attached adaptation controller's state machine; nil
	// when the replica serves a frozen snapshot (no controller).
	Continual *ContinualState `json:"continual,omitempty"`
}

// ContinualState is the adaptation controller's state-machine view: the
// /v1/state continual section, the payload of /v1/debug/adapt, and the
// source of the shiftex_continual_* metric families.
type ContinualState struct {
	// Phase is "idle", "adapting", "validating", or "cooldown".
	Phase           string `json:"phase"`
	SnapshotVersion int    `json:"snapshotVersion"`
	// ConsecutiveCrossed counts crossed drift evaluations since the last
	// clean one; a window triggers when it reaches Hysteresis.
	ConsecutiveCrossed int     `json:"consecutiveCrossed"`
	Hysteresis         int     `json:"hysteresis"`
	CooldownSeconds    float64 `json:"cooldownSeconds"`
	// CooldownRemainingSeconds is > 0 only in the cooldown phase.
	CooldownRemainingSeconds float64 `json:"cooldownRemainingSeconds,omitempty"`
	// Triggers counts confirmed threshold crossings that started a window;
	// TriggersSuppressed counts crossings coalesced away because a window
	// was already in flight or cooldown was active.
	Triggers           uint64 `json:"triggers"`
	TriggersSuppressed uint64 `json:"triggersSuppressed"`
	// WindowsCompleted counts adaptation windows that passed validation and
	// swapped; WindowsRolledBack counts windows a stage failure rolled back;
	// WindowsRejected counts windows the validation gate refused to promote.
	WindowsCompleted  uint64            `json:"windowsCompleted"`
	WindowsRolledBack uint64            `json:"windowsRolledBack"`
	WindowsRejected   uint64            `json:"windowsRejected"`
	LastTrigger       *ContinualTrigger `json:"lastTrigger,omitempty"`
	LastWindow        *ContinualWindow  `json:"lastWindow,omitempty"`
}

// ContinualTrigger identifies the drift evaluation that last confirmed a
// threshold crossing and started an adaptation window.
type ContinualTrigger struct {
	Seq             int     `json:"seq"`
	Score           float64 `json:"score"`
	TeedAt          uint64  `json:"teedAt"`
	UnixNanos       int64   `json:"unixNanos"`
	SnapshotVersion int     `json:"snapshotVersion"`
}

// ContinualWindow summarizes the most recent adaptation window attempt.
type ContinualWindow struct {
	Window           int     `json:"window"`
	StartedUnixNanos int64   `json:"startedUnixNanos"`
	DurationMs       float64 `json:"durationMs"`
	ShiftedParties   int     `json:"shiftedParties"`
	NewExperts       int     `json:"newExperts"`
	Merged           int     `json:"merged"`
	ExpertsAfter     int     `json:"expertsAfter"`
	// Outcome is "swapped", "rejected" (validation gate refused promotion),
	// or "rolled-back" (a stage failed; the aggregator restored its
	// pre-window state and the serving snapshot was never touched).
	Outcome        string               `json:"outcome"`
	SwappedVersion int                  `json:"swappedVersion,omitempty"`
	Error          string               `json:"error,omitempty"`
	Validation     *ContinualValidation `json:"validation,omitempty"`
}

// ContinualValidation is the promotion gate's verdict: the candidate
// snapshot's routing quality on held-back live embeddings versus the
// currently serving snapshot's.
type ContinualValidation struct {
	Samples             int     `json:"samples"`
	BaselineMatched     float64 `json:"baselineMatched"`
	CandidateMatched    float64 `json:"candidateMatched"`
	BaselineMeanMargin  float64 `json:"baselineMeanMargin"`
	CandidateMeanMargin float64 `json:"candidateMeanMargin"`
	Passed              bool    `json:"passed"`
}

// ContinualDebugState is the GET /v1/debug/adapt payload. Enabled false (with
// State nil) means no controller is attached; the endpoint still answers 200
// so probes can distinguish "closed loop off" from "replica down".
type ContinualDebugState struct {
	SchemaVersion int             `json:"schemaVersion"`
	Model         string          `json:"model"`
	Enabled       bool            `json:"enabled"`
	State         *ContinualState `json:"state,omitempty"`
}

// GatewayModelState is one model's standing in the gateway's /v1/state.
type GatewayModelState struct {
	Name            string        `json:"name"`
	Snapshot        int           `json:"snapshot"`
	Replicas        []ReplicaInfo `json:"replicas"`
	HealthyReplicas int           `json:"healthyReplicas"`
	// VersionSkew reports that healthy replicas disagree on the snapshot
	// version they serve — a partial rollout or a failed broadcast swap;
	// affinity then decides which snapshot a client sees.
	VersionSkew bool `json:"versionSkew,omitempty"`
	// DriftMax / DriftMean aggregate the healthy replicas' scraped drift
	// scores into the fleet view (only replicas whose monitor has been
	// scraped count; both zero when none has).
	DriftMax  float64 `json:"driftMax,omitempty"`
	DriftMean float64 `json:"driftMean,omitempty"`
	// AdaptingReplicas counts healthy replicas whose controller is mid
	// window (adapting or validating); AdaptWindowsCompleted sums the
	// fleet's completed adaptation windows.
	AdaptingReplicas      int    `json:"adaptingReplicas,omitempty"`
	AdaptWindowsCompleted uint64 `json:"adaptWindowsCompleted,omitempty"`
	// Ring-affinity record of the last fleet shrink: of the keys tracked
	// when a replica left the ring, how many stayed with their original
	// owner. RetainedOfSurvivors counts only keys whose original owner is
	// still in the ring — the consistent-hashing guarantee under test.
	LastShrink *ShrinkStats `json:"lastShrink,omitempty"`
}

// ShrinkStats records key movement across one ring-membership shrink.
type ShrinkStats struct {
	Removed             string  `json:"removed"` // replica that left
	KeysTracked         int     `json:"keysTracked"`
	KeysMoved           int     `json:"keysMoved"`
	MovedFraction       float64 `json:"movedFraction"`
	RetainedOfSurvivors float64 `json:"retainedOfSurvivors"`
}

// GatewayState is the gateway's /v1/state section.
type GatewayState struct {
	Models        []GatewayModelState `json:"models"`
	Requests      uint64              `json:"requests"`
	Errors        uint64              `json:"errors"`
	Rejected      uint64              `json:"rejected"`
	SessionHits   uint64              `json:"sessionHits"`
	SessionMisses uint64              `json:"sessionMisses"`
	Failovers     uint64              `json:"failovers"`
	Evictions     uint64              `json:"evictions"`
	Readmissions  uint64              `json:"readmissions"`
	Middlewares   map[string][]string `json:"middlewares"` // route group -> chain
}
