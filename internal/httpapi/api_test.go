package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestAPIVersionedRoutesAndAliases(t *testing.T) {
	api := NewAPI()
	api.Handle("/v1/ping", func(w http.ResponseWriter, _ *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"pong": "v1"})
	})
	api.Deprecated("/ping", "/v1/ping", func(w http.ResponseWriter, _ *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"pong": "legacy"})
	})
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	// Live v1 route: no deprecation headers.
	resp, err := http.Get(ts.URL + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/ping = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v1/ping unexpectedly marked deprecated")
	}

	// Alias: still serves, but flagged with Deprecation + successor Link.
	resp, err = http.Get(ts.URL + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/ping = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("alias missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/ping") || !strings.Contains(link, "successor-version") {
		t.Errorf("alias Link header %q does not name the successor", link)
	}
}

func TestAPIUnknownRouteListsLiveSurface(t *testing.T) {
	api := NewAPI()
	api.Handle("/v1/predict", func(w http.ResponseWriter, _ *http.Request) {})
	api.Handle("/v1/models/{name}", func(w http.ResponseWriter, _ *http.Request) {})
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route = %d, want 404", resp.StatusCode)
	}
	var body ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Routes) != 2 || body.Routes[0] != "/v1/models/{name}" || body.Routes[1] != "/v1/predict" {
		t.Errorf("404 routes = %v, want sorted live surface", body.Routes)
	}
	if !strings.Contains(body.Error, "/v1") {
		t.Errorf("404 error %q does not point at /v1", body.Error)
	}
}

func TestAPIRejectsUnversionedHandle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Handle outside /v1 should panic")
		}
	}()
	NewAPI().Handle("/predict", func(http.ResponseWriter, *http.Request) {})
}

func TestMetricsBuilderPromAndJSONAgree(t *testing.T) {
	build := func() *MetricsBuilder {
		return NewMetricsBuilder("serve").
			Gauge("x_uptime_seconds", "Uptime.", 1.5).
			CounterVec("x_requests_total", "Requests.",
				Sample{Labels: `outcome="ok"`, Value: 3},
				Sample{Labels: `outcome="error"`, Value: 1})
	}
	text := string(build().Prom())
	for _, want := range []string{
		"# HELP x_uptime_seconds Uptime.",
		"# TYPE x_uptime_seconds gauge",
		"x_uptime_seconds 1.5",
		"# TYPE x_requests_total counter",
		`x_requests_total{outcome="ok"} 3`,
		`x_requests_total{outcome="error"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom text missing %q in:\n%s", want, text)
		}
	}

	p := build().Payload()
	if p.SchemaVersion != SchemaVersion || p.Daemon != "serve" {
		t.Errorf("payload envelope = %+v", p)
	}
	if len(p.Metrics) != 2 || p.Metrics[1].Samples[0].Labels != `outcome="ok"` {
		t.Errorf("payload families = %+v", p.Metrics)
	}

	// The HTTP switch: text by default, JSON on ?format=json.
	rec := httptest.NewRecorder()
	build().ServeMetrics(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Errorf("default content type = %q", got)
	}
	rec = httptest.NewRecorder()
	build().ServeMetrics(rec, httptest.NewRequest("GET", "/v1/metrics?format=json", nil))
	var payload MetricsPayload
	if err := json.NewDecoder(rec.Body).Decode(&payload); err != nil {
		t.Fatalf("json form: %v", err)
	}
	if payload.Daemon != "serve" || len(payload.Metrics) != 2 {
		t.Errorf("json form = %+v", payload)
	}
	_ = io.Discard
}

func TestMetricsBuilderExemplar(t *testing.T) {
	text := string(NewMetricsBuilder("serve").
		GaugeVec("x_latency_seconds", "Latency.",
			Sample{Labels: `quantile="0.99"`, Value: 0.004,
				Exemplar: &Exemplar{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", Value: 0.012}}).
		Prom())
	want := `x_latency_seconds{quantile="0.99"} 0.004 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.012`
	if !strings.Contains(text, want) {
		t.Errorf("prom text missing exemplar %q in:\n%s", want, text)
	}
}

func TestMetricsBuilderHistogram(t *testing.T) {
	// Per-bucket counts in, cumulative le-labeled series out: buckets
	// {≤1: 5, ≤4: 2, ≤8: 0, +Inf: 1}, sum of observations 23.
	b := NewMetricsBuilder("serve").
		Histogram("x_batch_size", "Batch sizes.",
			[]float64{1, 4, 8}, []uint64{5, 2, 0, 1}, 23)
	text := string(b.Prom())
	for _, want := range []string{
		"# TYPE x_batch_size histogram",
		`x_batch_size_bucket{le="1"} 5`,
		`x_batch_size_bucket{le="4"} 7`,
		`x_batch_size_bucket{le="8"} 7`,
		`x_batch_size_bucket{le="+Inf"} 8`,
		"x_batch_size_sum 23",
		"x_batch_size_count 8",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("histogram text missing %q in:\n%s", want, text)
		}
	}
	p := b.Payload()
	if len(p.Metrics) != 1 || p.Metrics[0].Type != "histogram" {
		t.Fatalf("histogram payload = %+v", p.Metrics)
	}
	samples := p.Metrics[0].Samples
	if len(samples) != 6 || samples[0].Suffix != "_bucket" || samples[5].Suffix != "_count" {
		t.Errorf("histogram samples = %+v", samples)
	}
}

func TestMetricsBuilderRuntime(t *testing.T) {
	b := NewMetricsBuilder("serve").Runtime(time.Now().Add(-2 * time.Second))
	text := string(b.Prom())
	for _, want := range []string{
		"shiftex_build_info{version=\"" + Version + "\"",
		"goversion=",
		"shiftex_process_uptime_seconds",
		"shiftex_goroutines",
		"shiftex_gc_pause_seconds_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("runtime families missing %q in:\n%s", want, text)
		}
	}
	p := b.Payload()
	if len(p.Metrics) != 4 || p.Metrics[0].Samples[0].Value != 1 {
		t.Errorf("runtime payload = %+v", p.Metrics)
	}
}
