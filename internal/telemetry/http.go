package telemetry

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/httpapi"
)

// TracesSchemaVersion versions the /v1/debug/traces payload.
const TracesSchemaVersion = 1

// TracesPayload is the JSON body of GET /v1/debug/traces.
type TracesPayload struct {
	SchemaVersion int           `json:"schemaVersion"`
	Daemon        string        `json:"daemon"`
	SpanCount     uint64        `json:"spanCount"` // total recorded, including evicted
	Spans         []*SpanRecord `json:"spans"`
}

// TracesHandler serves the span ring as JSON, filterable with
// ?trace=<32 hex trace id> and ?min_duration=<Go duration or
// microseconds>. It degrades to an empty span list on a nil tracer so
// the route can be registered unconditionally.
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var f Filter
		q := r.URL.Query()
		if v := q.Get("trace"); v != "" {
			id, ok := parseTraceID(v)
			if !ok {
				httpapi.WriteError(w, http.StatusBadRequest, "trace must be 32 hex chars")
				return
			}
			f.TraceID = id
		}
		if v := q.Get("min_duration"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				// Bare numbers are microseconds, matching durationUs
				// in the span records.
				us, uerr := strconv.ParseInt(v, 10, 64)
				if uerr != nil {
					httpapi.WriteError(w, http.StatusBadRequest,
						"min_duration must be a Go duration (\"1ms\") or microseconds")
					return
				}
				d = time.Duration(us) * time.Microsecond
			}
			f.MinDuration = d
		}
		spans := t.Spans(f)
		if spans == nil {
			spans = []*SpanRecord{}
		}
		httpapi.WriteJSON(w, http.StatusOK, TracesPayload{
			SchemaVersion: TracesSchemaVersion,
			Daemon:        t.Daemon(),
			SpanCount:     t.SpanCount(),
			Spans:         spans,
		})
	})
}

// DebugHandler is the handler for the -debug-addr listener every
// daemon can optionally open: the span ring under /v1/debug/traces
// and net/http/pprof under /v1/debug/pprof/. pprof is only ever
// mounted here, never on the public API listener.
func DebugHandler(t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /v1/debug/traces", TracesHandler(t))
	// pprof.Index keys sub-profiles off the /debug/pprof/ path prefix,
	// so strip the version segment before delegating.
	mux.Handle("/v1/debug/pprof/", http.StripPrefix("/v1", http.HandlerFunc(pprof.Index)))
	mux.HandleFunc("/v1/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/v1/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/v1/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/v1/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug opens the debug listener on addr and serves DebugHandler
// until the process exits. It returns the server so callers can Close
// it during shutdown; errors after startup are reported through errFn
// (nil means ignore).
func ServeDebug(addr string, t *Tracer, errFn func(error)) *http.Server {
	srv := &http.Server{Addr: addr, Handler: DebugHandler(t)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			if errFn != nil {
				errFn(err)
			}
		}
	}()
	return srv
}
