// Package telemetry provides end-to-end distributed tracing and
// trace-correlated structured logging for the shiftex daemons.
//
// The design is deliberately minimal: a Tracer mints W3C-style trace
// contexts (propagated via the `traceparent` header over HTTP and a
// Traceparent field over the fl gob wire), spans record load-bearing
// decisions as flat key/value attributes, and finished spans land in a
// bounded ring of preallocated slots served by GET /v1/debug/traces.
// There is no sampling, no export pipeline, and no clock skew
// correction — the ring is a flight recorder for debugging one
// process, not an APM.
//
// Everything is nil-safe: a nil *Tracer or nil *Span no-ops on every
// method, so call sites pay one pointer check when tracing is off.
// The enabled path is built to be allocation-free: hot paths start
// spans in stack storage via Tracer.BeginAt, End copies the finished
// record into a preallocated ring slot, and span timestamps reuse
// instants the caller already measured (StartSpanAt/EndAt). The
// serving benchmark (BENCH_tracing.json) gates the enabled path at
// <=5% throughput overhead.
package telemetry

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 16-byte W3C trace ID (32 hex chars on the wire).
type TraceID [16]byte

// SpanID is an 8-byte W3C span ID (16 hex chars on the wire).
type SpanID [8]byte

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is all zeroes (invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }
func (s SpanID) IsZero() bool  { return s == SpanID{} }

// MarshalJSON renders IDs as lowercase hex strings, matching the
// traceparent wire form, so /v1/debug/traces output is greppable
// against propagated headers.
func (t TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }
func (s SpanID) MarshalJSON() ([]byte, error)  { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the hex string form produced by MarshalJSON.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	id, ok := parseTraceID(str)
	if !ok {
		return errMalformed
	}
	*t = id
	return nil
}

func (s *SpanID) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	id, ok := parseSpanID(str)
	if !ok {
		return errMalformed
	}
	*s = id
	return nil
}

// SpanContext identifies one span within one trace. The zero value is
// invalid and means "no context".
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero, per the W3C rules.
func (c SpanContext) Valid() bool { return !c.TraceID.IsZero() && !c.SpanID.IsZero() }

// Attr is one key/value pair on a span. Values are pre-rendered
// strings: spans are debugging artifacts, not metrics, and keeping the
// record flat avoids interface boxing on the request path.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is the immutable form of a finished span as stored in the
// ring buffer and served by /v1/debug/traces. Records are never
// mutated after End publishes them.
type SpanRecord struct {
	TraceID    TraceID   `json:"traceId"`
	SpanID     SpanID    `json:"spanId"`
	ParentID   SpanID    `json:"parentSpanId,omitempty"`
	Name       string    `json:"name"`
	Daemon     string    `json:"daemon"`
	Start      time.Time `json:"start"`
	DurationUs int64     `json:"durationUs"`
	Attrs      []Attr    `json:"attrs,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// ring is a bounded span buffer of preallocated value slots: a
// monotonically increasing claim counter plus one tiny mutex per slot.
// End copies the finished record into its claimed slot, so the steady
// state allocates nothing — spans themselves can live on the caller's
// stack (see Tracer.BeginAt). Writers contend only on the claim
// counter (one atomic add); the per-slot mutexes are effectively
// uncontended and exist so readers always see whole records. Under
// wraparound a reader can observe a mix of old and new records —
// acceptable for a debug flight recorder.
type ring struct {
	slots []slot
	// mask is len(slots)-1 when the capacity is a power of two (the
	// default), replacing the modulo in put with one AND on the span
	// hot path; zero falls back to modulo for odd capacities.
	mask uint64
	next atomic.Uint64
}

// slot owns the storage for one recorded span, including its first few
// attributes, so recording a span allocates only when a fat span
// spills past the inline attribute array.
type slot struct {
	mu   sync.Mutex
	full bool
	rec  SpanRecord
	buf  [spanInlineAttrs]Attr
}

func newRing(capacity int) *ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	r := &ring{slots: make([]slot, capacity)}
	if capacity&(capacity-1) == 0 {
		r.mask = uint64(capacity - 1)
	}
	return r
}

// put records one finished span: rec's scalar fields plus its
// attributes, split as head (the span's inline array, passed as a
// transient slice so the Span can stay on the caller's stack) followed
// by rec.Attrs (heap overflow, usually nil).
func (r *ring) put(rec *SpanRecord, head []Attr) {
	i := r.next.Add(1) - 1
	if r.mask != 0 {
		i &= r.mask
	} else {
		i %= uint64(len(r.slots))
	}
	sl := &r.slots[i]
	sl.mu.Lock()
	sl.rec = *rec
	if len(rec.Attrs) == 0 {
		n := copy(sl.buf[:], head)
		sl.rec.Attrs = sl.buf[:n]
	} else {
		// A span with more attributes than the inline array (admin and
		// adaptation paths); copy to the heap rather than truncate.
		all := make([]Attr, 0, len(head)+len(rec.Attrs))
		all = append(all, head...)
		all = append(all, rec.Attrs...)
		sl.rec.Attrs = all
	}
	sl.full = true
	sl.mu.Unlock()
}

// snapshot returns private copies of all live records (callers may
// hold them indefinitely; slots are reused as the ring wraps).
func (r *ring) snapshot() []*SpanRecord {
	out := make([]*SpanRecord, 0, len(r.slots))
	for i := range r.slots {
		sl := &r.slots[i]
		sl.mu.Lock()
		if sl.full {
			rec := sl.rec
			rec.Attrs = append([]Attr(nil), sl.rec.Attrs...)
			out = append(out, &rec)
		}
		sl.mu.Unlock()
	}
	return out
}

// DefaultRingSize is the per-daemon span buffer capacity when the
// operator does not size it explicitly (-trace-buffer).
const DefaultRingSize = 4096

// Tracer mints spans for one daemon and owns its ring buffer. A nil
// Tracer is valid and disables tracing at the cost of one nil check
// per call site.
type Tracer struct {
	daemon string
	ring   *ring
	// idState seeds a splitmix64 sequence: ID generation is one atomic
	// add plus a few multiplies, far cheaper than crypto/rand on the
	// request path. IDs are unique per process, which is all the
	// flight recorder needs.
	idState atomic.Uint64
	// active holds an ambient span context for call paths that cannot
	// thread a context.Context (the fl wire protocol's Transport
	// interface). Set by the adaptation driver around each stage.
	active atomic.Pointer[SpanContext]
}

// NewTracer creates a tracer for the named daemon with a ring of the
// given capacity (<=0 selects DefaultRingSize).
func NewTracer(daemon string, capacity int) *Tracer {
	t := &Tracer{daemon: daemon, ring: newRing(capacity)}
	t.idState.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// Daemon returns the name the tracer stamps on every span record.
func (t *Tracer) Daemon() string {
	if t == nil {
		return ""
	}
	return t.daemon
}

// SpanCount returns the number of spans recorded since creation
// (including ones evicted from the ring). The ring's slot counter is
// exactly this number, so no separate counter is maintained — one
// fewer contended atomic on the span hot path.
func (t *Tracer) SpanCount() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.next.Load()
}

// nextID returns the next splitmix64 output.
func (t *Tracer) nextID() uint64 {
	z := t.idState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.nextID())
	binary.BigEndian.PutUint64(id[8:], t.nextID())
	if id.IsZero() {
		id[15] = 1
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.nextID())
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// StartSpan starts a span. If parent is valid the span continues that
// trace; otherwise it roots a new one. Nil-safe: returns nil on a nil
// tracer, and every Span method no-ops on nil.
func (t *Tracer) StartSpan(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	return t.StartSpanAt(name, parent, time.Now())
}

// StartSpanAt is StartSpan with a caller-supplied start instant. Hot
// paths that already hold a fresh time.Now() (request entry, latency
// bookkeeping) pass it in to avoid a second clock read — on paravirt
// clocks a read costs tens of nanoseconds, comparable to the rest of
// a span's bookkeeping put together.
func (t *Tracer) StartSpanAt(name string, parent SpanContext, start time.Time) *Span {
	if t == nil {
		return nil
	}
	s := &Span{}
	t.BeginAt(s, name, parent, start)
	return s
}

// BeginAt starts a span in place in caller-owned storage, typically a
// stack variable — the zero-allocation form of StartSpanAt for the
// request hot path (End copies the record into the ring, so the ring
// never references s and the compiler keeps s off the heap):
//
//	var span telemetry.Span
//	tracer.BeginAt(&span, "serve.route", parent, start)
//	...
//	span.End()
//
// s is reset entirely, so a loop may reuse one Span variable across
// iterations after each End. On a nil tracer s becomes the zero Span,
// whose methods all no-op. Begin-ing a span that has been started but
// not yet ended discards it unrecorded.
func (t *Tracer) BeginAt(s *Span, name string, parent SpanContext, start time.Time) {
	if t == nil {
		*s = Span{}
		return
	}
	s.tracer = t
	s.ended = false
	s.nattr = 0
	s.rec = SpanRecord{
		Name:   name,
		Daemon: t.daemon,
		Start:  start,
		SpanID: t.newSpanID(),
	}
	if parent.Valid() {
		s.rec.TraceID = parent.TraceID
		s.rec.ParentID = parent.SpanID
	} else {
		s.rec.TraceID = t.newTraceID()
	}
}

// StartRoot starts a span that roots a fresh trace.
func (t *Tracer) StartRoot(name string) *Span { return t.StartSpan(name, SpanContext{}) }

// StartRootAt starts a root span at a caller-supplied instant.
func (t *Tracer) StartRootAt(name string, start time.Time) *Span {
	return t.StartSpanAt(name, SpanContext{}, start)
}

// SetActive publishes an ambient span context for ctx-less call paths
// (the fl wire). ClearActive removes it.
func (t *Tracer) SetActive(c SpanContext) {
	if t == nil {
		return
	}
	t.active.Store(&c)
}

// ClearActive removes the ambient span context.
func (t *Tracer) ClearActive() {
	if t == nil {
		return
	}
	t.active.Store(nil)
}

// Active returns the ambient span context, or the zero context when
// none is set.
func (t *Tracer) Active() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	if c := t.active.Load(); c != nil {
		return *c
	}
	return SpanContext{}
}

// Spans returns a snapshot of the ring filtered by the given options.
// A zero filter returns everything, oldest first.
func (t *Tracer) Spans(f Filter) []*SpanRecord {
	if t == nil {
		return nil
	}
	recs := t.ring.snapshot()
	out := recs[:0]
	for _, rec := range recs {
		if !f.TraceID.IsZero() && rec.TraceID != f.TraceID {
			continue
		}
		if f.MinDuration > 0 && time.Duration(rec.DurationUs)*time.Microsecond < f.MinDuration {
			continue
		}
		out = append(out, rec)
	}
	sortRecords(out)
	return out
}

// Filter selects spans from the ring.
type Filter struct {
	TraceID     TraceID       // zero = any trace
	MinDuration time.Duration // 0 = any duration
}

func sortRecords(recs []*SpanRecord) {
	// Insertion sort by start time: the ring is nearly ordered already
	// (slots fill in claim order) and capacities are small.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Start.Before(recs[j-1].Start); j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// spanInlineAttrs is the attribute count a span (and a ring slot)
// stores without heap allocation; the serving hot path records at most
// four attributes per span.
const spanInlineAttrs = 4

// Span is one in-flight operation. All methods are nil-safe (and
// no-op on the zero Span); End is idempotent so rejection paths can
// close a span defensively while the happy path closes it at the
// natural boundary.
//
// The record and its first few attributes are embedded, and End copies
// the finished record into the tracer's ring — the ring never holds a
// reference to the Span. Hot paths exploit this by declaring a Span as
// a local variable and starting it in place with Tracer.BeginAt: the
// span never escapes to the heap, so tracing a request allocates
// nothing. A Span must not be copied after it is started (its record
// points into the embedded attribute array), and must not be reused
// until after End.
type Span struct {
	tracer *Tracer
	// rec.Attrs stays nil while the span is in flight — the first
	// spanInlineAttrs attributes live in inline, counted by nattr, and
	// only later attributes spill into rec.Attrs. Keeping the interior
	// pointer out of the struct matters: a self-referential slice
	// (rec.Attrs = inline[:0]) would defeat escape analysis and force
	// every hot-path span onto the heap.
	rec    SpanRecord
	inline [spanInlineAttrs]Attr
	nattr  int
	// ended is deliberately a plain bool: a span belongs to one
	// goroutine from Begin to End (the batching pipeline hands results
	// back over a channel, which orders any cross-goroutine touch), and
	// an atomic RMW costs more than the rest of End's bookkeeping on
	// paravirt hosts. Idempotence guards double-End from one goroutine
	// (defensive closes on rejection paths), not concurrent Ends.
	ended bool
}

// Context returns the span's context for propagation, or the zero
// context on a nil or zero span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID}
}

// Traced reports whether the span is live (non-nil and started on a
// tracer) — the hot-path guard for value Spans, where a nil check
// alone cannot distinguish a zero Span.
func (s *Span) Traced() bool { return s != nil && s.tracer != nil }

// Tracer returns the tracer the span records to, or nil for a nil or
// zero span. Hot paths use it to Begin child spans in caller-owned
// storage.
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Child starts a child span on the same tracer.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.StartSpan(name, s.Context())
}

// ChildAt starts a child span at a caller-supplied instant.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.StartSpanAt(name, s.Context(), start)
}

// SetAttr records a string attribute. Must not be called concurrently
// with End on the same span.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.tracer == nil || s.ended {
		return
	}
	if s.nattr < len(s.inline) {
		s.inline[s.nattr] = Attr{Key: key, Value: value}
		s.nattr++
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Value: value})
}

// SetAttrInt records an integer attribute.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, itoa(value))
}

// SetAttrBool records a boolean attribute.
func (s *Span) SetAttrBool(key string, value bool) {
	if value {
		s.SetAttr(key, "true")
	} else {
		s.SetAttr(key, "false")
	}
}

// SetError records an error on the span (nil clears nothing and is a
// no-op).
func (s *Span) SetError(err error) {
	if s == nil || s.tracer == nil || err == nil || s.ended {
		return
	}
	s.rec.Error = err.Error()
}

// End finishes the span and copies its record into the ring.
// Idempotent: only the first call records.
func (s *Span) End() {
	if s == nil || s.tracer == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.DurationUs = time.Since(s.rec.Start).Microseconds()
	s.tracer.ring.put(&s.rec, s.inline[:s.nattr])
}

// EndAt is End with a caller-supplied completion instant, for hot
// paths that already measured the operation (e.g. for a latency
// histogram) and can spare the span a second clock read.
func (s *Span) EndAt(now time.Time) {
	if s == nil || s.tracer == nil || s.ended {
		return
	}
	s.ended = true
	if d := now.Sub(s.rec.Start).Microseconds(); d > 0 {
		s.rec.DurationUs = d
	}
	s.tracer.ring.put(&s.rec, s.inline[:s.nattr])
}

// EndErr records err (if non-nil) and ends the span.
func (s *Span) EndErr(err error) {
	s.SetError(err)
	s.End()
}

// smallInts interns the formatted form of the small non-negative
// integers so the common span attributes (expert index, snapshot
// version, batch size, short queue waits) never allocate.
var smallInts [256]string

func init() {
	for i := range smallInts {
		smallInts[i] = formatInt(int64(i))
	}
}

// itoa is a minimal allocation-light int64 formatter for span attrs.
func itoa(v int64) string {
	if v >= 0 && v < int64(len(smallInts)) {
		return smallInts[v]
	}
	return formatInt(v)
}

func formatInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	neg := v < 0
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	i := len(buf)
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
