package telemetry

import (
	"context"
	"io"
	"log/slog"
)

// handler wraps a slog JSON handler and stamps every record with the
// trace and span IDs found in the logging context, correlating log
// lines with /v1/debug/traces output.
type handler struct {
	inner slog.Handler
}

func (h handler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

func (h handler) Handle(ctx context.Context, rec slog.Record) error {
	if span := SpanFromContext(ctx); span != nil {
		c := span.Context()
		rec.AddAttrs(
			slog.String("traceId", c.TraceID.String()),
			slog.String("spanId", c.SpanID.String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return handler{inner: h.inner.WithAttrs(attrs)}
}

func (h handler) WithGroup(name string) slog.Handler {
	return handler{inner: h.inner.WithGroup(name)}
}

// NewLogger returns a structured JSON logger for the named daemon.
// Every record carries a "daemon" attribute; records logged with a
// context holding a span (ContextWithSpan) additionally carry
// traceId/spanId.
func NewLogger(w io.Writer, daemon string) *slog.Logger {
	inner := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug})
	return slog.New(handler{inner: inner}).With(slog.String("daemon", daemon))
}
