package telemetry

import (
	"encoding/hex"
	"errors"
	"net/http"
)

// TraceparentHeader is the W3C Trace Context header name. Header keys
// are case-insensitive in net/http; the canonical lowercase form is
// what the spec writes on the wire.
const TraceparentHeader = "traceparent"

var errMalformed = errors.New("telemetry: malformed trace id")

// Traceparent renders a span context in W3C form:
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// The flags byte is always 01 (sampled): this tracer records
// everything that fits in the ring.
func Traceparent(c SpanContext) string {
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = hex.AppendEncode(buf, c.TraceID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, c.SpanID[:])
	buf = append(buf, '-', '0', '1')
	return string(buf)
}

// ParseTraceparent parses a W3C traceparent value. It accepts any
// version byte other than ff (per spec, future versions must stay
// parseable as version 00 prefixes) and rejects zero IDs. The second
// return is false for anything malformed — callers must then mint a
// fresh context rather than propagate junk.
func ParseTraceparent(s string) (SpanContext, bool) {
	if len(s) < 55 {
		return SpanContext{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if !isHex(s[:2]) || s[:2] == "ff" {
		return SpanContext{}, false
	}
	// Version 00 is exactly 55 chars; later versions may append
	// -suffixes but never change the prefix layout.
	if len(s) > 55 && (s[:2] == "00" || s[55] != '-') {
		return SpanContext{}, false
	}
	// hex.Decode accepts uppercase, the W3C grammar does not.
	if !isHex(s[3:35]) || !isHex(s[36:52]) {
		return SpanContext{}, false
	}
	var c SpanContext
	if _, err := hex.Decode(c.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(c.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !isHex(s[53:55]) {
		return SpanContext{}, false
	}
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// parseTraceID and parseSpanID parse bare hex IDs (query parameters,
// JSON payloads). Unlike ParseTraceparent they accept the all-zero
// form: a root span's JSON record carries a zero parent ID.
func parseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 || !isHex(s) {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, false
	}
	return id, true
}

func parseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 || !isHex(s) {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, false
	}
	return id, true
}

// Inject writes the span context into an outgoing header set. A zero
// context removes any stale header instead of propagating junk.
func Inject(h http.Header, c SpanContext) {
	if !c.Valid() {
		h.Del(TraceparentHeader)
		return
	}
	h.Set(TraceparentHeader, Traceparent(c))
}

// Extract parses the traceparent header of an incoming request. The
// zero context (with ok=false) is returned for absent or malformed
// headers; per spec the receiver must then restart the trace, never
// forward the malformed value.
func Extract(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return SpanContext{}, false
	}
	return ParseTraceparent(v)
}

// StartFromRequest starts a server-side span continuing the trace in
// r's traceparent header, or rooting a new trace when the header is
// absent or malformed.
func (t *Tracer) StartFromRequest(name string, r *http.Request) *Span {
	if t == nil {
		return nil
	}
	parent, _ := Extract(r.Header)
	return t.StartSpan(name, parent)
}
