package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer("test", 16)
	span := tr.StartRoot("op")
	c := span.Context()
	if !c.Valid() {
		t.Fatal("root span has invalid context")
	}
	hdr := Traceparent(c)
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("bad traceparent form: %q", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok || got != c {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, c)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-",    // truncated flags
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad version
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // trailing junk, v00
		"not a traceparent at all",
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
	// Future versions may carry suffixes after a dash.
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("version 01 with dash suffix should parse")
	}
}

func TestSpanParentChild(t *testing.T) {
	tr := NewTracer("test", 16)
	root := tr.StartRoot("parent")
	child := root.Child("child")
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child does not share the parent's trace ID")
	}
	if child.Context().SpanID == root.Context().SpanID {
		t.Fatal("child reused the parent's span ID")
	}
	child.End()
	root.End()
	recs := tr.Spans(Filter{})
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	var childRec *SpanRecord
	for _, r := range recs {
		if r.Name == "child" {
			childRec = r
		}
	}
	if childRec == nil || childRec.ParentID != root.Context().SpanID {
		t.Fatalf("child record parent = %v, want %v", childRec, root.Context().SpanID)
	}
}

func TestNilTracerAndSpanNoOp(t *testing.T) {
	var tr *Tracer
	span := tr.StartRoot("op")
	if span != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	// All of these must be safe no-ops.
	span.SetAttr("k", "v")
	span.SetAttrInt("n", 7)
	span.SetAttrBool("b", true)
	span.SetError(errors.New("x"))
	span.End()
	span.EndErr(nil)
	if c := span.Context(); c.Valid() {
		t.Fatal("nil span has a valid context")
	}
	if span.Child("c") != nil {
		t.Fatal("nil span produced a child")
	}
	tr.SetActive(SpanContext{})
	tr.ClearActive()
	if tr.Active().Valid() {
		t.Fatal("nil tracer has an active context")
	}
	if tr.Spans(Filter{}) != nil {
		t.Fatal("nil tracer returned spans")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTracer("test", 16)
	span := tr.StartRoot("op")
	span.End()
	span.End()
	span.EndErr(errors.New("late"))
	recs := tr.Spans(Filter{})
	if len(recs) != 1 {
		t.Fatalf("double End recorded %d spans, want 1", len(recs))
	}
	if recs[0].Error != "" {
		t.Fatal("error recorded after End")
	}
	if tr.SpanCount() != 1 {
		t.Fatalf("SpanCount = %d, want 1", tr.SpanCount())
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer("test", 8)
	for i := 0; i < 20; i++ {
		s := tr.StartRoot("op")
		s.SetAttrInt("i", int64(i))
		s.End()
	}
	recs := tr.Spans(Filter{})
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(recs))
	}
	if tr.SpanCount() != 20 {
		t.Fatalf("SpanCount = %d, want 20", tr.SpanCount())
	}
}

func TestRingConcurrent(t *testing.T) {
	tr := NewTracer("test", 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.StartRoot("op")
				s.SetAttrInt("i", int64(i))
				s.End()
				_ = tr.Spans(Filter{})
			}
		}()
	}
	wg.Wait()
	if got := tr.SpanCount(); got != 1600 {
		t.Fatalf("SpanCount = %d, want 1600", got)
	}
}

func TestSpansFilter(t *testing.T) {
	tr := NewTracer("test", 16)
	slow := tr.StartRoot("slow")
	time.Sleep(2 * time.Millisecond)
	slow.End()
	fast := tr.StartRoot("fast")
	fast.End()
	if got := len(tr.Spans(Filter{})); got != 2 {
		t.Fatalf("unfiltered = %d spans, want 2", got)
	}
	byTrace := tr.Spans(Filter{TraceID: slow.Context().TraceID})
	if len(byTrace) != 1 || byTrace[0].Name != "slow" {
		t.Fatalf("trace filter returned %+v", byTrace)
	}
	byDur := tr.Spans(Filter{MinDuration: time.Millisecond})
	if len(byDur) != 1 || byDur[0].Name != "slow" {
		t.Fatalf("duration filter returned %+v", byDur)
	}
}

func TestTracesHandler(t *testing.T) {
	tr := NewTracer("testd", 16)
	span := tr.StartRoot("op")
	span.SetAttr("expert", "3")
	span.End()
	h := TracesHandler(tr)

	get := func(url string) (*httptest.ResponseRecorder, TracesPayload) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var p TracesPayload
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
				t.Fatalf("bad payload: %v", err)
			}
		}
		return rec, p
	}

	rec, p := get("/v1/debug/traces")
	if rec.Code != http.StatusOK || p.Daemon != "testd" || len(p.Spans) != 1 {
		t.Fatalf("traces = %d %+v", rec.Code, p)
	}
	if p.Spans[0].TraceID != span.Context().TraceID {
		t.Fatal("payload trace ID does not round-trip")
	}

	_, p = get("/v1/debug/traces?trace=" + span.Context().TraceID.String())
	if len(p.Spans) != 1 {
		t.Fatalf("trace filter returned %d spans, want 1", len(p.Spans))
	}
	_, p = get("/v1/debug/traces?trace=ffffffffffffffffffffffffffffffff")
	if len(p.Spans) != 0 {
		t.Fatal("bogus trace ID matched spans")
	}
	rec, _ = get("/v1/debug/traces?trace=nothex")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed trace filter = %d, want 400", rec.Code)
	}
	_, p = get("/v1/debug/traces?min_duration=10s")
	if len(p.Spans) != 0 {
		t.Fatal("min_duration=10s matched a fast span")
	}
	_, p = get("/v1/debug/traces?min_duration=0")
	if len(p.Spans) != 1 {
		t.Fatal("numeric min_duration rejected")
	}
	rec, _ = get("/v1/debug/traces?min_duration=bogus")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed min_duration = %d, want 400", rec.Code)
	}
}

func TestTracesHandlerNilTracer(t *testing.T) {
	rec := httptest.NewRecorder()
	TracesHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("nil tracer traces = %d, want 200", rec.Code)
	}
	var p TracesPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil || len(p.Spans) != 0 {
		t.Fatalf("nil tracer payload: %v %+v", err, p)
	}
}

func TestDebugHandlerPprof(t *testing.T) {
	h := DebugHandler(NewTracer("testd", 16))
	for _, path := range []string{"/v1/debug/pprof/", "/v1/debug/pprof/cmdline", "/v1/debug/traces"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}

func TestStartFromRequestMalformedHeader(t *testing.T) {
	tr := NewTracer("test", 16)
	r := httptest.NewRequest("POST", "/v1/predict", nil)
	r.Header.Set(TraceparentHeader, "00-junkjunkjunk-junk-01")
	span := tr.StartFromRequest("op", r)
	if !span.Context().Valid() {
		t.Fatal("span context invalid after malformed header")
	}
	// The malformed trace ID must not leak into the fresh trace.
	if strings.Contains(Traceparent(span.Context()), "junk") {
		t.Fatal("malformed header content propagated")
	}
	span.End()
}

func TestLoggerTraceCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, "testd")
	tr := NewTracer("testd", 16)
	span := tr.StartRoot("op")
	ctx := ContextWithSpan(t.Context(), span)
	logger.InfoContext(ctx, "hello", "k", "v")
	logger.Info("plain")
	span.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, lines[0])
	}
	if first["daemon"] != "testd" || first["msg"] != "hello" || first["k"] != "v" {
		t.Fatalf("unexpected log record: %v", first)
	}
	if first["traceId"] != span.Context().TraceID.String() {
		t.Fatalf("traceId = %v, want %s", first["traceId"], span.Context().TraceID)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if _, ok := second["traceId"]; ok {
		t.Fatal("span-less log line carries a traceId")
	}
}

func TestInjectExtract(t *testing.T) {
	tr := NewTracer("test", 16)
	span := tr.StartRoot("op")
	h := http.Header{}
	Inject(h, span.Context())
	got, ok := Extract(h)
	if !ok || got != span.Context() {
		t.Fatalf("Extract = %+v ok=%v", got, ok)
	}
	Inject(h, SpanContext{})
	if h.Get(TraceparentHeader) != "" {
		t.Fatal("zero context left a stale header")
	}
	if _, ok := Extract(http.Header{}); ok {
		t.Fatal("Extract accepted an absent header")
	}
}

func TestTraceIDJSONRoundTrip(t *testing.T) {
	tr := NewTracer("test", 16)
	c := tr.StartRoot("op").Context()
	b, err := json.Marshal(c.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%q", c.TraceID.String())
	if string(b) != want {
		t.Fatalf("marshal = %s, want %s", b, want)
	}
	var back TraceID
	if err := json.Unmarshal(b, &back); err != nil || back != c.TraceID {
		t.Fatalf("unmarshal = %v %v", back, err)
	}
}
