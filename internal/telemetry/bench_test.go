package telemetry

import (
	"testing"
	"time"
)

// The serving tier records up to three spans per traced request, so
// per-span cost is the unit the BENCH_tracing.json overhead gate is
// built from. These benchmarks pin the two span shapes the request
// path mints (run with -benchmem: both must report 0 allocs/op) and
// the untraced no-op path.

func BenchmarkSpanWithAttrs(b *testing.B) {
	tr := NewTracer("bench", DefaultRingSize)
	start := time.Now()
	var s Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.BeginAt(&s, "serve.route", SpanContext{}, start)
		s.SetAttrBool("cache.hit", true)
		s.SetAttrInt("expert", 3)
		s.SetAttrBool("matched", true)
		s.SetAttrInt("snapshot", 7)
		s.EndAt(start)
	}
}

func BenchmarkSpanBare(b *testing.B) {
	tr := NewTracer("bench", DefaultRingSize)
	start := time.Now()
	var s Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.BeginAt(&s, "loadgen.predict", SpanContext{}, start)
		s.EndAt(start)
	}
}

func BenchmarkSpanUntraced(b *testing.B) {
	var tr *Tracer
	start := time.Now()
	var s Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.BeginAt(&s, "serve.route", SpanContext{}, start)
		s.SetAttrBool("cache.hit", true)
		s.EndAt(start)
	}
}
