package telemetry

import "context"

type ctxKey struct{}

// ContextWithSpan returns a context carrying span. A nil span returns
// ctx unchanged so disabled tracing allocates nothing.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, span)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	span, _ := ctx.Value(ctxKey{}).(*Span)
	return span
}
