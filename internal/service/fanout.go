package service

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// FanoutConfig bounds how a caller reaches a set of remote members — the
// aggregator fleet reaching parties, or the serving gateway reaching its
// replica fleet. The zero value selects the defaults.
type FanoutConfig struct {
	// Workers bounds concurrent member calls per fan-out; 0 means 4.
	Workers int
	// Timeout bounds one member call (including retrial-free transport
	// time); 0 disables the caller-side timeout and relies on transport
	// deadlines.
	Timeout time.Duration
	// Retries is the number of extra attempts after a failed call.
	Retries int
	// Quorum is the fraction of addressed members that must answer for the
	// operation to complete; 0 means 1.0 (all). Operations below quorum
	// fail; members that drop are skipped, not retried forever —
	// straggler tolerance, not exactly-once delivery.
	Quorum float64
}

func (c FanoutConfig) workers() int {
	if c.Workers <= 0 {
		return 4
	}
	return c.Workers
}

// QuorumNeed returns how many of n addressed members must succeed. The
// epsilon absorbs float error in q*n (0.28*25 is 7.0000000000000009 in
// float64; exactly meeting the requested fraction must pass).
func (c FanoutConfig) QuorumNeed(n int) int {
	q := c.Quorum
	if q <= 0 || q > 1 {
		q = 1
	}
	need := int(math.Ceil(q*float64(n) - 1e-9))
	if need < 1 {
		need = 1
	}
	if need > n {
		need = n
	}
	return need
}

// ErrCallTimeout marks a caller-side timeout: the abandoned call is still
// running on the member until the transport deadline fires.
var ErrCallTimeout = errors.New("service: call timed out")

// CallTimeout runs fn under the given per-call timeout. A timed-out call
// keeps running in its goroutine until the transport deadline fires; its
// result is discarded.
func CallTimeout[T any](d time.Duration, fn func() (T, error)) (T, error) {
	if d <= 0 {
		return fn()
	}
	type res struct {
		v   T
		err error
	}
	ch := make(chan res, 1)
	go func() {
		v, err := fn()
		ch <- res{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-time.After(d):
		var zero T
		return zero, fmt.Errorf("%w after %s", ErrCallTimeout, d)
	}
}

// Attempt runs fn with the config's timeout and retry policy. Timeouts are
// not retried: the abandoned call is still running on the member, so a
// retry would stack duplicate work on the member that is already too slow.
func Attempt[T any](fan FanoutConfig, fn func() (T, error)) (T, error) {
	var v T
	var err error
	for i := 0; i <= fan.Retries; i++ {
		v, err = CallTimeout(fan.Timeout, fn)
		if err == nil {
			return v, nil
		}
		if errors.Is(err, ErrCallTimeout) {
			return v, err
		}
	}
	return v, err
}

// FanOut runs fn for every member on a bounded worker pool under the given
// timeout/retry policy and returns results in input order. Failed slots
// carry their error, prefixed "op describe(member)". onFailure, when
// non-nil, is invoked once per member whose attempts were exhausted — the
// metrics hook.
func FanOut[K any, T any](fan FanoutConfig, members []K, op string, describe func(K) string, onFailure func(), fn func(member K) (T, error)) ([]T, []error) {
	results := make([]T, len(members))
	errs := make([]error, len(members))
	sem := make(chan struct{}, fan.workers())
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(slot int, member K) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			v, err := Attempt(fan, func() (T, error) { return fn(member) })
			if err != nil {
				errs[slot] = fmt.Errorf("%s %s: %w", op, describe(member), err)
				if onFailure != nil {
					onFailure()
				}
				return
			}
			results[slot] = v
		}(i, m)
	}
	wg.Wait()
	return results, errs
}
