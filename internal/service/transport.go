// Package service is the deployable ShiftEx runtime: a long-running
// coordinator that drives the real internal/shiftex aggregator (Algorithms
// 1-2) over a pluggable Transport, adding what a daemon needs and the
// simulation harness never had — bounded-parallel fan-out with per-call
// timeouts, retries and a completion quorum; versioned checkpoint/restore
// of the full aggregator state; and an HTTP observability surface.
//
// The determinism contract: every per-party random stream is derived from
// (seed, window, partyID) through fl.DeriveRNG, never from call order or
// scheduling, so a fleet of in-process parties and a fleet of TCP party
// processes answer identically and the aggregator makes bit-identical
// shift-detection and expert-assignment decisions on both
// (TestCrossProcessParity).
package service

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Transport is everything the runtime needs from one federation party,
// addressed by ID. Implementations must be safe for concurrent use; the
// fleet fans calls out across parties on a bounded worker pool.
type Transport interface {
	// PartyIDs returns the fleet's party IDs in ascending order.
	PartyIDs() []int
	// Train runs one local-training assignment on the party. The party
	// derives its RNG from (cfg.Seed, partyID) only.
	Train(partyID int, arch []int, global tensor.Vector, cfg fl.TrainConfig) (fl.Update, error)
	// Stats runs the party-side shift detector (Algorithm 1) against the
	// given encoder parameters; seed pins the party's subsampling RNG.
	Stats(partyID int, arch []int, encoder tensor.Vector, numClasses int, seed uint64) (detect.PartyStats, error)
	// Eval returns the accuracy of params on the party's private test split.
	Eval(partyID int, arch []int, params tensor.Vector) (float64, error)
	// Hist returns the party's current-window label histogram.
	Hist(partyID, numClasses int) (stats.Histogram, error)
	// Advance rolls the party's stream forward to window w.
	Advance(partyID, w int) error
	// Close releases transport resources.
	Close() error
}

// localParty is one in-process party of a LocalTransport. Each party has
// its own lock so fan-outs (notably the detector pass in StatsAll, the hot
// step of every window) run genuinely in parallel across parties.
type localParty struct {
	id      int
	windows fl.WindowProvider

	mu       sync.Mutex
	train    []dataset.Example
	test     []dataset.Example
	detector *detect.Detector
}

// LocalTransport runs every party inside the aggregator process — the
// deployment-shaped equivalent of the simulation harness, and the reference
// the TCP transport is parity-tested against.
type LocalTransport struct {
	mu      sync.Mutex // guards the party registry only
	parties map[int]*localParty
	ids     []int
}

var _ Transport = (*LocalTransport)(nil)

// NewLocalTransport returns an empty local transport.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{parties: make(map[int]*localParty)}
}

// AddParty registers an in-process party positioned at window 0 of its
// stream.
func (t *LocalTransport) AddParty(id, numClasses int, windows fl.WindowProvider) error {
	if windows == nil || windows.NumWindows() == 0 {
		return fmt.Errorf("service: party %d has no window stream", id)
	}
	det, err := detect.NewDetector(id, numClasses, 64)
	if err != nil {
		return err
	}
	train, test, err := windows.PartyWindow(0)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.parties[id]; dup {
		return fmt.Errorf("service: duplicate party %d", id)
	}
	t.parties[id] = &localParty{id: id, windows: windows, train: train, test: test, detector: det}
	t.ids = append(t.ids, id)
	sort.Ints(t.ids)
	return nil
}

// PartyIDs implements Transport.
func (t *LocalTransport) PartyIDs() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]int(nil), t.ids...)
}

func (t *LocalTransport) party(id int) (*localParty, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.parties[id]
	if !ok {
		return nil, fmt.Errorf("service: unknown party %d", id)
	}
	return p, nil
}

// Train implements Transport with the shared (seed, partyID) derivation.
func (t *LocalTransport) Train(partyID int, arch []int, global tensor.Vector, cfg fl.TrainConfig) (fl.Update, error) {
	p, err := t.party(partyID)
	if err != nil {
		return fl.Update{}, err
	}
	p.mu.Lock()
	snap := &fl.Party{ID: p.id, Train: p.train, Test: p.test}
	p.mu.Unlock()
	return fl.LocalTrain(snap, arch, global, cfg, fl.DeriveRNG(cfg.Seed, partyID))
}

// Stats implements Transport; the detector's rolling previous-window state
// advances exactly as a remote party server's would. Only this party's
// lock is held during the embedding pass, so fan-outs observe parties
// concurrently.
func (t *LocalTransport) Stats(partyID int, arch []int, encoder tensor.Vector, numClasses int, seed uint64) (detect.PartyStats, error) {
	model, err := nn.NewMLP(arch, tensor.NewRNG(0))
	if err != nil {
		return detect.PartyStats{}, err
	}
	if err := model.SetParams(encoder); err != nil {
		return detect.PartyStats{}, err
	}
	p, err := t.party(partyID)
	if err != nil {
		return detect.PartyStats{}, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.detector.Observe(model, p.train, fl.DeriveRNG(seed, partyID))
}

// Eval implements Transport.
func (t *LocalTransport) Eval(partyID int, arch []int, params tensor.Vector) (float64, error) {
	p, err := t.party(partyID)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	test := p.test
	p.mu.Unlock()
	return fl.Evaluate(arch, params, test)
}

// Hist implements Transport.
func (t *LocalTransport) Hist(partyID, numClasses int) (stats.Histogram, error) {
	p, err := t.party(partyID)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	train := p.train
	p.mu.Unlock()
	return dataset.LabelHistogram(train, numClasses), nil
}

// Advance implements Transport.
func (t *LocalTransport) Advance(partyID, w int) error {
	p, err := t.party(partyID)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if w < 0 || w >= p.windows.NumWindows() {
		return fmt.Errorf("service: party %d window %d out of range [0,%d)", partyID, w, p.windows.NumWindows())
	}
	train, test, err := p.windows.PartyWindow(w)
	if err != nil {
		return err
	}
	p.train = train
	p.test = test
	return nil
}

// Close implements Transport.
func (t *LocalTransport) Close() error { return nil }

// TCPTransport reaches parties running as separate processes over the
// internal/fl wire protocol.
type TCPTransport struct {
	trainer *fl.TCPTrainer
	ids     []int
	addrs   map[int]string
}

var _ Transport = (*TCPTransport)(nil)

// SetTracer forwards a tracer to the underlying fl trainer so every wire
// call records an fl.<kind> span and propagates its traceparent to the
// party process.
func (t *TCPTransport) SetTracer(tr *telemetry.Tracer) { t.trainer.SetTracer(tr) }

// NewTCPTransport builds a transport over a party-ID → address map.
// dialTimeout and callTimeout of 0 keep the fl defaults (5s / 2m).
func NewTCPTransport(addrs map[int]string, dialTimeout, callTimeout time.Duration) (*TCPTransport, error) {
	if len(addrs) == 0 {
		return nil, errors.New("service: no party addresses")
	}
	m := make(map[int]string, len(addrs))
	ids := make([]int, 0, len(addrs))
	for id, a := range addrs {
		m[id] = a
		ids = append(ids, id)
	}
	sort.Ints(ids)
	tr := fl.NewTCPTrainer(m)
	tr.DialTimeout = dialTimeout
	tr.CallTimeout = callTimeout
	return &TCPTransport{trainer: tr, ids: ids, addrs: m}, nil
}

// Ping dial-checks every party and returns an error naming the first
// unreachable one, so daemons can fail fast with an actionable message.
func (t *TCPTransport) Ping(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	for _, id := range t.ids {
		addr := t.addrs[id]
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return fmt.Errorf("party %d at %s unreachable: %w", id, addr, err)
		}
		_ = conn.Close()
	}
	return nil
}

// PartyIDs implements Transport.
func (t *TCPTransport) PartyIDs() []int { return append([]int(nil), t.ids...) }

// Train implements Transport.
func (t *TCPTransport) Train(partyID int, arch []int, global tensor.Vector, cfg fl.TrainConfig) (fl.Update, error) {
	return t.trainer.TrainParty(partyID, arch, global, cfg)
}

// Stats implements Transport.
func (t *TCPTransport) Stats(partyID int, arch []int, encoder tensor.Vector, numClasses int, seed uint64) (detect.PartyStats, error) {
	return t.trainer.FetchStats(partyID, arch, encoder, numClasses, seed)
}

// Eval implements Transport.
func (t *TCPTransport) Eval(partyID int, arch []int, params tensor.Vector) (float64, error) {
	return t.trainer.EvalParty(partyID, arch, params)
}

// Hist implements Transport.
func (t *TCPTransport) Hist(partyID, numClasses int) (stats.Histogram, error) {
	return t.trainer.HistParty(partyID, numClasses)
}

// Advance implements Transport.
func (t *TCPTransport) Advance(partyID, w int) error {
	return t.trainer.AdvanceParty(partyID, w)
}

// Close implements Transport. Connections are per-call, so there is
// nothing to tear down.
func (t *TCPTransport) Close() error { return nil }
