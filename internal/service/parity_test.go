package service

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/shiftex"
)

// decisionRecord flattens everything the aggregator decided over a run.
type decisionRecord struct {
	Reports     []shiftex.WindowReport
	Assignments map[int]int
	ExpertIDs   []int
	Epsilon     float64
	DeltaCov    float64
	DeltaLabel  float64
}

func record(rt *Runtime) decisionRecord {
	rec := decisionRecord{
		Assignments: rt.Aggregator().Assignments(),
		ExpertIDs:   rt.Aggregator().Registry().IDs(),
		Epsilon:     rt.Aggregator().Epsilon(),
		DeltaCov:    rt.Aggregator().Thresholds().DeltaCov,
		DeltaLabel:  rt.Aggregator().Thresholds().DeltaLabel,
	}
	for _, rep := range rt.Reports() {
		rec.Reports = append(rec.Reports, *rep)
	}
	return rec
}

// TestCrossProcessParity is the acceptance test for the service layer: the
// same seed must produce the same shift-detection and expert-assignment
// decisions whether parties are in-process or reached over TCP. Every float
// is compared exactly — the contract is bit-identity, not approximation.
func TestCrossProcessParity(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-process parity is slow")
	}
	const seed = 42
	scLocal := testScenario(t, seed)
	scRemote := testScenario(t, seed)

	local, err := LocalTransportForScenario(scLocal)
	if err != nil {
		t.Fatal(err)
	}
	rtLocal := runAll(t, local, testOptions(scLocal, seed))

	remote := startTCPFleet(t, scRemote)
	if err := remote.Ping(0); err != nil {
		t.Fatal(err)
	}
	rtRemote := runAll(t, remote, testOptions(scRemote, seed))

	recLocal, recRemote := record(rtLocal), record(rtRemote)
	if !reflect.DeepEqual(recLocal.Assignments, recRemote.Assignments) {
		t.Errorf("assignments diverge:\n local: %v\nremote: %v", recLocal.Assignments, recRemote.Assignments)
	}
	if !reflect.DeepEqual(recLocal.ExpertIDs, recRemote.ExpertIDs) {
		t.Errorf("expert pools diverge: local %v remote %v", recLocal.ExpertIDs, recRemote.ExpertIDs)
	}
	if recLocal.Epsilon != recRemote.Epsilon {
		t.Errorf("epsilon diverges: %g vs %g", recLocal.Epsilon, recRemote.Epsilon)
	}
	if recLocal.DeltaCov != recRemote.DeltaCov || recLocal.DeltaLabel != recRemote.DeltaLabel {
		t.Errorf("thresholds diverge: %+v vs %+v",
			[2]float64{recLocal.DeltaCov, recLocal.DeltaLabel},
			[2]float64{recRemote.DeltaCov, recRemote.DeltaLabel})
	}
	if len(recLocal.Reports) != len(recRemote.Reports) {
		t.Fatalf("report counts diverge: %d vs %d", len(recLocal.Reports), len(recRemote.Reports))
	}
	for w := range recLocal.Reports {
		l, r := recLocal.Reports[w], recRemote.Reports[w]
		if l.ShiftedCov != r.ShiftedCov || l.ShiftedLabel != r.ShiftedLabel {
			t.Errorf("window %d shift detections diverge: cov %d/%d label %d/%d",
				w, l.ShiftedCov, r.ShiftedCov, l.ShiftedLabel, r.ShiftedLabel)
		}
		if l.NewExperts != r.NewExperts || l.Merged != r.Merged {
			t.Errorf("window %d adaptation diverges: new %d/%d merged %d/%d",
				w, l.NewExperts, r.NewExperts, l.Merged, r.Merged)
		}
		if !reflect.DeepEqual(l.Distribution, r.Distribution) {
			t.Errorf("window %d distributions diverge: %v vs %v", w, l.Distribution, r.Distribution)
		}
		if !reflect.DeepEqual(l.Trace, r.Trace) {
			t.Errorf("window %d accuracy traces diverge:\n local: %v\nremote: %v", w, l.Trace, r.Trace)
		}
	}

	// Expert parameters themselves must agree bit-for-bit: gob carries
	// float64s exactly and aggregation order is pinned.
	for _, id := range recLocal.ExpertIDs {
		el, _ := rtLocal.Aggregator().Registry().Get(id)
		er, ok := rtRemote.Aggregator().Registry().Get(id)
		if !ok {
			t.Fatalf("expert %d missing remotely", id)
		}
		if !reflect.DeepEqual(el.Params, er.Params) {
			t.Errorf("expert %d parameters diverge", id)
		}
	}

	// Sanity: the run did something (bootstrap trained to a finite trace).
	if len(recLocal.Reports) == 0 || len(recLocal.Reports[0].Trace) == 0 ||
		math.IsNaN(recLocal.Reports[0].Trace[0]) {
		t.Fatal("empty or NaN bootstrap trace")
	}
}
