package service

import (
	"sync"
	"time"
)

// Metrics is the runtime's mutable observability state, exposed through the
// /metrics endpoint. All methods are safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	start time.Time

	roundsTotal      int
	roundsFailed     int
	roundLatencyLast time.Duration
	roundLatencySum  time.Duration
	stragglersTotal  int

	partyFailures int

	windowsDone     int
	shiftEventsCov  int
	shiftEventsLab  int
	expertsCreated  int
	expertsMerged   int
	expertPoolSize  int
	checkpointsSave int
}

// NewMetrics returns zeroed metrics with the clock started.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// ObserveRound records one completed training round and how many selected
// parties failed to report (stragglers tolerated by the quorum).
func (m *Metrics) ObserveRound(d time.Duration, stragglers int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.roundsTotal++
	m.roundLatencyLast = d
	m.roundLatencySum += d
	m.stragglersTotal += stragglers
}

// RoundFailed records a round that missed quorum.
func (m *Metrics) RoundFailed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.roundsFailed++
}

// PartyFailure records one exhausted-retry party call.
func (m *Metrics) PartyFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.partyFailures++
}

// ObserveWindow records one completed window's adaptation outcome.
func (m *Metrics) ObserveWindow(shiftedCov, shiftedLabel, created, merged, poolSize int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.windowsDone++
	m.shiftEventsCov += shiftedCov
	m.shiftEventsLab += shiftedLabel
	m.expertsCreated += created
	m.expertsMerged += merged
	m.expertPoolSize = poolSize
}

// ObserveCheckpoint records one checkpoint write.
func (m *Metrics) ObserveCheckpoint() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checkpointsSave++
}

// MetricsSnapshot is a point-in-time copy for rendering.
type MetricsSnapshot struct {
	UptimeSeconds      float64
	RoundsTotal        int
	RoundsFailed       int
	RoundLatencyLastS  float64
	RoundLatencyMeanS  float64
	StragglersTotal    int
	PartyFailures      int
	WindowsDone        int
	ShiftEventsCov     int
	ShiftEventsLabel   int
	ExpertsCreated     int
	ExpertsMerged      int
	ExpertPoolSize     int
	CheckpointsWritten int
}

// Snapshot copies the current counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		UptimeSeconds:      time.Since(m.start).Seconds(),
		RoundsTotal:        m.roundsTotal,
		RoundsFailed:       m.roundsFailed,
		RoundLatencyLastS:  m.roundLatencyLast.Seconds(),
		StragglersTotal:    m.stragglersTotal,
		PartyFailures:      m.partyFailures,
		WindowsDone:        m.windowsDone,
		ShiftEventsCov:     m.shiftEventsCov,
		ShiftEventsLabel:   m.shiftEventsLab,
		ExpertsCreated:     m.expertsCreated,
		ExpertsMerged:      m.expertsMerged,
		ExpertPoolSize:     m.expertPoolSize,
		CheckpointsWritten: m.checkpointsSave,
	}
	if m.roundsTotal > 0 {
		s.RoundLatencyMeanS = m.roundLatencySum.Seconds() / float64(m.roundsTotal)
	}
	return s
}
