package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler returns the runtime's observability endpoint:
//
//	/healthz  liveness + stream position (JSON, always 200 while serving)
//	/state    aggregator snapshot: experts, assignments, thresholds (JSON)
//	/metrics  Prometheus text exposition of the runtime counters
//
// Handlers read locked snapshots only, so they are safe to serve while a
// window is running.
func (r *Runtime) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/state", r.handleState)
	mux.HandleFunc("/metrics", r.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (r *Runtime) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	next := r.nextWindow
	r.mu.Unlock()
	phase := "adapting"
	switch {
	case next == 0:
		phase = "bootstrapping"
	case next >= r.opts.Windows:
		phase = "done"
	}
	writeJSON(w, map[string]any{
		"status":        "ok",
		"phase":         phase,
		"nextWindow":    next,
		"windowsTotal":  r.opts.Windows,
		"parties":       r.fleet.NumParties(),
		"uptimeSeconds": r.metrics.Snapshot().UptimeSeconds,
	})
}

func (r *Runtime) handleState(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	st := r.status
	reports := len(r.reports)
	r.mu.Unlock()
	writeJSON(w, map[string]any{
		"window":       st.Window,
		"windowsDone":  reports,
		"policy":       r.agg.PolicyName(),
		"experts":      st.Experts,
		"distribution": st.Distribution,
		"assignments":  st.Assignments,
		"epsilon":      st.Epsilon,
		"thresholds":   st.Thresholds,
		"lastTrace":    st.Trace,
	})
}

func (r *Runtime) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s := r.metrics.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b []byte
	add := func(format string, args ...any) {
		b = fmt.Appendf(b, format+"\n", args...)
	}
	add("# HELP shiftex_uptime_seconds Time since the runtime started.")
	add("# TYPE shiftex_uptime_seconds gauge")
	add("shiftex_uptime_seconds %g", s.UptimeSeconds)
	add("# HELP shiftex_windows_completed Stream windows completed.")
	add("# TYPE shiftex_windows_completed counter")
	add("shiftex_windows_completed %d", s.WindowsDone)
	add("# HELP shiftex_rounds_total Federated training rounds completed.")
	add("# TYPE shiftex_rounds_total counter")
	add("shiftex_rounds_total %d", s.RoundsTotal)
	add("# HELP shiftex_rounds_failed_total Rounds that missed quorum.")
	add("# TYPE shiftex_rounds_failed_total counter")
	add("shiftex_rounds_failed_total %d", s.RoundsFailed)
	add("# HELP shiftex_round_latency_seconds Wall-clock time of a training round.")
	add("# TYPE shiftex_round_latency_seconds gauge")
	add(`shiftex_round_latency_seconds{stat="last"} %g`, s.RoundLatencyLastS)
	add(`shiftex_round_latency_seconds{stat="mean"} %g`, s.RoundLatencyMeanS)
	add("# HELP shiftex_experts Expert-pool size after the last window.")
	add("# TYPE shiftex_experts gauge")
	add("shiftex_experts %d", s.ExpertPoolSize)
	add("# HELP shiftex_experts_created_total Experts spawned for shifted clusters.")
	add("# TYPE shiftex_experts_created_total counter")
	add("shiftex_experts_created_total %d", s.ExpertsCreated)
	add("# HELP shiftex_experts_merged_total Experts removed by consolidation.")
	add("# TYPE shiftex_experts_merged_total counter")
	add("shiftex_experts_merged_total %d", s.ExpertsMerged)
	add("# HELP shiftex_shift_events_total Per-party shift detections.")
	add("# TYPE shiftex_shift_events_total counter")
	add(`shiftex_shift_events_total{kind="covariate"} %d`, s.ShiftEventsCov)
	add(`shiftex_shift_events_total{kind="label"} %d`, s.ShiftEventsLabel)
	add("# HELP shiftex_party_failures_total Party calls that exhausted retries.")
	add("# TYPE shiftex_party_failures_total counter")
	add("shiftex_party_failures_total %d", s.PartyFailures)
	add("# HELP shiftex_round_stragglers_total Selected parties that missed rounds tolerated by quorum.")
	add("# TYPE shiftex_round_stragglers_total counter")
	add("shiftex_round_stragglers_total %d", s.StragglersTotal)
	add("# HELP shiftex_checkpoints_written_total Checkpoint files committed.")
	add("# TYPE shiftex_checkpoints_written_total counter")
	add("shiftex_checkpoints_written_total %d", s.CheckpointsWritten)
	_, _ = w.Write(b)
}
