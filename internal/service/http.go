package service

import (
	"net/http"

	"repro/internal/httpapi"
	"repro/internal/telemetry"
)

// Handler returns the runtime's observability surface, versioned under /v1:
//
//	/v1/healthz  liveness + stream position (JSON, always 200 while serving)
//	/v1/state    shared httpapi.State envelope with the aggregator section
//	/v1/metrics  Prometheus text (or shared JSON schema with ?format=json)
//
// The pre-versioning paths (/healthz /state /metrics) stay reachable as
// deprecated aliases carrying a Deprecation header; unknown routes answer
// 404 with the live /v1 listing. Handlers read locked snapshots only, so
// they are safe to serve while a window is running.
func (r *Runtime) Handler() http.Handler {
	api := httpapi.NewAPI()
	api.Handle("/v1/healthz", r.handleHealthz)
	api.Handle("/v1/state", r.handleState)
	api.Handle("/v1/metrics", r.handleMetrics)
	api.Handle("/v1/debug/traces", telemetry.TracesHandler(r.opts.Tracer).ServeHTTP)
	api.Deprecated("/healthz", "/v1/healthz", r.handleHealthz)
	api.Deprecated("/state", "/v1/state", r.handleState)
	api.Deprecated("/metrics", "/v1/metrics", r.handleMetrics)
	return api.Handler()
}

// phase reports where the runtime is in its stream: bootstrapping before
// window 0 completes, adapting during the stream, done after the last
// window.
func (r *Runtime) phase() (string, int) {
	r.mu.Lock()
	next := r.nextWindow
	r.mu.Unlock()
	switch {
	case next == 0:
		return "bootstrapping", next
	case next >= r.opts.Windows:
		return "done", next
	}
	return "adapting", next
}

func (r *Runtime) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	phase, next := r.phase()
	httpapi.WriteJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"phase":         phase,
		"nextWindow":    next,
		"windowsTotal":  r.opts.Windows,
		"parties":       r.fleet.NumParties(),
		"uptimeSeconds": r.metrics.Snapshot().UptimeSeconds,
	})
}

func (r *Runtime) handleState(w http.ResponseWriter, _ *http.Request) {
	phase, _ := r.phase()
	r.mu.Lock()
	st := r.status
	reports := len(r.reports)
	r.mu.Unlock()
	m := r.metrics.Snapshot()
	httpapi.WriteJSON(w, http.StatusOK, httpapi.State{
		SchemaVersion: httpapi.SchemaVersion,
		Daemon:        "aggregator",
		Status:        "ok",
		UptimeSeconds: m.UptimeSeconds,
		Aggregator: &httpapi.AggregatorState{
			Phase:        phase,
			Window:       st.Window,
			WindowsDone:  reports,
			WindowsTotal: r.opts.Windows,
			Parties:      r.fleet.NumParties(),
			Policy:       r.agg.PolicyName(),
			Experts:      st.Experts,
			Distribution: st.Distribution,
			Assignments:  st.Assignments,
			Epsilon:      st.Epsilon,
			Thresholds:   st.Thresholds,
			LastTrace:    st.Trace,
		},
	})
}

func (r *Runtime) handleMetrics(w http.ResponseWriter, req *http.Request) {
	s := r.metrics.Snapshot()
	b := httpapi.NewMetricsBuilder("aggregator").
		Runtime(r.metrics.start).
		Gauge("shiftex_uptime_seconds", "Time since the runtime started.", s.UptimeSeconds).
		Counter("shiftex_windows_completed", "Stream windows completed.", float64(s.WindowsDone)).
		Counter("shiftex_rounds_total", "Federated training rounds completed.", float64(s.RoundsTotal)).
		Counter("shiftex_rounds_failed_total", "Rounds that missed quorum.", float64(s.RoundsFailed)).
		GaugeVec("shiftex_round_latency_seconds", "Wall-clock time of a training round.",
			httpapi.Sample{Labels: `stat="last"`, Value: s.RoundLatencyLastS},
			httpapi.Sample{Labels: `stat="mean"`, Value: s.RoundLatencyMeanS}).
		Gauge("shiftex_experts", "Expert-pool size after the last window.", float64(s.ExpertPoolSize)).
		Counter("shiftex_experts_created_total", "Experts spawned for shifted clusters.", float64(s.ExpertsCreated)).
		Counter("shiftex_experts_merged_total", "Experts removed by consolidation.", float64(s.ExpertsMerged)).
		CounterVec("shiftex_shift_events_total", "Per-party shift detections.",
			httpapi.Sample{Labels: `kind="covariate"`, Value: float64(s.ShiftEventsCov)},
			httpapi.Sample{Labels: `kind="label"`, Value: float64(s.ShiftEventsLabel)}).
		Counter("shiftex_party_failures_total", "Party calls that exhausted retries.", float64(s.PartyFailures)).
		Counter("shiftex_round_stragglers_total", "Selected parties that missed rounds tolerated by quorum.", float64(s.StragglersTotal)).
		Counter("shiftex_checkpoints_written_total", "Checkpoint files committed.", float64(s.CheckpointsWritten))
	b.ServeMetrics(w, req)
}
