package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/adapt"
	"repro/internal/shiftex"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Options configures a runtime.
type Options struct {
	// Shiftex is the Algorithm-2 protocol configuration.
	Shiftex shiftex.Config
	// Policy names the adaptation policy the aggregator runs (adapt
	// registry name); empty means the default. Like Shiftex, it is
	// protocol: a resumed run must keep the checkpointed policy.
	Policy string
	// Arch is the full model layer-width list (input..output).
	Arch []int
	// NumClasses is the label-space size.
	NumClasses int
	// Windows is the total stream length including the W0 bootstrap.
	Windows int
	// Seed roots the aggregator RNG and every per-party stream.
	Seed uint64
	// Fanout bounds party communication.
	Fanout FanoutConfig
	// CheckpointPath, when set, is written atomically after every
	// completed window and read back by Resume.
	CheckpointPath string
	// Tracer, when set, records per-window adaptation-stage spans (and,
	// through a TCP transport, per-party wire spans) for /v1/debug/traces.
	Tracer *telemetry.Tracer
}

// Runtime is the long-running ShiftEx service: it owns the aggregator and a
// fleet, runs the stream window by window, checkpoints after each, and
// exposes its state over HTTP (see Handler).
type Runtime struct {
	opts    Options
	fleet   *Fleet
	agg     *shiftex.Aggregator
	metrics *Metrics

	mu         sync.Mutex
	nextWindow int
	reports    []*shiftex.WindowReport
	status     statusSnapshot
}

// statusSnapshot is the last completed window's aggregator view, copied
// under the runtime lock so HTTP reads never race a window in flight.
type statusSnapshot struct {
	Window       int
	Experts      []int
	Distribution map[int]int
	Assignments  map[int]int
	Epsilon      float64
	Thresholds   stats.Thresholds
	Trace        []float64
}

// NewRuntime builds a fresh runtime (stream starts at window 0) running
// opts.Policy (default when empty); unknown policy names error with the
// live registry listing.
func NewRuntime(t Transport, opts Options) (*Runtime, error) {
	if err := opts.Shiftex.Validate(); err != nil {
		return nil, err
	}
	pol, err := adapt.NewPolicy(opts.Policy)
	if err != nil {
		return nil, err
	}
	opts.Policy = pol.Name
	metrics := NewMetrics()
	fleet, err := NewFleet(t, opts.Arch, opts.NumClasses, opts.Windows, opts.Seed, opts.Fanout, metrics)
	if err != nil {
		return nil, err
	}
	agg, err := shiftex.NewWithPolicy(opts.Shiftex, pol, opts.Seed^0x7ec)
	if err != nil {
		return nil, err
	}
	agg.SetTracer(opts.Tracer)
	return &Runtime{opts: opts, fleet: fleet, agg: agg, metrics: metrics}, nil
}

// Resume rebuilds a runtime from opts.CheckpointPath. The checkpoint's
// protocol (config, arch, seed, window count) overrides opts so a resumed
// daemon cannot silently diverge from the run it is continuing; the party
// fleet must be the same one the checkpointed run was driving (parties keep
// their own stream and detector state across an aggregator restart).
func Resume(t Transport, opts Options) (*Runtime, error) {
	if opts.CheckpointPath == "" {
		return nil, errors.New("service: resume needs a checkpoint path")
	}
	cp, err := LoadCheckpoint(opts.CheckpointPath)
	if err != nil {
		return nil, err
	}
	return ResumeFrom(t, cp, opts)
}

// ResumeFrom is Resume for an already-loaded checkpoint, so callers that
// peeked at it (e.g. to build a matching party fleet) don't read and decode
// the file — which carries every expert's parameters — twice.
func ResumeFrom(t Transport, cp *Checkpoint, opts Options) (*Runtime, error) {
	if opts.NumClasses != 0 && opts.NumClasses != cp.NumClasses {
		return nil, fmt.Errorf("service: checkpoint has %d classes, flags say %d", cp.NumClasses, opts.NumClasses)
	}
	// The policy is protocol: resuming under a different stage set would
	// silently diverge from the run being continued, so an explicit
	// conflicting request is an error rather than an override.
	if opts.Policy != "" && opts.Policy != cp.PolicyName() {
		return nil, fmt.Errorf("service: checkpoint ran policy %q, flags say %q (the policy is pinned by the run)", cp.PolicyName(), opts.Policy)
	}
	// The checkpointed assignment names every party the run was driving; a
	// fleet of a different size is a different federation, not a resume.
	if n := len(cp.Aggregator.Assignment); n > 0 && n != len(t.PartyIDs()) {
		return nil, fmt.Errorf("service: checkpoint covers %d parties, fleet has %d", n, len(t.PartyIDs()))
	}
	pol, err := adapt.NewPolicy(cp.PolicyName())
	if err != nil {
		return nil, fmt.Errorf("service: checkpoint policy: %w", err)
	}
	opts.Policy = pol.Name
	opts.Shiftex = cp.Config
	opts.Arch = cp.Arch
	opts.NumClasses = cp.NumClasses
	opts.Seed = cp.Seed
	// The stream length is deployment config, not aggregator state (no
	// decision looks ahead), so the caller may extend a finished stream;
	// left at zero it falls back to the checkpointed length.
	if opts.Windows <= 0 {
		opts.Windows = cp.NumWindows
	}

	metrics := NewMetrics()
	fleet, err := NewFleet(t, opts.Arch, opts.NumClasses, opts.Windows, opts.Seed, opts.Fanout, metrics)
	if err != nil {
		return nil, err
	}
	agg, err := shiftex.RestoreWithPolicy(cp.Config, pol, cp.Aggregator)
	if err != nil {
		return nil, err
	}
	agg.SetTracer(opts.Tracer)
	r := &Runtime{opts: opts, fleet: fleet, agg: agg, metrics: metrics, nextWindow: cp.WindowsDone}
	r.reports = append(r.reports, cp.Reports...)
	r.refreshStatus(cp.WindowsDone - 1)
	return r, nil
}

// Metrics exposes the runtime's counters.
func (r *Runtime) Metrics() *Metrics { return r.metrics }

// Fleet exposes the runtime's party fleet.
func (r *Runtime) Fleet() *Fleet { return r.fleet }

// Aggregator exposes the underlying ShiftEx coordinator (read it only
// between windows; Run mutates it).
func (r *Runtime) Aggregator() *shiftex.Aggregator { return r.agg }

// Windows returns the total stream length the runtime will run.
func (r *Runtime) Windows() int { return r.opts.Windows }

// NextWindow returns the next stream window the runtime will run.
func (r *Runtime) NextWindow() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextWindow
}

// Reports returns the completed windows' reports.
func (r *Runtime) Reports() []*shiftex.WindowReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*shiftex.WindowReport(nil), r.reports...)
}

// Done reports whether the stream is exhausted.
func (r *Runtime) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextWindow >= r.opts.Windows
}

// refreshStatus recomputes the HTTP-facing snapshot from the aggregator.
// Callers must not be mid-window.
func (r *Runtime) refreshStatus(window int) {
	st := statusSnapshot{
		Window:      window,
		Experts:     r.agg.Registry().IDs(),
		Assignments: r.agg.Assignments(),
		Epsilon:     r.agg.Epsilon(),
		Thresholds:  r.agg.Thresholds(),
	}
	st.Distribution = shiftex.Snapshot(st.Assignments)
	if n := len(r.reports); n > 0 {
		st.Trace = append([]float64(nil), r.reports[n-1].Trace...)
	}
	r.mu.Lock()
	r.status = st
	r.mu.Unlock()
}

// RunWindow runs exactly one stream window (bootstrap when w == 0),
// checkpoints if configured, and returns the window report.
func (r *Runtime) RunWindow(w int) (*shiftex.WindowReport, error) {
	var rep *shiftex.WindowReport
	var err error
	if w == 0 {
		rep, err = r.agg.Bootstrap(r.fleet)
	} else {
		if err = r.fleet.SetWindow(w); err != nil {
			return nil, err
		}
		rep, err = r.agg.AdaptWindow(r.fleet, w)
	}
	if err != nil {
		return nil, fmt.Errorf("service: window %d: %w", w, err)
	}
	r.metrics.ObserveWindow(rep.ShiftedCov, rep.ShiftedLabel, rep.NewExperts, rep.Merged, r.agg.Registry().Len())

	r.mu.Lock()
	r.reports = append(r.reports, rep)
	r.nextWindow = w + 1
	r.mu.Unlock()
	r.refreshStatus(w)

	if r.opts.CheckpointPath != "" {
		cp := &Checkpoint{
			SchemaVersion: CheckpointSchemaVersion,
			Seed:          r.opts.Seed,
			Arch:          r.opts.Arch,
			NumClasses:    r.opts.NumClasses,
			NumWindows:    r.opts.Windows,
			WindowsDone:   w + 1,
			Policy:        r.agg.PolicyName(),
			PolicyVersion: adapt.PolicyVersion,
			Config:        r.opts.Shiftex,
			Aggregator:    r.agg.ExportState(),
			Reports:       r.Reports(),
		}
		if err := SaveCheckpoint(r.opts.CheckpointPath, cp); err != nil {
			return nil, err
		}
		r.metrics.ObserveCheckpoint()
	}
	return rep, nil
}

// Run drives the stream from the current position to the end, honoring
// context cancellation at window granularity.
func (r *Runtime) Run(ctx context.Context) error {
	for w := r.NextWindow(); w < r.opts.Windows; w++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if _, err := r.RunWindow(w); err != nil {
			return err
		}
	}
	return nil
}
