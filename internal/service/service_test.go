package service

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/shiftex"
	"repro/internal/tensor"
)

// testScenario builds a quick 8-party, 3-window workload with pronounced
// shifts — small enough for unit tests, structured enough to trigger the
// detection → clustering → expert-assignment path.
func testScenario(t *testing.T, seed uint64) *dataset.Scenario {
	t.Helper()
	spec := ScenarioSpec(8, 40, 20, 3)
	cfg := dataset.DefaultShiftConfig()
	cfg.RegimesPerWindow = 1
	sc, err := dataset.BuildScenario(spec, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func testOptions(sc *dataset.Scenario, seed uint64) Options {
	cfg := shiftex.DefaultConfig()
	cfg.BootstrapRounds = 4
	cfg.RoundsPerWindow = 4
	cfg.ParticipantsPerRound = 5
	cfg.Train.Epochs = 1
	return Options{
		Shiftex:    cfg,
		Arch:       DefaultArch(sc.Spec, []int{24, 12}),
		NumClasses: sc.Spec.NumClasses,
		Windows:    sc.Spec.Windows,
		Seed:       seed,
	}
}

// startTCPFleet serves every party of the scenario on loopback TCP and
// returns the transport reaching them. Servers are torn down with the test.
func startTCPFleet(t *testing.T, sc *dataset.Scenario) *TCPTransport {
	t.Helper()
	addrs := make(map[int]string, sc.Spec.NumParties)
	for p := 0; p < sc.Spec.NumParties; p++ {
		windows, err := PartyWindows(sc, p)
		if err != nil {
			t.Fatal(err)
		}
		train, test, err := windows.PartyWindow(0)
		if err != nil {
			t.Fatal(err)
		}
		party := &fl.Party{ID: p, Train: train, Test: test}
		srv, err := fl.NewPartyServer("127.0.0.1:0", party, sc.Spec.NumClasses, tensor.NewRNG(uint64(p)+99))
		if err != nil {
			t.Fatal(err)
		}
		srv.SetWindowProvider(windows)
		t.Cleanup(func() { srv.Close() })
		addrs[p] = srv.Addr()
	}
	tr, err := NewTCPTransport(addrs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// runAll drives a fresh runtime over the whole stream.
func runAll(t *testing.T, tr Transport, opts Options) *Runtime {
	t.Helper()
	rt, err := NewRuntime(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < opts.Windows; w++ {
		if _, err := rt.RunWindow(w); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}
	return rt
}
