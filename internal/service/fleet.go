package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/shiftex"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// fanOut runs fn for every party on the shared fan-out machinery
// (FanOut), describing failed slots as "<op> party <id>" and counting each
// exhausted-retry failure into the fleet metrics.
func fanOut[T any](f *Fleet, fan FanoutConfig, ids []int, op string, fn func(id int) (T, error)) ([]T, []error) {
	return FanOut(fan, ids, op, func(id int) string { return fmt.Sprintf("party %d", id) }, f.metrics.PartyFailure, fn)
}

// Fleet adapts a Transport to the shiftex.Fleet contract the aggregator
// drives, adding bounded-parallel fan-out, per-call timeout, retry, and a
// round-completion quorum. All aggregation is performed in party/slot order
// so results are independent of scheduling.
type Fleet struct {
	transport  Transport
	arch       []int
	numClasses int
	numWindows int
	seed       uint64
	fan        FanoutConfig
	metrics    *Metrics

	mu     sync.Mutex
	window int
	// stale marks live parties whose last window advance failed: their
	// data is at the wrong window, so they are excluded from every call
	// until a later advance succeeds — silently mixing windows would
	// corrupt both training and detection.
	stale map[int]bool
}

var _ shiftex.Fleet = (*Fleet)(nil)

// NewFleet builds a fleet over a transport. arch is the full layer-width
// list; numWindows bounds SetWindow; seed roots every per-party stream.
func NewFleet(t Transport, arch []int, numClasses, numWindows int, seed uint64, fan FanoutConfig, m *Metrics) (*Fleet, error) {
	if t == nil {
		return nil, errors.New("service: nil transport")
	}
	if len(arch) < 3 {
		return nil, fmt.Errorf("service: arch needs >=3 widths, got %d", len(arch))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("service: need >=2 classes, got %d", numClasses)
	}
	if numWindows < 1 {
		return nil, fmt.Errorf("service: need >=1 window, got %d", numWindows)
	}
	ids := t.PartyIDs()
	if len(ids) == 0 {
		return nil, errors.New("service: transport has no parties")
	}
	// Party IDs must be 0..n-1: the aggregator indexes per-party slices
	// (histograms, detectors) by ID, exactly like the simulation harness.
	for i, id := range ids {
		if id != i {
			return nil, fmt.Errorf("service: party IDs must be contiguous 0..%d, got %v", len(ids)-1, ids)
		}
	}
	if m == nil {
		m = NewMetrics()
	}
	return &Fleet{
		transport:  t,
		arch:       append([]int(nil), arch...),
		numClasses: numClasses,
		numWindows: numWindows,
		seed:       seed,
		fan:        fan,
		metrics:    m,
		stale:      make(map[int]bool),
	}, nil
}

// checkFresh rejects calls to a party whose stream missed the last window
// advance.
func (f *Fleet) checkFresh(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stale[id] {
		return fmt.Errorf("service: party %d missed the advance to window %d; excluded until it catches up", id, f.window)
	}
	return nil
}

// Arch implements shiftex.Fleet.
func (f *Fleet) Arch() []int { return append([]int(nil), f.arch...) }

// NumParties implements shiftex.Fleet.
func (f *Fleet) NumParties() int { return len(f.transport.PartyIDs()) }

// PartyIDs implements shiftex.Fleet.
func (f *Fleet) PartyIDs() []int { return f.transport.PartyIDs() }

// NumWindows returns the stream length the fleet was configured with.
func (f *Fleet) NumWindows() int { return f.numWindows }

// Window returns the current stream window.
func (f *Fleet) Window() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.window
}

// InitialParams implements shiftex.Fleet with the same deterministic
// initialization the simulation harness uses.
func (f *Fleet) InitialParams() (tensor.Vector, error) {
	m, err := nn.NewMLP(f.arch, tensor.NewRNG(0x1234))
	if err != nil {
		return nil, err
	}
	return m.Params(), nil
}

// statsSeed derives the per-window root of the detector-subsampling
// streams. Non-zero by construction (0 would select the legacy party-local
// stream on remote servers).
func (f *Fleet) statsSeed(window int) uint64 {
	s := (f.seed ^ (uint64(window)+0x51)*0xbf58476d1ce4e5b9) | 1
	return s
}

// SetWindow implements shiftex.Fleet: it advances every party's stream.
// Parties that fail to advance are tolerated but marked stale — every call
// to them fails fast until a later advance succeeds, so a live party with
// previous-window data can never leak stale updates or statistics into the
// current window. The window itself only fails when no party advanced.
func (f *Fleet) SetWindow(w int) error {
	if w < 0 || w >= f.numWindows {
		return fmt.Errorf("service: window %d out of range [0,%d)", w, f.numWindows)
	}
	ids := f.transport.PartyIDs()
	_, errs := fanOut(f, f.fan, ids, "advance", func(id int) (struct{}, error) {
		return struct{}{}, f.transport.Advance(id, w)
	})
	ok := 0
	var joined []error
	f.mu.Lock()
	for i, id := range ids {
		if errs[i] == nil {
			ok++
			delete(f.stale, id)
		} else {
			f.stale[id] = true
			joined = append(joined, errs[i])
		}
	}
	if ok > 0 {
		f.window = w
	}
	f.mu.Unlock()
	if ok == 0 {
		return fmt.Errorf("service: no party advanced to window %d: %w", w, errors.Join(joined...))
	}
	return nil
}

// Round implements shiftex.Fleet: one synchronous federated round with
// straggler/failure tolerance. Updates aggregate in selection order; the
// round fails when fewer than the quorum of selected parties report.
func (f *Fleet) Round(params tensor.Vector, selected []int, cfg fl.TrainConfig) (tensor.Vector, []fl.Update, error) {
	if len(selected) == 0 {
		return nil, nil, errors.New("service: no parties selected")
	}
	start := time.Now()
	results, errs := fanOut(f, f.fan, selected, "train", func(id int) (fl.Update, error) {
		if err := f.checkFresh(id); err != nil {
			return fl.Update{}, err
		}
		return f.transport.Train(id, f.arch, params, cfg)
	})
	updates := make([]fl.Update, 0, len(selected))
	var failures []error
	for i := range results {
		if errs[i] != nil {
			failures = append(failures, errs[i])
			continue
		}
		updates = append(updates, results[i])
	}
	need := f.fan.QuorumNeed(len(selected))
	if len(updates) < need {
		f.metrics.RoundFailed()
		return nil, nil, fmt.Errorf("service: round below quorum: %d of %d updates (need %d): %w",
			len(updates), len(selected), need, errors.Join(failures...))
	}
	agg, err := fl.FedAvg(updates)
	if err != nil {
		f.metrics.RoundFailed()
		return nil, nil, err
	}
	f.metrics.ObserveRound(time.Since(start), len(selected)-len(updates))
	return agg, updates, nil
}

// StatsAll implements shiftex.Fleet: statistics from every party in ID
// order, collected on the worker pool. The subsampling seed is a pure
// function of (fleet seed, window, party), so both transports observe
// identically. Stats calls are NOT retried: the party-side detector
// advances its previous-window state on every Observe, so re-running it
// after a fleet-side timeout whose server-side call actually completed
// would make the detector compare a window against itself. A party that
// fails once is skipped for the window (treated stable — the safe
// default), which leaves its detector state consistent either way.
func (f *Fleet) StatsAll(params tensor.Vector) ([]detect.PartyStats, error) {
	seed := f.statsSeed(f.Window())
	ids := f.transport.PartyIDs()
	noRetry := f.fan
	noRetry.Retries = 0
	results, errs := fanOut(f, noRetry, ids, "stats", func(id int) (detect.PartyStats, error) {
		if err := f.checkFresh(id); err != nil {
			return detect.PartyStats{}, err
		}
		return f.transport.Stats(id, f.arch, params, f.numClasses, seed)
	})
	out := make([]detect.PartyStats, 0, len(ids))
	var joined []error
	for i := range results {
		if errs[i] != nil {
			joined = append(joined, errs[i])
			continue
		}
		out = append(out, results[i])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("service: no party reported statistics: %w", errors.Join(joined...))
	}
	return out, nil
}

// EvalAssignment implements shiftex.Fleet: per-party accuracy under each
// party's own model, averaged in party order. Unreachable parties are
// skipped; an error is returned only when nobody is evaluable.
func (f *Fleet) EvalAssignment(paramsFor func(partyID int) tensor.Vector) (float64, error) {
	ids := f.transport.PartyIDs()
	type evalRes struct {
		acc float64
		ok  bool
	}
	results, errs := fanOut(f, f.fan, ids, "eval", func(id int) (evalRes, error) {
		if err := f.checkFresh(id); err != nil {
			return evalRes{}, err
		}
		params := paramsFor(id)
		if params == nil {
			return evalRes{}, nil // no model assigned; skip silently
		}
		acc, err := f.transport.Eval(id, f.arch, params)
		if err != nil {
			return evalRes{}, err
		}
		return evalRes{acc: acc, ok: true}, nil
	})
	var total float64
	var counted int
	var joined []error
	for i := range results {
		if errs[i] != nil {
			joined = append(joined, errs[i])
			continue
		}
		if results[i].ok {
			total += results[i].acc
			counted++
		}
	}
	if counted == 0 {
		return 0, fmt.Errorf("service: no party evaluable: %w", errors.Join(joined...))
	}
	return total / float64(counted), nil
}

// LocalFineTune implements shiftex.Fleet. A party that cannot fine-tune
// (dropped, timed out after retries) keeps its previous parameters rather
// than failing the whole window — personalization is best-effort in a live
// federation.
func (f *Fleet) LocalFineTune(partyID int, params tensor.Vector, cfg fl.TrainConfig) (tensor.Vector, error) {
	u, err := Attempt(f.fan, func() (fl.Update, error) {
		if err := f.checkFresh(partyID); err != nil {
			return fl.Update{}, err
		}
		return f.transport.Train(partyID, f.arch, params, cfg)
	})
	if err != nil {
		f.metrics.PartyFailure()
		return params, nil
	}
	return u.Params, nil
}

// PartyHists implements shiftex.Fleet. A dropped party contributes a
// uniform histogram — the least-informative deterministic fallback, which
// leaves FLIPS clustering well defined.
func (f *Fleet) PartyHists() []stats.Histogram {
	ids := f.transport.PartyIDs()
	results, errs := fanOut(f, f.fan, ids, "hist", func(id int) (stats.Histogram, error) {
		if err := f.checkFresh(id); err != nil {
			return nil, err
		}
		return f.transport.Hist(id, f.numClasses)
	})
	out := make([]stats.Histogram, len(ids))
	for i := range results {
		if errs[i] != nil || len(results[i]) == 0 {
			h := make(stats.Histogram, f.numClasses)
			for c := range h {
				h[c] = 1 / float64(f.numClasses)
			}
			out[i] = h
			continue
		}
		out[i] = results[i]
	}
	return out
}
