package service

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/fl"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// faultTransport wraps a Transport and fails configured parties/ops.
type faultTransport struct {
	Transport

	mu sync.Mutex
	// failTrain maps partyID → how many further Train calls fail.
	failTrain map[int]int
	// dead parties fail every call.
	dead map[int]bool
	// hang delays Train forever for these parties (until test end).
	hang map[int]bool
	// failAdvance parties stay alive but reject window advances.
	failAdvance map[int]bool
	// trainCalls counts Train attempts per party.
	trainCalls map[int]int
}

func newFaultTransport(inner Transport) *faultTransport {
	return &faultTransport{
		Transport:   inner,
		failTrain:   make(map[int]int),
		dead:        make(map[int]bool),
		hang:        make(map[int]bool),
		failAdvance: make(map[int]bool),
		trainCalls:  make(map[int]int),
	}
}

func (f *faultTransport) Train(partyID int, arch []int, global tensor.Vector, cfg fl.TrainConfig) (fl.Update, error) {
	f.mu.Lock()
	f.trainCalls[partyID]++
	if f.dead[partyID] {
		f.mu.Unlock()
		return fl.Update{}, fmt.Errorf("party %d is dead", partyID)
	}
	if f.hang[partyID] {
		f.mu.Unlock()
		time.Sleep(10 * time.Second)
		return fl.Update{}, errors.New("hung call released")
	}
	if n := f.failTrain[partyID]; n > 0 {
		f.failTrain[partyID] = n - 1
		f.mu.Unlock()
		return fl.Update{}, fmt.Errorf("party %d transient failure", partyID)
	}
	f.mu.Unlock()
	return f.Transport.Train(partyID, arch, global, cfg)
}

func (f *faultTransport) Stats(partyID int, arch []int, encoder tensor.Vector, numClasses int, seed uint64) (detect.PartyStats, error) {
	f.mu.Lock()
	deadParty := f.dead[partyID]
	f.mu.Unlock()
	if deadParty {
		return detect.PartyStats{}, fmt.Errorf("party %d is dead", partyID)
	}
	return f.Transport.Stats(partyID, arch, encoder, numClasses, seed)
}

func (f *faultTransport) Eval(partyID int, arch []int, params tensor.Vector) (float64, error) {
	f.mu.Lock()
	deadParty := f.dead[partyID]
	f.mu.Unlock()
	if deadParty {
		return 0, fmt.Errorf("party %d is dead", partyID)
	}
	return f.Transport.Eval(partyID, arch, params)
}

func (f *faultTransport) Hist(partyID, numClasses int) (stats.Histogram, error) {
	f.mu.Lock()
	deadParty := f.dead[partyID]
	f.mu.Unlock()
	if deadParty {
		return nil, fmt.Errorf("party %d is dead", partyID)
	}
	return f.Transport.Hist(partyID, numClasses)
}

func (f *faultTransport) Advance(partyID, w int) error {
	f.mu.Lock()
	blocked := f.dead[partyID] || f.failAdvance[partyID]
	f.mu.Unlock()
	if blocked {
		return fmt.Errorf("party %d cannot advance", partyID)
	}
	return f.Transport.Advance(partyID, w)
}

func (f *faultTransport) kill(partyID int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dead[partyID] = true
}

func testFleet(t *testing.T, tr Transport, fan FanoutConfig) *Fleet {
	t.Helper()
	sc := testScenario(t, 5)
	_ = sc
	opts := testOptions(sc, 5)
	fleet, err := NewFleet(tr, opts.Arch, opts.NumClasses, opts.Windows, opts.Seed, fan, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

func scenarioTransport(t *testing.T) *LocalTransport {
	t.Helper()
	sc := testScenario(t, 5)
	tr, err := LocalTransportForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func trainCfg() fl.TrainConfig {
	return fl.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 3}
}

func TestRoundQuorum(t *testing.T) {
	ft := newFaultTransport(scenarioTransport(t))
	ft.kill(1)
	ft.kill(2)

	fleet := testFleet(t, ft, FanoutConfig{Quorum: 0.5})
	params, err := fleet.InitialParams()
	if err != nil {
		t.Fatal(err)
	}

	// 3 of 5 selected alive ≥ 50% quorum: round completes on survivors.
	next, updates, err := fleet.Round(params, []int{0, 1, 2, 3, 4}, trainCfg())
	if err != nil {
		t.Fatalf("round above quorum failed: %v", err)
	}
	if len(updates) != 3 || next == nil {
		t.Fatalf("got %d updates, want 3", len(updates))
	}
	for _, u := range updates {
		if u.PartyID == 1 || u.PartyID == 2 {
			t.Fatalf("dead party %d reported an update", u.PartyID)
		}
	}

	// 1 of 3 selected alive < 50% quorum: round fails, naming the parties.
	_, _, err = fleet.Round(params, []int{0, 1, 2}, trainCfg())
	if err == nil {
		t.Fatal("round below quorum should fail")
	}
	if !strings.Contains(err.Error(), "quorum") || !strings.Contains(err.Error(), "party 1") {
		t.Fatalf("quorum error should name the failed parties, got: %v", err)
	}
}

func TestRoundStrictQuorumDefault(t *testing.T) {
	ft := newFaultTransport(scenarioTransport(t))
	ft.kill(4)
	fleet := testFleet(t, ft, FanoutConfig{}) // Quorum 0 = all must report
	params, err := fleet.InitialParams()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fleet.Round(params, []int{3, 4}, trainCfg()); err == nil {
		t.Fatal("strict quorum should fail when any party drops")
	}
	if _, _, err := fleet.Round(params, []int{0, 3}, trainCfg()); err != nil {
		t.Fatalf("all-alive round failed: %v", err)
	}
}

func TestRoundRetriesTransientFailure(t *testing.T) {
	ft := newFaultTransport(scenarioTransport(t))
	ft.mu.Lock()
	ft.failTrain[0] = 2 // first two attempts fail, third succeeds
	ft.mu.Unlock()

	fleet := testFleet(t, ft, FanoutConfig{Retries: 2})
	params, err := fleet.InitialParams()
	if err != nil {
		t.Fatal(err)
	}
	_, updates, err := fleet.Round(params, []int{0, 1}, trainCfg())
	if err != nil {
		t.Fatalf("round with transient failure should recover: %v", err)
	}
	if len(updates) != 2 {
		t.Fatalf("got %d updates, want 2", len(updates))
	}
	ft.mu.Lock()
	calls := ft.trainCalls[0]
	ft.mu.Unlock()
	if calls != 3 {
		t.Fatalf("party 0 trained %d times, want 3 (2 failures + 1 success)", calls)
	}
}

func TestRoundTimeoutCutsStraggler(t *testing.T) {
	ft := newFaultTransport(scenarioTransport(t))
	ft.mu.Lock()
	ft.hang[1] = true
	ft.mu.Unlock()

	fleet := testFleet(t, ft, FanoutConfig{Timeout: 200 * time.Millisecond, Quorum: 0.5})
	params, err := fleet.InitialParams()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, updates, err := fleet.Round(params, []int{0, 1}, trainCfg())
	if err != nil {
		t.Fatalf("round should tolerate the straggler under quorum: %v", err)
	}
	if len(updates) != 1 || updates[0].PartyID != 0 {
		t.Fatalf("expected only party 0's update, got %+v", updates)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("straggler stalled the round for %s", elapsed)
	}
}

func TestSetWindowToleratesDeadParty(t *testing.T) {
	ft := newFaultTransport(scenarioTransport(t))
	ft.kill(0)
	fleet := testFleet(t, ft, FanoutConfig{})
	if err := fleet.SetWindow(1); err != nil {
		t.Fatalf("SetWindow should tolerate one dead party: %v", err)
	}
	if fleet.Window() != 1 {
		t.Fatalf("window = %d, want 1", fleet.Window())
	}
	if err := fleet.SetWindow(99); err == nil {
		t.Fatal("out-of-range window should fail")
	}
}

// TestStaleAdvanceExcludesParty: a live party that misses a window advance
// must not serve stale-window data — it is excluded from rounds until an
// advance succeeds again.
func TestStaleAdvanceExcludesParty(t *testing.T) {
	ft := newFaultTransport(scenarioTransport(t))
	ft.mu.Lock()
	ft.failAdvance[1] = true
	ft.mu.Unlock()

	fleet := testFleet(t, ft, FanoutConfig{Quorum: 0.5})
	params, err := fleet.InitialParams()
	if err != nil {
		t.Fatal(err)
	}

	if err := fleet.SetWindow(1); err != nil {
		t.Fatalf("SetWindow should tolerate one failed advance: %v", err)
	}
	// Party 1 is alive and would happily train — on window-0 data. It must
	// be excluded.
	_, updates, err := fleet.Round(params, []int{0, 1}, trainCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 1 || updates[0].PartyID != 0 {
		t.Fatalf("stale party leaked into the round: %+v", updates)
	}
	sts, err := fleet.StatsAll(params)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if st.PartyID == 1 {
			t.Fatal("stale party leaked into statistics")
		}
	}

	// Once the party advances again it rejoins.
	ft.mu.Lock()
	ft.failAdvance[1] = false
	ft.mu.Unlock()
	if err := fleet.SetWindow(2); err != nil {
		t.Fatal(err)
	}
	_, updates, err = fleet.Round(params, []int{0, 1}, trainCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 2 {
		t.Fatalf("recovered party did not rejoin: %+v", updates)
	}
}

func TestPartyHistsFallbackUniform(t *testing.T) {
	ft := newFaultTransport(scenarioTransport(t))
	ft.kill(2)
	fleet := testFleet(t, ft, FanoutConfig{})
	hists := fleet.PartyHists()
	if len(hists) != 8 {
		t.Fatalf("got %d histograms, want 8", len(hists))
	}
	for c, v := range hists[2] {
		if v != 1/float64(len(hists[2])) {
			t.Fatalf("dead party histogram not uniform at class %d: %g", c, v)
		}
	}
	// A live party's histogram reflects its data, not the fallback.
	uniform := true
	for _, v := range hists[0] {
		if v != hists[0][0] {
			uniform = false
		}
	}
	if uniform {
		t.Error("live party histogram unexpectedly uniform")
	}
}

func TestLocalFineTuneFallsBackToInput(t *testing.T) {
	ft := newFaultTransport(scenarioTransport(t))
	ft.kill(3)
	fleet := testFleet(t, ft, FanoutConfig{})
	params, err := fleet.InitialParams()
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := fleet.LocalFineTune(3, params, trainCfg())
	if err != nil {
		t.Fatalf("fine-tune of dead party should not error: %v", err)
	}
	if &tuned[0] != &params[0] {
		t.Fatal("dead party fine-tune should return the input parameters")
	}
}

func TestNewFleetValidation(t *testing.T) {
	tr := scenarioTransport(t)
	if _, err := NewFleet(nil, []int{4, 3, 2}, 2, 1, 1, FanoutConfig{}, nil); err == nil {
		t.Error("nil transport should fail")
	}
	if _, err := NewFleet(tr, []int{4, 2}, 2, 1, 1, FanoutConfig{}, nil); err == nil {
		t.Error("short arch should fail")
	}
	if _, err := NewFleet(tr, []int{4, 3, 2}, 1, 1, 1, FanoutConfig{}, nil); err == nil {
		t.Error("single class should fail")
	}
	if _, err := NewFleet(tr, []int{4, 3, 2}, 2, 0, 1, FanoutConfig{}, nil); err == nil {
		t.Error("zero windows should fail")
	}
	empty := NewLocalTransport()
	if _, err := NewFleet(empty, []int{4, 3, 2}, 2, 1, 1, FanoutConfig{}, nil); err == nil {
		t.Error("empty transport should fail")
	}
}

func TestQuorumNeed(t *testing.T) {
	tests := []struct {
		q    float64
		n    int
		want int
	}{
		{0, 4, 4},    // default: all
		{1, 4, 4},    // explicit all
		{0.5, 4, 2},  // half
		{0.5, 5, 3},  // ceil
		{0.01, 8, 1}, // floor at 1
		{2.0, 4, 4},  // out of range → all
	}
	for _, tt := range tests {
		if got := (FanoutConfig{Quorum: tt.q}).QuorumNeed(tt.n); got != tt.want {
			t.Errorf("quorumNeed(q=%g, n=%d) = %d, want %d", tt.q, tt.n, got, tt.want)
		}
	}
}
