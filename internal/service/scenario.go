package service

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/fl"
)

// ScenarioSpec derives the shared workload spec both sides of a deployment
// build from the same flags. It is the FMoW setting resized; because the
// scenario is regenerated deterministically from (spec, seed) on every
// participant, aggregator and parties agree on the data without any of it
// crossing the wire.
func ScenarioSpec(parties, samplesPerParty, testPerParty, windows int) dataset.Spec {
	spec := dataset.FMoWSpec()
	spec.NumParties = parties
	spec.SamplesPerParty = samplesPerParty
	spec.TestPerParty = testPerParty
	spec.Windows = windows
	return spec
}

// DefaultArch returns the service model architecture for a spec with the
// given hidden widths (default 32-16).
func DefaultArch(spec dataset.Spec, hidden []int) []int {
	if len(hidden) == 0 {
		hidden = []int{32, 16}
	}
	arch := make([]int, 0, len(hidden)+2)
	arch = append(arch, spec.InputDim)
	arch = append(arch, hidden...)
	arch = append(arch, spec.NumClasses)
	return arch
}

// scenarioWindows adapts one party's slice of a scenario to
// fl.WindowProvider.
type scenarioWindows struct {
	sc    *dataset.Scenario
	party int
}

var _ fl.WindowProvider = scenarioWindows{}

func (s scenarioWindows) NumWindows() int { return len(s.sc.Windows) }

func (s scenarioWindows) PartyWindow(w int) ([]dataset.Example, []dataset.Example, error) {
	if w < 0 || w >= len(s.sc.Windows) {
		return nil, nil, fmt.Errorf("service: window %d out of range [0,%d)", w, len(s.sc.Windows))
	}
	pw := s.sc.Windows[w][s.party]
	return pw.Train, pw.Test, nil
}

// PartyWindows returns the window stream of one party of a scenario.
func PartyWindows(sc *dataset.Scenario, party int) (fl.WindowProvider, error) {
	if sc == nil {
		return nil, fmt.Errorf("service: nil scenario")
	}
	if party < 0 || party >= sc.Spec.NumParties {
		return nil, fmt.Errorf("service: party %d out of range [0,%d)", party, sc.Spec.NumParties)
	}
	return scenarioWindows{sc: sc, party: party}, nil
}

// LocalTransportForScenario builds an in-process fleet serving every party
// of a scenario.
func LocalTransportForScenario(sc *dataset.Scenario) (*LocalTransport, error) {
	t := NewLocalTransport()
	for p := 0; p < sc.Spec.NumParties; p++ {
		windows, err := PartyWindows(sc, p)
		if err != nil {
			return nil, err
		}
		if err := t.AddParty(p, sc.Spec.NumClasses, windows); err != nil {
			return nil, err
		}
	}
	return t, nil
}
