package service

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCheckpointResumeParity enforces the satellite contract: save →
// restore → continue produces bit-identical decisions to an uninterrupted
// run on the same seed (the same discipline as
// TestGridParitySerialVsParallel). The fleet survives the "crash" — parties
// keep their stream and detector state, as they do when a real aggregator
// process dies and restarts.
func TestCheckpointResumeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint parity is slow")
	}
	const seed = 7

	// Reference: uninterrupted run.
	scRef := testScenario(t, seed)
	localRef, err := LocalTransportForScenario(scRef)
	if err != nil {
		t.Fatal(err)
	}
	rtRef := runAll(t, localRef, testOptions(scRef, seed))

	// Interrupted run: same fleet object across the restart.
	sc := testScenario(t, seed)
	local, err := LocalTransportForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(sc, seed)
	opts.CheckpointPath = filepath.Join(t.TempDir(), "shiftex.ckpt.json")

	rt1, err := NewRuntime(local, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Run bootstrap + first adaptive window, then "crash".
	for w := 0; w < 2; w++ {
		if _, err := rt1.RunWindow(w); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}

	rt2, err := Resume(local, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.NextWindow(); got != 2 {
		t.Fatalf("resumed at window %d, want 2", got)
	}
	for w := rt2.NextWindow(); w < opts.Windows; w++ {
		if _, err := rt2.RunWindow(w); err != nil {
			t.Fatalf("resumed window %d: %v", w, err)
		}
	}

	recRef, recResumed := record(rtRef), record(rt2)
	if !reflect.DeepEqual(recRef, recResumed) {
		t.Errorf("resumed run diverges from uninterrupted run:\nuninterrupted: %+v\n      resumed: %+v",
			recRef, recResumed)
	}
	for _, id := range recRef.ExpertIDs {
		a, _ := rtRef.Aggregator().Registry().Get(id)
		b, ok := rt2.Aggregator().Registry().Get(id)
		if !ok {
			t.Errorf("expert %d missing after resume", id)
			continue
		}
		if !reflect.DeepEqual(a.Params, b.Params) {
			t.Errorf("expert %d parameters diverge after resume", id)
		}
		if !reflect.DeepEqual(a.Memory, b.Memory) {
			t.Errorf("expert %d latent memory diverges after resume", id)
		}
	}
}

// TestResumeWindowsFallback: a resume that does not specify a stream
// length inherits the checkpointed one instead of truncating the run.
func TestResumeWindowsFallback(t *testing.T) {
	sc := testScenario(t, 11)
	local, err := LocalTransportForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(sc, 11)
	opts.CheckpointPath = filepath.Join(t.TempDir(), "ckpt.json")
	rt1, err := NewRuntime(local, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt1.RunWindow(0); err != nil {
		t.Fatal(err)
	}

	resumeOpts := opts
	resumeOpts.Windows = 0 // caller did not choose a length
	rt2, err := Resume(local, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Windows() != opts.Windows {
		t.Fatalf("resumed stream length %d, want checkpointed %d", rt2.Windows(), opts.Windows)
	}
	if rt2.NextWindow() != 1 {
		t.Fatalf("resumed at %d, want 1", rt2.NextWindow())
	}
}

func TestCheckpointFileValidation(t *testing.T) {
	dir := t.TempDir()

	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing checkpoint should fail")
	}

	garbled := filepath.Join(dir, "garbled.json")
	if err := os.WriteFile(garbled, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(garbled); err == nil {
		t.Error("garbled checkpoint should fail")
	}

	wrongVersion := filepath.Join(dir, "wrong-version.json")
	if err := os.WriteFile(wrongVersion, []byte(`{"schemaVersion":999,"windowsDone":1,"arch":[4,3,2]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(wrongVersion); err == nil {
		t.Error("future schema version should fail")
	}

	if err := SaveCheckpoint(filepath.Join(dir, "nested", "nope.json"), &Checkpoint{}); err == nil {
		t.Error("save into missing directory should fail")
	}
}
