package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/adapt"
)

// TestCheckpointResumeParity enforces the satellite contract: save →
// restore → continue produces bit-identical decisions to an uninterrupted
// run on the same seed (the same discipline as
// TestGridParitySerialVsParallel). The fleet survives the "crash" — parties
// keep their stream and detector state, as they do when a real aggregator
// process dies and restarts.
func TestCheckpointResumeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint parity is slow")
	}
	const seed = 7

	// Reference: uninterrupted run.
	scRef := testScenario(t, seed)
	localRef, err := LocalTransportForScenario(scRef)
	if err != nil {
		t.Fatal(err)
	}
	rtRef := runAll(t, localRef, testOptions(scRef, seed))

	// Interrupted run: same fleet object across the restart.
	sc := testScenario(t, seed)
	local, err := LocalTransportForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(sc, seed)
	opts.CheckpointPath = filepath.Join(t.TempDir(), "shiftex.ckpt.json")

	rt1, err := NewRuntime(local, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Run bootstrap + first adaptive window, then "crash".
	for w := 0; w < 2; w++ {
		if _, err := rt1.RunWindow(w); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}

	rt2, err := Resume(local, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.NextWindow(); got != 2 {
		t.Fatalf("resumed at window %d, want 2", got)
	}
	for w := rt2.NextWindow(); w < opts.Windows; w++ {
		if _, err := rt2.RunWindow(w); err != nil {
			t.Fatalf("resumed window %d: %v", w, err)
		}
	}

	recRef, recResumed := record(rtRef), record(rt2)
	if !reflect.DeepEqual(recRef, recResumed) {
		t.Errorf("resumed run diverges from uninterrupted run:\nuninterrupted: %+v\n      resumed: %+v",
			recRef, recResumed)
	}
	for _, id := range recRef.ExpertIDs {
		a, _ := rtRef.Aggregator().Registry().Get(id)
		b, ok := rt2.Aggregator().Registry().Get(id)
		if !ok {
			t.Errorf("expert %d missing after resume", id)
			continue
		}
		if !reflect.DeepEqual(a.Params, b.Params) {
			t.Errorf("expert %d parameters diverge after resume", id)
		}
		if !reflect.DeepEqual(a.Memory, b.Memory) {
			t.Errorf("expert %d latent memory diverges after resume", id)
		}
	}
}

// TestLegacyCheckpointResume: a schema-1 checkpoint — written before the
// adaptation-policy axis existed, so it carries no policy field — still
// loads, resolves to the default policy, and resumes bit-identically to an
// uninterrupted run.
func TestLegacyCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint parity is slow")
	}
	const seed = 13

	// Reference: uninterrupted run.
	scRef := testScenario(t, seed)
	localRef, err := LocalTransportForScenario(scRef)
	if err != nil {
		t.Fatal(err)
	}
	rtRef := runAll(t, localRef, testOptions(scRef, seed))

	// Interrupted run: bootstrap + one adaptive window, then "crash".
	sc := testScenario(t, seed)
	local, err := LocalTransportForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(sc, seed)
	opts.CheckpointPath = filepath.Join(t.TempDir(), "legacy.ckpt.json")
	rt1, err := NewRuntime(local, opts)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2; w++ {
		if _, err := rt1.RunWindow(w); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}

	// Downgrade the file to the v1 layout: no policy key, schemaVersion 1 —
	// exactly what a pre-policy daemon wrote. The surgery keeps every other
	// field's raw bytes (a float64 round trip would corrupt the uint64 RNG
	// state words).
	data, err := os.ReadFile(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if string(m["policy"]) != `"`+adapt.DefaultPolicyName+`"` {
		t.Fatalf("fresh checkpoint records policy %s, want %q", m["policy"], adapt.DefaultPolicyName)
	}
	delete(m, "policy")
	delete(m, "policyVersion")
	m["schemaVersion"] = json.RawMessage("1")
	legacy, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opts.CheckpointPath, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	cp, err := LoadCheckpoint(opts.CheckpointPath)
	if err != nil {
		t.Fatalf("legacy checkpoint should load: %v", err)
	}
	if cp.SchemaVersion != 1 || cp.Policy != "" {
		t.Fatalf("legacy checkpoint decoded as version=%d policy=%q", cp.SchemaVersion, cp.Policy)
	}
	if cp.PolicyName() != adapt.DefaultPolicyName {
		t.Fatalf("legacy checkpoint resolves to policy %q, want %q", cp.PolicyName(), adapt.DefaultPolicyName)
	}

	// A conflicting explicit policy must be rejected, not silently applied.
	badOpts := opts
	badOpts.Policy = "exact-assign"
	if _, err := ResumeFrom(local, cp, badOpts); err == nil {
		t.Fatal("resume under a different policy than the checkpoint's should fail")
	}

	rt2, err := Resume(local, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.Aggregator().PolicyName(); got != adapt.DefaultPolicyName {
		t.Fatalf("legacy resume runs policy %q, want %q", got, adapt.DefaultPolicyName)
	}
	for w := rt2.NextWindow(); w < opts.Windows; w++ {
		if _, err := rt2.RunWindow(w); err != nil {
			t.Fatalf("resumed window %d: %v", w, err)
		}
	}

	recRef, recResumed := record(rtRef), record(rt2)
	if !reflect.DeepEqual(recRef, recResumed) {
		t.Errorf("legacy resume diverges from uninterrupted run:\nuninterrupted: %+v\n      resumed: %+v",
			recRef, recResumed)
	}

	// The re-written checkpoint from the resumed run is back on the current
	// schema, carrying the policy forward.
	cp2, err := LoadCheckpoint(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.SchemaVersion != CheckpointSchemaVersion || cp2.Policy != adapt.DefaultPolicyName {
		t.Fatalf("resumed checkpoint has version=%d policy=%q, want %d/%q",
			cp2.SchemaVersion, cp2.Policy, CheckpointSchemaVersion, adapt.DefaultPolicyName)
	}
}

// TestResumeWindowsFallback: a resume that does not specify a stream
// length inherits the checkpointed one instead of truncating the run.
func TestResumeWindowsFallback(t *testing.T) {
	sc := testScenario(t, 11)
	local, err := LocalTransportForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(sc, 11)
	opts.CheckpointPath = filepath.Join(t.TempDir(), "ckpt.json")
	rt1, err := NewRuntime(local, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt1.RunWindow(0); err != nil {
		t.Fatal(err)
	}

	resumeOpts := opts
	resumeOpts.Windows = 0 // caller did not choose a length
	rt2, err := Resume(local, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Windows() != opts.Windows {
		t.Fatalf("resumed stream length %d, want checkpointed %d", rt2.Windows(), opts.Windows)
	}
	if rt2.NextWindow() != 1 {
		t.Fatalf("resumed at %d, want 1", rt2.NextWindow())
	}
}

func TestCheckpointFileValidation(t *testing.T) {
	dir := t.TempDir()

	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing checkpoint should fail")
	}

	garbled := filepath.Join(dir, "garbled.json")
	if err := os.WriteFile(garbled, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(garbled); err == nil {
		t.Error("garbled checkpoint should fail")
	}

	wrongVersion := filepath.Join(dir, "wrong-version.json")
	if err := os.WriteFile(wrongVersion, []byte(`{"schemaVersion":999,"windowsDone":1,"arch":[4,3,2]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(wrongVersion); err == nil {
		t.Error("future schema version should fail")
	}

	futurePolicy := filepath.Join(dir, "future-policy.json")
	if err := os.WriteFile(futurePolicy, []byte(`{"schemaVersion":2,"policyVersion":999,"windowsDone":1,"arch":[4,3,2]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(futurePolicy); err == nil {
		t.Error("future stage-contract version should fail")
	}

	if err := SaveCheckpoint(filepath.Join(dir, "nested", "nope.json"), &Checkpoint{}); err == nil {
		t.Error("save into missing directory should fail")
	}
}
