package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/httpapi"
)

func TestObservabilityEndpoints(t *testing.T) {
	sc := testScenario(t, 3)
	local, err := LocalTransportForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(local, testOptions(sc, 3))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Before any window: healthy, bootstrapping.
	code, body := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health["status"] != "ok" || health["phase"] != "bootstrapping" {
		t.Fatalf("unexpected health: %v", health)
	}

	if _, err := rt.RunWindow(0); err != nil {
		t.Fatal(err)
	}

	code, body = get("/v1/state")
	if code != http.StatusOK {
		t.Fatalf("/v1/state = %d, want 200", code)
	}
	var state httpapi.State
	if err := json.Unmarshal([]byte(body), &state); err != nil {
		t.Fatalf("/v1/state not JSON: %v\n%s", err, body)
	}
	if state.SchemaVersion != httpapi.SchemaVersion || state.Daemon != "aggregator" || state.Aggregator == nil {
		t.Fatalf("state envelope wrong: %s", body)
	}
	agg := state.Aggregator
	if agg.WindowsDone != 1 || len(agg.Experts) != 1 || len(agg.Assignments) != sc.Spec.NumParties {
		t.Fatalf("unexpected state after bootstrap: %s", body)
	}
	if agg.Epsilon <= 0 {
		t.Fatalf("epsilon not calibrated after bootstrap: %s", body)
	}

	// The pre-versioning alias answers the same payload, flagged deprecated.
	resp, err := http.Get(srv.URL + "/state")
	if err != nil {
		t.Fatal(err)
	}
	aliasBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("/state alias missing Deprecation header")
	}
	var aliasState httpapi.State
	if err := json.Unmarshal(aliasBody, &aliasState); err != nil || aliasState.Daemon != "aggregator" {
		t.Fatalf("/state alias payload diverged: %v\n%s", err, aliasBody)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	for _, metric := range []string{
		"shiftex_rounds_total", "shiftex_windows_completed", "shiftex_experts",
		"shiftex_round_latency_seconds", "shiftex_shift_events_total",
		"shiftex_party_failures_total",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
	if !strings.Contains(body, "shiftex_windows_completed 1") {
		t.Errorf("window count not exported:\n%s", body)
	}
	if !strings.Contains(body, "shiftex_rounds_total 4") {
		t.Errorf("4 bootstrap rounds should be counted:\n%s", body)
	}

	// /healthz reflects progress (via the v1 route).
	_, body = get("/v1/healthz")
	if !strings.Contains(body, `"phase": "adapting"`) {
		t.Errorf("health phase should be adapting after bootstrap: %s", body)
	}

	// The JSON metrics form shares the schema envelope.
	code, body = get("/v1/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/v1/metrics?format=json = %d, want 200", code)
	}
	var payload httpapi.MetricsPayload
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, body)
	}
	if payload.SchemaVersion != httpapi.SchemaVersion || payload.Daemon != "aggregator" || len(payload.Metrics) == 0 {
		t.Fatalf("metrics payload wrong: %s", body)
	}

	// Unknown routes answer 404 with the live /v1 surface.
	code, body = get("/status")
	if code != http.StatusNotFound {
		t.Fatalf("/status = %d, want 404", code)
	}
	var e httpapi.ErrorBody
	if err := json.Unmarshal([]byte(body), &e); err != nil || len(e.Routes) == 0 {
		t.Fatalf("404 should list live routes: %s", body)
	}
}
