package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestObservabilityEndpoints(t *testing.T) {
	sc := testScenario(t, 3)
	local, err := LocalTransportForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(local, testOptions(sc, 3))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Before any window: healthy, bootstrapping.
	code, body := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health["status"] != "ok" || health["phase"] != "bootstrapping" {
		t.Fatalf("unexpected health: %v", health)
	}

	if _, err := rt.RunWindow(0); err != nil {
		t.Fatal(err)
	}

	code, body = get("/state")
	if code != http.StatusOK {
		t.Fatalf("/state = %d, want 200", code)
	}
	var state struct {
		Window      int            `json:"window"`
		WindowsDone int            `json:"windowsDone"`
		Experts     []int          `json:"experts"`
		Assignments map[string]int `json:"assignments"`
		Epsilon     float64        `json:"epsilon"`
	}
	if err := json.Unmarshal([]byte(body), &state); err != nil {
		t.Fatalf("/state not JSON: %v\n%s", err, body)
	}
	if state.WindowsDone != 1 || len(state.Experts) != 1 || len(state.Assignments) != sc.Spec.NumParties {
		t.Fatalf("unexpected state after bootstrap: %s", body)
	}
	if state.Epsilon <= 0 {
		t.Fatalf("epsilon not calibrated after bootstrap: %s", body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	for _, metric := range []string{
		"shiftex_rounds_total", "shiftex_windows_completed", "shiftex_experts",
		"shiftex_round_latency_seconds", "shiftex_shift_events_total",
		"shiftex_party_failures_total",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
	if !strings.Contains(body, "shiftex_windows_completed 1") {
		t.Errorf("window count not exported:\n%s", body)
	}
	if !strings.Contains(body, "shiftex_rounds_total 4") {
		t.Errorf("4 bootstrap rounds should be counted:\n%s", body)
	}

	// /healthz reflects progress.
	_, body = get("/healthz")
	if !strings.Contains(body, `"phase": "adapting"`) {
		t.Errorf("health phase should be adapting after bootstrap: %s", body)
	}
}
