package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/adapt"
	"repro/internal/shiftex"
)

// CheckpointSchemaVersion is bumped on any incompatible change to the
// checkpoint layout; Load refuses versions it does not understand. Version
// history:
//
//	1 — initial layout (implicitly the default adaptation policy)
//	2 — adds the adaptation-policy name; v1 files still load and resolve
//	    to the default policy, resuming bit-identically
const CheckpointSchemaVersion = 2

// checkpointLegacyVersion is the oldest schema Load still accepts.
const checkpointLegacyVersion = 1

// Checkpoint is the versioned on-disk snapshot of a runtime, written
// atomically after every completed window. It carries everything needed to
// resume the stream with bit-identical decisions: the protocol (config,
// adaptation policy, arch, seed), the position (windows done), and the
// full aggregator state including the RNG position. Party-side detector
// state lives with the parties and survives an aggregator restart on its
// own.
type Checkpoint struct {
	SchemaVersion int    `json:"schemaVersion"`
	Seed          uint64 `json:"seed"`
	Arch          []int  `json:"arch"`
	NumClasses    int    `json:"numClasses"`
	NumWindows    int    `json:"numWindows"`
	WindowsDone   int    `json:"windowsDone"` // next window to run
	// Policy is the adaptation policy the run executes (adapt registry
	// name); empty — every schema-1 checkpoint — means the default policy.
	Policy string `json:"policy,omitempty"`
	// PolicyVersion is the stage-contract version (adapt.PolicyVersion)
	// the run's policy was built under; 0 on schema-1 files. Load rejects
	// versions newer than this binary understands.
	PolicyVersion int                     `json:"policyVersion,omitempty"`
	Config        shiftex.Config          `json:"config"`
	Aggregator    shiftex.State           `json:"aggregator"`
	Reports       []*shiftex.WindowReport `json:"reports,omitempty"`
}

// PolicyName returns the checkpoint's adaptation policy, resolving the
// schema-1 empty field to the default.
func (cp *Checkpoint) PolicyName() string {
	if cp.Policy == "" {
		return adapt.DefaultPolicyName
	}
	return cp.Policy
}

// SaveCheckpoint writes the checkpoint via a temp file + rename so a crash
// mid-write never corrupts the previous good checkpoint.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	if cp.SchemaVersion == 0 {
		cp.SchemaVersion = CheckpointSchemaVersion
	}
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("service: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.json")
	if err != nil {
		return fmt.Errorf("service: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("service: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("service: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("service: commit checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("service: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("service: decode checkpoint %s: %w", path, err)
	}
	if cp.SchemaVersion < checkpointLegacyVersion || cp.SchemaVersion > CheckpointSchemaVersion {
		return nil, fmt.Errorf("service: checkpoint %s has schema version %d, want %d..%d",
			path, cp.SchemaVersion, checkpointLegacyVersion, CheckpointSchemaVersion)
	}
	if cp.PolicyVersion > adapt.PolicyVersion {
		return nil, fmt.Errorf("service: checkpoint %s was written under stage-contract version %d; this binary understands %d",
			path, cp.PolicyVersion, adapt.PolicyVersion)
	}
	if cp.WindowsDone < 1 {
		return nil, fmt.Errorf("service: checkpoint %s precedes bootstrap (windowsDone=%d)", path, cp.WindowsDone)
	}
	if len(cp.Arch) < 3 {
		return nil, fmt.Errorf("service: checkpoint %s has invalid arch %v", path, cp.Arch)
	}
	return &cp, nil
}
