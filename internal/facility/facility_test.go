package facility

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/tensor"
)

func uniformHist(n int) stats.Histogram { return stats.Uniform(n) }

func client(id int, emb ...float64) Client {
	return Client{ID: id, Embedding: tensor.Vector(emb), LabelHist: uniformHist(4)}
}

func TestValidate(t *testing.T) {
	in := &Instance{}
	if err := in.Validate(); err == nil {
		t.Fatal("empty instance should error")
	}
	in = &Instance{Clients: []Client{client(0, 1, 2)}, NewCost: -1}
	if err := in.Validate(); err == nil {
		t.Fatal("negative lambda should error")
	}
	in = &Instance{Clients: []Client{client(0, 1, 2), client(1, 1)}}
	if err := in.Validate(); err == nil {
		t.Fatal("mismatched embeddings should error")
	}
	in = &Instance{
		Clients:  []Client{client(0, 1, 2)},
		Existing: []Facility{{ID: 0, Signature: tensor.Vector{1}}},
	}
	if err := in.Validate(); err == nil {
		t.Fatal("mismatched facility signature should error")
	}
	in = &Instance{Clients: []Client{client(0, 1)}, CapacityMax: -1}
	if err := in.Validate(); err == nil {
		t.Fatal("negative capacity should error")
	}
}

func TestExactReusesCloseFacility(t *testing.T) {
	// One client sitting exactly on an existing facility: reuse must beat
	// opening a new expert whenever λ > 0.
	in := &Instance{
		Clients:  []Client{client(0, 1, 1)},
		Existing: []Facility{{ID: 0, Signature: tensor.Vector{1, 1}}},
		NewCost:  0.5,
	}
	a, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNew != 0 || a.Slots[0] != 0 {
		t.Fatalf("assignment = %+v", a)
	}
	if a.Cost != 0 {
		t.Fatalf("cost = %g", a.Cost)
	}
}

func TestExactOpensNewWhenFar(t *testing.T) {
	// Client far from the only existing facility and cheap new experts:
	// optimal solution opens a new one.
	in := &Instance{
		Clients:  []Client{client(0, 10, 10)},
		Existing: []Facility{{ID: 0, Signature: tensor.Vector{0, 0}}},
		NewCost:  0.1,
	}
	a, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNew != 1 {
		t.Fatalf("want a new facility, got %+v", a)
	}
	if math.Abs(a.Cost-0.1) > 1e-9 {
		t.Fatalf("cost = %g, want 0.1 (λ only)", a.Cost)
	}
}

func TestExactGroupsSimilarClients(t *testing.T) {
	// Two tight client groups, no existing facilities: the optimum is two
	// new facilities (one per group) when λ is moderate.
	in := &Instance{
		Clients: []Client{
			client(0, 0, 0), client(1, 0.1, 0),
			client(2, 10, 10), client(3, 10.1, 10),
		},
		NewCost: 0.5,
	}
	a, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNew != 2 {
		t.Fatalf("numNew = %d, want 2", a.NumNew)
	}
	if a.Slots[0] != a.Slots[1] || a.Slots[2] != a.Slots[3] || a.Slots[0] == a.Slots[2] {
		t.Fatalf("grouping wrong: %v", a.Slots)
	}
}

func TestExactLambdaControlsProliferation(t *testing.T) {
	// With a huge λ, everything should pile into one new facility even if
	// spread out (no existing facilities).
	in := &Instance{
		Clients: []Client{client(0, 0, 0), client(1, 3, 0), client(2, 6, 0)},
		NewCost: 1000,
	}
	a, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNew != 1 {
		t.Fatalf("huge λ should force 1 facility, got %d", a.NumNew)
	}
	// With λ = 0, every client gets its own facility (zero distance).
	in.NewCost = 0
	a, err = SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNew != 3 {
		t.Fatalf("free facilities should give 3, got %d", a.NumNew)
	}
}

func TestCapacityConstraint(t *testing.T) {
	in := &Instance{
		Clients:     []Client{client(0, 0, 0), client(1, 0, 0), client(2, 0, 0)},
		Existing:    []Facility{{ID: 0, Signature: tensor.Vector{0, 0}}},
		NewCost:     0.1,
		CapacityMax: 2,
	}
	a, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, s := range a.Slots {
		counts[s]++
	}
	for s, c := range counts {
		if c > 2 {
			t.Fatalf("slot %d overloaded: %d > 2", s, c)
		}
	}
}

func TestLabelImbalancePenalty(t *testing.T) {
	// Two clients with complementary skewed labels, equidistant from two
	// existing facilities. With μ large, the optimum co-locates them so the
	// cohort mixture is balanced.
	skewA := stats.Histogram{0.9, 0.1}
	skewB := stats.Histogram{0.1, 0.9}
	mk := func(id int, h stats.Histogram) Client {
		return Client{ID: id, Embedding: tensor.Vector{0, 0}, LabelHist: h}
	}
	in := &Instance{
		Clients: []Client{mk(0, skewA), mk(1, skewB)},
		Existing: []Facility{
			{ID: 0, Signature: tensor.Vector{0, 0}},
			{ID: 1, Signature: tensor.Vector{0, 0}},
		},
		LabelWeight: 10,
	}
	a, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Slots[0] != a.Slots[1] {
		t.Fatalf("μ penalty should co-locate complementary clients: %v", a.Slots)
	}
}

func TestExactSizeGuard(t *testing.T) {
	clients := make([]Client, MaxExactClients+1)
	for i := range clients {
		clients[i] = client(i, float64(i))
	}
	if _, err := SolveExact(&Instance{Clients: clients}); err == nil {
		t.Fatal("oversized exact instance should error")
	}
}

func TestGreedyMatchesEpsilonSemantics(t *testing.T) {
	// Client at distance² 4 from existing facility. ε = 1: open new.
	in := &Instance{
		Clients:  []Client{client(0, 2, 0)},
		Existing: []Facility{{ID: 0, Signature: tensor.Vector{0, 0}}},
		NewCost:  10, // even expensive new expert: ε forbids reuse
		Epsilon:  1,
	}
	a, err := SolveGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNew != 1 {
		t.Fatalf("ε should force new facility, got %+v", a)
	}
	// ε = 5: reuse.
	in.Epsilon = 5
	a, err = SolveGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNew != 0 {
		t.Fatalf("within-ε client should reuse, got %+v", a)
	}
}

func TestGreedyFeasibleAndCanonical(t *testing.T) {
	rng := tensor.NewRNG(3)
	clients := make([]Client, 12)
	for i := range clients {
		clients[i] = Client{ID: i, Embedding: rng.NormVec(3, 0, 3), LabelHist: uniformHist(4)}
	}
	in := &Instance{
		Clients:     clients,
		Existing:    []Facility{{ID: 0, Signature: rng.NormVec(3, 0, 3)}},
		NewCost:     1,
		CapacityMax: 5,
		Epsilon:     4,
	}
	a, err := SolveGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(a.Cost, 1) {
		t.Fatal("greedy cost infeasible")
	}
	// Canonical new slots: consecutive from len(existing).
	seen := map[int]bool{}
	maxSlot := 0
	for _, s := range a.Slots {
		seen[s] = true
		if s > maxSlot {
			maxSlot = s
		}
	}
	for s := len(in.Existing); s <= maxSlot; s++ {
		if !seen[s] {
			t.Fatalf("non-canonical slots: gap at %d in %v", s, a.Slots)
		}
	}
	// Capacity respected.
	counts := map[int]int{}
	for _, s := range a.Slots {
		counts[s]++
	}
	for s, c := range counts {
		if c > 5 {
			t.Fatalf("slot %d overloaded: %d", s, c)
		}
	}
}

func TestNewFacilityCentroid(t *testing.T) {
	in := &Instance{
		Clients: []Client{client(0, 0, 0), client(1, 2, 2)},
		NewCost: 0.1,
	}
	a, err := SolveGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNew < 1 {
		t.Fatalf("expected a new facility: %+v", a)
	}
	ctr, err := a.NewFacilityCentroid(in, a.Slots[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(ctr) != 2 {
		t.Fatalf("centroid = %v", ctr)
	}
	if _, err := a.NewFacilityCentroid(in, 999); err == nil {
		t.Fatal("empty slot should error")
	}
}

// Property: greedy is feasible and never beats the exact optimum.
func TestPropertyGreedyBoundedByExact(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(4) // 2..5 clients
		clients := make([]Client, n)
		for i := range clients {
			h := rng.Dirichlet(3, 1)
			clients[i] = Client{ID: i, Embedding: rng.NormVec(2, 0, 2), LabelHist: stats.Histogram(h)}
		}
		nExist := rng.Intn(3)
		existing := make([]Facility, nExist)
		for i := range existing {
			existing[i] = Facility{ID: i, Signature: rng.NormVec(2, 0, 2)}
		}
		in := &Instance{
			Clients:     clients,
			Existing:    existing,
			NewCost:     rng.Float64() * 2,
			LabelWeight: rng.Float64(),
		}
		exact, err := SolveExact(in)
		if err != nil {
			return false
		}
		greedy, err := SolveGreedy(in)
		if err != nil {
			return false
		}
		return greedy.Cost >= exact.Cost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cost is +Inf exactly for capacity violations.
func TestCostInfeasible(t *testing.T) {
	in := &Instance{
		Clients:     []Client{client(0, 0), client(1, 0)},
		NewCost:     1,
		CapacityMax: 1,
	}
	if c := Cost(in, []int{0, 0}); !math.IsInf(c, 1) {
		t.Fatalf("overloaded cost = %g, want +Inf", c)
	}
	if c := Cost(in, []int{0, 1}); math.IsInf(c, 1) {
		t.Fatal("feasible assignment should have finite cost")
	}
	if c := Cost(in, []int{-1, 0}); !math.IsInf(c, 1) {
		t.Fatal("negative slot should be infeasible")
	}
}
