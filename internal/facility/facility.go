// Package facility implements the expert-assignment optimization of ShiftEx
// (Eq. 2 of the paper): clients (party clusters) are assigned to experts so
// as to jointly minimize covariate mismatch (MMD between client and expert
// embedding signatures), expert-creation cost (λ per new expert), and label
// imbalance (μ times the JSD between each expert cohort's label mixture and
// the global mixture), subject to every client being assigned and no expert
// exceeding a capacity U_max.
//
// The problem is NP-hard (§5.2); this package provides an exact
// enumeration solver for small instances — used as ground truth in tests —
// and the greedy + local-search approximation that mirrors the paper's
// modular decomposition and is the production path.
package facility

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Client is one assignable unit (a party or a cluster of parties).
type Client struct {
	ID        int
	Embedding tensor.Vector
	LabelHist stats.Histogram
	// Weight is the client's size (e.g. party count); 0 means 1.
	Weight float64
}

func (c Client) weight() float64 {
	if c.Weight <= 0 {
		return 1
	}
	return c.Weight
}

// Facility is an existing expert: its latent-memory signature.
type Facility struct {
	ID        int
	Signature tensor.Vector
}

// Instance is one assignment problem.
type Instance struct {
	Clients  []Client
	Existing []Facility
	// NewCost is λ, the flat cost of opening a new expert.
	NewCost float64
	// LabelWeight is μ, the label-imbalance penalty weight.
	LabelWeight float64
	// CapacityMax is U_max per expert; 0 means unlimited.
	CapacityMax int
	// Epsilon is the reuse threshold: greedy reuses an existing facility
	// only when the covariate distance is at most Epsilon. 0 disables the
	// gate (distance alone decides).
	Epsilon float64
}

// Validate reports whether the instance is well formed.
func (in *Instance) Validate() error {
	if len(in.Clients) == 0 {
		return errors.New("facility: no clients")
	}
	if in.NewCost < 0 || in.LabelWeight < 0 {
		return fmt.Errorf("facility: negative weights λ=%g μ=%g", in.NewCost, in.LabelWeight)
	}
	if in.CapacityMax < 0 {
		return fmt.Errorf("facility: negative capacity %d", in.CapacityMax)
	}
	dim := len(in.Clients[0].Embedding)
	for _, c := range in.Clients {
		if len(c.Embedding) != dim {
			return fmt.Errorf("facility: client %d embedding dim %d, want %d", c.ID, len(c.Embedding), dim)
		}
	}
	for _, f := range in.Existing {
		if len(f.Signature) != dim {
			return fmt.Errorf("facility: facility %d signature dim %d, want %d", f.ID, len(f.Signature), dim)
		}
	}
	return nil
}

// Assignment maps each client (by index into Instance.Clients) to a
// facility slot: values in [0, len(Existing)) are existing facilities;
// values >= len(Existing) are new facilities numbered consecutively.
type Assignment struct {
	Slots  []int
	NumNew int
	Cost   float64
}

// NewFacilityCentroid returns the weighted centroid of the clients assigned
// to new-facility slot s (s >= len(existing)); this becomes the new
// expert's latent-memory signature.
func (a *Assignment) NewFacilityCentroid(in *Instance, s int) (tensor.Vector, error) {
	var vs []tensor.Vector
	var ws []float64
	for i, slot := range a.Slots {
		if slot == s {
			vs = append(vs, in.Clients[i].Embedding)
			ws = append(ws, in.Clients[i].weight())
		}
	}
	if len(vs) == 0 {
		return nil, fmt.Errorf("facility: slot %d has no clients", s)
	}
	return tensor.WeightedMean(vs, ws)
}

// Cost evaluates the Eq. 2 objective for a full assignment, returning +Inf
// for infeasible assignments (capacity violations or empty new slots).
func Cost(in *Instance, slots []int) float64 {
	nExist := len(in.Existing)
	// Group clients per slot.
	groups := make(map[int][]int)
	for i, s := range slots {
		if s < 0 {
			return math.Inf(1)
		}
		groups[s] = append(groups[s], i)
	}
	// Capacity feasibility (by client weight ≈ party count).
	if in.CapacityMax > 0 {
		for _, members := range groups {
			var load float64
			for _, i := range members {
				load += in.Clients[i].weight()
			}
			if load > float64(in.CapacityMax) {
				return math.Inf(1)
			}
		}
	}

	var total float64
	numNew := 0

	// Global mixture ȳ over all clients.
	globalMix, err := cohortMix(in, allIndices(len(in.Clients)))
	if err != nil {
		return math.Inf(1)
	}

	for s, members := range groups {
		var signature tensor.Vector
		if s < nExist {
			signature = in.Existing[s].Signature
			// ε is a hard reuse gate (§5.2.2): an existing expert may only
			// serve clients whose covariate distance is within Epsilon.
			if in.Epsilon > 0 {
				for _, i := range members {
					if stats.MeanEmbeddingMMD(in.Clients[i].Embedding, signature) > in.Epsilon {
						return math.Inf(1)
					}
				}
			}
		} else {
			numNew++
			sig, err := centroid(in, members)
			if err != nil {
				return math.Inf(1)
			}
			signature = sig
		}
		for _, i := range members {
			total += in.Clients[i].weight() * stats.MeanEmbeddingMMD(in.Clients[i].Embedding, signature)
		}
		if in.LabelWeight > 0 {
			mix, err := cohortMix(in, members)
			if err != nil {
				return math.Inf(1)
			}
			j, err := stats.JSD(mix, globalMix)
			if err != nil {
				return math.Inf(1)
			}
			total += in.LabelWeight * j
		}
	}
	total += in.NewCost * float64(numNew)
	return total
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func centroid(in *Instance, members []int) (tensor.Vector, error) {
	vs := make([]tensor.Vector, len(members))
	ws := make([]float64, len(members))
	for j, i := range members {
		vs[j] = in.Clients[i].Embedding
		ws[j] = in.Clients[i].weight()
	}
	return tensor.WeightedMean(vs, ws)
}

func cohortMix(in *Instance, members []int) (stats.Histogram, error) {
	hs := make([]stats.Histogram, len(members))
	counts := make([]int, len(members))
	for j, i := range members {
		hs[j] = in.Clients[i].LabelHist
		counts[j] = int(in.Clients[i].weight())
		if counts[j] < 1 {
			counts[j] = 1
		}
	}
	return stats.MergeHistograms(hs, counts)
}

// MaxExactClients bounds the exact solver's instance size; enumeration is
// (|E|+n)^n. Callers that want the exact solver on the production path
// (adapt.ExactAssignment) compare instance sizes against it to decide when
// to fall back to the greedy approximation.
const MaxExactClients = 7

// SolveExact enumerates all canonical assignments and returns the optimum.
// It errors for instances larger than MaxExactClients.
func SolveExact(in *Instance) (*Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := len(in.Clients)
	if n > MaxExactClients {
		return nil, fmt.Errorf("facility: exact solver limited to %d clients, got %d", MaxExactClients, n)
	}
	nExist := len(in.Existing)

	best := &Assignment{Cost: math.Inf(1)}
	slots := make([]int, n)

	// Canonical enumeration: client i may open new slot nExist+j only if
	// all new slots below j are already used by clients < i, which removes
	// permutation symmetry among new facilities.
	var recurse func(i, newUsed int)
	recurse = func(i, newUsed int) {
		if i == n {
			c := Cost(in, slots)
			if c < best.Cost {
				best.Cost = c
				best.Slots = append([]int(nil), slots...)
				best.NumNew = newUsed
			}
			return
		}
		for s := 0; s < nExist+newUsed; s++ {
			slots[i] = s
			recurse(i+1, newUsed)
		}
		// Open the next new facility.
		slots[i] = nExist + newUsed
		recurse(i+1, newUsed+1)
	}
	recurse(0, 0)

	if math.IsInf(best.Cost, 1) {
		return nil, errors.New("facility: no feasible assignment")
	}
	return best, nil
}

// SolveGreedy implements the paper's modular approximation (§5.2): each
// client is matched to the closest existing facility when within Epsilon
// (latent-memory matching); otherwise it joins the closest already-opened
// new facility within Epsilon, or opens a fresh one. A bounded local-search
// pass then tries single-client moves that lower the Eq. 2 objective.
func SolveGreedy(in *Instance) (*Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := len(in.Clients)
	nExist := len(in.Existing)
	slots := make([]int, n)

	type newFac struct {
		sum    tensor.Vector
		weight float64
		load   float64
	}
	var news []*newFac
	loadExisting := make([]float64, nExist)

	eps := in.Epsilon
	if eps <= 0 {
		eps = math.Inf(1)
	}
	capOK := func(load, w float64) bool {
		return in.CapacityMax == 0 || load+w <= float64(in.CapacityMax)
	}

	for i, c := range in.Clients {
		w := c.weight()
		bestSlot, bestDist := -1, math.Inf(1)
		for s, f := range in.Existing {
			d := stats.MeanEmbeddingMMD(c.Embedding, f.Signature)
			if d <= eps && d < bestDist && capOK(loadExisting[s], w) {
				bestSlot, bestDist = s, d
			}
		}
		for j, nf := range news {
			ctr := nf.sum.Clone()
			ctr.Scale(1 / nf.weight)
			d := stats.MeanEmbeddingMMD(c.Embedding, ctr)
			if d <= eps && d < bestDist && capOK(nf.load, w) {
				bestSlot, bestDist = nExist+j, d
			}
		}
		if bestSlot < 0 {
			// Open a new facility seeded at this client.
			nf := &newFac{sum: c.Embedding.Clone(), weight: w, load: w}
			nf.sum.Scale(w)
			news = append(news, nf)
			slots[i] = nExist + len(news) - 1
			continue
		}
		slots[i] = bestSlot
		if bestSlot < nExist {
			loadExisting[bestSlot] += w
		} else {
			nf := news[bestSlot-nExist]
			scaled := c.Embedding.Clone()
			scaled.Scale(w)
			if err := nf.sum.Add(scaled); err != nil {
				return nil, err
			}
			nf.weight += w
			nf.load += w
		}
	}

	slots = localSearch(in, slots)
	slots = canonicalize(slots, nExist)
	cost := Cost(in, slots)
	if math.IsInf(cost, 1) {
		return nil, errors.New("facility: greedy produced infeasible assignment")
	}
	return &Assignment{Slots: slots, NumNew: countNew(slots, nExist), Cost: cost}, nil
}

// localSearch tries single-client relocations while the objective improves,
// bounded to a few passes.
func localSearch(in *Instance, slots []int) []int {
	const maxPasses = 3
	nExist := len(in.Existing)
	cur := Cost(in, slots)
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		maxSlot := nExist - 1
		for _, s := range slots {
			if s > maxSlot {
				maxSlot = s
			}
		}
		for i := range slots {
			orig := slots[i]
			for s := 0; s <= maxSlot+1; s++ {
				if s == orig {
					continue
				}
				slots[i] = s
				c := Cost(in, canonicalize(append([]int(nil), slots...), nExist))
				if c < cur-1e-12 {
					cur = c
					orig = s
					improved = true
				} else {
					slots[i] = orig
				}
			}
			slots[i] = orig
		}
		if !improved {
			break
		}
	}
	return slots
}

// canonicalize renumbers new-facility slots consecutively from nExist in
// first-use order, dropping empty slot numbers.
func canonicalize(slots []int, nExist int) []int {
	remap := make(map[int]int)
	next := nExist
	for i, s := range slots {
		if s < nExist {
			continue
		}
		m, ok := remap[s]
		if !ok {
			m = next
			remap[s] = m
			next++
		}
		slots[i] = m
	}
	return slots
}

func countNew(slots []int, nExist int) int {
	seen := make(map[int]bool)
	for _, s := range slots {
		if s >= nExist {
			seen[s] = true
		}
	}
	return len(seen)
}
