package stats

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Histogram is a normalized discrete distribution over class labels.
type Histogram tensor.Vector

// NewHistogram builds a normalized label histogram over numClasses from raw
// labels. Labels outside [0, numClasses) are ignored. An empty label set
// yields the uniform distribution so downstream divergences stay finite.
func NewHistogram(labels []int, numClasses int) Histogram {
	h := make(Histogram, numClasses)
	var total float64
	for _, l := range labels {
		if l >= 0 && l < numClasses {
			h[l]++
			total++
		}
	}
	if total == 0 {
		for i := range h {
			h[i] = 1 / float64(numClasses)
		}
		return h
	}
	for i := range h {
		h[i] /= total
	}
	return h
}

// Normalize scales h so it sums to one; an all-zero histogram becomes
// uniform.
func (h Histogram) Normalize() Histogram {
	out := make(Histogram, len(h))
	var total float64
	for _, v := range h {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, v := range h {
		if v > 0 {
			out[i] = v / total
		}
	}
	return out
}

// Entropy returns the Shannon entropy of h in nats.
func (h Histogram) Entropy() float64 {
	var e float64
	for _, p := range h {
		if p > 0 {
			e -= p * math.Log(p)
		}
	}
	return e
}

// KL returns the Kullback-Leibler divergence D(p||q) in nats. It returns
// +Inf when q has zero mass where p does not, and an error when the supports
// differ in size.
func KL(p, q Histogram) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("kl: %w: %d vs %d", tensor.ErrShape, len(p), len(q))
	}
	var d float64
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		if q[i] <= 0 {
			return math.Inf(1), nil
		}
		d += pi * math.Log(pi/q[i])
	}
	return d, nil
}

// JSD returns the Jensen-Shannon divergence between p and q in nats:
//
//	JSD(p||q) = ½ D(p||m) + ½ D(q||m),  m = ½(p+q)
//
// JSD is symmetric and bounded in [0, ln 2].
func JSD(p, q Histogram) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("jsd: %w: %d vs %d", tensor.ErrShape, len(p), len(q))
	}
	if len(p) == 0 {
		return 0, ErrEmptySample
	}
	m := make(Histogram, len(p))
	for i := range p {
		m[i] = 0.5 * (p[i] + q[i])
	}
	dpm, err := KL(p, m)
	if err != nil {
		return 0, err
	}
	dqm, err := KL(q, m)
	if err != nil {
		return 0, err
	}
	j := 0.5*dpm + 0.5*dqm
	// Clamp numerical noise into the theoretical range.
	if j < 0 {
		j = 0
	}
	if j > math.Ln2 {
		j = math.Ln2
	}
	return j, nil
}

// MergeHistograms returns the sample-size-weighted mixture of histograms,
// used to compute an expert cohort's aggregate label distribution (the y_k
// term in Eq. 2).
func MergeHistograms(hs []Histogram, counts []int) (Histogram, error) {
	if len(hs) == 0 {
		return nil, ErrEmptySample
	}
	if len(hs) != len(counts) {
		return nil, fmt.Errorf("merge: %w: %d histograms vs %d counts", tensor.ErrShape, len(hs), len(counts))
	}
	n := len(hs[0])
	out := make(Histogram, n)
	var total float64
	for j, h := range hs {
		if len(h) != n {
			return nil, fmt.Errorf("merge: %w: %d vs %d", tensor.ErrShape, len(h), n)
		}
		w := float64(counts[j])
		if w < 0 {
			return nil, fmt.Errorf("stats: negative count %d", counts[j])
		}
		total += w
		for i, p := range h {
			out[i] += w * p
		}
	}
	if total == 0 {
		return Histogram(tensor.Vector(out)).Normalize(), nil
	}
	for i := range out {
		out[i] /= total
	}
	return out, nil
}

// Uniform returns the uniform histogram over n classes.
func Uniform(n int) Histogram {
	h := make(Histogram, n)
	for i := range h {
		h[i] = 1 / float64(n)
	}
	return h
}
