package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// DistributionDistance is a pluggable two-sample statistic over embedding
// samples. The paper notes ShiftEx is detector-agnostic (§3.2: "the
// framework itself is detector-agnostic and can readily accommodate
// alternative choices"); this interface is that seam. All implementations
// return larger values for more dissimilar samples and 0-ish values for
// samples from the same distribution.
type DistributionDistance interface {
	// Distance computes the statistic between two samples.
	Distance(xs, ys []tensor.Vector) (float64, error)
	// Name identifies the detector in logs and configs.
	Name() string
}

// MMDDistance is the default kernel MMD detector with median-heuristic
// bandwidth.
type MMDDistance struct{}

var _ DistributionDistance = MMDDistance{}

// Name implements DistributionDistance.
func (MMDDistance) Name() string { return "mmd" }

// Distance implements DistributionDistance.
func (MMDDistance) Distance(xs, ys []tensor.Vector) (float64, error) {
	return MMDAuto(xs, ys)
}

// EnergyDistance is the Székely-Rizzo energy statistic:
//
//	E(P,Q) = 2·E‖x−y‖ − E‖x−x'‖ − E‖y−y'‖
//
// Non-negative, zero iff P = Q; kernel-free, so there is no bandwidth to
// tune.
type EnergyDistance struct{}

var _ DistributionDistance = EnergyDistance{}

// Name implements DistributionDistance.
func (EnergyDistance) Name() string { return "energy" }

// Distance implements DistributionDistance.
func (EnergyDistance) Distance(xs, ys []tensor.Vector) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, fmt.Errorf("energy: %w", ErrEmptySample)
	}
	if HasNaN(xs) || HasNaN(ys) {
		return 0, fmt.Errorf("energy: %w", ErrNaNInput)
	}
	var cross, withinX, withinY float64
	for i := range xs {
		for j := range ys {
			cross += tensor.Distance(xs[i], ys[j])
		}
	}
	for i := range xs {
		for j := range xs {
			withinX += tensor.Distance(xs[i], xs[j])
		}
	}
	for i := range ys {
		for j := range ys {
			withinY += tensor.Distance(ys[i], ys[j])
		}
	}
	m, n := float64(len(xs)), float64(len(ys))
	e := 2*cross/(m*n) - withinX/(m*m) - withinY/(n*n)
	if e < 0 {
		e = 0
	}
	return e, nil
}

// KSDistance is a multivariate Kolmogorov-Smirnov surrogate: the maximum
// over a set of random one-dimensional projections of the classical
// two-sample KS statistic. Projections are fixed per detector instance so
// repeated calls are comparable.
type KSDistance struct {
	projections []tensor.Vector
}

var _ DistributionDistance = (*KSDistance)(nil)

// NewKSDistance builds a KS detector with the given number of random
// projection directions for the given embedding dimensionality.
func NewKSDistance(dim, numProjections int, rng *tensor.RNG) (*KSDistance, error) {
	if dim <= 0 || numProjections <= 0 {
		return nil, fmt.Errorf("stats: KS needs positive dim (%d) and projections (%d)", dim, numProjections)
	}
	out := &KSDistance{projections: make([]tensor.Vector, numProjections)}
	for i := range out.projections {
		v := rng.NormVec(dim, 0, 1)
		n := v.Norm()
		if n == 0 {
			n = 1
		}
		v.Scale(1 / n)
		out.projections[i] = v
	}
	return out, nil
}

// Name implements DistributionDistance.
func (k *KSDistance) Name() string { return "ks" }

// Distance implements DistributionDistance.
func (k *KSDistance) Distance(xs, ys []tensor.Vector) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, fmt.Errorf("ks: %w", ErrEmptySample)
	}
	if HasNaN(xs) || HasNaN(ys) {
		return 0, fmt.Errorf("ks: %w", ErrNaNInput)
	}
	var worst float64
	for _, proj := range k.projections {
		px := make([]float64, len(xs))
		py := make([]float64, len(ys))
		for i, x := range xs {
			d, err := x.Dot(proj)
			if err != nil {
				return 0, err
			}
			px[i] = d
		}
		for i, y := range ys {
			d, err := y.Dot(proj)
			if err != nil {
				return 0, err
			}
			py[i] = d
		}
		if s := ksOneDim(px, py); s > worst {
			worst = s
		}
	}
	return worst, nil
}

// ksOneDim computes the classical two-sample KS statistic
// sup_t |F_x(t) − F_y(t)|.
func ksOneDim(xs, ys []float64) float64 {
	sort.Float64s(xs)
	sort.Float64s(ys)
	var i, j int
	var worst float64
	for i < len(xs) && j < len(ys) {
		var t float64
		if xs[i] <= ys[j] {
			t = xs[i]
		} else {
			t = ys[j]
		}
		for i < len(xs) && xs[i] <= t {
			i++
		}
		for j < len(ys) && ys[j] <= t {
			j++
		}
		fx := float64(i) / float64(len(xs))
		fy := float64(j) / float64(len(ys))
		if d := math.Abs(fx - fy); d > worst {
			worst = d
		}
	}
	return worst
}

// CalibrateThreshold estimates a (1-p)-quantile null threshold for an
// arbitrary detector by repeatedly splitting a no-shift sample into halves
// — the detector-agnostic generalization of CalibrateCovThreshold.
func CalibrateThreshold(d DistributionDistance, sample []tensor.Vector, cfg CalibrateConfig, rng *tensor.RNG) (float64, error) {
	if len(sample) < 4 {
		return 0, fmt.Errorf("stats: need >=4 points to calibrate %s, have %d", d.Name(), len(sample))
	}
	if cfg.Resamples <= 0 {
		return 0, fmt.Errorf("stats: resamples must be positive")
	}
	half := cfg.SplitSize
	if half <= 0 || half > len(sample)/2 {
		half = len(sample) / 2
	}
	nulls := make([]float64, 0, cfg.Resamples)
	for i := 0; i < cfg.Resamples; i++ {
		perm := rng.Perm(len(sample))
		xs := make([]tensor.Vector, half)
		ys := make([]tensor.Vector, half)
		for j := 0; j < half; j++ {
			xs[j] = sample[perm[j]]
			ys[j] = sample[perm[half+j]]
		}
		v, err := d.Distance(xs, ys)
		if err != nil {
			return 0, fmt.Errorf("calibrate %s: %w", d.Name(), err)
		}
		nulls = append(nulls, v)
	}
	p := cfg.PValue
	if p <= 0 {
		p = 0.05
	}
	return Quantile(nulls, 1-p), nil
}
