// Package stats implements the statistical machinery ShiftEx uses for shift
// detection: kernel Maximum Mean Discrepancy over embedding samples
// (covariate shift, §4.2 of the paper), Jensen-Shannon divergence over label
// histograms (label shift, §4.3), and bootstrap calibration of the detection
// thresholds δ_cov and δ_label from null distributions (§5).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// ErrEmptySample indicates an MMD/JSD computation over an empty sample.
var ErrEmptySample = errors.New("stats: empty sample")

// RBFKernel is the Gaussian radial basis function kernel
// k(x,y) = exp(-gamma * ||x-y||²) used inside MMD.
type RBFKernel struct {
	Gamma float64
}

// Eval evaluates the kernel on a pair of points.
func (k RBFKernel) Eval(x, y tensor.Vector) float64 {
	return math.Exp(-k.Gamma * tensor.SquaredDistance(x, y))
}

// MedianHeuristicGamma returns gamma = 1/(2·median²) where the median is
// taken over pairwise distances of the pooled sample — the standard
// bandwidth choice for kernel two-sample tests. It returns a fallback of 1
// when the pooled sample is degenerate (fewer than two points, or all points
// identical).
func MedianHeuristicGamma(xs, ys []tensor.Vector) float64 {
	pool := make([]tensor.Vector, 0, len(xs)+len(ys))
	pool = append(pool, xs...)
	pool = append(pool, ys...)
	if len(pool) < 2 {
		return 1
	}
	// Cap the number of pairs to keep calibration cheap on large windows.
	const maxPoints = 256
	if len(pool) > maxPoints {
		pool = pool[:maxPoints]
	}
	dists := make([]float64, 0, len(pool)*(len(pool)-1)/2)
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			d := tensor.Distance(pool[i], pool[j])
			if !math.IsNaN(d) && d > 0 {
				dists = append(dists, d)
			}
		}
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	median := dists[len(dists)/2]
	if median == 0 {
		return 1
	}
	return 1 / (2 * median * median)
}

// MMD computes the biased V-statistic estimate of squared Maximum Mean
// Discrepancy between the samples xs ~ P and ys ~ Q under kernel k:
//
//	MMD²(P,Q) = E[k(x,x')] + E[k(y,y')] - 2E[k(x,y)]
//
// The biased estimator is always non-negative, which suits thresholding.
func MMD(xs, ys []tensor.Vector, k RBFKernel) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, fmt.Errorf("mmd: %w", ErrEmptySample)
	}
	if HasNaN(xs) || HasNaN(ys) {
		return 0, fmt.Errorf("mmd: %w", ErrNaNInput)
	}
	var kxx, kyy, kxy float64
	for i := range xs {
		for j := range xs {
			kxx += k.Eval(xs[i], xs[j])
		}
	}
	for i := range ys {
		for j := range ys {
			kyy += k.Eval(ys[i], ys[j])
		}
	}
	for i := range xs {
		for j := range ys {
			kxy += k.Eval(xs[i], ys[j])
		}
	}
	m, n := float64(len(xs)), float64(len(ys))
	v := kxx/(m*m) + kyy/(n*n) - 2*kxy/(m*n)
	if v < 0 {
		v = 0 // numerical noise
	}
	return v, nil
}

// MMDUnbiased computes the unbiased U-statistic estimate of MMD², which
// excludes diagonal terms. It may be negative for close distributions and
// requires at least two points per sample.
func MMDUnbiased(xs, ys []tensor.Vector, k RBFKernel) (float64, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return 0, fmt.Errorf("mmd unbiased: need >=2 points per sample: %w", ErrEmptySample)
	}
	if HasNaN(xs) || HasNaN(ys) {
		return 0, fmt.Errorf("mmd unbiased: %w", ErrNaNInput)
	}
	var kxx, kyy, kxy float64
	for i := range xs {
		for j := range xs {
			if i != j {
				kxx += k.Eval(xs[i], xs[j])
			}
		}
	}
	for i := range ys {
		for j := range ys {
			if i != j {
				kyy += k.Eval(ys[i], ys[j])
			}
		}
	}
	for i := range xs {
		for j := range ys {
			kxy += k.Eval(xs[i], ys[j])
		}
	}
	m, n := float64(len(xs)), float64(len(ys))
	return kxx/(m*(m-1)) + kyy/(n*(n-1)) - 2*kxy/(m*n), nil
}

// MMDAuto computes biased MMD² with a median-heuristic bandwidth.
func MMDAuto(xs, ys []tensor.Vector) (float64, error) {
	return MMD(xs, ys, RBFKernel{Gamma: MedianHeuristicGamma(xs, ys)})
}

// MeanEmbeddingMMD approximates MMD using only the sample means — the
// linear-kernel special case exp(-γ||μ_P - μ_Q||²) inverted to a distance.
// ShiftEx uses this cheap form when matching cluster centroids against the
// latent memory, where only aggregate embeddings are available (§5.2.2).
func MeanEmbeddingMMD(muP, muQ tensor.Vector) float64 {
	d := tensor.SquaredDistance(muP, muQ)
	if math.IsNaN(d) {
		return math.Inf(1)
	}
	return d
}
