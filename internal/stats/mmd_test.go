package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func gaussianSample(rng *tensor.RNG, n, dim int, mu, sigma float64) []tensor.Vector {
	out := make([]tensor.Vector, n)
	for i := range out {
		out[i] = rng.NormVec(dim, mu, sigma)
	}
	return out
}

func TestMMDIdenticalSamplesNearZero(t *testing.T) {
	rng := tensor.NewRNG(1)
	xs := gaussianSample(rng, 50, 4, 0, 1)
	v, err := MMDAuto(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if v > 1e-9 {
		t.Fatalf("MMD(X,X) = %g, want ~0", v)
	}
}

func TestMMDSeparatesShiftedDistributions(t *testing.T) {
	rng := tensor.NewRNG(2)
	xs := gaussianSample(rng, 60, 4, 0, 1)
	near := gaussianSample(rng, 60, 4, 0.1, 1)
	far := gaussianSample(rng, 60, 4, 3, 1)

	vNear, err := MMDAuto(xs, near)
	if err != nil {
		t.Fatal(err)
	}
	vFar, err := MMDAuto(xs, far)
	if err != nil {
		t.Fatal(err)
	}
	if vFar <= vNear {
		t.Fatalf("MMD should grow with shift: near=%g far=%g", vNear, vFar)
	}
	if vFar < 0.1 {
		t.Fatalf("large shift should produce large MMD, got %g", vFar)
	}
}

func TestMMDSymmetry(t *testing.T) {
	rng := tensor.NewRNG(3)
	xs := gaussianSample(rng, 20, 3, 0, 1)
	ys := gaussianSample(rng, 25, 3, 1, 2)
	k := RBFKernel{Gamma: 0.5}
	a, err := MMD(xs, ys, k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MMD(ys, xs, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("MMD not symmetric: %g vs %g", a, b)
	}
}

func TestMMDEmptySample(t *testing.T) {
	if _, err := MMD(nil, nil, RBFKernel{Gamma: 1}); !errors.Is(err, ErrEmptySample) {
		t.Fatalf("want ErrEmptySample, got %v", err)
	}
	if _, err := MMDUnbiased([]tensor.Vector{{1}}, []tensor.Vector{{1}, {2}}, RBFKernel{Gamma: 1}); !errors.Is(err, ErrEmptySample) {
		t.Fatalf("want ErrEmptySample for unbiased with n<2, got %v", err)
	}
}

func TestMMDUnbiasedTracksBiased(t *testing.T) {
	rng := tensor.NewRNG(4)
	xs := gaussianSample(rng, 40, 3, 0, 1)
	ys := gaussianSample(rng, 40, 3, 2, 1)
	k := RBFKernel{Gamma: MedianHeuristicGamma(xs, ys)}
	b, err := MMD(xs, ys, k)
	if err != nil {
		t.Fatal(err)
	}
	u, err := MMDUnbiased(xs, ys, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-u) > 0.1 {
		t.Fatalf("biased %g and unbiased %g estimates diverge too much", b, u)
	}
}

func TestMedianHeuristicGamma(t *testing.T) {
	rng := tensor.NewRNG(5)
	xs := gaussianSample(rng, 30, 4, 0, 1)
	g := MedianHeuristicGamma(xs, nil)
	if g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
		t.Fatalf("gamma = %g", g)
	}
	// Degenerate cases fall back to 1.
	if g := MedianHeuristicGamma(nil, nil); g != 1 {
		t.Fatalf("empty gamma = %g, want 1", g)
	}
	same := []tensor.Vector{{1, 1}, {1, 1}, {1, 1}}
	if g := MedianHeuristicGamma(same, nil); g != 1 {
		t.Fatalf("identical-points gamma = %g, want 1", g)
	}
}

func TestMeanEmbeddingMMD(t *testing.T) {
	if d := MeanEmbeddingMMD(tensor.Vector{0, 0}, tensor.Vector{3, 4}); !almostEqual(d, 25, 1e-12) {
		t.Fatalf("mean-embedding MMD = %g, want 25", d)
	}
	if d := MeanEmbeddingMMD(tensor.Vector{1}, tensor.Vector{1, 2}); !math.IsInf(d, 1) {
		t.Fatalf("shape mismatch should be +Inf, got %g", d)
	}
}

func TestPropertyMMDNonNegativeAndIdentity(t *testing.T) {
	rng := tensor.NewRNG(6)
	f := func(seed uint64, shiftRaw float64) bool {
		r := tensor.NewRNG(seed)
		shift := math.Mod(math.Abs(shiftRaw), 5)
		if math.IsNaN(shift) {
			shift = 0
		}
		xs := gaussianSample(r, 15, 3, 0, 1)
		ys := gaussianSample(r, 15, 3, shift, 1)
		k := RBFKernel{Gamma: MedianHeuristicGamma(xs, ys)}
		v, err := MMD(xs, ys, k)
		if err != nil {
			return false
		}
		if v < 0 {
			return false
		}
		self, err := MMD(xs, xs, k)
		if err != nil {
			return false
		}
		return self <= 1e-9
	}
	cfg := &quick.Config{MaxCount: 25, Rand: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
