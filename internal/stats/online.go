package stats

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ErrNaNInput indicates a sample containing NaN reached a detector. The
// online monitoring plane feeds detectors from live traffic, where a single
// poisoned request must not silently turn a drift score into NaN (NaN
// comparisons are always false, so a NaN score would never cross a
// threshold — the worst possible failure mode for a detector).
var ErrNaNInput = fmt.Errorf("stats: sample contains NaN")

// HasNaN reports whether any component of any vector in the sample is NaN.
func HasNaN(xs []tensor.Vector) bool {
	for _, x := range xs {
		for _, v := range x {
			if math.IsNaN(v) {
				return true
			}
		}
	}
	return false
}

// VecWelford is a per-dimension streaming mean/variance accumulator: the
// vector form of Welford, used by the serving monitor to sketch live
// embedding statistics without retaining the embeddings themselves. The
// zero value is unusable; build with NewVecWelford.
type VecWelford struct {
	n    int
	mean []float64
	m2   []float64
}

// NewVecWelford returns an accumulator over dim-dimensional observations.
func NewVecWelford(dim int) *VecWelford {
	return &VecWelford{mean: make([]float64, dim), m2: make([]float64, dim)}
}

// Dim returns the observation dimensionality.
func (w *VecWelford) Dim() int { return len(w.mean) }

// N returns the number of accepted observations.
func (w *VecWelford) N() int { return w.n }

// Add folds one observation into the accumulator. Observations of the
// wrong dimensionality or containing NaN are rejected (returning false)
// rather than corrupting the running moments — one poisoned embedding must
// not NaN-poison every statistic derived from the sketch afterwards.
func (w *VecWelford) Add(x tensor.Vector) bool {
	if len(x) != len(w.mean) {
		return false
	}
	for _, v := range x {
		if math.IsNaN(v) {
			return false
		}
	}
	w.n++
	inv := 1 / float64(w.n)
	for i, v := range x {
		d := v - w.mean[i]
		w.mean[i] += d * inv
		w.m2[i] += d * (v - w.mean[i])
	}
	return true
}

// MeanInto writes the running per-dimension mean into dst (which must have
// the accumulator's dimensionality) and returns it; allocation-free.
func (w *VecWelford) MeanInto(dst tensor.Vector) tensor.Vector {
	copy(dst, w.mean)
	return dst
}

// Mean returns a copy of the running per-dimension mean.
func (w *VecWelford) Mean() tensor.Vector {
	return w.MeanInto(make(tensor.Vector, len(w.mean)))
}

// Variance returns the unbiased per-dimension sample variance (zeros with
// fewer than two observations).
func (w *VecWelford) Variance() tensor.Vector {
	out := make(tensor.Vector, len(w.m2))
	if w.n < 2 {
		return out
	}
	inv := 1 / float64(w.n-1)
	for i, v := range w.m2 {
		out[i] = v * inv
	}
	return out
}

// TotalVariance returns the trace of the diagonal covariance — a scalar
// spread measure the monitor compares across evaluation windows.
func (w *VecWelford) TotalVariance() float64 {
	if w.n < 2 {
		return 0
	}
	var t float64
	for _, v := range w.m2 {
		t += v
	}
	return t / float64(w.n-1)
}

// Reset clears the accumulator in place, keeping its dimensionality.
func (w *VecWelford) Reset() {
	w.n = 0
	for i := range w.mean {
		w.mean[i] = 0
		w.m2[i] = 0
	}
}

// EWMA is an exponentially weighted moving average. The first observation
// seeds the average directly, so early values are not biased toward zero.
// The zero value with Alpha set is ready to use.
type EWMA struct {
	// Alpha is the per-observation weight in (0, 1]; higher tracks faster.
	Alpha float64

	value  float64
	seeded bool
}

// Observe folds one observation in. NaN observations are rejected
// (returning false) so a single poisoned value cannot wipe the average.
func (e *EWMA) Observe(x float64) bool {
	if math.IsNaN(x) {
		return false
	}
	if !e.seeded {
		e.value = x
		e.seeded = true
		return true
	}
	e.value += e.Alpha * (x - e.value)
	return true
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Seeded reports whether at least one observation has been folded in.
func (e *EWMA) Seeded() bool { return e.seeded }

// Reset clears the average.
func (e *EWMA) Reset() {
	e.value = 0
	e.seeded = false
}
