package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Thresholds holds the calibrated shift-detection thresholds used by the
// aggregator: a party whose window-over-window MMD exceeds DeltaCov is
// flagged as covariate-shifted, and one whose JSD exceeds DeltaLabel as
// label-shifted (§5 of the paper).
type Thresholds struct {
	DeltaCov   float64 `json:"deltaCov"`
	DeltaLabel float64 `json:"deltaLabel"`
}

// CalibrateConfig controls bootstrap threshold calibration.
type CalibrateConfig struct {
	// Resamples is the number of bootstrap splits of the null sample.
	Resamples int
	// PValue is the upper-tail probability; the threshold is the
	// (1-PValue) quantile of the null statistic distribution.
	PValue float64
	// SplitSize is the per-half sample size for each bootstrap split; 0
	// means half the provided sample.
	SplitSize int
}

// DefaultCalibrateConfig mirrors the paper's bootstrap protocol: thresholds
// are the 95th percentile of the no-shift null distribution.
func DefaultCalibrateConfig() CalibrateConfig {
	return CalibrateConfig{Resamples: 100, PValue: 0.05}
}

// CalibrateCovThreshold estimates δ_cov by repeatedly splitting a no-shift
// embedding sample into two pseudo-windows and recording the MMD between
// them; δ_cov is the (1-p) quantile of those null MMD values.
func CalibrateCovThreshold(embeddings []tensor.Vector, cfg CalibrateConfig, rng *tensor.RNG) (float64, error) {
	if len(embeddings) < 4 {
		return 0, fmt.Errorf("stats: need >=4 embeddings to calibrate, have %d", len(embeddings))
	}
	if cfg.Resamples <= 0 {
		return 0, errors.New("stats: resamples must be positive")
	}
	half := cfg.SplitSize
	if half <= 0 || half > len(embeddings)/2 {
		half = len(embeddings) / 2
	}
	gamma := MedianHeuristicGamma(embeddings, nil)
	k := RBFKernel{Gamma: gamma}
	nulls := make([]float64, 0, cfg.Resamples)
	for i := 0; i < cfg.Resamples; i++ {
		perm := rng.Perm(len(embeddings))
		xs := make([]tensor.Vector, half)
		ys := make([]tensor.Vector, half)
		for j := 0; j < half; j++ {
			xs[j] = embeddings[perm[j]]
			ys[j] = embeddings[perm[half+j]]
		}
		v, err := MMD(xs, ys, k)
		if err != nil {
			return 0, fmt.Errorf("calibrate cov: %w", err)
		}
		nulls = append(nulls, v)
	}
	return Quantile(nulls, 1-cfg.PValue), nil
}

// CalibrateLabelThreshold estimates δ_label from null JSD statistics between
// bootstrap-resampled label histograms of a stable window.
func CalibrateLabelThreshold(labels []int, numClasses int, cfg CalibrateConfig, rng *tensor.RNG) (float64, error) {
	if len(labels) < 4 {
		return 0, fmt.Errorf("stats: need >=4 labels to calibrate, have %d", len(labels))
	}
	if cfg.Resamples <= 0 {
		return 0, errors.New("stats: resamples must be positive")
	}
	half := cfg.SplitSize
	if half <= 0 || half > len(labels)/2 {
		half = len(labels) / 2
	}
	nulls := make([]float64, 0, cfg.Resamples)
	a := make([]int, half)
	b := make([]int, half)
	for i := 0; i < cfg.Resamples; i++ {
		perm := rng.Perm(len(labels))
		for j := 0; j < half; j++ {
			a[j] = labels[perm[j]]
			b[j] = labels[perm[half+j]]
		}
		j, err := JSD(NewHistogram(a, numClasses), NewHistogram(b, numClasses))
		if err != nil {
			return 0, fmt.Errorf("calibrate label: %w", err)
		}
		nulls = append(nulls, j)
	}
	return Quantile(nulls, 1-cfg.PValue), nil
}

// Quantile returns the q-quantile (0<=q<=1) of xs using nearest-rank on a
// sorted copy. An empty input yields NaN.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Welford accumulates a running mean and variance in a single pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a new observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with <2 observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
