package stats

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestCalibrateCovThreshold(t *testing.T) {
	rng := tensor.NewRNG(100)
	stable := gaussianSample(rng, 80, 4, 0, 1)
	delta, err := CalibrateCovThreshold(stable, DefaultCalibrateConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 {
		t.Fatalf("delta_cov = %g, want > 0", delta)
	}

	// A genuine shift must exceed the calibrated threshold.
	shifted := gaussianSample(rng, 40, 4, 3, 1)
	gamma := MedianHeuristicGamma(stable, nil)
	v, err := MMD(stable[:40], shifted, RBFKernel{Gamma: gamma})
	if err != nil {
		t.Fatal(err)
	}
	if v <= delta {
		t.Fatalf("shifted MMD %g should exceed threshold %g", v, delta)
	}

	// A null split must usually stay below: verify with a fresh split.
	a := gaussianSample(rng, 40, 4, 0, 1)
	b := gaussianSample(rng, 40, 4, 0, 1)
	vNull, err := MMD(a, b, RBFKernel{Gamma: gamma})
	if err != nil {
		t.Fatal(err)
	}
	if vNull > delta*3 {
		t.Fatalf("null MMD %g far exceeds threshold %g", vNull, delta)
	}
}

func TestCalibrateCovThresholdErrors(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := CalibrateCovThreshold(gaussianSample(rng, 2, 2, 0, 1), DefaultCalibrateConfig(), rng); err == nil {
		t.Fatal("expected error for tiny sample")
	}
	cfg := DefaultCalibrateConfig()
	cfg.Resamples = 0
	if _, err := CalibrateCovThreshold(gaussianSample(rng, 10, 2, 0, 1), cfg, rng); err == nil {
		t.Fatal("expected error for zero resamples")
	}
}

func TestCalibrateLabelThreshold(t *testing.T) {
	rng := tensor.NewRNG(200)
	labels := make([]int, 400)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	delta, err := CalibrateLabelThreshold(labels, 10, DefaultCalibrateConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 || delta > math.Ln2 {
		t.Fatalf("delta_label = %g out of (0, ln2]", delta)
	}

	// A strongly skewed window should exceed the threshold.
	skewed := make([]int, 400)
	for i := range skewed {
		skewed[i] = rng.Intn(2) // only classes 0,1
	}
	j, err := JSD(NewHistogram(labels, 10), NewHistogram(skewed, 10))
	if err != nil {
		t.Fatal(err)
	}
	if j <= delta {
		t.Fatalf("skewed JSD %g should exceed threshold %g", j, delta)
	}
}

func TestCalibrateLabelThresholdErrors(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := CalibrateLabelThreshold([]int{1, 2}, 3, DefaultCalibrateConfig(), rng); err == nil {
		t.Fatal("expected error for tiny sample")
	}
	cfg := DefaultCalibrateConfig()
	cfg.Resamples = -1
	if _, err := CalibrateLabelThreshold([]int{1, 2, 3, 4, 5}, 6, cfg, rng); err == nil {
		t.Fatal("expected error for negative resamples")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.8, 4}, {1, 5}, {1.5, 5}, {-1, 1},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); got != tt.want {
			t.Fatalf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("zero-value Welford should report 0")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("n = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %g", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-9) {
		t.Fatalf("variance = %g", w.Variance())
	}
	if !almostEqual(w.StdDev(), math.Sqrt(32.0/7.0), 1e-9) {
		t.Fatalf("stddev = %g", w.StdDev())
	}
}
