package stats

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// TestWelfordMatchesBatch pins the streaming scalar accumulator to the
// one-shot two-pass computation: the monitor folds observations in one at a
// time and must land on the same moments a batch recomputation would.
func TestWelfordMatchesBatch(t *testing.T) {
	rng := tensor.NewRNG(7)
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = rng.Norm()*3 + 1.5
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	variance := m2 / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("streaming mean %g, batch %g", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-9 {
		t.Fatalf("streaming variance %g, batch %g", w.Variance(), variance)
	}
}

// TestVecWelfordMatchesBatch pins the vector accumulator per dimension.
func TestVecWelfordMatchesBatch(t *testing.T) {
	const dim, n = 8, 300
	rng := tensor.NewRNG(11)
	xs := make([]tensor.Vector, n)
	for i := range xs {
		xs[i] = rng.NormVec(dim, 0.5, 2)
	}
	w := NewVecWelford(dim)
	for _, x := range xs {
		if !w.Add(x) {
			t.Fatal("clean observation rejected")
		}
	}
	if w.N() != n {
		t.Fatalf("n=%d, want %d", w.N(), n)
	}
	mean := make(tensor.Vector, dim)
	for _, x := range xs {
		for d, v := range x {
			mean[d] += v
		}
	}
	for d := range mean {
		mean[d] /= n
	}
	variance := make(tensor.Vector, dim)
	for _, x := range xs {
		for d, v := range x {
			variance[d] += (v - mean[d]) * (v - mean[d])
		}
	}
	gotMean, gotVar := w.Mean(), w.Variance()
	var wantTotal float64
	for d := range mean {
		variance[d] /= n - 1
		wantTotal += variance[d]
		if math.Abs(gotMean[d]-mean[d]) > 1e-9 {
			t.Fatalf("dim %d: streaming mean %g, batch %g", d, gotMean[d], mean[d])
		}
		if math.Abs(gotVar[d]-variance[d]) > 1e-9 {
			t.Fatalf("dim %d: streaming variance %g, batch %g", d, gotVar[d], variance[d])
		}
	}
	if math.Abs(w.TotalVariance()-wantTotal) > 1e-9 {
		t.Fatalf("total variance %g, batch %g", w.TotalVariance(), wantTotal)
	}
}

func TestVecWelfordRejectsBadObservations(t *testing.T) {
	w := NewVecWelford(3)
	if w.Add(tensor.Vector{1, 2}) {
		t.Fatal("wrong-dim observation accepted")
	}
	if w.Add(tensor.Vector{1, math.NaN(), 3}) {
		t.Fatal("NaN observation accepted")
	}
	if w.N() != 0 {
		t.Fatalf("rejected observations counted: n=%d", w.N())
	}
	if !w.Add(tensor.Vector{1, 2, 3}) {
		t.Fatal("clean observation rejected")
	}
	w.Reset()
	if w.N() != 0 || w.Mean()[0] != 0 {
		t.Fatal("reset did not clear the accumulator")
	}
	if w.Dim() != 3 {
		t.Fatalf("reset changed dim to %d", w.Dim())
	}
}

func TestVecWelfordMeanIntoAllocFree(t *testing.T) {
	w := NewVecWelford(4)
	w.Add(tensor.Vector{1, 2, 3, 4})
	dst := make(tensor.Vector, 4)
	if n := testing.AllocsPerRun(100, func() { w.MeanInto(dst) }); n != 0 {
		t.Fatalf("MeanInto allocates %.1f/op, want 0", n)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Seeded() {
		t.Fatal("zero EWMA claims to be seeded")
	}
	if e.Observe(math.NaN()) {
		t.Fatal("NaN observation accepted")
	}
	if !e.Observe(10) {
		t.Fatal("clean observation rejected")
	}
	if e.Value() != 10 {
		t.Fatalf("first observation must seed directly, got %g", e.Value())
	}
	e.Observe(0)
	if e.Value() != 5 {
		t.Fatalf("value=%g, want 5", e.Value())
	}
	if e.Observe(math.NaN()) || e.Value() != 5 {
		t.Fatal("NaN observation must leave the average untouched")
	}
	e.Reset()
	if e.Seeded() || e.Value() != 0 {
		t.Fatal("reset did not clear the average")
	}
}

// TestDetectorsRejectEmptyWindows pins the empty-window guard on every
// detector the monitor can run online: an empty evaluation window must
// surface ErrEmptySample, never a silent zero score.
func TestDetectorsRejectEmptyWindows(t *testing.T) {
	rng := tensor.NewRNG(3)
	sample := []tensor.Vector{rng.NormVec(4, 0, 1), rng.NormVec(4, 0, 1)}
	ks, err := NewKSDistance(4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []DistributionDistance{MMDDistance{}, EnergyDistance{}, ks} {
		if _, err := d.Distance(nil, sample); err == nil {
			t.Fatalf("%s accepted an empty left window", d.Name())
		}
		if _, err := d.Distance(sample, nil); err == nil {
			t.Fatalf("%s accepted an empty right window", d.Name())
		}
	}
}

// TestDetectorsRejectNaNInputs pins the NaN guard: a poisoned sample must
// error rather than produce a NaN score (NaN never crosses a threshold, so
// a NaN score silently disables detection).
func TestDetectorsRejectNaNInputs(t *testing.T) {
	rng := tensor.NewRNG(5)
	clean := []tensor.Vector{rng.NormVec(4, 0, 1), rng.NormVec(4, 0, 1), rng.NormVec(4, 0, 1)}
	dirty := []tensor.Vector{clean[0], {1, math.NaN(), 2, 3}, clean[2]}
	ks, err := NewKSDistance(4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []DistributionDistance{MMDDistance{}, EnergyDistance{}, ks} {
		for _, pair := range [][2][]tensor.Vector{{dirty, clean}, {clean, dirty}} {
			v, err := d.Distance(pair[0], pair[1])
			if err == nil {
				t.Fatalf("%s accepted a NaN sample (score %g)", d.Name(), v)
			}
			if math.IsNaN(v) {
				t.Fatalf("%s returned NaN instead of an error", d.Name())
			}
		}
	}
	if _, err := MMDUnbiased(dirty, clean, RBFKernel{Gamma: 1}); err == nil {
		t.Fatal("MMDUnbiased accepted a NaN sample")
	}
}
