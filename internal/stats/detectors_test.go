package stats

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func allDetectors(t *testing.T) []DistributionDistance {
	t.Helper()
	ks, err := NewKSDistance(4, 8, tensor.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	return []DistributionDistance{MMDDistance{}, EnergyDistance{}, ks}
}

func TestDetectorNames(t *testing.T) {
	want := map[string]bool{"mmd": true, "energy": true, "ks": true}
	for _, d := range allDetectors(t) {
		if !want[d.Name()] {
			t.Fatalf("unexpected detector name %q", d.Name())
		}
	}
}

func TestDetectorsSeparateShiftedSamples(t *testing.T) {
	rng := tensor.NewRNG(1)
	same1 := gaussianSample(rng, 60, 4, 0, 1)
	same2 := gaussianSample(rng, 60, 4, 0, 1)
	far := gaussianSample(rng, 60, 4, 3, 1)
	for _, d := range allDetectors(t) {
		null, err := d.Distance(same1, same2)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		shifted, err := d.Distance(same1, far)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if shifted <= null {
			t.Fatalf("%s: shifted %g should exceed null %g", d.Name(), shifted, null)
		}
		if shifted <= 2*null {
			t.Fatalf("%s: weak separation: shifted %g vs null %g", d.Name(), shifted, null)
		}
	}
}

func TestDetectorsEmptySample(t *testing.T) {
	for _, d := range allDetectors(t) {
		if _, err := d.Distance(nil, nil); err == nil {
			t.Fatalf("%s: empty samples should error", d.Name())
		}
	}
}

func TestEnergyDistanceProperties(t *testing.T) {
	rng := tensor.NewRNG(2)
	xs := gaussianSample(rng, 30, 3, 0, 1)
	ys := gaussianSample(rng, 25, 3, 1, 2)
	var e EnergyDistance
	a, err := e.Distance(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Distance(ys, xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, b, 1e-9) {
		t.Fatalf("energy not symmetric: %g vs %g", a, b)
	}
	self, err := e.Distance(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if self > 1e-9 {
		t.Fatalf("energy self distance = %g", self)
	}
}

func TestNewKSDistanceValidation(t *testing.T) {
	rng := tensor.NewRNG(3)
	if _, err := NewKSDistance(0, 4, rng); err == nil {
		t.Fatal("dim=0 should error")
	}
	if _, err := NewKSDistance(4, 0, rng); err == nil {
		t.Fatal("projections=0 should error")
	}
}

func TestKSOneDim(t *testing.T) {
	// Identical samples: statistic 0.
	if s := ksOneDim([]float64{1, 2, 3}, []float64{1, 2, 3}); s != 0 {
		t.Fatalf("identical KS = %g", s)
	}
	// Disjoint samples: statistic 1.
	if s := ksOneDim([]float64{1, 2}, []float64{10, 11}); s != 1 {
		t.Fatalf("disjoint KS = %g", s)
	}
	// Interleaved: intermediate.
	s := ksOneDim([]float64{1, 3, 5}, []float64{2, 4, 6})
	if s <= 0 || s >= 1 {
		t.Fatalf("interleaved KS = %g", s)
	}
}

func TestKSDimensionMismatch(t *testing.T) {
	ks, err := NewKSDistance(3, 4, tensor.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	xs := []tensor.Vector{{1, 2}} // wrong dim
	ys := []tensor.Vector{{1, 2, 3}}
	if _, err := ks.Distance(xs, ys); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestCalibrateThresholdAgnostic(t *testing.T) {
	rng := tensor.NewRNG(5)
	sample := gaussianSample(rng, 80, 4, 0, 1)
	for _, d := range allDetectors(t) {
		if d.Name() == "ks" {
			// Rebuild KS with matching dim.
			var err error
			d, err = NewKSDistance(4, 8, tensor.NewRNG(6))
			if err != nil {
				t.Fatal(err)
			}
		}
		delta, err := CalibrateThreshold(d, sample, DefaultCalibrateConfig(), rng)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if delta <= 0 {
			t.Fatalf("%s: threshold = %g", d.Name(), delta)
		}
		// A real shift must exceed the calibrated threshold.
		shifted := gaussianSample(rng, 40, 4, 3, 1)
		v, err := d.Distance(sample[:40], shifted)
		if err != nil {
			t.Fatal(err)
		}
		if v <= delta {
			t.Fatalf("%s: shift %g below threshold %g", d.Name(), v, delta)
		}
	}
}

func TestCalibrateThresholdErrors(t *testing.T) {
	rng := tensor.NewRNG(7)
	var e EnergyDistance
	if _, err := CalibrateThreshold(e, gaussianSample(rng, 2, 2, 0, 1), DefaultCalibrateConfig(), rng); err == nil {
		t.Fatal("tiny sample should error")
	}
	cfg := DefaultCalibrateConfig()
	cfg.Resamples = 0
	if _, err := CalibrateThreshold(e, gaussianSample(rng, 10, 2, 0, 1), cfg, rng); err == nil {
		t.Fatal("zero resamples should error")
	}
}

func TestPropertyEnergyNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		xs := gaussianSample(rng, 10, 3, rng.Norm(), 1)
		ys := gaussianSample(rng, 12, 3, rng.Norm(), 1)
		var e EnergyDistance
		v, err := e.Distance(xs, ys)
		return err == nil && v >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyKSBounded(t *testing.T) {
	ks, err := NewKSDistance(3, 6, tensor.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		xs := gaussianSample(rng, 15, 3, 0, 1)
		ys := gaussianSample(rng, 15, 3, rng.Norm()*2, 1)
		v, err := ks.Distance(xs, ys)
		return err == nil && v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
