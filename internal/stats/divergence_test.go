package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewHistogram(t *testing.T) {
	tests := []struct {
		name   string
		labels []int
		n      int
		want   Histogram
	}{
		{name: "basic", labels: []int{0, 0, 1, 2}, n: 3, want: Histogram{0.5, 0.25, 0.25}},
		{name: "out of range ignored", labels: []int{0, 7, -1}, n: 2, want: Histogram{1, 0}},
		{name: "empty is uniform", labels: nil, n: 4, want: Histogram{0.25, 0.25, 0.25, 0.25}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewHistogram(tt.labels, tt.n)
			if len(got) != len(tt.want) {
				t.Fatalf("len = %d", len(got))
			}
			for i := range got {
				if !almostEqual(got[i], tt.want[i], 1e-12) {
					t.Fatalf("hist = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestHistogramNormalize(t *testing.T) {
	h := Histogram{2, 0, 6}.Normalize()
	if !almostEqual(h[0], 0.25, 1e-12) || !almostEqual(h[2], 0.75, 1e-12) {
		t.Fatalf("normalize = %v", h)
	}
	z := Histogram{0, 0}.Normalize()
	if !almostEqual(z[0], 0.5, 1e-12) {
		t.Fatalf("zero normalize = %v", z)
	}
	// Negative entries are treated as zero mass.
	n := Histogram{-1, 1}.Normalize()
	if n[0] != 0 || !almostEqual(n[1], 1, 1e-12) {
		t.Fatalf("negative normalize = %v", n)
	}
}

func TestKL(t *testing.T) {
	p := Histogram{0.5, 0.5}
	q := Histogram{0.9, 0.1}
	d, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if !almostEqual(d, want, 1e-12) {
		t.Fatalf("kl = %g, want %g", d, want)
	}
	inf, err := KL(Histogram{1, 0}, Histogram{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(inf, 1) {
		t.Fatalf("disjoint KL = %g, want +Inf", inf)
	}
	if _, err := KL(Histogram{1}, Histogram{0.5, 0.5}); err == nil {
		t.Fatal("expected shape error")
	}
	self, err := KL(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(self, 0, 1e-12) {
		t.Fatalf("KL(p||p) = %g", self)
	}
}

func TestJSDProperties(t *testing.T) {
	p := Histogram{0.7, 0.2, 0.1}
	q := Histogram{0.1, 0.3, 0.6}
	a, err := JSD(p, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JSD(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, b, 1e-12) {
		t.Fatalf("JSD not symmetric: %g vs %g", a, b)
	}
	self, err := JSD(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(self, 0, 1e-12) {
		t.Fatalf("JSD(p||p) = %g", self)
	}
	disjoint, err := JSD(Histogram{1, 0}, Histogram{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(disjoint, math.Ln2, 1e-9) {
		t.Fatalf("disjoint JSD = %g, want ln2", disjoint)
	}
	if _, err := JSD(Histogram{}, Histogram{}); !errors.Is(err, ErrEmptySample) {
		t.Fatalf("empty JSD error = %v", err)
	}
	if _, err := JSD(Histogram{1}, Histogram{0.5, 0.5}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestPropertyJSDBoundedSymmetric(t *testing.T) {
	f := func(a, b [5]float64) bool {
		p := make(Histogram, 5)
		q := make(Histogram, 5)
		for i := 0; i < 5; i++ {
			p[i] = math.Abs(math.Mod(a[i], 100))
			q[i] = math.Abs(math.Mod(b[i], 100))
			if math.IsNaN(p[i]) {
				p[i] = 0
			}
			if math.IsNaN(q[i]) {
				q[i] = 0
			}
		}
		p = p.Normalize()
		q = q.Normalize()
		x, err := JSD(p, q)
		if err != nil {
			return false
		}
		y, err := JSD(q, p)
		if err != nil {
			return false
		}
		return x >= 0 && x <= math.Ln2+1e-9 && almostEqual(x, y, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntropy(t *testing.T) {
	if e := Uniform(4).Entropy(); !almostEqual(e, math.Log(4), 1e-12) {
		t.Fatalf("uniform entropy = %g", e)
	}
	if e := (Histogram{1, 0}).Entropy(); !almostEqual(e, 0, 1e-12) {
		t.Fatalf("point-mass entropy = %g", e)
	}
}

func TestMergeHistograms(t *testing.T) {
	h1 := Histogram{1, 0}
	h2 := Histogram{0, 1}
	m, err := MergeHistograms([]Histogram{h1, h2}, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m[0], 0.75, 1e-12) || !almostEqual(m[1], 0.25, 1e-12) {
		t.Fatalf("merge = %v", m)
	}
	if _, err := MergeHistograms(nil, nil); !errors.Is(err, ErrEmptySample) {
		t.Fatalf("empty merge error = %v", err)
	}
	if _, err := MergeHistograms([]Histogram{h1}, []int{1, 2}); err == nil {
		t.Fatal("expected count mismatch error")
	}
	if _, err := MergeHistograms([]Histogram{h1, {1}}, []int{1, 1}); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("shape mismatch error = %v", err)
	}
	if _, err := MergeHistograms([]Histogram{h1}, []int{-1}); err == nil {
		t.Fatal("expected negative count error")
	}
	// Zero total count degrades to uniform.
	u, err := MergeHistograms([]Histogram{h1, h2}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(u[0], 0.5, 1e-12) {
		t.Fatalf("zero-count merge = %v", u)
	}
}
