// Package federation provides the shared simulation harness that ShiftEx
// and every baseline technique run on: a scenario-backed set of parties
// whose data rolls forward window by window, party-side shift detectors,
// a training engine, and per-party evaluation of whichever model each party
// currently holds. It is the in-process counterpart of a deployed
// federation (the TCP path in internal/fl plays that role across
// processes).
package federation

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/detect"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Federation simulates all parties of one scenario. It is driven serially
// by one technique at a time (rounds parallelize internally across parties;
// the Federation's own methods are not safe for concurrent use).
type Federation struct {
	scenario  *dataset.Scenario
	arch      []int
	runner    *fl.LocalRunner
	engine    *fl.Engine
	detectors []*detect.Detector
	window    int
	rng       *tensor.RNG
	// eval is the shared evaluation scratch (cached model + workspace) for
	// every per-party accuracy/loss/stats pass.
	eval *fl.Evaluator
	// initParams memoizes InitialParams: techniques re-request θ0 every
	// window and it is a pure function of the architecture.
	initParams tensor.Vector
}

// New builds a federation over a scenario. arch is the model architecture
// shared by all experts; its input and output widths must match the
// scenario spec.
func New(sc *dataset.Scenario, arch []int, seed uint64) (*Federation, error) {
	if sc == nil {
		return nil, errors.New("federation: nil scenario")
	}
	if len(arch) < 3 {
		return nil, fmt.Errorf("federation: arch needs >=3 widths, got %d", len(arch))
	}
	if arch[0] != sc.Spec.InputDim {
		return nil, fmt.Errorf("federation: arch input %d != spec input %d", arch[0], sc.Spec.InputDim)
	}
	if arch[len(arch)-1] != sc.Spec.NumClasses {
		return nil, fmt.Errorf("federation: arch output %d != spec classes %d", arch[len(arch)-1], sc.Spec.NumClasses)
	}
	rng := tensor.NewRNG(seed)
	parties := make([]*fl.Party, sc.Spec.NumParties)
	detectors := make([]*detect.Detector, sc.Spec.NumParties)
	for p := 0; p < sc.Spec.NumParties; p++ {
		parties[p] = &fl.Party{
			ID:    p,
			Train: sc.Windows[0][p].Train,
			Test:  sc.Windows[0][p].Test,
		}
		d, err := detect.NewDetector(p, sc.Spec.NumClasses, 64)
		if err != nil {
			return nil, err
		}
		detectors[p] = d
	}
	runner := fl.NewLocalRunner(parties, rng.Split())
	eval, err := fl.NewEvaluator(arch)
	if err != nil {
		return nil, err
	}
	return &Federation{
		scenario: sc,
		arch:     append([]int(nil), arch...),
		runner:   runner,
		// Workers 0 = one per core: simulated rounds train parties on every
		// core, bit-identical to the serial path for any worker count.
		engine:    &fl.Engine{Arch: arch, Trainer: runner},
		detectors: detectors,
		rng:       rng,
		eval:      eval,
	}, nil
}

// Spec returns the scenario spec.
func (f *Federation) Spec() dataset.Spec { return f.scenario.Spec }

// Arch returns a copy of the model architecture.
func (f *Federation) Arch() []int { return append([]int(nil), f.arch...) }

// NumParties returns the party count.
func (f *Federation) NumParties() int { return f.scenario.Spec.NumParties }

// Window returns the current window index.
func (f *Federation) Window() int { return f.window }

// NumWindows returns the scenario's window count.
func (f *Federation) NumWindows() int { return len(f.scenario.Windows) }

// RNG returns a fresh RNG derived from the federation's stream.
func (f *Federation) RNG() *tensor.RNG { return f.rng.Split() }

// SetRoundWorkers bounds the per-round party-training fan-out (0 = one
// worker per core). The experiment grid uses this to divide cores between
// concurrently running cells; results are bit-identical for any value.
func (f *Federation) SetRoundWorkers(n int) { f.engine.Workers = n }

// InitialParams returns deterministic initial model parameters.
func (f *Federation) InitialParams() (tensor.Vector, error) {
	if f.initParams == nil {
		m, err := nn.NewMLP(f.arch, tensor.NewRNG(0x1234))
		if err != nil {
			return nil, err
		}
		f.initParams = m.Params()
	}
	return f.initParams.Clone(), nil
}

// SetWindow rolls every party's data forward to window w.
func (f *Federation) SetWindow(w int) error {
	if w < 0 || w >= len(f.scenario.Windows) {
		return fmt.Errorf("federation: window %d out of range [0,%d)", w, len(f.scenario.Windows))
	}
	for p := 0; p < f.NumParties(); p++ {
		pw := f.scenario.Windows[w][p]
		if err := f.runner.SetPartyData(p, pw.Train, pw.Test); err != nil {
			return err
		}
	}
	f.window = w
	return nil
}

// Round trains the selected parties starting from params and returns the
// FedAvg aggregate.
func (f *Federation) Round(params tensor.Vector, selected []int, cfg fl.TrainConfig) (tensor.Vector, []fl.Update, error) {
	return f.engine.Round(params, selected, cfg)
}

// Stats runs the party-side shift detector (Algorithm 1) for one party,
// using the given encoder parameters (the party's currently assigned
// expert).
func (f *Federation) Stats(partyID int, params tensor.Vector) (detect.PartyStats, error) {
	p, ok := f.runner.Party(partyID)
	if !ok {
		return detect.PartyStats{}, fmt.Errorf("federation: unknown party %d", partyID)
	}
	model, err := f.eval.Model(params)
	if err != nil {
		return detect.PartyStats{}, err
	}
	return f.detectors[partyID].Observe(model, p.Train, f.rng)
}

// StatsAll runs the shift detector for every party in ID order against the
// given encoder parameters. Parties that cannot report (dropped out, empty
// window) are skipped; an error is returned only when nobody reports.
func (f *Federation) StatsAll(params tensor.Vector) ([]detect.PartyStats, error) {
	out := make([]detect.PartyStats, 0, f.NumParties())
	var errs []error
	for _, p := range f.PartyIDs() {
		st, err := f.Stats(p, params)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		out = append(out, st)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("federation: no party reported statistics: %w", errors.Join(errs...))
	}
	return out, nil
}

// ResetDetector clears a party's previous-window detection state.
func (f *Federation) ResetDetector(partyID int) error {
	if partyID < 0 || partyID >= len(f.detectors) {
		return fmt.Errorf("federation: unknown party %d", partyID)
	}
	f.detectors[partyID].Reset()
	return nil
}

// EvalParty evaluates parameters on one party's private test split.
func (f *Federation) EvalParty(partyID int, params tensor.Vector) (float64, error) {
	p, ok := f.runner.Party(partyID)
	if !ok {
		return 0, fmt.Errorf("federation: unknown party %d", partyID)
	}
	return f.eval.Accuracy(params, p.Test)
}

// EvalAssignment returns the mean test accuracy over all parties, each
// evaluated with the parameters of the model it is assigned (paramsFor maps
// party ID to parameters). This is the "Accuracy (%)" the paper's
// convergence plots report. Parties that cannot be evaluated (dropped out,
// no test data, missing parameters) are skipped; an error is returned only
// when no party is evaluable.
func (f *Federation) EvalAssignment(paramsFor func(partyID int) tensor.Vector) (float64, error) {
	var total float64
	var counted int
	var errs []error
	for p := 0; p < f.NumParties(); p++ {
		params := paramsFor(p)
		if params == nil {
			errs = append(errs, fmt.Errorf("federation: no parameters for party %d", p))
			continue
		}
		acc, err := f.EvalParty(p, params)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		total += acc
		counted++
	}
	if counted == 0 {
		return 0, fmt.Errorf("federation: no party evaluable: %w", errors.Join(errs...))
	}
	return total / float64(counted), nil
}

// SetPartyData replaces one party's data mid-window — used by tests and by
// live deployments to inject arrivals, departures, and data loss.
func (f *Federation) SetPartyData(partyID int, train, test []dataset.Example) error {
	return f.runner.SetPartyData(partyID, train, test)
}

// PartyHists returns every party's current-window label histogram. In a
// real deployment parties transmit these with their statistics; the
// simulation reads them directly for the baselines that use label
// clustering.
func (f *Federation) PartyHists() []stats.Histogram {
	out := make([]stats.Histogram, f.NumParties())
	for p := 0; p < f.NumParties(); p++ {
		party, _ := f.runner.Party(p)
		out[p] = dataset.LabelHistogram(party.Train, f.Spec().NumClasses)
	}
	return out
}

// PartyIDs returns 0..n-1.
func (f *Federation) PartyIDs() []int {
	ids := make([]int, f.NumParties())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// PartyLoss returns the mean loss of the given parameters on a party's
// training data — used by loss-pattern baselines (FedDrift) and OORT
// utilities.
func (f *Federation) PartyLoss(partyID int, params tensor.Vector) (float64, error) {
	p, ok := f.runner.Party(partyID)
	if !ok {
		return 0, fmt.Errorf("federation: unknown party %d", partyID)
	}
	return f.eval.Loss(params, p.Train)
}

// LocalFineTune trains the given parameters on one party's local data only
// (no aggregation) and returns the personalized parameters — the
// LOCALFINETUNE step of Algorithm 2 for small clusters.
func (f *Federation) LocalFineTune(partyID int, params tensor.Vector, cfg fl.TrainConfig) (tensor.Vector, error) {
	u, err := f.runner.TrainParty(partyID, f.arch, params, cfg)
	if err != nil {
		return nil, err
	}
	return u.Params, nil
}

// Technique is one continual-FL method under evaluation. Window 0 is the
// bootstrap window; RunWindow must be called with consecutive w starting
// at 0 and returns the per-round mean accuracy trace for that window.
type Technique interface {
	Name() string
	RunWindow(f *Federation, w int) ([]float64, error)
	// Assignments maps each party to the ID of the model it currently
	// uses (a single-model technique returns 0 for everyone).
	Assignments() map[int]int
}
