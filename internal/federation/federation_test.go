package federation

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/tensor"
)

func testFederation(t *testing.T, seed uint64) *Federation {
	t.Helper()
	spec := dataset.FMoWSpec()
	spec.NumParties = 8
	spec.SamplesPerParty = 30
	spec.TestPerParty = 15
	spec.Windows = 3
	sc, err := dataset.BuildScenario(spec, dataset.DefaultShiftConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := New(sc, []int{spec.InputDim, 20, 10, spec.NumClasses}, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func TestNewValidation(t *testing.T) {
	spec := dataset.FMoWSpec().Scale(0.1)
	sc, err := dataset.BuildScenario(spec, dataset.DefaultShiftConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, []int{3, 4, 3}, 1); err == nil {
		t.Fatal("nil scenario should error")
	}
	if _, err := New(sc, []int{3}, 1); err == nil {
		t.Fatal("short arch should error")
	}
	if _, err := New(sc, []int{99, 8, spec.NumClasses}, 1); err == nil {
		t.Fatal("wrong input dim should error")
	}
	if _, err := New(sc, []int{spec.InputDim, 8, 99}, 1); err == nil {
		t.Fatal("wrong output dim should error")
	}
}

func TestSetWindowRollsData(t *testing.T) {
	fed := testFederation(t, 10)
	if fed.Window() != 0 {
		t.Fatalf("initial window = %d", fed.Window())
	}
	if err := fed.SetWindow(2); err != nil {
		t.Fatal(err)
	}
	if fed.Window() != 2 {
		t.Fatalf("window = %d", fed.Window())
	}
	if err := fed.SetWindow(99); err == nil {
		t.Fatal("out-of-range window should error")
	}
	if err := fed.SetWindow(-1); err == nil {
		t.Fatal("negative window should error")
	}
}

func TestStatsDetectsWindowShift(t *testing.T) {
	fed := testFederation(t, 20)
	params, err := fed.InitialParams()
	if err != nil {
		t.Fatal(err)
	}
	st0, err := fed.Stats(0, params)
	if err != nil {
		t.Fatal(err)
	}
	if st0.MMD != 0 {
		t.Fatalf("first observation MMD = %g", st0.MMD)
	}
	if err := fed.SetWindow(1); err != nil {
		t.Fatal(err)
	}
	st1, err := fed.Stats(0, params)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Window != 1 {
		t.Fatalf("window counter = %d", st1.Window)
	}
	if _, err := fed.Stats(999, params); err == nil {
		t.Fatal("unknown party should error")
	}
}

func TestEvalAssignment(t *testing.T) {
	fed := testFederation(t, 30)
	params, err := fed.InitialParams()
	if err != nil {
		t.Fatal(err)
	}
	acc, err := fed.EvalAssignment(func(int) tensor.Vector { return params })
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %g", acc)
	}
	if _, err := fed.EvalAssignment(func(int) tensor.Vector { return nil }); err == nil {
		t.Fatal("nil params should error")
	}
}

func TestPartyHistsAndIDs(t *testing.T) {
	fed := testFederation(t, 40)
	hists := fed.PartyHists()
	if len(hists) != fed.NumParties() {
		t.Fatalf("hists = %d", len(hists))
	}
	for _, h := range hists {
		var sum float64
		for _, v := range h {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("histogram sums to %g", sum)
		}
	}
	ids := fed.PartyIDs()
	if len(ids) != fed.NumParties() || ids[0] != 0 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestPartyLoss(t *testing.T) {
	fed := testFederation(t, 50)
	params, err := fed.InitialParams()
	if err != nil {
		t.Fatal(err)
	}
	loss, err := fed.PartyLoss(0, params)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("untrained loss = %g", loss)
	}
	if _, err := fed.PartyLoss(999, params); err == nil {
		t.Fatal("unknown party should error")
	}
}

func TestLocalFineTuneImproves(t *testing.T) {
	fed := testFederation(t, 60)
	params, err := fed.InitialParams()
	if err != nil {
		t.Fatal(err)
	}
	cfg := fl.TrainConfig{Epochs: 5, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1}
	tuned, err := fed.LocalFineTune(0, params, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before, err := fed.PartyLoss(0, params)
	if err != nil {
		t.Fatal(err)
	}
	after, err := fed.PartyLoss(0, tuned)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("fine-tune did not reduce loss: %g -> %g", before, after)
	}
}

func TestRoundTrainsSelected(t *testing.T) {
	fed := testFederation(t, 70)
	params, err := fed.InitialParams()
	if err != nil {
		t.Fatal(err)
	}
	cfg := fl.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.02, Seed: 2}
	next, updates, err := fed.Round(params, []int{0, 1, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 3 {
		t.Fatalf("updates = %d", len(updates))
	}
	if len(next) != len(params) {
		t.Fatal("aggregate shape mismatch")
	}
}

func TestResetDetector(t *testing.T) {
	fed := testFederation(t, 80)
	if err := fed.ResetDetector(0); err != nil {
		t.Fatal(err)
	}
	if err := fed.ResetDetector(-1); err == nil {
		t.Fatal("negative party should error")
	}
	if err := fed.ResetDetector(999); err == nil {
		t.Fatal("unknown party should error")
	}
}

func TestArchIsCopy(t *testing.T) {
	fed := testFederation(t, 90)
	a := fed.Arch()
	a[0] = 999
	if fed.Arch()[0] == 999 {
		t.Fatal("Arch leaked internal slice")
	}
}
