// Package dataset generates the synthetic federated benchmarks that stand in
// for the paper's image corpora (FMoW, CIFAR-10-C, Tiny-ImageNet-C, FEMNIST,
// Fashion-MNIST). Each benchmark is a Gaussian-mixture class manifold in a
// feature space of configurable dimension; covariate shift is realized by
// corruption transforms of the inputs (the analogue of the weather and
// sensor corruptions in *-C datasets), and label shift by Dirichlet
// re-sampling of class proportions — the same P(X)/P(Y) structure the
// paper's experiments induce.
//
// All generation is deterministic given a seed, so every experiment is
// exactly reproducible.
package dataset

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Example is one labeled observation.
type Example struct {
	X tensor.Vector
	Y int
}

// Spec describes a synthetic benchmark.
type Spec struct {
	Name            string
	NumClasses      int
	InputDim        int
	NumParties      int
	Windows         int // number of stream windows including W0
	SamplesPerParty int // training samples per party per window
	TestPerParty    int // held-out samples per party per window
	ClassSeparation float64
	Noise           float64
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	switch {
	case s.NumClasses < 2:
		return fmt.Errorf("dataset %q: need >=2 classes, got %d", s.Name, s.NumClasses)
	case s.InputDim < 2:
		return fmt.Errorf("dataset %q: need input dim >=2, got %d", s.Name, s.InputDim)
	case s.NumParties < 1:
		return fmt.Errorf("dataset %q: need >=1 party, got %d", s.Name, s.NumParties)
	case s.Windows < 1:
		return fmt.Errorf("dataset %q: need >=1 window, got %d", s.Name, s.Windows)
	case s.SamplesPerParty < 1:
		return fmt.Errorf("dataset %q: need >=1 sample per party, got %d", s.Name, s.SamplesPerParty)
	case s.TestPerParty < 1:
		return fmt.Errorf("dataset %q: need >=1 test sample per party, got %d", s.Name, s.TestPerParty)
	case s.ClassSeparation <= 0 || s.Noise <= 0:
		return fmt.Errorf("dataset %q: separation and noise must be positive", s.Name)
	}
	return nil
}

// Scale returns a copy of the spec with party and sample counts scaled by f
// (minimum 1 each); it lets tests run miniature versions of the paper-scale
// presets without changing their structure.
func (s Spec) Scale(f float64) Spec {
	if f <= 0 {
		return s
	}
	scale := func(n int) int {
		v := int(float64(n) * f)
		if v < 1 {
			return 1
		}
		return v
	}
	s.NumParties = scale(s.NumParties)
	s.SamplesPerParty = scale(s.SamplesPerParty)
	s.TestPerParty = scale(s.TestPerParty)
	return s
}

// Preset specs mirror the paper's five benchmarks (§6): class counts and
// party counts follow the paper; input dimensionality is the synthetic
// feature-space width standing in for image resolution.

// FMoWSpec models the Functional Map of the World setting: 50 parties,
// 10 land-use classes, strong natural covariate diversity.
func FMoWSpec() Spec {
	return Spec{
		Name: "fmow", NumClasses: 10, InputDim: 32, NumParties: 50,
		Windows: 5, SamplesPerParty: 60, TestPerParty: 30,
		ClassSeparation: 3.0, Noise: 1.0,
	}
}

// CIFAR10CSpec models CIFAR-10-C: 200 parties, 10 classes, weather
// corruptions.
func CIFAR10CSpec() Spec {
	return Spec{
		Name: "cifar10c", NumClasses: 10, InputDim: 24, NumParties: 200,
		Windows: 5, SamplesPerParty: 40, TestPerParty: 20,
		ClassSeparation: 3.0, Noise: 1.0,
	}
}

// TinyImageNetCSpec models Tiny-ImageNet-C at reduced class count (20 of
// 200) to stay laptop-tractable while preserving a many-class regime.
func TinyImageNetCSpec() Spec {
	return Spec{
		Name: "tinyimagenetc", NumClasses: 20, InputDim: 40, NumParties: 200,
		Windows: 6, SamplesPerParty: 40, TestPerParty: 20,
		ClassSeparation: 2.6, Noise: 1.0,
	}
}

// FEMNISTSpec models FEMNIST: 200 parties, 26 character classes,
// user-specific transforms.
func FEMNISTSpec() Spec {
	return Spec{
		Name: "femnist", NumClasses: 26, InputDim: 28, NumParties: 200,
		Windows: 6, SamplesPerParty: 40, TestPerParty: 20,
		ClassSeparation: 2.8, Noise: 1.0,
	}
}

// FashionMNISTSpec models Fashion-MNIST: 200 parties, 10 clothing classes.
func FashionMNISTSpec() Spec {
	return Spec{
		Name: "fashionmnist", NumClasses: 10, InputDim: 28, NumParties: 200,
		Windows: 6, SamplesPerParty: 40, TestPerParty: 20,
		ClassSeparation: 2.8, Noise: 1.0,
	}
}

// Generator produces examples from a fixed class-prototype mixture.
type Generator struct {
	spec       Spec
	prototypes []tensor.Vector
}

// NewGenerator builds class prototypes for the spec deterministically from
// the seed.
//
// Prototypes sit on a ring in the first two "semantic" dimensions, spaced
// so adjacent classes are ClassSeparation apart; the remaining "context"
// dimensions carry a small class-specific texture. This geometry mirrors
// how image corruptions behave: a corruption that rotates or contracts the
// semantic subspace maps one class's manifold onto another's — the
// cross-regime label conflict that makes a clean-trained model fail on
// corrupted inputs (Figure 1 of the paper) — while context dimensions shift
// with the corruption's systematic signature, which is what the MMD
// detector picks up.
func NewGenerator(spec Spec, seed uint64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed)
	g := &Generator{spec: spec}
	g.prototypes = make([]tensor.Vector, spec.NumClasses)
	// Radius such that adjacent ring prototypes are ClassSeparation apart.
	radius := spec.ClassSeparation / (2 * math.Sin(math.Pi/float64(spec.NumClasses)))
	for c := range g.prototypes {
		p := tensor.NewVector(spec.InputDim)
		theta := 2 * math.Pi * float64(c) / float64(spec.NumClasses)
		p[0] = radius * math.Cos(theta)
		p[1] = radius * math.Sin(theta)
		// Faint class texture in context dimensions: too weak to carry the
		// class alone, enough to make the manifold realistic.
		for i := 2; i < spec.InputDim; i++ {
			p[i] = 0.3 * rng.Norm()
		}
		g.prototypes[c] = p
	}
	return g, nil
}

// Spec returns the generator's spec.
func (g *Generator) Spec() Spec { return g.spec }

// Sample draws one example of class y (prototype + isotropic noise).
func (g *Generator) Sample(y int, rng *tensor.RNG) (Example, error) {
	if y < 0 || y >= g.spec.NumClasses {
		return Example{}, fmt.Errorf("dataset: class %d out of range [0,%d)", y, g.spec.NumClasses)
	}
	x := g.prototypes[y].Clone()
	for i := range x {
		x[i] += g.spec.Noise * rng.Norm()
	}
	return Example{X: x, Y: y}, nil
}

// SampleSet draws n examples with labels drawn from labelDist, applying the
// given corruption to each input.
func (g *Generator) SampleSet(n int, labelDist tensor.Vector, corr Corruption, rng *tensor.RNG) ([]Example, error) {
	if n <= 0 {
		return nil, errors.New("dataset: sample count must be positive")
	}
	if len(labelDist) != g.spec.NumClasses {
		return nil, fmt.Errorf("dataset: label dist len %d, want %d", len(labelDist), g.spec.NumClasses)
	}
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		y := rng.Categorical(labelDist)
		ex, err := g.Sample(y, rng)
		if err != nil {
			return nil, err
		}
		ex.X = corr.Apply(ex.X, rng)
		out = append(out, ex)
	}
	return out, nil
}

// Labels extracts the label slice of a sample set.
func Labels(exs []Example) []int {
	out := make([]int, len(exs))
	for i, e := range exs {
		out[i] = e.Y
	}
	return out
}

// Inputs extracts the input slice of a sample set.
func Inputs(exs []Example) []tensor.Vector {
	out := make([]tensor.Vector, len(exs))
	for i, e := range exs {
		out[i] = e.X
	}
	return out
}

// LabelHistogram returns the normalized label histogram of a sample set.
func LabelHistogram(exs []Example, numClasses int) stats.Histogram {
	return stats.NewHistogram(Labels(exs), numClasses)
}
