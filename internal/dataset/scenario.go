package dataset

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// cosSin is a tiny helper so corruption.go avoids importing math twice.
func cosSin(theta float64) (float64, float64) {
	return math.Cos(theta), math.Sin(theta)
}

// Regime is the data-generating configuration of one party in one window:
// a covariate corruption plus a label distribution.
type Regime struct {
	Corruption Corruption
	LabelDist  tensor.Vector
}

// PartyWindow is one party's data for one stream window.
type PartyWindow struct {
	Train  []Example
	Test   []Example
	Regime Regime
}

// Scenario is a full streaming-FL workload: per-window, per-party data with
// a shift schedule. Windows[0] is the W0 bootstrap window.
type Scenario struct {
	Spec    Spec
	Windows [][]PartyWindow // [window][party]
}

// ShiftConfig controls how distribution shifts are scheduled across windows,
// mirroring §6 of the paper.
type ShiftConfig struct {
	// ShiftFraction is the fraction of parties that receive a new regime
	// at each window boundary (the paper uses 0.5).
	ShiftFraction float64
	// CovariateKinds is the pool of corruption families to draw from.
	CovariateKinds []CorruptionKind
	// LabelShift enables Dirichlet re-sampling of label distributions for
	// shifted parties.
	LabelShift bool
	// DirichletAlpha controls label skew (lower = more skewed); 0 means 0.5.
	DirichletAlpha float64
	// RegimesPerWindow bounds how many distinct new corruption regimes
	// appear at one window boundary; shifted parties are spread across
	// them. 0 means 2.
	RegimesPerWindow int
	// SeverityMin and SeverityMax bound the corruption severity drawn for
	// new regimes (inclusive). Zero values mean 1 and 5.
	SeverityMin, SeverityMax int
}

// DefaultShiftConfig mirrors the paper's protocol: 50 % of parties shift per
// window across a small number of shared regimes.
func DefaultShiftConfig() ShiftConfig {
	return ShiftConfig{
		ShiftFraction:    0.5,
		CovariateKinds:   WeatherKinds(),
		LabelShift:       true,
		DirichletAlpha:   0.5,
		RegimesPerWindow: 2,
	}
}

func (c ShiftConfig) withDefaults() ShiftConfig {
	if c.ShiftFraction <= 0 || c.ShiftFraction > 1 {
		c.ShiftFraction = 0.5
	}
	if len(c.CovariateKinds) == 0 {
		c.CovariateKinds = WeatherKinds()
	}
	if c.DirichletAlpha <= 0 {
		c.DirichletAlpha = 0.5
	}
	if c.RegimesPerWindow <= 0 {
		c.RegimesPerWindow = 2
	}
	if c.SeverityMin < 1 || c.SeverityMin > 5 {
		c.SeverityMin = 1
	}
	if c.SeverityMax < c.SeverityMin || c.SeverityMax > 5 {
		c.SeverityMax = 5
	}
	return c
}

// BuildScenario generates a complete streaming workload. Window 0 is clean
// (no corruption, mildly non-IID labels); at each subsequent window boundary
// ShiftFraction of the parties are re-assigned to freshly drawn regimes
// while the rest keep their previous regime — the paper's partial population
// shift.
func BuildScenario(spec Spec, cfg ShiftConfig, seed uint64) (*Scenario, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	gen, err := NewGenerator(spec, seed)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed ^ 0xabcdef12345)

	sc := &Scenario{Spec: spec, Windows: make([][]PartyWindow, spec.Windows)}

	// Window 0 regimes: clean inputs, mildly non-IID labels (alpha=5) so
	// FLIPS clustering has structure to work with without extreme skew.
	regimes := make([]Regime, spec.NumParties)
	for p := range regimes {
		regimes[p] = Regime{
			Corruption: Corruption{},
			LabelDist:  rng.Dirichlet(spec.NumClasses, 5),
		}
	}

	for w := 0; w < spec.Windows; w++ {
		if w > 0 {
			shiftRegimes(regimes, cfg, rng)
		}
		row := make([]PartyWindow, spec.NumParties)
		for p := 0; p < spec.NumParties; p++ {
			train, err := gen.SampleSet(spec.SamplesPerParty, regimes[p].LabelDist, regimes[p].Corruption, rng)
			if err != nil {
				return nil, fmt.Errorf("window %d party %d train: %w", w, p, err)
			}
			test, err := gen.SampleSet(spec.TestPerParty, regimes[p].LabelDist, regimes[p].Corruption, rng)
			if err != nil {
				return nil, fmt.Errorf("window %d party %d test: %w", w, p, err)
			}
			row[p] = PartyWindow{Train: train, Test: test, Regime: regimes[p]}
		}
		sc.Windows[w] = row
	}
	return sc, nil
}

// shiftRegimes re-assigns a ShiftFraction subset of parties to newly drawn
// regimes in place.
func shiftRegimes(regimes []Regime, cfg ShiftConfig, rng *tensor.RNG) {
	n := len(regimes)
	numShift := int(cfg.ShiftFraction * float64(n))
	if numShift == 0 {
		numShift = 1
	}
	shifted := rng.Sample(n, numShift)

	// Draw the window's new shared covariate regimes. Corruptions are
	// shared across the shifted subpopulation (weather hits a region),
	// while label shift is party-specific (class prevalence moves
	// per party), so label clustering cannot stand in for covariate
	// clustering.
	newCorruptions := make([]Corruption, cfg.RegimesPerWindow)
	numClasses := len(regimes[0].LabelDist)
	for i := range newCorruptions {
		kind := cfg.CovariateKinds[rng.Intn(len(cfg.CovariateKinds))]
		severity := cfg.SeverityMin + rng.Intn(cfg.SeverityMax-cfg.SeverityMin+1)
		newCorruptions[i] = Corruption{Kind: kind, Severity: severity}
	}
	for j, p := range shifted {
		label := regimes[p].LabelDist
		if cfg.LabelShift {
			label = rng.Dirichlet(numClasses, cfg.DirichletAlpha)
		}
		regimes[p] = Regime{
			Corruption: newCorruptions[j%len(newCorruptions)],
			LabelDist:  label,
		}
	}
}

// GlobalTest pools every party's test split for a window — the evaluation
// set used for the convergence plots.
func (s *Scenario) GlobalTest(window int) ([]Example, error) {
	if window < 0 || window >= len(s.Windows) {
		return nil, fmt.Errorf("dataset: window %d out of range [0,%d)", window, len(s.Windows))
	}
	var out []Example
	for _, pw := range s.Windows[window] {
		out = append(out, pw.Test...)
	}
	return out, nil
}

// NumRegimes returns the number of distinct corruption regimes present in a
// window, a ground-truth reference for expert-count assertions.
func (s *Scenario) NumRegimes(window int) int {
	if window < 0 || window >= len(s.Windows) {
		return 0
	}
	seen := make(map[Corruption]bool)
	for _, pw := range s.Windows[window] {
		seen[pw.Regime.Corruption] = true
	}
	return len(seen)
}
