package dataset

import (
	"fmt"

	"repro/internal/tensor"
)

// CorruptionKind identifies a family of covariate-shift transforms. The
// weather kinds mirror the corruption groups of CIFAR-10-C and
// Tiny-ImageNet-C (Fig. 1 of the paper); Rotate/Scale/Jitter mirror the
// synthetic PyTorch transforms used for FEMNIST and Fashion-MNIST.
//
// Each corruption acts on the generator's geometry in two ways:
//
//   - It transforms the semantic subspace (dims 0-1) — rotation, radial
//     contraction/expansion, distortion. Because class prototypes live on a
//     ring there, a rotated or contracted regime collides with other
//     classes' clean manifolds: a model trained on one regime misreads the
//     other, the negative-transfer effect the paper's Figure 1 quantifies.
//     A model trained *within* the regime is unaffected (the transform is
//     invertible), so P(Y|X) is preserved in the semantic sense.
//
//   - It translates the context dimensions (dims 2+) by a deterministic
//     per-(kind,severity) signature — the "weather texture". This moves
//     P(X) in a way kernel MMD detects and cluster centroids separate on,
//     without carrying label information.
type CorruptionKind int

// Corruption kinds. CorruptNone is the identity and is the zero value so an
// uncorrupted window needs no configuration.
const (
	CorruptNone CorruptionKind = iota
	CorruptFog
	CorruptRain
	CorruptSnow
	CorruptFrost
	CorruptBlur
	CorruptNoise
	CorruptRotate
	CorruptScale
	CorruptJitter
)

// WeatherKinds lists the CIFAR-10-C-style corruption families.
func WeatherKinds() []CorruptionKind {
	return []CorruptionKind{CorruptFog, CorruptRain, CorruptSnow, CorruptFrost, CorruptBlur, CorruptNoise}
}

// SyntheticKinds lists the FEMNIST/Fashion-MNIST-style transform families.
func SyntheticKinds() []CorruptionKind {
	return []CorruptionKind{CorruptRotate, CorruptScale, CorruptJitter, CorruptNoise}
}

// String implements fmt.Stringer.
func (k CorruptionKind) String() string {
	switch k {
	case CorruptNone:
		return "none"
	case CorruptFog:
		return "fog"
	case CorruptRain:
		return "rain"
	case CorruptSnow:
		return "snow"
	case CorruptFrost:
		return "frost"
	case CorruptBlur:
		return "blur"
	case CorruptNoise:
		return "noise"
	case CorruptRotate:
		return "rotate"
	case CorruptScale:
		return "scale"
	case CorruptJitter:
		return "jitter"
	default:
		return fmt.Sprintf("corruption(%d)", int(k))
	}
}

// Corruption is a deterministic input transform parameterized by kind and
// severity 1..5 (0 severity or CorruptNone is the identity). Two parties
// with the same corruption see the same transformed distribution, which is
// what lets the aggregator cluster them into a shared covariate regime.
type Corruption struct {
	Kind     CorruptionKind
	Severity int
}

// IsIdentity reports whether the corruption leaves inputs unchanged.
func (c Corruption) IsIdentity() bool {
	return c.Kind == CorruptNone || c.Severity <= 0
}

// String implements fmt.Stringer.
func (c Corruption) String() string {
	if c.IsIdentity() {
		return "none"
	}
	return fmt.Sprintf("%s/%d", c.Kind, c.Severity)
}

// severityScale maps severity 1..5 onto [0.2, 1.0].
func (c Corruption) severityScale() float64 {
	s := c.Severity
	if s < 1 {
		s = 1
	}
	if s > 5 {
		s = 5
	}
	return float64(s) / 5
}

// patternVec returns a deterministic per-(kind,severity) signature vector
// of length n; corruption structure is identical across all parties so
// that corruption regimes are clusterable.
func (c Corruption) patternVec(n int) tensor.Vector {
	seed := uint64(c.Kind)*1_000_003 + uint64(c.Severity)*7919 + 0x5eed
	rng := tensor.NewRNG(seed)
	return rng.NormVec(n, 0, 1)
}

// rotateSemantic rotates the semantic plane (dims 0-1) by theta radians.
func rotateSemantic(x tensor.Vector, theta float64) {
	if len(x) < 2 {
		return
	}
	cos, sin := cosSin(theta)
	a, b := x[0], x[1]
	x[0] = cos*a - sin*b
	x[1] = sin*a + cos*b
}

// scaleSemantic scales the semantic plane radially.
func scaleSemantic(x tensor.Vector, factor float64) {
	if len(x) < 2 {
		return
	}
	x[0] *= factor
	x[1] *= factor
}

// shiftContext translates the context dims (2+) by scale·pattern.
func (c Corruption) shiftContext(x tensor.Vector, scale float64) {
	if len(x) <= 2 {
		return
	}
	pattern := c.patternVec(len(x) - 2)
	for i := 2; i < len(x); i++ {
		x[i] += scale * pattern[i-2]
	}
}

// Apply transforms x (returning a new vector) according to the corruption.
// The rng drives only per-example stochastic components (noise draws,
// occlusion); the systematic component is deterministic per
// (kind, severity).
func (c Corruption) Apply(x tensor.Vector, rng *tensor.RNG) tensor.Vector {
	if c.IsIdentity() {
		return x
	}
	s := c.severityScale() // in [0.2, 1]
	out := x.Clone()
	switch c.Kind {
	case CorruptFog:
		// Low contrast: contract the semantic ring (classes crowd
		// together) and lay down the fog texture.
		scaleSemantic(out, 1-0.45*s)
		rotateSemantic(out, 0.8*s)
		c.shiftContext(out, 2.0*s)
	case CorruptRain:
		// Streaks skew the view: moderate rotation plus texture.
		rotateSemantic(out, 1.4*s)
		c.shiftContext(out, 1.6*s)
	case CorruptSnow:
		// Bright occlusions: rotation, per-dim white-out, texture.
		rotateSemantic(out, 1.1*s)
		for i := 2; i < len(out); i++ {
			if rng.Float64() < 0.15*s {
				out[i] = 2.5 * s
			}
		}
		c.shiftContext(out, 1.8*s)
	case CorruptFrost:
		// Crystalline distortion: radial expansion plus rotation.
		scaleSemantic(out, 1+0.8*s)
		rotateSemantic(out, 0.9*s)
		c.shiftContext(out, 1.3*s)
	case CorruptBlur:
		// Smoothing: contract the ring slightly and smear context dims
		// with a moving average.
		scaleSemantic(out, 1-0.3*s)
		w := 1 + int(3*s)
		blurContext(out, w)
		c.shiftContext(out, 0.9*s)
	case CorruptNoise:
		// Sensor noise: SNR reduction everywhere plus a faint signature.
		for i := range out {
			out[i] += 1.2 * s * rng.Norm()
		}
		c.shiftContext(out, 0.8*s)
	case CorruptRotate:
		// Geometric rotation of the view.
		rotateSemantic(out, 1.6*s)
		c.shiftContext(out, 0.8*s)
	case CorruptScale:
		// Zoom: radial expansion of everything.
		scaleSemantic(out, 1+1.4*s)
		for i := 2; i < len(out); i++ {
			out[i] *= 1 + 0.4*s
		}
		c.shiftContext(out, 0.6*s)
	case CorruptJitter:
		// Color jitter: anisotropic distortion of the semantic plane plus
		// per-dim gain on context.
		if len(out) >= 2 {
			out[0] *= 1 + 0.9*s
			out[1] *= 1 - 0.5*s
		}
		gain := c.patternVec(len(out))
		for i := 2; i < len(out); i++ {
			out[i] *= 1 + 0.5*s*clamp(gain[i], -1, 1)
		}
		c.shiftContext(out, 0.8*s)
	default:
		// Unknown kind: identity, so stale configs degrade gracefully.
	}
	return out
}

// blurContext applies a moving average of half-width w over dims 2+.
func blurContext(x tensor.Vector, w int) {
	if len(x) <= 3 {
		return
	}
	ctx := x[2:]
	blurred := tensor.NewVector(len(ctx))
	for i := range ctx {
		lo, hi := i-w, i+w
		if lo < 0 {
			lo = 0
		}
		if hi >= len(ctx) {
			hi = len(ctx) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += ctx[j]
		}
		blurred[i] = sum / float64(hi-lo+1)
	}
	copy(ctx, blurred)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
