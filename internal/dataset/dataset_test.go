package dataset

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Spec)
		wantErr bool
	}{
		{name: "valid", mutate: func(s *Spec) {}},
		{name: "one class", mutate: func(s *Spec) { s.NumClasses = 1 }, wantErr: true},
		{name: "tiny dim", mutate: func(s *Spec) { s.InputDim = 1 }, wantErr: true},
		{name: "no parties", mutate: func(s *Spec) { s.NumParties = 0 }, wantErr: true},
		{name: "no windows", mutate: func(s *Spec) { s.Windows = 0 }, wantErr: true},
		{name: "no samples", mutate: func(s *Spec) { s.SamplesPerParty = 0 }, wantErr: true},
		{name: "no test", mutate: func(s *Spec) { s.TestPerParty = 0 }, wantErr: true},
		{name: "zero noise", mutate: func(s *Spec) { s.Noise = 0 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := FMoWSpec()
			tt.mutate(&s)
			err := s.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestAllPresetsValid(t *testing.T) {
	for _, s := range []Spec{FMoWSpec(), CIFAR10CSpec(), TinyImageNetCSpec(), FEMNISTSpec(), FashionMNISTSpec()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", s.Name, err)
		}
	}
}

func TestSpecScale(t *testing.T) {
	s := CIFAR10CSpec().Scale(0.1)
	if s.NumParties != 20 {
		t.Fatalf("scaled parties = %d", s.NumParties)
	}
	if s.NumClasses != 10 {
		t.Fatal("scale must not change class count")
	}
	tiny := CIFAR10CSpec().Scale(0.0001)
	if tiny.NumParties < 1 || tiny.SamplesPerParty < 1 {
		t.Fatal("scale floor of 1 violated")
	}
	same := CIFAR10CSpec().Scale(-1)
	if same.NumParties != 200 {
		t.Fatal("non-positive factor should be identity")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec := FMoWSpec().Scale(0.1)
	g1, err := NewGenerator(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := g1.Sample(3, tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := g2.Sample(3, tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1.X {
		if e1.X[i] != e2.X[i] {
			t.Fatal("same seed must produce identical samples")
		}
	}
}

func TestGeneratorClassesAreSeparable(t *testing.T) {
	spec := FMoWSpec()
	g, err := NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	// Within-class distance must be smaller than between-class distance on
	// average.
	var within, between float64
	const trials = 200
	for i := 0; i < trials; i++ {
		a, err := g.Sample(0, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Sample(0, rng)
		if err != nil {
			t.Fatal(err)
		}
		c, err := g.Sample(1, rng)
		if err != nil {
			t.Fatal(err)
		}
		within += tensor.Distance(a.X, b.X)
		between += tensor.Distance(a.X, c.X)
	}
	if between <= within {
		t.Fatalf("classes not separable: within=%g between=%g", within, between)
	}
}

func TestGeneratorSampleErrors(t *testing.T) {
	g, err := NewGenerator(FMoWSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(1)
	if _, err := g.Sample(-1, rng); err == nil {
		t.Fatal("negative class should error")
	}
	if _, err := g.Sample(99, rng); err == nil {
		t.Fatal("out-of-range class should error")
	}
	if _, err := g.SampleSet(0, tensor.NewVector(10), Corruption{}, rng); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := g.SampleSet(5, tensor.NewVector(3), Corruption{}, rng); err == nil {
		t.Fatal("wrong label dist length should error")
	}
}

func TestSampleSetFollowsLabelDist(t *testing.T) {
	spec := FMoWSpec()
	g, err := NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	dist := tensor.NewVector(spec.NumClasses)
	dist[2] = 1 // all mass on class 2
	exs, err := g.SampleSet(50, dist, Corruption{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exs {
		if e.Y != 2 {
			t.Fatalf("label %d, want 2", e.Y)
		}
	}
	h := LabelHistogram(exs, spec.NumClasses)
	if h[2] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestLabelsInputs(t *testing.T) {
	exs := []Example{{X: tensor.Vector{1}, Y: 3}, {X: tensor.Vector{2}, Y: 1}}
	ls := Labels(exs)
	if ls[0] != 3 || ls[1] != 1 {
		t.Fatalf("labels = %v", ls)
	}
	xs := Inputs(exs)
	if xs[1][0] != 2 {
		t.Fatalf("inputs = %v", xs)
	}
}

func TestCorruptionIdentity(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.Vector{1, 2, 3, 4}
	if got := (Corruption{}).Apply(x, rng); &got[0] != &x[0] {
		t.Fatal("identity corruption should return input unchanged")
	}
	c := Corruption{Kind: CorruptFog, Severity: 0}
	if !c.IsIdentity() {
		t.Fatal("severity 0 should be identity")
	}
}

func TestCorruptionsShiftDistribution(t *testing.T) {
	spec := FMoWSpec()
	g, err := NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	uniform := stats.Histogram(tensor.Vector(stats.Uniform(spec.NumClasses)))
	clean, err := g.SampleSet(60, tensor.Vector(uniform), Corruption{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range append(WeatherKinds(), SyntheticKinds()...) {
		c := Corruption{Kind: kind, Severity: 4}
		corrupted, err := g.SampleSet(60, tensor.Vector(uniform), c, rng)
		if err != nil {
			t.Fatal(err)
		}
		mmd, err := stats.MMDAuto(Inputs(clean), Inputs(corrupted))
		if err != nil {
			t.Fatal(err)
		}
		if mmd < 0.01 {
			t.Errorf("corruption %s produced negligible covariate shift: MMD=%g", kind, mmd)
		}
	}
}

func TestCorruptionSeverityMonotone(t *testing.T) {
	spec := FMoWSpec()
	g, err := NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(6)
	uniform := tensor.Vector(stats.Uniform(spec.NumClasses))
	clean, err := g.SampleSet(80, uniform, Corruption{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	low, err := g.SampleSet(80, uniform, Corruption{Kind: CorruptNoise, Severity: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	high, err := g.SampleSet(80, uniform, Corruption{Kind: CorruptNoise, Severity: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Use a shared kernel bandwidth so the comparison is meaningful.
	gamma := stats.MedianHeuristicGamma(Inputs(clean), nil)
	k := stats.RBFKernel{Gamma: gamma}
	mLow, err := stats.MMD(Inputs(clean), Inputs(low), k)
	if err != nil {
		t.Fatal(err)
	}
	mHigh, err := stats.MMD(Inputs(clean), Inputs(high), k)
	if err != nil {
		t.Fatal(err)
	}
	if mHigh <= mLow {
		t.Fatalf("severity should increase MMD: sev1=%g sev5=%g", mLow, mHigh)
	}
}

func TestCorruptionString(t *testing.T) {
	if got := (Corruption{Kind: CorruptFog, Severity: 3}).String(); got != "fog/3" {
		t.Fatalf("String = %q", got)
	}
	if got := (Corruption{}).String(); got != "none" {
		t.Fatalf("identity String = %q", got)
	}
	if got := CorruptionKind(99).String(); got != "corruption(99)" {
		t.Fatalf("unknown kind String = %q", got)
	}
}

func TestCorruptionPreservesConditional(t *testing.T) {
	// Covariate shift must keep classes separable in the corrupted space:
	// P(Y|X) semantics survive the transform.
	spec := FMoWSpec()
	g, err := NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(7)
	c := Corruption{Kind: CorruptRotate, Severity: 3}
	var within, between float64
	for i := 0; i < 100; i++ {
		a, _ := g.Sample(0, rng)
		b, _ := g.Sample(0, rng)
		d, _ := g.Sample(1, rng)
		ax := c.Apply(a.X, rng)
		bx := c.Apply(b.X, rng)
		dx := c.Apply(d.X, rng)
		within += tensor.Distance(ax, bx)
		between += tensor.Distance(ax, dx)
	}
	if between <= within {
		t.Fatalf("rotation destroyed class structure: within=%g between=%g", within, between)
	}
}

func TestBuildScenarioStructure(t *testing.T) {
	spec := FMoWSpec().Scale(0.2)
	sc, err := BuildScenario(spec, DefaultShiftConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Windows) != spec.Windows {
		t.Fatalf("windows = %d, want %d", len(sc.Windows), spec.Windows)
	}
	for w, row := range sc.Windows {
		if len(row) != spec.NumParties {
			t.Fatalf("window %d parties = %d", w, len(row))
		}
		for p, pw := range row {
			if len(pw.Train) != spec.SamplesPerParty || len(pw.Test) != spec.TestPerParty {
				t.Fatalf("window %d party %d sizes: %d/%d", w, p, len(pw.Train), len(pw.Test))
			}
		}
	}
	// W0 must be clean.
	if sc.NumRegimes(0) != 1 {
		t.Fatalf("W0 regimes = %d, want 1", sc.NumRegimes(0))
	}
	// Later windows must contain corrupted regimes.
	if sc.NumRegimes(spec.Windows-1) < 2 {
		t.Fatalf("final window regimes = %d, want >=2", sc.NumRegimes(spec.Windows-1))
	}
}

func TestBuildScenarioPartialShift(t *testing.T) {
	spec := CIFAR10CSpec().Scale(0.1) // 20 parties
	cfg := DefaultShiftConfig()
	sc, err := BuildScenario(spec, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	// At W1 roughly half the parties must keep their W0 (clean) regime.
	kept := 0
	for p := 0; p < spec.NumParties; p++ {
		if sc.Windows[1][p].Regime.Corruption.IsIdentity() {
			kept++
		}
	}
	frac := float64(kept) / float64(spec.NumParties)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("kept fraction = %g, want ~0.5", frac)
	}
}

func TestBuildScenarioDeterminism(t *testing.T) {
	spec := FMoWSpec().Scale(0.1)
	a, err := BuildScenario(spec, DefaultShiftConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildScenario(spec, DefaultShiftConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	x := a.Windows[2][0].Train[0].X
	y := b.Windows[2][0].Train[0].X
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("same seed must give identical scenarios")
		}
	}
}

func TestBuildScenarioErrors(t *testing.T) {
	bad := FMoWSpec()
	bad.NumClasses = 0
	if _, err := BuildScenario(bad, DefaultShiftConfig(), 1); err == nil {
		t.Fatal("invalid spec should error")
	}
}

func TestGlobalTest(t *testing.T) {
	spec := FMoWSpec().Scale(0.1)
	sc, err := BuildScenario(spec, DefaultShiftConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := sc.GlobalTest(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) != spec.NumParties*spec.TestPerParty {
		t.Fatalf("global test size = %d", len(gt))
	}
	if _, err := sc.GlobalTest(99); err == nil {
		t.Fatal("out-of-range window should error")
	}
	if sc.NumRegimes(99) != 0 {
		t.Fatal("out-of-range NumRegimes should be 0")
	}
}

func TestDirichletLabelShiftSkews(t *testing.T) {
	spec := FMoWSpec().Scale(0.2)
	cfg := DefaultShiftConfig()
	cfg.DirichletAlpha = 0.1
	sc, err := BuildScenario(spec, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Find a shifted party in the last window and check label skew vs W0.
	last := len(sc.Windows) - 1
	var maxJSD float64
	for p := 0; p < spec.NumParties; p++ {
		h0 := LabelHistogram(sc.Windows[0][p].Train, spec.NumClasses)
		h1 := LabelHistogram(sc.Windows[last][p].Train, spec.NumClasses)
		j, err := stats.JSD(h0, h1)
		if err != nil {
			t.Fatal(err)
		}
		if j > maxJSD {
			maxJSD = j
		}
	}
	if maxJSD < 0.1 {
		t.Fatalf("expected strong label shift somewhere, max JSD = %g", maxJSD)
	}
	if math.IsNaN(maxJSD) {
		t.Fatal("JSD is NaN")
	}
}
