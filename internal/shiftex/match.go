package shiftex

import (
	"repro/internal/stats"
	"repro/internal/tensor"
)

// MatchSignatures scans memories for the one nearest to signature under the
// squared mean-embedding distance (§5.2.2) and returns its index. Nil
// entries are skipped, ties keep the earliest index, and ok is false when
// every entry is nil. The scan is allocation-free, which makes it usable on
// both sides of the system: Registry.Match feeds it the live expert pool
// during aggregation, and the read-only serving snapshot feeds it a frozen
// copy on every request-routing decision.
func MatchSignatures(signature tensor.Vector, memories []tensor.Vector) (best int, dist float64, ok bool) {
	best = -1
	for i, m := range memories {
		if m == nil {
			continue
		}
		d := stats.MeanEmbeddingMMD(signature, m)
		if !ok || d < dist {
			best, dist, ok = i, d, true
		}
	}
	return best, dist, ok
}
