package shiftex

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestNewRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(-0.1); err == nil {
		t.Fatal("negative beta should error")
	}
	if _, err := NewRegistry(1); err == nil {
		t.Fatal("beta=1 should error")
	}
	if _, err := NewRegistry(0); err != nil {
		t.Fatal("beta=0 should be valid")
	}
}

func TestRegistryCreateGet(t *testing.T) {
	r, err := NewRegistry(0.5)
	if err != nil {
		t.Fatal(err)
	}
	e := r.Create(tensor.Vector{1, 2}, tensor.Vector{3, 4})
	if e.ID != 0 {
		t.Fatalf("first ID = %d", e.ID)
	}
	e2 := r.Create(tensor.Vector{5, 6}, nil)
	if e2.ID != 1 {
		t.Fatalf("second ID = %d", e2.ID)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	got, ok := r.Get(0)
	if !ok || got.Params[0] != 1 {
		t.Fatalf("get = %+v ok=%v", got, ok)
	}
	if _, ok := r.Get(99); ok {
		t.Fatal("missing expert lookup should fail")
	}
	// Params/signature must be deep copies.
	src := tensor.Vector{7, 8}
	e3 := r.Create(src, src)
	src[0] = 99
	if e3.Params[0] == 99 || e3.Memory[0] == 99 {
		t.Fatal("Create must deep-copy inputs")
	}
}

func TestRegistryUpdateMemoryEMA(t *testing.T) {
	r, err := NewRegistry(0.5)
	if err != nil {
		t.Fatal(err)
	}
	e := r.Create(tensor.Vector{0}, nil)
	// First update sets the memory outright.
	if err := r.UpdateMemory(e.ID, tensor.Vector{4, 4}); err != nil {
		t.Fatal(err)
	}
	if e.Memory[0] != 4 {
		t.Fatalf("memory = %v", e.Memory)
	}
	// Second update: 0.5*4 + 0.5*8 = 6.
	if err := r.UpdateMemory(e.ID, tensor.Vector{8, 8}); err != nil {
		t.Fatal(err)
	}
	if e.Memory[0] != 6 {
		t.Fatalf("EMA memory = %v", e.Memory)
	}
	if err := r.UpdateMemory(99, tensor.Vector{1}); err == nil {
		t.Fatal("unknown expert should error")
	}
	if err := r.UpdateMemory(e.ID, tensor.Vector{1}); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestRegistryMatch(t *testing.T) {
	r, err := NewRegistry(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// No experts with memory: no match.
	r.Create(tensor.Vector{0}, nil)
	if _, _, ok := r.Match(tensor.Vector{1, 1}); ok {
		t.Fatal("match with no signatures should fail")
	}
	a := r.Create(tensor.Vector{0}, tensor.Vector{0, 0})
	b := r.Create(tensor.Vector{0}, tensor.Vector{10, 10})
	best, dist, ok := r.Match(tensor.Vector{1, 1})
	if !ok || best.ID != a.ID {
		t.Fatalf("match = %+v ok=%v", best, ok)
	}
	if dist != 2 {
		t.Fatalf("dist = %g, want 2", dist)
	}
	best, _, ok = r.Match(tensor.Vector{9, 9})
	if !ok || best.ID != b.ID {
		t.Fatalf("match = %+v", best)
	}
}

func buildParams(t *testing.T, arch []int, seed uint64) tensor.Vector {
	t.Helper()
	m, err := nn.NewMLP(arch, tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m.Params()
}

func TestConsolidateMergesDuplicates(t *testing.T) {
	arch := []int{4, 8, 3}
	r, err := NewRegistry(0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := buildParams(t, arch, 1)
	// Two near-identical experts and one very different.
	nearly := p.Clone()
	nearly[0] += 1e-6
	a := r.Create(p, tensor.Vector{1, 1})
	b := r.Create(nearly, tensor.Vector{2, 2})
	q := buildParams(t, arch, 99)
	c := r.Create(q, tensor.Vector{9, 9})

	remap, err := r.Consolidate(arch, 0.99, 10, map[int]int{a.ID: 3, b.ID: 1, c.ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("experts after consolidation = %d, want 2", r.Len())
	}
	to, ok := remap[b.ID]
	if !ok || to != a.ID {
		t.Fatalf("remap = %v", remap)
	}
	if _, ok := r.Get(c.ID); !ok {
		t.Fatal("dissimilar expert must survive")
	}
	// Merged memory is the weighted mean (3:1).
	got, _ := r.Get(a.ID)
	want := (3.0*1 + 1.0*2) / 4
	if got.Memory[0] != want {
		t.Fatalf("merged memory = %v, want %g", got.Memory, want)
	}
}

func TestConsolidateTransitive(t *testing.T) {
	arch := []int{3, 4, 2}
	r, err := NewRegistry(0)
	if err != nil {
		t.Fatal(err)
	}
	p := buildParams(t, arch, 2)
	ids := make([]int, 3)
	for i := range ids {
		q := p.Clone()
		q[0] += float64(i) * 1e-9
		ids[i] = r.Create(q, tensor.Vector{float64(i)}).ID
	}
	remap, err := r.Consolidate(arch, 0.9999, 0, map[int]int{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("all three should merge, have %d", r.Len())
	}
	for _, from := range ids[1:] {
		if to := remap[from]; to != ids[0] {
			t.Fatalf("remap[%d] = %d, want %d", from, to, ids[0])
		}
	}
}

func TestConsolidateValidation(t *testing.T) {
	r, err := NewRegistry(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Consolidate([]int{2, 3, 2}, 0, 0, nil); err == nil {
		t.Fatal("tau=0 should error")
	}
	if _, err := r.Consolidate([]int{2, 3, 2}, 1.5, 0, nil); err == nil {
		t.Fatal("tau>1 should error")
	}
}

func TestConsolidateKeepsDistinctExperts(t *testing.T) {
	arch := []int{4, 6, 3}
	r, err := NewRegistry(0)
	if err != nil {
		t.Fatal(err)
	}
	r.Create(buildParams(t, arch, 1), nil)
	r.Create(buildParams(t, arch, 2), nil)
	remap, err := r.Consolidate(arch, 0.999, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(remap) != 0 || r.Len() != 2 {
		t.Fatalf("independent inits should not merge: remap=%v len=%d", remap, r.Len())
	}
}

func TestSnapshot(t *testing.T) {
	assign := map[int]int{0: 5, 1: 5, 2: 7}
	snap := Snapshot(assign)
	if snap[5] != 2 || snap[7] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestConsolidateMemoryGuardKeepsDistinctRegimes(t *testing.T) {
	// Regression: a warm-started expert is parameter-identical to its
	// parent but serves a different covariate regime (distant memory); the
	// ε guard must keep it alive.
	arch := []int{4, 8, 3}
	r, err := NewRegistry(0)
	if err != nil {
		t.Fatal(err)
	}
	p := buildParams(t, arch, 1)
	r.Create(p, tensor.Vector{0, 0})
	clone := p.Clone()
	clone[0] += 1e-9
	r.Create(clone, tensor.Vector{10, 10}) // same params, far regime

	remap, err := r.Consolidate(arch, 0.99, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(remap) != 0 || r.Len() != 2 {
		t.Fatalf("memory guard failed: remap=%v len=%d", remap, r.Len())
	}
	// With the guard disabled (epsilon<=0) they merge.
	remap, err = r.Consolidate(arch, 0.99, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(remap) != 1 || r.Len() != 1 {
		t.Fatalf("guardless consolidation should merge: remap=%v len=%d", remap, r.Len())
	}
}
