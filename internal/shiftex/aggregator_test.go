package shiftex

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/federation"
)

// smallScenario builds a quick 12-party scenario with pronounced shifts.
func smallScenario(t *testing.T, seed uint64) (*dataset.Scenario, *federation.Federation) {
	t.Helper()
	spec := dataset.FMoWSpec()
	spec.NumParties = 12
	spec.SamplesPerParty = 40
	spec.TestPerParty = 20
	spec.Windows = 3
	cfg := dataset.DefaultShiftConfig()
	cfg.RegimesPerWindow = 1
	sc, err := dataset.BuildScenario(spec, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := federation.New(sc, []int{spec.InputDim, 24, 12, spec.NumClasses}, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return sc, fed
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.BootstrapRounds = 6
	cfg.RoundsPerWindow = 6
	cfg.ParticipantsPerRound = 6
	cfg.Train.Epochs = 2
	return cfg
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{name: "default valid", mutate: func(c *Config) {}},
		{name: "zero rounds", mutate: func(c *Config) { c.RoundsPerWindow = 0 }, wantErr: true},
		{name: "zero participants", mutate: func(c *Config) { c.ParticipantsPerRound = 0 }, wantErr: true},
		{name: "bad tau", mutate: func(c *Config) { c.Tau = 0 }, wantErr: true},
		{name: "bad gamma", mutate: func(c *Config) { c.Gamma = 0 }, wantErr: true},
		{name: "bad beta", mutate: func(c *Config) { c.MemoryBeta = 1 }, wantErr: true},
		{name: "bad epsilon", mutate: func(c *Config) { c.Epsilon = -1 }, wantErr: true},
		{name: "bad train", mutate: func(c *Config) { c.Train.LR = 0 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig()
			tt.mutate(&c)
			if err := c.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
	if _, err := New(Config{}, 1); err == nil {
		t.Fatal("zero config should fail New")
	}
}

func TestBootstrapCalibratesAndTrains(t *testing.T) {
	_, fed := smallScenario(t, 10)
	agg, err := New(quickConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := agg.Bootstrap(fed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) != 6 {
		t.Fatalf("trace length = %d", len(rep.Trace))
	}
	if rep.Trace[len(rep.Trace)-1] <= rep.Trace[0]-0.05 {
		t.Fatalf("bootstrap accuracy regressed: %v", rep.Trace)
	}
	th := agg.Thresholds()
	if th.DeltaCov <= 0 || th.DeltaLabel <= 0 {
		t.Fatalf("thresholds not calibrated: %+v", th)
	}
	if agg.Epsilon() <= 0 {
		t.Fatalf("epsilon not calibrated: %g", agg.Epsilon())
	}
	if agg.Registry().Len() != 1 {
		t.Fatalf("bootstrap experts = %d, want 1", agg.Registry().Len())
	}
	if n := len(rep.Distribution); n != 1 {
		t.Fatalf("distribution = %v", rep.Distribution)
	}
	// Double bootstrap must fail.
	if _, err := agg.Bootstrap(fed); err == nil {
		t.Fatal("second bootstrap should error")
	}
}

func TestAdaptCreatesExpertsOnShift(t *testing.T) {
	_, fed := smallScenario(t, 20)
	agg, err := New(quickConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Bootstrap(fed); err != nil {
		t.Fatal(err)
	}
	if err := fed.SetWindow(1); err != nil {
		t.Fatal(err)
	}
	rep, err := agg.AdaptWindow(fed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShiftedCov == 0 {
		t.Fatal("scenario shifts half the parties; detector found none")
	}
	if rep.ExpertsAfter < 2 {
		t.Fatalf("expected expert specialization, have %d experts", rep.ExpertsAfter)
	}
	// Assignments must cover every party and reference live experts.
	assigns := agg.Assignments()
	if len(assigns) != fed.NumParties() {
		t.Fatalf("assignments = %d, want %d", len(assigns), fed.NumParties())
	}
	for p, id := range assigns {
		if _, ok := agg.Registry().Get(id); !ok {
			t.Fatalf("party %d assigned to dead expert %d", p, id)
		}
	}
}

func TestAdaptWithoutBootstrapFails(t *testing.T) {
	_, fed := smallScenario(t, 30)
	agg, err := New(quickConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.AdaptWindow(fed, 1); err == nil {
		t.Fatal("adapt before bootstrap should error")
	}
}

func TestRunWindowSequence(t *testing.T) {
	_, fed := smallScenario(t, 40)
	agg, err := New(quickConfig(), 41)
	if err != nil {
		t.Fatal(err)
	}
	var lastTrace []float64
	for w := 0; w < fed.NumWindows(); w++ {
		trace, err := agg.RunWindow(fed, w)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if len(trace) == 0 {
			t.Fatalf("window %d: empty trace", w)
		}
		lastTrace = trace
	}
	final := lastTrace[len(lastTrace)-1]
	if final < 0.3 {
		t.Fatalf("final accuracy %g too low — adaptation failed", final)
	}
	if math.IsNaN(final) {
		t.Fatal("accuracy is NaN")
	}
}

func TestExpertReuseOnRecurringShift(t *testing.T) {
	// Build a scenario where window 2 re-applies window 1's corruption:
	// the latent memory should reuse the window-1 expert rather than
	// creating another.
	spec := dataset.FMoWSpec()
	spec.NumParties = 10
	spec.SamplesPerParty = 40
	spec.TestPerParty = 20
	spec.Windows = 3
	shiftCfg := dataset.DefaultShiftConfig()
	shiftCfg.RegimesPerWindow = 1
	// Single corruption kind so the recurring regime is identical.
	shiftCfg.CovariateKinds = []dataset.CorruptionKind{dataset.CorruptFog}
	shiftCfg.LabelShift = false
	sc, err := dataset.BuildScenario(spec, shiftCfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Force identical severity in both shift windows.
	for w := 1; w < 3; w++ {
		for p := range sc.Windows[w] {
			if !sc.Windows[w][p].Regime.Corruption.IsIdentity() {
				sc.Windows[w][p].Regime.Corruption.Severity = 3
			}
		}
	}
	fed, err := federation.New(sc, []int{spec.InputDim, 24, 12, spec.NumClasses}, 51)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := New(quickConfig(), 52)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		if _, err := agg.RunWindow(fed, w); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}
	// Fog regime recurs; the pool should stay compact (bootstrap + fog,
	// possibly one extra from noise) rather than grow per window.
	if n := agg.Registry().Len(); n > 3 {
		t.Fatalf("expert pool grew to %d despite recurring regime", n)
	}
}

func TestAblationDisableMemoryCreatesMoreExperts(t *testing.T) {
	run := func(disable bool) int {
		_, fed := smallScenario(t, 60)
		cfg := quickConfig()
		cfg.DisableMemory = disable
		cfg.DisableConsolidation = true
		agg, err := New(cfg, 61)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < fed.NumWindows(); w++ {
			if _, err := agg.RunWindow(fed, w); err != nil {
				t.Fatalf("window %d: %v", w, err)
			}
		}
		return agg.Registry().Len()
	}
	with := run(false)
	without := run(true)
	if without < with {
		t.Fatalf("disabling memory should not shrink the pool: with=%d without=%d", with, without)
	}
}

func TestMeanAccuracy(t *testing.T) {
	if got := MeanAccuracy([]float64{0.2, 0.4}); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("mean = %g", got)
	}
	if !math.IsNaN(MeanAccuracy(nil)) {
		t.Fatal("empty trace should be NaN")
	}
}
