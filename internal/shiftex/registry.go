// Package shiftex implements the paper's primary contribution: the
// shift-aware mixture-of-experts aggregator (Algorithms 1 and 2). It
// maintains a registry of expert models tagged with latent-memory
// signatures, detects covariate/label shifts from party statistics,
// clusters shifted parties, matches clusters to experts through the latent
// memory (reuse) or spawns new experts (specialization), trains cohorts
// with FLIPS label balancing, and periodically consolidates redundant
// experts.
package shiftex

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/adapt"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Expert is one specialized global model plus its covariate-regime
// signature.
type Expert struct {
	ID     int
	Params tensor.Vector
	// Memory is the exponential moving average of the embedding
	// signatures of the cohorts this expert has served (§5.2.2).
	Memory tensor.Vector
}

// Registry is the aggregator-side pool of experts Θ_t.
type Registry struct {
	experts map[int]*Expert
	order   []int // insertion order for deterministic iteration
	nextID  int
	// memoryBeta is the EMA coefficient for latent-memory updates: higher
	// retains more history. Must be in [0, 1).
	memoryBeta float64
}

// NewRegistry builds an empty registry. memoryBeta in [0,1) controls the
// latent-memory EMA; 0 means signatures are overwritten each update.
func NewRegistry(memoryBeta float64) (*Registry, error) {
	if memoryBeta < 0 || memoryBeta >= 1 {
		return nil, fmt.Errorf("shiftex: memory beta must be in [0,1), got %g", memoryBeta)
	}
	return &Registry{experts: make(map[int]*Expert), memoryBeta: memoryBeta}, nil
}

// Len returns the number of experts.
func (r *Registry) Len() int { return len(r.experts) }

// Create adds a new expert with the given parameters and initial signature,
// returning its ID.
func (r *Registry) Create(params, signature tensor.Vector) *Expert {
	e := &Expert{ID: r.nextID, Params: params.Clone()}
	if signature != nil {
		e.Memory = signature.Clone()
	}
	r.nextID++
	r.experts[e.ID] = e
	r.order = append(r.order, e.ID)
	return e
}

// Get returns the expert with the given ID.
func (r *Registry) Get(id int) (*Expert, bool) {
	e, ok := r.experts[id]
	return e, ok
}

// Experts returns all experts in insertion order.
func (r *Registry) Experts() []*Expert {
	out := make([]*Expert, 0, len(r.experts))
	for _, id := range r.order {
		if e, ok := r.experts[id]; ok {
			out = append(out, e)
		}
	}
	return out
}

// IDs returns all expert IDs in insertion order.
func (r *Registry) IDs() []int {
	out := make([]int, 0, len(r.experts))
	for _, id := range r.order {
		if _, ok := r.experts[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// UpdateMemory folds a fresh cohort signature into the expert's latent
// memory: M ← β·M + (1-β)·sig.
func (r *Registry) UpdateMemory(id int, signature tensor.Vector) error {
	e, ok := r.experts[id]
	if !ok {
		return fmt.Errorf("shiftex: unknown expert %d", id)
	}
	if e.Memory == nil {
		e.Memory = signature.Clone()
		return nil
	}
	if len(e.Memory) != len(signature) {
		return fmt.Errorf("shiftex: signature dim %d vs memory %d", len(signature), len(e.Memory))
	}
	for i := range e.Memory {
		e.Memory[i] = r.memoryBeta*e.Memory[i] + (1-r.memoryBeta)*signature[i]
	}
	return nil
}

// Match returns the expert whose latent memory is closest to the signature
// together with the squared mean-embedding distance, implementing the
// latent-memory matching rule of §5.2.2: the caller compares the distance
// to ε to decide reuse vs creation. Experts without a memory signature are
// skipped. ok is false when no expert has a signature. The distance scan is
// the shared MatchSignatures helper, so the aggregator and the read-only
// serving snapshot make identical decisions from identical pools. (Serving
// runs the helper on a frozen memories slice; this once-per-window path
// builds its view locally.)
func (r *Registry) Match(signature tensor.Vector) (best *Expert, dist float64, ok bool) {
	experts := r.Experts()
	memories := make([]tensor.Vector, len(experts))
	for i, e := range experts {
		memories[i] = e.Memory
	}
	idx, dist, ok := MatchSignatures(signature, memories)
	if !ok {
		return nil, dist, false
	}
	return experts[idx], dist, true
}

// Remove deletes an expert.
func (r *Registry) Remove(id int) {
	delete(r.experts, id)
}

// Params returns an expert's parameter vector (shared storage), satisfying
// adapt.ExpertPool.
func (r *Registry) Params(id int) (tensor.Vector, bool) {
	e, ok := r.experts[id]
	if !ok {
		return nil, false
	}
	return e.Params, true
}

// Signature returns an expert's latent-memory signature (nil when absent
// or unknown), satisfying adapt.ExpertPool.
func (r *Registry) Signature(id int) tensor.Vector {
	e, ok := r.experts[id]
	if !ok {
		return nil
	}
	return e.Memory
}

// Consolidate merges near-duplicate experts under the default lifecycle
// rule (adapt.SimilarityConsolidator): parameter cosine similarity above
// tau AND latent-memory agreement within epsilon (epsilon <= 0 disables
// the memory guard). Merges are weighted by cohortSize. It returns a remap
// from old expert ID to surviving expert ID for every removed expert. arch
// is needed to interpret the parameter vectors. The aggregator goes
// through its policy's Consolidator stage instead; this method remains the
// direct registry-level entry point.
func (r *Registry) Consolidate(arch []int, tau, epsilon float64, cohortSize map[int]int) (map[int]int, error) {
	return adapt.SimilarityConsolidator{}.Consolidate(r, arch, tau, epsilon, cohortSize)
}

// Merge folds expert drop into expert keep (weighted parameter average
// plus latent-memory average) and removes drop, satisfying
// adapt.ExpertPool. Weights come from cohortSize (minimum 1 each). The
// average is computed directly on the flattened parameter vectors — no
// model reconstruction — with the same accumulation order as
// nn.MergeModels, so merged values are bit-identical to the
// model-round-trip path this replaced.
func (r *Registry) Merge(arch []int, keep, drop int, cohortSize map[int]int) error {
	a, ok := r.experts[keep]
	if !ok {
		return fmt.Errorf("shiftex: merge into unknown expert %d", keep)
	}
	b, ok := r.experts[drop]
	if !ok {
		return fmt.Errorf("shiftex: merge of unknown expert %d", drop)
	}
	wa := float64(cohortSize[a.ID])
	wb := float64(cohortSize[b.ID])
	if wa <= 0 {
		wa = 1
	}
	if wb <= 0 {
		wb = 1
	}
	if want := nn.ParamCount(arch); len(a.Params) != want || len(b.Params) != want {
		return fmt.Errorf("shiftex: merge params %d/%d vs arch %v (%d)", len(a.Params), len(b.Params), arch, want)
	}
	merged, err := tensor.WeightedMean([]tensor.Vector{a.Params, b.Params}, []float64{wa, wb})
	if err != nil {
		return err
	}
	a.Params = merged
	switch {
	case a.Memory == nil:
		a.Memory = b.Memory
	case b.Memory != nil && len(a.Memory) == len(b.Memory):
		mem, err := tensor.WeightedMean([]tensor.Vector{a.Memory, b.Memory}, []float64{wa, wb})
		if err != nil {
			return err
		}
		a.Memory = mem
	}
	r.Remove(b.ID)
	return nil
}

var _ adapt.ExpertPool = (*Registry)(nil)

// Snapshot returns expert IDs sorted ascending with their cohort sizes —
// the per-window expert-distribution data behind Figures 7 and 8.
func Snapshot(assignment map[int]int) map[int]int {
	out := make(map[int]int)
	for _, expertID := range assignment {
		out[expertID]++
	}
	return out
}

// SortedKeys returns the keys of an int-keyed map in ascending order.
func SortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ErrNoExperts indicates an operation over an empty registry.
var ErrNoExperts = errors.New("shiftex: registry has no experts")
