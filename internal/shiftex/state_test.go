package shiftex

import (
	"encoding/json"
	"reflect"
	"testing"
)

// runTwoWindows produces an aggregator with non-trivial state: experts,
// memories, thresholds, assignments.
func runTwoWindows(t *testing.T, seed uint64) *Aggregator {
	t.Helper()
	_, fed := smallScenario(t, seed)
	agg, err := New(quickConfig(), seed+1)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2; w++ {
		if _, err := agg.RunWindow(fed, w); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}
	return agg
}

func TestStateExportRestoreRoundTrip(t *testing.T) {
	agg := runTwoWindows(t, 50)
	st := agg.ExportState()

	// JSON round trip — the on-disk checkpoint path. Go's float64 JSON
	// encoding is shortest-round-trip, so equality must be exact.
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(quickConfig(), decoded)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(agg.Assignments(), restored.Assignments()) {
		t.Error("assignments diverge after restore")
	}
	if agg.Epsilon() != restored.Epsilon() {
		t.Errorf("epsilon %g != %g", agg.Epsilon(), restored.Epsilon())
	}
	if agg.Thresholds() != restored.Thresholds() {
		t.Errorf("thresholds %+v != %+v", agg.Thresholds(), restored.Thresholds())
	}
	if !reflect.DeepEqual(agg.Registry().IDs(), restored.Registry().IDs()) {
		t.Fatalf("expert IDs diverge: %v vs %v", agg.Registry().IDs(), restored.Registry().IDs())
	}
	for _, id := range agg.Registry().IDs() {
		a, _ := agg.Registry().Get(id)
		b, _ := restored.Registry().Get(id)
		if !reflect.DeepEqual(a.Params, b.Params) || !reflect.DeepEqual(a.Memory, b.Memory) {
			t.Errorf("expert %d state diverges", id)
		}
	}
	// The RNG must resume at the exact same draw.
	if agg.rng.Uint64() != restored.rng.Uint64() {
		t.Error("RNG streams diverge after restore")
	}
	// Expert-ID allocation continues where it left off.
	if agg.registry.nextID != restored.registry.nextID {
		t.Errorf("nextID %d != %d", agg.registry.nextID, restored.registry.nextID)
	}
}

func TestStateExportIsDeepCopy(t *testing.T) {
	agg := runTwoWindows(t, 51)
	st := agg.ExportState()

	// Mutating the snapshot must not reach into the live aggregator.
	for _, es := range st.Experts {
		for i := range es.Params {
			es.Params[i] = -1
		}
	}
	for p := range st.Assignment {
		st.Assignment[p] = 999
	}
	for _, e := range agg.Registry().Experts() {
		for _, v := range e.Params {
			if v == -1 {
				t.Fatal("snapshot params alias live expert params")
			}
		}
	}
	for _, id := range agg.Assignments() {
		if id == 999 {
			t.Fatal("snapshot assignment aliases live assignment")
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	agg := runTwoWindows(t, 52)
	st := agg.ExportState()

	bad := st
	bad.Assignment = map[int]int{0: 12345}
	if _, err := Restore(quickConfig(), bad); err == nil {
		t.Error("assignment to unknown expert should fail")
	}

	bad2 := st
	bad2.Experts = []ExpertState{{ID: 0, Params: nil}}
	bad2.Assignment = nil
	if _, err := Restore(quickConfig(), bad2); err == nil {
		t.Error("expert without params should fail")
	}

	if _, err := Restore(Config{}, st); err == nil {
		t.Error("invalid config should fail restore")
	}
}
