package shiftex

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/adapt"
	"repro/internal/detect"
	"repro/internal/facility"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Failure injection for the adaptation pipeline: a stage returning an
// error mid-window must leave the aggregator state fully restorable — no
// half-applied registry/assignment/RNG mutations — so the caller can retry
// the window or resume from the last checkpoint.

var errStageBoom = errors.New("injected stage failure")

// countdownPlanner delegates to the default planner for okCalls windows,
// then fails once before recovering.
type countdownPlanner struct {
	okCalls int
	calls   int
}

func (p *countdownPlanner) Plan(cohorts map[int][]int, hists []stats.Histogram, rng *tensor.RNG) (adapt.ParticipantSelector, error) {
	p.calls++
	if p.calls == p.okCalls+1 {
		return nil, errStageBoom
	}
	return adapt.FLIPSPlanner{}.Plan(cohorts, hists, rng)
}

// failingConsolidator fails on its first use (consolidation runs at the
// very end of a window, after training and memory updates — the deepest
// point a stage can fail at).
type failingConsolidator struct {
	calls int
}

func (c *failingConsolidator) Consolidate(pool adapt.ExpertPool, arch []int, tau, epsilon float64, sizes map[int]int) (map[int]int, error) {
	c.calls++
	if c.calls == 1 {
		return nil, errStageBoom
	}
	return adapt.SimilarityConsolidator{}.Consolidate(pool, arch, tau, epsilon, sizes)
}

// countdownCalibrator fails the first bootstrap calibration, then recovers.
type countdownCalibrator struct {
	calls int
}

func (c *countdownCalibrator) Calibrate(anchor []detect.PartyStats, cfg stats.CalibrateConfig, epsilon float64, rng *tensor.RNG) (stats.Thresholds, float64, error) {
	c.calls++
	if c.calls == 1 {
		return stats.Thresholds{}, 0, errStageBoom
	}
	return adapt.BootstrapCalibrator{}.Calibrate(anchor, cfg, epsilon, rng)
}

// failingSolver always fails: it proves an error in the middle of
// reassign (after clustering, before any materialization) rolls back too.
type failingSolver struct{}

func (failingSolver) Solve(*facility.Instance) (*facility.Assignment, error) {
	return nil, errStageBoom
}

func testPolicy(t *testing.T, mutate func(*adapt.Policy)) *adapt.Policy {
	t.Helper()
	p, err := adapt.NewPolicy("")
	if err != nil {
		t.Fatal(err)
	}
	p.Name = "test-injected"
	mutate(p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlannerErrorRollsBackWindow(t *testing.T) {
	_, fed := smallScenario(t, 500)
	planner := &countdownPlanner{okCalls: 1} // bootstrap plans fine, window 1 fails
	agg, err := NewWithPolicy(quickConfig(), testPolicy(t, func(p *adapt.Policy) { p.Planner = planner }), 501)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Bootstrap(fed); err != nil {
		t.Fatal(err)
	}
	if err := fed.SetWindow(1); err != nil {
		t.Fatal(err)
	}

	before := agg.ExportState()
	if _, err := agg.AdaptWindow(fed, 1); !errors.Is(err, errStageBoom) {
		t.Fatalf("want injected failure, got %v", err)
	}
	after := agg.ExportState()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("planner failure left half-applied state:\nbefore: %+v\nafter:  %+v", before, after)
	}

	// The window is retryable: the planner recovered, and the rolled-back
	// RNG means the aggregator decides from exactly where it stood.
	rep, err := agg.AdaptWindow(fed, 1)
	if err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("retried window trained nothing")
	}
}

func TestConsolidatorErrorRollsBackWindow(t *testing.T) {
	_, fed := smallScenario(t, 510)
	cons := &failingConsolidator{}
	agg, err := NewWithPolicy(quickConfig(), testPolicy(t, func(p *adapt.Policy) { p.Consolidator = cons }), 511)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Bootstrap(fed); err != nil {
		t.Fatal(err)
	}
	if err := fed.SetWindow(1); err != nil {
		t.Fatal(err)
	}

	before := agg.ExportState()
	if _, err := agg.AdaptWindow(fed, 1); !errors.Is(err, errStageBoom) {
		t.Fatalf("want injected failure, got %v", err)
	}
	if cons.calls != 1 {
		t.Fatalf("consolidator ran %d times, want 1", cons.calls)
	}
	// Consolidation fails at the END of the window — training, assignment
	// changes, and memory updates all happened — yet every mutation must be
	// rolled back, including the RNG position.
	after := agg.ExportState()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("consolidator failure left half-applied state (training/assignment mutations survived rollback)")
	}

	rep, err := agg.AdaptWindow(fed, 1)
	if err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if rep.ExpertsAfter == 0 {
		t.Fatal("retried window lost the expert pool")
	}
}

func TestSolverErrorRollsBackWindow(t *testing.T) {
	// Drive windows until the solver is actually invoked (it only runs
	// when shifted clusters reach gamma); every invocation must fail the
	// window atomically.
	_, fed := smallScenario(t, 520)
	agg, err := NewWithPolicy(quickConfig(), testPolicy(t, func(p *adapt.Policy) { p.Solver = failingSolver{} }), 521)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Bootstrap(fed); err != nil {
		t.Fatal(err)
	}
	solverHit := false
	for w := 1; w <= 2; w++ {
		if err := fed.SetWindow(w); err != nil {
			t.Fatal(err)
		}
		before := agg.ExportState()
		_, err := agg.AdaptWindow(fed, w)
		if err == nil {
			continue // no cluster reached the solver this window
		}
		if !errors.Is(err, errStageBoom) {
			t.Fatalf("window %d: want injected failure, got %v", w, err)
		}
		solverHit = true
		after := agg.ExportState()
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("window %d: solver failure left half-applied state", w)
		}
		break
	}
	if !solverHit {
		t.Skip("scenario produced no federated cluster; solver never ran")
	}
}

func TestCalibratorErrorKeepsBootstrapRetryable(t *testing.T) {
	_, fed := smallScenario(t, 530)
	agg, err := NewWithPolicy(quickConfig(), testPolicy(t, func(p *adapt.Policy) { p.Calibrator = &countdownCalibrator{} }), 531)
	if err != nil {
		t.Fatal(err)
	}
	before := agg.ExportState()
	if _, err := agg.Bootstrap(fed); !errors.Is(err, errStageBoom) {
		t.Fatalf("want injected failure, got %v", err)
	}
	after := agg.ExportState()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("bootstrap failure left half-applied state")
	}
	if agg.Registry().Len() != 0 {
		t.Fatal("failed bootstrap left experts behind")
	}

	// Bootstrap is retryable on the rolled-back aggregator.
	rep, err := agg.Bootstrap(fed)
	if err != nil {
		t.Fatalf("bootstrap retry: %v", err)
	}
	if agg.Thresholds().DeltaCov <= 0 {
		t.Fatal("retry did not calibrate thresholds")
	}
	if len(rep.Trace) == 0 {
		t.Fatal("retry trained nothing")
	}
}

// TestDefaultPolicyMatchesLegacyConstructor pins the refactor's core
// contract at the unit level (the committed BENCH artifacts pin it at grid
// level): New and NewWithPolicy(default) drive bit-identical streams.
func TestDefaultPolicyMatchesLegacyConstructor(t *testing.T) {
	run := func(build func() (*Aggregator, error)) State {
		t.Helper()
		_, fed := smallScenario(t, 540)
		agg, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := agg.Bootstrap(fed); err != nil {
			t.Fatal(err)
		}
		for w := 1; w <= 2; w++ {
			if err := fed.SetWindow(w); err != nil {
				t.Fatal(err)
			}
			if _, err := agg.AdaptWindow(fed, w); err != nil {
				t.Fatal(err)
			}
		}
		return agg.ExportState()
	}
	legacy := run(func() (*Aggregator, error) { return New(quickConfig(), 541) })
	policied := run(func() (*Aggregator, error) { return NewWithPolicy(quickConfig(), adapt.DefaultPolicy(), 541) })
	if !reflect.DeepEqual(legacy, policied) {
		t.Fatal("default policy diverges from the legacy constructor")
	}
}

// TestPolicyVariantsCompleteStream: every registered policy drives the
// full pipeline to completion, and its stage swap is observable where it
// should be (no-consolidate never merges).
func TestPolicyVariantsCompleteStream(t *testing.T) {
	for _, name := range adapt.PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			_, fed := smallScenario(t, 550)
			pol, err := adapt.NewPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			agg, err := NewWithPolicy(quickConfig(), pol, 551)
			if err != nil {
				t.Fatal(err)
			}
			if got := agg.PolicyName(); got != name {
				t.Fatalf("PolicyName() = %q, want %q", got, name)
			}
			if _, err := agg.Bootstrap(fed); err != nil {
				t.Fatal(err)
			}
			merged := 0
			for w := 1; w <= 2; w++ {
				if err := fed.SetWindow(w); err != nil {
					t.Fatal(err)
				}
				rep, err := agg.AdaptWindow(fed, w)
				if err != nil {
					t.Fatalf("window %d: %v", w, err)
				}
				merged += rep.Merged
			}
			if name == "no-consolidate" && merged != 0 {
				t.Fatalf("no-consolidate policy merged %d experts", merged)
			}
		})
	}
}
