package shiftex

import (
	"testing"
)

// Failure injection: the aggregator must survive parties dropping out
// mid-stream (no data, no statistics, no training) and keep adapting with
// the survivors — partial participation is the norm in FL.

func TestAdaptSurvivesPartyDropout(t *testing.T) {
	_, fed := smallScenario(t, 300)
	agg, err := New(quickConfig(), 301)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Bootstrap(fed); err != nil {
		t.Fatal(err)
	}
	if err := fed.SetWindow(1); err != nil {
		t.Fatal(err)
	}
	// Two parties lose their data entirely (device offline).
	if err := fed.SetPartyData(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := fed.SetPartyData(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := agg.AdaptWindow(fed, 1)
	if err != nil {
		t.Fatalf("dropout should not abort the window: %v", err)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("no training happened")
	}
	final := rep.Trace[len(rep.Trace)-1]
	if final < 0.2 {
		t.Fatalf("survivor accuracy %g too low", final)
	}
}

func TestBootstrapSurvivesPartialDropout(t *testing.T) {
	_, fed := smallScenario(t, 310)
	// One party is dead from the start.
	if err := fed.SetPartyData(3, nil, nil); err != nil {
		t.Fatal(err)
	}
	agg, err := New(quickConfig(), 311)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := agg.Bootstrap(fed)
	if err != nil {
		t.Fatalf("bootstrap with one dead party should work: %v", err)
	}
	if rep.Trace[len(rep.Trace)-1] < 0.2 {
		t.Fatalf("bootstrap accuracy %g", rep.Trace[len(rep.Trace)-1])
	}
	// Detection thresholds still calibrated from the survivors.
	if agg.Thresholds().DeltaCov <= 0 {
		t.Fatal("thresholds not calibrated")
	}
}

func TestDropoutRecoveryNextWindow(t *testing.T) {
	// A party that drops in window 1 and returns in window 2 must rejoin
	// its expert and be evaluated again.
	sc, fed := smallScenario(t, 320)
	agg, err := New(quickConfig(), 321)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Bootstrap(fed); err != nil {
		t.Fatal(err)
	}
	if err := fed.SetWindow(1); err != nil {
		t.Fatal(err)
	}
	if err := fed.SetPartyData(2, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.AdaptWindow(fed, 1); err != nil {
		t.Fatal(err)
	}
	// Window 2: the party is back (SetWindow restores scenario data).
	if err := fed.SetWindow(2); err != nil {
		t.Fatal(err)
	}
	if len(sc.Windows[2][2].Train) == 0 {
		t.Fatal("scenario should restore party data")
	}
	rep, err := agg.AdaptWindow(fed, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := agg.Assignments()[2]; !ok {
		t.Fatal("returning party lost its assignment")
	}
	if len(rep.Trace) == 0 {
		t.Fatal("no trace for recovery window")
	}
}
