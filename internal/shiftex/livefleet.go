package shiftex

import (
	"errors"

	"repro/internal/detect"
	"repro/internal/tensor"
)

// LiveStatsFleet is the live-statistics window source: it wraps a Fleet and
// replaces the Algorithm-1 statistics collection with externally synthesized
// per-party statistics, while every other fleet operation (training rounds,
// evaluation, fine-tuning) still reaches the real parties. It is how a
// serving-time adaptation window (internal/continual) feeds the monitor's
// live traffic sketches into the same detect → calibrate → assign →
// train/consolidate pipeline the simulator drives: the pipeline stages see
// PartyStats and never learn the window came from production traffic instead
// of a party fan-out.
type LiveStatsFleet struct {
	Fleet
	// Stats is returned verbatim by StatsAll, in party-ID order, exactly as
	// a transport-backed fleet would report them.
	Stats []detect.PartyStats
}

// StatsAll implements Fleet with the synthesized statistics. The encoder
// parameters are ignored: the statistics were computed at serving time
// through the snapshot's (identically frozen) encoder.
func (f *LiveStatsFleet) StatsAll(tensor.Vector) ([]detect.PartyStats, error) {
	if len(f.Stats) == 0 {
		return nil, errors.New("shiftex: live-stats fleet has no statistics to report")
	}
	return f.Stats, nil
}
