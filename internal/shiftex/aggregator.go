package shiftex

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/adapt"
	"repro/internal/cluster"
	"repro/internal/detect"
	"repro/internal/facility"
	"repro/internal/federation"
	"repro/internal/fl"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Config parameterizes the ShiftEx aggregator (Algorithm 2).
type Config struct {
	// BootstrapRounds is the number of FL rounds in window 0.
	BootstrapRounds int
	// RoundsPerWindow is the number of FL rounds in each later window.
	RoundsPerWindow int
	// ParticipantsPerRound is the per-expert cohort sample size per round.
	ParticipantsPerRound int
	// Train is the local-training configuration sent to parties.
	Train fl.TrainConfig
	// Epsilon is the latent-memory reuse threshold; 0 means auto-calibrate
	// from window-0 embedding dispersion.
	Epsilon float64
	// Tau is the consolidation cosine-similarity threshold (§5.2.5).
	Tau float64
	// Gamma is the minimum cluster size for federated training; smaller
	// clusters fall back to local fine-tuning (Algorithm 2, line 29).
	Gamma int
	// MaxClusters bounds the k-means sweep when clustering shifted
	// parties; 0 means 6.
	MaxClusters int
	// MemoryBeta is the latent-memory EMA coefficient.
	MemoryBeta float64
	// LambdaNewCost is the Eq. 2 expert-creation coefficient, expressed
	// relative to the reuse threshold: the effective flat cost of a new
	// expert is LambdaNewCost · ε · (mean cluster weight), so creation is
	// priced at the covariate mismatch a typical cluster would tolerate
	// before reuse becomes infeasible. MuLabel is the label-imbalance
	// weight μ.
	LambdaNewCost float64
	MuLabel       float64
	// CapacityMax is U_max (0 = unlimited).
	CapacityMax int
	// Calibration configures bootstrap threshold estimation.
	Calibration stats.CalibrateConfig

	// Ablation switches (all false in the full system).
	DisableMemory        bool // every shifted cluster spawns a new expert
	DisableConsolidation bool // never merge experts
	DisableFLIPS         bool // uniform random participant selection
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		BootstrapRounds:      15,
		RoundsPerWindow:      15,
		ParticipantsPerRound: 10,
		Train:                fl.TrainConfig{Epochs: 2, BatchSize: 16, LR: 0.02, Momentum: 0.9},
		Tau:                  0.995,
		Gamma:                2,
		MaxClusters:          6,
		MemoryBeta:           0.7,
		LambdaNewCost:        1,
		MuLabel:              0.3,
		Calibration:          stats.DefaultCalibrateConfig(),
	}
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	switch {
	case c.BootstrapRounds <= 0 || c.RoundsPerWindow <= 0:
		return fmt.Errorf("shiftex: rounds must be positive (bootstrap=%d window=%d)", c.BootstrapRounds, c.RoundsPerWindow)
	case c.ParticipantsPerRound <= 0:
		return fmt.Errorf("shiftex: participants per round must be positive, got %d", c.ParticipantsPerRound)
	case c.Tau <= 0 || c.Tau > 1:
		return fmt.Errorf("shiftex: tau must be in (0,1], got %g", c.Tau)
	case c.Gamma < 1:
		return fmt.Errorf("shiftex: gamma must be >=1, got %d", c.Gamma)
	case c.MemoryBeta < 0 || c.MemoryBeta >= 1:
		return fmt.Errorf("shiftex: memory beta must be in [0,1), got %g", c.MemoryBeta)
	case c.Epsilon < 0:
		return fmt.Errorf("shiftex: epsilon must be non-negative, got %g", c.Epsilon)
	}
	return c.Train.Validate()
}

// Fleet is the party substrate Algorithm 2 drives. The in-process
// *federation.Federation satisfies it directly; internal/service provides a
// transport-backed implementation that reaches parties in other processes.
// Everything the aggregator decides is a function of the Fleet's answers
// plus its own seeded RNG, so two Fleets that answer identically (same
// data, same per-party seed derivation) yield bit-identical decisions.
type Fleet interface {
	Arch() []int
	NumParties() int
	PartyIDs() []int
	InitialParams() (tensor.Vector, error)
	SetWindow(w int) error
	Round(params tensor.Vector, selected []int, cfg fl.TrainConfig) (tensor.Vector, []fl.Update, error)
	// StatsAll collects Algorithm-1 statistics from every party through
	// the given encoder parameters, in party-ID order. Parties that fail
	// to report are skipped; an error is returned only when nobody
	// reports. Batching lets a transport-backed fleet fan the collection
	// out — it is the hot step of every post-bootstrap window.
	StatsAll(params tensor.Vector) ([]detect.PartyStats, error)
	EvalAssignment(paramsFor func(partyID int) tensor.Vector) (float64, error)
	LocalFineTune(partyID int, params tensor.Vector, cfg fl.TrainConfig) (tensor.Vector, error)
	PartyHists() []stats.Histogram
}

var _ Fleet = (*federation.Federation)(nil)

// WindowReport summarizes one window's adaptation.
type WindowReport struct {
	Window        int
	Trace         []float64 // per-round mean accuracy across parties
	ShiftedCov    int       // parties flagged for covariate shift
	ShiftedLabel  int       // parties flagged for label shift
	ExpertsBefore int
	ExpertsAfter  int
	NewExperts    int
	Merged        int
	// Distribution maps expert ID to the number of assigned parties at
	// window end (Figures 7-8).
	Distribution map[int]int
}

// Aggregator is the ShiftEx coordinator: the driver of the adaptation
// pipeline. Every adaptation decision is delegated to the stages of its
// adapt.Policy — detection, calibration, assignment solving, training
// planning, and consolidation — while the aggregator owns the state those
// stages act on (expert registry, party assignment, thresholds, RNG).
type Aggregator struct {
	cfg        Config
	policy     *adapt.Policy
	registry   *Registry
	assignment map[int]int // party -> expert ID
	// personalized holds locally fine-tuned parameter overrides for
	// parties in small clusters.
	personalized map[int]tensor.Vector
	thresholds   stats.Thresholds
	epsilon      float64
	bootParams   tensor.Vector // θ0 clone source for new experts
	// encoder is the frozen post-bootstrap model used for all embedding
	// computations. Freezing it keeps embeddings comparable across
	// windows and across experts, which is what makes latent-memory
	// matching well defined (the paper lists "reliance on frozen
	// encoders" among its assumptions, §9).
	encoder tensor.Vector
	rng     *tensor.RNG
	tracer  *telemetry.Tracer
}

// SetTracer attaches a tracer: each window then records an adapt.window
// (or adapt.bootstrap) root span with one child per pipeline stage, plus
// an adapt.rollback span when a failed window restores the saved state.
// Call before driving windows; the aggregator is single-threaded per
// window so no locking is needed.
func (a *Aggregator) SetTracer(t *telemetry.Tracer) { a.tracer = t }

// startStage opens a stage span and publishes it as the tracer's active
// context, so the ctx-less Trainer interface (the fl wire) parents its
// fl.<kind> spans under the running stage.
func (a *Aggregator) startStage(parent *telemetry.Span, name string) *telemetry.Span {
	if a.tracer == nil {
		return nil
	}
	var s *telemetry.Span
	if parent == nil {
		s = a.tracer.StartRoot(name)
	} else {
		s = parent.Child(name)
	}
	a.tracer.SetActive(s.Context())
	return s
}

// endStage closes a stage span and restores the window root as the
// active context (or clears it when the root itself ends).
func (a *Aggregator) endStage(s, root *telemetry.Span, err error) {
	if s == nil {
		return
	}
	s.EndErr(err)
	if root != nil && s != root {
		a.tracer.SetActive(root.Context())
	} else {
		a.tracer.ClearActive()
	}
}

var _ federation.Technique = (*Aggregator)(nil)

// New builds a ShiftEx aggregator running the default adaptation policy
// (the paper's Algorithm 2).
func New(cfg Config, seed uint64) (*Aggregator, error) {
	return NewWithPolicy(cfg, nil, seed)
}

// NewWithPolicy builds a ShiftEx aggregator running the given adaptation
// policy; nil resolves to adapt.DefaultPolicy(). The policy must validate
// (every stage present). The cfg ablation switches still apply on top of
// any policy: DisableFLIPS forces uniform selection and
// DisableConsolidation skips the consolidation stage entirely.
func NewWithPolicy(cfg Config, policy *adapt.Policy, seed uint64) (*Aggregator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		policy = adapt.DefaultPolicy()
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	reg, err := NewRegistry(cfg.MemoryBeta)
	if err != nil {
		return nil, err
	}
	return &Aggregator{
		cfg:          cfg,
		policy:       policy,
		registry:     reg,
		assignment:   make(map[int]int),
		personalized: make(map[int]tensor.Vector),
		epsilon:      cfg.Epsilon,
		rng:          tensor.NewRNG(seed),
	}, nil
}

// Name implements federation.Technique.
func (a *Aggregator) Name() string { return "shiftex" }

// PolicyName returns the name of the adaptation policy the aggregator
// runs; it is recorded in service checkpoints and serving snapshots.
func (a *Aggregator) PolicyName() string { return a.policy.Name }

// Assignments implements federation.Technique.
func (a *Aggregator) Assignments() map[int]int {
	out := make(map[int]int, len(a.assignment))
	for k, v := range a.assignment {
		out[k] = v
	}
	return out
}

// Registry exposes the expert pool (read-mostly; used by reports/tests).
func (a *Aggregator) Registry() *Registry { return a.registry }

// Thresholds returns the calibrated detection thresholds (valid after
// window 0).
func (a *Aggregator) Thresholds() stats.Thresholds { return a.thresholds }

// Epsilon returns the effective latent-memory reuse threshold (valid after
// window 0 when auto-calibrated).
func (a *Aggregator) Epsilon() float64 { return a.epsilon }

// paramsFor returns the parameters party p currently uses for inference:
// its personalized fine-tune if present, else its assigned expert.
func (a *Aggregator) paramsFor(p int) tensor.Vector {
	if pp, ok := a.personalized[p]; ok {
		return pp
	}
	id, ok := a.assignment[p]
	if !ok {
		return nil
	}
	e, ok := a.registry.Get(id)
	if !ok {
		return nil
	}
	return e.Params
}

// RunWindow implements federation.Technique: window 0 bootstraps and
// calibrates; later windows run shift detection, expert assignment,
// training, and consolidation.
func (a *Aggregator) RunWindow(f *federation.Federation, w int) ([]float64, error) {
	if err := f.SetWindow(w); err != nil {
		return nil, err
	}
	if w == 0 {
		rep, err := a.bootstrap(f)
		if err != nil {
			return nil, err
		}
		return rep.Trace, nil
	}
	rep, err := a.AdaptWindow(f, w)
	if err != nil {
		return nil, err
	}
	return rep.Trace, nil
}

// Bootstrap runs window 0 and returns the full report.
func (a *Aggregator) Bootstrap(f Fleet) (*WindowReport, error) {
	if err := f.SetWindow(0); err != nil {
		return nil, err
	}
	return a.bootstrap(f)
}

// bootstrap wraps runBootstrap with the pipeline's atomicity guarantee:
// if any stage fails, the aggregator rolls back to its pre-window state
// (including the RNG position) so the caller can retry or shut down with
// nothing half-applied. Fleet-side effects (detector observations already
// consumed) are outside the aggregator and are not rolled back.
func (a *Aggregator) bootstrap(f Fleet) (*WindowReport, error) {
	root := a.startStage(nil, "adapt.bootstrap")
	saved := a.ExportState()
	rep, err := a.runBootstrap(f, root)
	if err != nil {
		rb := a.startStage(root, "adapt.rollback")
		rerr := a.restoreState(saved)
		a.endStage(rb, root, rerr)
		a.endStage(root, root, err)
		if rerr != nil {
			return nil, errors.Join(err, fmt.Errorf("shiftex: rollback after bootstrap failure: %w", rerr))
		}
		return nil, err
	}
	a.endStage(root, root, nil)
	return rep, nil
}

func (a *Aggregator) runBootstrap(f Fleet, root *telemetry.Span) (*WindowReport, error) {
	if a.registry.Len() != 0 {
		return nil, errors.New("shiftex: bootstrap must run on an empty registry")
	}
	init, err := f.InitialParams()
	if err != nil {
		return nil, err
	}
	a.bootParams = init.Clone()
	e0 := a.registry.Create(init, nil)
	for _, p := range f.PartyIDs() {
		a.assignment[p] = e0.ID
	}

	// Train the initial global model with FLIPS participant selection
	// (§4.1).
	st := a.startStage(root, "adapt.train")
	st.SetAttrInt("rounds", int64(a.cfg.BootstrapRounds))
	trace, err := a.trainExperts(f, map[int][]int{e0.ID: f.PartyIDs()}, a.cfg.BootstrapRounds)
	a.endStage(st, root, err)
	if err != nil {
		return nil, fmt.Errorf("bootstrap training: %w", err)
	}

	// Freeze the trained bootstrap model as the shared encoder, observe
	// window 0 through it, and calibrate thresholds and ε from the
	// resulting null statistics.
	a.encoder = e0.Params.Clone()
	st = a.startStage(root, "adapt.calibrate")
	anchor, err := a.observeAll(f)
	if err != nil {
		a.endStage(st, root, err)
		return nil, fmt.Errorf("bootstrap anchor: %w", err)
	}
	th, eps, err := a.policy.Calibrator.Calibrate(anchor, a.cfg.Calibration, a.cfg.Epsilon, a.rng)
	if err != nil {
		a.endStage(st, root, err)
		return nil, fmt.Errorf("bootstrap calibration: %w", err)
	}
	a.thresholds, a.epsilon = th, eps
	if err := a.updateMemories(anchor); err != nil {
		a.endStage(st, root, err)
		return nil, err
	}
	a.endStage(st, root, nil)

	return &WindowReport{
		Window:       0,
		Trace:        trace,
		ExpertsAfter: a.registry.Len(),
		Distribution: Snapshot(a.assignment),
	}, nil
}

// observeAll collects Algorithm-1 statistics from every party through the
// frozen encoder, keeping all embedding statistics in one comparable space.
// Parties that fail to report (dropped out, empty window) are skipped —
// they are treated as stable for this window, which is the safe default in
// a live federation; an error is returned only when nobody reports.
func (a *Aggregator) observeAll(f Fleet) ([]detect.PartyStats, error) {
	if a.encoder == nil {
		return nil, errors.New("shiftex: encoder not initialized (bootstrap first)")
	}
	return f.StatsAll(a.encoder)
}

// AdaptWindow runs the adaptation pipeline for one post-bootstrap window
// and returns the full report. The federation must already be positioned
// at window w. If any stage fails mid-window, the aggregator rolls back to
// its pre-window state (registry, assignments, personalization, RNG — see
// restoreState), so a failed window leaves nothing half-applied and the
// caller can retry or resume from the last checkpoint.
func (a *Aggregator) AdaptWindow(f Fleet, w int) (*WindowReport, error) {
	if a.registry.Len() == 0 {
		return nil, ErrNoExperts
	}
	root := a.startStage(nil, "adapt.window")
	root.SetAttrInt("window", int64(w))
	saved := a.ExportState()
	rep, err := a.runAdaptWindow(f, w, root)
	if err != nil {
		rb := a.startStage(root, "adapt.rollback")
		rerr := a.restoreState(saved)
		a.endStage(rb, root, rerr)
		a.endStage(root, root, err)
		if rerr != nil {
			return nil, errors.Join(err, fmt.Errorf("shiftex: rollback after window %d failure: %w", w, rerr))
		}
		return nil, err
	}
	a.endStage(root, root, nil)
	return rep, nil
}

// runAdaptWindow is Algorithm 2 for one window, expressed over the
// policy's stages.
func (a *Aggregator) runAdaptWindow(f Fleet, w int, root *telemetry.Span) (*WindowReport, error) {
	rep := &WindowReport{Window: w, ExpertsBefore: a.registry.Len()}

	// Lines 4-7: receive statistics, detect shifted parties.
	stage := a.startStage(root, "adapt.detect")
	allStats, err := a.observeAll(f)
	if err != nil {
		a.endStage(stage, root, err)
		return nil, err
	}
	statByParty := make(map[int]detect.PartyStats, len(allStats))
	var shifted []int
	for _, st := range allStats {
		statByParty[st.PartyID] = st
		cov, lab := a.policy.Detector.Detect(st, a.thresholds)
		if cov {
			rep.ShiftedCov++
		}
		if lab {
			rep.ShiftedLabel++
		}
		if cov || lab {
			shifted = append(shifted, st.PartyID)
		}
	}
	stage.SetAttrInt("shifted", int64(len(shifted)))
	stage.SetAttrInt("shifted.cov", int64(rep.ShiftedCov))
	stage.SetAttrInt("shifted.label", int64(rep.ShiftedLabel))
	a.endStage(stage, root, nil)

	// Lines 8-31: cluster shifted parties and (re)assign experts.
	if len(shifted) > 0 {
		stage = a.startStage(root, "adapt.assign")
		stage.SetAttrInt("parties", int64(len(shifted)))
		err := a.reassign(f, shifted, statByParty, rep)
		stage.SetAttrInt("experts.new", int64(rep.NewExperts))
		a.endStage(stage, root, err)
		if err != nil {
			return nil, err
		}
	}

	// Train every expert on its current cohort.
	cohorts := a.cohorts(f)
	stage = a.startStage(root, "adapt.train")
	stage.SetAttrInt("experts", int64(len(cohorts)))
	stage.SetAttrInt("rounds", int64(a.cfg.RoundsPerWindow))
	trace, err := a.trainExperts(f, cohorts, a.cfg.RoundsPerWindow)
	a.endStage(stage, root, err)
	if err != nil {
		return nil, err
	}
	rep.Trace = trace

	// Refresh latent memories with this window's embeddings (the frozen
	// encoder makes the window-start statistics authoritative — training
	// does not move the embedding space).
	if err := a.updateMemories(allStats); err != nil {
		return nil, err
	}

	// Lines 33-40: consolidation.
	if !a.cfg.DisableConsolidation {
		stage = a.startStage(root, "adapt.consolidate")
		merged, err := a.consolidate(f)
		stage.SetAttrInt("merged", int64(merged))
		a.endStage(stage, root, err)
		if err != nil {
			return nil, err
		}
		rep.Merged = merged
	}

	rep.ExpertsAfter = a.registry.Len()
	rep.Distribution = Snapshot(a.assignment)
	return rep, nil
}

// reassign clusters the shifted parties and routes each cluster to an
// existing or new expert via the facility-location solver (§5.1-5.2).
func (a *Aggregator) reassign(f Fleet, shifted []int, statByParty map[int]detect.PartyStats, rep *WindowReport) error {
	points := make([]tensor.Vector, len(shifted))
	for i, p := range shifted {
		points[i] = statByParty[p].MeanEmbedding
	}
	maxK := a.cfg.MaxClusters
	if maxK <= 0 {
		maxK = 6
	}
	res, err := cluster.SelectK(points, maxK, cluster.Config{}, a.rng)
	if err != nil {
		return fmt.Errorf("cluster shifted parties: %w", err)
	}

	// Split clusters into federated (>=γ) and small ones.
	type group struct {
		parties  []int
		centroid tensor.Vector
		hist     stats.Histogram
	}
	var fedGroups []group
	var smallParties []int
	for c := 0; c < res.K(); c++ {
		var members []int
		for i, assigned := range res.Assignments {
			if assigned == c {
				members = append(members, shifted[i])
			}
		}
		if len(members) == 0 {
			continue
		}
		if len(members) < a.cfg.Gamma {
			smallParties = append(smallParties, members...)
			continue
		}
		hs := make([]stats.Histogram, len(members))
		counts := make([]int, len(members))
		for i, p := range members {
			hs[i] = statByParty[p].LabelHist
			counts[i] = statByParty[p].NumSamples
		}
		hist, err := stats.MergeHistograms(hs, counts)
		if err != nil {
			return err
		}
		fedGroups = append(fedGroups, group{parties: members, centroid: res.Centroids[c], hist: hist})
	}

	if len(fedGroups) > 0 {
		// Facility-location assignment of clusters to experts (Eq. 2).
		clients := make([]facility.Client, len(fedGroups))
		for i, g := range fedGroups {
			clients[i] = facility.Client{
				ID:        i,
				Embedding: g.centroid,
				LabelHist: g.hist,
				Weight:    float64(len(g.parties)),
			}
		}
		var existing []facility.Facility
		var existingIDs []int
		if !a.cfg.DisableMemory {
			for _, e := range a.registry.Experts() {
				if e.Memory == nil {
					continue
				}
				existing = append(existing, facility.Facility{ID: e.ID, Signature: e.Memory})
				existingIDs = append(existingIDs, e.ID)
			}
		}
		var meanWeight float64
		for _, c := range clients {
			meanWeight += c.Weight
		}
		meanWeight /= float64(len(clients))
		inst := &facility.Instance{
			Clients:     clients,
			Existing:    existing,
			NewCost:     a.cfg.LambdaNewCost * a.epsilon * meanWeight,
			LabelWeight: a.cfg.MuLabel,
			CapacityMax: a.cfg.CapacityMax,
			Epsilon:     a.epsilon,
		}
		sol, err := a.policy.Solver.Solve(inst)
		if err != nil {
			return fmt.Errorf("facility assignment: %w", err)
		}
		// Materialize the assignment: map slots to expert IDs, creating
		// new experts for new slots. New experts are warm-started from the
		// nearest existing expert's parameters (§5.2.1: clusters fine-tune
		// experts rather than train from scratch), falling back to θ0.
		slotExpert := make(map[int]int)
		for gi, slot := range sol.Slots {
			expertID, ok := slotExpert[slot]
			if !ok {
				if slot < len(existing) {
					expertID = existingIDs[slot]
				} else {
					seed := a.bootParams
					if nearest, _, found := a.registry.Match(fedGroups[gi].centroid); found {
						seed = nearest.Params
					}
					e := a.registry.Create(seed, fedGroups[gi].centroid)
					expertID = e.ID
					rep.NewExperts++
				}
				slotExpert[slot] = expertID
			}
			for _, p := range fedGroups[gi].parties {
				a.assignment[p] = expertID
				delete(a.personalized, p)
			}
			if err := a.registry.UpdateMemory(expertID, fedGroups[gi].centroid); err != nil {
				return err
			}
		}
	}

	// Small clusters: keep assignment, locally fine-tune (line 29).
	for _, p := range smallParties {
		params := a.paramsFor(p)
		if params == nil {
			return fmt.Errorf("shiftex: party %d has no parameters for fine-tune", p)
		}
		cfg := a.cfg.Train
		cfg.Seed = a.rng.Uint64()
		tuned, err := f.LocalFineTune(p, params, cfg)
		if err != nil {
			return fmt.Errorf("local fine-tune party %d: %w", p, err)
		}
		a.personalized[p] = tuned
	}
	return nil
}

// cohorts groups parties by assigned expert.
func (a *Aggregator) cohorts(f Fleet) map[int][]int {
	out := make(map[int][]int)
	for _, p := range f.PartyIDs() {
		id, ok := a.assignment[p]
		if !ok {
			continue
		}
		out[id] = append(out[id], p)
	}
	return out
}

// trainExperts runs `rounds` federated rounds for every expert with a
// non-empty cohort, recording the global assignment accuracy after each
// round. Participant selection comes from the policy's TrainingPlanner
// (FLIPS label clustering by default; cfg.DisableFLIPS forces uniform).
func (a *Aggregator) trainExperts(f Fleet, cohorts map[int][]int, rounds int) ([]float64, error) {
	hists := f.PartyHists()

	// The planner builds any per-cohort selection state (e.g. FLIPS
	// selectors) up front; everything it draws comes from the aggregator
	// RNG, in deterministic cohort order, so planning is part of the
	// bit-reproducible stream.
	planner := a.policy.Planner
	if a.cfg.DisableFLIPS {
		planner = adapt.UniformPlanner{}
	}
	selector, err := planner.Plan(cohorts, hists, a.rng)
	if err != nil {
		return nil, err
	}

	trace := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		for _, id := range SortedKeys(cohorts) {
			members := cohorts[id]
			if len(members) == 0 {
				continue
			}
			e, ok := a.registry.Get(id)
			if !ok {
				continue
			}
			selected, err := selector.Select(id, members, a.cfg.ParticipantsPerRound, a.rng)
			if err != nil {
				return nil, err
			}
			cfg := a.cfg.Train
			cfg.Seed = a.rng.Uint64()
			next, _, err := f.Round(e.Params, selected, cfg)
			if err != nil {
				return nil, fmt.Errorf("expert %d round %d: %w", id, r, err)
			}
			e.Params = next
			// Fresh global training supersedes stale personal fine-tunes
			// for this cohort.
			for _, p := range members {
				delete(a.personalized, p)
			}
		}
		acc, err := f.EvalAssignment(a.paramsFor)
		if err != nil {
			return nil, err
		}
		trace = append(trace, acc)
	}
	return trace, nil
}

// updateMemories folds each expert cohort's fresh mean embedding into its
// latent memory.
func (a *Aggregator) updateMemories(anchor []detect.PartyStats) error {
	sums := make(map[int]tensor.Vector)
	counts := make(map[int]float64)
	for _, st := range anchor {
		id, ok := a.assignment[st.PartyID]
		if !ok {
			continue
		}
		if sums[id] == nil {
			sums[id] = tensor.NewVector(len(st.MeanEmbedding))
		}
		if err := sums[id].Add(st.MeanEmbedding); err != nil {
			return err
		}
		counts[id]++
	}
	for id, sum := range sums {
		sum.Scale(1 / counts[id])
		if err := a.registry.UpdateMemory(id, sum); err != nil {
			return err
		}
	}
	return nil
}

// consolidate runs the policy's expert-lifecycle stage and rewires
// assignments, returning the number of merges.
func (a *Aggregator) consolidate(f Fleet) (int, error) {
	sizes := Snapshot(a.assignment)
	remap, err := a.policy.Consolidator.Consolidate(a.registry, f.Arch(), a.cfg.Tau, a.epsilon, sizes)
	if err != nil {
		return 0, err
	}
	if len(remap) == 0 {
		return 0, nil
	}
	for p, id := range a.assignment {
		if to, ok := remap[id]; ok {
			a.assignment[p] = to
		}
	}
	return len(remap), nil
}

// MeanAccuracy is a convenience over a trace.
func MeanAccuracy(trace []float64) float64 {
	if len(trace) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range trace {
		s += v
	}
	return s / float64(len(trace))
}
