package shiftex

import (
	"errors"
	"fmt"

	"repro/internal/adapt"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// ExpertState is the serializable form of one expert.
type ExpertState struct {
	ID     int           `json:"id"`
	Params tensor.Vector `json:"params"`
	Memory tensor.Vector `json:"memory,omitempty"`
}

// State is the complete serializable snapshot of an Aggregator: the expert
// pool with latent memories, the party→expert assignment, personalized
// fine-tunes, calibrated thresholds, the frozen encoder and θ0, and the
// exact RNG position. Restoring it and continuing the stream produces
// bit-identical decisions to a run that was never interrupted — the
// contract TestCheckpointResumeParity enforces.
type State struct {
	Experts      []ExpertState         `json:"experts"`
	NextExpertID int                   `json:"nextExpertId"`
	Assignment   map[int]int           `json:"assignment"`
	Personalized map[int]tensor.Vector `json:"personalized,omitempty"`
	Thresholds   stats.Thresholds      `json:"thresholds"`
	Epsilon      float64               `json:"epsilon"`
	BootParams   tensor.Vector         `json:"bootParams,omitempty"`
	Encoder      tensor.Vector         `json:"encoder,omitempty"`
	RNG          tensor.RNGState       `json:"rng"`
}

// ExportState deep-copies the aggregator's full mutable state.
func (a *Aggregator) ExportState() State {
	st := State{
		NextExpertID: a.registry.nextID,
		Assignment:   make(map[int]int, len(a.assignment)),
		Thresholds:   a.thresholds,
		Epsilon:      a.epsilon,
		RNG:          a.rng.State(),
	}
	for _, e := range a.registry.Experts() {
		es := ExpertState{ID: e.ID, Params: e.Params.Clone()}
		if e.Memory != nil {
			es.Memory = e.Memory.Clone()
		}
		st.Experts = append(st.Experts, es)
	}
	for p, id := range a.assignment {
		st.Assignment[p] = id
	}
	if len(a.personalized) > 0 {
		st.Personalized = make(map[int]tensor.Vector, len(a.personalized))
		for p, v := range a.personalized {
			st.Personalized[p] = v.Clone()
		}
	}
	if a.bootParams != nil {
		st.BootParams = a.bootParams.Clone()
	}
	if a.encoder != nil {
		st.Encoder = a.encoder.Clone()
	}
	return st
}

// Restore rebuilds an aggregator from a snapshot taken by ExportState,
// running the default adaptation policy. The config must be the one the
// snapshotted aggregator ran with (the snapshot carries state, not
// protocol).
func Restore(cfg Config, st State) (*Aggregator, error) {
	return RestoreWithPolicy(cfg, nil, st)
}

// RestoreWithPolicy is Restore under an explicit adaptation policy (nil =
// default). The policy, like the config, is protocol: it must be the one
// the snapshotted aggregator ran with for the resumed stream to be
// bit-identical (checkpoints record the policy name for exactly this).
func RestoreWithPolicy(cfg Config, policy *adapt.Policy, st State) (*Aggregator, error) {
	// A live xoshiro256** state is never all-zero (that is the excluded
	// fixed point), so a zero RNG always means a corrupt or hand-edited
	// snapshot; substituting a fresh stream would silently break the
	// bit-identical-resume contract.
	if st.RNG.S == [4]uint64{} {
		return nil, errors.New("shiftex: snapshot has a zero RNG state (corrupt or incomplete)")
	}
	a, err := NewWithPolicy(cfg, policy, 0)
	if err != nil {
		return nil, err
	}
	for _, es := range st.Experts {
		if es.Params == nil {
			return nil, fmt.Errorf("shiftex: expert %d has no parameters", es.ID)
		}
		e := &Expert{ID: es.ID, Params: es.Params.Clone()}
		if es.Memory != nil {
			e.Memory = es.Memory.Clone()
		}
		a.registry.experts[e.ID] = e
		a.registry.order = append(a.registry.order, e.ID)
		if e.ID >= a.registry.nextID {
			a.registry.nextID = e.ID + 1
		}
	}
	if st.NextExpertID > a.registry.nextID {
		a.registry.nextID = st.NextExpertID
	}
	for p, id := range st.Assignment {
		if _, ok := a.registry.experts[id]; !ok {
			return nil, fmt.Errorf("shiftex: party %d assigned to unknown expert %d", p, id)
		}
		a.assignment[p] = id
	}
	for p, v := range st.Personalized {
		a.personalized[p] = v.Clone()
	}
	a.thresholds = st.Thresholds
	a.epsilon = st.Epsilon
	if st.BootParams != nil {
		a.bootParams = st.BootParams.Clone()
	}
	if st.Encoder != nil {
		a.encoder = st.Encoder.Clone()
	}
	a.rng = tensor.RestoreRNG(st.RNG)
	return a, nil
}

// restoreState rewinds the aggregator in place to a snapshot previously
// taken with ExportState — the rollback path when a pipeline stage fails
// mid-window. The snapshot came from this aggregator, so the rebuild
// cannot fail for any state ExportState produces; an error here means the
// snapshot was mutated in between and is surfaced rather than applied
// half-way (the rebuild happens on a scratch aggregator first).
func (a *Aggregator) restoreState(st State) error {
	b, err := RestoreWithPolicy(a.cfg, a.policy, st)
	if err != nil {
		return err
	}
	a.registry = b.registry
	a.assignment = b.assignment
	a.personalized = b.personalized
	a.thresholds = b.thresholds
	a.epsilon = b.epsilon
	a.bootParams = b.bootParams
	a.encoder = b.encoder
	a.rng = b.rng
	return nil
}
