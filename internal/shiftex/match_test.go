package shiftex

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// legacyMatch is the pre-extraction Registry.Match loop, kept verbatim as
// the parity reference for the shared MatchSignatures helper.
func legacyMatch(r *Registry, signature tensor.Vector) (best *Expert, dist float64, ok bool) {
	for _, e := range r.Experts() {
		if e.Memory == nil {
			continue
		}
		d := stats.MeanEmbeddingMMD(signature, e.Memory)
		if !ok || d < dist {
			best, dist, ok = e, d, true
		}
	}
	return best, dist, ok
}

func randomRegistry(t *testing.T, rng *tensor.RNG, n, dim int) *Registry {
	t.Helper()
	r, err := NewRegistry(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var mem tensor.Vector
		if rng.Float64() < 0.7 { // leave some experts signature-less
			mem = rng.NormVec(dim, 0, 1)
		}
		r.Create(rng.NormVec(4, 0, 1), mem)
	}
	return r
}

// TestMatchSignaturesParity pins that the extracted helper makes the exact
// decisions (winner, distance, ok) the original Registry.Match loop made,
// including nil-memory skipping, removed experts, and ties.
func TestMatchSignaturesParity(t *testing.T) {
	rng := tensor.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		r := randomRegistry(t, rng, 1+rng.Intn(8), 6)
		if trial%3 == 0 && r.Len() > 1 {
			r.Remove(r.IDs()[rng.Intn(r.Len())])
		}
		sig := rng.NormVec(6, 0, 1)
		wantE, wantD, wantOK := legacyMatch(r, sig)
		gotE, gotD, gotOK := r.Match(sig)
		if gotOK != wantOK || gotD != wantD || gotE != wantE {
			t.Fatalf("trial %d: Match=(%v,%v,%v) legacy=(%v,%v,%v)",
				trial, gotE, gotD, gotOK, wantE, wantD, wantOK)
		}
	}
}

// TestMatchSignaturesTiesAndNil covers the helper's contract directly:
// earliest index wins ties, nil entries are skipped, all-nil reports !ok.
func TestMatchSignaturesTiesAndNil(t *testing.T) {
	a := tensor.Vector{1, 0}
	mems := []tensor.Vector{nil, {1, 0}, {1, 0}, {0, 1}}
	idx, dist, ok := MatchSignatures(a, mems)
	if !ok || idx != 1 || dist != 0 {
		t.Fatalf("got (%d,%g,%v), want (1,0,true)", idx, dist, ok)
	}
	if _, _, ok := MatchSignatures(a, []tensor.Vector{nil, nil}); ok {
		t.Fatal("all-nil memories must report ok=false")
	}
	if _, _, ok := MatchSignatures(a, nil); ok {
		t.Fatal("empty memories must report ok=false")
	}
}

// TestMatchSignaturesZeroAlloc pins the allocation-free contract the serving
// hot path relies on.
func TestMatchSignaturesZeroAlloc(t *testing.T) {
	rng := tensor.NewRNG(7)
	mems := make([]tensor.Vector, 16)
	for i := range mems {
		mems[i] = rng.NormVec(8, 0, 1)
	}
	sig := rng.NormVec(8, 0, 1)
	if n := testing.AllocsPerRun(100, func() {
		MatchSignatures(sig, mems)
	}); n != 0 {
		t.Fatalf("MatchSignatures allocates %.1f per run, want 0", n)
	}
}
