package secagg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func testSession() Session {
	return Session{Secret: 0xdeadbeef, Round: 3, Dim: 16}
}

func randomUpdates(s Session, members []int, seed uint64) map[int]tensor.Vector {
	rng := tensor.NewRNG(seed)
	out := make(map[int]tensor.Vector, len(members))
	for _, m := range members {
		out[m] = rng.NormVec(s.Dim, 0, 2)
	}
	return out
}

func plainSum(s Session, updates map[int]tensor.Vector, ids []int) tensor.Vector {
	sum := tensor.NewVector(s.Dim)
	for _, id := range ids {
		_ = sum.Add(updates[id])
	}
	return sum
}

func TestMaskedAggregationMatchesPlainSum(t *testing.T) {
	s := testSession()
	members := []int{0, 1, 2, 3, 4}
	updates := randomUpdates(s, members, 1)

	var masked []MaskedUpdate
	for _, id := range members {
		mu, err := s.Mask(id, members, updates[id])
		if err != nil {
			t.Fatal(err)
		}
		masked = append(masked, MaskedUpdate{PartyID: id, Data: mu})
	}
	agg, err := s.Aggregate(members, masked)
	if err != nil {
		t.Fatal(err)
	}
	want := plainSum(s, updates, members)
	for i := range want {
		if math.Abs(agg[i]-want[i]) > 1e-9 {
			t.Fatalf("aggregate[%d] = %g, want %g", i, agg[i], want[i])
		}
	}
}

func TestMaskHidesIndividualUpdate(t *testing.T) {
	s := testSession()
	members := []int{0, 1, 2}
	update := tensor.NewVector(s.Dim) // all zeros: any nonzero output is mask
	masked, err := s.Mask(0, members, update)
	if err != nil {
		t.Fatal(err)
	}
	if masked.Norm() < 1 {
		t.Fatalf("mask magnitude suspiciously small: %g", masked.Norm())
	}
	// Different rounds produce different masks (no reuse).
	s2 := s
	s2.Round = 4
	masked2, err := s2.Mask(0, members, update)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Distance(masked, masked2) < 1e-6 {
		t.Fatal("mask reused across rounds")
	}
}

func TestDropoutRecovery(t *testing.T) {
	s := testSession()
	members := []int{0, 1, 2, 3, 4}
	updates := randomUpdates(s, members, 2)

	var masked []MaskedUpdate
	for _, id := range members {
		mu, err := s.Mask(id, members, updates[id])
		if err != nil {
			t.Fatal(err)
		}
		masked = append(masked, MaskedUpdate{PartyID: id, Data: mu})
	}
	// Parties 1 and 3 drop out after masking.
	survivors := []MaskedUpdate{masked[0], masked[2], masked[4]}
	agg, err := s.Aggregate(members, survivors)
	if err != nil {
		t.Fatal(err)
	}
	want := plainSum(s, updates, []int{0, 2, 4})
	for i := range want {
		if math.Abs(agg[i]-want[i]) > 1e-9 {
			t.Fatalf("dropout aggregate[%d] = %g, want %g", i, agg[i], want[i])
		}
	}
}

func TestAggregateMean(t *testing.T) {
	s := testSession()
	members := []int{0, 1}
	updates := randomUpdates(s, members, 3)
	var masked []MaskedUpdate
	for _, id := range members {
		mu, err := s.Mask(id, members, updates[id])
		if err != nil {
			t.Fatal(err)
		}
		masked = append(masked, MaskedUpdate{PartyID: id, Data: mu})
	}
	mean, err := s.AggregateMean(members, masked)
	if err != nil {
		t.Fatal(err)
	}
	want := plainSum(s, updates, members)
	want.Scale(0.5)
	for i := range want {
		if math.Abs(mean[i]-want[i]) > 1e-9 {
			t.Fatalf("mean[%d] = %g, want %g", i, mean[i], want[i])
		}
	}
}

func TestValidation(t *testing.T) {
	s := testSession()
	members := []int{0, 1}
	if _, err := (Session{Dim: 0}).Mask(0, members, nil); err == nil {
		t.Fatal("dim=0 should error")
	}
	if _, err := s.Mask(0, members, tensor.Vector{1}); err == nil {
		t.Fatal("wrong update dim should error")
	}
	if _, err := s.Mask(9, members, tensor.NewVector(s.Dim)); err == nil {
		t.Fatal("non-member masking should error")
	}
	if _, err := s.Aggregate(members, nil); err == nil {
		t.Fatal("no updates should error")
	}
	if _, err := s.Aggregate(members, []MaskedUpdate{{PartyID: 9, Data: tensor.NewVector(s.Dim)}}); err == nil {
		t.Fatal("non-member update should error")
	}
	dup := MaskedUpdate{PartyID: 0, Data: tensor.NewVector(s.Dim)}
	if _, err := s.Aggregate(members, []MaskedUpdate{dup, dup}); err == nil {
		t.Fatal("duplicate update should error")
	}
	if _, err := s.Aggregate(members, []MaskedUpdate{{PartyID: 0, Data: tensor.Vector{1}}}); err == nil {
		t.Fatal("wrong data dim should error")
	}
}

// Property: for any member set and any dropout pattern keeping at least one
// survivor, aggregation equals the plain sum of survivors.
func TestPropertyAggregationCorrect(t *testing.T) {
	f := func(seed uint64, nRaw, dropRaw uint8) bool {
		n := 2 + int(nRaw%5)
		s := Session{Secret: seed, Round: uint64(nRaw), Dim: 8}
		members := make([]int, n)
		for i := range members {
			members[i] = i * 3 // non-contiguous IDs
		}
		updates := randomUpdates(s, members, seed^0xff)
		var masked []MaskedUpdate
		for _, id := range members {
			mu, err := s.Mask(id, members, updates[id])
			if err != nil {
				return false
			}
			masked = append(masked, MaskedUpdate{PartyID: id, Data: mu})
		}
		// Drop a subset (keep at least one).
		keep := masked[:1+int(dropRaw)%len(masked)]
		var ids []int
		for _, u := range keep {
			ids = append(ids, u.PartyID)
		}
		agg, err := s.Aggregate(members, keep)
		if err != nil {
			return false
		}
		want := plainSum(s, updates, ids)
		for i := range want {
			if math.Abs(agg[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
