// Package secagg implements a pairwise-masking secure-aggregation protocol
// (the core of Bonawitz et al., CCS '17, which the paper cites among the
// standard FL defenses, §2): each pair of parties derives a shared mask
// from a pairwise seed; party i adds +m_ij for j > i and −m_ij for j < i,
// so the masks cancel in the sum and the aggregator learns only the
// aggregate, never an individual update.
//
// Key agreement is simulated by deriving pairwise seeds from a session
// secret (a real deployment would run Diffie-Hellman); dropout recovery
// follows the protocol's seed-disclosure path: surviving parties reveal
// their pairwise seeds with the dropped party so the aggregator can strip
// the orphaned masks.
package secagg

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// Session identifies one aggregation round's masking context.
type Session struct {
	// Secret seeds pairwise mask derivation (simulated key agreement).
	Secret uint64
	// Round salts masks so reuse across rounds is impossible.
	Round uint64
	// Dim is the update vector length.
	Dim int
}

// Validate reports whether the session is usable.
func (s Session) Validate() error {
	if s.Dim <= 0 {
		return fmt.Errorf("secagg: dim must be positive, got %d", s.Dim)
	}
	return nil
}

// pairSeed derives the deterministic seed shared by parties i and j.
func (s Session) pairSeed(i, j int) uint64 {
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	return s.Secret ^ (uint64(lo)+1)*0x9e3779b97f4a7c15 ^ (uint64(hi)+1)*0xc2b2ae3d27d4eb4f ^ s.Round*0x165667b19e3779f9
}

// pairMask derives the mask vector between parties i and j.
func (s Session) pairMask(i, j int) tensor.Vector {
	rng := tensor.NewRNG(s.pairSeed(i, j))
	return rng.NormVec(s.Dim, 0, 1)
}

// Mask returns the party's update with all pairwise masks applied:
// x_i + Σ_{j>i} m_ij − Σ_{j<i} m_ij over the given member set.
func (s Session) Mask(partyID int, members []int, update tensor.Vector) (tensor.Vector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(update) != s.Dim {
		return nil, fmt.Errorf("secagg: update dim %d, want %d", len(update), s.Dim)
	}
	found := false
	out := update.Clone()
	for _, j := range members {
		if j == partyID {
			found = true
			continue
		}
		m := s.pairMask(partyID, j)
		sign := 1.0
		if j < partyID {
			sign = -1
		}
		if err := out.Axpy(sign, m); err != nil {
			return nil, err
		}
	}
	if !found {
		return nil, fmt.Errorf("secagg: party %d not in member set %v", partyID, members)
	}
	return out, nil
}

// MaskedUpdate is one party's masked contribution.
type MaskedUpdate struct {
	PartyID int
	Data    tensor.Vector
}

// Aggregate sums masked updates from the surviving parties. members is the
// full set that masked their updates; survivors must be the parties whose
// updates are present. For each dropped party, the surviving parties'
// pairwise seeds are "disclosed" (simulated directly here) so the
// aggregator can remove the orphaned masks. The result equals the plain
// sum of the survivors' original updates.
func (s Session) Aggregate(members []int, updates []MaskedUpdate) (tensor.Vector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(updates) == 0 {
		return nil, errors.New("secagg: no updates")
	}
	memberSet := make(map[int]bool, len(members))
	for _, m := range members {
		memberSet[m] = true
	}
	present := make(map[int]bool, len(updates))
	sum := tensor.NewVector(s.Dim)
	for _, u := range updates {
		if !memberSet[u.PartyID] {
			return nil, fmt.Errorf("secagg: update from non-member %d", u.PartyID)
		}
		if present[u.PartyID] {
			return nil, fmt.Errorf("secagg: duplicate update from %d", u.PartyID)
		}
		present[u.PartyID] = true
		if len(u.Data) != s.Dim {
			return nil, fmt.Errorf("secagg: update from %d has dim %d, want %d", u.PartyID, len(u.Data), s.Dim)
		}
		if err := sum.Add(u.Data); err != nil {
			return nil, err
		}
	}

	// Masks between two survivors cancel. Masks between a survivor i and a
	// dropped party d remain in the sum with sign +1 if d > i else −1;
	// strip them using the disclosed pairwise seeds.
	for _, d := range members {
		if present[d] {
			continue
		}
		for i := range present {
			m := s.pairMask(i, d)
			sign := 1.0
			if d < i {
				sign = -1
			}
			// The survivor added sign·m; subtract it.
			if err := sum.Axpy(-sign, m); err != nil {
				return nil, err
			}
		}
	}
	return sum, nil
}

// AggregateMean is Aggregate divided by the survivor count — a drop-in for
// unweighted FedAvg over masked updates.
func (s Session) AggregateMean(members []int, updates []MaskedUpdate) (tensor.Vector, error) {
	sum, err := s.Aggregate(members, updates)
	if err != nil {
		return nil, err
	}
	sum.Scale(1 / float64(len(updates)))
	return sum, nil
}
