// Package stream implements the windowed stream-processing substrate that
// each ShiftEx party runs over its incoming data (§2 and §4 of the paper;
// the paper deploys Kafka/Flink — this package provides the equivalent
// tumbling- and sliding-window semantics in-process).
//
// A Windower consumes timestamped records and emits completed windows; the
// party-side shift detector then compares consecutive windows.
package stream

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dataset"
)

// Record is one timestamped observation in a party's stream.
type Record struct {
	Example   dataset.Example
	Timestamp time.Time
}

// Window is a completed batch of records covering [Start, End).
type Window struct {
	Start, End time.Time
	Records    []Record
}

// Examples extracts the window's examples.
func (w *Window) Examples() []dataset.Example {
	out := make([]dataset.Example, len(w.Records))
	for i, r := range w.Records {
		out[i] = r.Example
	}
	return out
}

// ErrOutOfOrder is returned when a record arrives with a timestamp earlier
// than data already finalized into an emitted window.
var ErrOutOfOrder = errors.New("stream: record older than emitted watermark")

// Windower segments a stream of records into windows.
type Windower interface {
	// Offer adds a record and returns any windows completed by its
	// arrival (possibly none).
	Offer(r Record) ([]Window, error)
	// Flush closes and returns the currently open window(s).
	Flush() []Window
}

// Tumbling emits fixed-size, non-overlapping windows — the configuration the
// paper uses for FMoW and Tiny-ImageNet-C.
type Tumbling struct {
	size      time.Duration
	start     time.Time
	started   bool
	watermark time.Time
	buf       []Record
}

var _ Windower = (*Tumbling)(nil)

// NewTumbling returns a tumbling windower with the given window size.
func NewTumbling(size time.Duration) (*Tumbling, error) {
	if size <= 0 {
		return nil, fmt.Errorf("stream: tumbling size must be positive, got %v", size)
	}
	return &Tumbling{size: size}, nil
}

// Offer implements Windower.
func (t *Tumbling) Offer(r Record) ([]Window, error) {
	if !t.started {
		t.start = r.Timestamp
		t.started = true
	}
	if r.Timestamp.Before(t.watermark) {
		return nil, fmt.Errorf("%w: %v < %v", ErrOutOfOrder, r.Timestamp, t.watermark)
	}
	var out []Window
	for !r.Timestamp.Before(t.start.Add(t.size)) {
		out = append(out, Window{Start: t.start, End: t.start.Add(t.size), Records: t.buf})
		t.buf = nil
		t.start = t.start.Add(t.size)
		t.watermark = t.start
	}
	t.buf = append(t.buf, r)
	return out, nil
}

// Flush implements Windower.
func (t *Tumbling) Flush() []Window {
	if !t.started || len(t.buf) == 0 {
		return nil
	}
	w := Window{Start: t.start, End: t.start.Add(t.size), Records: t.buf}
	t.buf = nil
	t.watermark = w.End
	return []Window{w}
}

// Sliding emits overlapping windows of the given size every step — the
// configuration the paper uses for CIFAR-10-C, FEMNIST, and Fashion-MNIST.
type Sliding struct {
	size, step time.Duration
	start      time.Time
	started    bool
	watermark  time.Time
	buf        []Record // all records still inside some open window
}

var _ Windower = (*Sliding)(nil)

// NewSliding returns a sliding windower. step must not exceed size.
func NewSliding(size, step time.Duration) (*Sliding, error) {
	if size <= 0 || step <= 0 {
		return nil, fmt.Errorf("stream: size and step must be positive, got %v/%v", size, step)
	}
	if step > size {
		return nil, fmt.Errorf("stream: step %v exceeds size %v", step, size)
	}
	return &Sliding{size: size, step: step}, nil
}

// Offer implements Windower.
func (s *Sliding) Offer(r Record) ([]Window, error) {
	if !s.started {
		s.start = r.Timestamp
		s.started = true
	}
	if r.Timestamp.Before(s.watermark) {
		return nil, fmt.Errorf("%w: %v < %v", ErrOutOfOrder, r.Timestamp, s.watermark)
	}
	var out []Window
	// Emit every window whose end has passed.
	for !r.Timestamp.Before(s.start.Add(s.size)) {
		out = append(out, s.snapshot())
		s.advance()
	}
	s.buf = append(s.buf, r)
	return out, nil
}

// snapshot builds the window beginning at s.start from buffered records.
func (s *Sliding) snapshot() Window {
	end := s.start.Add(s.size)
	w := Window{Start: s.start, End: end}
	for _, r := range s.buf {
		if !r.Timestamp.Before(s.start) && r.Timestamp.Before(end) {
			w.Records = append(w.Records, r)
		}
	}
	return w
}

// advance slides the open window by one step and drops expired records.
func (s *Sliding) advance() {
	s.start = s.start.Add(s.step)
	s.watermark = s.start
	keep := s.buf[:0]
	for _, r := range s.buf {
		if !r.Timestamp.Before(s.start) {
			keep = append(keep, r)
		}
	}
	s.buf = keep
}

// Flush implements Windower.
func (s *Sliding) Flush() []Window {
	if !s.started || len(s.buf) == 0 {
		return nil
	}
	w := s.snapshot()
	s.buf = nil
	if len(w.Records) == 0 {
		return nil
	}
	return []Window{w}
}

// Replay feeds a pre-windowed scenario slice through a Windower, assigning
// synthetic timestamps so that each input batch lands in exactly one
// tumbling window. It is the bridge between the scenario generator (which
// produces logical windows) and the streaming path used by the live
// binaries.
func Replay(batches [][]dataset.Example, size time.Duration, w Windower) ([]Window, error) {
	base := time.Unix(0, 0).UTC()
	var out []Window
	for bi, batch := range batches {
		if len(batch) == 0 {
			return nil, fmt.Errorf("stream: batch %d is empty", bi)
		}
		// The first record sits exactly at the window start so that the
		// windower's boundaries align with batch boundaries.
		windowStart := base.Add(time.Duration(bi) * size)
		gap := size / time.Duration(len(batch))
		for i, ex := range batch {
			done, err := w.Offer(Record{Example: ex, Timestamp: windowStart.Add(time.Duration(i) * gap)})
			if err != nil {
				return nil, fmt.Errorf("replay batch %d: %w", bi, err)
			}
			out = append(out, done...)
		}
	}
	out = append(out, w.Flush()...)
	return out, nil
}
