package stream

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

func rec(sec int64, y int) Record {
	return Record{
		Example:   dataset.Example{X: tensor.Vector{float64(sec)}, Y: y},
		Timestamp: time.Unix(sec, 0).UTC(),
	}
}

func TestNewTumblingValidation(t *testing.T) {
	if _, err := NewTumbling(0); err == nil {
		t.Fatal("size=0 should error")
	}
	if _, err := NewTumbling(-time.Second); err == nil {
		t.Fatal("negative size should error")
	}
}

func TestTumblingBasic(t *testing.T) {
	w, err := NewTumbling(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []Window
	for _, r := range []Record{rec(0, 0), rec(3, 1), rec(9, 2), rec(10, 3), rec(19, 4), rec(25, 5)} {
		done, err := w.Offer(r)
		if err != nil {
			t.Fatal(err)
		}
		emitted = append(emitted, done...)
	}
	emitted = append(emitted, w.Flush()...)
	if len(emitted) != 3 {
		t.Fatalf("windows = %d, want 3", len(emitted))
	}
	if n := len(emitted[0].Records); n != 3 {
		t.Fatalf("w0 records = %d, want 3", n)
	}
	if n := len(emitted[1].Records); n != 2 {
		t.Fatalf("w1 records = %d, want 2", n)
	}
	if n := len(emitted[2].Records); n != 1 {
		t.Fatalf("w2 records = %d, want 1", n)
	}
	// Windows must not overlap and must be contiguous.
	if !emitted[0].End.Equal(emitted[1].Start) {
		t.Fatal("tumbling windows must be contiguous")
	}
}

func TestTumblingGapSkipsEmptyWindows(t *testing.T) {
	w, err := NewTumbling(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Offer(rec(0, 0)); err != nil {
		t.Fatal(err)
	}
	done, err := w.Offer(rec(23, 1)) // skips several empty windows
	if err != nil {
		t.Fatal(err)
	}
	// First emitted window holds the first record; the rest are empty.
	if len(done) == 0 || len(done[0].Records) != 1 {
		t.Fatalf("emitted = %v", done)
	}
	last := w.Flush()
	if len(last) != 1 || len(last[0].Records) != 1 {
		t.Fatalf("flush = %v", last)
	}
	if got := last[0].Records[0].Example.Y; got != 1 {
		t.Fatalf("flushed record label = %d", got)
	}
}

func TestTumblingOutOfOrder(t *testing.T) {
	w, err := NewTumbling(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Offer(rec(5, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Offer(rec(15, 1)); err != nil { // emits first window
		t.Fatal(err)
	}
	if _, err := w.Offer(rec(8, 2)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("want ErrOutOfOrder, got %v", err)
	}
	// Late-but-within-open-window records are fine.
	if _, err := w.Offer(rec(16, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestTumblingFlushEmpty(t *testing.T) {
	w, err := NewTumbling(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Flush(); got != nil {
		t.Fatalf("flush before any record = %v", got)
	}
}

func TestNewSlidingValidation(t *testing.T) {
	if _, err := NewSliding(0, 1); err == nil {
		t.Fatal("size=0 should error")
	}
	if _, err := NewSliding(5*time.Second, 10*time.Second); err == nil {
		t.Fatal("step>size should error")
	}
	if _, err := NewSliding(5*time.Second, -1); err == nil {
		t.Fatal("negative step should error")
	}
}

func TestSlidingOverlap(t *testing.T) {
	w, err := NewSliding(10*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []Window
	for sec := int64(0); sec <= 20; sec += 2 {
		done, err := w.Offer(rec(sec, int(sec)))
		if err != nil {
			t.Fatal(err)
		}
		emitted = append(emitted, done...)
	}
	emitted = append(emitted, w.Flush()...)
	if len(emitted) < 3 {
		t.Fatalf("emitted %d windows, want >=3", len(emitted))
	}
	// First two windows must overlap: records in [5,10) appear in both.
	inBoth := 0
	for _, r := range emitted[0].Records {
		ts := r.Timestamp
		for _, r2 := range emitted[1].Records {
			if r2.Timestamp.Equal(ts) {
				inBoth++
			}
		}
	}
	if inBoth == 0 {
		t.Fatal("sliding windows should share records")
	}
	// Window length must equal size.
	if d := emitted[0].End.Sub(emitted[0].Start); d != 10*time.Second {
		t.Fatalf("window span = %v", d)
	}
	// Consecutive windows advance by step.
	if d := emitted[1].Start.Sub(emitted[0].Start); d != 5*time.Second {
		t.Fatalf("window step = %v", d)
	}
}

func TestSlidingOutOfOrder(t *testing.T) {
	w, err := NewSliding(10*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Offer(rec(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Offer(rec(12, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Offer(rec(1, 2)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("want ErrOutOfOrder, got %v", err)
	}
}

func TestSlidingFlush(t *testing.T) {
	w, err := NewSliding(10*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Flush(); got != nil {
		t.Fatalf("flush before records = %v", got)
	}
	if _, err := w.Offer(rec(1, 0)); err != nil {
		t.Fatal(err)
	}
	fl := w.Flush()
	if len(fl) != 1 || len(fl[0].Records) != 1 {
		t.Fatalf("flush = %+v", fl)
	}
}

func TestWindowExamples(t *testing.T) {
	w := Window{Records: []Record{rec(1, 7), rec(2, 8)}}
	exs := w.Examples()
	if len(exs) != 2 || exs[0].Y != 7 || exs[1].Y != 8 {
		t.Fatalf("examples = %v", exs)
	}
}

func TestReplayRoundTripsBatches(t *testing.T) {
	mk := func(n, label int) []dataset.Example {
		out := make([]dataset.Example, n)
		for i := range out {
			out[i] = dataset.Example{X: tensor.Vector{float64(i)}, Y: label}
		}
		return out
	}
	batches := [][]dataset.Example{mk(5, 0), mk(7, 1), mk(3, 2)}
	tw, err := NewTumbling(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := Replay(batches, time.Minute, tw)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 3 {
		t.Fatalf("windows = %d, want 3", len(windows))
	}
	for i, w := range windows {
		if len(w.Records) != len(batches[i]) {
			t.Fatalf("window %d has %d records, want %d", i, len(w.Records), len(batches[i]))
		}
		for _, r := range w.Records {
			if r.Example.Y != i {
				t.Fatalf("window %d contains label %d", i, r.Example.Y)
			}
		}
	}
}

func TestReplayEmptyBatch(t *testing.T) {
	tw, err := NewTumbling(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay([][]dataset.Example{{}}, time.Minute, tw); err == nil {
		t.Fatal("empty batch should error")
	}
}

// TestSlidingFlushPartialWindow covers the flush of a half-open window
// after earlier windows have already been emitted: the snapshot must cover
// [start, start+size) of the advanced position and contain only the records
// still inside it — not the ones already expired by advance.
func TestSlidingFlushPartialWindow(t *testing.T) {
	w, err := NewSliding(10*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []Window
	for _, sec := range []int64{0, 3, 6, 11} {
		out, err := w.Offer(rec(sec, int(sec)))
		if err != nil {
			t.Fatal(err)
		}
		emitted = append(emitted, out...)
	}
	// The record at t=11 closed [0,10): records 0,3,6.
	if len(emitted) != 1 || len(emitted[0].Records) != 3 {
		t.Fatalf("emitted = %+v, want one window of 3 records", emitted)
	}

	fl := w.Flush()
	if len(fl) != 1 {
		t.Fatalf("flush = %+v, want one partial window", fl)
	}
	got := fl[0]
	wantStart := time.Unix(5, 0).UTC()
	if !got.Start.Equal(wantStart) || !got.End.Equal(wantStart.Add(10*time.Second)) {
		t.Fatalf("partial window spans [%v,%v), want [%v,%v)", got.Start, got.End, wantStart, wantStart.Add(10*time.Second))
	}
	// Only 6 and 11 are inside [5,15); 0 and 3 expired with the advance.
	if len(got.Records) != 2 || got.Records[0].Example.Y != 6 || got.Records[1].Example.Y != 11 {
		t.Fatalf("partial window records = %+v, want labels 6 and 11", got.Records)
	}

	// Flush consumed the buffer: a second flush has nothing to emit.
	if again := w.Flush(); again != nil {
		t.Fatalf("second flush = %+v, want nil", again)
	}
}

// TestReplayEmptyBatchMiddle pins that an empty batch anywhere in the
// stream fails loudly, naming the offending batch, instead of silently
// emitting a hole the detector would misread as a quiet window.
func TestReplayEmptyBatchMiddle(t *testing.T) {
	tw, err := NewTumbling(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]dataset.Example{
		{{X: tensor.Vector{1}, Y: 0}},
		{},
		{{X: tensor.Vector{2}, Y: 1}},
	}
	_, err = Replay(batches, time.Minute, tw)
	if err == nil {
		t.Fatal("empty middle batch should error")
	}
	if want := "batch 1"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q", err, want)
	}
}

// TestReplayNoBatches covers the degenerate empty stream: nothing to emit,
// no error, and the windower's flush contributes nothing.
func TestReplayNoBatches(t *testing.T) {
	tw, err := NewTumbling(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := Replay(nil, time.Minute, tw)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 0 {
		t.Fatalf("windows = %+v, want none", windows)
	}
}
