package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/experiments"
)

// tinyLoadConfig matches the scenario shape checkpoint_tiny.json was
// trained with (see EXPERIMENTS.md "Serving benchmark" for the recipe).
func tinyLoadConfig() LoadConfig {
	return LoadConfig{SamplesPerParty: 40, TestPerParty: 20, Concurrency: 4, Repeat: 2}
}

func TestRunLoadAgainstTinyCheckpoint(t *testing.T) {
	cp, snap := loadTiny(t)
	srv, err := NewServer(snap, Config{Workers: 2, MaxDelay: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := tinyLoadConfig()
	res, err := RunLoad(context.Background(), srv, cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := uint64(len(cp.Aggregator.Assignment) * cfg.TestPerParty * cfg.Repeat)
	if res.Requests+res.Rejected+res.Errors != wantTotal {
		t.Fatalf("accounted %d requests, want %d", res.Requests+res.Rejected+res.Errors, wantTotal)
	}
	if res.Errors != 0 {
		t.Fatalf("%d requests errored", res.Errors)
	}
	if res.Requests == 0 || res.Duration <= 0 {
		t.Fatal("no load was generated")
	}
	// The snapshot was trained on this distribution; it must beat chance
	// (10 classes) comfortably.
	if acc := res.Accuracy(); acc < 0.2 {
		t.Fatalf("serving accuracy %.3f, want >= 0.2", acc)
	}
	if res.AssignedKnown == 0 {
		t.Fatal("no request had routing ground truth")
	}
	if len(res.Regimes) == 0 {
		t.Fatal("no per-regime breakdown")
	}
	var regimeReqs, regimeKnown int
	for _, g := range res.Regimes {
		regimeReqs += g.Requests
		regimeKnown += g.AssignedKnown
	}
	if uint64(regimeReqs) != res.Requests {
		t.Fatalf("regime breakdown covers %d of %d requests", regimeReqs, res.Requests)
	}
	// The per-regime AssignedKnown tallies must add up to the aggregate —
	// they used to be dropped in the worker merge, which zeroed every
	// regime's routedToAssigned in the committed artifact.
	if uint64(regimeKnown) != res.AssignedKnown {
		t.Fatalf("regime AssignedKnown sums to %d, aggregate is %d", regimeKnown, res.AssignedKnown)
	}
	// Second pass over the same stream must have hit the route cache.
	if res.Server.CacheHits == 0 {
		t.Fatal("repeat pass produced no cache hits")
	}
	if res.LatencyP99 < res.LatencyP50 || res.LatencyMax < res.LatencyP99 {
		t.Fatalf("latency quantiles disordered: p50=%v p99=%v max=%v", res.LatencyP50, res.LatencyP99, res.LatencyMax)
	}
}

func TestRunLoadSwapMidLoadDropsNothing(t *testing.T) {
	cp, snap := loadTiny(t)
	srv, err := NewServer(snap, Config{Workers: 2, MaxDelay: 500 * time.Microsecond, QueueDepth: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := tinyLoadConfig()
	cfg.SwapMidLoad = true
	cfg.Repeat = 1 << 20 // effectively unbounded; the deadline ends the run
	cfg.MaxDuration = 400 * time.Millisecond
	res, err := RunLoad(context.Background(), srv, cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d requests errored across the swap", res.Errors)
	}
	if res.Server.Swaps != 1 {
		t.Fatalf("swaps=%d, want exactly 1", res.Server.Swaps)
	}
	if res.Requests == 0 {
		t.Fatal("no load was generated")
	}
}

func TestLoadResultArtifact(t *testing.T) {
	cp, snap := loadTiny(t)
	srv, err := NewServer(snap, Config{Workers: 2, MaxDelay: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := tinyLoadConfig()
	res, err := RunLoad(context.Background(), srv, cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Artifact(cp, cfg, Config{Workers: 2, MaxDelay: 500 * time.Microsecond})
	if err := a.Validate(); err != nil {
		t.Fatalf("artifact invalid: %v", err)
	}
	if a.ThroughputPerSec <= 0 || a.Requests != res.Requests {
		t.Fatal("artifact does not reflect the run")
	}
	if a.Options.Seed != cp.Seed || a.Options.CheckpointWindows != cp.WindowsDone {
		t.Fatal("artifact options do not pin the checkpoint protocol")
	}
	if a.Name != experiments.ServingArtifactName || a.Options.ColdTraffic {
		t.Fatalf("cache-enabled run must produce the warm artifact, got %q cold=%v", a.Name, a.Options.ColdTraffic)
	}
}

// TestLoadResultArtifactCold pins the cold-traffic artifact contract: a run
// with the cache disabled names itself "serving-cold", carries the
// coldTraffic flag, and still validates.
func TestLoadResultArtifactCold(t *testing.T) {
	cp, snap := loadTiny(t)
	srvCfg := Config{Workers: 2, MaxDelay: 500 * time.Microsecond, CacheSize: -1}
	srv, err := NewServer(snap, srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := tinyLoadConfig()
	res, err := RunLoad(context.Background(), srv, cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Artifact(cp, cfg, srvCfg)
	if a.Name != experiments.ServingColdArtifactName || !a.Options.ColdTraffic {
		t.Fatalf("cold run artifact = %q cold=%v", a.Name, a.Options.ColdTraffic)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("cold artifact invalid: %v", err)
	}
	if a.CacheHitRate != 0 {
		t.Fatalf("cold run reports cacheHitRate %g, want 0", a.CacheHitRate)
	}
	if res.Server.CacheBypass != res.Server.Requests {
		t.Fatalf("bypass=%d requests=%d, every cold request must bypass the cache",
			res.Server.CacheBypass, res.Server.Requests)
	}
}

func TestBuildWorkloadRejectsEmptyAssignment(t *testing.T) {
	cp, _ := loadTiny(t)
	cp.Aggregator.Assignment = nil
	if _, err := Workload(cp, tinyLoadConfig()); err == nil {
		t.Fatal("empty assignment must be rejected")
	}
}

// TestRunLoadSwapTooLateNeverLies pins the SwapMidLoad contract on a run
// so short the swap usually cannot land in time: the outcome must be
// either a loud ErrSwapTooLate (no swap happened) or a successful run
// whose metrics record exactly one swap — never a success that silently
// skipped the swap, and never an idle-server swap presented as evidence.
func TestRunLoadSwapTooLateNeverLies(t *testing.T) {
	cp, snap := loadTiny(t)
	srv, err := NewServer(snap, Config{Workers: 2, MaxDelay: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := tinyLoadConfig()
	cfg.SwapMidLoad = true
	// 8 requests (one per party), typically drained before the swap's
	// checkpoint rebuild reaches the halfway mark; scheduling decides.
	cfg.Repeat = 1
	cfg.TestPerParty = 1
	res, err := RunLoad(context.Background(), srv, cp, cfg)
	switch {
	case errors.Is(err, ErrSwapTooLate):
		if got := srv.Metrics().Snapshot().Swaps; got != 0 {
			t.Fatalf("ErrSwapTooLate but %d swaps recorded", got)
		}
	case err == nil:
		if res.Server.Swaps != 1 {
			t.Fatalf("swap-mid-load run succeeded with %d swaps, want 1", res.Server.Swaps)
		}
	default:
		t.Fatal(err)
	}
}
