package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/monitor"
	"repro/internal/service"
)

// DefaultDriftTrials is the number of interleaved unmonitored/monitored
// trial pairs RunDriftBench runs when the caller does not choose.
const DefaultDriftTrials = 3

// RunDriftBench measures the drift monitor end to end: the same cold
// (cache-disabled) workload with a corruption injected at ShiftAt of the
// run is replayed as trials interleaved pairs — an unmonitored baseline
// trial, then a monitored trial whose batched routing path tees every
// embedding into the monitor — preceded by one unmonitored warmup
// (discarded). Each side reports its best trial, the same
// interference-cancelling protocol as RunTracingBench. The cache is
// forced off because cache hits skip embedding and so are invisible to
// the monitor; cold traffic is the honest coverage condition (and what
// the committed cold serving baseline measures).
//
// Detection is read from the best monitored trial: the watermark is the
// monitor's teed-sample count at the injection instant, detection is
// the first evaluation past the watermark whose score crossed the
// threshold, and any crossing at or before the watermark is a false
// positive the CheckDrift gate rejects.
func RunDriftBench(ctx context.Context, cp *service.Checkpoint, cfg LoadConfig, srvCfg Config, monCfg monitor.Config, trials int) (*experiments.DriftArtifact, error) {
	cfg = cfg.withDefaults()
	cfg.SwapMidLoad = false
	if cfg.ShiftAt <= 0 {
		cfg.ShiftAt = 0.5
	}
	if cfg.ShiftCorruption.IsIdentity() {
		cfg.ShiftCorruption = dataset.Corruption{Kind: dataset.CorruptFrost, Severity: 5}
	}
	srvCfg = srvCfg.withDefaults()
	srvCfg.CacheSize = -1
	if trials <= 0 {
		trials = DefaultDriftTrials
	}

	phase := func(mon *monitor.Monitor) (*LoadResult, error) {
		snap, err := SnapshotFromCheckpoint(cp)
		if err != nil {
			return nil, err
		}
		pcfg := srvCfg
		pcfg.Monitor = mon
		srv, err := NewServer(snap, pcfg)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		return RunLoad(ctx, srv, cp, cfg)
	}

	if _, err := phase(nil); err != nil {
		return nil, fmt.Errorf("serve: drift bench warmup: %w", err)
	}
	var (
		base, monitored *LoadResult
		bestSum         *monitor.Summary
		bestEvals       []monitor.Evaluation
		effCfg          monitor.Config
	)
	for i := 0; i < trials; i++ {
		b, err := phase(nil)
		if err != nil {
			return nil, fmt.Errorf("serve: drift bench baseline trial %d: %w", i+1, err)
		}
		mon := monitor.New(monCfg)
		m, err := phase(mon)
		if err != nil {
			mon.Close()
			return nil, fmt.Errorf("serve: drift bench monitored trial %d: %w", i+1, err)
		}
		// Drain everything still queued and force a final evaluation so
		// the trial's verdict covers its whole stream, then snapshot the
		// monitor state before tearing it down.
		mon.Flush()
		sum := mon.Summary()
		evals := mon.Evaluations(0, -1)
		effCfg = mon.Config()
		mon.Close()
		if b != nil && (base == nil || b.Throughput() > base.Throughput()) {
			base = b
		}
		if monitored == nil || m.Throughput() > monitored.Throughput() {
			monitored = m
			bestSum = sum
			bestEvals = evals
		}
	}
	if bestSum.Samples == 0 {
		return nil, fmt.Errorf("serve: drift bench monitor folded no samples (teed %d, dropped %d)", bestSum.Teed, bestSum.Dropped)
	}
	if !bestSum.Calibrated {
		return nil, fmt.Errorf("serve: drift bench monitor never calibrated (%d samples folded, baseline needs %d): %s",
			bestSum.Samples, effCfg.BaselineSize, bestSum.CalibrationError)
	}

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	a := &experiments.DriftArtifact{
		Schema: experiments.DriftSchemaVersion,
		Name:   experiments.DriftArtifactName,
		Options: experiments.DriftOptions{
			CheckpointWindows: cp.WindowsDone,
			Arch:              cp.Arch,
			Parties:           len(cp.Aggregator.Assignment),
			SamplesPerParty:   cfg.SamplesPerParty,
			TestPerParty:      cfg.TestPerParty,
			Seed:              cp.Seed,
			Concurrency:       cfg.Concurrency,
			Repeat:            cfg.Repeat,
			Workers:           srvCfg.Workers,
			MaxBatch:          srvCfg.MaxBatch,
			MaxDelayMs:        ms(srvCfg.MaxDelay),
			ShiftAt:           cfg.ShiftAt,
			ShiftKind:         cfg.ShiftCorruption.String(),
			ShiftSeverity:     cfg.ShiftCorruption.Severity,
			EvalEvery:         effCfg.EvalEvery,
			SampleEvery:       effCfg.SampleEvery,
			BaselineSize:      effCfg.BaselineSize,
			WindowSize:        effCfg.WindowSize,
			Threshold:         effCfg.Threshold,
			Resamples:         effCfg.Calibrate.Resamples,
			Trials:            trials,
		},
		BaselineRequests:          base.Requests,
		BaselineDurationMs:        ms(base.Duration),
		BaselineThroughputPerSec:  base.Throughput(),
		MonitoredRequests:         monitored.Requests,
		MonitoredDurationMs:       ms(monitored.Duration),
		MonitoredThroughputPerSec: monitored.Throughput(),
		SamplesSeen:               bestSum.Samples,
		SamplesDropped:            bestSum.Dropped,
		Evals:                     bestSum.Evals,
		ShiftAtSample:             monitored.ShiftTeedSamples,
		Delta:                     bestSum.Delta,
	}
	if a.BaselineThroughputPerSec > 0 {
		a.OverheadPercent = (1 - a.MonitoredThroughputPerSec/a.BaselineThroughputPerSec) * 100
	}
	for _, ev := range bestEvals {
		if ev.Err != "" {
			continue
		}
		if ev.Score > a.MaxScore {
			a.MaxScore = ev.Score
		}
		if !ev.Crossed {
			continue
		}
		// Compare in the tee clock (ev.TeedAt), the clock the watermark was
		// read in — the folded count lags it when backpressure drops.
		if ev.TeedAt <= a.ShiftAtSample {
			a.FalsePositives++
			continue
		}
		if !a.Detected {
			a.Detected = true
			a.DetectedAtSample = ev.TeedAt
			a.DetectionLatencySamples = ev.TeedAt - a.ShiftAtSample
			a.ScoreAtDetection = ev.Score
		}
	}
	return a, nil
}
