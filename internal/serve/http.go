package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Handler returns the serving API:
//
//	POST /predict   {"x":[...]} → {"class","expert","matched","cached","snapshot"}
//	GET  /snapshot  serving-snapshot summary (version, experts, ε, position)
//	POST /snapshot  {"path":"ckpt.json"} → hot-swap to that checkpoint
//	GET  /healthz   liveness (always 200 while serving)
//	GET  /metrics   Prometheus text: request counts, p50/p90/p99 latency,
//	                cache and batching counters
//
// /predict answers 503 with Retry-After when the pipeline is saturated and
// 410 after shutdown has begun, so load balancers can react correctly.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// predictRequest is the /predict wire format.
type predictRequest struct {
	X tensor.Vector `json:"x"`
}

// predictResponse is the /predict reply.
type predictResponse struct {
	Class    int  `json:"class"`
	Expert   int  `json:"expert"`
	Matched  bool `json:"matched"`
	Cached   bool `json:"cached"`
	Snapshot int  `json:"snapshot"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
		return
	}
	var req predictRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return
	}
	res, err := s.Predict(r.Context(), req.X)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusGone, map[string]string{"error": err.Error()})
		return
	case errors.Is(err, nn.ErrDimension):
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	case err != nil:
		// Anything else is a server-side failure (worker error, canceled
		// context): 500 so balancers and alerting treat it as ours, not
		// the client's.
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{
		Class: res.Class, Expert: res.Expert, Matched: res.Matched,
		Cached: res.Cached, Snapshot: res.Version,
	})
}

// snapshotSummary is the GET /snapshot (and POST reply) wire format.
type snapshotSummary struct {
	Version     int     `json:"version"`
	Experts     int     `json:"experts"`
	ExpertIDs   []int   `json:"expertIds"`
	Fallback    int     `json:"fallback"`
	Epsilon     float64 `json:"epsilon"`
	WindowsDone int     `json:"windowsDone"`
	InputDim    int     `json:"inputDim"`
	// Policy is the adaptation policy of the training run that produced
	// the snapshot's checkpoint.
	Policy string `json:"policy,omitempty"`
}

func summarize(snap *Snapshot) snapshotSummary {
	ids := make([]int, 0, snap.NumExperts())
	for _, e := range snap.Experts() {
		ids = append(ids, e.ID)
	}
	return snapshotSummary{
		Version:     snap.Version,
		Experts:     snap.NumExperts(),
		ExpertIDs:   ids,
		Fallback:    snap.Fallback().ID,
		Epsilon:     snap.Epsilon,
		WindowsDone: snap.WindowsDone,
		InputDim:    snap.InputDim(),
		Policy:      snap.Policy,
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, summarize(s.Snapshot()))
	case http.MethodPost:
		var req struct {
			Path string `json:"path"`
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil || req.Path == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": `body must be {"path":"checkpoint.json"}`})
			return
		}
		if err := s.SwapFromCheckpoint(req.Path); err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, summarize(s.Snapshot()))
	default:
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET or POST required"})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.Snapshot()
	m := s.metrics.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"snapshot":      snap.Version,
		"experts":       snap.NumExperts(),
		"requests":      m.Requests,
		"inflight":      m.Inflight,
		"uptimeSeconds": m.UptimeSeconds,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.metrics.Snapshot()
	snap := s.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b []byte
	add := func(format string, args ...any) {
		b = fmt.Appendf(b, format+"\n", args...)
	}
	add("# HELP shiftex_serve_uptime_seconds Time since the server started.")
	add("# TYPE shiftex_serve_uptime_seconds gauge")
	add("shiftex_serve_uptime_seconds %g", m.UptimeSeconds)
	add("# HELP shiftex_serve_requests_total Predictions served, by outcome.")
	add("# TYPE shiftex_serve_requests_total counter")
	add(`shiftex_serve_requests_total{outcome="ok"} %d`, m.Requests)
	add(`shiftex_serve_requests_total{outcome="error"} %d`, m.Errored)
	add(`shiftex_serve_requests_total{outcome="rejected"} %d`, m.Rejected)
	add("# HELP shiftex_serve_inflight Requests admitted but not yet answered.")
	add("# TYPE shiftex_serve_inflight gauge")
	add("shiftex_serve_inflight %d", m.Inflight)
	add("# HELP shiftex_serve_latency_seconds Request latency quantiles.")
	add("# TYPE shiftex_serve_latency_seconds gauge")
	add(`shiftex_serve_latency_seconds{quantile="0.5"} %g`, m.P50Seconds)
	add(`shiftex_serve_latency_seconds{quantile="0.9"} %g`, m.P90Seconds)
	add(`shiftex_serve_latency_seconds{quantile="0.99"} %g`, m.P99Seconds)
	add("# HELP shiftex_serve_routed_total Routing decisions, by kind.")
	add("# TYPE shiftex_serve_routed_total counter")
	add(`shiftex_serve_routed_total{kind="matched"} %d`, m.Matched)
	add(`shiftex_serve_routed_total{kind="fallback"} %d`, m.Fallbacks)
	add("# HELP shiftex_serve_route_cache_total LRU route-cache lookups.")
	add("# TYPE shiftex_serve_route_cache_total counter")
	add(`shiftex_serve_route_cache_total{result="hit"} %d`, m.CacheHits)
	add(`shiftex_serve_route_cache_total{result="miss"} %d`, m.CacheMisses)
	add("# HELP shiftex_serve_snapshot_version Serving snapshot version (increments on hot swap).")
	add("# TYPE shiftex_serve_snapshot_version gauge")
	add("shiftex_serve_snapshot_version %d", snap.Version)
	add("# HELP shiftex_serve_experts Experts in the serving snapshot.")
	add("# TYPE shiftex_serve_experts gauge")
	add("shiftex_serve_experts %d", snap.NumExperts())
	add("# HELP shiftex_serve_batches_total Micro-batches drained by the worker pool.")
	add("# TYPE shiftex_serve_batches_total counter")
	add("shiftex_serve_batches_total %d", m.Batches)
	add("# HELP shiftex_serve_batch_mean_size Mean requests per drained batch.")
	add("# TYPE shiftex_serve_batch_mean_size gauge")
	add("shiftex_serve_batch_mean_size %g", m.MeanBatch)
	_, _ = w.Write(b)
}
