package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/httpapi"
	"repro/internal/monitor"
	"repro/internal/nn"
	"repro/internal/telemetry"
)

// Handler returns the serving API, versioned under /v1:
//
//	POST /v1/predict        {"x":[...],"model":"name"?} → httpapi.PredictResponse
//	GET  /v1/snapshot       serving-snapshot summary (version, experts, ε, effective ε)
//	POST /v1/snapshot       {"path":"ckpt.json"} → hot-swap to that checkpoint
//	GET  /v1/models/{name}  this replica's model card (404 for other names)
//	GET  /v1/state          shared httpapi.State envelope with the serve section
//	GET  /v1/healthz        liveness (always 200 while serving)
//	GET  /v1/metrics        Prometheus text (shared JSON schema with ?format=json)
//	GET  /v1/debug/drift    drift monitor summary + recent evaluations (?n=, ?expert=)
//	GET  /v1/debug/adapt    continual adaptation controller state (200 with enabled:false when detached)
//
// The pre-versioning routes (/predict /snapshot /healthz /metrics) stay
// reachable as deprecated aliases carrying a Deprecation header; unknown
// routes answer 404 with the live /v1 listing.
//
// /v1/predict answers 503 with Retry-After when the pipeline is saturated
// and 410 after shutdown has begun, so load balancers can react correctly.
// The same surface is exposed by the gateway tier, so single-model clients
// cannot tell a replica from a fleet.
func (s *Server) Handler() http.Handler {
	api := httpapi.NewAPI()
	api.Handle("/v1/predict", s.handlePredict)
	api.Handle("/v1/snapshot", s.handleSnapshot)
	api.Handle("/v1/models/{name}", s.handleModel)
	api.Handle("/v1/state", s.handleState)
	api.Handle("/v1/healthz", s.handleHealthz)
	api.Handle("/v1/metrics", s.handleMetrics)
	api.Handle("/v1/debug/traces", telemetry.TracesHandler(s.cfg.Tracer).ServeHTTP)
	api.Handle("/v1/debug/drift", monitor.Handler(s.cfg.Model, s.cfg.Monitor))
	api.Handle("/v1/debug/adapt", s.handleDebugAdapt)
	api.Deprecated("/predict", "/v1/predict", s.handlePredict)
	api.Deprecated("/snapshot", "/v1/snapshot", s.handleSnapshot)
	api.Deprecated("/healthz", "/v1/healthz", s.handleHealthz)
	api.Deprecated("/metrics", "/v1/metrics", s.handleMetrics)
	return api.Handler()
}

// Model returns the model name this server serves under.
func (s *Server) Model() string { return s.cfg.Model }

// checkModel rejects requests addressed to a model this replica does not
// host, listing the live (single-entry) vocabulary — mirroring the
// gateway's unknown-model answer so the two tiers respond identically.
func (s *Server) checkModel(w http.ResponseWriter, name string) bool {
	if name == "" || name == s.cfg.Model {
		return true
	}
	httpapi.WriteJSON(w, http.StatusNotFound, httpapi.ErrorBody{
		Error:  fmt.Sprintf("unknown model %q", name),
		Models: []string{s.cfg.Model},
	})
	return false
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpapi.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req httpapi.PredictRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if !s.checkModel(w, req.Model) {
		return
	}
	// Continue the caller's trace (the gateway injects traceparent) or
	// root a fresh one; a malformed header is replaced, never forwarded.
	span := s.cfg.Tracer.StartFromRequest("serve.predict", r)
	start := time.Now()
	ctx := telemetry.ContextWithSpan(r.Context(), span)
	res, err := s.Predict(ctx, req.X)
	if span != nil {
		span.SetAttr("model", s.cfg.Model)
		span.EndErr(err)
		if err == nil {
			s.metrics.NoteSlowest(time.Since(start), span.Context().TraceID.String())
		}
	}
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		httpapi.WriteError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrClosed):
		httpapi.WriteError(w, http.StatusGone, err.Error())
		return
	case errors.Is(err, nn.ErrDimension):
		httpapi.WriteError(w, http.StatusBadRequest, err.Error())
		return
	case err != nil:
		// Anything else is a server-side failure (worker error, canceled
		// context): 500 so balancers and alerting treat it as ours, not
		// the client's.
		httpapi.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	httpapi.WriteJSON(w, http.StatusOK, httpapi.PredictResponse{
		Class: res.Class, Expert: res.Expert, Matched: res.Matched,
		Cached: res.Cached, Snapshot: res.Version, Model: s.cfg.Model,
	})
}

// summarize renders the snapshot as the shared wire summary. Both the
// calibrated ε and the effective routing radius (ε × route-eps-scale) are
// reported — the widened radius used to be invisible, which made serving
// routing numbers impossible to reconcile with training calibration.
func (s *Server) summarize(snap *Snapshot) httpapi.SnapshotSummary {
	ids := make([]int, 0, snap.NumExperts())
	for _, e := range snap.Experts() {
		ids = append(ids, e.ID)
	}
	return httpapi.SnapshotSummary{
		SchemaVersion: httpapi.SchemaVersion,
		Model:         s.cfg.Model,
		Version:       snap.Version,
		Experts:       snap.NumExperts(),
		ExpertIDs:     ids,
		Fallback:      snap.Fallback().ID,
		Epsilon:       snap.Epsilon,
		RouteEpsilon:  snap.RouteEpsilon(),
		WindowsDone:   snap.WindowsDone,
		InputDim:      snap.InputDim(),
		Policy:        snap.Policy,
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		httpapi.WriteJSON(w, http.StatusOK, s.summarize(s.Snapshot()))
	case http.MethodPost:
		var req httpapi.SwapRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil || req.Path == "" {
			httpapi.WriteError(w, http.StatusBadRequest, `body must be {"path":"checkpoint.json"}`)
			return
		}
		if !s.checkModel(w, req.Model) {
			return
		}
		if err := s.SwapFromCheckpoint(req.Path); err != nil {
			httpapi.WriteError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		httpapi.WriteJSON(w, http.StatusOK, s.summarize(s.Snapshot()))
	default:
		httpapi.WriteError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// handleModel answers GET /v1/models/{name}: the model card of the one
// model this replica hosts. The gateway serves the same card (plus its
// replica fleet view) for every registered model.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpapi.WriteError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if !s.checkModel(w, r.PathValue("name")) {
		return
	}
	snap := s.Snapshot()
	httpapi.WriteJSON(w, http.StatusOK, httpapi.ModelInfo{
		SchemaVersion: httpapi.SchemaVersion,
		Name:          s.cfg.Model,
		Snapshot:      snap.Version,
		Experts:       snap.NumExperts(),
		Epsilon:       snap.Epsilon,
		RouteEpsilon:  snap.RouteEpsilon(),
		WindowsDone:   snap.WindowsDone,
		InputDim:      snap.InputDim(),
		Policy:        snap.Policy,
	})
}

func (s *Server) handleState(w http.ResponseWriter, _ *http.Request) {
	snap := s.Snapshot()
	m := s.metrics.Snapshot()
	ss := &httpapi.ServeState{
		Model:        s.cfg.Model,
		Snapshot:     snap.Version,
		Experts:      snap.NumExperts(),
		Epsilon:      snap.Epsilon,
		RouteEpsilon: snap.RouteEpsilon(),
		WindowsDone:  snap.WindowsDone,
		Requests:     m.Requests,
		Inflight:     m.Inflight,
	}
	if rep := s.Adaptation(); rep != nil {
		ss.Continual = rep.ContinualState()
	}
	httpapi.WriteJSON(w, http.StatusOK, httpapi.State{
		SchemaVersion: httpapi.SchemaVersion,
		Daemon:        "serve",
		Status:        "ok",
		UptimeSeconds: m.UptimeSeconds,
		Serve:         ss,
	})
}

// handleDebugAdapt answers GET /v1/debug/adapt with the attached continual
// controller's state machine. Like /v1/debug/drift, a replica without the
// closed loop still answers 200 (enabled false), so probes can tell
// "adaptation off" from "replica down".
func (s *Server) handleDebugAdapt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpapi.WriteError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	out := httpapi.ContinualDebugState{SchemaVersion: httpapi.SchemaVersion, Model: s.cfg.Model}
	if rep := s.Adaptation(); rep != nil {
		out.Enabled = true
		out.State = rep.ContinualState()
	}
	httpapi.WriteJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.Snapshot()
	m := s.metrics.Snapshot()
	httpapi.WriteJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"model":         s.cfg.Model,
		"snapshot":      snap.Version,
		"experts":       snap.NumExperts(),
		"requests":      m.Requests,
		"inflight":      m.Inflight,
		"uptimeSeconds": m.UptimeSeconds,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics.Snapshot()
	snap := s.Snapshot()
	// Per-expert effective match radius: experts with a latent-memory
	// signature are matchable within routeEps; signature-less experts are
	// reported at 0 (they can only serve as the fallback). This is the
	// observable form of -route-eps-scale, whose widening used to be
	// invisible to operators.
	experts := snap.Experts()
	epsSamples := make([]httpapi.Sample, 0, len(experts))
	for _, e := range experts {
		eps := 0.0
		if e.Memory != nil {
			eps = snap.RouteEpsilon()
		}
		epsSamples = append(epsSamples, httpapi.Sample{
			Labels: fmt.Sprintf("expert=%q", strconv.Itoa(e.ID)), Value: eps,
		})
	}
	// The latency quantiles carry the slowest traced request as an
	// OpenMetrics exemplar: "p99 regressed" comes with a trace ID to
	// pull from /v1/debug/traces.
	var exemplar *httpapi.Exemplar
	if slowDur, slowTrace := s.metrics.Slowest(); slowTrace != "" {
		exemplar = &httpapi.Exemplar{TraceID: slowTrace, Value: slowDur.Seconds()}
	}
	b := httpapi.NewMetricsBuilder("serve").
		Runtime(s.metrics.start).
		Gauge("shiftex_serve_uptime_seconds", "Time since the server started.", m.UptimeSeconds).
		CounterVec("shiftex_serve_requests_total", "Predictions served, by outcome.",
			httpapi.Sample{Labels: `outcome="ok"`, Value: float64(m.Requests)},
			httpapi.Sample{Labels: `outcome="error"`, Value: float64(m.Errored)},
			httpapi.Sample{Labels: `outcome="rejected"`, Value: float64(m.Rejected)}).
		Gauge("shiftex_serve_inflight", "Requests admitted but not yet answered.", float64(m.Inflight)).
		GaugeVec("shiftex_serve_latency_seconds", "Request latency quantiles (exemplar: slowest traced request).",
			httpapi.Sample{Labels: `quantile="0.5"`, Value: m.P50Seconds},
			httpapi.Sample{Labels: `quantile="0.9"`, Value: m.P90Seconds},
			httpapi.Sample{Labels: `quantile="0.99"`, Value: m.P99Seconds, Exemplar: exemplar}).
		CounterVec("shiftex_serve_routed_total", "Routing decisions, by kind.",
			httpapi.Sample{Labels: `kind="matched"`, Value: float64(m.Matched)},
			httpapi.Sample{Labels: `kind="fallback"`, Value: float64(m.Fallbacks)}).
		CounterVec("shiftex_serve_route_cache_total", "LRU route-cache lookups (bypass = cache disabled, request routed by the batched encoder).",
			httpapi.Sample{Labels: `result="hit"`, Value: float64(m.CacheHits)},
			httpapi.Sample{Labels: `result="miss"`, Value: float64(m.CacheMisses)},
			httpapi.Sample{Labels: `result="bypass"`, Value: float64(m.CacheBypass)}).
		GaugeVec("shiftex_serve_route_epsilon", "Match radius, calibrated (training ε) vs effective (ε × route-eps-scale, what routing compares against).",
			httpapi.Sample{Labels: `scope="calibrated"`, Value: snap.Epsilon},
			httpapi.Sample{Labels: `scope="effective"`, Value: snap.RouteEpsilon()}).
		GaugeVec("shiftex_serve_expert_route_epsilon", "Effective match radius per expert (0 = no latent-memory signature, fallback-only).", epsSamples...).
		Gauge("shiftex_serve_snapshot_version", "Serving snapshot version (increments on hot swap).", float64(snap.Version)).
		Gauge("shiftex_serve_experts", "Experts in the serving snapshot.", float64(snap.NumExperts())).
		Counter("shiftex_serve_batches_total", "Micro-batches drained by the worker pool.", float64(m.Batches)).
		Gauge("shiftex_serve_batch_mean_size", "Mean requests per drained batch.", m.MeanBatch)
	// Batch-size distribution: the pipeline's honesty meter. Mass in the
	// le="1" bucket means the server is not actually batching, whatever
	// its throughput numbers claim.
	bounds, counts, batchedSum, _ := s.metrics.BatchSizeHistogram()
	fb := make([]float64, len(bounds))
	for i, v := range bounds {
		fb[i] = float64(v)
	}
	b.Histogram("shiftex_serve_batch_size", "Requests per drained micro-batch.", fb, counts, float64(batchedSum))
	// Per-expert traffic share: the denominator drift series are read
	// against. Every completed request counts under its serving expert's
	// training-time ID, fallback-served included.
	if ids, reqCounts := s.metrics.ExpertRequests(); len(ids) > 0 {
		reqSamples := make([]httpapi.Sample, len(ids))
		for i, id := range ids {
			reqSamples[i] = httpapi.Sample{
				Labels: fmt.Sprintf("expert=%q", strconv.Itoa(id)), Value: float64(reqCounts[i]),
			}
		}
		b.CounterVec("shiftex_serve_expert_requests_total", "Predictions served per expert (by training-time ID), fallback-served included.", reqSamples...)
	}
	if mon := s.cfg.Monitor; mon != nil {
		sum := mon.Summary()
		expSamples := make([]httpapi.Sample, 0, len(sum.Experts))
		for _, e := range sum.Experts {
			expSamples = append(expSamples, httpapi.Sample{
				Labels: fmt.Sprintf("expert=%q", strconv.Itoa(e.ID)), Value: e.Score,
			})
		}
		b.Gauge("shiftex_monitor_drift_score", "Latest global drift score: detector statistic over the recent embedding window vs the post-swap baseline, normalized by the self-calibrated null quantile δ.", sum.Score).
			Gauge("shiftex_monitor_drift_threshold", "Normalized score level that counts as a drift crossing.", sum.Threshold).
			Counter("shiftex_monitor_crossings_total", "Drift evaluations whose score crossed the threshold.", float64(sum.Crossings)).
			Counter("shiftex_monitor_evals_total", "Drift evaluations run.", float64(sum.Evals)).
			Counter("shiftex_monitor_samples_total", "Routed samples folded into the monitor's sketches.", float64(sum.Samples)).
			Counter("shiftex_monitor_dropped_total", "Samples lost to monitor backpressure (drop-oldest queue or freelist exhaustion).", float64(sum.Dropped)).
			Gauge("shiftex_monitor_queue_depth", "Blocks waiting in the monitor hand-off queue.", float64(mon.QueueDepth())).
			Gauge("shiftex_monitor_fallback_rate", "EWMA of the per-batch fallback-served fraction seen by the monitor.", sum.FallbackRate).
			Gauge("shiftex_monitor_cache_bypass_share", "EWMA share of traffic reaching batched routing (and therefore the monitor) rather than the route cache.", sum.CacheBypassShare)
		if len(expSamples) > 0 {
			b.GaugeVec("shiftex_monitor_expert_drift_score", "Per-expert drift: squared distance of the expert's live embedding mean from its latent memory, over the effective routing radius (≥1 = live mean outside the radius).", expSamples...)
		}
		if len(sum.MarginBuckets) > 0 {
			b.Histogram("shiftex_monitor_margin", "Match margin per routed sample: best-signature squared distance over the effective radius (≤1 matched inside the radius).", monitor.MarginBounds(), sum.MarginBuckets, sum.MarginSum)
		}
	}
	if rep := s.Adaptation(); rep != nil {
		cs := rep.ContinualState()
		phases := [...]string{"idle", "adapting", "validating", "cooldown"}
		phSamples := make([]httpapi.Sample, len(phases))
		for i, ph := range phases {
			v := 0.0
			if cs.Phase == ph {
				v = 1
			}
			phSamples[i] = httpapi.Sample{Labels: fmt.Sprintf("phase=%q", ph), Value: v}
		}
		b.GaugeVec("shiftex_continual_phase", "Adaptation controller state machine (exactly one phase is 1).", phSamples...).
			Gauge("shiftex_continual_consecutive_crossed", "Crossed drift evaluations since the last clean one (a window triggers at the hysteresis count).", float64(cs.ConsecutiveCrossed)).
			Gauge("shiftex_continual_cooldown_remaining_seconds", "Seconds until the controller honors crossings again (0 outside cooldown).", cs.CooldownRemainingSeconds).
			CounterVec("shiftex_continual_triggers_total", "Confirmed drift crossings, by disposition (fired = started a window; suppressed = coalesced into an in-flight window or cooldown).",
				httpapi.Sample{Labels: `disposition="fired"`, Value: float64(cs.Triggers)},
				httpapi.Sample{Labels: `disposition="suppressed"`, Value: float64(cs.TriggersSuppressed)}).
			CounterVec("shiftex_continual_windows_total", "Live adaptation windows, by outcome.",
				httpapi.Sample{Labels: `outcome="completed"`, Value: float64(cs.WindowsCompleted)},
				httpapi.Sample{Labels: `outcome="rolled_back"`, Value: float64(cs.WindowsRolledBack)},
				httpapi.Sample{Labels: `outcome="rejected"`, Value: float64(cs.WindowsRejected)})
	}
	b.ServeMetrics(w, r)
}
