package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tensor"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	_, snap := loadTiny(t)
	srv, err := NewServer(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func TestPredictBasic(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2, MaxBatch: 4, MaxDelay: time.Millisecond})
	rng := tensor.NewRNG(11)
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		x := rng.NormVec(srv.Snapshot().InputDim(), 0, 1)
		res, err := srv.Predict(ctx, x)
		if err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		if res.Class < 0 || res.Class >= srv.Snapshot().Arch[len(srv.Snapshot().Arch)-1] {
			t.Fatalf("class %d out of range", res.Class)
		}
		if _, ok := srv.Snapshot().ExpertByID(res.Expert); !ok {
			t.Fatalf("served by unknown expert %d", res.Expert)
		}
	}
	m := srv.Metrics().Snapshot()
	if m.Requests != 50 {
		t.Fatalf("requests=%d, want 50", m.Requests)
	}
	if m.Matched+m.Fallbacks != 50 {
		t.Fatalf("matched+fallbacks=%d, want 50", m.Matched+m.Fallbacks)
	}
	if m.P50Seconds <= 0 || m.P99Seconds < m.P50Seconds {
		t.Fatalf("latency quantiles not recorded: p50=%g p99=%g", m.P50Seconds, m.P99Seconds)
	}
}

func TestPredictBadInput(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	if _, err := srv.Predict(context.Background(), tensor.Vector{1, 2}); err == nil {
		t.Fatal("wrong input dim must error")
	}
	if got := srv.Metrics().Snapshot().Errored; got != 1 {
		t.Fatalf("errored=%d, want 1", got)
	}
}

func TestRouteCacheAcrossSwap(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1, CacheSize: 64, MaxDelay: 200 * time.Microsecond})
	ctx := context.Background()
	x := tensor.NewRNG(3).NormVec(srv.Snapshot().InputDim(), 0, 1)

	first, err := srv.Predict(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request cannot be a cache hit")
	}
	second, err := srv.Predict(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeated input must hit the route cache")
	}
	if second.Expert != first.Expert {
		t.Fatalf("cache changed routing: %d vs %d", second.Expert, first.Expert)
	}

	// A hot swap invalidates cached decisions (version mismatch).
	snap, err := LoadSnapshot(tinyCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Swap(snap); err != nil {
		t.Fatal(err)
	}
	third, err := srv.Predict(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("post-swap request must re-route (stale version)")
	}
	if third.Version == first.Version {
		t.Fatal("post-swap version must change")
	}
	fourth, err := srv.Predict(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if !fourth.Cached {
		t.Fatal("re-cached decision must hit again")
	}
}

func TestSwapRejectsArchMismatch(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	cp, _ := loadTiny(t)
	badArch := append([]int(nil), cp.Arch...)
	badArch[1]++
	if err := srv.Swap(&Snapshot{Arch: badArch}); err == nil {
		t.Fatal("arch mismatch must be rejected")
	}
}

// TestHotSwapUnderLoadDropsNothing is the zero-drop contract: concurrent
// clients hammer Predict while the snapshot is hot-swapped repeatedly; every
// single request must complete successfully, each served by a coherent
// snapshot version.
func TestHotSwapUnderLoadDropsNothing(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 4, MaxBatch: 8, MaxDelay: 500 * time.Microsecond, QueueDepth: 1 << 16})
	const (
		clients    = 8
		perClient  = 300
		totalSwaps = 20
	)
	ctx := context.Background()
	var ok, failed atomic.Uint64
	var wg sync.WaitGroup
	stopSwaps := make(chan struct{})
	swapsDone := make(chan error, 1)
	go func() {
		defer close(swapsDone)
		for i := 0; i < totalSwaps; i++ {
			select {
			case <-stopSwaps:
				return
			default:
			}
			snap, err := LoadSnapshot(tinyCheckpoint)
			if err == nil {
				err = srv.Swap(snap)
			}
			if err != nil {
				swapsDone <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := tensor.NewRNG(uint64(100 + c))
			dim := srv.Snapshot().InputDim()
			for i := 0; i < perClient; i++ {
				x := rng.NormVec(dim, 0, 1)
				if _, err := srv.Predict(ctx, x); err != nil {
					t.Errorf("client %d request %d: %v", c, i, err)
					failed.Add(1)
					continue
				}
				ok.Add(1)
			}
		}(c)
	}
	wg.Wait()
	close(stopSwaps)
	if err := <-swapsDone; err != nil {
		t.Fatalf("swap failed: %v", err)
	}

	if got := ok.Load(); got != clients*perClient {
		t.Fatalf("completed %d of %d requests (%d failed) across hot swaps", got, clients*perClient, failed.Load())
	}
	m := srv.Metrics().Snapshot()
	if m.Requests != clients*perClient {
		t.Fatalf("server counted %d requests, want %d", m.Requests, clients*perClient)
	}
	if m.Swaps == 0 {
		t.Fatal("no swap happened during the load window; tighten the test")
	}
	if m.Rejected != 0 || m.Errored != 0 {
		t.Fatalf("rejected=%d errored=%d, want 0/0", m.Rejected, m.Errored)
	}
}

// TestPredictColdMatchesRoute pins the batched cold path: with the route
// cache disabled, every request is routed by a worker (batched encoder
// embedding + per-row signature match) and predicted through the batched
// GEMM forward — the result must be identical to the per-sample
// Route + PredictWS reference, since the GEMM kernels are bit-exact.
func TestPredictColdMatchesRoute(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2, MaxBatch: 8, MaxDelay: 200 * time.Microsecond, CacheSize: -1})
	snap := srv.Snapshot()
	ws := snap.NewWorkspace()
	rng := tensor.NewRNG(23)
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		x := rng.NormVec(snap.InputDim(), 0, 1)
		res, err := srv.Predict(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("disabled cache must never report a hit")
		}
		idx, matched, err := snap.Route(ws, x)
		if err != nil {
			t.Fatal(err)
		}
		if res.Expert != snap.Experts()[idx].ID || res.Matched != matched {
			t.Fatalf("request %d: served expert=%d matched=%v, reference expert=%d matched=%v",
				i, res.Expert, res.Matched, snap.Experts()[idx].ID, matched)
		}
		want, err := snap.Experts()[idx].Model.PredictWS(ws, x)
		if err != nil {
			t.Fatal(err)
		}
		if res.Class != want {
			t.Fatalf("request %d: class %d, per-sample reference %d", i, res.Class, want)
		}
	}
	m := srv.Metrics().Snapshot()
	if m.CacheBypass != 64 || m.CacheHits != 0 || m.CacheMisses != 0 {
		t.Fatalf("bypass=%d hits=%d misses=%d, want 64/0/0", m.CacheBypass, m.CacheHits, m.CacheMisses)
	}
}

// TestBatchingUnderConcurrentLoad pins the adaptive flush: with many
// concurrent closed-loop clients on one worker, the dispatcher must
// coalesce requests instead of flushing every request alone.
func TestBatchingUnderConcurrentLoad(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1, MaxBatch: 32, MaxDelay: 2 * time.Millisecond, CacheSize: -1})
	const clients = 16
	const perClient = 200
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := tensor.NewRNG(uint64(300 + c))
			dim := srv.Snapshot().InputDim()
			for i := 0; i < perClient; i++ {
				if _, err := srv.Predict(ctx, rng.NormVec(dim, 0, 1)); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	m := srv.Metrics().Snapshot()
	if m.Requests != clients*perClient {
		t.Fatalf("requests=%d, want %d", m.Requests, clients*perClient)
	}
	if m.MeanBatch < 2 {
		t.Fatalf("meanBatch=%.2f under %d concurrent clients, want >= 2", m.MeanBatch, clients)
	}
}

func TestObserveBatchSize(t *testing.T) {
	m := NewMetrics()
	for _, n := range []int{1, 1, 2, 5, 32, 200} {
		m.ObserveBatchSize(n)
	}
	bounds, counts, _, _ := m.BatchSizeHistogram()
	if len(counts) != len(bounds)+1 {
		t.Fatalf("%d counts for %d bounds", len(counts), len(bounds))
	}
	// bounds {1,2,4,8,16,32,64,128}: 1→b0 (×2), 2→b1, 5→b3, 32→b5, 200→+Inf.
	want := []uint64{2, 1, 0, 1, 0, 1, 0, 0, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
}

// TestCloseDrains pins the graceful-shutdown contract: Close answers every
// admitted request, and later Predicts fail with ErrClosed.
func TestCloseDrains(t *testing.T) {
	_, snap := loadTiny(t)
	// A long MaxDelay parks admitted requests in dispatcher buckets, so
	// drain-on-close is what flushes them.
	srv, err := NewServer(snap, Config{Workers: 2, MaxBatch: 1 << 20, MaxDelay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	var wg sync.WaitGroup
	var completed atomic.Uint64
	rng := tensor.NewRNG(17)
	inputs := make([]tensor.Vector, n)
	for i := range inputs {
		inputs[i] = rng.NormVec(snap.InputDim(), 0, 1)
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Predict(context.Background(), inputs[i]); err == nil {
				completed.Add(1)
			}
		}(i)
	}
	// Wait until every request is inside the batching pipeline before
	// closing, so the drain path is what answers them.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().admitted.Load() < n {
		if time.Now().After(deadline) {
			t.Fatal("requests never became admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if completed.Load() != n {
		t.Fatalf("close drained %d of %d requests", completed.Load(), n)
	}
	if _, err := srv.Predict(context.Background(), inputs[0]); err != ErrClosed {
		t.Fatalf("post-close Predict: %v, want ErrClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
