package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// LoadConfig tunes the load generator.
type LoadConfig struct {
	// TargetQPS paces requests at this aggregate rate; 0 runs open loop
	// (as fast as the pipeline accepts).
	TargetQPS float64
	// Concurrency is the number of client goroutines (default: 2 per core).
	Concurrency int
	// Repeat is how many passes over the window's request stream to replay
	// (default 1). Later passes exercise the LRU route cache.
	Repeat int
	// MaxDuration stops the run early when positive.
	MaxDuration time.Duration
	// SamplesPerParty / TestPerParty reproduce the scenario shape of the
	// training run (the checkpoint pins seed and windows but not data
	// shape); defaults match cmd/shiftex-aggregator's defaults (120/60).
	SamplesPerParty int
	TestPerParty    int
	// SwapMidLoad hot-swaps a freshly built snapshot of the same
	// checkpoint halfway through the run, exercising the zero-drop swap
	// path under live traffic.
	SwapMidLoad bool
	// ShiftAt, in (0, 1), injects a covariate regime change after that
	// fraction of the run: requests issued beyond the shift point replay
	// ShiftCorruption-transformed inputs. The fraction is measured against
	// MaxDuration when one is set (a deadline, not the request counter,
	// decides where a huge Repeat ends), otherwise against the total
	// request count. Zero disables injection.
	ShiftAt float64
	// ShiftCorruption is the transform injected at the shift point.
	// The identity (zero value) selects frost/5 — fully deterministic per
	// input, so replayed passes of the shifted stream are identical.
	ShiftCorruption dataset.Corruption
	// Tracer, when set, roots one span per generated request, which in
	// turn makes the serving pipeline record its route and batch spans —
	// the traced phase of the tracing-overhead benchmark. Nil generates
	// untraced load.
	Tracer *telemetry.Tracer
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Repeat <= 0 {
		c.Repeat = 1
	}
	if c.SamplesPerParty <= 0 {
		c.SamplesPerParty = 120
	}
	if c.TestPerParty <= 0 {
		c.TestPerParty = 60
	}
	return c
}

// ErrSwapTooLate reports that the workload drained before the mid-load
// swap could fire, so SwapMidLoad could not be honored: the run is too
// short to serve as hot-swap-under-load evidence. Lengthen it (higher
// Repeat or a MaxDuration) instead of trusting the artifact.
var ErrSwapTooLate = errors.New("serve: load finished before the mid-load swap could fire")

// ErrShiftTooLate is the ShiftAt analog of ErrSwapTooLate: the workload
// drained before the injection point, so the run holds no post-shift
// traffic and cannot serve as drift-detection evidence.
var ErrShiftTooLate = errors.New("serve: load finished before the shift could be injected")

// RegimeResult is one covariate regime's serving quality under load.
type RegimeResult struct {
	Regime           string
	Requests         int
	Correct          int
	AssignedKnown    int // requests whose party has a recorded assignment
	RoutedToAssigned int
	Matched          int
}

// LoadResult aggregates one load-generation run.
type LoadResult struct {
	Requests uint64 // completed predictions
	Errors   uint64
	Rejected uint64
	Duration time.Duration
	LatencyP50, LatencyP90,
	LatencyP99, LatencyMax time.Duration
	Correct          uint64 // requests predicted correctly
	RoutedToAssigned uint64 // requests routed to the party's trained expert
	AssignedKnown    uint64 // requests whose party has a recorded assignment
	Regimes          []RegimeResult
	Server           MetricsSnapshot // server-side counters at run end

	// Shift-injection record (ShiftAt runs only). ShiftAtRequest is the
	// claimed-request watermark at the injection instant; ShiftTeedSamples
	// is the monitor's cumulative teed-sample counter at the same instant —
	// the zero point detection latency is measured from.
	ShiftInjected    bool
	ShiftAtRequest   uint64
	ShiftTeedSamples uint64
}

// Throughput returns completed predictions per second.
func (r *LoadResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Duration.Seconds()
}

// Accuracy returns the fraction of completed predictions that were correct.
func (r *LoadResult) Accuracy() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Requests)
}

// RoutingAccuracy returns the fraction of assignment-known requests routed
// to the expert the training run assigned to the originating party.
func (r *LoadResult) RoutingAccuracy() float64 {
	if r.AssignedKnown == 0 {
		return 0
	}
	return float64(r.RoutedToAssigned) / float64(r.AssignedKnown)
}

// WorkItem is one replayable request with its scoring ground truth. The
// serve loadgen replays items in-process; the gateway loadgen replays the
// same items over HTTP against a replica fleet.
type WorkItem struct {
	X        tensor.Vector
	Y        int
	Party    int
	Assigned int // expert ID the training run assigned to Party; -1 unknown
	Regime   string
}

// Workload regenerates the checkpoint run's scenario and extracts the
// adapted window's test stream — the mixture of clean and injected-shift
// regimes the snapshot's experts were trained for. Items interleave across
// parties so consecutive requests hit different experts, the worst case for
// the per-expert batcher (and, at the gateway, the worst case for
// consistent-hash locality).
func Workload(cp *service.Checkpoint, cfg LoadConfig) ([]WorkItem, error) {
	cfg = cfg.withDefaults()
	parties := len(cp.Aggregator.Assignment)
	if parties == 0 {
		return nil, errors.New("serve: checkpoint has no party assignments")
	}
	spec := service.ScenarioSpec(parties, cfg.SamplesPerParty, cfg.TestPerParty, cp.NumWindows)
	sc, err := dataset.BuildScenario(spec, dataset.DefaultShiftConfig(), cp.Seed)
	if err != nil {
		return nil, fmt.Errorf("serve: regenerate scenario: %w", err)
	}
	widx := cp.WindowsDone - 1
	if widx >= len(sc.Windows) {
		widx = len(sc.Windows) - 1
	}
	row := sc.Windows[widx]

	var items []WorkItem
	for i := 0; i < cfg.TestPerParty; i++ {
		for p, pw := range row {
			if i >= len(pw.Test) {
				continue
			}
			assigned := -1
			if id, ok := cp.Aggregator.Assignment[p]; ok {
				assigned = id
			}
			items = append(items, WorkItem{
				X:        pw.Test[i].X,
				Y:        pw.Test[i].Y,
				Party:    p,
				Assigned: assigned,
				Regime:   pw.Regime.Corruption.String(),
			})
		}
	}
	if len(items) == 0 {
		return nil, errors.New("serve: scenario window has no test examples")
	}
	return items, nil
}

// RunLoad replays the checkpoint's scenario stream against srv at the
// configured rate and returns the aggregate result. srv must be serving a
// snapshot built from cp (the workload and routing ground truth are
// regenerated from the checkpoint's seed and assignment).
func RunLoad(ctx context.Context, srv *Server, cp *service.Checkpoint, cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	items, err := Workload(cp, cfg)
	if err != nil {
		return nil, err
	}
	total := int64(len(items)) * int64(cfg.Repeat)

	// Pre-transform the shifted replica of the stream so the injection is a
	// flag flip, not per-request work: after the shift point workers index
	// the shifted slice instead of the clean one.
	var shifted []WorkItem
	if cfg.ShiftAt > 0 {
		if cfg.ShiftAt >= 1 {
			return nil, fmt.Errorf("serve: -shift-at must be in (0,1), got %g", cfg.ShiftAt)
		}
		corr := cfg.ShiftCorruption
		if corr.IsIdentity() {
			corr = dataset.Corruption{Kind: dataset.CorruptFrost, Severity: 5}
		}
		srng := tensor.NewRNG(cp.Seed ^ 0xd21f7)
		regime := "shifted:" + corr.String()
		shifted = make([]WorkItem, len(items))
		for i, it := range items {
			it.X = corr.Apply(it.X, srng)
			it.Regime = regime
			shifted[i] = it
		}
	}

	type tally struct {
		requests, correct, known, routed, matched int
	}
	var (
		next      atomic.Int64
		requests  atomic.Uint64
		errorsN   atomic.Uint64
		rejected  atomic.Uint64
		correct   atomic.Uint64
		routedOK  atomic.Uint64
		known     atomic.Uint64
		wg        sync.WaitGroup
		mu        sync.Mutex
		regimes   = map[string]*tally{}
		latencies = make([][]time.Duration, cfg.Concurrency)
	)
	start := time.Now()
	deadline := time.Time{}
	if cfg.MaxDuration > 0 {
		deadline = start.Add(cfg.MaxDuration)
	}
	interval := time.Duration(0)
	if cfg.TargetQPS > 0 {
		interval = time.Duration(float64(time.Second) / cfg.TargetQPS)
	}

	// Optional mid-load hot swap, triggered off the shared work counter so
	// it genuinely lands while clients are issuing requests: the snapshot
	// is pre-built, then swapped the moment half the stream has been
	// claimed (or half the time budget has elapsed, whichever comes
	// first — the counter alone never crosses half when a deadline cuts a
	// huge Repeat short).
	swapDone := make(chan error, 1)
	if cfg.SwapMidLoad {
		go func() {
			snap, err := SnapshotFromCheckpoint(cp)
			if err != nil {
				swapDone <- err
				return
			}
			halfTime := time.Time{}
			if cfg.MaxDuration > 0 {
				halfTime = start.Add(cfg.MaxDuration / 2)
			}
			for next.Load() < total/2 && (halfTime.IsZero() || time.Now().Before(halfTime)) {
				if ctx.Err() != nil {
					swapDone <- nil
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
			if ctx.Err() == nil && next.Load() >= total {
				// Every request has already been claimed: swapping now
				// would land on an idle server, and the artifact would
				// falsely present it as zero-drop-under-load evidence.
				swapDone <- ErrSwapTooLate
				return
			}
			swapDone <- srv.Swap(snap)
		}()
	}

	// Shift watcher: flips the regime the moment the injection point passes
	// and records the watermarks detection latency is measured against. The
	// flip is a single atomic the request loop reads — injection costs the
	// hot path nothing until it fires, and one load afterwards.
	var (
		shiftOn      atomic.Bool
		shiftClaimed uint64
		shiftTeed    uint64
	)
	shiftDone := make(chan struct{})
	if shifted != nil {
		go func() {
			defer close(shiftDone)
			if cfg.MaxDuration > 0 {
				at := start.Add(time.Duration(cfg.ShiftAt * float64(cfg.MaxDuration)))
				for time.Now().Before(at) {
					if ctx.Err() != nil || next.Load() >= total {
						return
					}
					time.Sleep(200 * time.Microsecond)
				}
			} else {
				at := int64(cfg.ShiftAt * float64(total))
				for next.Load() < at {
					if ctx.Err() != nil {
						return
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
			if next.Load() >= total {
				return // drained before the injection point: too late
			}
			shiftClaimed = uint64(next.Load())
			if mon := srv.cfg.Monitor; mon != nil {
				shiftTeed = mon.Teed()
			}
			shiftOn.Store(true)
		}()
	} else {
		close(shiftDone)
	}

	// Requests are issued with an uncancellable context: the client loop
	// checks ctx between iterations, so cancellation still lands within one
	// request (microseconds), and predictAt's result wait can take the
	// plain channel receive instead of selectgo — measurably cheaper at
	// batched-pipeline throughput.
	reqCtx := context.Background()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := map[string]*tally{}
			var lats []time.Duration
			// root is reused across iterations: End copies the record
			// into the tracer's ring, so the traced path allocates
			// nothing per request.
			var root telemetry.Span
			// The deadline is checked against the previous iteration's
			// completion instant (t0 + lat) instead of a fresh clock
			// read: at batched-pipeline throughput an extra time.Now
			// per request is a measurable tax, and the deadline only
			// needs request-granularity precision anyway.
			var now time.Time
			for {
				i := next.Add(1) - 1
				if i >= total {
					break
				}
				if ctx.Err() != nil {
					break
				}
				if !deadline.IsZero() && !now.IsZero() && now.After(deadline) {
					break
				}
				if interval > 0 {
					sched := start.Add(time.Duration(i) * interval)
					if d := time.Until(sched); d > 0 {
						time.Sleep(d)
					}
				}
				item := items[i%int64(len(items))]
				if shifted != nil && shiftOn.Load() {
					item = shifted[i%int64(len(items))]
				}
				t0 := time.Now()
				// The root span rides the timestamps the load generator
				// takes anyway (t0 and the latency measurement), so the
				// traced phase adds no clock reads here; PredictSpan
				// takes the parent explicitly to skip a per-request
				// context allocation.
				cfg.Tracer.BeginAt(&root, "loadgen.predict", telemetry.SpanContext{}, t0)
				res, err := srv.predictAt(reqCtx, item.X, &root, t0)
				lat := time.Since(t0)
				now = t0.Add(lat)
				if cfg.Tracer != nil {
					root.SetError(err)
					root.EndAt(t0.Add(lat))
				}
				switch {
				case errors.Is(err, ErrOverloaded):
					rejected.Add(1)
					continue
				case err != nil:
					errorsN.Add(1)
					continue
				}
				lats = append(lats, lat)
				requests.Add(1)
				tl := local[item.Regime]
				if tl == nil {
					tl = &tally{}
					local[item.Regime] = tl
				}
				tl.requests++
				if res.Class == item.Y {
					correct.Add(1)
					tl.correct++
				}
				if res.Matched {
					tl.matched++
				}
				if item.Assigned >= 0 {
					known.Add(1)
					tl.known++
					if res.Expert == item.Assigned {
						routedOK.Add(1)
						tl.routed++
					}
				}
			}
			mu.Lock()
			for k, v := range local {
				g := regimes[k]
				if g == nil {
					g = &tally{}
					regimes[k] = g
				}
				g.requests += v.requests
				g.correct += v.correct
				g.known += v.known
				g.routed += v.routed
				g.matched += v.matched
			}
			latencies[w] = lats
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	// Duration is the load window itself; waiting out the swap goroutine
	// below must not count, or throughput would read deflated.
	elapsed := time.Since(start)
	if cfg.SwapMidLoad {
		if err := <-swapDone; err != nil {
			return nil, fmt.Errorf("serve: mid-load swap: %w", err)
		}
	}
	<-shiftDone
	if shifted != nil && !shiftOn.Load() {
		if ctx.Err() == nil {
			return nil, ErrShiftTooLate
		}
	}

	out := &LoadResult{
		Requests:         requests.Load(),
		Errors:           errorsN.Load(),
		Rejected:         rejected.Load(),
		Duration:         elapsed,
		Correct:          correct.Load(),
		RoutedToAssigned: routedOK.Load(),
		AssignedKnown:    known.Load(),
		Server:           srv.Metrics().Snapshot(),
		ShiftInjected:    shiftOn.Load(),
		ShiftAtRequest:   shiftClaimed,
		ShiftTeedSamples: shiftTeed,
	}
	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(all)))
			if i >= len(all) {
				i = len(all) - 1
			}
			return all[i]
		}
		out.LatencyP50, out.LatencyP90, out.LatencyP99 = q(0.50), q(0.90), q(0.99)
		out.LatencyMax = all[len(all)-1]
	}
	names := make([]string, 0, len(regimes))
	for k := range regimes {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		t := regimes[k]
		out.Regimes = append(out.Regimes, RegimeResult{
			Regime: k, Requests: t.requests, Correct: t.correct,
			AssignedKnown: t.known, RoutedToAssigned: t.routed, Matched: t.matched,
		})
	}
	return out, nil
}

// Artifact converts a load result into the versioned BENCH_serving.json
// form, recording the protocol that produced it. A run with the route
// cache disabled (CacheSize < 0) is a cold-traffic run and takes the
// "serving-cold" name — it lands in BENCH_serving-cold.json and carries
// the coldTraffic option flag, so the honest no-cache number can never be
// mistaken for the warm one.
func (r *LoadResult) Artifact(cp *service.Checkpoint, cfg LoadConfig, srvCfg Config) *experiments.ServingArtifact {
	cfg = cfg.withDefaults()
	srvCfg = srvCfg.withDefaults()
	cold := srvCfg.CacheSize < 0
	name := experiments.ServingArtifactName
	if cold {
		name = experiments.ServingColdArtifactName
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	a := &experiments.ServingArtifact{
		Schema: experiments.ServingSchemaVersion,
		Name:   name,
		Options: experiments.ServingOptions{
			CheckpointWindows: cp.WindowsDone,
			Parties:           len(cp.Aggregator.Assignment),
			SamplesPerParty:   cfg.SamplesPerParty,
			TestPerParty:      cfg.TestPerParty,
			Seed:              cp.Seed,
			TargetQPS:         cfg.TargetQPS,
			Concurrency:       cfg.Concurrency,
			Repeat:            cfg.Repeat,
			Workers:           srvCfg.Workers,
			MaxBatch:          srvCfg.MaxBatch,
			MaxDelayMs:        ms(srvCfg.MaxDelay),
			CacheSize:         srvCfg.CacheSize,
			RouteEpsilonScale: srvCfg.RouteEpsilonScale,
			SwapMidLoad:       cfg.SwapMidLoad,
			ColdTraffic:       cold,
		},
		Requests:         r.Requests,
		Errors:           r.Errors,
		Rejected:         r.Rejected,
		DurationMs:       ms(r.Duration),
		ThroughputPerSec: r.Throughput(),
		LatencyMsP50:     ms(r.LatencyP50),
		LatencyMsP90:     ms(r.LatencyP90),
		LatencyMsP99:     ms(r.LatencyP99),
		LatencyMsMax:     ms(r.LatencyMax),
		Accuracy:         r.Accuracy(),
		RoutedToAssigned: r.RoutingAccuracy(),
		Swaps:            r.Server.Swaps,
		MeanBatch:        r.Server.MeanBatch,
	}
	if hits, misses := r.Server.CacheHits, r.Server.CacheMisses; hits+misses > 0 {
		a.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	for _, g := range r.Regimes {
		reg := experiments.ServingRegime{Regime: g.Regime, Requests: g.Requests}
		if g.Requests > 0 {
			reg.Accuracy = float64(g.Correct) / float64(g.Requests)
			reg.MatchedFraction = float64(g.Matched) / float64(g.Requests)
		}
		// Same denominator as the aggregate RoutingAccuracy: only the
		// requests whose party has a recorded assignment.
		if g.AssignedKnown > 0 {
			reg.RoutedToAssigned = float64(g.RoutedToAssigned) / float64(g.AssignedKnown)
		}
		a.Regimes = append(a.Regimes, reg)
	}
	return a
}
