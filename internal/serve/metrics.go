package serve

import (
	"sort"
	"sync/atomic"
	"time"
)

// latency histogram: exponential buckets from 1µs doubling up to ~4s, plus
// an overflow bucket. Bucket i covers (2^(i-1)µs, 2^i µs]; bucket 0 covers
// everything up to 1µs.
const (
	histBuckets   = 23
	histBaseMicro = 1
)

// Metrics is the serving tier's observability state. All fields are atomic
// so the request hot path never takes a lock.
type Metrics struct {
	start time.Time

	requests    atomic.Uint64 // completed successfully
	admitted    atomic.Uint64 // accepted into the batching pipeline
	errored     atomic.Uint64 // failed (bad input, closed server)
	rejected    atomic.Uint64 // refused at admission (queue full)
	inflight    atomic.Int64
	matched     atomic.Uint64 // routed via latent-memory match
	fallbacks   atomic.Uint64 // routed to the global fallback
	cacheHits   atomic.Uint64
	cacheMiss   atomic.Uint64
	cacheBypass atomic.Uint64 // cache disabled: request went straight to batched routing
	swaps       atomic.Uint64
	batches     atomic.Uint64 // drained batches
	batched     atomic.Uint64 // requests across all drained batches

	hist      [histBuckets]atomic.Uint64
	batchHist [len(batchSizeBounds) + 1]atomic.Uint64

	// slow is the slowest traced request seen so far — the exemplar the
	// latency quantiles point at on /v1/metrics.
	slow atomic.Pointer[slowTrace]

	// experts is the per-expert routed-request counter set, keyed by
	// training-time expert ID. The map itself is immutable once published
	// (lock-free reads on the hot path); a hot swap installs a fresh map
	// that shares the counter cells of retained IDs, so in-flight requests
	// finishing on the old snapshot still land in the right counter.
	experts atomic.Pointer[expertCounters]
}

// expertCounters is one immutable per-expert counter generation.
type expertCounters struct {
	ids  []int // sorted, for stable exposition order
	byID map[int]*atomic.Uint64
}

// slowTrace ties a latency observation to the trace that produced it.
type slowTrace struct {
	durUs   int64
	traceID string
}

// batchSizeBounds are the upper bounds of the batch-size histogram buckets
// (a final +Inf bucket catches anything beyond MaxBatch=128 configs). The
// distribution is the pipeline's honesty meter: a serving run whose mass
// sits in the le=1 bucket is not batching, whatever its throughput says.
var batchSizeBounds = [...]uint64{1, 2, 4, 8, 16, 32, 64, 128}

// NewMetrics returns zeroed metrics with the clock started.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// InstallExperts publishes the counter set for a (new) snapshot's expert
// IDs. Counters for IDs already tracked are carried over — a hot swap must
// not zero an expert's request history, and requests still draining on the
// old snapshot keep counting into the shared cells.
func (m *Metrics) InstallExperts(ids []int) {
	next := &expertCounters{byID: make(map[int]*atomic.Uint64, len(ids))}
	prev := m.experts.Load()
	for _, id := range ids {
		if next.byID[id] != nil {
			continue
		}
		if prev != nil {
			if c := prev.byID[id]; c != nil {
				next.byID[id] = c
				next.ids = append(next.ids, id)
				continue
			}
		}
		next.byID[id] = &atomic.Uint64{}
		next.ids = append(next.ids, id)
	}
	sort.Ints(next.ids)
	m.experts.Store(next)
}

// CountExpert increments the routed-request counter for one expert ID.
// Lock-free and allocation-free: the published map is never mutated.
func (m *Metrics) CountExpert(id int) {
	if cs := m.experts.Load(); cs != nil {
		if c := cs.byID[id]; c != nil {
			c.Add(1)
		}
	}
}

// ExpertRequests returns the tracked expert IDs (ascending) and their
// routed-request counts.
func (m *Metrics) ExpertRequests() ([]int, []uint64) {
	cs := m.experts.Load()
	if cs == nil {
		return nil, nil
	}
	counts := make([]uint64, len(cs.ids))
	for i, id := range cs.ids {
		counts[i] = cs.byID[id].Load()
	}
	return cs.ids, counts
}

// ObserveBatchSize records one drained batch's request count in the
// batch-size histogram.
func (m *Metrics) ObserveBatchSize(n int) {
	b := len(batchSizeBounds) // +Inf bucket
	for i, bound := range batchSizeBounds {
		if uint64(n) <= bound {
			b = i
			break
		}
	}
	m.batchHist[b].Add(1)
}

// BatchSizeHistogram returns the per-bucket counts (parallel to
// batchSizeBounds, with a trailing +Inf bucket) plus the sum of observed
// batch sizes and the observation count, in Prometheus histogram terms.
func (m *Metrics) BatchSizeHistogram() (bounds []uint64, counts []uint64, sum, count uint64) {
	bounds = batchSizeBounds[:]
	counts = make([]uint64, len(m.batchHist))
	for i := range m.batchHist {
		counts[i] = m.batchHist[i].Load()
	}
	return bounds, counts, m.batched.Load(), m.batches.Load()
}

// ObserveLatency records one completed request's end-to-end latency.
func (m *Metrics) ObserveLatency(d time.Duration) {
	us := d.Microseconds()
	b := 0
	for limit := int64(histBaseMicro); us > limit && b < histBuckets-1; limit *= 2 {
		b++
	}
	m.hist[b].Add(1)
}

// Quantile returns the latency quantile q in seconds, estimated as the
// upper bound of the histogram bucket containing it (conservative: the
// true quantile is at most the reported value). Zero when nothing has been
// recorded.
func (m *Metrics) Quantile(q float64) float64 {
	var counts [histBuckets]uint64
	var total uint64
	for i := range m.hist {
		counts[i] = m.hist[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum > target {
			return bucketUpperSeconds(i)
		}
	}
	return bucketUpperSeconds(histBuckets - 1)
}

func bucketUpperSeconds(i int) float64 {
	return float64(int64(histBaseMicro)<<uint(i)) / 1e6
}

// NoteSlowest records a traced request as the slowest-so-far exemplar if
// it exceeds the current one. Lock-free: losers of the CAS retry, so
// the final value is the true maximum.
func (m *Metrics) NoteSlowest(d time.Duration, traceID string) {
	us := d.Microseconds()
	for {
		cur := m.slow.Load()
		if cur != nil && cur.durUs >= us {
			return
		}
		if m.slow.CompareAndSwap(cur, &slowTrace{durUs: us, traceID: traceID}) {
			return
		}
	}
}

// Slowest returns the slowest traced request and its trace ID, or zero
// when no traced request has completed.
func (m *Metrics) Slowest() (time.Duration, string) {
	cur := m.slow.Load()
	if cur == nil {
		return 0, ""
	}
	return time.Duration(cur.durUs) * time.Microsecond, cur.traceID
}

// MetricsSnapshot is a point-in-time copy for rendering.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Requests      uint64  `json:"requests"`
	Admitted      uint64  `json:"admitted"`
	Errored       uint64  `json:"errored"`
	Rejected      uint64  `json:"rejected"`
	Inflight      int64   `json:"inflight"`
	Matched       uint64  `json:"matched"`
	Fallbacks     uint64  `json:"fallbacks"`
	CacheHits     uint64  `json:"cacheHits"`
	CacheMisses   uint64  `json:"cacheMisses"`
	CacheBypass   uint64  `json:"cacheBypass,omitempty"`
	Swaps         uint64  `json:"swaps"`
	Batches       uint64  `json:"batches"`
	MeanBatch     float64 `json:"meanBatch"`
	P50Seconds    float64 `json:"p50Seconds"`
	P90Seconds    float64 `json:"p90Seconds"`
	P99Seconds    float64 `json:"p99Seconds"`
}

// Snapshot copies the current counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      m.requests.Load(),
		Admitted:      m.admitted.Load(),
		Errored:       m.errored.Load(),
		Rejected:      m.rejected.Load(),
		Inflight:      m.inflight.Load(),
		Matched:       m.matched.Load(),
		Fallbacks:     m.fallbacks.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMiss.Load(),
		CacheBypass:   m.cacheBypass.Load(),
		Swaps:         m.swaps.Load(),
		Batches:       m.batches.Load(),
		P50Seconds:    m.Quantile(0.50),
		P90Seconds:    m.Quantile(0.90),
		P99Seconds:    m.Quantile(0.99),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(m.batched.Load()) / float64(s.Batches)
	}
	return s
}
