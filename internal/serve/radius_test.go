package serve

import (
	"testing"

	"repro/internal/shiftex"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// radiusFixture builds a snapshot from the tiny checkpoint with two experts'
// memories pinned to known positions so matching geometry is exact: expert
// "near" at the origin, expert "wide" at (10, 0, ..., 0).
func radiusFixture(t *testing.T) (*Snapshot, int, int, tensor.Vector, tensor.Vector) {
	t.Helper()
	cp, _ := loadTiny(t)
	st := cp.Aggregator
	st.Experts = append([]shiftex.ExpertState(nil), st.Experts...)
	if len(st.Experts) < 2 {
		t.Fatal("fixture needs at least two experts")
	}
	dim := len(st.Experts[0].Memory)
	nearMem := make(tensor.Vector, dim)
	wideMem := make(tensor.Vector, dim)
	wideMem[0] = 10
	st.Experts[0].Memory = nearMem
	st.Experts[1].Memory = wideMem
	for i := 2; i < len(st.Experts); i++ {
		far := make(tensor.Vector, dim)
		far[0] = -1000 // out of every test's way
		st.Experts[i].Memory = far
	}
	snap, err := NewSnapshot(cp.Arch, st)
	if err != nil {
		t.Fatal(err)
	}
	return snap, st.Experts[0].ID, st.Experts[1].ID, nearMem, wideMem
}

func TestSetExpertRadiusWidensAcceptance(t *testing.T) {
	snap, nearID, wideID, _, wideMem := radiusFixture(t)

	// A probe at squared distance 4 from the wide expert, far from the near
	// one: under eps=1 nothing matches.
	probe := wideMem.Clone()
	probe[0] += 2
	if id, _, ok := snap.MatchEmbedding(probe, 1); ok {
		t.Fatalf("matched expert %d under eps=1 without a radius", id)
	}

	if snap.SetExpertRadius(wideID, -1) {
		t.Fatal("non-positive radius accepted")
	}
	if snap.SetExpertRadius(99999, 5) {
		t.Fatal("unknown expert accepted")
	}
	if !snap.SetExpertRadius(wideID, 5) {
		t.Fatal("radius rejected for a known expert")
	}
	if got := snap.ExpertRadius(wideID); got != 5 {
		t.Fatalf("ExpertRadius %g, want 5", got)
	}
	if got := snap.ExpertRadius(nearID); got != 0 {
		t.Fatalf("near expert grew a radius: %g", got)
	}

	id, dist, ok := snap.MatchEmbedding(probe, 1)
	if !ok || id != wideID {
		t.Fatalf("radius override did not admit: id=%d ok=%v", id, ok)
	}
	if d := stats.MeanEmbeddingMMD(probe, wideMem); dist != d {
		t.Fatalf("matched dist %g, want the matched expert's %g", dist, d)
	}
}

// TestRadiusAdmissibilityBeatsNearestWins pins the semantics change that
// per-expert radii force: the globally nearest memory failing its own
// acceptance threshold must not shadow a farther expert whose calibrated
// radius admits the request. Nearest-then-threshold (the pre-radius
// algorithm) would send this probe to the fallback.
func TestRadiusAdmissibilityBeatsNearestWins(t *testing.T) {
	snap, _, wideID, nearMem, _ := radiusFixture(t)
	if !snap.SetExpertRadius(wideID, 50) {
		t.Fatal("radius rejected")
	}

	// Probe at squared distance 9 from near (inadmissible under eps=1) and
	// 49 from wide (admissible under its radius 50).
	probe := nearMem.Clone()
	probe[0] += 3
	id, _, ok := snap.MatchEmbedding(probe, 1)
	if !ok || id != wideID {
		t.Fatalf("admissible wide-radius expert lost to inadmissible nearest: id=%d ok=%v", id, ok)
	}
}

func TestRadiusFallbackKeepsNearestDistance(t *testing.T) {
	snap, _, _, nearMem, _ := radiusFixture(t)
	probe := nearMem.Clone()
	probe[0] += 3 // squared distance 9 from the nearest memory
	_, dist, ok := snap.MatchEmbedding(probe, 1)
	if ok {
		t.Fatal("probe outside every radius matched")
	}
	if dist != 9 {
		t.Fatalf("fallback dist %g, want nearest-overall 9 (monitor margin semantics)", dist)
	}
}
