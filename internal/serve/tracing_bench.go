package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// DefaultTracingTrials is the number of interleaved baseline/traced
// trial pairs RunTracingBench runs when the caller does not choose.
const DefaultTracingTrials = 5

// RunTracingBench measures the request-path cost of tracing: the same
// in-process workload is replayed against a fresh server as trials
// interleaved pairs — an untraced baseline trial, then a traced trial
// where every request roots a span and the pipeline records route and
// batch spans into a ring of ringSize — preceded by one untraced
// warmup (discarded; it absorbs scheduler and frequency ramp-up so
// the baseline is not unfairly slow). Each side reports its best
// trial: ambient interference (other tenants, GC of unrelated heaps)
// only ever slows a trial down, so the per-side maximum is the
// cleanest estimate of each configuration's capability, and
// interleaving keeps slow drift from landing on one side. The
// returned artifact carries both throughputs and the overhead
// percentage the -check gate enforces.
func RunTracingBench(ctx context.Context, cp *service.Checkpoint, cfg LoadConfig, srvCfg Config, ringSize, trials int) (*experiments.TracingArtifact, error) {
	cfg = cfg.withDefaults()
	cfg.SwapMidLoad = false
	srvCfg = srvCfg.withDefaults()
	if ringSize <= 0 {
		ringSize = telemetry.DefaultRingSize
	}
	if trials <= 0 {
		trials = DefaultTracingTrials
	}

	phase := func(tr *telemetry.Tracer) (*LoadResult, error) {
		snap, err := SnapshotFromCheckpoint(cp)
		if err != nil {
			return nil, err
		}
		pcfg := srvCfg
		pcfg.Tracer = tr
		srv, err := NewServer(snap, pcfg)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		lcfg := cfg
		lcfg.Tracer = tr
		return RunLoad(ctx, srv, cp, lcfg)
	}

	if _, err := phase(nil); err != nil {
		return nil, fmt.Errorf("serve: tracing bench warmup: %w", err)
	}
	var base, traced *LoadResult
	var spans uint64
	for i := 0; i < trials; i++ {
		b, err := phase(nil)
		if err != nil {
			return nil, fmt.Errorf("serve: tracing bench baseline trial %d: %w", i+1, err)
		}
		tracer := telemetry.NewTracer("serve", ringSize)
		t, err := phase(tracer)
		if err != nil {
			return nil, fmt.Errorf("serve: tracing bench traced trial %d: %w", i+1, err)
		}
		if base == nil || b.Throughput() > base.Throughput() {
			base = b
		}
		if traced == nil || t.Throughput() > traced.Throughput() {
			traced = t
			spans = tracer.SpanCount()
		}
	}

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	a := &experiments.TracingArtifact{
		Schema: experiments.TracingSchemaVersion,
		Name:   experiments.TracingArtifactName,
		Options: experiments.TracingOptions{
			CheckpointWindows: cp.WindowsDone,
			Arch:              cp.Arch,
			Parties:           len(cp.Aggregator.Assignment),
			SamplesPerParty:   cfg.SamplesPerParty,
			TestPerParty:      cfg.TestPerParty,
			Seed:              cp.Seed,
			Concurrency:       cfg.Concurrency,
			Repeat:            cfg.Repeat,
			Workers:           srvCfg.Workers,
			MaxBatch:          srvCfg.MaxBatch,
			MaxDelayMs:        ms(srvCfg.MaxDelay),
			CacheSize:         srvCfg.CacheSize,
			RingSize:          ringSize,
			Trials:            trials,
		},
		BaselineRequests:         base.Requests,
		BaselineDurationMs:       ms(base.Duration),
		BaselineThroughputPerSec: base.Throughput(),
		BaselineLatencyMsP99:     ms(base.LatencyP99),
		TracedRequests:           traced.Requests,
		TracedDurationMs:         ms(traced.Duration),
		TracedThroughputPerSec:   traced.Throughput(),
		TracedLatencyMsP99:       ms(traced.LatencyP99),
		SpansRecorded:            spans,
	}
	if a.BaselineThroughputPerSec > 0 {
		a.OverheadPercent = (1 - a.TracedThroughputPerSec/a.BaselineThroughputPerSec) * 100
	}
	return a, nil
}
