package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpapi"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Config tunes the serving pipeline. Zero values select the defaults.
type Config struct {
	// Workers is the number of prediction workers (default: one per core).
	Workers int
	// MaxBatch flushes an expert's queue when it reaches this many requests
	// (default 32).
	MaxBatch int
	// MaxDelay flushes an expert's queue when its oldest request has waited
	// this long (default 2ms) — the latency cost of batching is bounded by
	// MaxDelay plus one flush tick.
	MaxDelay time.Duration
	// QueueDepth bounds the admission queue; admission beyond it fails
	// fast with ErrOverloaded (default 4096). Requests already handed to
	// the dispatcher's buckets and the worker pool (up to roughly
	// 2×Workers×MaxBatch more) are not counted against it.
	QueueDepth int
	// CacheSize bounds the LRU route cache (default 4096; negative
	// disables caching).
	CacheSize int
	// RouteEpsilonScale inflates the snapshot's reuse threshold ε for
	// routing (default 4). Training calibrates ε on window-mean
	// embeddings; a single request's embedding is a sample of that mean
	// and sits farther from the expert memories, so serving needs a wider
	// acceptance radius before the latent-memory match fires. Negative
	// uses ε unscaled. The effective radius (ε × scale) is visible on
	// GET /v1/snapshot (routeEpsilon) and in /metrics.
	RouteEpsilonScale float64
	// Model is the model name this replica serves under (default
	// httpapi.DefaultModel). Requests addressed to another model are
	// answered 404, and the gateway registers the replica under this name.
	Model string
	// Tracer records request spans (routing decision, batch queue wait)
	// and backs GET /v1/debug/traces. Nil disables tracing; the request
	// path then pays one nil check per span site.
	Tracer *telemetry.Tracer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	switch {
	case c.RouteEpsilonScale == 0:
		c.RouteEpsilonScale = 4
	case c.RouteEpsilonScale < 0:
		c.RouteEpsilonScale = 1
	}
	if c.Model == "" {
		c.Model = httpapi.DefaultModel
	}
	return c
}

// Result is one served prediction.
type Result struct {
	// Class is the predicted label.
	Class int
	// Expert is the training-time ID of the expert that served the request.
	Expert int
	// Matched reports a latent-memory match; false means the global
	// fallback served the request.
	Matched bool
	// Cached reports that routing came from the LRU cache (no encoder pass).
	Cached bool
	// Version is the snapshot version that served the request.
	Version int
}

var (
	// ErrClosed is returned by Predict after Close has begun.
	ErrClosed = errors.New("serve: server is shut down")
	// ErrOverloaded is returned when the admission queue is full.
	ErrOverloaded = errors.New("serve: admission queue full")
)

// outcome is what a worker reports back to the waiting Predict call.
type outcome struct {
	class int
	err   error
	// total is the worker-measured latency since pending.start (zero on
	// errors); traced requests reuse it to close their batch span
	// without another clock read.
	total time.Duration
	// batchSize and queueWait describe the batch that executed the
	// request; they are only populated for traced requests (enq set).
	batchSize int
	queueWait time.Duration
}

// pending is one admitted request travelling through the pipeline.
type pending struct {
	x       tensor.Vector
	snap    *Snapshot
	expert  int // index into snap.Experts()
	matched bool
	cached  bool
	start   time.Time
	enq     time.Time    // enqueue instant; zero unless the request is traced
	done    chan outcome // buffered(1); the worker's send never blocks
}

// bucketKey identifies a per-expert queue. Snapshots are part of the key so
// a hot swap simply starts new buckets: requests admitted against the old
// snapshot drain from its buckets onto its (still immutable) models, which
// is why a swap can never drop or corrupt an in-flight request.
type bucketKey struct {
	snap   *Snapshot
	expert int
}

// bucket accumulates one expert's queued requests until a flush.
type bucket struct {
	reqs   []*pending
	oldest time.Time
}

// batchMsg is one flushed batch handed to the worker pool.
type batchMsg struct {
	snap   *Snapshot
	expert int
	reqs   []*pending
}

// Server is the shift-aware inference server: an atomically swappable
// ModelSnapshot behind a routing stage and a micro-batching worker pool.
// All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *routeCache

	snap atomic.Pointer[Snapshot]
	// swapMu serializes Swap's stamp-then-store sequence so concurrent
	// swaps cannot publish versions out of order; readers never take it.
	swapMu sync.Mutex
	swaps  atomic.Int64 // snapshot version counter

	// wsPool recycles one nn.Workspace per concurrent user (router calls
	// and prediction workers); each Get/Put span owns the workspace
	// exclusively, honoring the one-goroutine-per-workspace rule.
	wsPool sync.Pool

	admit chan *pending
	// closeMu serializes admission against Close: Predict sends under
	// RLock after checking closed, so close(admit) can never race a send.
	closeMu sync.RWMutex
	closed  bool

	batches chan batchMsg
	workers sync.WaitGroup
	drained chan struct{} // closed once every worker has exited
}

// NewServer starts a serving pipeline over the given snapshot. The
// snapshot's Version is stamped from the server's swap counter. Call Close
// to drain and stop.
func NewServer(snap *Snapshot, cfg Config) (*Server, error) {
	if snap == nil {
		return nil, errors.New("serve: nil snapshot")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: NewMetrics(),
		cache:   newRouteCache(cfg.CacheSize),
		admit:   make(chan *pending, cfg.QueueDepth),
		batches: make(chan batchMsg, 2*cfg.Workers),
		drained: make(chan struct{}),
	}
	snap.Version = int(s.swaps.Add(1))
	snap.routeEps = snap.Epsilon * cfg.RouteEpsilonScale
	s.snap.Store(snap)
	arch := snap.Arch
	s.wsPool.New = func() any { return nn.NewWorkspaceDims(arch) }

	go s.dispatch()
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	go func() {
		s.workers.Wait()
		close(s.drained)
	}()
	return s, nil
}

// Snapshot returns the currently serving snapshot.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Metrics exposes the serving counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Swap atomically replaces the serving snapshot. The new snapshot must
// share the running architecture (the workspace pool and route cache are
// arch-shaped); in-flight requests finish on the snapshot they were routed
// against, so no request is ever dropped by a swap.
func (s *Server) Swap(next *Snapshot) error {
	if next == nil {
		return errors.New("serve: nil snapshot")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.snap.Load()
	if next == cur {
		// Re-stamping the published snapshot would race its readers.
		return errors.New("serve: cannot swap in the currently serving snapshot; build a fresh one")
	}
	if !sameArch(cur.Arch, next.Arch) {
		return fmt.Errorf("serve: snapshot arch %v does not match serving arch %v", next.Arch, cur.Arch)
	}
	next.Version = int(s.swaps.Add(1))
	next.routeEps = next.Epsilon * s.cfg.RouteEpsilonScale
	s.snap.Store(next)
	s.metrics.swaps.Add(1)
	return nil
}

// SwapFromCheckpoint loads a checkpoint file and swaps it in.
func (s *Server) SwapFromCheckpoint(path string) error {
	snap, err := LoadSnapshot(path)
	if err != nil {
		return err
	}
	return s.Swap(snap)
}

func sameArch(a, b []int) bool { return slices.Equal(a, b) }

// Predict serves one request end to end: route (cache or encoder
// embedding + latent-memory match), enqueue on the expert's micro-batch,
// and wait for the worker's prediction. It returns ErrOverloaded without
// queueing when the pipeline is saturated and ErrClosed after Close.
func (s *Server) Predict(ctx context.Context, x tensor.Vector) (Result, error) {
	return s.PredictSpan(ctx, x, telemetry.SpanFromContext(ctx))
}

// PredictSpan is Predict with the parent span passed explicitly, for
// callers (the in-process load generator) that already hold it —
// skipping the context.WithValue allocation Predict would need to
// carry the span. A nil parent serves the request untraced.
func (s *Server) PredictSpan(ctx context.Context, x tensor.Vector, parent *telemetry.Span) (Result, error) {
	snap := s.snap.Load()
	if len(x) != snap.InputDim() {
		s.metrics.errored.Add(1)
		return Result{}, fmt.Errorf("serve: input dim %d, want %d: %w", len(x), snap.InputDim(), nn.ErrDimension)
	}
	// Fail fast before the expensive routing stage: a saturated or closed
	// server must not burn an encoder forward pass per refused request
	// (that would turn rejection into an overload amplifier). Both
	// conditions are re-checked authoritatively at the admission point.
	if len(s.admit) == cap(s.admit) {
		s.metrics.rejected.Add(1)
		return Result{}, ErrOverloaded
	}
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if closed {
		s.metrics.errored.Add(1)
		return Result{}, ErrClosed
	}

	start := time.Now()
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	// tr is nil on untraced requests, and every span call below no-ops
	// on the zero Span. The traced path is built to be allocation-free
	// (both spans live on this frame; End copies into the tracer's
	// ring) and to add zero extra clock reads per request: span starts
	// reuse the request-entry instant the pipeline measures anyway, and
	// the batch span is closed from the worker's latency measurement.
	// Routing takes well under the 1µs span-duration resolution, so
	// anchoring both spans (and the queue-wait measurement) at request
	// entry rather than at the true route/enqueue boundary costs no
	// observable precision.
	tr := parent.Tracer()
	var routeSpan, batchSpan telemetry.Span
	tr.BeginAt(&routeSpan, "serve.route", parent.Context(), start)

	expert, matched, cached := s.cache.get(x, snap.Version)
	if cached {
		s.metrics.cacheHits.Add(1)
	} else {
		s.metrics.cacheMiss.Add(1)
		ws := s.wsPool.Get().(*nn.Workspace)
		var err error
		expert, matched, err = snap.Route(ws, x)
		s.wsPool.Put(ws)
		if err != nil {
			s.metrics.errored.Add(1)
			routeSpan.EndErr(err)
			return Result{}, err
		}
		s.cache.put(x, snap.Version, expert, matched)
	}
	p := &pending{x: x, snap: snap, expert: expert, matched: matched, cached: cached, start: start, done: make(chan outcome, 1)}
	if tr != nil {
		routeSpan.SetAttrBool("cache.hit", cached)
		routeSpan.SetAttrInt("expert", int64(snap.Experts()[expert].ID))
		routeSpan.SetAttrBool("matched", matched)
		routeSpan.SetAttrInt("snapshot", int64(snap.Version))
		routeSpan.EndAt(start)
		tr.BeginAt(&batchSpan, "serve.batch", parent.Context(), start)
		p.enq = start
	}

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		s.metrics.errored.Add(1)
		batchSpan.EndErr(ErrClosed)
		return Result{}, ErrClosed
	}
	select {
	case s.admit <- p:
		s.metrics.admitted.Add(1)
		s.closeMu.RUnlock()
	default:
		s.closeMu.RUnlock()
		s.metrics.rejected.Add(1)
		batchSpan.EndErr(ErrOverloaded)
		return Result{}, ErrOverloaded
	}

	select {
	case out := <-p.done:
		if tr != nil {
			batchSpan.SetAttrInt("batch.size", int64(out.batchSize))
			batchSpan.SetAttrInt("queue.us", out.queueWait.Microseconds())
			if out.err == nil && out.total > 0 {
				// The worker already measured this request's total
				// latency for the histogram; ending the span at
				// start+total spares another clock read.
				batchSpan.EndAt(start.Add(out.total))
			} else {
				batchSpan.EndErr(out.err)
			}
		}
		if out.err != nil {
			return Result{}, out.err
		}
		return Result{
			Class:   out.class,
			Expert:  snap.Experts()[expert].ID,
			Matched: matched,
			Cached:  cached,
			Version: snap.Version,
		}, nil
	case <-ctx.Done():
		// The worker will still complete the request into the buffered
		// done channel; only this caller stops waiting.
		batchSpan.EndErr(ctx.Err())
		return Result{}, ctx.Err()
	}
}

// Close stops admission, drains every queued batch through the workers,
// and returns once all in-flight requests have completed.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		<-s.drained
		return nil
	}
	s.closed = true
	s.closeMu.Unlock()
	close(s.admit) // dispatcher flushes remaining buckets, then closes batches
	<-s.drained
	return nil
}

// dispatch is the single batching goroutine: it owns the per-expert
// buckets, flushing each when it reaches MaxBatch requests or its oldest
// request has waited MaxDelay.
func (s *Server) dispatch() {
	buckets := make(map[bucketKey]*bucket)
	tick := s.cfg.MaxDelay / 2
	if tick < 100*time.Microsecond {
		tick = 100 * time.Microsecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	flush := func(k bucketKey, b *bucket) {
		s.batches <- batchMsg{snap: k.snap, expert: k.expert, reqs: b.reqs}
		delete(buckets, k)
	}

	for {
		select {
		case p, ok := <-s.admit:
			if !ok {
				for k, b := range buckets {
					flush(k, b)
				}
				close(s.batches)
				return
			}
			k := bucketKey{snap: p.snap, expert: p.expert}
			b := buckets[k]
			if b == nil {
				capHint := s.cfg.MaxBatch
				if capHint > 64 {
					capHint = 64 // grow on demand; huge MaxBatch must not preallocate
				}
				b = &bucket{reqs: make([]*pending, 0, capHint), oldest: p.start}
				buckets[k] = b
			}
			b.reqs = append(b.reqs, p)
			// Flush on a full batch — or eagerly when the admission
			// queue is empty: with nothing left to coalesce, delaying
			// buys no batching, only latency. Under backlog the queue is
			// non-empty and batches fill toward MaxBatch before flushing.
			if len(b.reqs) >= s.cfg.MaxBatch || len(s.admit) == 0 {
				flush(k, b)
			}
		case <-ticker.C:
			now := time.Now()
			for k, b := range buckets {
				if now.Sub(b.oldest) >= s.cfg.MaxDelay {
					flush(k, b)
				}
			}
		}
	}
}

// worker drains flushed batches, running the zero-allocation prediction
// kernel over each request with a pool-recycled workspace.
func (s *Server) worker() {
	defer s.workers.Done()
	for batch := range s.batches {
		ws := s.wsPool.Get().(*nn.Workspace)
		model := batch.snap.Experts()[batch.expert].Model
		// batchStart is resolved lazily: only traced requests (enq set)
		// need it, and most batches carry none. When the latency
		// histogram measurement is at hand, start+total IS the current
		// instant, so the traced path normally costs no clock read here.
		var batchStart time.Time
		for _, p := range batch.reqs {
			class, err := model.PredictWS(ws, p.x)
			out := outcome{class: class, err: err}
			if err != nil {
				s.metrics.errored.Add(1)
			} else {
				out.total = time.Since(p.start)
				s.metrics.requests.Add(1)
				if p.matched {
					s.metrics.matched.Add(1)
				} else {
					s.metrics.fallbacks.Add(1)
				}
				s.metrics.ObserveLatency(out.total)
			}
			if !p.enq.IsZero() {
				if batchStart.IsZero() {
					if out.total > 0 {
						batchStart = p.start.Add(out.total)
					} else {
						batchStart = time.Now()
					}
				}
				out.batchSize = len(batch.reqs)
				out.queueWait = batchStart.Sub(p.enq)
			}
			p.done <- out
		}
		s.metrics.batches.Add(1)
		s.metrics.batched.Add(uint64(len(batch.reqs)))
		s.wsPool.Put(ws)
	}
}
