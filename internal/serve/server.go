package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpapi"
	"repro/internal/monitor"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Config tunes the serving pipeline. Zero values select the defaults.
type Config struct {
	// Workers is the number of prediction workers (default: one per core).
	Workers int
	// MaxBatch flushes an expert's queue when it reaches this many requests
	// (default 32).
	MaxBatch int
	// MaxDelay flushes an expert's queue when its oldest request has waited
	// this long (default 2ms) — the latency cost of batching is bounded by
	// MaxDelay plus one flush tick.
	MaxDelay time.Duration
	// QueueDepth bounds the admission queue; admission beyond it fails
	// fast with ErrOverloaded (default 4096). Requests already handed to
	// the dispatcher's buckets and the worker pool (up to roughly
	// 2×Workers×MaxBatch more) are not counted against it.
	QueueDepth int
	// CacheSize bounds the LRU route cache (default 4096; negative
	// disables caching).
	CacheSize int
	// RouteEpsilonScale inflates the snapshot's reuse threshold ε for
	// routing (default 4). Training calibrates ε on window-mean
	// embeddings; a single request's embedding is a sample of that mean
	// and sits farther from the expert memories, so serving needs a wider
	// acceptance radius before the latent-memory match fires. Negative
	// uses ε unscaled. The effective radius (ε × scale) is visible on
	// GET /v1/snapshot (routeEpsilon) and in /metrics.
	RouteEpsilonScale float64
	// Model is the model name this replica serves under (default
	// httpapi.DefaultModel). Requests addressed to another model are
	// answered 404, and the gateway registers the replica under this name.
	Model string
	// Tracer records request spans (routing decision, batch queue wait)
	// and backs GET /v1/debug/traces. Nil disables tracing; the request
	// path then pays one nil check per span site.
	Tracer *telemetry.Tracer
	// Monitor, when set, receives every batch-routed request's embedding,
	// match margin, chosen expert, and fallback verdict — the drift
	// observability plane behind /v1/debug/drift. The tee is off the
	// request path: samples are copied into preallocated blocks at batch
	// granularity and handed off through a bounded drop-oldest queue, so
	// the hot path never blocks and never allocates for it. Cache-hit
	// requests carry no embedding and are not teed (run the cache disabled
	// for full coverage). The server owns the reference: it installs the
	// snapshot's latent memories on adoption and on every hot swap. Nil
	// disables monitoring.
	Monitor *monitor.Monitor
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	switch {
	case c.RouteEpsilonScale == 0:
		c.RouteEpsilonScale = 4
	case c.RouteEpsilonScale < 0:
		c.RouteEpsilonScale = 1
	}
	if c.Model == "" {
		c.Model = httpapi.DefaultModel
	}
	return c
}

// Result is one served prediction.
type Result struct {
	// Class is the predicted label.
	Class int
	// Expert is the training-time ID of the expert that served the request.
	Expert int
	// Matched reports a latent-memory match; false means the global
	// fallback served the request.
	Matched bool
	// Cached reports that routing came from the LRU cache (no encoder pass).
	Cached bool
	// Version is the snapshot version that served the request.
	Version int
}

var (
	// ErrClosed is returned by Predict after Close has begun.
	ErrClosed = errors.New("serve: server is shut down")
	// ErrOverloaded is returned when the admission queue is full.
	ErrOverloaded = errors.New("serve: admission queue full")
)

// outcome is what a worker reports back to the waiting Predict call.
type outcome struct {
	class int
	// expert (an index into snap.Experts()) and matched echo the routing
	// decision: resolved at admission for cache hits, by the worker's
	// batched embedding for everything else.
	expert  int
	matched bool
	err     error
	// total is the worker-measured latency since pending.start (zero on
	// errors); traced requests reuse it to close their batch span
	// without another clock read.
	total time.Duration
	// batchSize and queueWait describe the batch that executed the
	// request; they are only populated for traced requests (enq set).
	batchSize int
	queueWait time.Duration
}

// unrouted marks a pending request whose expert is not yet known: the
// worker routes it (batched through the encoder) before predicting.
const unrouted = -1

// pending is one admitted request travelling through the pipeline.
type pending struct {
	x    tensor.Vector
	snap *Snapshot
	// expert is the index into snap.Experts(), or unrouted when the route
	// cache missed and the worker owns the (batched) routing decision.
	expert  int
	matched bool
	cached  bool
	start   time.Time
	enq     time.Time    // enqueue instant; zero unless the request is traced
	done    chan outcome // buffered(1); the worker's send never blocks
}

// bucketKey identifies a per-expert queue (expert == unrouted keys the
// shared routing queue). Snapshots are part of the key so a hot swap simply
// starts new buckets: requests admitted against the old snapshot drain from
// its buckets onto its (still immutable) models, which is why a swap can
// never drop or corrupt an in-flight request.
type bucketKey struct {
	snap   *Snapshot
	expert int
}

// bucket accumulates one expert's queued requests until a flush.
type bucket struct {
	reqs   []*pending
	oldest time.Time
}

// batchMsg is one flushed batch handed to the worker pool.
type batchMsg struct {
	snap   *Snapshot
	expert int
	reqs   []*pending
}

// Server is the shift-aware inference server: an atomically swappable
// ModelSnapshot behind a routing stage and a micro-batching worker pool.
// All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *routeCache

	snap atomic.Pointer[Snapshot]
	// swapMu serializes Swap's stamp-then-store sequence so concurrent
	// swaps cannot publish versions out of order; readers never take it.
	swapMu sync.Mutex
	swaps  atomic.Int64 // snapshot version counter

	admit chan *pending
	// closeMu serializes admission against Close: Predict sends under
	// RLock after checking closed, so close(admit) can never race a send.
	closeMu sync.RWMutex
	closed  bool

	batches chan batchMsg
	workers sync.WaitGroup
	drained chan struct{} // closed once every worker has exited

	// adaptMu guards the attached adaptation reporter: the continual
	// controller attaches itself after construction (serve cannot import
	// continual — the controller imports serve to drive Swap), and the
	// /v1/state, /v1/metrics, and /v1/debug/adapt handlers read it.
	adaptMu  sync.RWMutex
	adaptRep AdaptReporter
}

// AdaptReporter is the server's view of an attached continual adaptation
// controller: the state-machine snapshot rendered into /v1/state, the
// shiftex_continual_* metric families, and /v1/debug/adapt. Implemented by
// *continual.Controller.
type AdaptReporter interface {
	ContinualState() *httpapi.ContinualState
}

// AttachAdaptation installs (or, with nil, detaches) the continual
// adaptation controller's reporter. Safe for concurrent use with handlers.
func (s *Server) AttachAdaptation(rep AdaptReporter) {
	s.adaptMu.Lock()
	s.adaptRep = rep
	s.adaptMu.Unlock()
}

// Adaptation returns the attached adaptation reporter, or nil.
func (s *Server) Adaptation() AdaptReporter {
	s.adaptMu.RLock()
	defer s.adaptMu.RUnlock()
	return s.adaptRep
}

// NewServer starts a serving pipeline over the given snapshot. The
// snapshot's Version is stamped from the server's swap counter. Call Close
// to drain and stop.
func NewServer(snap *Snapshot, cfg Config) (*Server, error) {
	if snap == nil {
		return nil, errors.New("serve: nil snapshot")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: NewMetrics(),
		cache:   newRouteCache(cfg.CacheSize),
		admit:   make(chan *pending, cfg.QueueDepth),
		batches: make(chan batchMsg, 2*cfg.Workers),
		drained: make(chan struct{}),
	}
	snap.Version = int(s.swaps.Add(1))
	snap.routeEps = snap.Epsilon * cfg.RouteEpsilonScale
	s.snap.Store(snap)
	s.metrics.InstallExperts(snap.ExpertIDs())
	if cfg.Monitor != nil {
		cfg.Monitor.SetReference(snap.MonitorReference())
	}

	go s.dispatch()
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	go func() {
		s.workers.Wait()
		close(s.drained)
	}()
	return s, nil
}

// Snapshot returns the currently serving snapshot.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Metrics exposes the serving counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Swap atomically replaces the serving snapshot. The new snapshot must
// share the running architecture (the workspace pool and route cache are
// arch-shaped); in-flight requests finish on the snapshot they were routed
// against, so no request is ever dropped by a swap.
func (s *Server) Swap(next *Snapshot) error {
	if next == nil {
		return errors.New("serve: nil snapshot")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.snap.Load()
	if next == cur {
		// Re-stamping the published snapshot would race its readers.
		return errors.New("serve: cannot swap in the currently serving snapshot; build a fresh one")
	}
	if !sameArch(cur.Arch, next.Arch) {
		return fmt.Errorf("serve: snapshot arch %v does not match serving arch %v", next.Arch, cur.Arch)
	}
	next.Version = int(s.swaps.Add(1))
	next.routeEps = next.Epsilon * s.cfg.RouteEpsilonScale
	s.snap.Store(next)
	s.metrics.swaps.Add(1)
	s.metrics.InstallExperts(next.ExpertIDs())
	if s.cfg.Monitor != nil {
		s.cfg.Monitor.SetReference(next.MonitorReference())
	}
	return nil
}

// SwapFromCheckpoint loads a checkpoint file and swaps it in.
func (s *Server) SwapFromCheckpoint(path string) error {
	snap, err := LoadSnapshot(path)
	if err != nil {
		return err
	}
	return s.Swap(snap)
}

func sameArch(a, b []int) bool { return slices.Equal(a, b) }

// Predict serves one request end to end: route (cache or encoder
// embedding + latent-memory match), enqueue on the expert's micro-batch,
// and wait for the worker's prediction. It returns ErrOverloaded without
// queueing when the pipeline is saturated and ErrClosed after Close.
func (s *Server) Predict(ctx context.Context, x tensor.Vector) (Result, error) {
	return s.PredictSpan(ctx, x, telemetry.SpanFromContext(ctx))
}

// PredictSpan is Predict with the parent span passed explicitly, for
// callers (the in-process load generator) that already hold it —
// skipping the context.WithValue allocation Predict would need to
// carry the span. A nil parent serves the request untraced.
func (s *Server) PredictSpan(ctx context.Context, x tensor.Vector, parent *telemetry.Span) (Result, error) {
	return s.predictAt(ctx, x, parent, time.Time{})
}

// predictAt is the pipeline entry with the request-start instant supplied
// by the caller — the in-process load generator already reads the clock for
// its own latency measurement, and at batched throughput a second read per
// request is a measurable tax. A zero start is read fresh after the
// fast-fail checks (so refused requests never pay for it).
func (s *Server) predictAt(ctx context.Context, x tensor.Vector, parent *telemetry.Span, start time.Time) (Result, error) {
	snap := s.snap.Load()
	if len(x) != snap.InputDim() {
		s.metrics.errored.Add(1)
		return Result{}, fmt.Errorf("serve: input dim %d, want %d: %w", len(x), snap.InputDim(), nn.ErrDimension)
	}
	// Fail fast before the expensive routing stage: a saturated or closed
	// server must not burn an encoder forward pass per refused request
	// (that would turn rejection into an overload amplifier). Both
	// conditions are re-checked authoritatively at the admission point.
	if len(s.admit) == cap(s.admit) {
		s.metrics.rejected.Add(1)
		return Result{}, ErrOverloaded
	}
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if closed {
		s.metrics.errored.Add(1)
		return Result{}, ErrClosed
	}

	if start.IsZero() {
		start = time.Now()
	}
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	// tr is nil on untraced requests, and every span call below no-ops
	// on the zero Span. The traced path is built to be allocation-free
	// (both spans live on this frame; End copies into the tracer's
	// ring) and to add zero extra clock reads per request: span starts
	// reuse the request-entry instant the pipeline measures anyway, and
	// the batch span is closed from the worker's latency measurement.
	// The cache lookup takes well under the 1µs span-duration
	// resolution, so anchoring both spans (and the queue-wait
	// measurement) at request entry rather than at the true
	// route/enqueue boundary costs no observable precision.
	tr := parent.Tracer()
	var routeSpan, batchSpan telemetry.Span
	tr.BeginAt(&routeSpan, "serve.route", parent.Context(), start)

	// Only the cache is consulted here. On a miss the request is admitted
	// unrouted and a worker batches it through the encoder — one GEMM for
	// the whole batch — so the cold path never pays a per-request forward
	// pass on the caller's goroutine.
	expert, matched, cached := s.cache.get(x, snap.Version)
	switch {
	case cached:
		s.metrics.cacheHits.Add(1)
	case s.cache.enabled():
		s.metrics.cacheMiss.Add(1)
		expert = unrouted
	default:
		s.metrics.cacheBypass.Add(1)
		expert = unrouted
	}
	p := &pending{x: x, snap: snap, expert: expert, matched: matched, cached: cached, start: start, done: make(chan outcome, 1)}
	if tr != nil {
		routeSpan.SetAttrBool("cache.hit", cached)
		if cached {
			routeSpan.SetAttrInt("expert", int64(snap.Experts()[expert].ID))
			routeSpan.SetAttrBool("matched", matched)
		}
		routeSpan.SetAttrInt("snapshot", int64(snap.Version))
		routeSpan.EndAt(start)
		tr.BeginAt(&batchSpan, "serve.batch", parent.Context(), start)
		p.enq = start
	}

	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		s.metrics.errored.Add(1)
		batchSpan.EndErr(ErrClosed)
		return Result{}, ErrClosed
	}
	select {
	case s.admit <- p:
		s.metrics.admitted.Add(1)
		s.closeMu.RUnlock()
	default:
		s.closeMu.RUnlock()
		s.metrics.rejected.Add(1)
		batchSpan.EndErr(ErrOverloaded)
		return Result{}, ErrOverloaded
	}

	var out outcome
	if cancel := ctx.Done(); cancel == nil {
		// No cancellation to watch (context.Background, the in-process
		// load generator): a plain channel receive skips selectgo
		// entirely, which is measurable at batched-pipeline throughput.
		out = <-p.done
	} else {
		select {
		case out = <-p.done:
		case <-cancel:
			// The worker will still complete the request into the
			// buffered done channel; only this caller stops waiting.
			batchSpan.EndErr(ctx.Err())
			return Result{}, ctx.Err()
		}
	}
	if tr != nil {
		batchSpan.SetAttrInt("batch.size", int64(out.batchSize))
		batchSpan.SetAttrInt("queue.us", out.queueWait.Microseconds())
		if out.err == nil {
			batchSpan.SetAttrInt("expert", int64(snap.Experts()[out.expert].ID))
			batchSpan.SetAttrBool("matched", out.matched)
		}
		if out.err == nil && out.total > 0 {
			// The worker already measured this request's total
			// latency for the histogram; ending the span at
			// start+total spares another clock read.
			batchSpan.EndAt(start.Add(out.total))
		} else {
			batchSpan.EndErr(out.err)
		}
	}
	if out.err != nil {
		return Result{}, out.err
	}
	return Result{
		Class:   out.class,
		Expert:  snap.Experts()[out.expert].ID,
		Matched: out.matched,
		Cached:  cached,
		Version: snap.Version,
	}, nil
}

// Close stops admission, drains every queued batch through the workers,
// and returns once all in-flight requests have completed.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		<-s.drained
		return nil
	}
	s.closed = true
	s.closeMu.Unlock()
	close(s.admit) // dispatcher flushes remaining buckets, then closes batches
	<-s.drained
	return nil
}

// dispatch is the single batching goroutine: it owns the per-expert
// buckets, flushing each when it reaches MaxBatch requests or its oldest
// request has waited MaxDelay.
func (s *Server) dispatch() {
	buckets := make(map[bucketKey]*bucket)
	buffered := 0 // requests across all buckets, not yet flushed
	tick := s.cfg.MaxDelay / 2
	if tick < 100*time.Microsecond {
		tick = 100 * time.Microsecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	flush := func(k bucketKey, b *bucket) {
		buffered -= len(b.reqs)
		s.batches <- batchMsg{snap: k.snap, expert: k.expert, reqs: b.reqs}
		delete(buckets, k)
	}

	admit := func(p *pending) {
		k := bucketKey{snap: p.snap, expert: p.expert}
		b := buckets[k]
		if b == nil {
			capHint := s.cfg.MaxBatch
			if capHint > 64 {
				capHint = 64 // grow on demand; huge MaxBatch must not preallocate
			}
			b = &bucket{reqs: make([]*pending, 0, capHint), oldest: p.start}
			buckets[k] = b
		}
		b.reqs = append(b.reqs, p)
		buffered++
		// Adaptive flush. A full bucket always goes. Otherwise flush
		// eagerly only when every request known to be in flight is
		// already buffered here: more inflight than buffered means
		// stragglers are mid-admission (their Predict has started but
		// their enqueue hasn't landed), and waiting for them is what
		// lets meanBatch track the offered concurrency instead of
		// pinning at 1. The admission-queue length alone can't see
		// them — on a single-P runtime the channel wakeup runs the
		// dispatcher before the next client even enqueues, so the
		// queue reads empty under heavy concurrent load. A lone
		// sequential caller still flushes immediately (its one request
		// IS the whole inflight set), and the ticker bounds the wait
		// for stragglers that never arrive at MaxDelay.
		switch {
		case len(b.reqs) >= s.cfg.MaxBatch:
			flush(k, b)
		case len(s.admit) == 0 && int64(buffered) >= s.metrics.inflight.Load():
			for k, b := range buckets {
				flush(k, b)
			}
		}
	}

	for {
		select {
		case p, ok := <-s.admit:
			// Drain the admission queue with non-blocking receives
			// before falling back to the two-case select: selectgo per
			// request is a measurable tax at batched throughput, and
			// the ticker only matters when the queue has gone quiet.
			for ok {
				admit(p)
				select {
				case p, ok = <-s.admit:
					continue
				default:
				}
				break
			}
			if !ok {
				for k, b := range buckets {
					flush(k, b)
				}
				close(s.batches)
				return
			}
		case <-ticker.C:
			now := time.Now()
			for k, b := range buckets {
				if now.Sub(b.oldest) >= s.cfg.MaxDelay {
					flush(k, b)
				}
			}
		}
	}
}

// batchScratch is one worker's reusable state for batched execution: the
// GEMM workspace plus the gather/group slices. All of it is warm after the
// first few batches, so steady-state batch execution allocates nothing
// beyond the per-request done channels.
type batchScratch struct {
	bw      *nn.BatchWorkspace
	xs      []tensor.Vector // gathered batch inputs (headers only)
	classes []int           // per-request predicted class, batch order
	order   []int           // request indices grouped by routed expert
	starts  []int           // per-expert counting-sort offsets
	groupXs []tensor.Vector // one expert group's inputs
	groupCl []int           // one expert group's classes
}

func (s *Server) newScratch() *batchScratch {
	return &batchScratch{bw: nn.NewBatchWorkspaceDims(s.snap.Load().Arch, s.cfg.MaxBatch)}
}

// worker drains flushed batches. A routed batch (cache hits) runs straight
// through its expert's batched forward; an unrouted batch is first embedded
// through the encoder — one GEMM for the whole batch — matched against the
// latent memories per row, then grouped by chosen expert and predicted
// group-by-group. Either way every Dense layer runs as one blocked GEMM
// over the batch instead of a per-sample MatVecInto loop.
func (s *Server) worker() {
	defer s.workers.Done()
	sc := s.newScratch()
	for batch := range s.batches {
		var err error
		if batch.expert == unrouted {
			err = s.routeBatch(sc, batch)
		} else {
			err = s.predictBatch(sc, batch, batch.reqs)
		}
		s.finish(batch, sc.classes, err)
		s.metrics.batches.Add(1)
		s.metrics.batched.Add(uint64(len(batch.reqs)))
		s.metrics.ObserveBatchSize(len(batch.reqs))
	}
}

// predictBatch runs one expert's batched forward over reqs, writing classes
// into sc.classes[:len(reqs)] in request order.
func (s *Server) predictBatch(sc *batchScratch, batch batchMsg, reqs []*pending) error {
	sc.xs = sc.xs[:0]
	for _, p := range reqs {
		sc.xs = append(sc.xs, p.x)
	}
	sc.classes = grow(sc.classes, len(reqs))
	model := batch.snap.Experts()[reqs[0].expert].Model
	return model.PredictBatchWS(sc.bw, sc.xs, sc.classes[:len(reqs)])
}

// routeBatch embeds the whole unrouted batch through the encoder in one
// GEMM, matches each row against the expert memories, records the
// decisions in the route cache, then predicts expert group by expert
// group. Classes land in sc.classes in request order.
func (s *Server) routeBatch(sc *batchScratch, batch batchMsg) error {
	reqs := batch.reqs
	snap := batch.snap
	sc.xs = sc.xs[:0]
	for _, p := range reqs {
		sc.xs = append(sc.xs, p.x)
	}
	emb, err := snap.encoder.EmbedBatchWS(sc.bw, sc.xs)
	if err != nil {
		return err
	}
	// Tee every routed sample into the drift monitor at batch granularity:
	// Acquire/Add/Offer are non-blocking and allocation-free, and a
	// saturated monitor costs only a dropped-sample count — never a stall.
	mon := s.cfg.Monitor
	var blk *monitor.Block
	for i, p := range reqs {
		idx, dist, matched := snap.matchSignature(emb.Row(i))
		p.expert, p.matched = idx, matched
		s.cache.put(p.x, snap.Version, idx, matched)
		if mon == nil {
			continue
		}
		if blk == nil {
			if blk = mon.Acquire(); blk == nil {
				mon.NoteDropped(1)
				continue
			}
		}
		blk.Add(emb.Row(i), snap.experts[idx].ID, dist, matched)
		if blk.Full() {
			blk.SetHits(s.metrics.cacheHits.Load())
			mon.Offer(blk)
			blk = nil
		}
	}
	if blk != nil {
		if blk.Len() > 0 {
			blk.SetHits(s.metrics.cacheHits.Load())
			mon.Offer(blk)
		} else {
			mon.Recycle(blk)
		}
	}

	// Group requests by routed expert with a counting pass (experts are
	// few and batches small — a comparison sort would dominate the batch
	// bookkeeping). Stable by construction: arrival order is preserved
	// within each expert. The embedding matrix is dead at this point, so
	// the same workspace is reused for the expert GEMMs.
	starts := grow(sc.starts, snap.NumExperts())
	sc.starts = starts
	for i := range starts {
		starts[i] = 0
	}
	for _, p := range reqs {
		starts[p.expert]++
	}
	pos := 0
	for e, n := range starts {
		starts[e] = pos
		pos += n
	}
	sc.order = grow(sc.order, len(reqs))
	order := sc.order[:len(reqs)]
	for i, p := range reqs {
		order[starts[p.expert]] = i
		starts[p.expert]++
	}
	sc.classes = grow(sc.classes, len(reqs))
	for lo := 0; lo < len(order); {
		hi := lo + 1
		for hi < len(order) && reqs[order[hi]].expert == reqs[order[lo]].expert {
			hi++
		}
		sc.groupXs = sc.groupXs[:0]
		for _, oi := range order[lo:hi] {
			sc.groupXs = append(sc.groupXs, reqs[oi].x)
		}
		sc.groupCl = grow(sc.groupCl, hi-lo)
		model := snap.Experts()[reqs[order[lo]].expert].Model
		if err := model.PredictBatchWS(sc.bw, sc.groupXs, sc.groupCl[:hi-lo]); err != nil {
			return err
		}
		for gi, oi := range order[lo:hi] {
			sc.classes[oi] = sc.groupCl[gi]
		}
		lo = hi
	}
	return nil
}

// finish reports one executed batch back to its waiting Predict calls.
// One clock read covers the whole batch: every request's latency ends at
// the batch's completion instant, which is also the traced queue-wait
// anchor (the old per-request time.Since was a measurable per-request cost
// at batch sizes this pipeline now reaches).
func (s *Server) finish(batch batchMsg, classes []int, err error) {
	end := time.Now()
	for i, p := range batch.reqs {
		out := outcome{err: err}
		if err != nil {
			s.metrics.errored.Add(1)
		} else {
			out.class = classes[i]
			out.expert = p.expert
			out.matched = p.matched
			out.total = end.Sub(p.start)
			s.metrics.requests.Add(1)
			if p.matched {
				s.metrics.matched.Add(1)
			} else {
				s.metrics.fallbacks.Add(1)
			}
			s.metrics.CountExpert(batch.snap.Experts()[p.expert].ID)
			s.metrics.ObserveLatency(out.total)
		}
		if !p.enq.IsZero() {
			out.batchSize = len(batch.reqs)
			out.queueWait = end.Sub(p.enq)
		}
		p.done <- out
	}
}

// grow returns s with capacity (and length) at least n, reusing the backing
// array whenever it already fits.
func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n, max(n, 2*cap(s)))
	}
	return s[:n]
}
