package serve

import (
	"testing"

	"repro/internal/service"
	"repro/internal/shiftex"
	"repro/internal/tensor"
)

const tinyCheckpoint = "testdata/checkpoint_tiny.json"

func loadTiny(t *testing.T) (*service.Checkpoint, *Snapshot) {
	t.Helper()
	cp, err := service.LoadCheckpoint(tinyCheckpoint)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	snap, err := SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatalf("build snapshot: %v", err)
	}
	return cp, snap
}

func TestSnapshotFromCheckpoint(t *testing.T) {
	cp, snap := loadTiny(t)
	if snap.NumExperts() != len(cp.Aggregator.Experts) {
		t.Fatalf("snapshot has %d experts, checkpoint %d", snap.NumExperts(), len(cp.Aggregator.Experts))
	}
	if snap.Epsilon != cp.Aggregator.Epsilon {
		t.Fatalf("epsilon %g vs %g", snap.Epsilon, cp.Aggregator.Epsilon)
	}
	if snap.WindowsDone != cp.WindowsDone || snap.Seed != cp.Seed {
		t.Fatalf("position/seed not carried over")
	}
	// The fallback is the lowest-ID expert (the bootstrap global model).
	min := snap.Experts()[0].ID
	for _, e := range snap.Experts() {
		if e.ID < min {
			min = e.ID
		}
	}
	if snap.Fallback().ID != min {
		t.Fatalf("fallback ID %d, want lowest %d", snap.Fallback().ID, min)
	}
	for _, e := range snap.Experts() {
		got, ok := snap.ExpertByID(e.ID)
		if !ok || got.Model != e.Model {
			t.Fatalf("ExpertByID(%d) broken", e.ID)
		}
	}
	// Every checkpointed assignment must be resolvable.
	for p := range cp.Aggregator.Assignment {
		if id, ok := snap.AssignedExpert(p); !ok {
			t.Fatalf("party %d has no assigned expert", p)
		} else if _, ok := snap.ExpertByID(id); !ok {
			t.Fatalf("party %d assigned to unknown expert %d", p, id)
		}
	}
}

func TestSnapshotRejectsBadStates(t *testing.T) {
	cp, _ := loadTiny(t)
	if _, err := NewSnapshot([]int{3}, cp.Aggregator); err == nil {
		t.Fatal("short arch must be rejected")
	}
	st := cp.Aggregator
	st.Encoder = nil
	if _, err := NewSnapshot(cp.Arch, st); err == nil {
		t.Fatal("state without encoder must be rejected")
	}
	st = cp.Aggregator
	st.Experts = nil
	if _, err := NewSnapshot(cp.Arch, st); err == nil {
		t.Fatal("state without experts must be rejected")
	}
	st = cp.Aggregator
	st.Experts = append([]shiftex.ExpertState(nil), st.Experts...)
	st.Experts[0] = shiftex.ExpertState{ID: 0, Params: tensor.Vector{1, 2, 3}}
	if _, err := NewSnapshot(cp.Arch, st); err == nil {
		t.Fatal("wrong param count must be rejected")
	}
}

// TestRouteParityWithAggregatorMatch pins that the serving router makes the
// same latent-memory decision the aggregator's Registry.Match would make on
// an identical pool: same winning expert under ε, fallback otherwise.
func TestRouteParityWithAggregatorMatch(t *testing.T) {
	cp, snap := loadTiny(t)
	agg, err := shiftex.Restore(cp.Config, cp.Aggregator)
	if err != nil {
		t.Fatal(err)
	}
	reg := agg.Registry()
	ws := snap.NewWorkspace()
	refWs := snap.NewWorkspace()
	rng := tensor.NewRNG(5)
	for i := 0; i < 200; i++ {
		x := rng.NormVec(snap.InputDim(), 0, 1)
		idx, matched, err := snap.Route(ws, x)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: embed through the same frozen encoder, then ask the
		// live registry.
		sig, err := snap.encoder.EmbedWS(refWs, x)
		if err != nil {
			t.Fatal(err)
		}
		best, dist, ok := reg.Match(sig)
		wantMatched := ok && dist <= snap.Epsilon
		if matched != wantMatched {
			t.Fatalf("input %d: matched=%v, registry says %v (dist=%g eps=%g)", i, matched, wantMatched, dist, snap.Epsilon)
		}
		got := snap.Experts()[idx]
		if wantMatched && got.ID != best.ID {
			t.Fatalf("input %d: routed to expert %d, registry matched %d", i, got.ID, best.ID)
		}
		if !wantMatched && got.ID != snap.Fallback().ID {
			t.Fatalf("input %d: no-match must fall back, got expert %d", i, got.ID)
		}
	}
}
