// Package serve is the inference-serving tier of the ShiftEx middleware:
// it loads a trained aggregator checkpoint into an immutable ModelSnapshot,
// routes each prediction request to the expert whose latent memory best
// matches the request's embedding signature (falling back to the global
// bootstrap model), and runs predictions through a micro-batching worker
// pool of zero-allocation nn workspaces. Snapshots hot-swap atomically, so
// a running server picks up new checkpoints without dropping a request.
//
// The training side of the system (internal/service) answers "does the
// middleware adapt"; this package answers "does the adapted mixture serve"
// — it is the request path in front of the expert pool, mirroring the
// paper's deployment story of a routing tier over backend models.
package serve

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/monitor"
	"repro/internal/nn"
	"repro/internal/service"
	"repro/internal/shiftex"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Expert is one immutable serving model: the trained parameters
// materialized as an MLP plus the latent-memory signature routing matches
// against. Fields are never mutated after the snapshot is built.
type Expert struct {
	ID     int
	Model  *nn.MLP
	Memory tensor.Vector // nil when the expert has no signature (never routed to by match)
}

// Snapshot is the immutable serving view of one aggregator checkpoint: all
// experts, the frozen encoder used for request embedding, the latent-memory
// reuse threshold ε, and the party→expert assignment recorded at training
// time (used by the load generator to score routing decisions). A Snapshot
// is safe for unbounded concurrent readers; hot swap replaces the whole
// pointer (Server.Swap), and requests already routed against the old
// snapshot finish on it.
type Snapshot struct {
	// Version distinguishes snapshots across hot swaps (monotonic per
	// server, assigned at swap time; 1 for a server's first snapshot).
	Version int
	// Arch is the full layer-width list shared by encoder and experts.
	Arch []int
	// Epsilon is the reuse threshold a match distance is compared against.
	Epsilon float64
	// WindowsDone is the stream position the checkpoint was taken at.
	WindowsDone int
	// Seed is the training run's seed (the load generator regenerates the
	// run's scenario from it).
	Seed uint64
	// Policy is the adaptation policy the checkpointed run executed
	// (schema-1 checkpoints resolve to the default policy name). Serving
	// never runs the policy — the snapshot is frozen — but records it so
	// operators can tell which stage set produced the expert pool.
	Policy string

	experts  []Expert
	byID     map[int]int     // expert ID -> index into experts
	memories []tensor.Vector // parallel to experts, nil where signature-less
	// radii is a per-expert acceptance-radius override, parallel to experts
	// (nil when no expert carries one; zero entries fall back to the shared
	// effective radius). Live-created experts need it: their memories are
	// centroids of single-request embeddings, whose spread around the
	// centroid is far wider than the window-mean spread ε was calibrated
	// on, so the continual trainer stamps each new expert with a radius
	// calibrated from the live sample itself (SetExpertRadius). An override
	// only ever widens acceptance — matching uses max(routeEps, radius).
	radii    []float64
	encoder  *nn.MLP
	fallback int // index of the global fallback expert (lowest ID)
	// routeEps is the effective match threshold Route compares against:
	// Epsilon times the server's RouteEpsilonScale. Zero (a snapshot not
	// yet adopted by a server) means raw Epsilon.
	routeEps float64

	assignment map[int]int // party -> expert ID at checkpoint time
}

// NewSnapshot builds a serving snapshot from an exported aggregator state.
// The state must be post-bootstrap: it needs at least one expert and the
// frozen encoder (routing embeds requests through it). Expert parameters
// are cloned into fresh models, so the snapshot shares no storage with the
// aggregator that produced the state.
func NewSnapshot(arch []int, st shiftex.State) (*Snapshot, error) {
	if len(arch) < 3 {
		return nil, fmt.Errorf("serve: invalid arch %v", arch)
	}
	if len(st.Experts) == 0 {
		return nil, errors.New("serve: state has no experts (checkpoint precedes bootstrap?)")
	}
	if st.Encoder == nil {
		return nil, errors.New("serve: state has no frozen encoder (required for request routing)")
	}
	s := &Snapshot{
		Arch:    append([]int(nil), arch...),
		Epsilon: st.Epsilon,
		byID:    make(map[int]int, len(st.Experts)),
	}
	var err error
	if s.encoder, err = modelFromParams(arch, st.Encoder); err != nil {
		return nil, fmt.Errorf("serve: encoder: %w", err)
	}
	s.fallback = -1
	for _, es := range st.Experts {
		m, err := modelFromParams(arch, es.Params)
		if err != nil {
			return nil, fmt.Errorf("serve: expert %d: %w", es.ID, err)
		}
		e := Expert{ID: es.ID, Model: m}
		if es.Memory != nil {
			e.Memory = es.Memory.Clone()
		}
		s.byID[e.ID] = len(s.experts)
		s.experts = append(s.experts, e)
		s.memories = append(s.memories, e.Memory)
		if s.fallback < 0 || e.ID < s.experts[s.fallback].ID {
			s.fallback = len(s.experts) - 1
		}
	}
	if len(st.Assignment) > 0 {
		s.assignment = make(map[int]int, len(st.Assignment))
		for p, id := range st.Assignment {
			s.assignment[p] = id
		}
	}
	return s, nil
}

// SnapshotFromCheckpoint builds a serving snapshot from a service
// checkpoint (the file cmd/shiftex-aggregator writes after every window).
func SnapshotFromCheckpoint(cp *service.Checkpoint) (*Snapshot, error) {
	s, err := NewSnapshot(cp.Arch, cp.Aggregator)
	if err != nil {
		return nil, err
	}
	s.WindowsDone = cp.WindowsDone
	s.Seed = cp.Seed
	s.Policy = cp.PolicyName()
	return s, nil
}

// LoadSnapshot reads a checkpoint file and builds its serving snapshot.
func LoadSnapshot(path string) (*Snapshot, error) {
	cp, err := service.LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	return SnapshotFromCheckpoint(cp)
}

// modelFromParams materializes a flattened parameter vector as an MLP.
func modelFromParams(arch []int, params tensor.Vector) (*nn.MLP, error) {
	if want := nn.ParamCount(arch); len(params) != want {
		return nil, fmt.Errorf("serve: %d params for arch %v (want %d)", len(params), arch, want)
	}
	m, err := nn.NewMLP(arch, tensor.NewRNG(1))
	if err != nil {
		return nil, err
	}
	if err := m.SetParams(params); err != nil {
		return nil, err
	}
	return m, nil
}

// NumExperts returns the expert-pool size.
func (s *Snapshot) NumExperts() int { return len(s.experts) }

// Experts returns the snapshot's experts (shared storage — read only).
func (s *Snapshot) Experts() []Expert { return s.experts }

// ExpertIDs returns the training-time IDs of all experts, in pool order.
func (s *Snapshot) ExpertIDs() []int {
	ids := make([]int, len(s.experts))
	for i, e := range s.experts {
		ids[i] = e.ID
	}
	return ids
}

// ExpertByID returns the expert with the given training-time ID.
func (s *Snapshot) ExpertByID(id int) (Expert, bool) {
	i, ok := s.byID[id]
	if !ok {
		return Expert{}, false
	}
	return s.experts[i], true
}

// Fallback returns the global fallback expert: the lowest-ID expert in the
// pool, which is the bootstrap global model unless it was consolidated
// away — in which case its merge survivor inherits the role.
func (s *Snapshot) Fallback() Expert { return s.experts[s.fallback] }

// AssignedExpert returns the expert the checkpointed aggregator had
// assigned to the given party, if any.
func (s *Snapshot) AssignedExpert(party int) (int, bool) {
	id, ok := s.assignment[party]
	return id, ok
}

// InputDim returns the request feature width.
func (s *Snapshot) InputDim() int { return s.Arch[0] }

// NewWorkspace allocates a workspace fitting the snapshot's architecture —
// one serves both encoder embedding and expert prediction, since all models
// share the arch.
func (s *Snapshot) NewWorkspace() *nn.Workspace { return nn.NewWorkspaceDims(s.Arch) }

// Route picks the serving expert for one request input: it embeds x through
// the frozen encoder (into ws), matches the embedding against the expert
// memories with the same shared helper the aggregator uses, and falls back
// to the global model when no memory is within ε (or none exists). The
// returned index points into Experts(). matched reports whether a
// latent-memory match won over the fallback.
func (s *Snapshot) Route(ws *nn.Workspace, x tensor.Vector) (idx int, matched bool, err error) {
	sig, err := s.encoder.EmbedWS(ws, x)
	if err != nil {
		return 0, false, err
	}
	idx, _, matched = s.matchSignature(sig)
	return idx, matched, nil
}

// matchSignature resolves an already-computed embedding signature to a
// serving expert: the matching half of Route, shared with the worker pool's
// batched routing path (which embeds a whole batch in one GEMM and then
// matches row by row). dist is the match margin the drift monitor compares
// against the effective radius: the matched expert's squared signature
// distance, or the nearest memory's when nothing is admissible (+Inf when no
// expert has a memory to match).
func (s *Snapshot) matchSignature(sig tensor.Vector) (idx int, dist float64, matched bool) {
	eps := s.routeEps
	if eps == 0 {
		eps = s.Epsilon
	}
	return s.matchAt(sig, eps)
}

// matchAt is the admissibility-aware matching core shared by matchSignature
// and MatchEmbedding: each expert accepts within max(eps, its radius
// override), and the nearest admissible memory wins. Nearest-overall alone
// (shiftex.MatchSignatures) is not enough once per-expert radii exist — the
// globally nearest memory can fail its own radius while a farther live
// expert with a calibrated radius would accept.
func (s *Snapshot) matchAt(sig tensor.Vector, eps float64) (idx int, dist float64, matched bool) {
	admIdx, admDist := -1, math.Inf(1)
	anyDist := math.Inf(1)
	for i, m := range s.memories {
		if m == nil {
			continue
		}
		d := stats.MeanEmbeddingMMD(sig, m)
		if d < anyDist {
			anyDist = d
		}
		thr := eps
		if s.radii != nil && s.radii[i] > thr {
			thr = s.radii[i]
		}
		if d <= thr && d < admDist {
			admIdx, admDist = i, d
		}
	}
	if admIdx >= 0 {
		return admIdx, admDist, true
	}
	return s.fallback, anyDist, false
}

// MatchEmbedding resolves an already-computed embedding against the expert
// memories under an explicit shared acceptance radius (per-expert overrides
// still apply), returning the winning expert's training-time ID (the
// fallback's when nothing is admissible). The continual controller's
// validation gate uses it to score candidate and serving snapshots on the
// same held-back live embeddings under the same radius — a candidate's
// routeEps is not stamped until Swap adopts it, so the radius must come from
// the caller.
func (s *Snapshot) MatchEmbedding(sig tensor.Vector, eps float64) (id int, dist float64, matched bool) {
	i, dist, ok := s.matchAt(sig, eps)
	if !ok {
		return s.experts[s.fallback].ID, dist, false
	}
	return s.experts[i].ID, dist, true
}

// SetExpertRadius stamps a per-expert acceptance-radius override (in the
// squared signature-distance space routing compares in). It reports whether
// the expert exists and the radius is positive. Call it only while building
// a snapshot, before the snapshot is published to a server — published
// snapshots are immutable.
func (s *Snapshot) SetExpertRadius(id int, r float64) bool {
	i, ok := s.byID[id]
	if !ok || r <= 0 {
		return false
	}
	if s.radii == nil {
		s.radii = make([]float64, len(s.memories))
	}
	s.radii[i] = r
	return true
}

// ExpertRadius returns the expert's acceptance-radius override, or 0 when it
// uses the shared effective radius.
func (s *Snapshot) ExpertRadius(id int) float64 {
	i, ok := s.byID[id]
	if !ok || s.radii == nil {
		return 0
	}
	return s.radii[i]
}

// MonitorReference builds the drift monitor's scoring reference from this
// snapshot: embedding dimensionality, effective routing radius, and every
// expert's latent memory. The server installs it on adoption and on every
// hot swap, which resets the monitor's sketches to the new snapshot.
func (s *Snapshot) MonitorReference() monitor.Reference {
	ref := monitor.Reference{
		SnapshotVersion: s.Version,
		Dim:             s.Arch[len(s.Arch)-2],
		Epsilon:         s.Epsilon,
		RouteEpsilon:    s.RouteEpsilon(),
		Experts:         make([]monitor.ExpertRef, 0, len(s.experts)),
	}
	for _, e := range s.experts {
		ref.Experts = append(ref.Experts, monitor.ExpertRef{ID: e.ID, Memory: e.Memory})
	}
	return ref
}

// RouteEpsilon returns the effective match threshold Route uses.
func (s *Snapshot) RouteEpsilon() float64 {
	if s.routeEps != 0 {
		return s.routeEps
	}
	return s.Epsilon
}
