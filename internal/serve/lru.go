package serve

import (
	"container/list"
	"math"
	"slices"
	"sync"

	"repro/internal/tensor"
)

// routeCache is a concurrency-safe LRU from request input to routing
// decision. It exists to keep the hot path off the embedding network:
// a repeated input skips the encoder forward pass and the memory scan
// entirely. Entries carry the snapshot version they were computed against
// and are ignored (then overwritten) after a hot swap, so a stale cache can
// never route into a retired snapshot.
//
// Keys are FNV-1a hashes of the raw float bits; the full input is kept in
// the entry and compared on lookup, so hash collisions degrade to misses,
// never to wrong answers.
type routeCache struct {
	mu  sync.Mutex
	cap int
	m   map[uint64]*list.Element
	l   *list.List // front = most recently used
}

type routeEntry struct {
	key     uint64
	x       tensor.Vector // cloned input (collision guard)
	expert  int           // index into Snapshot.Experts()
	matched bool
	version int // snapshot version the decision belongs to
}

// newRouteCache builds a cache holding up to capacity decisions;
// capacity <= 0 disables caching (every lookup misses).
func newRouteCache(capacity int) *routeCache {
	return &routeCache{cap: capacity, m: make(map[uint64]*list.Element), l: list.New()}
}

// hashInput is FNV-1a 64 over the float64 bit patterns of x.
func hashInput(x tensor.Vector) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range x {
		b := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= b & 0xff
			h *= prime
			b >>= 8
		}
	}
	return h
}

// get returns the cached decision for x under the given snapshot version.
func (c *routeCache) get(x tensor.Vector, version int) (expert int, matched, ok bool) {
	if c.cap <= 0 {
		return 0, false, false
	}
	key := hashInput(x)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.m[key]
	if !found {
		return 0, false, false
	}
	e := el.Value.(*routeEntry)
	if e.version != version || !sameInput(e.x, x) {
		return 0, false, false
	}
	c.l.MoveToFront(el)
	return e.expert, e.matched, true
}

// put records a routing decision, evicting the least recently used entry
// when full. A same-key entry is overwritten (this is how post-swap entries
// replace stale ones).
func (c *routeCache) put(x tensor.Vector, version, expert int, matched bool) {
	if c.cap <= 0 {
		return
	}
	key := hashInput(x)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.m[key]; found {
		e := el.Value.(*routeEntry)
		e.x = x.Clone()
		e.expert, e.matched, e.version = expert, matched, version
		c.l.MoveToFront(el)
		return
	}
	for c.l.Len() >= c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*routeEntry).key)
	}
	c.m[key] = c.l.PushFront(&routeEntry{key: key, x: x.Clone(), expert: expert, matched: matched, version: version})
}

// enabled reports whether the cache stores anything at all (capacity > 0).
// A disabled cache turns every request into a bypass, which the metrics
// count separately from genuine misses.
func (c *routeCache) enabled() bool { return c.cap > 0 }

// sameInput reports element-equal inputs (NaN-bearing inputs compare
// unequal and degrade to cache misses, which is safe).
func sameInput(a, b tensor.Vector) bool { return slices.Equal(a, b) }

// len returns the number of cached decisions.
func (c *routeCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}
