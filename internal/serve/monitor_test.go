package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// tinyMonitorConfig keeps the monitor's reservoirs small enough that the
// tiny checkpoint's workload calibrates and evaluates within a few
// thousand requests. The loadgen replays a cycle of parties×TestPerParty
// = 160 distinct inputs, so the recent window must cover at least one
// full cycle: a shorter window is a contiguous chunk of the cycle, which
// genuinely differs in distribution from the whole and would read as
// drift on perfectly clean traffic.
func tinyMonitorConfig() monitor.Config {
	return monitor.Config{
		QueueBlocks:  32,
		BlockRows:    32,
		EvalEvery:    160,
		BaselineSize: 320,
		WindowSize:   160,
		Threshold:    2,
		Calibrate:    stats.CalibrateConfig{Resamples: 50, PValue: 0.02},
		Seed:         1,
	}
}

// TestRouteBatchZeroAllocWithMonitor pins the acceptance contract on the
// request hot path: batched routing with the monitor tee enabled must not
// allocate. The monitor is closed first so its consumer goroutine (which
// does allocate, off-path) cannot pollute the global alloc counter; the
// producer side then exercises the drop-oldest recycle loop, exactly the
// path a saturated monitor would leave the workers on.
func TestRouteBatchZeroAllocWithMonitor(t *testing.T) {
	_, snap := loadTiny(t)
	mon := monitor.New(tinyMonitorConfig())
	srv, err := NewServer(snap, Config{
		Workers:   1,
		MaxDelay:  time.Second, // keep the dispatch ticker quiet during the pin
		CacheSize: -1,
		Monitor:   mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon.Close()

	rng := tensor.NewRNG(5)
	served := srv.Snapshot()
	reqs := make([]*pending, 32)
	for i := range reqs {
		reqs[i] = &pending{x: rng.NormVec(served.InputDim(), 0, 1), snap: served, expert: unrouted}
	}
	batch := batchMsg{snap: served, expert: unrouted, reqs: reqs}
	sc := srv.newScratch()
	for i := 0; i < 3; i++ { // warm the scratch slices and block freelist
		if err := srv.routeBatch(sc, batch); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := srv.routeBatch(sc, batch); err != nil {
			panic(err)
		}
	}); n != 0 {
		t.Fatalf("routeBatch with monitor enabled allocates %.1f/op, want 0", n)
	}
	if mon.Teed() == 0 {
		t.Fatal("monitor saw no samples — the pin measured a dead tee")
	}
}

// TestServerMonitorDetectsInjectedShift drives the full plane end to end:
// cold traffic through the batched pipeline tees into the monitor, a
// frost/5 regime change is injected mid-stream, and the drift score must
// cross the threshold after — and only after — the injection watermark.
func TestServerMonitorDetectsInjectedShift(t *testing.T) {
	cp, snap := loadTiny(t)
	mon := monitor.New(tinyMonitorConfig())
	defer mon.Close()
	srv, err := NewServer(snap, Config{
		Workers:   2,
		MaxDelay:  500 * time.Microsecond,
		CacheSize: -1,
		Monitor:   mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := tinyLoadConfig()
	cfg.Repeat = 40
	cfg.ShiftAt = 0.5
	res, err := RunLoad(context.Background(), srv, cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ShiftInjected {
		t.Fatal("shift was not injected")
	}
	mon.Flush()
	sum := mon.Summary()
	if !sum.Calibrated {
		t.Fatalf("monitor never calibrated: %s", sum.CalibrationError)
	}
	if sum.Samples == 0 || sum.Evals == 0 {
		t.Fatalf("monitor idle: samples=%d evals=%d", sum.Samples, sum.Evals)
	}
	var detectedAt uint64
	for _, ev := range mon.Evaluations(0, -1) {
		if ev.Err != "" {
			t.Fatalf("evaluation error: %s", ev.Err)
		}
		if !ev.Crossed {
			continue
		}
		// The watermark is in the tee clock; ev.TeedAt is the evaluation's
		// position in the same clock (ev.Samples, the folded count, lags it
		// when backpressure drops samples).
		if ev.TeedAt <= res.ShiftTeedSamples {
			t.Fatalf("false positive: crossing teed at %d, shift watermark %d (score %.3f)",
				ev.TeedAt, res.ShiftTeedSamples, ev.Score)
		}
		if detectedAt == 0 {
			detectedAt = ev.TeedAt
		}
	}
	if detectedAt == 0 {
		t.Fatalf("injected shift never detected: max summary score %.3f, threshold %.3f, %d evals",
			sum.Score, sum.Threshold, sum.Evals)
	}
	t.Logf("detected at sample %d, watermark %d (latency %d samples)",
		detectedAt, res.ShiftTeedSamples, detectedAt-res.ShiftTeedSamples)
}

// TestDriftEndpointThroughServer asserts /v1/debug/drift is wired into the
// serving mux and speaks the DriftState schema, both with and without a
// monitor configured.
func TestDriftEndpointThroughServer(t *testing.T) {
	cp, snap := loadTiny(t)
	mon := monitor.New(tinyMonitorConfig())
	defer mon.Close()
	srv, err := NewServer(snap, Config{Workers: 1, CacheSize: -1, MaxDelay: 200 * time.Microsecond, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := tinyLoadConfig()
	cfg.Repeat = 4
	if _, err := RunLoad(context.Background(), srv, cp, cfg); err != nil {
		t.Fatal(err)
	}
	mon.Flush()

	resp, err := http.Get(ts.URL + "/v1/debug/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var st monitor.DriftState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Summary == nil {
		t.Fatalf("drift state not live: %+v", st)
	}
	if st.Summary.Teed == 0 || st.Summary.SnapshotVersion != srv.Snapshot().Version {
		t.Fatalf("drift summary does not reflect the run: %+v", st.Summary)
	}

	// A server with no monitor still answers, reporting the plane disabled.
	bare, err := NewServer(snap2(t, cp), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	tsBare := httptest.NewServer(bare.Handler())
	defer tsBare.Close()
	respBare, err := http.Get(tsBare.URL + "/v1/debug/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer respBare.Body.Close()
	if respBare.StatusCode != http.StatusOK {
		t.Fatalf("bare status %d, want 200", respBare.StatusCode)
	}
	var stBare monitor.DriftState
	if err := json.NewDecoder(respBare.Body).Decode(&stBare); err != nil {
		t.Fatal(err)
	}
	if stBare.Enabled {
		t.Fatal("monitor-less server reports the drift plane enabled")
	}
}

// snap2 builds a second snapshot of the same checkpoint (a snapshot cannot
// be shared across servers: adoption stamps Version and routeEps).
func snap2(t *testing.T, cp *service.Checkpoint) *Snapshot {
	t.Helper()
	s, err := SnapshotFromCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestExpertRequestCounters pins the per-expert counter satellite: every
// completed request lands in exactly one expert's counter, and the tallies
// survive a hot swap (carried cells, not zeroed).
func TestExpertRequestCounters(t *testing.T) {
	cp, snap := loadTiny(t)
	srv, err := NewServer(snap, Config{Workers: 2, MaxDelay: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := tinyLoadConfig()
	res, err := RunLoad(context.Background(), srv, cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, counts := srv.Metrics().ExpertRequests()
	if len(ids) != srv.Snapshot().NumExperts() {
		t.Fatalf("%d counters for %d experts", len(ids), srv.Snapshot().NumExperts())
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != res.Requests {
		t.Fatalf("expert counters sum to %d, served %d", total, res.Requests)
	}

	if err := srv.Swap(snap2(t, cp)); err != nil {
		t.Fatal(err)
	}
	_, after := srv.Metrics().ExpertRequests()
	var afterTotal uint64
	for _, c := range after {
		afterTotal += c
	}
	if afterTotal != total {
		t.Fatalf("hot swap reset expert counters: %d before, %d after", total, afterTotal)
	}
}
