package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/tensor"
)

func TestHTTPPredictAndHealth(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2, MaxDelay: 500 * time.Microsecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	x := tensor.NewRNG(21).NormVec(srv.Snapshot().InputDim(), 0, 1)
	body, _ := json.Marshal(map[string]any{"x": x})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr httpapi.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.Snapshot().ExpertByID(pr.Expert); !ok {
		t.Fatalf("predict answered with unknown expert %d", pr.Expert)
	}

	// Wrong dimension → 400.
	bad, _ := json.Marshal(map[string]any{"x": []float64{1}})
	resp2, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad input status %d, want 400", resp2.StatusCode)
	}

	// GET /predict → 405.
	resp3, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict status %d, want 405", resp3.StatusCode)
	}

	for _, path := range []string{"/healthz", "/snapshot"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`shiftex_serve_requests_total{outcome="ok"} 1`,
		"shiftex_serve_latency_seconds",
		"shiftex_serve_snapshot_version 1",
		"shiftex_serve_experts",
		`shiftex_serve_route_cache_total{result="bypass"}`,
		"# TYPE shiftex_serve_batch_size histogram",
		`shiftex_serve_batch_size_bucket{le="1"} 1`,
		`shiftex_serve_batch_size_bucket{le="+Inf"} 1`,
		"shiftex_serve_batch_size_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestHTTPSnapshotSwap(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]string{"path": tinyCheckpoint})
	resp, err := http.Post(ts.URL+"/snapshot", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status %d", resp.StatusCode)
	}
	var sum httpapi.SnapshotSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Version != 2 {
		t.Fatalf("post-swap version %d, want 2", sum.Version)
	}

	// Bad path → 422, serving keeps the old snapshot.
	bad, _ := json.Marshal(map[string]string{"path": "testdata/nope.json"})
	resp2, err := http.Post(ts.URL+"/snapshot", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad swap status %d, want 422", resp2.StatusCode)
	}
	if srv.Snapshot().Version != 2 {
		t.Fatal("failed swap must not disturb the serving snapshot")
	}
}

// TestHTTPV1Surface pins the versioned API satellite: /v1 routes respond,
// legacy aliases carry Deprecation headers, unknown routes list the live
// surface, model-addressed requests work on the hosting replica and 404
// elsewhere, and the effective routing ε is visible in /metrics and the
// snapshot summary.
func TestHTTPV1Surface(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1, Model: "fmow", RouteEpsilonScale: 3})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// /v1/predict with the hosted model name.
	x := tensor.NewRNG(7).NormVec(srv.Snapshot().InputDim(), 0, 1)
	body, _ := json.Marshal(httpapi.PredictRequest{X: x, Model: "fmow"})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pr httpapi.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pr.Model != "fmow" {
		t.Fatalf("/v1/predict = %d %+v", resp.StatusCode, pr)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v1/predict must not be flagged deprecated")
	}

	// A model this replica does not host → 404 listing the hosted one.
	body, _ = json.Marshal(httpapi.PredictRequest{X: x, Model: "other"})
	resp, err = http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var e httpapi.ErrorBody
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || len(e.Models) != 1 || e.Models[0] != "fmow" {
		t.Fatalf("unknown model = %d %+v, want 404 listing [fmow]", resp.StatusCode, e)
	}

	// /v1/models/{name}: hosted model card, 404 otherwise.
	resp, err = http.Get(ts.URL + "/v1/models/fmow")
	if err != nil {
		t.Fatal(err)
	}
	var card httpapi.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&card); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if card.Name != "fmow" || card.Experts != srv.Snapshot().NumExperts() {
		t.Fatalf("model card %+v", card)
	}
	wantEps := srv.Snapshot().Epsilon * 3
	if diff := card.RouteEpsilon - wantEps; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("card routeEpsilon %g, want ε×3 = %g", card.RouteEpsilon, wantEps)
	}
	resp, err = http.Get(ts.URL + "/v1/models/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/models/other = %d, want 404", resp.StatusCode)
	}

	// Legacy alias still serves, flagged deprecated with successor Link.
	body, _ = json.Marshal(map[string]any{"x": x})
	resp, err = http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict alias = %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" || !strings.Contains(resp.Header.Get("Link"), "/v1/predict") {
		t.Errorf("alias headers = Deprecation:%q Link:%q", resp.Header.Get("Deprecation"), resp.Header.Get("Link"))
	}

	// Unknown route → 404 with the live /v1 surface.
	resp, err = http.Get(ts.URL + "/v2/predict")
	if err != nil {
		t.Fatal(err)
	}
	e = httpapi.ErrorBody{}
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || len(e.Routes) == 0 {
		t.Fatalf("unknown route = %d %+v, want 404 with live routes", resp.StatusCode, e)
	}

	// GET /v1/snapshot exposes both calibrated and effective ε.
	resp, err = http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var sum httpapi.SnapshotSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.Model != "fmow" || sum.RouteEpsilon <= sum.Epsilon {
		t.Fatalf("snapshot summary must expose widened routeEpsilon: %+v", sum)
	}

	// /v1/metrics carries the effective-ε gauges, per expert included.
	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`shiftex_serve_route_epsilon{scope="calibrated"}`,
		`shiftex_serve_route_epsilon{scope="effective"}`,
		`shiftex_serve_expert_route_epsilon{expert=`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/v1/metrics missing %q in:\n%s", want, text)
		}
	}

	// /v1/state shares the cross-daemon envelope.
	resp, err = http.Get(ts.URL + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	var st httpapi.State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Daemon != "serve" || st.Serve == nil || st.Serve.Model != "fmow" {
		t.Fatalf("/v1/state envelope wrong: %+v", st)
	}
}
