package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/tensor"
)

func TestHTTPPredictAndHealth(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 2, MaxDelay: 500 * time.Microsecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	x := tensor.NewRNG(21).NormVec(srv.Snapshot().InputDim(), 0, 1)
	body, _ := json.Marshal(map[string]any{"x": x})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.Snapshot().ExpertByID(pr.Expert); !ok {
		t.Fatalf("predict answered with unknown expert %d", pr.Expert)
	}

	// Wrong dimension → 400.
	bad, _ := json.Marshal(map[string]any{"x": []float64{1}})
	resp2, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad input status %d, want 400", resp2.StatusCode)
	}

	// GET /predict → 405.
	resp3, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict status %d, want 405", resp3.StatusCode)
	}

	for _, path := range []string{"/healthz", "/snapshot"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`shiftex_serve_requests_total{outcome="ok"} 1`,
		"shiftex_serve_latency_seconds",
		"shiftex_serve_snapshot_version 1",
		"shiftex_serve_experts",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestHTTPSnapshotSwap(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]string{"path": tinyCheckpoint})
	resp, err := http.Post(ts.URL+"/snapshot", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status %d", resp.StatusCode)
	}
	var sum snapshotSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Version != 2 {
		t.Fatalf("post-swap version %d, want 2", sum.Version)
	}

	// Bad path → 422, serving keeps the old snapshot.
	bad, _ := json.Marshal(map[string]string{"path": "testdata/nope.json"})
	resp2, err := http.Post(ts.URL+"/snapshot", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad swap status %d, want 422", resp2.StatusCode)
	}
	if srv.Snapshot().Version != 2 {
		t.Fatal("failed swap must not disturb the serving snapshot")
	}
}
