package serve

import (
	"testing"

	"repro/internal/tensor"
)

func TestRouteCacheBasics(t *testing.T) {
	c := newRouteCache(2)
	a := tensor.Vector{1, 2}
	b := tensor.Vector{3, 4}
	d := tensor.Vector{5, 6}

	if _, _, ok := c.get(a, 1); ok {
		t.Fatal("empty cache must miss")
	}
	c.put(a, 1, 7, true)
	if e, m, ok := c.get(a, 1); !ok || e != 7 || !m {
		t.Fatalf("got (%d,%v,%v), want (7,true,true)", e, m, ok)
	}
	// Version mismatch is a miss (stale snapshot).
	if _, _, ok := c.get(a, 2); ok {
		t.Fatal("stale version must miss")
	}
	// Overwrite with the new version, then the old one misses.
	c.put(a, 2, 3, false)
	if e, _, ok := c.get(a, 2); !ok || e != 3 {
		t.Fatalf("overwrite lost: (%d,%v)", e, ok)
	}
	if _, _, ok := c.get(a, 1); ok {
		t.Fatal("old version must miss after overwrite")
	}

	// LRU eviction: touch a, insert b then d — b (least recent) evicts.
	c.put(b, 2, 1, false)
	c.get(a, 2)
	c.put(d, 2, 9, true)
	if _, _, ok := c.get(b, 2); ok {
		t.Fatal("LRU entry must be evicted")
	}
	if _, _, ok := c.get(a, 2); !ok {
		t.Fatal("recently used entry must survive")
	}
	if c.len() != 2 {
		t.Fatalf("len=%d, want 2", c.len())
	}
}

func TestRouteCacheDisabled(t *testing.T) {
	c := newRouteCache(-1)
	x := tensor.Vector{1}
	c.put(x, 1, 2, true)
	if _, _, ok := c.get(x, 1); ok {
		t.Fatal("disabled cache must always miss")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache must stay empty")
	}
}

// TestRouteCacheCollisionGuard pins that a hash collision cannot return the
// wrong decision: the stored input is compared bitwise on lookup.
func TestRouteCacheCollisionGuard(t *testing.T) {
	c := newRouteCache(4)
	a := tensor.Vector{1, 2}
	c.put(a, 1, 7, true)
	// Forge a colliding entry by inserting under a's slot directly: a
	// different vector that maps to the same bucket would be caught by
	// sameInput. Simulate by mutating the stored entry's input.
	el := c.m[hashInput(a)]
	el.Value.(*routeEntry).x = tensor.Vector{9, 9}
	if _, _, ok := c.get(a, 1); ok {
		t.Fatal("mismatched stored input must miss, not return a stale decision")
	}
}

func TestHashInputDistinguishesOrder(t *testing.T) {
	if hashInput(tensor.Vector{1, 2}) == hashInput(tensor.Vector{2, 1}) {
		t.Fatal("hash must depend on element order")
	}
	if hashInput(nil) != hashInput(tensor.Vector{}) {
		t.Fatal("nil and empty must hash alike")
	}
}
