package distill

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// trainTeacher fits a model on one regime's data.
func trainTeacher(t *testing.T, spec dataset.Spec, g *dataset.Generator, corr dataset.Corruption, seed uint64) *nn.MLP {
	t.Helper()
	rng := tensor.NewRNG(seed)
	uniform := tensor.Vector(stats.Uniform(spec.NumClasses))
	train, err := g.SampleSet(250, uniform, corr, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.NewMLP([]int{spec.InputDim, 32, 16, spec.NumClasses}, tensor.NewRNG(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewSGD(0.02)
	opt.Momentum = 0.9
	if _, err := nn.TrainEpochs(m, dataset.Inputs(train), dataset.Labels(train), opt, 25, 16, rng); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDistillCompressesTeacher(t *testing.T) {
	spec := dataset.FMoWSpec()
	g, err := dataset.NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	teacher := trainTeacher(t, spec, g, dataset.Corruption{}, 7)

	// Student with half the hidden width.
	student, err := nn.NewMLP([]int{spec.InputDim, 16, 8, spec.NumClasses}, tensor.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	uniform := tensor.Vector(stats.Uniform(spec.NumClasses))
	transferExs, err := g.SampleSet(300, uniform, dataset.Corruption{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	transfer := dataset.Inputs(transferExs)

	teachers := []Teacher{{Model: teacher, Weight: 1}}
	before, err := Agreement(student, teachers, transfer)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := Distill(student, teachers, transfer, Config{Epochs: 15, Momentum: 0.9}, rng)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Agreement(student, teachers, transfer)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("distillation did not raise agreement: %g -> %g", before, after)
	}
	if after < 0.7 {
		t.Fatalf("student agreement %g too low (loss %g)", after, loss)
	}
	ratio := CompressionRatio(student, teachers)
	if ratio <= 1 {
		t.Fatalf("compression ratio = %g, want > 1", ratio)
	}
}

func TestDistillMergesTwoTeachers(t *testing.T) {
	spec := dataset.FMoWSpec()
	g, err := dataset.NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	clean := trainTeacher(t, spec, g, dataset.Corruption{}, 11)
	fog := trainTeacher(t, spec, g, dataset.Corruption{Kind: dataset.CorruptFog, Severity: 3}, 13)

	student, err := nn.NewMLP([]int{spec.InputDim, 32, 16, spec.NumClasses}, tensor.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(19)
	uniform := tensor.Vector(stats.Uniform(spec.NumClasses))
	// Transfer set mixes both regimes.
	cleanX, err := g.SampleSet(150, uniform, dataset.Corruption{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fogX, err := g.SampleSet(150, uniform, dataset.Corruption{Kind: dataset.CorruptFog, Severity: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	transfer := append(dataset.Inputs(cleanX), dataset.Inputs(fogX)...)

	teachers := []Teacher{{Model: clean, Weight: 2}, {Model: fog, Weight: 1}}
	if _, err := Distill(student, teachers, transfer, Config{Epochs: 12, Momentum: 0.9}, rng); err != nil {
		t.Fatal(err)
	}
	agree, err := Agreement(student, teachers, transfer)
	if err != nil {
		t.Fatal(err)
	}
	if agree < 0.6 {
		t.Fatalf("two-teacher agreement = %g", agree)
	}
}

func TestDistillValidation(t *testing.T) {
	spec := dataset.FMoWSpec()
	rng := tensor.NewRNG(1)
	m, err := nn.NewMLP([]int{spec.InputDim, 8, spec.NumClasses + 1, spec.NumClasses}, rng)
	if err != nil {
		t.Fatal(err)
	}
	good := []Teacher{{Model: m}}
	x := []tensor.Vector{tensor.NewVector(spec.InputDim)}
	if _, err := Distill(nil, good, x, Config{}, rng); err == nil {
		t.Fatal("nil student should error")
	}
	student, err := nn.NewMLP([]int{spec.InputDim, 8, spec.NumClasses}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Distill(student, nil, x, Config{}, rng); err == nil {
		t.Fatal("no teachers should error")
	}
	if _, err := Distill(student, good, nil, Config{}, rng); err == nil {
		t.Fatal("empty transfer should error")
	}
	if _, err := Distill(student, []Teacher{{}}, x, Config{}, rng); err == nil {
		t.Fatal("nil teacher model should error")
	}
	other, err := nn.NewMLP([]int{spec.InputDim + 1, 8, spec.NumClasses}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Distill(student, []Teacher{{Model: other}}, x, Config{}, rng); err == nil {
		t.Fatal("shape-incompatible teacher should error")
	}
	if _, err := Agreement(student, good, nil); err == nil {
		t.Fatal("empty agreement transfer should error")
	}
}

func TestCompressionRatioEdge(t *testing.T) {
	if !math.IsNaN(CompressionRatio(nil, nil)) {
		t.Fatal("nil student should be NaN")
	}
}

func TestSoftGradientMatchesHardLabelAtOneHot(t *testing.T) {
	// With temperature 1 and a one-hot target, SoftGradient must equal the
	// hard-label gradient.
	rng := tensor.NewRNG(5)
	m, err := nn.NewMLP([]int{3, 6, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.5, -1, 2}
	target := tensor.Vector{0, 1, 0}
	soft, _, err := nn.SoftGradient(m, x, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Finite-difference check on a few coordinates of the soft loss.
	p := m.Params()
	const eps = 1e-5
	lossAt := func(params tensor.Vector) float64 {
		if err := m.SetParams(params); err != nil {
			t.Fatal(err)
		}
		l, err := m.Loss([]tensor.Vector{x}, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	for _, idx := range []int{0, 5, len(p) - 1} {
		plus := p.Clone()
		plus[idx] += eps
		minus := p.Clone()
		minus[idx] -= eps
		numeric := (lossAt(plus) - lossAt(minus)) / (2 * eps)
		if math.Abs(numeric-soft[idx]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("soft grad[%d] = %g, numeric %g", idx, soft[idx], numeric)
		}
	}
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	// Validation paths.
	if _, _, err := nn.SoftGradient(m, x, target, 0); err == nil {
		t.Fatal("temperature 0 should error")
	}
	if _, _, err := nn.SoftGradient(m, x, tensor.Vector{1}, 1); err == nil {
		t.Fatal("short target should error")
	}
}
