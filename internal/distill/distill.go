// Package distill implements expert compression via knowledge distillation
// — the future-work extension the paper sketches in §9 ("expert compression
// via online distillation"). A student model is trained to match the
// softened output distributions of one or more teacher experts on unlabeled
// transfer data, letting the aggregator collapse a pool of experts into a
// single compact model (or shrink one expert) without access to party data:
// the transfer set can be synthetic or public.
package distill

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config controls distillation.
type Config struct {
	// Temperature softens teacher logits (>1 reveals dark knowledge);
	// 0 means 2.
	Temperature float64
	// Epochs over the transfer set; 0 means 10.
	Epochs int
	// BatchSize for student updates; 0 means 32.
	BatchSize int
	// LR for the student optimizer; 0 means 0.02.
	LR float64
	// Momentum for the student optimizer.
	Momentum float64
}

func (c Config) withDefaults() Config {
	if c.Temperature <= 0 {
		c.Temperature = 2
	}
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.02
	}
	return c
}

// Teacher pairs an expert model with the weight of its cohort; the merged
// soft target is the cohort-weighted mixture of teacher distributions.
type Teacher struct {
	Model  *nn.MLP
	Weight float64
}

// softTargets computes the weighted soft distribution of the teachers at
// temperature T for input x. tws holds one forward workspace per teacher
// (nil entries allocate on demand), so precomputing targets over a transfer
// set reuses each teacher's buffers.
func softTargets(teachers []Teacher, tws []*nn.Workspace, x tensor.Vector, temperature float64) (tensor.Vector, error) {
	var mix tensor.Vector
	var total float64
	for i, t := range teachers {
		if tws[i] == nil {
			tws[i] = nn.NewWorkspace(t.Model)
		}
		logits, err := t.Model.ForwardWS(tws[i], x)
		if err != nil {
			return nil, err
		}
		scaled := logits.Clone()
		scaled.Scale(1 / temperature)
		p := nn.Softmax(scaled)
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		if mix == nil {
			mix = tensor.NewVector(len(p))
		}
		if err := mix.Axpy(w, p); err != nil {
			return nil, err
		}
		total += w
	}
	mix.Scale(1 / total)
	return mix, nil
}

// Distill trains the student to match the teachers' soft targets on the
// transfer inputs, returning the final mean KL(teacher||student) loss. The
// student must share input and class dimensions with every teacher; hidden
// widths may differ (that is the compression).
func Distill(student *nn.MLP, teachers []Teacher, transfer []tensor.Vector, cfg Config, rng *tensor.RNG) (float64, error) {
	if student == nil {
		return 0, errors.New("distill: nil student")
	}
	if len(teachers) == 0 {
		return 0, errors.New("distill: no teachers")
	}
	if len(transfer) == 0 {
		return 0, errors.New("distill: empty transfer set")
	}
	for i, t := range teachers {
		if t.Model == nil {
			return 0, fmt.Errorf("distill: teacher %d is nil", i)
		}
		if t.Model.InputDim() != student.InputDim() || t.Model.NumClasses() != student.NumClasses() {
			return 0, fmt.Errorf("distill: teacher %d shape (%d→%d) incompatible with student (%d→%d)",
				i, t.Model.InputDim(), t.Model.NumClasses(), student.InputDim(), student.NumClasses())
		}
	}
	cfg = cfg.withDefaults()

	// Precompute soft targets once (teachers are frozen).
	tws := make([]*nn.Workspace, len(teachers))
	targets := make([]tensor.Vector, len(transfer))
	for i, x := range transfer {
		tgt, err := softTargets(teachers, tws, x, cfg.Temperature)
		if err != nil {
			return 0, err
		}
		targets[i] = tgt
	}

	ws := nn.NewWorkspace(student)
	opt := nn.NewSGD(cfg.LR)
	opt.Momentum = cfg.Momentum
	idx := make([]int, len(transfer))
	for i := range idx {
		idx[i] = i
	}
	var lastLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			loss, err := distillBatch(ws, student, transfer, targets, idx[start:end], cfg.Temperature, opt)
			if err != nil {
				return 0, err
			}
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
	}
	return lastLoss, nil
}

// distillBatch performs one soft-label gradient step. The gradient of
// KL(q||p_student) w.r.t. student logits (at temperature T) is
// (softmax(z/T) − q)/T per example; we push it through the model using the
// same backpropagation machinery as hard labels via the workspace
// soft-label gradient entry point, accumulating the batch gradient in
// place.
func distillBatch(ws *nn.Workspace, student *nn.MLP, xs []tensor.Vector, targets []tensor.Vector, batch []int, temperature float64, opt *nn.SGD) (float64, error) {
	ws.ZeroGrads()
	var total float64
	for _, i := range batch {
		loss, err := student.SoftGradientWS(ws, xs[i], targets[i], temperature)
		if err != nil {
			return 0, err
		}
		total += loss
	}
	inv := 1 / float64(len(batch))
	for _, g := range ws.Grads() {
		g.W.Scale(inv)
		g.B.Scale(inv)
	}
	if err := opt.StepLayers(student, ws.Grads()); err != nil {
		return 0, err
	}
	return total * inv, nil
}

// Agreement returns the fraction of transfer inputs on which the student's
// argmax matches the (mixture) teachers' argmax — the compression-quality
// metric.
func Agreement(student *nn.MLP, teachers []Teacher, transfer []tensor.Vector) (float64, error) {
	if len(transfer) == 0 {
		return 0, errors.New("distill: empty transfer set")
	}
	tws := make([]*nn.Workspace, len(teachers))
	sws := nn.NewWorkspace(student)
	match := 0
	for _, x := range transfer {
		tgt, err := softTargets(teachers, tws, x, 1)
		if err != nil {
			return 0, err
		}
		pred, err := student.PredictWS(sws, x)
		if err != nil {
			return 0, err
		}
		if pred == tgt.ArgMax() {
			match++
		}
	}
	return float64(match) / float64(len(transfer)), nil
}

// CompressionRatio reports teacherParams / studentParams for a teacher
// pool, quantifying the memory saved by distillation.
func CompressionRatio(student *nn.MLP, teachers []Teacher) float64 {
	if student == nil || student.NumParams() == 0 {
		return math.NaN()
	}
	total := 0
	for _, t := range teachers {
		if t.Model != nil {
			total += t.Model.NumParams()
		}
	}
	return float64(total) / float64(student.NumParams())
}
