// Package enclave simulates the Trusted Execution Environment layer of
// ShiftEx (§5.3): parties seal their shift statistics with an authenticated
// cipher so that only code running "inside the enclave" — here, the holder
// of the session key established during attestation — can read them. The
// untrusted aggregator ferries ciphertexts it cannot open.
//
// The hardware parts of a real TEE (SGX/SEV memory encryption, remote
// attestation quotes) are simulated: attestation is a deterministic
// measurement check and sealing is AES-256-GCM, which preserves the
// dataflow and lets the §5.3 overhead experiment run.
package enclave

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/detect"
)

// KeySize is the AES-256 session key size in bytes.
const KeySize = 32

// ErrAttestation indicates an attestation report failed verification.
var ErrAttestation = errors.New("enclave: attestation verification failed")

// measurement is the simulated code-identity hash (MRENCLAVE analogue) of
// the drift-detection enclave binary.
var measurement = sha256.Sum256([]byte("shiftex-drift-enclave-v1"))

// Report is a simulated attestation report binding a session key to the
// enclave's code identity.
type Report struct {
	Measurement [32]byte
	// KeyDigest commits to the session key without revealing it.
	KeyDigest [32]byte
}

// Enclave is the trusted side: it owns the session key and unseals party
// statistics for drift detection.
type Enclave struct {
	key  []byte
	aead cipher.AEAD
}

// New creates an enclave with a fresh session key drawn from the given
// entropy source (nil means crypto/rand).
func New(entropy io.Reader) (*Enclave, error) {
	if entropy == nil {
		entropy = rand.Reader
	}
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(entropy, key); err != nil {
		return nil, fmt.Errorf("enclave: generate key: %w", err)
	}
	return fromKey(key)
}

func fromKey(key []byte) (*Enclave, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("enclave: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("enclave: gcm: %w", err)
	}
	return &Enclave{key: key, aead: aead}, nil
}

// Attest produces the attestation report a party verifies before trusting
// the enclave with statistics.
func (e *Enclave) Attest() Report {
	return Report{
		Measurement: measurement,
		KeyDigest:   sha256.Sum256(e.key),
	}
}

// Session is the party side: after verifying attestation it seals
// statistics to the enclave.
type Session struct {
	aead cipher.AEAD
}

// NewSession verifies the attestation report against the expected enclave
// measurement and the provisioned key, then returns a sealing session.
// In the simulation the key is provisioned out of band (the analogue of a
// secure-channel key exchange after attestation).
func NewSession(report Report, key []byte) (*Session, error) {
	if report.Measurement != measurement {
		return nil, fmt.Errorf("%w: unexpected measurement", ErrAttestation)
	}
	if sha256.Sum256(key) != report.KeyDigest {
		return nil, fmt.Errorf("%w: key does not match report", ErrAttestation)
	}
	e, err := fromKey(key)
	if err != nil {
		return nil, err
	}
	return &Session{aead: e.aead}, nil
}

// Key returns the enclave's session key for out-of-band provisioning in
// the simulation.
func (e *Enclave) Key() []byte {
	out := make([]byte, len(e.key))
	copy(out, e.key)
	return out
}

// seal gob-encodes v and encrypts it with a random nonce prepended.
func seal(aead cipher.AEAD, v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("enclave: encode: %w", err)
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("enclave: nonce: %w", err)
	}
	return append(nonce, aead.Seal(nil, nonce, buf.Bytes(), nil)...), nil
}

// open decrypts and gob-decodes into v.
func open(aead cipher.AEAD, data []byte, v any) error {
	if len(data) < aead.NonceSize() {
		return errors.New("enclave: ciphertext too short")
	}
	nonce, ct := data[:aead.NonceSize()], data[aead.NonceSize():]
	plain, err := aead.Open(nil, nonce, ct, nil)
	if err != nil {
		return fmt.Errorf("enclave: open: %w", err)
	}
	return gob.NewDecoder(bytes.NewReader(plain)).Decode(v)
}

// SealStats encrypts a party's shift statistics for the enclave.
func (s *Session) SealStats(st detect.PartyStats) ([]byte, error) {
	return seal(s.aead, st)
}

// OpenStats decrypts a sealed statistics bundle inside the enclave.
func (e *Enclave) OpenStats(data []byte) (detect.PartyStats, error) {
	var st detect.PartyStats
	if err := open(e.aead, data, &st); err != nil {
		return detect.PartyStats{}, err
	}
	return st, nil
}
