package enclave

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/detect"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func sampleStats() detect.PartyStats {
	return detect.PartyStats{
		PartyID:       7,
		Window:        3,
		MeanEmbedding: tensor.Vector{1.5, -2.5, 3.5},
		EmbeddingSample: []tensor.Vector{
			{1, 2, 3}, {4, 5, 6},
		},
		LabelHist:  stats.Histogram{0.25, 0.75},
		MMD:        0.42,
		JSD:        0.1,
		NumSamples: 40,
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	e, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(e.Attest(), e.Key())
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := sess.SealStats(sampleStats())
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.OpenStats(sealed)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleStats()
	if got.PartyID != want.PartyID || got.MMD != want.MMD || got.Window != want.Window {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.EmbeddingSample) != 2 || got.EmbeddingSample[1][2] != 6 {
		t.Fatalf("embedding sample mismatch: %+v", got.EmbeddingSample)
	}
}

func TestCiphertextIsOpaque(t *testing.T) {
	e, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(e.Attest(), e.Key())
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := sess.SealStats(sampleStats())
	if err != nil {
		t.Fatal(err)
	}
	// The aggregator must not see plaintext markers: gob streams embed
	// field names like "MeanEmbedding".
	if bytes.Contains(sealed, []byte("MeanEmbedding")) {
		t.Fatal("ciphertext leaks plaintext structure")
	}
	// Two seals of the same data must differ (fresh nonces).
	sealed2, err := sess.SealStats(sampleStats())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sealed, sealed2) {
		t.Fatal("nonce reuse: identical ciphertexts")
	}
}

func TestTamperingDetected(t *testing.T) {
	e, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(e.Attest(), e.Key())
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := sess.SealStats(sampleStats())
	if err != nil {
		t.Fatal(err)
	}
	sealed[len(sealed)-1] ^= 0xff
	if _, err := e.OpenStats(sealed); err == nil {
		t.Fatal("tampered ciphertext should fail")
	}
	if _, err := e.OpenStats([]byte{1, 2}); err == nil {
		t.Fatal("truncated ciphertext should fail")
	}
}

func TestWrongEnclaveCannotOpen(t *testing.T) {
	e1, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(e1.Attest(), e1.Key())
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := sess.SealStats(sampleStats())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.OpenStats(sealed); err == nil {
		t.Fatal("different enclave must not open foreign statistics")
	}
}

func TestAttestationValidation(t *testing.T) {
	e, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong key vs report digest.
	bad := make([]byte, KeySize)
	if _, err := NewSession(e.Attest(), bad); !errors.Is(err, ErrAttestation) {
		t.Fatalf("want ErrAttestation, got %v", err)
	}
	// Tampered measurement.
	rep := e.Attest()
	rep.Measurement[0] ^= 1
	if _, err := NewSession(rep, e.Key()); !errors.Is(err, ErrAttestation) {
		t.Fatalf("want ErrAttestation, got %v", err)
	}
}

func TestDeterministicEntropy(t *testing.T) {
	// A fixed entropy source produces a reproducible enclave key.
	src := bytes.NewReader(bytes.Repeat([]byte{0x42}, 64))
	e, err := New(src)
	if err != nil {
		t.Fatal(err)
	}
	if e.Key()[0] != 0x42 {
		t.Fatal("entropy source not honored")
	}
	// Short entropy errors.
	if _, err := New(bytes.NewReader([]byte{1})); err == nil {
		t.Fatal("short entropy should error")
	}
}

func TestKeyIsCopy(t *testing.T) {
	e, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	k := e.Key()
	k[0] ^= 0xff
	if bytes.Equal(k, e.Key()) {
		t.Fatal("Key must return a defensive copy")
	}
}
