// Package nn implements the compact neural-network substrate used in place
// of the paper's deep CNN encoders (LeNet-5 / ResNet / DenseNet). Models are
// multi-layer perceptrons with ReLU activations, a softmax cross-entropy
// head, and an explicit penultimate "embedding" layer: ShiftEx reads that
// layer as the latent representation fed into MMD-based covariate-shift
// detection (§4.2), exactly as the paper reads the pre-logit layer of its
// CNNs.
//
// The package exposes flattened parameter vectors so the federated layer can
// aggregate, diff, and compare models without knowing their architecture.
package nn

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// ErrDimension indicates an input or parameter vector of the wrong size.
var ErrDimension = errors.New("nn: dimension mismatch")

// Dense is a fully connected layer y = W·x + b.
type Dense struct {
	W *tensor.Matrix
	B tensor.Vector
}

// newDense builds a dense layer with He-initialized weights.
func newDense(in, out int, rng *tensor.RNG) *Dense {
	d := &Dense{W: tensor.NewMatrix(out, in), B: tensor.NewVector(out)}
	scale := 1.41421356 / sqrtf(float64(in)) // He init: sqrt(2/in)
	for i := range d.W.Data {
		d.W.Data[i] = scale * rng.Norm()
	}
	return d
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 1
	}
	// Newton iterations are unnecessary; defer to math.Sqrt via a tiny shim
	// kept separate for clarity.
	return sqrt(x)
}

// MLP is a multi-layer perceptron classifier. The activation of the last
// hidden layer (after ReLU) is the model's embedding.
type MLP struct {
	dims   []int
	layers []*Dense
}

// NewMLP builds an MLP with the given layer widths, e.g. {32, 64, 16, 10}
// for a 32-d input, one 64-d hidden layer, a 16-d embedding layer, and 10
// classes. At least input, one hidden (embedding), and output widths are
// required.
func NewMLP(dims []int, rng *tensor.RNG) (*MLP, error) {
	if len(dims) < 3 {
		return nil, fmt.Errorf("nn: need >=3 layer widths (in, hidden..., out), got %d", len(dims))
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("nn: non-positive layer width %d", d)
		}
	}
	m := &MLP{dims: append([]int(nil), dims...)}
	for i := 0; i+1 < len(dims); i++ {
		m.layers = append(m.layers, newDense(dims[i], dims[i+1], rng))
	}
	return m, nil
}

// InputDim returns the expected input width.
func (m *MLP) InputDim() int { return m.dims[0] }

// NumClasses returns the output width.
func (m *MLP) NumClasses() int { return m.dims[len(m.dims)-1] }

// EmbeddingDim returns the width of the penultimate (embedding) layer.
func (m *MLP) EmbeddingDim() int { return m.dims[len(m.dims)-2] }

// forward runs the network, returning per-layer post-activation values.
// acts[0] is the input; acts[len(layers)] holds raw logits (no softmax).
func (m *MLP) forward(x tensor.Vector) ([]tensor.Vector, error) {
	if len(x) != m.InputDim() {
		return nil, fmt.Errorf("forward: %w: input %d, want %d", ErrDimension, len(x), m.InputDim())
	}
	acts := make([]tensor.Vector, len(m.layers)+1)
	acts[0] = x
	for i, l := range m.layers {
		z, err := l.W.MulVec(acts[i])
		if err != nil {
			return nil, err
		}
		if err := z.Add(l.B); err != nil {
			return nil, err
		}
		if i < len(m.layers)-1 {
			relu(z)
		}
		acts[i+1] = z
	}
	return acts, nil
}

func relu(v tensor.Vector) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// Logits returns the raw class scores for x.
func (m *MLP) Logits(x tensor.Vector) (tensor.Vector, error) {
	acts, err := m.forward(x)
	if err != nil {
		return nil, err
	}
	return acts[len(acts)-1], nil
}

// Predict returns the argmax class for x.
func (m *MLP) Predict(x tensor.Vector) (int, error) {
	logits, err := m.Logits(x)
	if err != nil {
		return 0, err
	}
	return logits.ArgMax(), nil
}

// Embed returns the penultimate-layer activation: the latent representation
// ShiftEx uses for covariate-shift detection.
func (m *MLP) Embed(x tensor.Vector) (tensor.Vector, error) {
	acts, err := m.forward(x)
	if err != nil {
		return nil, err
	}
	return acts[len(acts)-2].Clone(), nil
}

// Softmax converts logits to a probability vector, numerically stabilized.
func Softmax(logits tensor.Vector) tensor.Vector {
	out := logits.Clone()
	if len(out) == 0 {
		return out
	}
	max := out[0]
	for _, v := range out {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range out {
		e := exp(v - max)
		out[i] = e
		sum += e
	}
	if sum == 0 {
		out.Fill(1 / float64(len(out)))
		return out
	}
	out.Scale(1 / sum)
	return out
}

// Loss returns the mean cross-entropy loss of the model over a batch.
func (m *MLP) Loss(xs []tensor.Vector, ys []int) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("nn: empty batch")
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("loss: %w: %d inputs vs %d labels", ErrDimension, len(xs), len(ys))
	}
	var total float64
	for i, x := range xs {
		logits, err := m.Logits(x)
		if err != nil {
			return 0, err
		}
		p := Softmax(logits)
		y := ys[i]
		if y < 0 || y >= len(p) {
			return 0, fmt.Errorf("nn: label %d out of range [0,%d)", y, len(p))
		}
		total += -logp(p[y])
	}
	return total / float64(len(xs)), nil
}

// Accuracy returns the fraction of correct argmax predictions over a batch.
func (m *MLP) Accuracy(xs []tensor.Vector, ys []int) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("nn: empty batch")
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("accuracy: %w: %d inputs vs %d labels", ErrDimension, len(xs), len(ys))
	}
	correct := 0
	for i, x := range xs {
		pred, err := m.Predict(x)
		if err != nil {
			return 0, err
		}
		if pred == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs)), nil
}

// gradients accumulates parameter gradients for one example into grads,
// returning the example's loss. grads must have the same shapes as m.
func (m *MLP) gradients(x tensor.Vector, y int, grads []*Dense) (float64, error) {
	acts, err := m.forward(x)
	if err != nil {
		return 0, err
	}
	logits := acts[len(acts)-1]
	p := Softmax(logits)
	if y < 0 || y >= len(p) {
		return 0, fmt.Errorf("nn: label %d out of range [0,%d)", y, len(p))
	}
	loss := -logp(p[y])

	// delta at the output layer: softmax cross-entropy gradient.
	delta := p.Clone()
	delta[y] -= 1

	for l := len(m.layers) - 1; l >= 0; l-- {
		in := acts[l]
		if err := grads[l].W.AddOuter(1, delta, in); err != nil {
			return 0, err
		}
		if err := grads[l].B.Add(delta); err != nil {
			return 0, err
		}
		if l == 0 {
			break
		}
		// Propagate: delta_prev = Wᵀ·delta ⊙ relu'(pre-act).
		prev, err := m.layers[l].W.MulVecT(delta)
		if err != nil {
			return 0, err
		}
		// acts[l] is the post-ReLU activation of layer l-1's output;
		// ReLU' is 1 where the activation is positive.
		for i := range prev {
			if acts[l][i] <= 0 {
				prev[i] = 0
			}
		}
		delta = prev
	}
	return loss, nil
}

// Clone returns a deep copy of the model.
func (m *MLP) Clone() *MLP {
	out := &MLP{dims: append([]int(nil), m.dims...)}
	out.layers = make([]*Dense, len(m.layers))
	for i, l := range m.layers {
		out.layers[i] = &Dense{W: l.W.Clone(), B: l.B.Clone()}
	}
	return out
}

// NumParams returns the total number of scalar parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.layers {
		n += len(l.W.Data) + len(l.B)
	}
	return n
}

// Params returns a flattened copy of all parameters.
func (m *MLP) Params() tensor.Vector {
	out := make(tensor.Vector, 0, m.NumParams())
	for _, l := range m.layers {
		out = append(out, l.W.Data...)
		out = append(out, l.B...)
	}
	return out
}

// SetParams loads a flattened parameter vector produced by Params.
func (m *MLP) SetParams(p tensor.Vector) error {
	if len(p) != m.NumParams() {
		return fmt.Errorf("setparams: %w: got %d, want %d", ErrDimension, len(p), m.NumParams())
	}
	off := 0
	for _, l := range m.layers {
		copy(l.W.Data, p[off:off+len(l.W.Data)])
		off += len(l.W.Data)
		copy(l.B, p[off:off+len(l.B)])
		off += len(l.B)
	}
	return nil
}

// Dims returns a copy of the layer widths.
func (m *MLP) Dims() []int { return append([]int(nil), m.dims...) }
