// Package nn implements the compact neural-network substrate used in place
// of the paper's deep CNN encoders (LeNet-5 / ResNet / DenseNet). Models are
// multi-layer perceptrons with ReLU activations, a softmax cross-entropy
// head, and an explicit penultimate "embedding" layer: ShiftEx reads that
// layer as the latent representation fed into MMD-based covariate-shift
// detection (§4.2), exactly as the paper reads the pre-logit layer of its
// CNNs.
//
// The package exposes flattened parameter vectors so the federated layer can
// aggregate, diff, and compare models without knowing their architecture.
package nn

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// ErrDimension indicates an input or parameter vector of the wrong size.
var ErrDimension = errors.New("nn: dimension mismatch")

// Dense is a fully connected layer y = W·x + b.
type Dense struct {
	W *tensor.Matrix
	B tensor.Vector
}

// newDense builds a dense layer with He-initialized weights.
func newDense(in, out int, rng *tensor.RNG) *Dense {
	d := &Dense{W: tensor.NewMatrix(out, in), B: tensor.NewVector(out)}
	scale := 1.41421356 / sqrtf(float64(in)) // He init: sqrt(2/in)
	for i := range d.W.Data {
		d.W.Data[i] = scale * rng.Norm()
	}
	return d
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 1
	}
	// Newton iterations are unnecessary; defer to math.Sqrt via a tiny shim
	// kept separate for clarity.
	return sqrt(x)
}

// MLP is a multi-layer perceptron classifier. The activation of the last
// hidden layer (after ReLU) is the model's embedding.
type MLP struct {
	dims   []int
	layers []*Dense
}

// NewMLP builds an MLP with the given layer widths, e.g. {32, 64, 16, 10}
// for a 32-d input, one 64-d hidden layer, a 16-d embedding layer, and 10
// classes. At least input, one hidden (embedding), and output widths are
// required.
func NewMLP(dims []int, rng *tensor.RNG) (*MLP, error) {
	if len(dims) < 3 {
		return nil, fmt.Errorf("nn: need >=3 layer widths (in, hidden..., out), got %d", len(dims))
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("nn: non-positive layer width %d", d)
		}
	}
	m := &MLP{dims: append([]int(nil), dims...)}
	for i := 0; i+1 < len(dims); i++ {
		m.layers = append(m.layers, newDense(dims[i], dims[i+1], rng))
	}
	return m, nil
}

// InputDim returns the expected input width.
func (m *MLP) InputDim() int { return m.dims[0] }

// NumClasses returns the output width.
func (m *MLP) NumClasses() int { return m.dims[len(m.dims)-1] }

// EmbeddingDim returns the width of the penultimate (embedding) layer.
func (m *MLP) EmbeddingDim() int { return m.dims[len(m.dims)-2] }

// forwardInto runs the network writing layer outputs into the caller-owned
// activation buffers: acts[0] is set to alias the input, acts[i+1] (length
// dims[i+1]) receives layer i's post-activation output, and the last entry
// holds raw logits (no softmax). This is the single forward implementation;
// the allocating wrappers and the Workspace path both run through it.
func (m *MLP) forwardInto(acts []tensor.Vector, x tensor.Vector) error {
	if len(x) != m.InputDim() {
		return fmt.Errorf("forward: %w: input %d, want %d", ErrDimension, len(x), m.InputDim())
	}
	acts[0] = x
	for i, l := range m.layers {
		z := acts[i+1]
		if err := tensor.MatVecInto(z, l.W, acts[i]); err != nil {
			return err
		}
		if err := z.Add(l.B); err != nil {
			return err
		}
		if i < len(m.layers)-1 {
			relu(z)
		}
	}
	return nil
}

// forward runs the network into freshly allocated buffers, returning
// per-layer post-activation values.
func (m *MLP) forward(x tensor.Vector) ([]tensor.Vector, error) {
	acts := make([]tensor.Vector, len(m.layers)+1)
	for i := range m.layers {
		acts[i+1] = tensor.NewVector(m.dims[i+1])
	}
	if err := m.forwardInto(acts, x); err != nil {
		return nil, err
	}
	return acts, nil
}

func relu(v tensor.Vector) {
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		}
	}
}

// Logits returns the raw class scores for x.
func (m *MLP) Logits(x tensor.Vector) (tensor.Vector, error) {
	acts, err := m.forward(x)
	if err != nil {
		return nil, err
	}
	return acts[len(acts)-1], nil
}

// Predict returns the argmax class for x.
func (m *MLP) Predict(x tensor.Vector) (int, error) {
	logits, err := m.Logits(x)
	if err != nil {
		return 0, err
	}
	return logits.ArgMax(), nil
}

// Embed returns the penultimate-layer activation: the latent representation
// ShiftEx uses for covariate-shift detection.
func (m *MLP) Embed(x tensor.Vector) (tensor.Vector, error) {
	acts, err := m.forward(x)
	if err != nil {
		return nil, err
	}
	return acts[len(acts)-2].Clone(), nil
}

// Softmax converts logits to a probability vector, numerically stabilized.
func Softmax(logits tensor.Vector) tensor.Vector {
	out := logits.Clone()
	softmaxInto(out, out)
	return out
}

// softmaxInto writes the stabilized softmax of v into dst (dst may alias
// v). Both buffers must have equal length.
func softmaxInto(dst, v tensor.Vector) {
	if len(dst) == 0 {
		return
	}
	max := v[0]
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i, x := range v {
		e := exp(x - max)
		dst[i] = e
		sum += e
	}
	if sum == 0 {
		dst.Fill(1 / float64(len(dst)))
		return
	}
	dst.Scale(1 / sum)
}

// errEmptyBatch is the shared empty-input error of the batch entry points.
var errEmptyBatch = errors.New("nn: empty batch")

// Loss returns the mean cross-entropy loss of the model over a batch.
func (m *MLP) Loss(xs []tensor.Vector, ys []int) (float64, error) {
	return m.LossWS(NewWorkspace(m), xs, ys)
}

// Accuracy returns the fraction of correct argmax predictions over a batch.
func (m *MLP) Accuracy(xs []tensor.Vector, ys []int) (float64, error) {
	return m.AccuracyWS(NewWorkspace(m), xs, ys)
}

// hardGradInto accumulates one example's hard-label gradients into grads
// using the caller-owned forward/backprop buffers, returning the example's
// loss. It is the shared core of GradientsWS and the allocating gradients.
func (m *MLP) hardGradInto(acts, deltas []tensor.Vector, prob tensor.Vector, grads []*Dense, x tensor.Vector, y int) (float64, error) {
	if err := m.forwardInto(acts, x); err != nil {
		return 0, err
	}
	logits := acts[len(acts)-1]
	softmaxInto(prob, logits)
	if y < 0 || y >= len(prob) {
		return 0, fmt.Errorf("nn: label %d out of range [0,%d)", y, len(prob))
	}
	loss := -logp(prob[y])

	// delta at the output layer: softmax cross-entropy gradient.
	delta := deltas[len(deltas)-1]
	copy(delta, prob)
	delta[y] -= 1

	if err := m.backpropInto(acts, deltas, grads); err != nil {
		return 0, err
	}
	return loss, nil
}

// gradients accumulates parameter gradients for one example into grads,
// returning the example's loss. grads must have the same shapes as m.
func (m *MLP) gradients(x tensor.Vector, y int, grads []*Dense) (float64, error) {
	acts, deltas, prob := m.newBackpropBuffers()
	return m.hardGradInto(acts, deltas, prob, grads, x, y)
}

// newBackpropBuffers allocates one-shot forward/backprop buffers for the
// non-workspace gradient paths.
func (m *MLP) newBackpropBuffers() (acts, deltas []tensor.Vector, prob tensor.Vector) {
	acts = make([]tensor.Vector, len(m.layers)+1)
	deltas = make([]tensor.Vector, len(m.layers))
	for i := range m.layers {
		acts[i+1] = tensor.NewVector(m.dims[i+1])
		deltas[i] = tensor.NewVector(m.dims[i+1])
	}
	return acts, deltas, tensor.NewVector(m.NumClasses())
}

// Clone returns a deep copy of the model.
func (m *MLP) Clone() *MLP {
	out := &MLP{dims: append([]int(nil), m.dims...)}
	out.layers = make([]*Dense, len(m.layers))
	for i, l := range m.layers {
		out.layers[i] = &Dense{W: l.W.Clone(), B: l.B.Clone()}
	}
	return out
}

// NumParams returns the total number of scalar parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.layers {
		n += len(l.W.Data) + len(l.B)
	}
	return n
}

// ParamCount returns the flattened parameter count of an architecture
// without building a model: Σ (dims[i]+1)·dims[i+1].
func ParamCount(dims []int) int {
	n := 0
	for i := 0; i+1 < len(dims); i++ {
		n += (dims[i] + 1) * dims[i+1]
	}
	return n
}

// Params returns a flattened copy of all parameters.
func (m *MLP) Params() tensor.Vector {
	out := make(tensor.Vector, 0, m.NumParams())
	for _, l := range m.layers {
		out = append(out, l.W.Data...)
		out = append(out, l.B...)
	}
	return out
}

// SetParams loads a flattened parameter vector produced by Params.
func (m *MLP) SetParams(p tensor.Vector) error {
	if len(p) != m.NumParams() {
		return fmt.Errorf("setparams: %w: got %d, want %d", ErrDimension, len(p), m.NumParams())
	}
	off := 0
	for _, l := range m.layers {
		copy(l.W.Data, p[off:off+len(l.W.Data)])
		off += len(l.W.Data)
		copy(l.B, p[off:off+len(l.B)])
		off += len(l.B)
	}
	return nil
}

// Dims returns a copy of the layer widths.
func (m *MLP) Dims() []int { return append([]int(nil), m.dims...) }
