package nn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestAdamConverges(t *testing.T) {
	rng := tensor.NewRNG(1)
	m, err := NewMLP([]int{2, 16, 8, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := twoBlobData(rng, 40)
	loss0, err := m.Loss(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewAdam(0.01)
	grads := func() tensor.Vector { return nil }
	_ = grads
	for e := 0; e < 10; e++ {
		for start := 0; start < len(xs); start += 16 {
			end := start + 16
			if end > len(xs) {
				end = len(xs)
			}
			if _, err := trainBatchWith(m, xs[start:end], ys[start:end], opt); err != nil {
				t.Fatal(err)
			}
		}
	}
	loss1, err := m.Loss(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if loss1 >= loss0/2 {
		t.Fatalf("adam did not converge: %g -> %g", loss0, loss1)
	}
	acc, err := m.Accuracy(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("adam accuracy = %g", acc)
	}
}

// trainBatchWith mirrors TrainBatch but accepts any Optimizer.
func trainBatchWith(m *MLP, xs []tensor.Vector, ys []int, opt Optimizer) (float64, error) {
	grads := make([]*Dense, len(m.layers))
	for i, l := range m.layers {
		grads[i] = &Dense{W: tensor.NewMatrix(l.W.Rows, l.W.Cols), B: tensor.NewVector(len(l.B))}
	}
	var total float64
	for i, x := range xs {
		loss, err := m.gradients(x, ys[i], grads)
		if err != nil {
			return 0, err
		}
		total += loss
	}
	inv := 1 / float64(len(xs))
	flat := make(tensor.Vector, 0, m.NumParams())
	for _, g := range grads {
		g.W.Scale(inv)
		g.B.Scale(inv)
		flat = append(flat, g.W.Data...)
		flat = append(flat, g.B...)
	}
	if err := opt.Step(m, flat); err != nil {
		return 0, err
	}
	return total * inv, nil
}

func TestAdamValidation(t *testing.T) {
	m := newTestMLP(t, 2, 3, 2)
	bad := NewAdam(0)
	if err := bad.Step(m, tensor.NewVector(m.NumParams())); err == nil {
		t.Fatal("lr=0 should error")
	}
	opt := NewAdam(0.01)
	if err := opt.Step(m, tensor.Vector{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("short grad = %v", err)
	}
	opt2 := NewAdam(0.01)
	opt2.ProxMu = 1
	opt2.ProxRef = tensor.Vector{1}
	if err := opt2.Step(m, tensor.NewVector(m.NumParams())); !errors.Is(err, ErrDimension) {
		t.Fatalf("bad prox ref = %v", err)
	}
}

func TestAdamProximalPullsTowardReference(t *testing.T) {
	rng := tensor.NewRNG(5)
	m, err := NewMLP([]int{2, 6, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ref := m.Params()
	xs, ys := twoBlobData(rng, 20)

	plain := m.Clone()
	prox := m.Clone()
	optPlain := NewAdam(0.02)
	optProx := NewAdam(0.02)
	optProx.ProxMu = 5
	optProx.ProxRef = ref
	for i := 0; i < 30; i++ {
		if _, err := trainBatchWith(plain, xs, ys, optPlain); err != nil {
			t.Fatal(err)
		}
		if _, err := trainBatchWith(prox, xs, ys, optProx); err != nil {
			t.Fatal(err)
		}
	}
	if tensor.Distance(prox.Params(), ref) >= tensor.Distance(plain.Params(), ref) {
		t.Fatal("adam proximal term should stay closer to reference")
	}
}

func TestLRSchedules(t *testing.T) {
	if got := ConstantLR(0.1).Rate(99); got != 0.1 {
		t.Fatalf("constant = %g", got)
	}
	s := StepDecayLR{Base: 1, Factor: 0.5, Every: 10}
	if got := s.Rate(0); got != 1 {
		t.Fatalf("step decay at 0 = %g", got)
	}
	if got := s.Rate(10); got != 0.5 {
		t.Fatalf("step decay at 10 = %g", got)
	}
	if got := s.Rate(25); got != 0.25 {
		t.Fatalf("step decay at 25 = %g", got)
	}
	if got := (StepDecayLR{Base: 2}).Rate(50); got != 2 {
		t.Fatalf("degenerate step decay = %g", got)
	}

	c := CosineLR{Base: 1, Floor: 0.1, Horizon: 100}
	if got := c.Rate(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine start = %g", got)
	}
	if got := c.Rate(100); got != 0.1 {
		t.Fatalf("cosine end = %g", got)
	}
	mid := c.Rate(50)
	if mid <= 0.1 || mid >= 1 {
		t.Fatalf("cosine mid = %g", mid)
	}
	// Monotone decreasing.
	prev := math.Inf(1)
	for step := 0; step <= 100; step += 10 {
		r := c.Rate(step)
		if r > prev {
			t.Fatalf("cosine not monotone at %d: %g > %g", step, r, prev)
		}
		prev = r
	}
	if got := (CosineLR{Base: 1, Floor: 0.1}).Rate(5); got != 0.1 {
		t.Fatalf("zero-horizon cosine = %g", got)
	}
}

func TestTrainEpochsSched(t *testing.T) {
	rng := tensor.NewRNG(7)
	m, err := NewMLP([]int{2, 12, 6, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := twoBlobData(rng, 30)
	opt := NewSGD(0.02)
	opt.Momentum = 0.9
	sched := CosineLR{Base: 0.05, Floor: 0.005, Horizon: 40}
	if _, err := TrainEpochsSched(m, xs, ys, opt, sched, 10, 16, rng); err != nil {
		t.Fatal(err)
	}
	acc, err := m.Accuracy(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("scheduled training accuracy = %g", acc)
	}
	// Validation.
	if _, err := TrainEpochsSched(m, xs, ys, opt, nil, 1, 16, rng); err == nil {
		t.Fatal("nil schedule should error")
	}
	if _, err := TrainEpochsSched(m, nil, nil, opt, sched, 1, 16, rng); err == nil {
		t.Fatal("empty data should error")
	}
	if _, err := TrainEpochsSched(m, xs, ys[:1], opt, sched, 1, 16, rng); !errors.Is(err, ErrDimension) {
		t.Fatal("mismatched labels should error")
	}
	if _, err := TrainEpochsSched(m, xs, ys, opt, sched, 0, 16, rng); err == nil {
		t.Fatal("zero epochs should error")
	}
}
