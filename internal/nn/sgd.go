package nn

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// SGD is a stochastic gradient descent optimizer with optional momentum,
// weight decay, and a FedProx proximal term μ/2·||θ - θ_ref||² that pulls
// local updates toward a reference (global) model.
//
// Steps mutate the model's parameters layer-wise in place; no flattened
// copy of the parameters is ever materialized. Optimizer state (velocity)
// is kept as one flat vector indexed by parameter offset, so Step and
// StepLayers share state and produce bit-identical updates.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	// ProxMu and ProxRef enable the FedProx proximal term when ProxMu > 0.
	// ProxRef must be a flattened parameter vector of the trained model.
	ProxMu  float64
	ProxRef tensor.Vector

	velocity tensor.Vector
}

// NewSGD returns an optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// prepare validates the optimizer against a model with n parameters and
// lazily sizes the velocity state.
func (o *SGD) prepare(n int) error {
	if o.LR <= 0 {
		return errors.New("nn: learning rate must be positive")
	}
	if o.ProxMu > 0 && len(o.ProxRef) != n {
		return fmt.Errorf("sgd step: %w: prox ref %d vs params %d", ErrDimension, len(o.ProxRef), n)
	}
	if o.Momentum > 0 {
		if o.velocity == nil {
			o.velocity = tensor.NewVector(n)
		}
		if len(o.velocity) != n {
			return fmt.Errorf("sgd step: %w: velocity %d vs params %d", ErrDimension, len(o.velocity), n)
		}
	}
	return nil
}

// stepSegment applies the SGD update rule to one contiguous parameter
// segment p with gradient g, where off is the segment's offset into the
// flattened parameter vector (indexing velocity and ProxRef). Per element:
// eff = g + weightDecay·θ + μ·(θ − θ_ref); v = momentum·v + eff;
// θ -= lr·(v or eff).
func (o *SGD) stepSegment(p, g []float64, off int) {
	for i := range p {
		eff := g[i]
		if o.WeightDecay > 0 {
			eff += o.WeightDecay * p[i]
		}
		if o.ProxMu > 0 {
			eff += o.ProxMu * p[i]
			eff -= o.ProxMu * o.ProxRef[off+i]
		}
		if o.Momentum > 0 {
			v := o.Momentum*o.velocity[off+i] + eff
			o.velocity[off+i] = v
			eff = v
		}
		p[i] -= o.LR * eff
	}
}

// Step applies one gradient step to model m given the flattened gradient g
// (already averaged over the batch).
func (o *SGD) Step(m *MLP, g tensor.Vector) error {
	if o.LR <= 0 {
		return errors.New("nn: learning rate must be positive")
	}
	n := m.NumParams()
	if len(g) != n {
		return fmt.Errorf("sgd step: %w: grad %d vs params %d", ErrDimension, len(g), n)
	}
	if err := o.prepare(n); err != nil {
		return err
	}
	off := 0
	for _, l := range m.layers {
		o.stepSegment(l.W.Data, g[off:off+len(l.W.Data)], off)
		off += len(l.W.Data)
		o.stepSegment(l.B, g[off:off+len(l.B)], off)
		off += len(l.B)
	}
	return nil
}

// StepLayers applies one gradient step from per-layer gradient accumulators
// (e.g. Workspace.Grads()), updating the model in place with zero
// allocations at steady state. Bit-identical to Step on the flattened
// concatenation of grads.
func (o *SGD) StepLayers(m *MLP, grads []*Dense) error {
	if err := checkGradShapes(m, grads); err != nil {
		return err
	}
	if err := o.prepare(m.NumParams()); err != nil {
		return err
	}
	off := 0
	for li, l := range m.layers {
		o.stepSegment(l.W.Data, grads[li].W.Data, off)
		off += len(l.W.Data)
		o.stepSegment(l.B, grads[li].B, off)
		off += len(l.B)
	}
	return nil
}

// checkGradShapes validates per-layer gradient accumulators against m.
func checkGradShapes(m *MLP, grads []*Dense) error {
	if len(grads) != len(m.layers) {
		return fmt.Errorf("step: %w: %d gradient layers vs %d model layers", ErrDimension, len(grads), len(m.layers))
	}
	for i, l := range m.layers {
		g := grads[i]
		if g == nil || g.W.Rows != l.W.Rows || g.W.Cols != l.W.Cols || len(g.B) != len(l.B) {
			return fmt.Errorf("step: %w: gradient layer %d shape mismatch", ErrDimension, i)
		}
	}
	return nil
}

// TrainBatchWS computes the average gradient of the model over a mini-batch
// into the workspace accumulators and applies one optimizer step, returning
// the pre-step mean loss. The steady-state allocation count is zero.
func TrainBatchWS(ws *Workspace, m *MLP, xs []tensor.Vector, ys []int, opt Optimizer) (float64, error) {
	if len(xs) == 0 {
		return 0, errEmptyBatch
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("train: %w: %d inputs vs %d labels", ErrDimension, len(xs), len(ys))
	}
	ws.ZeroGrads()
	var total float64
	for i, x := range xs {
		loss, err := m.GradientsWS(ws, x, ys[i])
		if err != nil {
			return 0, err
		}
		total += loss
	}
	inv := 1 / float64(len(xs))
	for _, g := range ws.grads {
		g.W.Scale(inv)
		g.B.Scale(inv)
	}
	if err := opt.StepLayers(m, ws.grads); err != nil {
		return 0, err
	}
	return total * inv, nil
}

// TrainBatch computes the average gradient of the model over a mini-batch
// and applies one optimizer step, returning the pre-step mean loss. It
// allocates a workspace per call; loops should use TrainBatchWS.
func TrainBatch(m *MLP, xs []tensor.Vector, ys []int, opt *SGD) (float64, error) {
	return TrainBatchWS(NewWorkspace(m), m, xs, ys, opt)
}

// TrainEpochsWS runs full passes of mini-batch SGD over a dataset, shuffling
// each epoch, and returns the final epoch's mean loss. All per-batch scratch
// state lives in ws, so an epoch loop is allocation-free after warm-up.
func TrainEpochsWS(ws *Workspace, m *MLP, xs []tensor.Vector, ys []int, opt *SGD, epochs, batchSize int, rng *tensor.RNG) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("nn: empty dataset")
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("train epochs: %w: %d inputs vs %d labels", ErrDimension, len(xs), len(ys))
	}
	if epochs <= 0 {
		return 0, errors.New("nn: epochs must be positive")
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	bx := make([]tensor.Vector, 0, batchSize)
	by := make([]int, 0, batchSize)
	var lastLoss float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(idx); start += batchSize {
			end := start + batchSize
			if end > len(idx) {
				end = len(idx)
			}
			bx = bx[:0]
			by = by[:0]
			for _, i := range idx[start:end] {
				bx = append(bx, xs[i])
				by = append(by, ys[i])
			}
			loss, err := TrainBatchWS(ws, m, bx, by, opt)
			if err != nil {
				return 0, err
			}
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
	}
	return lastLoss, nil
}

// TrainEpochs runs full passes of mini-batch SGD over a dataset, shuffling
// each epoch, and returns the final epoch's mean loss.
func TrainEpochs(m *MLP, xs []tensor.Vector, ys []int, opt *SGD, epochs, batchSize int, rng *tensor.RNG) (float64, error) {
	return TrainEpochsWS(NewWorkspace(m), m, xs, ys, opt, epochs, batchSize, rng)
}

// ModelSimilarity returns the cosine similarity between two models'
// flattened parameter vectors — the MODELSIMILARITY predicate of
// Algorithm 2 used for expert consolidation (§5.2.5).
func ModelSimilarity(a, b *MLP) (float64, error) {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		return 0, fmt.Errorf("similarity: %w: %d vs %d", ErrDimension, len(pa), len(pb))
	}
	return tensor.CosineSimilarity(pa, pb), nil
}

// MergeModels returns a new model whose parameters are the weighted average
// of the inputs — the CONSOLIDATEEXPERTS step of Algorithm 2. Weights are
// typically the experts' cohort sizes.
func MergeModels(a, b *MLP, wa, wb float64) (*MLP, error) {
	if wa < 0 || wb < 0 || wa+wb == 0 {
		return nil, fmt.Errorf("nn: invalid merge weights %g, %g", wa, wb)
	}
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		return nil, fmt.Errorf("merge: %w: %d vs %d", ErrDimension, len(pa), len(pb))
	}
	merged, err := tensor.WeightedMean([]tensor.Vector{pa, pb}, []float64{wa, wb})
	if err != nil {
		return nil, err
	}
	out := a.Clone()
	if err := out.SetParams(merged); err != nil {
		return nil, err
	}
	return out, nil
}
