package nn

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// SGD is a stochastic gradient descent optimizer with optional momentum,
// weight decay, and a FedProx proximal term μ/2·||θ - θ_ref||² that pulls
// local updates toward a reference (global) model.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	// ProxMu and ProxRef enable the FedProx proximal term when ProxMu > 0.
	// ProxRef must be a flattened parameter vector of the trained model.
	ProxMu  float64
	ProxRef tensor.Vector

	velocity tensor.Vector
}

// NewSGD returns an optimizer with the given learning rate.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step applies one gradient step to model m given the flattened gradient g
// (already averaged over the batch).
func (o *SGD) Step(m *MLP, g tensor.Vector) error {
	if o.LR <= 0 {
		return errors.New("nn: learning rate must be positive")
	}
	p := m.Params()
	if len(g) != len(p) {
		return fmt.Errorf("sgd step: %w: grad %d vs params %d", ErrDimension, len(g), len(p))
	}
	// Effective gradient: g + weightDecay·θ + μ·(θ - θ_ref).
	eff := g.Clone()
	if o.WeightDecay > 0 {
		if err := eff.Axpy(o.WeightDecay, p); err != nil {
			return err
		}
	}
	if o.ProxMu > 0 {
		if len(o.ProxRef) != len(p) {
			return fmt.Errorf("sgd step: %w: prox ref %d vs params %d", ErrDimension, len(o.ProxRef), len(p))
		}
		if err := eff.Axpy(o.ProxMu, p); err != nil {
			return err
		}
		if err := eff.Axpy(-o.ProxMu, o.ProxRef); err != nil {
			return err
		}
	}
	if o.Momentum > 0 {
		if o.velocity == nil {
			o.velocity = tensor.NewVector(len(p))
		}
		if len(o.velocity) != len(p) {
			return fmt.Errorf("sgd step: %w: velocity %d vs params %d", ErrDimension, len(o.velocity), len(p))
		}
		o.velocity.Scale(o.Momentum)
		if err := o.velocity.Add(eff); err != nil {
			return err
		}
		eff = o.velocity
	}
	if err := p.Axpy(-o.LR, eff); err != nil {
		return err
	}
	return m.SetParams(p)
}

// TrainBatch computes the average gradient of the model over a mini-batch
// and applies one optimizer step, returning the pre-step mean loss.
func TrainBatch(m *MLP, xs []tensor.Vector, ys []int, opt *SGD) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("nn: empty batch")
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("train: %w: %d inputs vs %d labels", ErrDimension, len(xs), len(ys))
	}
	grads := make([]*Dense, len(m.layers))
	for i, l := range m.layers {
		grads[i] = &Dense{W: tensor.NewMatrix(l.W.Rows, l.W.Cols), B: tensor.NewVector(len(l.B))}
	}
	var total float64
	for i, x := range xs {
		loss, err := m.gradients(x, ys[i], grads)
		if err != nil {
			return 0, err
		}
		total += loss
	}
	inv := 1 / float64(len(xs))
	flat := make(tensor.Vector, 0, m.NumParams())
	for _, g := range grads {
		g.W.Scale(inv)
		g.B.Scale(inv)
		flat = append(flat, g.W.Data...)
		flat = append(flat, g.B...)
	}
	if err := opt.Step(m, flat); err != nil {
		return 0, err
	}
	return total * inv, nil
}

// TrainEpochs runs full passes of mini-batch SGD over a dataset, shuffling
// each epoch, and returns the final epoch's mean loss.
func TrainEpochs(m *MLP, xs []tensor.Vector, ys []int, opt *SGD, epochs, batchSize int, rng *tensor.RNG) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("nn: empty dataset")
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("train epochs: %w: %d inputs vs %d labels", ErrDimension, len(xs), len(ys))
	}
	if epochs <= 0 {
		return 0, errors.New("nn: epochs must be positive")
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	bx := make([]tensor.Vector, 0, batchSize)
	by := make([]int, 0, batchSize)
	var lastLoss float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(idx); start += batchSize {
			end := start + batchSize
			if end > len(idx) {
				end = len(idx)
			}
			bx = bx[:0]
			by = by[:0]
			for _, i := range idx[start:end] {
				bx = append(bx, xs[i])
				by = append(by, ys[i])
			}
			loss, err := TrainBatch(m, bx, by, opt)
			if err != nil {
				return 0, err
			}
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
	}
	return lastLoss, nil
}

// ModelSimilarity returns the cosine similarity between two models'
// flattened parameter vectors — the MODELSIMILARITY predicate of
// Algorithm 2 used for expert consolidation (§5.2.5).
func ModelSimilarity(a, b *MLP) (float64, error) {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		return 0, fmt.Errorf("similarity: %w: %d vs %d", ErrDimension, len(pa), len(pb))
	}
	return tensor.CosineSimilarity(pa, pb), nil
}

// MergeModels returns a new model whose parameters are the weighted average
// of the inputs — the CONSOLIDATEEXPERTS step of Algorithm 2. Weights are
// typically the experts' cohort sizes.
func MergeModels(a, b *MLP, wa, wb float64) (*MLP, error) {
	if wa < 0 || wb < 0 || wa+wb == 0 {
		return nil, fmt.Errorf("nn: invalid merge weights %g, %g", wa, wb)
	}
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		return nil, fmt.Errorf("merge: %w: %d vs %d", ErrDimension, len(pa), len(pb))
	}
	merged, err := tensor.WeightedMean([]tensor.Vector{pa, pb}, []float64{wa, wb})
	if err != nil {
		return nil, err
	}
	out := a.Clone()
	if err := out.SetParams(merged); err != nil {
		return nil, err
	}
	return out, nil
}
