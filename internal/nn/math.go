package nn

import "math"

// Thin wrappers keep math usage in one place and guard the log of
// vanishing probabilities.

func exp(x float64) float64  { return math.Exp(x) }
func sqrt(x float64) float64 { return math.Sqrt(x) }

// logp returns log(p) clamped away from -Inf for p → 0.
func logp(p float64) float64 {
	const floor = 1e-12
	if p < floor {
		p = floor
	}
	return math.Log(p)
}
