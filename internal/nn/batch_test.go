package nn

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/tensor"
)

// The batched-forward contract: every *BatchWS path is bit-identical to
// running the per-sample *WS path over the batch (the GEMM kernels preserve
// per-element accumulation order), including batch=1 and ragged sizes, and
// a warm workspace performs zero heap allocations.

func TestForwardBatchWSMatchesPerSample(t *testing.T) {
	m, xs, _ := testModelAndBatch(t)
	ws := NewWorkspace(m)
	bw := NewBatchWorkspace(m, 8) // smaller than len(xs): exercises growth
	for _, n := range []int{1, 3, 8, 24} {
		batch := xs[:n]
		logits, err := m.ForwardBatchWS(bw, batch)
		if err != nil {
			t.Fatal(err)
		}
		if logits.Rows != n || logits.Cols != m.NumClasses() {
			t.Fatalf("batch %d: logits %dx%d, want %dx%d", n, logits.Rows, logits.Cols, n, m.NumClasses())
		}
		for i, x := range batch {
			want, err := m.ForwardWS(ws, x)
			if err != nil {
				t.Fatal(err)
			}
			row := logits.Row(i)
			for j := range want {
				if row[j] != want[j] {
					t.Fatalf("batch %d: logits[%d][%d] = %g, per-sample %g", n, i, j, row[j], want[j])
				}
			}
		}
	}
}

func TestEmbedBatchWSMatchesPerSample(t *testing.T) {
	m, xs, _ := testModelAndBatch(t)
	ws := NewWorkspace(m)
	bw := NewBatchWorkspace(m, len(xs))
	emb, err := m.EmbedBatchWS(bw, xs)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Rows != len(xs) || emb.Cols != m.EmbeddingDim() {
		t.Fatalf("embeddings %dx%d, want %dx%d", emb.Rows, emb.Cols, len(xs), m.EmbeddingDim())
	}
	for i, x := range xs {
		want, err := m.EmbedWS(ws, x)
		if err != nil {
			t.Fatal(err)
		}
		row := emb.Row(i)
		for j := range want {
			if row[j] != want[j] {
				t.Fatalf("embedding[%d][%d] = %g, per-sample %g", i, j, row[j], want[j])
			}
		}
	}
}

func TestPredictBatchWSMatchesPerSample(t *testing.T) {
	m, xs, _ := testModelAndBatch(t)
	ws := NewWorkspace(m)
	bw := NewBatchWorkspace(m, 4)
	classes := make([]int, len(xs))
	// Ragged drain: consume the batch in uneven chunks like the serving
	// dispatcher's final flush does.
	for start := 0; start < len(xs); {
		n := 5
		if start+n > len(xs) {
			n = len(xs) - start // ragged final batch
		}
		if err := m.PredictBatchWS(bw, xs[start:start+n], classes[start:start+n]); err != nil {
			t.Fatal(err)
		}
		start += n
	}
	for i, x := range xs {
		want, err := m.PredictWS(ws, x)
		if err != nil {
			t.Fatal(err)
		}
		if classes[i] != want {
			t.Fatalf("class[%d] = %d, per-sample %d", i, classes[i], want)
		}
	}
}

func TestBatchWorkspaceErrors(t *testing.T) {
	m, xs, _ := testModelAndBatch(t)
	bw := NewBatchWorkspace(m, 4)
	if _, err := m.ForwardBatchWS(bw, nil); !errors.Is(err, errEmptyBatch) {
		t.Fatalf("empty batch: %v", err)
	}
	if err := m.PredictBatchWS(bw, xs[:2], make([]int, 3)); !errors.Is(err, ErrDimension) {
		t.Fatalf("classes length mismatch: %v", err)
	}
	if _, err := m.ForwardBatchWS(bw, []tensor.Vector{tensor.NewVector(3)}); !errors.Is(err, ErrDimension) {
		t.Fatalf("bad input dim: %v", err)
	}
	other, err := NewMLP([]int{12, 10, 8, 5}, tensor.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ForwardBatchWS(bw, xs[:1]); !errors.Is(err, ErrDimension) {
		t.Fatalf("wrong arch workspace: %v", err)
	}
	if !bw.FitsDims(m.Dims()) || bw.FitsDims(other.Dims()) {
		t.Fatal("FitsDims disagrees with check")
	}
}

func TestBatchWorkspaceGrowth(t *testing.T) {
	m, xs, _ := testModelAndBatch(t)
	bw := NewBatchWorkspace(m, 2)
	if bw.Cap() != 2 {
		t.Fatalf("cap = %d, want 2", bw.Cap())
	}
	classes := make([]int, len(xs))
	if err := m.PredictBatchWS(bw, xs, classes); err != nil {
		t.Fatal(err)
	}
	if bw.Cap() < len(xs) {
		t.Fatalf("cap = %d after batch of %d", bw.Cap(), len(xs))
	}
	// Shrinking back to a small batch reuses the grown storage.
	if err := m.PredictBatchWS(bw, xs[:1], classes[:1]); err != nil {
		t.Fatal(err)
	}
}

func TestBatchForwardAllocateNothing(t *testing.T) {
	m, xs, _ := testModelAndBatch(t)
	bw := NewBatchWorkspace(m, len(xs))
	classes := make([]int, len(xs))
	if n := testing.AllocsPerRun(20, func() {
		if err := m.PredictBatchWS(bw, xs, classes); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("PredictBatchWS allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		if _, err := m.EmbedBatchWS(bw, xs[:7]); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("EmbedBatchWS allocates %v per run, want 0", n)
	}
}

// BenchmarkPredictBatchWS measures whole-batch inference across batch
// sizes against the per-sample PredictWS loop it replaces, on the
// realistic 128-wide arch the tracing benchmark uses.
func BenchmarkPredictBatchWS(b *testing.B) {
	m, err := NewMLP([]int{32, 128, 64, 10}, tensor.NewRNG(31))
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(32)
	for _, bs := range []int{1, 8, 32, 128} {
		xs := make([]tensor.Vector, bs)
		for i := range xs {
			xs[i] = rng.NormVec(32, 0, 1)
		}
		classes := make([]int, bs)
		bw := NewBatchWorkspace(m, bs)
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := m.PredictBatchWS(bw, xs, classes); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*float64(bs)/b.Elapsed().Seconds(), "preds/s")
		})
		ws := NewWorkspace(m)
		b.Run(fmt.Sprintf("persample/batch=%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, x := range xs {
					if _, err := m.PredictWS(ws, x); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.N)*float64(bs)/b.Elapsed().Seconds(), "preds/s")
		})
	}
}
