package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Workspace owns every buffer one training/evaluation loop needs —
// activations, backprop deltas, the softmax probability vector, and a full
// set of gradient accumulators — allocated once for a given architecture
// and reused across calls. The *WS methods on MLP write into these buffers
// instead of allocating, which takes the per-example cost of forward,
// backward, and optimizer steps to zero heap allocations.
//
// Ownership and aliasing rules:
//
//   - Buffers returned by ForwardWS/EmbedWS (and Grads) alias workspace
//     storage: they are valid until the next call that uses the workspace.
//     Clone anything that must be retained.
//   - A workspace fits any model with the same layer widths, so one
//     workspace can serve many models of one architecture (e.g. all experts
//     of a federation) — but only one at a time.
//   - Workspaces are not safe for concurrent use; give each goroutine its
//     own (see fl.LocalRunner's per-worker pool).
type Workspace struct {
	dims []int
	// acts[0] aliases the current input; acts[i+1] holds layer i's
	// post-activation output.
	acts []tensor.Vector
	// deltas[l] holds the backprop delta at layer l's output.
	deltas []tensor.Vector
	// prob holds the softmax distribution of the last forward pass.
	prob tensor.Vector
	// grads accumulates parameter gradients, one *Dense per layer.
	grads []*Dense
}

// NewWorkspace allocates a workspace fitting m's architecture.
func NewWorkspace(m *MLP) *Workspace {
	return NewWorkspaceDims(m.dims)
}

// NewWorkspaceDims allocates a workspace for the given layer widths
// (the same slice NewMLP takes). All buffers are carved from a single
// tensor.Workspace arena so the whole thing is a handful of allocations.
func NewWorkspaceDims(dims []int) *Workspace {
	layers := len(dims) - 1
	classes := dims[len(dims)-1]
	need := classes
	for i := 1; i < len(dims); i++ {
		need += 2 * dims[i] // one activation + one delta per layer output
	}
	for i := 0; i < layers; i++ {
		need += dims[i]*dims[i+1] + dims[i+1] // gradient W + B
	}
	arena := tensor.NewWorkspace(need)

	ws := &Workspace{
		dims:   append([]int(nil), dims...),
		acts:   make([]tensor.Vector, layers+1),
		deltas: make([]tensor.Vector, layers),
		grads:  make([]*Dense, layers),
	}
	for i := 0; i < layers; i++ {
		ws.acts[i+1] = arena.Vec(dims[i+1])
		ws.deltas[i] = arena.Vec(dims[i+1])
		ws.grads[i] = &Dense{W: arena.Mat(dims[i+1], dims[i]), B: arena.Vec(dims[i+1])}
	}
	ws.prob = arena.Vec(classes)
	return ws
}

// Fits reports whether the workspace matches m's layer widths.
func (ws *Workspace) Fits(m *MLP) bool { return ws.FitsDims(m.dims) }

// FitsDims reports whether the workspace matches the given layer widths.
func (ws *Workspace) FitsDims(dims []int) bool {
	if len(ws.dims) != len(dims) {
		return false
	}
	for i, d := range ws.dims {
		if d != dims[i] {
			return false
		}
	}
	return true
}

// check returns an error when the workspace does not fit m.
func (ws *Workspace) check(m *MLP) error {
	if !ws.Fits(m) {
		return fmt.Errorf("nn: workspace dims %v do not fit model dims %v: %w", ws.dims, m.dims, ErrDimension)
	}
	return nil
}

// Grads returns the gradient accumulators (aliased workspace storage).
func (ws *Workspace) Grads() []*Dense { return ws.grads }

// ZeroGrads resets every gradient accumulator to zero, the required state
// before a fresh round of GradientsWS/SoftGradientWS accumulation.
func (ws *Workspace) ZeroGrads() {
	for _, g := range ws.grads {
		g.W.Zero()
		g.B.Fill(0)
	}
}

// ForwardWS runs the network on x, returning the raw logits. The returned
// vector aliases workspace storage and is valid until the next use of ws.
func (m *MLP) ForwardWS(ws *Workspace, x tensor.Vector) (tensor.Vector, error) {
	if err := ws.check(m); err != nil {
		return nil, err
	}
	if err := m.forwardInto(ws.acts, x); err != nil {
		return nil, err
	}
	return ws.acts[len(ws.acts)-1], nil
}

// EmbedWS returns the penultimate-layer activation. The returned vector
// aliases workspace storage; clone it if it must survive the next call.
func (m *MLP) EmbedWS(ws *Workspace, x tensor.Vector) (tensor.Vector, error) {
	if _, err := m.ForwardWS(ws, x); err != nil {
		return nil, err
	}
	return ws.acts[len(ws.acts)-2], nil
}

// PredictWS returns the argmax class for x without allocating.
func (m *MLP) PredictWS(ws *Workspace, x tensor.Vector) (int, error) {
	logits, err := m.ForwardWS(ws, x)
	if err != nil {
		return 0, err
	}
	return logits.ArgMax(), nil
}

// LossExampleWS returns one example's cross-entropy loss, reusing ws.
func (m *MLP) LossExampleWS(ws *Workspace, x tensor.Vector, y int) (float64, error) {
	logits, err := m.ForwardWS(ws, x)
	if err != nil {
		return 0, err
	}
	softmaxInto(ws.prob, logits)
	if y < 0 || y >= len(ws.prob) {
		return 0, fmt.Errorf("nn: label %d out of range [0,%d)", y, len(ws.prob))
	}
	return -logp(ws.prob[y]), nil
}

// LossWS returns the mean cross-entropy loss over a batch, reusing ws.
func (m *MLP) LossWS(ws *Workspace, xs []tensor.Vector, ys []int) (float64, error) {
	if len(xs) == 0 {
		return 0, errEmptyBatch
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("loss: %w: %d inputs vs %d labels", ErrDimension, len(xs), len(ys))
	}
	var total float64
	for i, x := range xs {
		loss, err := m.LossExampleWS(ws, x, ys[i])
		if err != nil {
			return 0, err
		}
		total += loss
	}
	return total / float64(len(xs)), nil
}

// AccuracyWS returns the fraction of correct argmax predictions, reusing ws.
func (m *MLP) AccuracyWS(ws *Workspace, xs []tensor.Vector, ys []int) (float64, error) {
	if len(xs) == 0 {
		return 0, errEmptyBatch
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("accuracy: %w: %d inputs vs %d labels", ErrDimension, len(xs), len(ys))
	}
	correct := 0
	for i, x := range xs {
		pred, err := m.PredictWS(ws, x)
		if err != nil {
			return 0, err
		}
		if pred == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs)), nil
}

// GradientsWS accumulates one example's parameter gradients into ws.Grads()
// and returns the example's loss. Call ws.ZeroGrads() before a fresh batch;
// successive calls accumulate, exactly like the allocating gradient path.
func (m *MLP) GradientsWS(ws *Workspace, x tensor.Vector, y int) (float64, error) {
	if err := ws.check(m); err != nil {
		return 0, err
	}
	return m.hardGradInto(ws.acts, ws.deltas, ws.prob, ws.grads, x, y)
}
