package nn

import (
	"testing"

	"repro/internal/tensor"
)

// The workspace contract has two halves, each pinned here: the *WS paths
// are bit-identical to the allocating paths (parity tests), and they stop
// allocating once warm (AllocsPerRun tests — the regression guard for the
// zero-allocation kernels).

func testModelAndBatch(t *testing.T) (*MLP, []tensor.Vector, []int) {
	t.Helper()
	m, err := NewMLP([]int{12, 24, 8, 5}, tensor.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(22)
	xs := make([]tensor.Vector, 24)
	ys := make([]int, 24)
	for i := range xs {
		xs[i] = rng.NormVec(12, 0, 1)
		ys[i] = rng.Intn(5)
	}
	return m, xs, ys
}

func TestForwardWSMatchesLogits(t *testing.T) {
	m, xs, _ := testModelAndBatch(t)
	ws := NewWorkspace(m)
	for _, x := range xs {
		want, err := m.Logits(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.ForwardWS(ws, x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("logit[%d] = %g, allocating path %g", i, got[i], want[i])
			}
		}
		emb, err := m.Embed(x)
		if err != nil {
			t.Fatal(err)
		}
		embWS, err := m.EmbedWS(ws, x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range emb {
			if embWS[i] != emb[i] {
				t.Fatalf("embedding[%d] = %g, allocating path %g", i, embWS[i], emb[i])
			}
		}
	}
}

func TestGradientsWSMatchesGradients(t *testing.T) {
	m, xs, ys := testModelAndBatch(t)
	ws := NewWorkspace(m)
	ws.ZeroGrads()
	grads := make([]*Dense, len(m.layers))
	for i, l := range m.layers {
		grads[i] = &Dense{W: tensor.NewMatrix(l.W.Rows, l.W.Cols), B: tensor.NewVector(len(l.B))}
	}
	for b := range xs {
		lossA, err := m.gradients(xs[b], ys[b], grads)
		if err != nil {
			t.Fatal(err)
		}
		lossB, err := m.GradientsWS(ws, xs[b], ys[b])
		if err != nil {
			t.Fatal(err)
		}
		if lossA != lossB {
			t.Fatalf("example %d: loss %g vs %g", b, lossB, lossA)
		}
	}
	for l := range grads {
		for i := range grads[l].W.Data {
			if ws.grads[l].W.Data[i] != grads[l].W.Data[i] {
				t.Fatalf("layer %d W grad[%d]: %g vs %g", l, i, ws.grads[l].W.Data[i], grads[l].W.Data[i])
			}
		}
		for i := range grads[l].B {
			if ws.grads[l].B[i] != grads[l].B[i] {
				t.Fatalf("layer %d B grad[%d]: %g vs %g", l, i, ws.grads[l].B[i], grads[l].B[i])
			}
		}
	}
}

// fullSGD exercises every optional term at once.
func fullSGD(ref tensor.Vector) *SGD {
	o := NewSGD(0.05)
	o.Momentum = 0.9
	o.WeightDecay = 1e-3
	o.ProxMu = 0.01
	o.ProxRef = ref
	return o
}

func TestSGDStepLayersMatchesStep(t *testing.T) {
	m, xs, ys := testModelAndBatch(t)
	m2 := m.Clone()
	ref := m.Params()
	optFlat := fullSGD(ref)
	optLayers := fullSGD(ref)
	ws := NewWorkspace(m)

	for step := 0; step < 5; step++ {
		ws.ZeroGrads()
		if _, err := m.GradientsWS(ws, xs[step], ys[step]); err != nil {
			t.Fatal(err)
		}
		flat := make(tensor.Vector, 0, m.NumParams())
		for _, g := range ws.grads {
			flat = append(flat, g.W.Data...)
			flat = append(flat, g.B...)
		}
		if err := optFlat.Step(m, flat); err != nil {
			t.Fatal(err)
		}
		if err := optLayers.StepLayers(m2, ws.grads); err != nil {
			t.Fatal(err)
		}
		pa, pb := m.Params(), m2.Params()
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("step %d: param[%d] %g (Step) vs %g (StepLayers)", step, i, pa[i], pb[i])
			}
		}
	}
}

func TestAdamStepLayersMatchesStep(t *testing.T) {
	m, xs, ys := testModelAndBatch(t)
	m2 := m.Clone()
	ref := m.Params()
	newOpt := func() *Adam {
		o := NewAdam(0.01)
		o.WeightDecay = 1e-3
		o.ProxMu = 0.01
		o.ProxRef = ref
		return o
	}
	optFlat, optLayers := newOpt(), newOpt()
	ws := NewWorkspace(m)

	for step := 0; step < 5; step++ {
		ws.ZeroGrads()
		if _, err := m.GradientsWS(ws, xs[step], ys[step]); err != nil {
			t.Fatal(err)
		}
		flat := make(tensor.Vector, 0, m.NumParams())
		for _, g := range ws.grads {
			flat = append(flat, g.W.Data...)
			flat = append(flat, g.B...)
		}
		if err := optFlat.Step(m, flat); err != nil {
			t.Fatal(err)
		}
		if err := optLayers.StepLayers(m2, ws.grads); err != nil {
			t.Fatal(err)
		}
		pa, pb := m.Params(), m2.Params()
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("step %d: param[%d] %g (Step) vs %g (StepLayers)", step, i, pa[i], pb[i])
			}
		}
	}
}

func TestTrainBatchWSReuseMatchesFresh(t *testing.T) {
	m, xs, ys := testModelAndBatch(t)
	m2 := m.Clone()
	optA := NewSGD(0.05)
	optA.Momentum = 0.9
	optB := NewSGD(0.05)
	optB.Momentum = 0.9
	ws := NewWorkspace(m2) // reused across batches

	for b := 0; b+8 <= len(xs); b += 8 {
		lossA, err := TrainBatch(m, xs[b:b+8], ys[b:b+8], optA)
		if err != nil {
			t.Fatal(err)
		}
		lossB, err := TrainBatchWS(ws, m2, xs[b:b+8], ys[b:b+8], optB)
		if err != nil {
			t.Fatal(err)
		}
		if lossA != lossB {
			t.Fatalf("batch %d: loss %g (fresh) vs %g (reused)", b, lossA, lossB)
		}
	}
	pa, pb := m.Params(), m2.Params()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("param[%d]: %g (fresh) vs %g (reused)", i, pa[i], pb[i])
		}
	}
}

func TestSoftGradientWSMatchesSoftGradient(t *testing.T) {
	m, xs, _ := testModelAndBatch(t)
	target := tensor.Vector{0.1, 0.3, 0.2, 0.25, 0.15}
	ws := NewWorkspace(m)
	for _, x := range xs[:4] {
		flat, lossA, err := SoftGradient(m, x, target, 2)
		if err != nil {
			t.Fatal(err)
		}
		ws.ZeroGrads()
		lossB, err := m.SoftGradientWS(ws, x, target, 2)
		if err != nil {
			t.Fatal(err)
		}
		if lossA != lossB {
			t.Fatalf("loss %g vs %g", lossB, lossA)
		}
		i := 0
		for _, g := range ws.grads {
			for _, v := range g.W.Data {
				if v != flat[i] {
					t.Fatalf("grad[%d]: %g vs %g", i, v, flat[i])
				}
				i++
			}
			for _, v := range g.B {
				if v != flat[i] {
					t.Fatalf("grad[%d]: %g vs %g", i, v, flat[i])
				}
				i++
			}
		}
	}
}

func TestWorkspaceFits(t *testing.T) {
	m, _, _ := testModelAndBatch(t)
	ws := NewWorkspace(m)
	if !ws.Fits(m) {
		t.Fatal("workspace does not fit its own model")
	}
	other, err := NewMLP([]int{12, 24, 9, 5}, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Fits(other) {
		t.Fatal("workspace claims to fit a different architecture")
	}
	if _, err := other.ForwardWS(ws, tensor.NewVector(12)); err == nil {
		t.Fatal("ForwardWS accepted a mismatched workspace")
	}
	if _, err := other.GradientsWS(ws, tensor.NewVector(12), 0); err == nil {
		t.Fatal("GradientsWS accepted a mismatched workspace")
	}
}

// Allocation regression guards: the whole point of the workspace layer.

func TestForwardWSAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	m, xs, _ := testModelAndBatch(t)
	ws := NewWorkspace(m)
	if n := testing.AllocsPerRun(100, func() {
		if _, err := m.ForwardWS(ws, xs[0]); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ForwardWS allocates %v/op, want 0", n)
	}
}

func TestGradientsWSAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	m, xs, ys := testModelAndBatch(t)
	ws := NewWorkspace(m)
	if n := testing.AllocsPerRun(100, func() {
		ws.ZeroGrads()
		if _, err := m.GradientsWS(ws, xs[0], ys[0]); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ZeroGrads+GradientsWS allocates %v/op, want 0", n)
	}
}

func TestStepLayersAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	m, xs, ys := testModelAndBatch(t)
	ws := NewWorkspace(m)
	ws.ZeroGrads()
	if _, err := m.GradientsWS(ws, xs[0], ys[0]); err != nil {
		t.Fatal(err)
	}
	sgd := NewSGD(0.01)
	sgd.Momentum = 0.9
	if err := sgd.StepLayers(m, ws.grads); err != nil { // warm up velocity
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := sgd.StepLayers(m, ws.grads); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("SGD StepLayers allocates %v/op, want 0", n)
	}

	adam := NewAdam(0.001)
	if err := adam.StepLayers(m, ws.grads); err != nil { // warm up moments
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := adam.StepLayers(m, ws.grads); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Adam StepLayers allocates %v/op, want 0", n)
	}
}

func TestTrainBatchWSAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	m, xs, ys := testModelAndBatch(t)
	ws := NewWorkspace(m)
	opt := NewSGD(0.01)
	opt.Momentum = 0.9
	if _, err := TrainBatchWS(ws, m, xs, ys, opt); err != nil { // warm up
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := TrainBatchWS(ws, m, xs, ys, opt); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("TrainBatchWS allocates %v/op at steady state, want 0", n)
	}
}
