package nn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestSGDStepValidation(t *testing.T) {
	m := newTestMLP(t, 2, 3, 2)
	bad := NewSGD(0)
	if err := bad.Step(m, tensor.NewVector(m.NumParams())); err == nil {
		t.Fatal("lr=0 should error")
	}
	opt := NewSGD(0.1)
	if err := opt.Step(m, tensor.Vector{1, 2}); !errors.Is(err, ErrDimension) {
		t.Fatalf("short gradient = %v", err)
	}
}

func TestSGDProximalPullsTowardReference(t *testing.T) {
	rng := tensor.NewRNG(5)
	m, err := NewMLP([]int{2, 4, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ref := m.Params()

	// Train two copies on the same data: one plain, one with a strong
	// proximal term anchored at ref. The proximal copy must end closer to
	// ref.
	xs, ys := twoBlobData(rng, 30)
	plain := m.Clone()
	prox := m.Clone()

	optPlain := NewSGD(0.1)
	if _, err := TrainEpochs(plain, xs, ys, optPlain, 10, 16, tensor.NewRNG(9)); err != nil {
		t.Fatal(err)
	}
	optProx := NewSGD(0.1)
	optProx.ProxMu = 5
	optProx.ProxRef = ref
	if _, err := TrainEpochs(prox, xs, ys, optProx, 10, 16, tensor.NewRNG(9)); err != nil {
		t.Fatal(err)
	}

	dPlain := tensor.Distance(plain.Params(), ref)
	dProx := tensor.Distance(prox.Params(), ref)
	if dProx >= dPlain {
		t.Fatalf("proximal distance %g should be < plain %g", dProx, dPlain)
	}
}

func TestSGDProximalRefValidation(t *testing.T) {
	m := newTestMLP(t, 2, 3, 2)
	opt := NewSGD(0.1)
	opt.ProxMu = 1
	opt.ProxRef = tensor.Vector{1} // wrong size
	err := opt.Step(m, tensor.NewVector(m.NumParams()))
	if !errors.Is(err, ErrDimension) {
		t.Fatalf("want ErrDimension, got %v", err)
	}
}

func TestWeightDecayShrinksParams(t *testing.T) {
	m := newTestMLP(t, 2, 3, 2)
	before := m.Params().Norm()
	opt := NewSGD(0.1)
	opt.WeightDecay = 0.5
	// Zero gradient: only decay acts.
	if err := opt.Step(m, tensor.NewVector(m.NumParams())); err != nil {
		t.Fatal(err)
	}
	after := m.Params().Norm()
	if after >= before {
		t.Fatalf("weight decay did not shrink params: %g -> %g", before, after)
	}
}

func TestTrainBatchValidation(t *testing.T) {
	m := newTestMLP(t, 2, 3, 2)
	opt := NewSGD(0.1)
	if _, err := TrainBatch(m, nil, nil, opt); err == nil {
		t.Fatal("empty batch should error")
	}
	if _, err := TrainBatch(m, []tensor.Vector{{1, 2}}, []int{0, 1}, opt); !errors.Is(err, ErrDimension) {
		t.Fatalf("mismatch = %v", err)
	}
}

func TestTrainEpochsValidation(t *testing.T) {
	m := newTestMLP(t, 2, 3, 2)
	opt := NewSGD(0.1)
	rng := tensor.NewRNG(1)
	xs := []tensor.Vector{{1, 2}}
	ys := []int{0}
	if _, err := TrainEpochs(m, nil, nil, opt, 1, 8, rng); err == nil {
		t.Fatal("empty dataset should error")
	}
	if _, err := TrainEpochs(m, xs, []int{0, 1}, opt, 1, 8, rng); !errors.Is(err, ErrDimension) {
		t.Fatalf("mismatch = %v", err)
	}
	if _, err := TrainEpochs(m, xs, ys, opt, 0, 8, rng); err == nil {
		t.Fatal("epochs=0 should error")
	}
	// batchSize<=0 defaults rather than erroring.
	if _, err := TrainEpochs(m, xs, ys, opt, 1, 0, rng); err != nil {
		t.Fatalf("default batch size should work: %v", err)
	}
}

func TestModelSimilarity(t *testing.T) {
	m := newTestMLP(t, 2, 3, 2)
	self, err := ModelSimilarity(m, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(self-1) > 1e-12 {
		t.Fatalf("self similarity = %g", self)
	}
	neg := m.Clone()
	p := neg.Params()
	p.Scale(-1)
	if err := neg.SetParams(p); err != nil {
		t.Fatal(err)
	}
	anti, err := ModelSimilarity(m, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(anti+1) > 1e-12 {
		t.Fatalf("negated similarity = %g, want -1", anti)
	}
	other := newTestMLP(t, 3, 3, 2)
	if _, err := ModelSimilarity(m, other); !errors.Is(err, ErrDimension) {
		t.Fatalf("mismatched models = %v", err)
	}
}

func TestMergeModels(t *testing.T) {
	a := newTestMLP(t, 2, 3, 2)
	b := a.Clone()
	pb := b.Params()
	pb.Scale(3)
	if err := b.SetParams(pb); err != nil {
		t.Fatal(err)
	}
	merged, err := MergeModels(a, b, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pm := merged.Params()
	pa := a.Params()
	for i := range pm {
		want := pa[i] * 2 // (p + 3p)/2
		if math.Abs(pm[i]-want) > 1e-12 {
			t.Fatalf("merge[%d] = %g, want %g", i, pm[i], want)
		}
	}
	if _, err := MergeModels(a, b, -1, 1); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := MergeModels(a, b, 0, 0); err == nil {
		t.Fatal("zero weights should error")
	}
	other := newTestMLP(t, 3, 3, 2)
	if _, err := MergeModels(a, other, 1, 1); !errors.Is(err, ErrDimension) {
		t.Fatalf("mismatched merge = %v", err)
	}
}

func TestMomentumAcceleratesDescent(t *testing.T) {
	rng := tensor.NewRNG(11)
	base, err := NewMLP([]int{2, 8, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := twoBlobData(rng, 40)

	noMom := base.Clone()
	withMom := base.Clone()
	o1 := NewSGD(0.02)
	o2 := NewSGD(0.02)
	o2.Momentum = 0.9
	if _, err := TrainEpochs(noMom, xs, ys, o1, 3, 16, tensor.NewRNG(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := TrainEpochs(withMom, xs, ys, o2, 3, 16, tensor.NewRNG(4)); err != nil {
		t.Fatal(err)
	}
	l1, err := noMom.Loss(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := withMom.Loss(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if l2 >= l1 {
		t.Fatalf("momentum loss %g should beat plain %g in few epochs", l2, l1)
	}
}
