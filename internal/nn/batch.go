package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// BatchWorkspace owns the activation matrices a whole-batch forward pass
// needs: one rows×width matrix per layer output plus the packed input
// matrix, all carved from a single tensor.Workspace arena. The *BatchWS
// methods run an entire batch through each Dense layer as one blocked GEMM
// (tensor.MatMulTransInto) instead of a per-sample MatVecInto loop — the
// serving tier's compute hot path.
//
// Ownership and aliasing rules (matching Workspace):
//
//   - Matrices returned by ForwardBatchWS/EmbedBatchWS alias workspace
//     storage and are valid until the next call that uses the workspace.
//     Clone rows that must be retained.
//   - A batch workspace fits any model with the same layer widths; one
//     can serve every expert of a snapshot, one call at a time.
//   - Not safe for concurrent use — give each goroutine its own.
//
// Capacity grows to the largest batch ever passed and never shrinks, so a
// steady-state loop over bounded batches performs zero heap allocations
// (pinned by TestBatchForwardAllocateNothing).
type BatchWorkspace struct {
	dims    []int
	capRows int
	// full[0] is the packed input (capRows×dims[0]); full[l+1] holds layer
	// l's post-activation output. views are the same matrices re-headed to
	// the live batch size, mutated in place by setBatch so per-call view
	// construction allocates nothing.
	full  []*tensor.Matrix
	views []*tensor.Matrix
}

// NewBatchWorkspace allocates a batch workspace fitting m's architecture
// with initial capacity for maxBatch rows.
func NewBatchWorkspace(m *MLP, maxBatch int) *BatchWorkspace {
	return NewBatchWorkspaceDims(m.dims, maxBatch)
}

// NewBatchWorkspaceDims allocates a batch workspace for the given layer
// widths (the same slice NewMLP takes).
func NewBatchWorkspaceDims(dims []int, maxBatch int) *BatchWorkspace {
	if maxBatch < 1 {
		maxBatch = 1
	}
	bw := &BatchWorkspace{dims: append([]int(nil), dims...)}
	bw.grow(maxBatch)
	return bw
}

// grow (re)carves all activation matrices with capacity for rows batches.
func (bw *BatchWorkspace) grow(rows int) {
	need := 0
	for _, d := range bw.dims {
		need += rows * d
	}
	arena := tensor.NewWorkspace(need)
	bw.capRows = rows
	bw.full = make([]*tensor.Matrix, len(bw.dims))
	bw.views = make([]*tensor.Matrix, len(bw.dims))
	for i, d := range bw.dims {
		bw.full[i] = arena.Mat(rows, d)
		bw.views[i] = &tensor.Matrix{Rows: rows, Cols: d, Data: bw.full[i].Data}
	}
}

// setBatch points the views at the first n rows, growing capacity if the
// batch exceeds it (a doubling grow, so repeated ragged sizes settle).
func (bw *BatchWorkspace) setBatch(n int) {
	if n > bw.capRows {
		rows := 2 * bw.capRows
		if rows < n {
			rows = n
		}
		bw.grow(rows)
	}
	for i, v := range bw.views {
		v.Rows = n
		v.Data = bw.full[i].Data[:n*v.Cols]
	}
}

// Cap returns the current row capacity.
func (bw *BatchWorkspace) Cap() int { return bw.capRows }

// FitsDims reports whether the workspace matches the given layer widths.
func (bw *BatchWorkspace) FitsDims(dims []int) bool {
	if len(bw.dims) != len(dims) {
		return false
	}
	for i, d := range bw.dims {
		if d != dims[i] {
			return false
		}
	}
	return true
}

// check returns an error when the workspace does not fit m.
func (bw *BatchWorkspace) check(m *MLP) error {
	if !bw.FitsDims(m.dims) {
		return fmt.Errorf("nn: batch workspace dims %v do not fit model dims %v: %w", bw.dims, m.dims, ErrDimension)
	}
	return nil
}

// forwardBatch packs xs into the input matrix and runs the first nLayers
// layers over the whole batch: one GEMM against each layer's W, then a bias
// add and (on hidden layers) ReLU per row. Each output element accumulates
// in the same order as the per-sample forwardInto path, so the batched
// activations are bit-identical to running ForwardWS per sample. Passing
// nLayers < len(m.layers) stops early — the embedding path skips the final
// layer entirely, which cannot change the penultimate activations.
func (m *MLP) forwardBatch(bw *BatchWorkspace, xs []tensor.Vector, nLayers int) error {
	if len(xs) == 0 {
		return errEmptyBatch
	}
	if err := bw.check(m); err != nil {
		return err
	}
	for i, x := range xs {
		if len(x) != m.InputDim() {
			return fmt.Errorf("forwardbatch: %w: input %d is %d-dimensional, want %d",
				ErrDimension, i, len(x), m.InputDim())
		}
	}
	bw.setBatch(len(xs))
	in := bw.views[0]
	for i, x := range xs {
		copy(in.Row(i), x)
	}
	cur := in
	for l := 0; l < nLayers; l++ {
		layer := m.layers[l]
		z := bw.views[l+1]
		if err := tensor.MatMulTransInto(z, cur, layer.W); err != nil {
			return err
		}
		last := l == len(m.layers)-1
		for i := 0; i < z.Rows; i++ {
			row := z.Row(i)
			if err := row.Add(layer.B); err != nil {
				return err
			}
			if !last {
				relu(row)
			}
		}
		cur = z
	}
	return nil
}

// ForwardBatchWS runs the whole batch through the network, returning the
// len(xs)×NumClasses logits matrix. The matrix aliases workspace storage
// and is valid until the next use of bw.
func (m *MLP) ForwardBatchWS(bw *BatchWorkspace, xs []tensor.Vector) (*tensor.Matrix, error) {
	if err := m.forwardBatch(bw, xs, len(m.layers)); err != nil {
		return nil, err
	}
	return bw.views[len(bw.views)-1], nil
}

// EmbedBatchWS runs the whole batch and returns the len(xs)×EmbeddingDim
// matrix of penultimate-layer activations — the batched form of EmbedWS,
// used by the serving tier to route a full batch through the encoder in one
// GEMM. The final layer is skipped (its output is unused and cannot affect
// the penultimate activations), so the values stay bit-identical to EmbedWS
// while costing one GEMM less. The matrix aliases workspace storage.
func (m *MLP) EmbedBatchWS(bw *BatchWorkspace, xs []tensor.Vector) (*tensor.Matrix, error) {
	if err := m.forwardBatch(bw, xs, len(m.layers)-1); err != nil {
		return nil, err
	}
	return bw.views[len(bw.views)-2], nil
}

// PredictBatchWS writes the argmax class of each input into classes, which
// must have the batch's length. Results are bit-identical to calling
// PredictWS per sample.
func (m *MLP) PredictBatchWS(bw *BatchWorkspace, xs []tensor.Vector, classes []int) error {
	if len(classes) != len(xs) {
		return fmt.Errorf("predictbatch: %w: %d inputs vs %d class slots", ErrDimension, len(xs), len(classes))
	}
	logits, err := m.ForwardBatchWS(bw, xs)
	if err != nil {
		return err
	}
	for i := range xs {
		classes[i] = logits.Row(i).ArgMax()
	}
	return nil
}
