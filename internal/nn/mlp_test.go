package nn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func newTestMLP(t *testing.T, dims ...int) *MLP {
	t.Helper()
	m, err := NewMLP(dims, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMLPValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := NewMLP([]int{4, 2}, rng); err == nil {
		t.Fatal("expected error for <3 widths")
	}
	if _, err := NewMLP([]int{4, 0, 2}, rng); err == nil {
		t.Fatal("expected error for zero width")
	}
	m, err := NewMLP([]int{4, 8, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.InputDim() != 4 || m.EmbeddingDim() != 8 || m.NumClasses() != 3 {
		t.Fatalf("dims: in=%d emb=%d out=%d", m.InputDim(), m.EmbeddingDim(), m.NumClasses())
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax(tensor.Vector{1, 2, 3})
	var sum float64
	for _, v := range p {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax component out of (0,1): %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sum = %g", sum)
	}
	if p[2] <= p[1] || p[1] <= p[0] {
		t.Fatalf("softmax not monotone: %v", p)
	}
	// Huge logits must not overflow.
	big := Softmax(tensor.Vector{1000, 1000, 999})
	for _, v := range big {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax unstable: %v", big)
		}
	}
	if got := Softmax(tensor.Vector{}); len(got) != 0 {
		t.Fatal("empty softmax should be empty")
	}
}

func TestForwardShapeErrors(t *testing.T) {
	m := newTestMLP(t, 4, 8, 3)
	if _, err := m.Logits(tensor.Vector{1, 2}); !errors.Is(err, ErrDimension) {
		t.Fatalf("want ErrDimension, got %v", err)
	}
	if _, err := m.Embed(tensor.Vector{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("want ErrDimension, got %v", err)
	}
}

func TestEmbedDimension(t *testing.T) {
	m := newTestMLP(t, 4, 16, 8, 3)
	e, err := m.Embed(tensor.Vector{1, 0, -1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 8 {
		t.Fatalf("embedding dim = %d, want 8", len(e))
	}
	// ReLU output: all components non-negative.
	for _, v := range e {
		if v < 0 {
			t.Fatalf("embedding has negative component: %v", e)
		}
	}
}

func TestParamsRoundTrip(t *testing.T) {
	m := newTestMLP(t, 5, 7, 4)
	p := m.Params()
	if len(p) != m.NumParams() {
		t.Fatalf("params len = %d, want %d", len(p), m.NumParams())
	}
	want := 5*7 + 7 + 7*4 + 4
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
	clone := m.Clone()
	// Mutate the original's params; clone must be unaffected.
	p2 := p.Clone()
	p2.Scale(2)
	if err := m.SetParams(p2); err != nil {
		t.Fatal(err)
	}
	cp := clone.Params()
	for i := range cp {
		if cp[i] != p[i] {
			t.Fatal("clone shares storage with original")
		}
	}
	if err := m.SetParams(tensor.Vector{1, 2}); !errors.Is(err, ErrDimension) {
		t.Fatalf("want ErrDimension, got %v", err)
	}
	// Round-trip exactness.
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
	rt := m.Params()
	for i := range rt {
		if rt[i] != p[i] {
			t.Fatal("params round trip mismatch")
		}
	}
}

func TestLossAndAccuracyValidation(t *testing.T) {
	m := newTestMLP(t, 2, 4, 2)
	xs := []tensor.Vector{{1, 0}}
	if _, err := m.Loss(nil, nil); err == nil {
		t.Fatal("empty batch should error")
	}
	if _, err := m.Loss(xs, []int{0, 1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("length mismatch = %v", err)
	}
	if _, err := m.Loss(xs, []int{5}); err == nil {
		t.Fatal("out-of-range label should error")
	}
	if _, err := m.Accuracy(nil, nil); err == nil {
		t.Fatal("empty accuracy should error")
	}
	if _, err := m.Accuracy(xs, []int{0, 0}); !errors.Is(err, ErrDimension) {
		t.Fatalf("accuracy mismatch = %v", err)
	}
}

// twoBlobData builds a linearly separable 2-class problem.
func twoBlobData(rng *tensor.RNG, n int) ([]tensor.Vector, []int) {
	xs := make([]tensor.Vector, 0, 2*n)
	ys := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		xs = append(xs, tensor.Vector{2 + rng.Norm()*0.5, 2 + rng.Norm()*0.5})
		ys = append(ys, 0)
		xs = append(xs, tensor.Vector{-2 + rng.Norm()*0.5, -2 + rng.Norm()*0.5})
		ys = append(ys, 1)
	}
	return xs, ys
}

func TestTrainingLearnsSeparableData(t *testing.T) {
	rng := tensor.NewRNG(7)
	m, err := NewMLP([]int{2, 16, 8, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := twoBlobData(rng, 50)
	before, err := m.Accuracy(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewSGD(0.1)
	opt.Momentum = 0.9
	loss0, err := m.Loss(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainEpochs(m, xs, ys, opt, 20, 16, rng); err != nil {
		t.Fatal(err)
	}
	after, err := m.Accuracy(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	loss1, err := m.Loss(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if after < 0.95 {
		t.Fatalf("accuracy after training = %g (before %g)", after, before)
	}
	if loss1 >= loss0 {
		t.Fatalf("loss did not decrease: %g -> %g", loss0, loss1)
	}
}

func TestGradientCheck(t *testing.T) {
	// Finite-difference check of the analytic gradient.
	rng := tensor.NewRNG(3)
	m, err := NewMLP([]int{3, 5, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.5, -0.3, 0.8}
	y := 1

	grads := make([]*Dense, len(m.layers))
	for i, l := range m.layers {
		grads[i] = &Dense{W: tensor.NewMatrix(l.W.Rows, l.W.Cols), B: tensor.NewVector(len(l.B))}
	}
	if _, err := m.gradients(x, y, grads); err != nil {
		t.Fatal(err)
	}
	flat := make(tensor.Vector, 0, m.NumParams())
	for _, g := range grads {
		flat = append(flat, g.W.Data...)
		flat = append(flat, g.B...)
	}

	p := m.Params()
	const eps = 1e-5
	lossAt := func(params tensor.Vector) float64 {
		if err := m.SetParams(params); err != nil {
			t.Fatal(err)
		}
		l, err := m.Loss([]tensor.Vector{x}, []int{y})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	// Spot-check a sample of coordinates.
	for _, idx := range []int{0, 3, 7, len(p) - 1, len(p) / 2} {
		plus := p.Clone()
		plus[idx] += eps
		minus := p.Clone()
		minus[idx] -= eps
		numeric := (lossAt(plus) - lossAt(minus)) / (2 * eps)
		if math.Abs(numeric-flat[idx]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("grad[%d]: analytic %g vs numeric %g", idx, flat[idx], numeric)
		}
	}
	if err := m.SetParams(p); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySoftmaxIsDistribution(t *testing.T) {
	f := func(raw [6]float64) bool {
		v := make(tensor.Vector, 6)
		for i, x := range raw {
			if math.IsNaN(x) {
				x = 0
			}
			v[i] = math.Mod(x, 50)
		}
		p := Softmax(v)
		var sum float64
		for _, q := range p {
			if q < 0 || math.IsNaN(q) {
				return false
			}
			sum += q
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDimsReturnsCopy(t *testing.T) {
	m := newTestMLP(t, 2, 3, 2)
	d := m.Dims()
	d[0] = 99
	if m.InputDim() != 2 {
		t.Fatal("Dims leaked internal slice")
	}
}
