package nn

import (
	"testing"

	"repro/internal/tensor"
)

// Micro-benchmarks for the training hot path. Run with -benchmem: the
// workspace refactor's contract is allocs/op = 0 for the *Into kernels and
// O(1) per TrainBatch call (independent of batch size and layer widths).

func benchModel(b *testing.B, dims ...int) *MLP {
	b.Helper()
	m, err := NewMLP(dims, tensor.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchBatch(n, in, classes int) ([]tensor.Vector, []int) {
	rng := tensor.NewRNG(2)
	xs := make([]tensor.Vector, n)
	ys := make([]int, n)
	for i := range xs {
		xs[i] = rng.NormVec(in, 0, 1)
		ys[i] = rng.Intn(classes)
	}
	return xs, ys
}

func BenchmarkForward(b *testing.B) {
	m := benchModel(b, 32, 64, 16, 10)
	ws := NewWorkspace(m)
	x := tensor.NewRNG(3).NormVec(32, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ForwardWS(ws, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBackward(b *testing.B) {
	m := benchModel(b, 32, 64, 16, 10)
	ws := NewWorkspace(m)
	x := tensor.NewRNG(3).NormVec(32, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.ZeroGrads()
		if _, err := m.GradientsWS(ws, x, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSGDStep(b *testing.B) {
	m := benchModel(b, 32, 64, 16, 10)
	ws := NewWorkspace(m)
	x := tensor.NewRNG(3).NormVec(32, 0, 1)
	ws.ZeroGrads()
	if _, err := m.GradientsWS(ws, x, 3); err != nil {
		b.Fatal(err)
	}
	opt := NewSGD(0.01)
	opt.Momentum = 0.9
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := opt.StepLayers(m, ws.Grads()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdamStep(b *testing.B) {
	m := benchModel(b, 32, 64, 16, 10)
	ws := NewWorkspace(m)
	x := tensor.NewRNG(3).NormVec(32, 0, 1)
	ws.ZeroGrads()
	if _, err := m.GradientsWS(ws, x, 3); err != nil {
		b.Fatal(err)
	}
	opt := NewAdam(0.001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := opt.StepLayers(m, ws.Grads()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainBatch(b *testing.B) {
	m := benchModel(b, 32, 64, 16, 10)
	ws := NewWorkspace(m)
	xs, ys := benchBatch(16, 32, 10)
	opt := NewSGD(0.01)
	opt.Momentum = 0.9
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainBatchWS(ws, m, xs, ys, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpochs(b *testing.B) {
	xs, ys := benchBatch(256, 32, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := benchModel(b, 32, 64, 16, 10)
		rng := tensor.NewRNG(9)
		opt := NewSGD(0.02)
		opt.Momentum = 0.9
		b.StartTimer()
		if _, err := TrainEpochs(m, xs, ys, opt, 2, 16, rng); err != nil {
			b.Fatal(err)
		}
	}
}
