package nn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer applies a gradient step to a model. SGD and Adam implement it;
// the federated layer treats optimizers opaquely so local-training recipes
// can be swapped per deployment. Step takes a flattened gradient;
// StepLayers takes per-layer accumulators (e.g. Workspace.Grads()) and
// updates the model in place without materializing flat copies — the two
// are bit-identical on the same gradient values.
type Optimizer interface {
	Step(m *MLP, grad tensor.Vector) error
	StepLayers(m *MLP, grads []*Dense) error
}

var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)

// Adam is the Kingma-Ba adaptive-moment optimizer. Like SGD here, it
// supports weight decay (decoupled, AdamW-style) and the FedProx proximal
// term.
type Adam struct {
	LR          float64
	Beta1       float64 // 0 means 0.9
	Beta2       float64 // 0 means 0.999
	Eps         float64 // 0 means 1e-8
	WeightDecay float64

	ProxMu  float64
	ProxRef tensor.Vector

	step int
	m, v tensor.Vector
}

// NewAdam returns an Adam optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr}
}

func (o *Adam) defaults() (b1, b2, eps float64) {
	b1, b2, eps = o.Beta1, o.Beta2, o.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	return b1, b2, eps
}

// prepare validates the optimizer against a model with n parameters and
// lazily sizes the moment state.
func (o *Adam) prepare(n int) error {
	if o.LR <= 0 {
		return errors.New("nn: adam learning rate must be positive")
	}
	if o.ProxMu > 0 && len(o.ProxRef) != n {
		return fmt.Errorf("adam step: %w: prox ref %d vs params %d", ErrDimension, len(o.ProxRef), n)
	}
	if o.m == nil {
		o.m = tensor.NewVector(n)
		o.v = tensor.NewVector(n)
	}
	if len(o.m) != n {
		return fmt.Errorf("adam step: %w: state %d vs params %d", ErrDimension, len(o.m), n)
	}
	return nil
}

// stepSegment applies the Adam update rule to one contiguous parameter
// segment p with gradient g, where off is the segment's offset into the
// flattened parameter vector. c1/c2 are the bias-correction terms of the
// current step.
func (o *Adam) stepSegment(p, g []float64, off int, b1, b2, eps, c1, c2 float64) {
	for i := range p {
		eff := g[i]
		if o.ProxMu > 0 {
			eff += o.ProxMu * p[i]
			eff -= o.ProxMu * o.ProxRef[off+i]
		}
		o.m[off+i] = b1*o.m[off+i] + (1-b1)*eff
		o.v[off+i] = b2*o.v[off+i] + (1-b2)*eff*eff
		mHat := o.m[off+i] / c1
		vHat := o.v[off+i] / c2
		p[i] -= o.LR * (mHat/(math.Sqrt(vHat)+eps) + o.WeightDecay*p[i])
	}
}

// Step implements Optimizer.
func (o *Adam) Step(model *MLP, grad tensor.Vector) error {
	if o.LR <= 0 {
		return errors.New("nn: adam learning rate must be positive")
	}
	n := model.NumParams()
	if len(grad) != n {
		return fmt.Errorf("adam step: %w: grad %d vs params %d", ErrDimension, len(grad), n)
	}
	if err := o.prepare(n); err != nil {
		return err
	}
	b1, b2, eps := o.defaults()
	o.step++
	c1 := 1 - math.Pow(b1, float64(o.step))
	c2 := 1 - math.Pow(b2, float64(o.step))
	off := 0
	for _, l := range model.layers {
		o.stepSegment(l.W.Data, grad[off:off+len(l.W.Data)], off, b1, b2, eps, c1, c2)
		off += len(l.W.Data)
		o.stepSegment(l.B, grad[off:off+len(l.B)], off, b1, b2, eps, c1, c2)
		off += len(l.B)
	}
	return nil
}

// StepLayers implements Optimizer over per-layer gradient accumulators,
// updating the model in place with zero allocations at steady state.
func (o *Adam) StepLayers(model *MLP, grads []*Dense) error {
	if err := checkGradShapes(model, grads); err != nil {
		return err
	}
	if err := o.prepare(model.NumParams()); err != nil {
		return err
	}
	b1, b2, eps := o.defaults()
	o.step++
	c1 := 1 - math.Pow(b1, float64(o.step))
	c2 := 1 - math.Pow(b2, float64(o.step))
	off := 0
	for li, l := range model.layers {
		o.stepSegment(l.W.Data, grads[li].W.Data, off, b1, b2, eps, c1, c2)
		off += len(l.W.Data)
		o.stepSegment(l.B, grads[li].B, off, b1, b2, eps, c1, c2)
		off += len(l.B)
	}
	return nil
}

// LRSchedule maps a 0-based step index to a learning rate.
type LRSchedule interface {
	Rate(step int) float64
}

// ConstantLR always returns the same rate.
type ConstantLR float64

// Rate implements LRSchedule.
func (c ConstantLR) Rate(int) float64 { return float64(c) }

// StepDecayLR multiplies the base rate by Factor every Every steps.
type StepDecayLR struct {
	Base   float64
	Factor float64 // e.g. 0.5
	Every  int
}

// Rate implements LRSchedule.
func (s StepDecayLR) Rate(step int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Factor, float64(step/s.Every))
}

// CosineLR anneals from Base to Floor over Horizon steps and stays at
// Floor afterwards.
type CosineLR struct {
	Base, Floor float64
	Horizon     int
}

// Rate implements LRSchedule.
func (c CosineLR) Rate(step int) float64 {
	if c.Horizon <= 0 || step >= c.Horizon {
		return c.Floor
	}
	t := float64(step) / float64(c.Horizon)
	return c.Floor + 0.5*(c.Base-c.Floor)*(1+math.Cos(math.Pi*t))
}

// TrainEpochsSched runs mini-batch training like TrainEpochs but drives the
// SGD learning rate from a schedule, advancing one schedule step per batch.
func TrainEpochsSched(m *MLP, xs []tensor.Vector, ys []int, opt *SGD, sched LRSchedule, epochs, batchSize int, rng *tensor.RNG) (float64, error) {
	if sched == nil {
		return 0, errors.New("nn: nil schedule")
	}
	if len(xs) == 0 {
		return 0, errors.New("nn: empty dataset")
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("train sched: %w: %d inputs vs %d labels", ErrDimension, len(xs), len(ys))
	}
	if epochs <= 0 {
		return 0, errors.New("nn: epochs must be positive")
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	ws := NewWorkspace(m)
	step := 0
	var lastLoss float64
	bx := make([]tensor.Vector, 0, batchSize)
	by := make([]int, 0, batchSize)
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(idx); start += batchSize {
			end := start + batchSize
			if end > len(idx) {
				end = len(idx)
			}
			bx = bx[:0]
			by = by[:0]
			for _, i := range idx[start:end] {
				bx = append(bx, xs[i])
				by = append(by, ys[i])
			}
			opt.LR = sched.Rate(step)
			step++
			loss, err := TrainBatchWS(ws, m, bx, by, opt)
			if err != nil {
				return 0, err
			}
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
	}
	return lastLoss, nil
}
