package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// SoftGradient computes the flattened parameter gradient of the soft-label
// distillation loss for one example: the cross-entropy between a target
// distribution and the model's temperature-scaled softmax,
// H(q, softmax(z/T)). It returns the gradient and the loss. This is the
// entry point knowledge distillation uses (the output-layer delta is
// (softmax(z/T) − q)/T instead of the hard-label delta).
func SoftGradient(m *MLP, x tensor.Vector, target tensor.Vector, temperature float64) (tensor.Vector, float64, error) {
	if temperature <= 0 {
		return nil, 0, fmt.Errorf("nn: temperature must be positive, got %g", temperature)
	}
	if len(target) != m.NumClasses() {
		return nil, 0, fmt.Errorf("soft gradient: %w: target %d vs classes %d", ErrDimension, len(target), m.NumClasses())
	}
	acts, err := m.forward(x)
	if err != nil {
		return nil, 0, err
	}
	logits := acts[len(acts)-1].Clone()
	logits.Scale(1 / temperature)
	p := Softmax(logits)

	var loss float64
	for i, q := range target {
		if q > 0 {
			loss += -q * logp(p[i])
		}
	}

	delta := p.Clone()
	if err := delta.Sub(target); err != nil {
		return nil, 0, err
	}
	delta.Scale(1 / temperature)

	grads := make([]*Dense, len(m.layers))
	for i, l := range m.layers {
		grads[i] = &Dense{W: tensor.NewMatrix(l.W.Rows, l.W.Cols), B: tensor.NewVector(len(l.B))}
	}
	if err := m.backpropFrom(acts, delta, grads); err != nil {
		return nil, 0, err
	}
	flat := make(tensor.Vector, 0, m.NumParams())
	for _, g := range grads {
		flat = append(flat, g.W.Data...)
		flat = append(flat, g.B...)
	}
	return flat, loss, nil
}

// backpropFrom propagates an output-layer delta through the network,
// accumulating layer gradients — the shared tail of hard- and soft-label
// backpropagation.
func (m *MLP) backpropFrom(acts []tensor.Vector, delta tensor.Vector, grads []*Dense) error {
	for l := len(m.layers) - 1; l >= 0; l-- {
		in := acts[l]
		if err := grads[l].W.AddOuter(1, delta, in); err != nil {
			return err
		}
		if err := grads[l].B.Add(delta); err != nil {
			return err
		}
		if l == 0 {
			break
		}
		prev, err := m.layers[l].W.MulVecT(delta)
		if err != nil {
			return err
		}
		for i := range prev {
			if acts[l][i] <= 0 {
				prev[i] = 0
			}
		}
		delta = prev
	}
	return nil
}
