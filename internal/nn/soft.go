package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// SoftGradientWS accumulates the soft-label distillation gradient for one
// example into ws.Grads() and returns the example's loss: the cross-entropy
// between a target distribution and the model's temperature-scaled softmax,
// H(q, softmax(z/T)). The output-layer delta is (softmax(z/T) − q)/T
// instead of the hard-label delta. Call ws.ZeroGrads() before a fresh
// batch; successive calls accumulate.
func (m *MLP) SoftGradientWS(ws *Workspace, x tensor.Vector, target tensor.Vector, temperature float64) (float64, error) {
	if temperature <= 0 {
		return 0, fmt.Errorf("nn: temperature must be positive, got %g", temperature)
	}
	if len(target) != m.NumClasses() {
		return 0, fmt.Errorf("soft gradient: %w: target %d vs classes %d", ErrDimension, len(target), m.NumClasses())
	}
	if err := ws.check(m); err != nil {
		return 0, err
	}
	if err := m.forwardInto(ws.acts, x); err != nil {
		return 0, err
	}

	// Temperature-scale the logits into the output delta buffer, softmax
	// into prob.
	delta := ws.deltas[len(ws.deltas)-1]
	logits := ws.acts[len(ws.acts)-1]
	if err := tensor.ScaleInto(delta, 1/temperature, logits); err != nil {
		return 0, err
	}
	softmaxInto(ws.prob, delta)

	var loss float64
	for i, q := range target {
		if q > 0 {
			loss += -q * logp(ws.prob[i])
		}
	}

	copy(delta, ws.prob)
	if err := delta.Sub(target); err != nil {
		return 0, err
	}
	delta.Scale(1 / temperature)

	if err := m.backpropInto(ws.acts, ws.deltas, ws.grads); err != nil {
		return 0, err
	}
	return loss, nil
}

// SoftGradient computes the flattened parameter gradient of the soft-label
// distillation loss for one example, returning the gradient and the loss.
// It is the allocating wrapper around SoftGradientWS; batch loops should
// hold a Workspace and call SoftGradientWS directly.
func SoftGradient(m *MLP, x tensor.Vector, target tensor.Vector, temperature float64) (tensor.Vector, float64, error) {
	ws := NewWorkspace(m)
	loss, err := m.SoftGradientWS(ws, x, target, temperature)
	if err != nil {
		return nil, 0, err
	}
	flat := make(tensor.Vector, 0, m.NumParams())
	for _, g := range ws.grads {
		flat = append(flat, g.W.Data...)
		flat = append(flat, g.B...)
	}
	return flat, loss, nil
}

// backpropInto propagates the output-layer delta (already stored in
// deltas[len(deltas)-1]) through the network, accumulating layer gradients
// into grads — the shared tail of hard- and soft-label backpropagation.
// deltas[l] receives the delta at layer l's output.
func (m *MLP) backpropInto(acts, deltas []tensor.Vector, grads []*Dense) error {
	for l := len(m.layers) - 1; l >= 0; l-- {
		delta := deltas[l]
		in := acts[l]
		if err := grads[l].W.AddOuter(1, delta, in); err != nil {
			return err
		}
		if err := grads[l].B.Add(delta); err != nil {
			return err
		}
		if l == 0 {
			break
		}
		// Propagate: delta_prev = Wᵀ·delta ⊙ relu'(pre-act). acts[l] is the
		// post-ReLU activation of layer l-1's output; ReLU' is 1 where the
		// activation is positive.
		prev := deltas[l-1]
		if err := tensor.MatTVecInto(prev, m.layers[l].W, delta); err != nil {
			return err
		}
		for i := range prev {
			if acts[l][i] <= 0 {
				prev[i] = 0
			}
		}
	}
	return nil
}
