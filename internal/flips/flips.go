// Package flips implements FLIPS — Federated Learning using Intelligent
// Participant Selection (Bhope et al., Middleware '23) — the label-aware
// participant-selection substrate ShiftEx uses for bootstrap training
// (§4.1) and for label-balanced expert training (§5.2.3, §5.2.4).
//
// FLIPS clusters parties by their label histograms and then selects round
// participants equitably across clusters, so that aggregated training data
// approximates a balanced label distribution even when individual parties
// are heavily skewed.
package flips

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Selector assigns parties to label-distribution clusters and draws
// balanced participant cohorts from them.
type Selector struct {
	partyIDs []int
	hists    []stats.Histogram
	result   *cluster.Result
}

// New clusters parties by label histogram. maxClusters bounds the label
// cluster count (chosen by Davies-Bouldin); 0 means min(5, #parties).
func New(partyIDs []int, hists []stats.Histogram, maxClusters int, rng *tensor.RNG) (*Selector, error) {
	if len(partyIDs) == 0 {
		return nil, errors.New("flips: no parties")
	}
	if len(partyIDs) != len(hists) {
		return nil, fmt.Errorf("flips: %d parties vs %d histograms", len(partyIDs), len(hists))
	}
	if maxClusters <= 0 {
		maxClusters = 5
	}
	if maxClusters > len(partyIDs) {
		maxClusters = len(partyIDs)
	}
	points := make([]tensor.Vector, len(hists))
	for i, h := range hists {
		if len(h) == 0 {
			return nil, fmt.Errorf("flips: party %d has empty histogram", partyIDs[i])
		}
		points[i] = tensor.Vector(h)
	}
	res, err := cluster.SelectK(points, maxClusters, cluster.Config{}, rng)
	if err != nil {
		return nil, fmt.Errorf("flips: %w", err)
	}
	return &Selector{
		partyIDs: append([]int(nil), partyIDs...),
		hists:    hists,
		result:   res,
	}, nil
}

// NumClusters returns the number of label clusters discovered.
func (s *Selector) NumClusters() int { return s.result.K() }

// Clusters returns the party IDs grouped by label cluster.
func (s *Selector) Clusters() [][]int {
	out := make([][]int, s.result.K())
	for i, c := range s.result.Assignments {
		out[c] = append(out[c], s.partyIDs[i])
	}
	return out
}

// Select draws n participants spread equitably across the label clusters:
// one party per cluster round-robin (clusters visited in random order each
// pass, parties shuffled within clusters) until n are chosen. If n meets or
// exceeds the population, all parties are returned.
func (s *Selector) Select(n int, rng *tensor.RNG) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("flips: selection size must be positive, got %d", n)
	}
	if n >= len(s.partyIDs) {
		out := append([]int(nil), s.partyIDs...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out, nil
	}
	groups := s.Clusters()
	for _, g := range groups {
		rng.Shuffle(len(g), func(i, j int) { g[i], g[j] = g[j], g[i] })
	}
	selected := make([]int, 0, n)
	cursor := make([]int, len(groups))
	order := rng.Perm(len(groups))
	for len(selected) < n {
		progressed := false
		for _, g := range order {
			if len(selected) == n {
				break
			}
			if cursor[g] < len(groups[g]) {
				selected = append(selected, groups[g][cursor[g]])
				cursor[g]++
				progressed = true
			}
		}
		if !progressed {
			break // all clusters exhausted (n > population; handled above)
		}
	}
	return selected, nil
}

// CohortHistogram returns the merged label distribution of the given
// parties, weighting each equally — the distribution the selected cohort's
// aggregated gradients will reflect.
func (s *Selector) CohortHistogram(ids []int) (stats.Histogram, error) {
	if len(ids) == 0 {
		return nil, errors.New("flips: empty cohort")
	}
	idx := make(map[int]int, len(s.partyIDs))
	for i, id := range s.partyIDs {
		idx[id] = i
	}
	hs := make([]stats.Histogram, 0, len(ids))
	counts := make([]int, 0, len(ids))
	for _, id := range ids {
		i, ok := idx[id]
		if !ok {
			return nil, fmt.Errorf("flips: unknown party %d", id)
		}
		hs = append(hs, s.hists[i])
		counts = append(counts, 1)
	}
	return stats.MergeHistograms(hs, counts)
}

// BalanceScore returns the JSD between the cohort's merged label
// distribution and the uniform distribution — lower means the cohort is
// better balanced (the μ term of Eq. 2 that FLIPS minimizes in practice).
func (s *Selector) BalanceScore(ids []int) (float64, error) {
	h, err := s.CohortHistogram(ids)
	if err != nil {
		return 0, err
	}
	return stats.JSD(h, stats.Uniform(len(h)))
}
