package flips

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// skewedPopulation builds parties in two sharply different label regimes:
// half concentrated on class 0, half on class 1.
func skewedPopulation(n, classes int) ([]int, []stats.Histogram) {
	ids := make([]int, n)
	hists := make([]stats.Histogram, n)
	for i := range ids {
		ids[i] = i
		h := make(stats.Histogram, classes)
		if i < n/2 {
			h[0] = 0.9
			h[1] = 0.1
		} else {
			h[1] = 0.9
			h[0] = 0.1
		}
		hists[i] = h
	}
	return ids, hists
}

func TestNewValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := New(nil, nil, 3, rng); err == nil {
		t.Fatal("no parties should error")
	}
	if _, err := New([]int{1}, nil, 3, rng); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	if _, err := New([]int{1}, []stats.Histogram{{}}, 3, rng); err == nil {
		t.Fatal("empty histogram should error")
	}
}

func TestClusteringSeparatesLabelRegimes(t *testing.T) {
	rng := tensor.NewRNG(2)
	ids, hists := skewedPopulation(20, 4)
	s, err := New(ids, hists, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClusters() != 2 {
		t.Fatalf("clusters = %d, want 2", s.NumClusters())
	}
	// Each cluster must be pure.
	for _, g := range s.Clusters() {
		low, high := 0, 0
		for _, id := range g {
			if id < 10 {
				low++
			} else {
				high++
			}
		}
		if low > 0 && high > 0 {
			t.Fatalf("mixed cluster: %v", g)
		}
	}
}

func TestSelectEquitable(t *testing.T) {
	rng := tensor.NewRNG(3)
	ids, hists := skewedPopulation(20, 4)
	s, err := New(ids, hists, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := s.Select(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 10 {
		t.Fatalf("selected %d, want 10", len(sel))
	}
	// Selection must draw evenly: 5 from each regime.
	low := 0
	for _, id := range sel {
		if id < 10 {
			low++
		}
	}
	if low != 5 {
		t.Fatalf("regime balance = %d/10, want 5", low)
	}
	// No duplicates.
	seen := map[int]bool{}
	for _, id := range sel {
		if seen[id] {
			t.Fatal("duplicate selection")
		}
		seen[id] = true
	}
}

func TestSelectAllWhenNExceedsPopulation(t *testing.T) {
	rng := tensor.NewRNG(4)
	ids, hists := skewedPopulation(6, 3)
	s, err := New(ids, hists, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := s.Select(100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 6 {
		t.Fatalf("selected %d, want all 6", len(sel))
	}
	if _, err := s.Select(0, rng); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestSelectOddN(t *testing.T) {
	rng := tensor.NewRNG(5)
	ids, hists := skewedPopulation(20, 4)
	s, err := New(ids, hists, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := s.Select(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 7 {
		t.Fatalf("selected %d, want 7", len(sel))
	}
	low := 0
	for _, id := range sel {
		if id < 10 {
			low++
		}
	}
	if low < 3 || low > 4 {
		t.Fatalf("odd-n balance = %d/7, want 3 or 4", low)
	}
}

func TestBalanceScoreImprovesOverNaive(t *testing.T) {
	rng := tensor.NewRNG(6)
	ids, hists := skewedPopulation(20, 4)
	s, err := New(ids, hists, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := s.Select(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	balancedScore, err := s.BalanceScore(balanced)
	if err != nil {
		t.Fatal(err)
	}
	// Naive cohort: all from one regime.
	naive := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	naiveScore, err := s.BalanceScore(naive)
	if err != nil {
		t.Fatal(err)
	}
	if balancedScore >= naiveScore {
		t.Fatalf("FLIPS balance %g should beat naive %g", balancedScore, naiveScore)
	}
}

func TestCohortHistogramErrors(t *testing.T) {
	rng := tensor.NewRNG(7)
	ids, hists := skewedPopulation(6, 3)
	s, err := New(ids, hists, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CohortHistogram(nil); err == nil {
		t.Fatal("empty cohort should error")
	}
	if _, err := s.CohortHistogram([]int{999}); err == nil {
		t.Fatal("unknown party should error")
	}
}

func TestUniformPopulationSingleCluster(t *testing.T) {
	rng := tensor.NewRNG(8)
	n := 10
	ids := make([]int, n)
	hists := make([]stats.Histogram, n)
	for i := range ids {
		ids[i] = i
		hists[i] = stats.Uniform(5)
	}
	s, err := New(ids, hists, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumClusters() != 1 {
		t.Fatalf("identical histograms should form 1 cluster, got %d", s.NumClusters())
	}
	sel, err := s.Select(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Fatalf("selected %d", len(sel))
	}
}
