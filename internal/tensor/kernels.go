package tensor

import "fmt"

// In-place BLAS-level kernels. Every function writes into a caller-owned
// destination and allocates nothing, so hot loops can reuse buffers across
// iterations. Aliasing rules: dst must not alias any input unless a kernel
// documents otherwise — the loops read inputs while writing dst.
//
// Each kernel performs element operations in exactly the same order as its
// allocating counterpart (MulVec, Mean, ...), so replacing one with the
// other never changes a single bit of the result. The parity tests in
// kernels_test.go and the seed-pinned experiment traces both lean on that.

// MatVecInto computes dst = m·x. dst must have length m.Rows and must not
// alias x or m's storage.
func MatVecInto(dst Vector, m *Matrix, x Vector) error {
	if len(x) != m.Cols {
		return fmt.Errorf("matvec: %w: matrix %dx%d vs vector %d", ErrShape, m.Rows, m.Cols, len(x))
	}
	if len(dst) != m.Rows {
		return fmt.Errorf("matvec: %w: dst %d vs rows %d", ErrShape, len(dst), m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return nil
}

// MatTVecInto computes dst = mᵀ·x (x has length Rows, dst length Cols).
// dst must not alias x or m's storage. Rows whose x component is zero are
// skipped, mirroring MulVecT.
func MatTVecInto(dst Vector, m *Matrix, x Vector) error {
	if len(x) != m.Rows {
		return fmt.Errorf("mattvec: %w: matrix %dx%d vs vector %d", ErrShape, m.Rows, m.Cols, len(x))
	}
	if len(dst) != m.Cols {
		return fmt.Errorf("mattvec: %w: dst %d vs cols %d", ErrShape, len(dst), m.Cols)
	}
	dst.Fill(0)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
	return nil
}

// AxpyInto computes dst = x + a·y element-wise (the three-address form of
// Vector.Axpy). dst may alias x (dst = dst + a·y reproduces Axpy) but must
// not alias y unless a == 0.
func AxpyInto(dst Vector, x Vector, a float64, y Vector) error {
	if len(dst) != len(x) || len(dst) != len(y) {
		return fmt.Errorf("axpyinto: %w: dst %d, x %d, y %d", ErrShape, len(dst), len(x), len(y))
	}
	for i := range dst {
		dst[i] = x[i] + a*y[i]
	}
	return nil
}

// ScaleInto computes dst = a·x element-wise. dst may alias x.
func ScaleInto(dst Vector, a float64, x Vector) error {
	if len(dst) != len(x) {
		return fmt.Errorf("scaleinto: %w: dst %d vs x %d", ErrShape, len(dst), len(x))
	}
	for i := range dst {
		dst[i] = a * x[i]
	}
	return nil
}

// MeanInto computes the element-wise mean of vs into dst (same accumulation
// order as Mean). dst must not alias any element of vs.
func MeanInto(dst Vector, vs []Vector) error {
	if len(vs) == 0 {
		return fmt.Errorf("meaninto: empty vector set")
	}
	if len(dst) != len(vs[0]) {
		return fmt.Errorf("meaninto: %w: dst %d vs input %d", ErrShape, len(dst), len(vs[0]))
	}
	dst.Fill(0)
	for _, v := range vs {
		if len(v) != len(dst) {
			return fmt.Errorf("meaninto: %w: %d vs %d", ErrShape, len(v), len(dst))
		}
		for i, x := range v {
			dst[i] += x
		}
	}
	dst.Scale(1 / float64(len(vs)))
	return nil
}

// WeightedMeanInto computes Σ wᵢ·vᵢ / Σ wᵢ into dst (same accumulation
// order as WeightedMean). dst must not alias any element of vs.
func WeightedMeanInto(dst Vector, vs []Vector, weights []float64) error {
	if len(vs) == 0 {
		return fmt.Errorf("weightedmeaninto: empty vector set")
	}
	if len(vs) != len(weights) {
		return fmt.Errorf("weightedmeaninto: %w: %d vectors vs %d weights", ErrShape, len(vs), len(weights))
	}
	if len(dst) != len(vs[0]) {
		return fmt.Errorf("weightedmeaninto: %w: dst %d vs input %d", ErrShape, len(dst), len(vs[0]))
	}
	dst.Fill(0)
	var total float64
	for j, v := range vs {
		if len(v) != len(dst) {
			return fmt.Errorf("weightedmeaninto: %w: %d vs %d", ErrShape, len(v), len(dst))
		}
		w := weights[j]
		if w < 0 {
			return fmt.Errorf("weightedmeaninto: negative weight %g at index %d", w, j)
		}
		total += w
		for i, x := range v {
			dst[i] += w * x
		}
	}
	if total <= 0 {
		return fmt.Errorf("weightedmeaninto: weights sum to zero")
	}
	dst.Scale(1 / total)
	return nil
}
