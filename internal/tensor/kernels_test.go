package tensor

import (
	"errors"
	"testing"
)

func randVec(rng *RNG, n int) Vector {
	return rng.NormVec(n, 0, 1)
}

func randMat(rng *RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Norm()
	}
	return m
}

// Every Into kernel must be bit-identical to its allocating counterpart —
// the property that lets the nn layer swap them in without perturbing any
// seed-pinned trace.

func TestMatVecIntoMatchesMulVec(t *testing.T) {
	rng := NewRNG(1)
	m := randMat(rng, 7, 5)
	x := randVec(rng, 5)
	want, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewVector(7)
	if err := MatVecInto(dst, m, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %g, MulVec %g", i, dst[i], want[i])
		}
	}
	if err := MatVecInto(NewVector(3), m, x); !errors.Is(err, ErrShape) {
		t.Fatalf("short dst: %v", err)
	}
	if err := MatVecInto(dst, m, NewVector(2)); !errors.Is(err, ErrShape) {
		t.Fatalf("short x: %v", err)
	}
}

func TestMatTVecIntoMatchesMulVecT(t *testing.T) {
	rng := NewRNG(2)
	m := randMat(rng, 6, 4)
	x := randVec(rng, 6)
	x[2] = 0 // exercise the zero-skip path
	want, err := m.MulVecT(x)
	if err != nil {
		t.Fatal(err)
	}
	dst := randVec(rng, 4) // pre-filled: kernel must overwrite
	if err := MatTVecInto(dst, m, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %g, MulVecT %g", i, dst[i], want[i])
		}
	}
	if err := MatTVecInto(NewVector(9), m, x); !errors.Is(err, ErrShape) {
		t.Fatalf("bad dst: %v", err)
	}
	if err := MatTVecInto(dst, m, NewVector(1)); !errors.Is(err, ErrShape) {
		t.Fatalf("bad x: %v", err)
	}
}

func TestAxpyIntoMatchesAxpy(t *testing.T) {
	rng := NewRNG(3)
	x := randVec(rng, 8)
	y := randVec(rng, 8)
	want := x.Clone()
	if err := want.Axpy(0.37, y); err != nil {
		t.Fatal(err)
	}
	dst := NewVector(8)
	if err := AxpyInto(dst, x, 0.37, y); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %g, Axpy %g", i, dst[i], want[i])
		}
	}
	// Aliased form dst = dst + a·y.
	alias := x.Clone()
	if err := AxpyInto(alias, alias, 0.37, y); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if alias[i] != want[i] {
			t.Fatalf("aliased dst[%d] = %g, want %g", i, alias[i], want[i])
		}
	}
	if err := AxpyInto(NewVector(2), x, 1, y); !errors.Is(err, ErrShape) {
		t.Fatalf("bad dst: %v", err)
	}
}

func TestScaleIntoMatchesScale(t *testing.T) {
	rng := NewRNG(4)
	x := randVec(rng, 8)
	want := x.Clone()
	want.Scale(1 / 3.0)
	dst := NewVector(8)
	if err := ScaleInto(dst, 1/3.0, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %g, Scale %g", i, dst[i], want[i])
		}
	}
	if err := ScaleInto(NewVector(2), 1, x); !errors.Is(err, ErrShape) {
		t.Fatalf("bad dst: %v", err)
	}
}

func TestMeanIntoMatchesMean(t *testing.T) {
	rng := NewRNG(5)
	vs := []Vector{randVec(rng, 6), randVec(rng, 6), randVec(rng, 6)}
	want, err := Mean(vs)
	if err != nil {
		t.Fatal(err)
	}
	dst := randVec(rng, 6)
	if err := MeanInto(dst, vs); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %g, Mean %g", i, dst[i], want[i])
		}
	}
	if err := MeanInto(dst, nil); err == nil {
		t.Fatal("empty set should error")
	}
	if err := MeanInto(NewVector(2), vs); !errors.Is(err, ErrShape) {
		t.Fatalf("bad dst: %v", err)
	}
}

func TestWeightedMeanIntoMatchesWeightedMean(t *testing.T) {
	rng := NewRNG(6)
	vs := []Vector{randVec(rng, 6), randVec(rng, 6), randVec(rng, 6)}
	ws := []float64{1, 2.5, 0.5}
	want, err := WeightedMean(vs, ws)
	if err != nil {
		t.Fatal(err)
	}
	dst := randVec(rng, 6)
	if err := WeightedMeanInto(dst, vs, ws); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %g, WeightedMean %g", i, dst[i], want[i])
		}
	}
	if err := WeightedMeanInto(dst, vs, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("weight mismatch: %v", err)
	}
	if err := WeightedMeanInto(dst, vs, []float64{0, 0, 0}); err == nil {
		t.Fatal("zero weights should error")
	}
	if err := WeightedMeanInto(dst, vs, []float64{1, -1, 1}); err == nil {
		t.Fatal("negative weight should error")
	}
}

func TestWorkspaceCarveAndReset(t *testing.T) {
	ws := NewWorkspace(4)
	v := ws.Vec(3)
	if len(v) != 3 || ws.InUse() != 3 {
		t.Fatalf("Vec(3): len %d, in use %d", len(v), ws.InUse())
	}
	v[0] = 42
	m := ws.Mat(2, 3) // forces growth past the initial 4
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("Mat(2,3): %dx%d data %d", m.Rows, m.Cols, len(m.Data))
	}
	if v[0] != 42 {
		t.Fatal("growth lost live buffer contents")
	}
	for _, x := range m.Data {
		if x != 0 {
			t.Fatal("carved matrix not zeroed")
		}
	}
	ws.Reset()
	if ws.InUse() != 0 {
		t.Fatalf("in use after reset: %d", ws.InUse())
	}
	// Buffers carved after Reset must be zeroed even though the backing
	// storage was dirtied before.
	v2 := ws.Vec(3)
	for _, x := range v2 {
		if x != 0 {
			t.Fatal("post-reset vector not zeroed")
		}
	}
	// Carving the same shapes after Reset must not allocate.
	if !raceEnabled {
		ws.Reset()
		if n := testing.AllocsPerRun(100, func() {
			ws.Reset()
			_ = ws.Vec(3)
		}); n != 0 {
			t.Fatalf("steady-state Vec allocates %v/op, want 0", n)
		}
	}
}

// TestWorkspaceCarvesAreDisjoint guards the three-index cap in take():
// writing one carved buffer beyond its length must never bleed into the
// next carve.
func TestWorkspaceCarvesAreDisjoint(t *testing.T) {
	ws := NewWorkspace(16)
	a := ws.Vec(4)
	b := ws.Vec(4)
	if cap(a) != 4 {
		t.Fatalf("carve cap = %d, want 4", cap(a))
	}
	a = append(a, 99) // must reallocate a, not overwrite b
	if b[0] != 0 {
		t.Fatalf("append through carve overwrote the next buffer: %g", b[0])
	}
	_ = a
}
