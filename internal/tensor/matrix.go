package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j). Out-of-range indices yield NaN.
func (m *Matrix) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		return math.NaN()
	}
	return m.Data[i*m.Cols+j]
}

// Set writes the element at (i, j); out-of-range indices are ignored.
func (m *Matrix) Set(i, j int, v float64) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		return
	}
	m.Data[i*m.Cols+j] = v
}

// Row returns row i as a Vector sharing m's storage.
func (m *Matrix) Row(i int) Vector {
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes y = m·x. It returns ErrShape when dimensions disagree.
func (m *Matrix) MulVec(x Vector) (Vector, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("mulvec: %w: matrix %dx%d vs vector %d", ErrShape, m.Rows, m.Cols, len(x))
	}
	y := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// MulVecT computes y = mᵀ·x (x has length Rows, result length Cols).
func (m *Matrix) MulVecT(x Vector) (Vector, error) {
	if len(x) != m.Rows {
		return nil, fmt.Errorf("mulvect: %w: matrix %dx%d vs vector %d", ErrShape, m.Rows, m.Cols, len(x))
	}
	y := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y, nil
}

// AddOuter accumulates m += a · x·yᵀ, the rank-1 update used by dense-layer
// gradients.
func (m *Matrix) AddOuter(a float64, x, y Vector) error {
	if len(x) != m.Rows || len(y) != m.Cols {
		return fmt.Errorf("addouter: %w: matrix %dx%d vs vectors %d,%d",
			ErrShape, m.Rows, m.Cols, len(x), len(y))
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := a * xi
		for j, yj := range y {
			row[j] += s * yj
		}
	}
	return nil
}

// Scale multiplies all elements in place.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Axpy computes m += a*n element-wise in place.
func (m *Matrix) Axpy(a float64, n *Matrix) error {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return fmt.Errorf("matrix axpy: %w: %dx%d vs %dx%d", ErrShape, m.Rows, m.Cols, n.Rows, n.Cols)
	}
	for i, v := range n.Data {
		m.Data[i] += a * v
	}
	return nil
}

// Zero resets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}
