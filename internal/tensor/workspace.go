package tensor

// Workspace is a bump allocator for float64 buffers: callers carve vectors
// and matrices out of one backing array, then Reset to reuse the storage on
// the next iteration. A workspace grows monotonically to the high-water
// mark of its users and never shrinks, so a steady-state loop that carves
// the same shapes every iteration performs zero allocations.
//
// Buffers handed out by Vec/Mat are valid until the next Reset; retaining
// one across Reset aliases whatever is carved afterwards. Workspaces are
// not safe for concurrent use — give each goroutine its own.
type Workspace struct {
	buf  []float64
	used int
}

// NewWorkspace returns a workspace with capacity for n floats (it grows on
// demand; n is just the initial reservation).
func NewWorkspace(n int) *Workspace {
	if n < 0 {
		n = 0
	}
	return &Workspace{buf: make([]float64, n)}
}

// Vec carves a zeroed vector of length n out of the workspace.
func (w *Workspace) Vec(n int) Vector {
	out := w.take(n)
	for i := range out {
		out[i] = 0
	}
	return out
}

// Mat carves a zeroed rows×cols matrix out of the workspace. The Matrix
// header itself is heap-allocated only when it escapes; the element storage
// comes from the workspace.
func (w *Workspace) Mat(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: w.take(rows * cols)}
}

// take returns n floats of backing storage, growing the buffer if needed.
func (w *Workspace) take(n int) []float64 {
	if w.used+n > len(w.buf) {
		grown := make([]float64, max(2*len(w.buf), w.used+n))
		copy(grown, w.buf[:w.used])
		w.buf = grown
	}
	out := w.buf[w.used : w.used+n : w.used+n]
	w.used += n
	return out
}

// Reset makes the full backing store available again. Buffers carved before
// the Reset must no longer be used.
func (w *Workspace) Reset() { w.used = 0 }

// Cap returns the workspace's current capacity in floats.
func (w *Workspace) Cap() int { return len(w.buf) }

// InUse returns how many floats are currently carved out.
func (w *Workspace) InUse() int { return w.used }
