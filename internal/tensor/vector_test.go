package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestVectorDot(t *testing.T) {
	tests := []struct {
		name    string
		v, w    Vector
		want    float64
		wantErr bool
	}{
		{name: "basic", v: Vector{1, 2, 3}, w: Vector{4, 5, 6}, want: 32},
		{name: "zero length", v: Vector{}, w: Vector{}, want: 0},
		{name: "mismatch", v: Vector{1}, w: Vector{1, 2}, wantErr: true},
		{name: "negatives", v: Vector{-1, 1}, w: Vector{1, -1}, want: -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.v.Dot(tt.w)
			if tt.wantErr {
				if err == nil {
					t.Fatal("expected error, got nil")
				}
				if !errors.Is(err, ErrShape) {
					t.Fatalf("expected ErrShape, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Fatalf("dot = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestVectorNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("norm = %g, want 5", got)
	}
	if got := (Vector{}).Norm(); got != 0 {
		t.Fatalf("empty norm = %g, want 0", got)
	}
}

func TestVectorAddSubScaleAxpy(t *testing.T) {
	v := Vector{1, 2, 3}
	if err := v.Add(Vector{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if v[0] != 2 || v[2] != 4 {
		t.Fatalf("add result %v", v)
	}
	if err := v.Sub(Vector{2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if v[0] != 0 || v[2] != 2 {
		t.Fatalf("sub result %v", v)
	}
	v.Scale(3)
	if v[2] != 6 {
		t.Fatalf("scale result %v", v)
	}
	if err := v.Axpy(0.5, Vector{2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 {
		t.Fatalf("axpy result %v", v)
	}
	if err := v.Add(Vector{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("add shape error = %v", err)
	}
	if err := v.Sub(Vector{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("sub shape error = %v", err)
	}
	if err := v.Axpy(1, Vector{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("axpy shape error = %v", err)
	}
}

func TestVectorArgMax(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want int
	}{
		{name: "empty", v: nil, want: -1},
		{name: "single", v: Vector{7}, want: 0},
		{name: "middle", v: Vector{1, 9, 3}, want: 1},
		{name: "tie lowest index", v: Vector{5, 5, 5}, want: 0},
		{name: "negative values", v: Vector{-3, -1, -2}, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.ArgMax(); got != tt.want {
				t.Fatalf("argmax = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity(Vector{1, 0}, Vector{1, 0}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("parallel = %g", got)
	}
	if got := CosineSimilarity(Vector{1, 0}, Vector{0, 1}); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("orthogonal = %g", got)
	}
	if got := CosineSimilarity(Vector{1, 0}, Vector{-1, 0}); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("antiparallel = %g", got)
	}
	if got := CosineSimilarity(Vector{0, 0}, Vector{1, 0}); got != 0 {
		t.Fatalf("zero vector = %g", got)
	}
	if got := CosineSimilarity(Vector{1}, Vector{1, 2}); !math.IsNaN(got) {
		t.Fatalf("shape mismatch = %g, want NaN", got)
	}
}

func TestMeanAndWeightedMean(t *testing.T) {
	vs := []Vector{{1, 2}, {3, 4}}
	m, err := Mean(vs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m[0], 2, 1e-12) || !almostEqual(m[1], 3, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if _, err := Mean(nil); err == nil {
		t.Fatal("expected error for empty mean")
	}
	if _, err := Mean([]Vector{{1}, {1, 2}}); !errors.Is(err, ErrShape) {
		t.Fatalf("mean shape error = %v", err)
	}

	wm, err := WeightedMean(vs, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(wm[0], 1.5, 1e-12) {
		t.Fatalf("weighted mean = %v", wm)
	}
	if _, err := WeightedMean(vs, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("weighted mean count mismatch = %v", err)
	}
	if _, err := WeightedMean(vs, []float64{0, 0}); err == nil {
		t.Fatal("expected zero-weight error")
	}
	if _, err := WeightedMean(vs, []float64{-1, 2}); err == nil {
		t.Fatal("expected negative-weight error")
	}
}

func TestDistance(t *testing.T) {
	if got := Distance(Vector{0, 0}, Vector{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("distance = %g", got)
	}
	if got := SquaredDistance(Vector{1}, Vector{1, 2}); !math.IsNaN(got) {
		t.Fatalf("mismatched squared distance = %g, want NaN", got)
	}
}

// clampVec maps arbitrary quick-generated floats into [-1e6, 1e6] so the
// identities under test are not confounded by overflow to ±Inf.
func clampVec(a []float64) Vector {
	v := make(Vector, len(a))
	for i, x := range a {
		switch {
		case math.IsNaN(x):
			v[i] = 0
		case x > 1e6:
			v[i] = 1e6
		case x < -1e6:
			v[i] = -1e6
		default:
			v[i] = x
		}
	}
	return v
}

func TestPropertyCauchySchwarz(t *testing.T) {
	f := func(a, b [8]float64) bool {
		v, w := clampVec(a[:]), clampVec(b[:])
		dot := v.MustDot(w)
		bound := v.Norm() * w.Norm()
		return math.Abs(dot) <= bound*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(a, b, c [6]float64) bool {
		x, y, z := clampVec(a[:]), clampVec(b[:]), clampVec(c[:])
		lhs := Distance(x, z)
		rhs := Distance(x, y) + Distance(y, z)
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorCloneIsDeep(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("clone aliases original storage")
	}
}
