// Package tensor provides the dense linear-algebra primitives used by the
// neural-network, statistics, and clustering layers: float64 vectors and
// matrices, a small set of BLAS-level kernels, and a deterministic random
// number generator.
//
// Everything in this package is written against plain slices so callers can
// interoperate with it without conversions, and every routine is
// deterministic given a seeded RNG.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape indicates that the dimensions of the operands do not agree.
var ErrShape = errors.New("tensor: shape mismatch")

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w.
// It returns ErrShape if the lengths differ.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("dot: %w: %d vs %d", ErrShape, len(v), len(w))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s, nil
}

// MustDot is Dot for equal-length vectors the caller has already validated.
// Mismatched lengths yield NaN rather than a panic.
func (v Vector) MustDot(w Vector) float64 {
	s, err := v.Dot(w)
	if err != nil {
		return math.NaN()
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Add adds w into v element-wise in place.
func (v Vector) Add(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("add: %w: %d vs %d", ErrShape, len(v), len(w))
	}
	for i := range v {
		v[i] += w[i]
	}
	return nil
}

// Sub subtracts w from v element-wise in place.
func (v Vector) Sub(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("sub: %w: %d vs %d", ErrShape, len(v), len(w))
	}
	for i := range v {
		v[i] -= w[i]
	}
	return nil
}

// Scale multiplies every element of v by a in place.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Axpy computes v += a*w in place.
func (v Vector) Axpy(a float64, w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("axpy: %w: %d vs %d", ErrShape, len(v), len(w))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return nil
}

// Fill sets every element of v to a.
func (v Vector) Fill(a float64) {
	for i := range v {
		v[i] = a
	}
}

// Sum returns the sum of all elements.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// ArgMax returns the index of the largest element, or -1 for an empty vector.
// Ties resolve to the lowest index.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	best, bestIdx := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bestIdx = v[i], i
		}
	}
	return bestIdx
}

// SquaredDistance returns ||v-w||² or NaN when shapes differ.
func SquaredDistance(v, w Vector) float64 {
	if len(v) != len(w) {
		return math.NaN()
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between v and w.
func Distance(v, w Vector) float64 {
	return math.Sqrt(SquaredDistance(v, w))
}

// CosineSimilarity returns the cosine of the angle between v and w.
// Zero-norm inputs yield 0.
func CosineSimilarity(v, w Vector) float64 {
	if len(v) != len(w) {
		return math.NaN()
	}
	var dot, nv, nw float64
	for i := range v {
		dot += v[i] * w[i]
		nv += v[i] * v[i]
		nw += w[i] * w[i]
	}
	if nv == 0 || nw == 0 {
		return 0
	}
	return dot / (math.Sqrt(nv) * math.Sqrt(nw))
}

// Mean returns the element-wise mean of the given vectors.
// It returns ErrShape when the vectors disagree in length, and an error when
// the input is empty.
func Mean(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("tensor: mean of empty vector set")
	}
	n := len(vs[0])
	out := NewVector(n)
	for _, v := range vs {
		if len(v) != n {
			return nil, fmt.Errorf("mean: %w: %d vs %d", ErrShape, len(v), n)
		}
		for i, x := range v {
			out[i] += x
		}
	}
	out.Scale(1 / float64(len(vs)))
	return out, nil
}

// WeightedMean returns Σ wᵢ·vᵢ / Σ wᵢ. Weights must be non-negative and sum
// to a positive value.
func WeightedMean(vs []Vector, weights []float64) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("tensor: weighted mean of empty vector set")
	}
	if len(vs) != len(weights) {
		return nil, fmt.Errorf("weighted mean: %w: %d vectors vs %d weights", ErrShape, len(vs), len(weights))
	}
	n := len(vs[0])
	out := NewVector(n)
	var total float64
	for j, v := range vs {
		if len(v) != n {
			return nil, fmt.Errorf("weighted mean: %w: %d vs %d", ErrShape, len(v), n)
		}
		w := weights[j]
		if w < 0 {
			return nil, fmt.Errorf("tensor: negative weight %g at index %d", w, j)
		}
		total += w
		for i, x := range v {
			out[i] += w * x
		}
	}
	if total <= 0 {
		return nil, errors.New("tensor: weights sum to zero")
	}
	out.Scale(1 / total)
	return out, nil
}
