package tensor

import (
	"encoding/json"
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds yielded identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("norm mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("norm variance = %g, want ~1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make(map[int]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatal("permutation not complete")
	}
}

func TestRNGDirichlet(t *testing.T) {
	r := NewRNG(11)
	for _, alpha := range []float64{0.1, 0.5, 1, 5} {
		v := r.Dirichlet(10, alpha)
		if len(v) != 10 {
			t.Fatalf("len = %d", len(v))
		}
		var sum float64
		for _, x := range v {
			if x < 0 {
				t.Fatalf("negative component %g (alpha=%g)", x, alpha)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("dirichlet sums to %g (alpha=%g)", sum, alpha)
		}
	}
	if r.Dirichlet(0, 1) != nil {
		t.Fatal("k=0 should yield nil")
	}
}

func TestRNGDirichletConcentration(t *testing.T) {
	// Low alpha should concentrate mass; high alpha should flatten.
	r := NewRNG(13)
	maxOf := func(alpha float64) float64 {
		var total float64
		const trials = 200
		for i := 0; i < trials; i++ {
			v := r.Dirichlet(10, alpha)
			var m float64
			for _, x := range v {
				if x > m {
					m = x
				}
			}
			total += m
		}
		return total / trials
	}
	low, high := maxOf(0.1), maxOf(10)
	if low <= high {
		t.Fatalf("alpha=0.1 avg max %g should exceed alpha=10 avg max %g", low, high)
	}
}

func TestRNGCategorical(t *testing.T) {
	r := NewRNG(17)
	counts := make([]int, 3)
	w := Vector{1, 0, 3}
	for i := 0; i < 40000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight class drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("ratio = %g, want ~3", ratio)
	}
	if got := r.Categorical(Vector{0, 0}); got != 0 {
		t.Fatalf("all-zero weights should return 0, got %d", got)
	}
}

func TestRNGSample(t *testing.T) {
	r := NewRNG(19)
	s := r.Sample(10, 4)
	if len(s) != 4 {
		t.Fatalf("sample size = %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate in sample")
		}
		seen[v] = true
	}
	if got := r.Sample(3, 10); len(got) != 3 {
		t.Fatalf("oversized k should return n items, got %d", len(got))
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(23)
	a := r.Split()
	b := r.Split()
	same := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("split RNGs produced identical streams")
	}
}

func TestRNGIntnEdge(t *testing.T) {
	r := NewRNG(29)
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("non-positive n must return 0")
	}
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(99)
	// Burn through draws of every flavor, ending mid-Box-Muller so the
	// cached gaussian is part of the state.
	for i := 0; i < 17; i++ {
		r.Uint64()
		r.Float64()
	}
	r.Norm()

	st := r.State()
	clone := RestoreRNG(st)
	for i := 0; i < 100; i++ {
		if a, b := r.Norm(), clone.Norm(); a != b {
			t.Fatalf("draw %d diverges: %g vs %g", i, a, b)
		}
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("draw %d diverges: %d vs %d", i, a, b)
		}
	}
}

func TestRNGStateJSONRoundTrip(t *testing.T) {
	r := NewRNG(7)
	r.Norm() // populate the gaussian cache
	st := r.State()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded RNGState
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded != st {
		t.Fatalf("state round trip: %+v vs %+v", decoded, st)
	}
	clone := RestoreRNG(decoded)
	if clone.Uint64() != r.Uint64() {
		t.Fatal("JSON-restored RNG diverges")
	}
}

func TestRestoreRNGZeroState(t *testing.T) {
	r := RestoreRNG(RNGState{})
	// The all-zero xoshiro state is a fixed point; restore must avoid it.
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("restored zero-state RNG is stuck")
	}
}
