package tensor

import (
	"errors"
	"fmt"
	"testing"
)

// The GEMM kernels must be bit-identical to the looped MatVecInto paths
// they replace: tiling may only change which elements are computed
// together, never the per-element accumulation order. Shapes straddle the
// matMulBlock edge on purpose (prime-ish dims larger and smaller than 32)
// so partial tiles are exercised in every loop.

func TestMatMulTransIntoMatchesLoopedMatVecInto(t *testing.T) {
	rng := NewRNG(11)
	for _, shape := range [][3]int{
		{1, 5, 3},    // batch 1
		{7, 5, 9},    // everything below one tile
		{33, 37, 41}, // partial tiles on every edge
		{64, 32, 32}, // exact tile multiples
		{97, 3, 129}, // wide output, skinny k
	} {
		n, k, m := shape[0], shape[1], shape[2]
		a := randMat(rng, n, k)
		b := randMat(rng, m, k)
		dst := randMat(rng, n, m) // pre-filled: kernel must overwrite
		if err := MatMulTransInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		row := NewVector(m)
		for i := 0; i < n; i++ {
			if err := MatVecInto(row, b, a.Row(i)); err != nil {
				t.Fatal(err)
			}
			for j := range row {
				if dst.At(i, j) != row[j] {
					t.Fatalf("%dx%dx%d: dst[%d][%d] = %g, MatVecInto %g",
						n, k, m, i, j, dst.At(i, j), row[j])
				}
			}
		}
	}
}

func TestMatMulIntoMatchesLoopedMatVecInto(t *testing.T) {
	rng := NewRNG(12)
	for _, shape := range [][3]int{
		{1, 4, 2},
		{6, 8, 5},
		{33, 37, 41},
		{32, 64, 32},
	} {
		n, k, m := shape[0], shape[1], shape[2]
		a := randMat(rng, n, k)
		b := randMat(rng, k, m)
		dst := randMat(rng, n, m)
		if err := MatMulInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
		// Column j of dst must equal a · b[:,j], computed by MatVecInto.
		col := NewVector(k)
		out := NewVector(n)
		for j := 0; j < m; j++ {
			for kk := 0; kk < k; kk++ {
				col[kk] = b.At(kk, j)
			}
			if err := MatVecInto(out, a, col); err != nil {
				t.Fatal(err)
			}
			for i := range out {
				if dst.At(i, j) != out[i] {
					t.Fatalf("%dx%dx%d: dst[%d][%d] = %g, MatVecInto %g",
						n, k, m, i, j, dst.At(i, j), out[i])
				}
			}
		}
	}
}

func TestMatMulIntoShapeErrors(t *testing.T) {
	a := NewMatrix(3, 4)
	b := NewMatrix(4, 5)
	bt := NewMatrix(5, 4)
	if err := MatMulInto(NewMatrix(3, 5), a, b); err != nil {
		t.Fatalf("good shapes: %v", err)
	}
	if err := MatMulInto(NewMatrix(3, 5), a, NewMatrix(2, 5)); !errors.Is(err, ErrShape) {
		t.Fatalf("inner mismatch: %v", err)
	}
	if err := MatMulInto(NewMatrix(2, 5), a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("bad dst: %v", err)
	}
	if err := MatMulTransInto(NewMatrix(3, 5), a, bt); err != nil {
		t.Fatalf("good trans shapes: %v", err)
	}
	if err := MatMulTransInto(NewMatrix(3, 5), a, NewMatrix(5, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("trans inner mismatch: %v", err)
	}
	if err := MatMulTransInto(NewMatrix(3, 4), a, bt); !errors.Is(err, ErrShape) {
		t.Fatalf("trans bad dst: %v", err)
	}
}

func TestMatMulKernelsAllocateNothing(t *testing.T) {
	rng := NewRNG(13)
	a := randMat(rng, 33, 37)
	b := randMat(rng, 37, 41)
	bt := randMat(rng, 41, 37)
	dst := NewMatrix(33, 41)
	if n := testing.AllocsPerRun(20, func() {
		if err := MatMulInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("MatMulInto allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := MatMulTransInto(dst, a, bt); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("MatMulTransInto allocates %v per run, want 0", n)
	}
}

// BenchmarkMatMulTransInto compares the GEMM kernel against the looped
// per-row MatVecInto it replaces, at the layer shapes batched serving runs.
func BenchmarkMatMulTransInto(b *testing.B) {
	for _, bs := range []int{1, 8, 32, 128} {
		rng := NewRNG(uint64(bs))
		x := randMat(rng, bs, 128)
		w := randMat(rng, 128, 128)
		dst := NewMatrix(bs, 128)
		b.Run(fmt.Sprintf("gemm/batch=%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := MatMulTransInto(dst, x, w); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("looped/batch=%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			row := NewVector(128)
			for i := 0; i < b.N; i++ {
				for r := 0; r < bs; r++ {
					if err := MatVecInto(row, w, x.Row(r)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
