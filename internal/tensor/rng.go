package tensor

import "math"

// RNG is a deterministic random number generator (splitmix64 seeded
// xoshiro256**). All stochastic components of the system draw through an RNG
// so that entire experiments are reproducible from a single seed.
//
// RNG is not safe for concurrent use; give each goroutine its own via Split.
type RNG struct {
	s [4]uint64

	// cached second Box-Muller variate
	haveGauss bool
	gauss     float64
}

// NewRNG returns an RNG seeded from the given seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new, independent RNG from r; the parent advances.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

// RNGState is the serializable snapshot of an RNG: the xoshiro256** state
// word plus the cached Box-Muller variate. Restoring it resumes the stream
// at exactly the draw where State was taken, which is what lets a
// checkpointed aggregator replay identically to an uninterrupted run.
type RNGState struct {
	S         [4]uint64 `json:"s"`
	HaveGauss bool      `json:"haveGauss,omitempty"`
	Gauss     float64   `json:"gauss,omitempty"`
}

// State captures the RNG's current position in its stream.
func (r *RNG) State() RNGState {
	return RNGState{S: r.s, HaveGauss: r.haveGauss, Gauss: r.gauss}
}

// RestoreRNG rebuilds an RNG positioned at the given state.
func RestoreRNG(st RNGState) *RNG {
	r := &RNG{s: st.S, haveGauss: st.HaveGauss, gauss: st.Gauss}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be positive; otherwise 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate via Box-Muller.
func (r *RNG) Norm() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// NormVec fills a fresh vector of length n with N(mu, sigma²) draws.
func (r *RNG) NormVec(n int, mu, sigma float64) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = mu + sigma*r.Norm()
	}
	return v
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices via the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Dirichlet draws from a symmetric Dirichlet(alpha) over k categories using
// Gamma(alpha, 1) variates (Marsaglia-Tsang for alpha >= 1, boosting below).
func (r *RNG) Dirichlet(k int, alpha float64) Vector {
	if k <= 0 {
		return nil
	}
	v := NewVector(k)
	var sum float64
	for i := range v {
		g := r.gamma(alpha)
		v[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw; fall back to uniform.
		v.Fill(1 / float64(k))
		return v
	}
	v.Scale(1 / sum)
	return v
}

// gamma draws Gamma(alpha, 1). alpha must be positive; non-positive alpha
// yields 0.
func (r *RNG) gamma(alpha float64) float64 {
	if alpha <= 0 {
		return 0
	}
	if alpha < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.gamma(alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Categorical draws an index from the (not necessarily normalized)
// non-negative weight vector w. An all-zero weight vector yields 0.
func (r *RNG) Categorical(w Vector) int {
	var total float64
	for _, x := range w {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		return 0
	}
	target := r.Float64() * total
	var acc float64
	for i, x := range w {
		if x <= 0 {
			continue
		}
		acc += x
		if target < acc {
			return i
		}
	}
	return len(w) - 1
}

// Sample returns k distinct indices drawn uniformly from [0, n). If k >= n it
// returns all n indices in random order.
func (r *RNG) Sample(n, k int) []int {
	p := r.Perm(n)
	if k >= n {
		return p
	}
	return p[:k]
}
