package tensor

import "fmt"

// Blocked Mat×Mat (GEMM) kernels for whole-batch inference. Like the other
// in-place kernels, they write into caller-owned destinations and allocate
// nothing. dst must not alias a or b: both loops read the inputs while
// writing dst.
//
// The loops are tiled for cache locality, but every destination element
// still accumulates its k-products in strictly ascending k order — the same
// order MatVecInto uses — so a batched forward pass is bit-identical to the
// per-sample loop it replaces. Tiling only changes WHICH elements are in
// flight together, never the addition order within one element; the parity
// tests in matmul_test.go pin this down to the last bit.

// matMulBlock is the tile edge. 32 rows of a 256-wide f64 operand are
// 64 KiB — the tile of b reused across a whole tile of a stays resident in
// L1/L2 for every architecture this repo trains, while the tight dot-product
// inner loops run over contiguous rows.
const matMulBlock = 32

// MatMulInto computes dst = a·b (a is n×k, b is k×m, dst n×m), overwriting
// dst. Accumulation over k ascends for every element, so column j of dst is
// bit-identical to MatVecInto(col, a, b[:,j]). dst must not alias a or b.
func MatMulInto(dst, a, b *Matrix) error {
	if a.Cols != b.Rows {
		return fmt.Errorf("matmul: %w: a %dx%d vs b %dx%d", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		return fmt.Errorf("matmul: %w: dst %dx%d, want %dx%d", ErrShape, dst.Rows, dst.Cols, a.Rows, b.Cols)
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	// j/k-tiled ikj order: for one column tile, each k tile of b (a
	// matMulBlock×matMulBlock block) is reused across every row of a
	// before the next is loaded. k tiles ascend, and the inner k loop
	// ascends within a tile, so per-element accumulation order is plain
	// ascending k.
	for j0 := 0; j0 < b.Cols; j0 += matMulBlock {
		j1 := min(j0+matMulBlock, b.Cols)
		for k0 := 0; k0 < a.Cols; k0 += matMulBlock {
			k1 := min(k0+matMulBlock, a.Cols)
			for i := 0; i < a.Rows; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				drow := dst.Data[i*dst.Cols+j0 : i*dst.Cols+j1]
				for k := k0; k < k1; k++ {
					aik := arow[k]
					brow := b.Data[k*b.Cols+j0 : k*b.Cols+j1]
					for j, bv := range brow {
						drow[j] += aik * bv
					}
				}
			}
		}
	}
	return nil
}

// MatMulTransInto computes dst = a·bᵀ (a is n×k, b is m×k, dst n×m),
// overwriting dst. This is the batched-forward shape: a batch of row-major
// inputs times a Dense layer's row-major W runs each dot product over two
// contiguous rows. Row i of dst is bit-identical to MatVecInto(row, b,
// a.Row(i)) — the per-sample forward kernel — because each dot product
// accumulates in ascending k exactly as MatVecInto does. dst must not alias
// a or b.
func MatMulTransInto(dst, a, b *Matrix) error {
	if a.Cols != b.Cols {
		return fmt.Errorf("matmultrans: %w: a %dx%d vs bᵀ %dx%d", ErrShape, a.Rows, a.Cols, b.Cols, b.Rows)
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		return fmt.Errorf("matmultrans: %w: dst %dx%d, want %dx%d", ErrShape, dst.Rows, dst.Cols, a.Rows, b.Rows)
	}
	// Tiles over (rows of a) × (rows of b): one tile of b rows is reused
	// across a whole tile of a rows while both stay cache-resident. The
	// inner kernel computes four output elements at once — four
	// independent accumulator chains hide the FP-add latency of a single
	// sequential dot product. Each accumulator still sums its k-products
	// in strictly ascending order (unrolling is across OUTPUT elements,
	// never within one), so bit parity with MatVecInto is preserved.
	for i0 := 0; i0 < a.Rows; i0 += matMulBlock {
		i1 := min(i0+matMulBlock, a.Rows)
		for j0 := 0; j0 < b.Rows; j0 += matMulBlock {
			j1 := min(j0+matMulBlock, b.Rows)
			for i := i0; i < i1; i++ {
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
				j := j0
				for ; j+3 < j1; j += 4 {
					n := len(arow)
					b0 := b.Data[j*b.Cols:][:n]
					b1 := b.Data[(j+1)*b.Cols:][:n]
					b2 := b.Data[(j+2)*b.Cols:][:n]
					b3 := b.Data[(j+3)*b.Cols:][:n]
					var s0, s1, s2, s3 float64
					for k, av := range arow {
						s0 += av * b0[k]
						s1 += av * b1[k]
						s2 += av * b2[k]
						s3 += av * b3[k]
					}
					drow[j] = s0
					drow[j+1] = s1
					drow[j+2] = s2
					drow[j+3] = s3
				}
				for ; j < j1; j++ {
					brow := b.Data[j*b.Cols:][:len(arow)]
					var s float64
					for k, av := range arow {
						s += av * brow[k]
					}
					drow[j] = s
				}
			}
		}
	}
	return nil
}
