package tensor

import (
	"errors"
	"math"
	"testing"
)

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %g", got)
	}
	if got := m.At(5, 0); !math.IsNaN(got) {
		t.Fatalf("out-of-range At = %g, want NaN", got)
	}
	m.Set(9, 9, 1) // must not panic or corrupt
	if m.Data[0] != 0 {
		t.Fatal("out-of-range Set corrupted data")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y, err := m.MulVec(Vector{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := m.MulVec(Vector{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("shape error = %v", err)
	}
}

func TestMatrixMulVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y, err := m.MulVecT(Vector{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{9, 12, 15}
	for i := range want {
		if !almostEqual(y[i], want[i], 1e-12) {
			t.Fatalf("MulVecT = %v, want %v", y, want)
		}
	}
	if _, err := m.MulVecT(Vector{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Fatalf("shape error = %v", err)
	}
}

func TestMatrixAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	if err := m.AddOuter(2, Vector{1, 0}, Vector{3, 4}); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 6 || m.At(0, 1) != 8 || m.At(1, 0) != 0 {
		t.Fatalf("AddOuter result %v", m.Data)
	}
	if err := m.AddOuter(1, Vector{1}, Vector{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("shape error = %v", err)
	}
}

func TestMatrixAxpyZeroClone(t *testing.T) {
	m := NewMatrix(1, 2)
	n := NewMatrix(1, 2)
	copy(n.Data, []float64{1, 2})
	if err := m.Axpy(2, n); err != nil {
		t.Fatal(err)
	}
	if m.Data[1] != 4 {
		t.Fatalf("axpy = %v", m.Data)
	}
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] == 99 {
		t.Fatal("clone aliases storage")
	}
	m.Zero()
	if m.Data[1] != 0 {
		t.Fatal("zero did not reset")
	}
	if err := m.Axpy(1, NewMatrix(2, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("axpy shape error = %v", err)
	}
}

func TestMatrixRowSharesStorage(t *testing.T) {
	m := NewMatrix(2, 2)
	r := m.Row(1)
	r[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must alias matrix storage")
	}
}

// MulVecT must agree with explicit transpose multiplication.
func TestMulVecTMatchesTranspose(t *testing.T) {
	rng := NewRNG(7)
	m := NewMatrix(4, 3)
	for i := range m.Data {
		m.Data[i] = rng.Norm()
	}
	x := rng.NormVec(4, 0, 1)
	got, err := m.MulVecT(x)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit transpose.
	tr := NewMatrix(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			tr.Set(j, i, m.At(i, j))
		}
	}
	want, err := tr.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Fatalf("MulVecT disagrees with transpose: %v vs %v", got, want)
		}
	}
}
