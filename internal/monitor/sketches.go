package monitor

import (
	"repro/internal/stats"
	"repro/internal/tensor"
)

// This file is the monitor's adaptation-facing surface: a push subscription
// over drift evaluations and a pull export of the live sketches. Both exist
// for internal/continual — the controller subscribes to evaluations to decide
// *when* to adapt, then harvests the sketches to build the window statistics
// the adaptation pipeline consumes — but neither knows about the controller:
// monitor stays importable by serve and gateway without cycles.

// ExpertSketch is one expert's exported live state: the streaming mean and
// variance of the embeddings routed to it since the current reference was
// installed, next to the latent memory those requests were matched against.
type ExpertSketch struct {
	ID       int           `json:"id"`
	Samples  int           `json:"samples"`
	Mean     tensor.Vector `json:"mean,omitempty"`
	Variance tensor.Vector `json:"variance,omitempty"`
	Memory   tensor.Vector `json:"memory,omitempty"`
	// Score is MeanEmbeddingMMD(Mean, Memory)/RouteEpsilon — the same
	// normalized per-expert drift statistic evaluations report.
	Score float64 `json:"score"`
}

// Sketches is a point-in-time deep copy of the monitor goroutine's sketch
// state, harvested on request via the run loop (so it is internally
// consistent: no sample is half-folded). Recent holds the sliding window of
// the newest embeddings, oldest first; RecentExperts carries the expert each
// of those requests was routed to, aligned index-for-index.
type Sketches struct {
	SnapshotVersion int     `json:"snapshotVersion"`
	Samples         uint64  `json:"samples"`
	TeedAt          uint64  `json:"teedAt"`
	Calibrated      bool    `json:"calibrated"`
	Delta           float64 `json:"delta"`
	Epsilon         float64 `json:"epsilon"`
	RouteEpsilon    float64 `json:"routeEpsilon"`

	// Baseline is the frozen no-shift reservoir δ was calibrated on; live
	// samples are scored against it with the same statistic family the
	// training-time thresholds were calibrated with, so the two stay
	// comparable.
	Baseline      []tensor.Vector `json:"-"`
	Recent        []tensor.Vector `json:"-"`
	RecentExperts []int           `json:"-"`

	Experts       []ExpertSketch `json:"experts,omitempty"`
	MarginBuckets []uint64       `json:"marginBuckets,omitempty"`
	MarginMean    float64        `json:"marginMean"`
}

// RecentMean returns the mean of the recent-window embeddings, or nil when
// the window is empty.
func (s *Sketches) RecentMean() tensor.Vector {
	if len(s.Recent) == 0 {
		return nil
	}
	m, err := tensor.Mean(s.Recent)
	if err != nil {
		return nil
	}
	return m
}

// RecentForExpert returns the recent-window embeddings routed to the given
// expert, sharing the export's (already copied) storage.
func (s *Sketches) RecentForExpert(id int) []tensor.Vector {
	var out []tensor.Vector
	for i, e := range s.RecentExperts {
		if e == id {
			out = append(out, s.Recent[i])
		}
	}
	return out
}

// Subscribe registers a buffered evaluation feed: every drift evaluation the
// monitor produces is delivered to the returned channel, newest dropped when
// the subscriber lags (the monitor never blocks on a slow consumer —
// coalescing triggers is the subscriber's job, stalling the fold loop is not
// an option). The channel is closed when the monitor closes. buf <= 0 selects
// a default of 16.
func (m *Monitor) Subscribe(buf int) <-chan Evaluation {
	if buf <= 0 {
		buf = 16
	}
	ch := make(chan Evaluation, buf)
	m.subMu.Lock()
	if m.subsClosed {
		close(ch)
	} else {
		m.subs = append(m.subs, ch)
	}
	m.subMu.Unlock()
	return ch
}

// notifySubscribers fans an evaluation out to every subscriber without
// blocking; lagging subscribers lose the oldest notification.
func (m *Monitor) notifySubscribers(ev Evaluation) {
	m.subMu.Lock()
	for _, ch := range m.subs {
		select {
		case ch <- ev:
		default:
			select {
			case <-ch: // evict oldest, then retry once
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
	}
	m.subMu.Unlock()
}

// closeSubscribers closes every subscription channel; called exactly once
// after the run goroutine has exited.
func (m *Monitor) closeSubscribers() {
	m.subMu.Lock()
	m.subsClosed = true
	for _, ch := range m.subs {
		close(ch)
	}
	m.subs = nil
	m.subMu.Unlock()
}

// Sketches drains the queue and returns a deep copy of the current sketch
// state, or nil when no reference is installed, nothing has been folded yet,
// or the monitor is closed.
func (m *Monitor) Sketches() *Sketches {
	req := make(chan *Sketches, 1)
	select {
	case m.sketchReq <- req:
		select {
		case s := <-req:
			return s
		case <-m.done:
			return nil
		}
	case <-m.done:
		return nil
	}
}

// export builds the deep-copied sketch view; runs on the monitor goroutine.
func (m *Monitor) export(st *sketchState) *Sketches {
	if st == nil {
		return nil
	}
	out := &Sketches{
		SnapshotVersion: st.ref.SnapshotVersion,
		Samples:         st.folded,
		TeedAt:          st.teedMark,
		Calibrated:      st.calibrated,
		Delta:           st.delta,
		Epsilon:         st.ref.Epsilon,
		RouteEpsilon:    st.ref.RouteEpsilon,
		MarginBuckets:   append([]uint64(nil), st.marginHist[:]...),
	}
	if st.marginCount > 0 {
		out.MarginMean = st.marginSum / float64(st.marginCount)
	}
	out.Baseline = make([]tensor.Vector, len(st.baseline))
	for i, b := range st.baseline {
		out.Baseline[i] = append(tensor.Vector(nil), b...)
	}
	// Recent ring → chronological slice (oldest first). recentPos points at
	// the slot the next sample will overwrite, i.e. the oldest entry once
	// the ring has wrapped.
	n := st.recentCount
	out.Recent = make([]tensor.Vector, 0, n)
	out.RecentExperts = make([]int, 0, n)
	start := 0
	if n == len(st.recent) {
		start = st.recentPos
	}
	for i := 0; i < n; i++ {
		j := (start + i) % len(st.recent)
		out.Recent = append(out.Recent, append(tensor.Vector(nil), st.recent[j]...))
		out.RecentExperts = append(out.RecentExperts, int(st.recentExperts[j]))
	}
	for _, id := range st.order {
		es := st.experts[id]
		sk := ExpertSketch{ID: id, Samples: es.w.N()}
		if es.memory != nil {
			sk.Memory = es.memory.Clone()
		}
		if es.w.N() > 0 {
			sk.Mean = append(tensor.Vector(nil), es.w.MeanInto(es.mean)...)
			sk.Variance = es.w.Variance()
			if es.memory != nil {
				sk.Score = stats.MeanEmbeddingMMD(sk.Mean, es.memory) / st.ref.RouteEpsilon
			}
		}
		out.Experts = append(out.Experts, sk)
	}
	return out
}
