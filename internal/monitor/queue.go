package monitor

import (
	"repro/internal/tensor"
)

// Block is one batch-granular hand-off unit between the serving hot path and
// the monitor goroutine: a fixed-capacity, preallocated buffer of routed
// samples (embedding copy, chosen expert, raw match distance, fallback
// verdict). Blocks cycle between a freelist and the monitor queue, so the
// steady-state tee allocates nothing.
type Block struct {
	gen     uint64 // reference generation stamped at Acquire
	dim     int
	rows    int
	embs    []float64 // rows × dim, flat
	experts []int32   // training-time expert IDs
	dists   []float64 // raw best-signature squared distances
	matched []bool
	// hits is the cumulative route-cache hit counter at hand-off, letting
	// the monitor estimate what share of total traffic bypasses the cache
	// (and therefore reaches the monitor at all).
	hits uint64
	// teedAt is the tee-clock position of the block's newest sample: the
	// cumulative teed counter right after Offer counted this block. Folds
	// carry it into evaluations so detection latency can be measured in
	// the same clock the shift watermark is read in (Teed) — the folded
	// count lags it whenever backpressure drops samples.
	teedAt uint64
}

func newBlock(dim, rows int) *Block {
	return &Block{
		dim:     dim,
		embs:    make([]float64, rows*dim),
		experts: make([]int32, rows),
		dists:   make([]float64, rows),
		matched: make([]bool, rows),
	}
}

// Len returns the number of samples currently in the block.
func (b *Block) Len() int { return b.rows }

// Full reports whether the block has no room for another sample.
func (b *Block) Full() bool { return b.rows == len(b.experts) }

// Add copies one routed sample into the block. It returns false when the
// block is full; embeddings of the wrong dimensionality are discarded
// (returning true) — they cannot be folded into the reference's sketches.
// Allocation-free.
func (b *Block) Add(emb tensor.Vector, expertID int, dist float64, matched bool) bool {
	if b.Full() {
		return false
	}
	if len(emb) != b.dim {
		return true
	}
	copy(b.embs[b.rows*b.dim:(b.rows+1)*b.dim], emb)
	b.experts[b.rows] = int32(expertID)
	b.dists[b.rows] = dist
	b.matched[b.rows] = matched
	b.rows++
	return true
}

// SetHits records the producer's cumulative route-cache hit counter at
// hand-off time.
func (b *Block) SetHits(h uint64) { b.hits = h }

func (b *Block) row(i int) tensor.Vector {
	return b.embs[i*b.dim : (i+1)*b.dim]
}

func (b *Block) reset() { b.rows = 0 }

// Acquire takes a free block, stamping it with the current reference
// generation. It returns nil — never blocks — when the freelist is empty
// (monitor saturated or no reference installed yet); the caller should
// count the samples it cannot tee via NoteDropped. Allocation-free.
func (m *Monitor) Acquire() *Block {
	select {
	case b := <-m.free:
		b.gen = m.gen.Load()
		return b
	default:
		return nil
	}
}

// Offer hands a filled block to the monitor goroutine. The queue is bounded
// with drop-oldest backpressure: when full, the oldest queued block is
// evicted (its samples counted as dropped) to make room, so producers never
// block and the monitor always sees the freshest traffic. Allocation-free.
func (m *Monitor) Offer(b *Block) {
	b.teedAt = m.teed.Add(uint64(b.rows))
	for {
		select {
		case m.queue <- b:
			return
		default:
		}
		select {
		case old := <-m.queue:
			m.dropped.Add(uint64(old.rows))
			m.release(old)
		default:
			// The monitor drained the queue between our two attempts;
			// retry the send.
		}
	}
}

// Recycle returns an unused (or partially filled but unwanted) block to the
// freelist without queueing its samples.
func (m *Monitor) Recycle(b *Block) { m.release(b) }

// NoteDropped counts samples the producer could not tee because no free
// block was available.
func (m *Monitor) NoteDropped(n int) { m.dropped.Add(uint64(n)) }

// release resets a block and returns it to the freelist. Blocks whose
// dimensionality no longer matches the installed reference (possible only
// across a reference change to a different architecture) are discarded.
func (m *Monitor) release(b *Block) {
	if ref := m.ref.Load(); ref != nil && ref.Dim != b.dim {
		return
	}
	b.reset()
	select {
	case m.free <- b:
	default:
	}
}

// Teed returns the cumulative count of samples handed off to the queue
// (including any later evicted by backpressure). The drift benchmark reads
// it at the shift-injection instant as the detection-latency watermark.
func (m *Monitor) Teed() uint64 { return m.teed.Load() }

// Dropped returns the cumulative count of samples lost to backpressure,
// freelist exhaustion, or SampleEvery subsampling.
func (m *Monitor) Dropped() uint64 { return m.dropped.Load() }

// QueueDepth returns the number of blocks currently queued.
func (m *Monitor) QueueDepth() int { return len(m.queue) }

// QueueCapacity returns the queue's block capacity.
func (m *Monitor) QueueCapacity() int { return cap(m.queue) }
