package monitor

import (
	"testing"
	"time"

	"repro/internal/tensor"
)

func TestSubscribeDeliversEvaluations(t *testing.T) {
	m := New(testConfig())
	m.SetReference(testReference(8))
	ch := m.Subscribe(16)

	rng := tensor.NewRNG(42)
	feed(t, m, rng, 3, 0.1, 200, 2, true)

	var got []Evaluation
	deadline := time.After(2 * time.Second)
	want := m.Summary().Evals
	for len(got) < int(want) {
		select {
		case ev := <-ch:
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("received %d evaluations, monitor ran %d", len(got), want)
		}
	}
	for i, ev := range got {
		if ev.SnapshotVersion != 1 {
			t.Fatalf("eval %d carries snapshot version %d", i, ev.SnapshotVersion)
		}
		if i > 0 && ev.Seq <= got[i-1].Seq {
			t.Fatalf("evaluation feed out of order: %d then %d", got[i-1].Seq, ev.Seq)
		}
	}

	// Close must close every subscription channel (the controller's run loop
	// exits on it).
	m.Close()
	select {
	case _, open := <-ch:
		if open {
			return // drained a buffered eval; channel closes after
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscription channel not closed on monitor close")
	}
}

func TestSubscribeAfterCloseYieldsClosedChannel(t *testing.T) {
	m := New(testConfig())
	m.Close()
	ch := m.Subscribe(1)
	if _, open := <-ch; open {
		t.Fatal("subscription on a closed monitor must be closed")
	}
}

func TestSketchesExport(t *testing.T) {
	m := New(testConfig())
	defer m.Close()
	if m.Sketches() != nil {
		t.Fatal("sketches before a reference must be nil")
	}
	m.SetReference(testReference(8))

	rng := tensor.NewRNG(42)
	feed(t, m, rng, 3, 0.1, 200, 2, true)

	sk := m.Sketches()
	if sk == nil {
		t.Fatal("no sketches after folding samples")
	}
	if sk.SnapshotVersion != 1 || sk.Samples != 200 {
		t.Fatalf("export header wrong: %+v", sk)
	}
	if !sk.Calibrated || len(sk.Baseline) == 0 {
		t.Fatalf("baseline/calibration not exported: calibrated=%v baseline=%d", sk.Calibrated, len(sk.Baseline))
	}
	if len(sk.Recent) != 32 || len(sk.RecentExperts) != len(sk.Recent) {
		t.Fatalf("recent window export wrong: %d embeddings, %d tags", len(sk.Recent), len(sk.RecentExperts))
	}
	for i, id := range sk.RecentExperts {
		if id != 2 {
			t.Fatalf("recent tag %d routed to expert %d, want 2", i, id)
		}
	}
	if got := len(sk.RecentForExpert(2)); got != len(sk.Recent) {
		t.Fatalf("RecentForExpert(2) returned %d of %d", got, len(sk.Recent))
	}
	if sk.RecentForExpert(0) != nil {
		t.Fatal("expert 0 saw no traffic but has recent embeddings")
	}
	if mean := sk.RecentMean(); mean == nil || mean[0] < 2 || mean[0] > 4 {
		t.Fatalf("recent mean off: %v", mean)
	}

	// The export is a deep copy: scribbling on it must not leak back into
	// the monitor's live state.
	for i := range sk.Recent {
		sk.Recent[i][0] = 1e9
	}
	sk.Baseline[0][0] = 1e9
	again := m.Sketches()
	if again.Recent[0][0] == 1e9 || again.Baseline[0][0] == 1e9 {
		t.Fatal("sketch export shares storage with the monitor")
	}
}

// TestSketchesRebaselineAfterSwap is the re-baselining contract behind the
// continual controller's promotion: serve.Swap calls SetReference with the
// new snapshot, and the sketches — baseline reservoir, recent window, expert
// attribution — must restart from zero so a handled shift stops scoring as
// drift against the retired expert pool.
func TestSketchesRebaselineAfterSwap(t *testing.T) {
	m := New(testConfig())
	defer m.Close()
	m.SetReference(testReference(8))
	rng := tensor.NewRNG(42)
	feed(t, m, rng, 3, 0.1, 200, 2, true)
	before := m.Sketches()
	if len(before.Baseline) == 0 || !before.Calibrated {
		t.Fatalf("precondition: monitor not calibrated: %+v", before)
	}

	next := testReference(8)
	next.SnapshotVersion = 2
	m.SetReference(next)
	m.Flush() // SetReference applies on the run loop; serialize before reading

	after := m.Sketches()
	if after != nil && (after.SnapshotVersion != 2 || len(after.Baseline) != 0 || len(after.Recent) != 0 || after.Calibrated) {
		t.Fatalf("sketches survived the swap: %+v", after)
	}

	// And the new regime's traffic rebuilds them against the new reference.
	feed(t, m, rng, 3, 0.1, 120, 2, true)
	rebuilt := m.Sketches()
	if rebuilt == nil || rebuilt.SnapshotVersion != 2 || rebuilt.Samples != 120 {
		t.Fatalf("sketches not rebuilt on the new reference: %+v", rebuilt)
	}
	if len(rebuilt.Baseline) == 0 || !rebuilt.Calibrated {
		t.Fatalf("baseline not re-collected after swap: %+v", rebuilt)
	}
}
