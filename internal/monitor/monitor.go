// Package monitor is the serving tier's live drift & model-quality
// observability plane: an off-request-path streaming pipeline that watches
// routed traffic and scores it against the training-time reference the
// snapshot was calibrated on.
//
// The serving hot path tees each batch-routed request (embedding, chosen
// expert, raw match distance, fallback verdict) into a bounded block queue
// with drop-oldest backpressure — producers never block and never allocate
// (queue.go). A single monitor goroutine owns all sketch state: per-expert
// and global streaming mean/variance (stats.VecWelford), a match-margin
// histogram, fallback-rate and cache-bypass EWMAs, plus a baseline/recent
// embedding reservoir pair. Periodically it scores the recent window against
// the baseline with a pluggable stats.DistributionDistance detector,
// normalized by a self-calibrated null threshold (stats.CalibrateThreshold),
// and scores each expert's live embedding mean against its latent memory —
// the per-expert drift series the next adaptation trigger can consume.
//
// The package deliberately imports neither serve nor gateway: serve pushes a
// Reference built from its snapshot and tees samples; gateway scrapes the
// wire types in http.go. Both depend on monitor, never the reverse.
package monitor

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// Config tunes the monitor. Zero values select the defaults.
type Config struct {
	// QueueBlocks bounds the hand-off queue, in blocks (default 64). The
	// freelist holds QueueBlocks+16 blocks so producers can keep filling
	// while the monitor drains.
	QueueBlocks int
	// BlockRows is each block's sample capacity (default 64 — one block
	// comfortably holds one micro-batch at the serving default MaxBatch=32).
	BlockRows int
	// EvalEvery runs a drift evaluation every this many folded samples
	// (default 2048). Smaller detects faster but spends more monitor CPU.
	EvalEvery int
	// SampleEvery folds only every Nth queued block (default 1 = fold every
	// block); the blocks in between are recycled with their samples counted
	// as dropped. It is the monitor's CPU governor: without it the consumer
	// goroutine folds at full traffic rate, and on a CPU-starved host that
	// work competes with the serving workers themselves. Skipping whole
	// blocks keeps the folded stream an unbiased batch-granular subsample
	// while bounding fold + evaluation cost to ~1/N of traffic.
	SampleEvery int
	// BaselineSize is the number of post-reference embeddings frozen as the
	// no-shift baseline reservoir (default 256).
	BaselineSize int
	// WindowSize is the sliding recent-embedding window scored against the
	// baseline (default 128).
	WindowSize int
	// Threshold is the normalized-score crossing level (default 2). The raw
	// detector statistic is divided by the self-calibrated null quantile δ,
	// so 1.0 means "at the null's (1-p) quantile" and 2 demands double it —
	// the headroom that keeps steady traffic from false-positive crossings.
	Threshold float64
	// Alpha is the EWMA weight for the fallback-rate and cache-bypass
	// sketches (default 0.05, per block).
	Alpha float64
	// HistoryLen bounds the ring of retained evaluations (default 256).
	HistoryLen int
	// Detector is the two-sample statistic scoring recent vs baseline
	// (default stats.MMDDistance).
	Detector stats.DistributionDistance
	// Calibrate configures the bootstrap null calibration of δ (default
	// stats.DefaultCalibrateConfig with PValue 0.02).
	Calibrate stats.CalibrateConfig
	// Seed drives the calibration resampling RNG (default 1).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.QueueBlocks <= 0 {
		c.QueueBlocks = 64
	}
	if c.BlockRows <= 0 {
		c.BlockRows = 64
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 2048
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	if c.BaselineSize <= 0 {
		c.BaselineSize = 256
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 128
	}
	if c.Threshold <= 0 {
		c.Threshold = 2
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.05
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 256
	}
	if c.Detector == nil {
		c.Detector = stats.MMDDistance{}
	}
	if c.Calibrate.Resamples <= 0 {
		c.Calibrate.Resamples = stats.DefaultCalibrateConfig().Resamples
	}
	if c.Calibrate.PValue <= 0 || c.Calibrate.PValue >= 1 {
		c.Calibrate.PValue = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ExpertRef is one expert's training-time identity inside a Reference.
type ExpertRef struct {
	ID int
	// Memory is the expert's latent-memory signature; nil for experts
	// without one (fallback-only). The monitor clones it.
	Memory tensor.Vector
}

// Reference is the training-time state live traffic is scored against: the
// per-expert latent memories and the effective routing radius of one serving
// snapshot. Installing a reference resets every sketch — statistics gathered
// against one snapshot must not leak into the next.
type Reference struct {
	// SnapshotVersion identifies the snapshot the reference came from.
	SnapshotVersion int
	// Dim is the embedding dimensionality.
	Dim int
	// Epsilon is the calibrated reuse threshold; RouteEpsilon the effective
	// (scaled) radius routing compares squared distances against. Margin
	// ratios and per-expert drift scores are normalized by RouteEpsilon.
	Epsilon      float64
	RouteEpsilon float64
	Experts      []ExpertRef

	gen uint64
}

// marginBounds are the match-margin histogram bucket upper bounds, in units
// of dist/RouteEpsilon: ratio ≤ 1 means the request matched inside the
// radius; mass drifting toward and past 1 is routing confidence decaying.
var marginBounds = [...]float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 5}

// MarginBounds returns the margin-histogram bucket bounds (shared storage —
// read only).
func MarginBounds() []float64 { return marginBounds[:] }

// ExpertDrift is one expert's standing in an evaluation: how far the live
// embedding mean of traffic routed to it has moved from its latent memory,
// normalized by the effective routing radius (score ≥ 1 means the live mean
// sits outside the acceptance radius that routed those requests).
type ExpertDrift struct {
	ID       int     `json:"id"`
	Samples  int     `json:"samples"`
	MeanDist float64 `json:"meanDist"`
	Score    float64 `json:"score"`
}

// Evaluation is one drift scoring of the recent window against the baseline.
type Evaluation struct {
	Seq       int    `json:"seq"`
	UnixNanos int64  `json:"unixNanos"`
	Samples   uint64 `json:"samples"` // cumulative folded samples at eval time
	// TeedAt is the tee-clock position of the newest folded sample (the
	// producer-side cumulative counter when its block was offered). Use it
	// — not Samples — against watermarks read via Teed(): backpressure
	// drops make the folded clock lag the tee clock.
	TeedAt uint64 `json:"teedAt"`
	// Raw is the detector statistic, Delta the calibrated null quantile,
	// Score their ratio; Crossed reports Score ≥ the configured threshold.
	Raw             float64       `json:"raw"`
	Delta           float64       `json:"delta"`
	Score           float64       `json:"score"`
	Crossed         bool          `json:"crossed"`
	Err             string        `json:"err,omitempty"`
	SnapshotVersion int           `json:"snapshotVersion"`
	Experts         []ExpertDrift `json:"experts,omitempty"`
}

// Summary is the monitor's point-in-time aggregate view — what /v1/metrics
// renders and what the gateway's probe loop scrapes for fleet aggregation.
type Summary struct {
	SnapshotVersion  int           `json:"snapshotVersion"`
	Samples          uint64        `json:"samples"` // folded into sketches
	Teed             uint64        `json:"teed"`
	Dropped          uint64        `json:"dropped"`
	Stale            uint64        `json:"stale,omitempty"`    // pre-reference-change samples discarded
	Poisoned         uint64        `json:"poisoned,omitempty"` // NaN embeddings rejected
	BaselineFilled   bool          `json:"baselineFilled"`
	Calibrated       bool          `json:"calibrated"`
	CalibrationError string        `json:"calibrationError,omitempty"`
	Delta            float64       `json:"delta"`
	Threshold        float64       `json:"threshold"`
	Score            float64       `json:"score"` // latest evaluation's normalized score
	Crossed          bool          `json:"crossed"`
	Crossings        uint64        `json:"crossings"`
	Evals            uint64        `json:"evals"`
	FallbackRate     float64       `json:"fallbackRate"`
	CacheBypassShare float64       `json:"cacheBypassShare"`
	MarginMean       float64       `json:"marginMean"`
	MarginSum        float64       `json:"marginSum"`
	MarginBuckets    []uint64      `json:"marginBuckets,omitempty"`
	MaxExpertScore   float64       `json:"maxExpertScore"`
	MaxExpertID      int           `json:"maxExpertId"`
	Experts          []ExpertDrift `json:"experts,omitempty"`
}

// Monitor is the drift observability plane. Producers call Acquire / Block.Add
// / Offer from the serving hot path; everything else (sketches, reservoirs,
// evaluations) is owned by the single run goroutine, so no sketch state needs
// a lock.
type Monitor struct {
	cfg Config

	queue chan *Block
	free  chan *Block

	gen     atomic.Uint64
	ref     atomic.Pointer[Reference]
	teed    atomic.Uint64
	dropped atomic.Uint64
	// sampleSeq counts queued blocks for SampleEvery subsampling; touched
	// only by the run goroutine.
	sampleSeq uint64

	summary atomic.Pointer[Summary]

	mu    sync.Mutex // guards evals (ring) against handler reads
	evals []Evaluation

	refMu    sync.Mutex // serializes SetReference's freelist (re)fill
	allocDim int

	subMu      sync.Mutex // guards subs against Subscribe/notify/close
	subs       []chan Evaluation
	subsClosed bool

	flush     chan chan struct{}
	sketchReq chan chan *Sketches
	stop      chan struct{}
	done      chan struct{}
	stopOnce  sync.Once
}

// New starts a monitor. It is inert (Acquire returns nil, everything drops)
// until the first SetReference installs a scoring reference. Call Close to
// stop the goroutine.
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:       cfg,
		queue:     make(chan *Block, cfg.QueueBlocks),
		free:      make(chan *Block, cfg.QueueBlocks+16),
		flush:     make(chan chan struct{}, 4),
		sketchReq: make(chan chan *Sketches, 4),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go m.run()
	return m
}

// Config returns the monitor's resolved configuration.
func (m *Monitor) Config() Config { return m.cfg }

// SetReference installs the scoring reference for a (new) serving snapshot
// and invalidates all prior sketch state: blocks acquired before the call
// are discarded as stale when they reach the monitor, and the baseline
// reservoir refills from post-reference traffic. Memories are cloned. Safe
// to call concurrently with producers.
func (m *Monitor) SetReference(ref Reference) {
	experts := make([]ExpertRef, len(ref.Experts))
	for i, e := range ref.Experts {
		experts[i] = ExpertRef{ID: e.ID}
		if e.Memory != nil {
			experts[i].Memory = e.Memory.Clone()
		}
	}
	ref.Experts = experts
	if ref.RouteEpsilon <= 0 {
		ref.RouteEpsilon = ref.Epsilon
	}
	m.refMu.Lock()
	if m.allocDim != ref.Dim {
		m.allocDim = ref.Dim
		for i := 0; i < cap(m.free); i++ {
			select {
			case m.free <- newBlock(ref.Dim, m.cfg.BlockRows):
			default:
			}
		}
	}
	ref.gen = m.gen.Add(1)
	m.ref.Store(&ref)
	m.refMu.Unlock()
}

// Summary returns the latest published aggregate view (an empty summary
// before any sample has been folded). The returned value is shared — read
// only.
func (m *Monitor) Summary() *Summary {
	if s := m.summary.Load(); s != nil {
		return s
	}
	return &Summary{Threshold: m.cfg.Threshold, MaxExpertID: -1}
}

// Evaluations returns up to n recent evaluations, newest last. n <= 0
// returns the whole retained ring. expert >= 0 filters each evaluation's
// per-expert entries to that expert ID (evaluations themselves are kept).
func (m *Monitor) Evaluations(n, expert int) []Evaluation {
	m.mu.Lock()
	defer m.mu.Unlock()
	evs := m.evals
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	out := make([]Evaluation, len(evs))
	copy(out, evs)
	if expert >= 0 {
		for i := range out {
			var kept []ExpertDrift
			for _, e := range out[i].Experts {
				if e.ID == expert {
					kept = append(kept, e)
				}
			}
			out[i].Experts = kept
		}
	}
	return out
}

// Flush folds every queued block and forces one evaluation (when the
// baseline is calibrated), then returns. Benchmarks call it after a load run
// so the final partial window is scored before detection latency is read.
func (m *Monitor) Flush() {
	ack := make(chan struct{})
	select {
	case m.flush <- ack:
		<-ack
	case <-m.done:
	}
}

// Close stops the monitor goroutine, folding whatever is already queued, and
// closes every evaluation subscription.
func (m *Monitor) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
	m.closeSubscribers()
}

// expertSketch is one expert's goroutine-owned online state.
type expertSketch struct {
	id     int
	memory tensor.Vector
	w      *stats.VecWelford
	mean   tensor.Vector // scratch for MeanInto
}

// sketchState is everything the run goroutine owns. It is rebuilt whenever
// the reference generation moves.
type sketchState struct {
	ref     *Reference
	global  *stats.VecWelford
	experts map[int]*expertSketch
	order   []int // expert IDs in reference order, for stable output

	marginHist  [len(marginBounds) + 1]uint64
	marginSum   float64
	marginCount uint64

	fallbackRate stats.EWMA
	bypassShare  stats.EWMA
	lastHits     uint64
	hitsSeeded   bool

	// baseline is frozen once full; recent is a ring over the newest
	// embeddings, with recentExperts carrying the routed expert per slot
	// (the sketch export needs it to attribute the live window). Both own
	// their storage (block buffers are recycled).
	baseline      []tensor.Vector
	recent        []tensor.Vector
	recentExperts []int32
	recentPos     int
	recentCount   int

	delta      float64
	calErr     string
	calibrated bool

	folded    uint64
	teedMark  uint64 // tee-clock position of the newest folded sample
	stale     uint64
	poisoned  uint64
	sinceEval int
	evalSeq   int
	crossings uint64
	lastEval  *Evaluation
	rng       *tensor.RNG
}

func (m *Monitor) newState(ref *Reference) *sketchState {
	st := &sketchState{
		ref:           ref,
		global:        stats.NewVecWelford(ref.Dim),
		experts:       make(map[int]*expertSketch, len(ref.Experts)),
		fallbackRate:  stats.EWMA{Alpha: m.cfg.Alpha},
		bypassShare:   stats.EWMA{Alpha: m.cfg.Alpha},
		baseline:      make([]tensor.Vector, 0, m.cfg.BaselineSize),
		recent:        make([]tensor.Vector, m.cfg.WindowSize),
		recentExperts: make([]int32, m.cfg.WindowSize),
		rng:           tensor.NewRNG(m.cfg.Seed),
	}
	for _, e := range ref.Experts {
		st.experts[e.ID] = &expertSketch{
			id:     e.ID,
			memory: e.Memory,
			w:      stats.NewVecWelford(ref.Dim),
			mean:   make(tensor.Vector, ref.Dim),
		}
		st.order = append(st.order, e.ID)
	}
	for i := range st.recent {
		st.recent[i] = make(tensor.Vector, ref.Dim)
	}
	return st
}

// run is the monitor goroutine: drain blocks, fold sketches, evaluate.
func (m *Monitor) run() {
	defer close(m.done)
	var st *sketchState
	for {
		select {
		case b := <-m.queue:
			st = m.fold(st, b)
		case ack := <-m.flush:
			st = m.syncRef(m.drain(st))
			if st != nil && st.calibrated && st.recentCount > 0 {
				m.evaluate(st)
				m.publish(st)
			}
			close(ack)
		case req := <-m.sketchReq:
			st = m.syncRef(m.drain(st))
			req <- m.export(st)
		case <-m.stop:
			m.drain(st)
			return
		}
	}
}

// syncRef discards sketch state built against a retired reference. Folding
// already does this lazily when the next block arrives; flushes and sketch
// harvests must do it eagerly, or a harvest right after a swap would export
// (and a flush would evaluate) sketches scored against the retired expert
// pool — the continual controller's window input must never mix generations.
func (m *Monitor) syncRef(st *sketchState) *sketchState {
	cur := m.ref.Load()
	if st == nil || cur == nil || st.ref.gen == cur.gen {
		return st
	}
	carry := st.stale
	st = m.newState(cur)
	st.stale = carry
	return st
}

// drain folds every block already queued, without blocking.
func (m *Monitor) drain(st *sketchState) *sketchState {
	for {
		select {
		case b := <-m.queue:
			st = m.fold(st, b)
		default:
			return st
		}
	}
}

// fold integrates one block into the sketches, rebuilding state first when
// the reference generation has moved.
func (m *Monitor) fold(st *sketchState, b *Block) *sketchState {
	if n := m.cfg.SampleEvery; n > 1 {
		m.sampleSeq++
		if m.sampleSeq%uint64(n) != 0 {
			m.dropped.Add(uint64(b.rows))
			m.release(b)
			return st
		}
	}
	cur := m.ref.Load()
	if cur == nil {
		m.release(b)
		return st
	}
	if st == nil || st.ref.gen != cur.gen {
		var carry uint64
		if st != nil {
			carry = st.stale
		}
		st = m.newState(cur)
		st.stale = carry
	}
	if b.gen != cur.gen || b.dim != cur.Dim {
		st.stale += uint64(b.rows)
		m.release(b)
		m.publish(st)
		return st
	}

	var fallbacks int
	for i := 0; i < b.rows; i++ {
		emb := b.row(i)
		if !st.global.Add(emb) {
			st.poisoned++
			continue
		}
		if es := st.experts[int(b.experts[i])]; es != nil {
			es.w.Add(emb)
		}
		ratio := b.dists[i] / st.ref.RouteEpsilon
		bi := len(marginBounds)
		for j, bound := range marginBounds {
			if ratio <= bound {
				bi = j
				break
			}
		}
		st.marginHist[bi]++
		st.marginSum += ratio
		st.marginCount++
		if !b.matched[i] {
			fallbacks++
		}
		if len(st.baseline) < cap(st.baseline) {
			st.baseline = append(st.baseline, append(tensor.Vector(nil), emb...))
			if len(st.baseline) == cap(st.baseline) {
				m.calibrate(st)
			}
		} else {
			copy(st.recent[st.recentPos], emb)
			st.recentExperts[st.recentPos] = b.experts[i]
			st.recentPos = (st.recentPos + 1) % len(st.recent)
			if st.recentCount < len(st.recent) {
				st.recentCount++
			}
		}
		st.folded++
		st.sinceEval++
	}
	if b.rows > 0 {
		st.fallbackRate.Observe(float64(fallbacks) / float64(b.rows))
		if st.hitsSeeded && b.hits >= st.lastHits {
			dh := float64(b.hits - st.lastHits)
			st.bypassShare.Observe(float64(b.rows) / (float64(b.rows) + dh))
		}
		st.lastHits = b.hits
		st.hitsSeeded = true
		st.teedMark = b.teedAt
	}
	m.release(b)

	if st.calibrated && st.sinceEval >= m.cfg.EvalEvery && st.recentCount == len(st.recent) {
		m.evaluate(st)
	}
	m.publish(st)
	return st
}

// calibrate bootstraps the null threshold δ from the frozen baseline: the
// (1-p) quantile of the detector statistic between random halves of the
// no-shift sample. Scores are reported as raw/δ, so the crossing threshold
// is dimensionless and detector-agnostic.
func (m *Monitor) calibrate(st *sketchState) {
	delta, err := stats.CalibrateThreshold(m.cfg.Detector, st.baseline, m.cfg.Calibrate, st.rng)
	if err != nil {
		st.calErr = err.Error()
		return
	}
	if delta <= 0 {
		// A degenerate null (identical embeddings) calibrates to zero;
		// fall back to an absolute floor so scores stay finite.
		delta = 1e-12
	}
	st.delta = delta
	st.calibrated = true
	st.calErr = ""
}

// evaluate scores the recent window against the baseline and each expert's
// live mean against its latent memory, appending to the evaluation ring.
func (m *Monitor) evaluate(st *sketchState) {
	st.sinceEval = 0
	st.evalSeq++
	ev := Evaluation{
		Seq:             st.evalSeq,
		UnixNanos:       time.Now().UnixNano(),
		Samples:         st.folded,
		TeedAt:          st.teedMark,
		Delta:           st.delta,
		SnapshotVersion: st.ref.SnapshotVersion,
	}
	recent := st.recent[:st.recentCount]
	raw, err := m.cfg.Detector.Distance(st.baseline, recent)
	if err != nil {
		ev.Err = fmt.Sprintf("detector: %v", err)
	} else {
		ev.Raw = raw
		ev.Score = raw / st.delta
		ev.Crossed = ev.Score >= m.cfg.Threshold
	}
	for _, id := range st.order {
		es := st.experts[id]
		if es.memory == nil || es.w.N() < 8 {
			continue
		}
		dist := stats.MeanEmbeddingMMD(es.w.MeanInto(es.mean), es.memory)
		ev.Experts = append(ev.Experts, ExpertDrift{
			ID:       id,
			Samples:  es.w.N(),
			MeanDist: dist,
			Score:    dist / st.ref.RouteEpsilon,
		})
	}
	if ev.Crossed {
		st.crossings++
	}
	st.lastEval = &ev

	m.mu.Lock()
	m.evals = append(m.evals, ev)
	if len(m.evals) > m.cfg.HistoryLen {
		m.evals = m.evals[len(m.evals)-m.cfg.HistoryLen:]
	}
	m.mu.Unlock()
	m.notifySubscribers(ev)
}

// publish snapshots the sketches into an immutable Summary for readers.
func (m *Monitor) publish(st *sketchState) {
	s := &Summary{
		SnapshotVersion:  st.ref.SnapshotVersion,
		Samples:          st.folded,
		Teed:             m.teed.Load(),
		Dropped:          m.dropped.Load(),
		Stale:            st.stale,
		Poisoned:         st.poisoned,
		BaselineFilled:   len(st.baseline) == cap(st.baseline),
		Calibrated:       st.calibrated,
		CalibrationError: st.calErr,
		Delta:            st.delta,
		Threshold:        m.cfg.Threshold,
		Crossings:        st.crossings,
		Evals:            uint64(st.evalSeq),
		FallbackRate:     st.fallbackRate.Value(),
		CacheBypassShare: st.bypassShare.Value(),
		MarginSum:        st.marginSum,
		MarginBuckets:    append([]uint64(nil), st.marginHist[:]...),
		MaxExpertID:      -1,
	}
	if st.marginCount > 0 {
		s.MarginMean = st.marginSum / float64(st.marginCount)
	}
	if ev := st.lastEval; ev != nil {
		s.Score = ev.Score
		s.Crossed = ev.Crossed
		s.Experts = append([]ExpertDrift(nil), ev.Experts...)
		for _, e := range ev.Experts {
			if e.Score > s.MaxExpertScore {
				s.MaxExpertScore = e.Score
				s.MaxExpertID = e.ID
			}
		}
	}
	m.summary.Store(s)
}
